// Persistent artifact store: serialize round-trip, every corruption class
// degrading to a clean miss (never a crash, never a wrong artifact),
// concurrent-writer benignity, oldest-first eviction, and the service-level
// acceptance: a killed-and-restarted server answers every warm request from
// disk with zero recompiles.
#include "service/artifact_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "service/compile_service.hpp"
#include "support/fault_injection.hpp"
#include "support/string_utils.hpp"

namespace {

using namespace mat2c;
using service::ArtifactStore;
using service::CacheKey;
using service::CachedResult;
using service::CompileRequest;
using service::CompileService;

namespace fs = std::filesystem;

/// Fresh per-test directory under the system temp dir, removed on teardown.
class ArtifactStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mat2c_store_test." + std::to_string(static_cast<unsigned>(::getpid())) + "." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

CacheKey testKey(const std::string& tag = "k") {
  CacheKey key;
  key.canonical = "canonical:" + tag;
  key.hash = fnv1a64(key.canonical);
  return key;
}

CachedResult testResult(const std::string& cCode = "/* generated */\n") {
  CachedResult::Meta meta;
  meta.isaName = "dspx";
  meta.loopsVectorized = 2;
  meta.idiomRewrites = 1;
  meta.degraded = {"licm", "fuse"};
  return CachedResult(cCode, std::move(meta), "unrollMaxTrip=16", 22, 119338.0, 430346.0);
}

CompileRequest kernelRequest(int variant) {
  CompileRequest r;
  r.id = "k" + std::to_string(variant);
  r.source = "function y = f(x)\ny = x * " + std::to_string(variant + 2) + ";\nend\n";
  r.entry = "f";
  r.args = {sema::ArgSpec::row(16)};
  r.options = CompileOptions::proposed();
  return r;
}

// --- format ----------------------------------------------------------------

TEST_F(ArtifactStoreTest, SerializeRoundTripPreservesEveryField) {
  CacheKey key = testKey();
  CachedResult original = testResult();
  std::string bytes = ArtifactStore::serialize(key, original);

  std::string error;
  auto loaded = ArtifactStore::deserialize(bytes, key, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_FALSE(loaded->hasUnit());  // store entries answer without LIR
  EXPECT_EQ(loaded->cCode, original.cCode);
  EXPECT_EQ(loaded->isaName, original.isaName);
  EXPECT_EQ(loaded->loopsVectorized, original.loopsVectorized);
  EXPECT_EQ(loaded->idiomRewrites, original.idiomRewrites);
  EXPECT_EQ(loaded->degraded, original.degraded);
  EXPECT_EQ(loaded->tunedSignature, original.tunedSignature);
  EXPECT_EQ(loaded->tuneCandidates, original.tuneCandidates);
  EXPECT_EQ(loaded->tunedCycles, original.tunedCycles);
  EXPECT_EQ(loaded->tuneDefaultCycles, original.tuneDefaultCycles);
  EXPECT_TRUE(loaded->tuned());
}

TEST_F(ArtifactStoreTest, FileNameIsTheKeyHashHex) {
  CacheKey key = testKey();
  EXPECT_EQ(ArtifactStore::fileNameFor(key), hex64(key.hash) + ".art");
}

TEST_F(ArtifactStoreTest, StoreThenLoadHitsAndCounts) {
  ArtifactStore store({dir_.string(), 0});
  ASSERT_TRUE(store.ok()) << store.error();
  CacheKey key = testKey();

  EXPECT_EQ(store.load(key), nullptr);  // cold: miss
  EXPECT_TRUE(store.store(key, testResult()));
  auto loaded = store.load(key);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->cCode, "/* generated */\n");

  auto stats = store.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.files, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_EQ(stats.corrupt, 0u);
}

TEST_F(ArtifactStoreTest, RestartedStoreInventoriesExistingArtifacts) {
  CacheKey key = testKey();
  {
    ArtifactStore store({dir_.string(), 0});
    ASSERT_TRUE(store.store(key, testResult()));
  }
  ArtifactStore reopened({dir_.string(), 0});
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.stats().files, 1u);
  EXPECT_GT(reopened.stats().bytes, 0u);
  EXPECT_NE(reopened.load(key), nullptr);
}

// --- corruption: each damage class is a clean miss and the file is removed --

class CorruptionTest : public ArtifactStoreTest {
 protected:
  /// Stores one artifact, mutates its on-disk image with `damage`, and
  /// expects load() to report a clean miss, count it corrupt, and delete the
  /// damaged file so the next lookup misses quietly.
  void expectCleanMiss(const std::function<std::string(std::string)>& damage) {
    CacheKey key = testKey();
    ArtifactStore store({dir_.string(), 0});
    ASSERT_TRUE(store.store(key, testResult()));
    fs::path file = dir_ / ArtifactStore::fileNameFor(key);
    ASSERT_TRUE(fs::exists(file));

    std::string bytes;
    {
      std::ifstream in(file, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }
    std::string damaged = damage(std::move(bytes));
    {
      std::ofstream out(file, std::ios::binary | std::ios::trunc);
      out.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
    }

    EXPECT_EQ(store.load(key), nullptr);
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_FALSE(fs::exists(file)) << "corrupt artifact must be deleted";
    EXPECT_EQ(store.load(key), nullptr);  // now a plain miss
    EXPECT_EQ(store.stats().corrupt, 1u);
  }
};

TEST_F(CorruptionTest, TruncatedFile) {
  expectCleanMiss([](std::string b) { return b.substr(0, b.size() / 2); });
}

TEST_F(CorruptionTest, TruncatedHeader) {
  expectCleanMiss([](std::string b) { return b.substr(0, 6); });
}

TEST_F(CorruptionTest, BadMagic) {
  expectCleanMiss([](std::string b) {
    b[0] = 'X';
    return b;
  });
}

TEST_F(CorruptionTest, VersionSkew) {
  expectCleanMiss([](std::string b) {
    b[4] = static_cast<char>(ArtifactStore::kFormatVersion + 1);  // little-endian u32
    return b;
  });
}

TEST_F(CorruptionTest, ChecksumMismatch) {
  expectCleanMiss([](std::string b) {
    b.back() ^= 0x5a;  // flip payload bits; header checksum no longer matches
    return b;
  });
}

TEST_F(ArtifactStoreTest, DeserializeErrorsNameTheDamage) {
  CacheKey key = testKey();
  std::string good = ArtifactStore::serialize(key, testResult());
  std::string error;

  EXPECT_EQ(ArtifactStore::deserialize(good.substr(0, 3), key, &error), nullptr);
  EXPECT_EQ(error, "truncated header");

  std::string badMagic = good;
  badMagic[1] = '?';
  EXPECT_EQ(ArtifactStore::deserialize(badMagic, key, &error), nullptr);
  EXPECT_EQ(error, "bad magic");

  std::string skew = good;
  skew[4] = 9;
  EXPECT_EQ(ArtifactStore::deserialize(skew, key, &error), nullptr);
  EXPECT_EQ(error, "version skew");

  std::string flipped = good;
  flipped.back() ^= 1;
  EXPECT_EQ(ArtifactStore::deserialize(flipped, key, &error), nullptr);
  EXPECT_EQ(error, "checksum mismatch");

  EXPECT_EQ(ArtifactStore::deserialize(good.substr(0, good.size() - 1), key, &error),
            nullptr);
  EXPECT_EQ(error, "payload size mismatch");
}

TEST_F(ArtifactStoreTest, HashCollisionIsAMissNotCorruption) {
  // Same hash, different canonical: the 64-bit namespace collided. The stored
  // artifact belongs to someone else — a miss, but NOT corruption, and the
  // other key's artifact must survive.
  CacheKey key = testKey();
  ArtifactStore store({dir_.string(), 0});
  ASSERT_TRUE(store.store(key, testResult()));

  CacheKey collider;
  collider.canonical = "canonical:other";
  collider.hash = key.hash;
  EXPECT_EQ(store.load(collider), nullptr);
  EXPECT_EQ(store.stats().corrupt, 0u);
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_TRUE(fs::exists(dir_ / ArtifactStore::fileNameFor(key)));
  EXPECT_NE(store.load(key), nullptr);
}

// --- concurrency and eviction ----------------------------------------------

TEST_F(ArtifactStoreTest, ConcurrentWritersOfOneKeyRaceBenignly) {
  // Atomic rename means last-writer-wins with identical content: no torn
  // file, exactly one artifact, every subsequent load hits.
  ArtifactStore store({dir_.string(), 0});
  CacheKey key = testKey();
  CachedResult value = testResult();

  std::vector<std::thread> writers;
  for (int i = 0; i < 8; ++i) {
    writers.emplace_back([&] {
      for (int j = 0; j < 16; ++j) store.store(key, value);
    });
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(store.stats().files, 1u);
  auto loaded = store.load(key);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->cCode, value.cCode);
  // No temp files may be left behind by losing writers.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), ".art") << entry.path();
  }
}

TEST_F(ArtifactStoreTest, EvictsOldestFirstUnderByteCap) {
  CachedResult value = testResult(std::string(1024, 'c'));
  std::size_t oneArtifact = ArtifactStore::serialize(testKey("0"), value).size();
  // Room for ~3 artifacts; store 6 — the oldest must go, the newest survive.
  ArtifactStore store({dir_.string(), oneArtifact * 3 + oneArtifact / 2});
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(store.store(testKey(std::to_string(i)), value));
    // Keep mtimes strictly ordered even on coarse-timestamp filesystems.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto stats = store.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, oneArtifact * 3 + oneArtifact / 2);
  EXPECT_NE(store.load(testKey("5")), nullptr) << "newest artifact must survive eviction";
  EXPECT_EQ(store.load(testKey("0")), nullptr) << "oldest artifact must be evicted";
}

TEST_F(ArtifactStoreTest, EvictionMtimeTieBreaksByFilenameNotDirectoryOrder) {
  // Same-second writes are common on coarse-timestamp filesystems; when
  // mtimes collide the victim must be chosen by filename, not by whatever
  // order the directory iterator happens to yield (regression test for the
  // tie-break in evictLocked()).
  CachedResult value = testResult(std::string(1024, 'c'));
  std::size_t oneArtifact = ArtifactStore::serialize(testKey("0"), value).size();
  ArtifactStore store({dir_.string(), oneArtifact * 4 + oneArtifact / 2});

  std::vector<CacheKey> keys;
  for (int i = 0; i < 4; ++i) keys.push_back(testKey("tie" + std::to_string(i)));
  for (const auto& key : keys) ASSERT_TRUE(store.store(key, value));

  // Force an exact tie, backdated so the fifth artifact is strictly newer.
  auto stamp = fs::file_time_type::clock::now() - std::chrono::hours(1);
  for (const auto& key : keys) {
    fs::last_write_time(dir_ / ArtifactStore::fileNameFor(key), stamp);
  }

  CacheKey newest = testKey("newest");
  ASSERT_TRUE(store.store(newest, value));  // pushes past the cap: one eviction

  std::vector<std::string> names;
  for (const auto& key : keys) names.push_back(ArtifactStore::fileNameFor(key));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(store.stats().evictions, 1u);
  for (const auto& key : keys) {
    if (ArtifactStore::fileNameFor(key) == names.front()) {
      EXPECT_EQ(store.load(key), nullptr)
          << "the lexicographically-first filename must be the tie victim";
    } else {
      EXPECT_NE(store.load(key), nullptr) << ArtifactStore::fileNameFor(key);
    }
  }
  EXPECT_NE(store.load(newest), nullptr);
}

#ifdef MAT2C_FAULT_INJECTION
TEST_F(ArtifactStoreTest, InjectedWriteFaultsCountFailuresAndTornWritesMissCleanly) {
  ArtifactStore store({dir_.string(), 0});
  CacheKey key = testKey();

  // fail: a full/readonly disk — counted, nothing touches the directory.
  fault::setSpec("fail:store.write:1");
  EXPECT_FALSE(store.store(key, testResult()));
  EXPECT_EQ(store.stats().putFailures, 1u);
  EXPECT_EQ(store.stats().files, 0u);

  // torn: the image is truncated mid-write but the rename lands — exactly a
  // crash between write and fsync. The checksum must turn the damaged file
  // into a clean miss, never a wrong artifact.
  fault::setSpec("torn:store.write:1");
  EXPECT_TRUE(store.store(key, testResult()));
  fault::setSpec("");
  EXPECT_EQ(store.load(key), nullptr) << "torn artifact must load as a miss";
  EXPECT_GE(store.stats().corrupt, 1u);

  // With injection cleared the same key stores and loads normally.
  EXPECT_TRUE(store.store(key, testResult()));
  EXPECT_NE(store.load(key), nullptr);
}
#endif  // MAT2C_FAULT_INJECTION

TEST_F(ArtifactStoreTest, UnusableDirectoryDisablesTheStore) {
  fs::path file = dir_ / "not_a_dir";
  std::ofstream(file) << "occupied";
  ArtifactStore store({file.string(), 0});
  EXPECT_FALSE(store.ok());
  EXPECT_FALSE(store.error().empty());
  CacheKey key = testKey();
  EXPECT_EQ(store.load(key), nullptr);
  EXPECT_FALSE(store.store(key, testResult()));
  EXPECT_EQ(store.stats().putFailures, 1u);
}

// --- service integration ---------------------------------------------------

TEST_F(ArtifactStoreTest, KillAndRestartServesWarmWithZeroCompiles) {
  // The acceptance criterion: populate via server A, "kill" it (destructor),
  // start server B on the same directory with a cold memory cache — every
  // repeat request must come back from disk, compiles stays 0.
  constexpr int kDistinct = 3;
  {
    CompileService::Config config;
    config.threads = 2;
    config.storeDir = dir_.string();
    CompileService svcA(config);
    std::vector<CompileRequest> batch;
    for (int k = 0; k < kDistinct; ++k) batch.push_back(kernelRequest(k));
    for (const auto& r : svcA.compileBatch(std::move(batch))) ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(svcA.stats().compiles, static_cast<std::uint64_t>(kDistinct));
  }  // destructor drains write-behind puts and joins the workers

  CompileService::Config config;
  config.threads = 2;
  config.storeDir = dir_.string();
  CompileService svcB(config);
  std::vector<CompileRequest> batch;
  for (int k = 0; k < kDistinct; ++k) batch.push_back(kernelRequest(k));
  auto responses = svcB.compileBatch(std::move(batch));
  for (const auto& r : responses) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.cacheHit);
    EXPECT_TRUE(r.storeHit);
    ASSERT_NE(r.result, nullptr);
    EXPECT_FALSE(r.result->hasUnit());
    EXPECT_FALSE(r.result->cCode.empty());
  }
  auto stats = svcB.stats();
  EXPECT_EQ(stats.compiles, 0u) << "a warm restart must never recompile";
  EXPECT_EQ(stats.storeHits, static_cast<std::uint64_t>(kDistinct));
  EXPECT_TRUE(stats.storeEnabled);

  // Once promoted into the memory cache, repeats are plain memory hits.
  auto repeat = svcB.compileBatch({kernelRequest(0)});
  ASSERT_TRUE(repeat[0].ok);
  EXPECT_TRUE(repeat[0].cacheHit);
  EXPECT_FALSE(repeat[0].storeHit);
}

TEST_F(ArtifactStoreTest, CorruptArtifactTriggersCleanRecompile) {
  CompileRequest request = kernelRequest(7);
  {
    CompileService::Config config;
    config.threads = 1;
    config.storeDir = dir_.string();
    CompileService svc(config);
    ASSERT_TRUE(svc.compileBatch({request})[0].ok);
  }
  // Flip bits in every stored artifact.
  std::size_t damaged = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::string bytes;
    {
      std::ifstream in(entry.path(), std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 2] ^= 0x40;
    std::ofstream(entry.path(), std::ios::binary | std::ios::trunc)
        .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ++damaged;
  }
  ASSERT_GT(damaged, 0u);

  CompileService::Config config;
  config.threads = 1;
  config.storeDir = dir_.string();
  CompileService svc(config);
  auto response = svc.compileBatch({request})[0];
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_FALSE(response.cacheHit);
  EXPECT_FALSE(response.storeHit);
  auto stats = svc.stats();
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.store.corrupt, 1u);
  // The recompile re-persisted a good artifact: a third server hits again.
  svc.compileBatch({request});
}

TEST_F(ArtifactStoreTest, ConcurrentServersShareOneDirectory) {
  // Two live services on the same directory (the sibling-server scenario):
  // whichever compiles first persists; the other's NEXT request for the same
  // key is served from the shared store.
  CompileService::Config config;
  config.threads = 2;
  config.storeDir = dir_.string();
  CompileService svcA(config);
  CompileService svcB(config);

  ASSERT_TRUE(svcA.compileBatch({kernelRequest(1)})[0].ok);
  // svcA's write-behind is asynchronous; poll the directory briefly.
  for (int spin = 0; spin < 200 && fs::is_empty(dir_); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(fs::is_empty(dir_)) << "write-behind never persisted the artifact";

  auto response = svcB.compileBatch({kernelRequest(1)})[0];
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_TRUE(response.storeHit);
  EXPECT_EQ(svcB.stats().compiles, 0u);
}

}  // namespace
