#include <gtest/gtest.h>

#include "interp/value.hpp"

namespace mat2c {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, ScalarBasics) {
  Matrix m = Matrix::scalar(3.5);
  EXPECT_TRUE(m.isScalar());
  EXPECT_DOUBLE_EQ(m.scalarValue(), 3.5);
  EXPECT_FALSE(m.isComplex());
}

TEST(Matrix, ComplexScalar) {
  Matrix m = Matrix::scalar(Complex{1.0, -2.0});
  EXPECT_TRUE(m.isComplex());
  EXPECT_EQ(m.at(0), (Complex{1.0, -2.0}));
  EXPECT_THROW(m.scalarValue(), RuntimeError);
}

TEST(Matrix, ComplexScalarWithZeroImagStaysReal) {
  Matrix m = Matrix::scalar(Complex{1.0, 0.0});
  EXPECT_FALSE(m.isComplex());
}

TEST(Matrix, ZerosShape) {
  Matrix m = Matrix::zeros(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.numel(), 6u);
  EXPECT_FALSE(m.isScalar());
  EXPECT_FALSE(m.isVector());
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix m = Matrix::zeros(2, 2);
  m.set(0, 1, Complex{5.0, 0.0});
  EXPECT_DOUBLE_EQ(m.real(2), 5.0);  // element (0,1) is linear index 2
}

TEST(Matrix, RangeInclusive) {
  Matrix m = Matrix::range(1, 1, 5);
  ASSERT_EQ(m.numel(), 5u);
  EXPECT_DOUBLE_EQ(m.real(4), 5.0);
  EXPECT_TRUE(m.isRow());
}

TEST(Matrix, RangeWithStep) {
  Matrix m = Matrix::range(0, 0.5, 2);
  ASSERT_EQ(m.numel(), 5u);
  EXPECT_DOUBLE_EQ(m.real(3), 1.5);
}

TEST(Matrix, RangeEmptyAndNegative) {
  EXPECT_TRUE(Matrix::range(5, 1, 1).empty());
  Matrix m = Matrix::range(5, -2, 0);
  ASSERT_EQ(m.numel(), 3u);
  EXPECT_DOUBLE_EQ(m.real(2), 1.0);
}

TEST(Matrix, RangeZeroStepIsEmpty) { EXPECT_TRUE(Matrix::range(1, 0, 5).empty()); }

TEST(Matrix, SetPromotesToComplex) {
  Matrix m = Matrix::zeros(1, 2);
  m.set(1, Complex{0.0, 3.0});
  EXPECT_TRUE(m.isComplex());
  EXPECT_DOUBLE_EQ(m.imag(1), 3.0);
  EXPECT_DOUBLE_EQ(m.imag(0), 0.0);
}

TEST(Matrix, DropZeroImag) {
  Matrix m = Matrix::zeros(1, 2, /*complex=*/true);
  m.set(0, Complex{1.0, 0.0});
  m.dropZeroImag();
  EXPECT_FALSE(m.isComplex());
}

TEST(Matrix, StringRoundTrip) {
  Matrix m = Matrix::fromString("hi");
  EXPECT_TRUE(m.isString());
  EXPECT_EQ(m.stringValue(), "hi");
  EXPECT_EQ(m.numel(), 2u);
}

TEST(Matrix, Truthy) {
  EXPECT_TRUE(Matrix::scalar(1.0).truthy());
  EXPECT_FALSE(Matrix::scalar(0.0).truthy());
  EXPECT_FALSE(Matrix().truthy());
  Matrix m = Matrix::rowVector({1.0, 0.0});
  EXPECT_FALSE(m.truthy());
  Matrix m2 = Matrix::rowVector({1.0, 2.0});
  EXPECT_TRUE(m2.truthy());
}

TEST(Matrix, ResizePreserving) {
  Matrix m = Matrix::zeros(2, 2);
  m.set(1, 1, Complex{4.0, 0.0});
  m.resizePreserving(3, 3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 1).real(), 4.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2).real(), 0.0);
}

TEST(Elementwise, ScalarExpansion) {
  Matrix v = Matrix::rowVector({1, 2, 3});
  Matrix r = elementwise(ElemOp::Mul, v, Matrix::scalar(2.0));
  EXPECT_DOUBLE_EQ(r.real(2), 6.0);
  Matrix r2 = elementwise(ElemOp::Sub, Matrix::scalar(10.0), v);
  EXPECT_DOUBLE_EQ(r2.real(0), 9.0);
}

TEST(Elementwise, ShapeMismatchThrows) {
  Matrix a = Matrix::rowVector({1, 2});
  Matrix b = Matrix::rowVector({1, 2, 3});
  EXPECT_THROW(elementwise(ElemOp::Add, a, b), RuntimeError);
}

TEST(Elementwise, ComparisonGivesLogical) {
  Matrix v = Matrix::rowVector({1, 5, 3});
  Matrix r = elementwise(ElemOp::Gt, v, Matrix::scalar(2.0));
  EXPECT_TRUE(r.isLogical());
  EXPECT_DOUBLE_EQ(r.real(0), 0.0);
  EXPECT_DOUBLE_EQ(r.real(1), 1.0);
}

TEST(Elementwise, ComplexMultiply) {
  Matrix a = Matrix::scalar(Complex{1.0, 2.0});
  Matrix b = Matrix::scalar(Complex{3.0, -1.0});
  Matrix r = elementwise(ElemOp::Mul, a, b);
  EXPECT_EQ(r.at(0), (Complex{5.0, 5.0}));
}

TEST(Elementwise, RealPowNegativeBaseIntegerExponent) {
  Matrix r = elementwise(ElemOp::Pow, Matrix::scalar(-2.0), Matrix::scalar(3.0));
  EXPECT_FALSE(r.isComplex());
  EXPECT_DOUBLE_EQ(r.real(0), -8.0);
}

TEST(Elementwise, PowNegativeBaseFractionalExponentIsComplex) {
  Matrix r = elementwise(ElemOp::Pow, Matrix::scalar(-1.0), Matrix::scalar(0.5));
  EXPECT_TRUE(r.isComplex());
  EXPECT_NEAR(r.at(0).imag(), 1.0, 1e-12);
}

TEST(Matmul, Basic2x2) {
  Matrix a = Matrix::zeros(2, 2);
  a.set(0, 0, {1, 0});
  a.set(0, 1, {2, 0});
  a.set(1, 0, {3, 0});
  a.set(1, 1, {4, 0});
  Matrix r = matmul(a, a);
  EXPECT_DOUBLE_EQ(r.at(0, 0).real(), 7.0);
  EXPECT_DOUBLE_EQ(r.at(1, 1).real(), 22.0);
}

TEST(Matmul, InnerDimMismatchThrows) {
  Matrix a = Matrix::zeros(2, 3);
  Matrix b = Matrix::zeros(2, 3);
  EXPECT_THROW(matmul(a, b), RuntimeError);
}

TEST(Matmul, ScalarFallsBackToElementwise) {
  Matrix v = Matrix::rowVector({1, 2});
  Matrix r = matmul(v, Matrix::scalar(3.0));
  EXPECT_DOUBLE_EQ(r.real(1), 6.0);
}

TEST(Transpose, ConjugateVsPlain) {
  Matrix m = Matrix::zeros(1, 2, true);
  m.set(0, Complex{1.0, 2.0});
  m.set(1, Complex{3.0, -4.0});
  Matrix ct = transpose(m, true);
  EXPECT_EQ(ct.rows(), 2u);
  EXPECT_EQ(ct.at(0), (Complex{1.0, -2.0}));
  Matrix pt = transpose(m, false);
  EXPECT_EQ(pt.at(0), (Complex{1.0, 2.0}));
}

TEST(MaxAbsDiff, DetectsDifference) {
  Matrix a = Matrix::rowVector({1, 2, 3});
  Matrix b = Matrix::rowVector({1, 2.5, 3});
  EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 0.5);
  EXPECT_DOUBLE_EQ(maxAbsDiff(a, a), 0.0);
}

TEST(MaxAbsDiff, ShapeMismatchThrows) {
  EXPECT_THROW(maxAbsDiff(Matrix::zeros(1, 2), Matrix::zeros(2, 1)), RuntimeError);
}

}  // namespace
}  // namespace mat2c
