#include <gtest/gtest.h>

#include "parser/parser.hpp"

namespace mat2c {
namespace {

using namespace ast;

ProgramPtr parse(const std::string& src) {
  DiagnosticEngine diags;
  auto prog = parseSource(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.renderAll();
  return prog;
}

const Expr& rhsOf(const Program& p, std::size_t i = 0) {
  const auto& stmt = *p.scriptBody.at(i);
  EXPECT_EQ(stmt.kind, NodeKind::Assign);
  return *static_cast<const Assign&>(stmt).rhs;
}

TEST(Parser, SimpleAssignment) {
  auto p = parse("x = 42;");
  ASSERT_EQ(p->scriptBody.size(), 1u);
  const auto& a = static_cast<const Assign&>(*p->scriptBody[0]);
  EXPECT_EQ(a.targets[0].name, "x");
  EXPECT_EQ(a.rhs->kind, NodeKind::NumberLit);
}

TEST(Parser, PrecedenceMulOverAdd) {
  auto p = parse("x = 1 + 2 * 3;");
  const auto& b = static_cast<const Binary&>(rhsOf(*p));
  EXPECT_EQ(b.op, BinaryOp::Add);
  EXPECT_EQ(b.rhs->kind, NodeKind::Binary);
  EXPECT_EQ(static_cast<const Binary&>(*b.rhs).op, BinaryOp::MatMul);
}

TEST(Parser, PowerBindsTighterThanUnaryMinus) {
  // -2^2 parses as -(2^2)
  auto p = parse("x = -2^2;");
  const auto& u = rhsOf(*p);
  ASSERT_EQ(u.kind, NodeKind::Unary);
  EXPECT_EQ(static_cast<const Unary&>(u).op, UnaryOp::Neg);
  EXPECT_EQ(static_cast<const Unary&>(u).operand->kind, NodeKind::Binary);
}

TEST(Parser, PowerAllowsUnaryRhs) {
  auto p = parse("x = 2^-3;");
  const auto& b = static_cast<const Binary&>(rhsOf(*p));
  EXPECT_EQ(b.op, BinaryOp::MatPow);
  EXPECT_EQ(b.rhs->kind, NodeKind::Unary);
}

TEST(Parser, PowerIsLeftAssociative) {
  auto p = parse("x = 2^3^2;");
  const auto& b = static_cast<const Binary&>(rhsOf(*p));
  EXPECT_EQ(b.op, BinaryOp::MatPow);
  EXPECT_EQ(b.lhs->kind, NodeKind::Binary);
  EXPECT_EQ(b.rhs->kind, NodeKind::NumberLit);
}

TEST(Parser, RangeTwoAndThreePart) {
  auto p = parse("x = 1:10; y = 1:2:10;");
  const auto& r1 = static_cast<const Range&>(rhsOf(*p, 0));
  EXPECT_EQ(r1.step, nullptr);
  const auto& r2 = static_cast<const Range&>(rhsOf(*p, 1));
  ASSERT_NE(r2.step, nullptr);
}

TEST(Parser, RangeBelowComparison) {
  // (1:10) == 5 — colon binds tighter than ==
  auto p = parse("x = 1:10 == 5;");
  const auto& b = static_cast<const Binary&>(rhsOf(*p));
  EXPECT_EQ(b.op, BinaryOp::Eq);
  EXPECT_EQ(b.lhs->kind, NodeKind::Range);
}

TEST(Parser, IndexedAssignment) {
  auto p = parse("a(3) = 7;");
  const auto& a = static_cast<const Assign&>(*p->scriptBody[0]);
  EXPECT_EQ(a.targets[0].name, "a");
  ASSERT_EQ(a.targets[0].indices.size(), 1u);
}

TEST(Parser, TwoDimensionalIndexWithEndAndColon) {
  auto p = parse("b = a(2:end, :);");
  const auto& ci = static_cast<const CallIndex&>(rhsOf(*p));
  ASSERT_EQ(ci.args.size(), 2u);
  EXPECT_EQ(ci.args[0]->kind, NodeKind::Range);
  EXPECT_EQ(ci.args[1]->kind, NodeKind::Colon);
  const auto& range = static_cast<const Range&>(*ci.args[0]);
  EXPECT_EQ(range.stop->kind, NodeKind::End);
}

TEST(Parser, EndArithmetic) {
  auto p = parse("b = a(end-1);");
  const auto& ci = static_cast<const CallIndex&>(rhsOf(*p));
  const auto& sub = static_cast<const Binary&>(*ci.args[0]);
  EXPECT_EQ(sub.op, BinaryOp::Sub);
  EXPECT_EQ(sub.lhs->kind, NodeKind::End);
}

TEST(Parser, EndOutsideIndexIsError) {
  DiagnosticEngine diags;
  EXPECT_THROW(parseSource("x = end;", diags), CompileError);
}

TEST(Parser, MultiAssignment) {
  auto p = parse("[a, b] = size(x);");
  const auto& a = static_cast<const Assign&>(*p->scriptBody[0]);
  ASSERT_EQ(a.targets.size(), 2u);
  EXPECT_EQ(a.targets[0].name, "a");
  EXPECT_EQ(a.targets[1].name, "b");
}

TEST(Parser, MatrixLiteralCommas) {
  auto p = parse("m = [1, 2; 3, 4];");
  const auto& m = static_cast<const MatrixLit&>(rhsOf(*p));
  ASSERT_EQ(m.rows.size(), 2u);
  EXPECT_EQ(m.rows[0].size(), 2u);
}

TEST(Parser, MatrixLiteralSpaces) {
  auto p = parse("m = [1 2 3];");
  const auto& m = static_cast<const MatrixLit&>(rhsOf(*p));
  ASSERT_EQ(m.rows.size(), 1u);
  EXPECT_EQ(m.rows[0].size(), 3u);
}

TEST(Parser, MatrixSpaceMinusIsNewElement) {
  auto p = parse("m = [1 -2];");
  const auto& m = static_cast<const MatrixLit&>(rhsOf(*p));
  ASSERT_EQ(m.rows[0].size(), 2u);
}

TEST(Parser, MatrixSpacedMinusIsBinary) {
  auto p = parse("m = [1 - 2];");
  const auto& m = static_cast<const MatrixLit&>(rhsOf(*p));
  ASSERT_EQ(m.rows[0].size(), 1u);
  EXPECT_EQ(m.rows[0][0]->kind, NodeKind::Binary);
}

TEST(Parser, MatrixNewlineIsRowSeparator) {
  auto p = parse("m = [1 2\n3 4];");
  const auto& m = static_cast<const MatrixLit&>(rhsOf(*p));
  ASSERT_EQ(m.rows.size(), 2u);
}

TEST(Parser, EmptyMatrix) {
  auto p = parse("m = [];");
  const auto& m = static_cast<const MatrixLit&>(rhsOf(*p));
  EXPECT_TRUE(m.rows.empty());
}

TEST(Parser, IfElseifElse) {
  auto p = parse(
      "if a < 1\n  x = 1;\nelseif a < 2\n  x = 2;\nelse\n  x = 3;\nend");
  const auto& s = static_cast<const If&>(*p->scriptBody[0]);
  EXPECT_EQ(s.branches.size(), 2u);
  EXPECT_EQ(s.elseBody.size(), 1u);
}

TEST(Parser, ForLoop) {
  auto p = parse("for i = 1:10\n  s = s + i;\nend");
  const auto& s = static_cast<const For&>(*p->scriptBody[0]);
  EXPECT_EQ(s.var, "i");
  EXPECT_EQ(s.range->kind, NodeKind::Range);
  EXPECT_EQ(s.body.size(), 1u);
}

TEST(Parser, WhileWithBreakContinue) {
  auto p = parse("while x > 0\n  if y\n    break\n  end\n  continue\nend");
  const auto& s = static_cast<const While&>(*p->scriptBody[0]);
  EXPECT_EQ(s.body.size(), 2u);
}

TEST(Parser, SwitchCases) {
  auto p = parse(
      "switch mode\ncase 1\n  x = 1;\ncase 'fast'\n  x = 2;\notherwise\n  x = 3;\nend");
  const auto& s = static_cast<const Switch&>(*p->scriptBody[0]);
  EXPECT_EQ(s.cases.size(), 2u);
  EXPECT_EQ(s.otherwise.size(), 1u);
}

TEST(Parser, FunctionSingleOutput) {
  auto p = parse("function y = f(x)\ny = x + 1;\nend");
  ASSERT_EQ(p->functions.size(), 1u);
  const auto& f = *p->functions[0];
  EXPECT_EQ(f.name, "f");
  EXPECT_EQ(f.params, std::vector<std::string>{"x"});
  EXPECT_EQ(f.outs, std::vector<std::string>{"y"});
}

TEST(Parser, FunctionMultiOutput) {
  auto p = parse("function [a, b] = f(x, y)\na = x;\nb = y;\nend");
  const auto& f = *p->functions[0];
  EXPECT_EQ(f.outs.size(), 2u);
  EXPECT_EQ(f.params.size(), 2u);
}

TEST(Parser, FunctionNoOutputNoEnd) {
  auto p = parse("function f(x)\ny = x;");
  const auto& f = *p->functions[0];
  EXPECT_TRUE(f.outs.empty());
  EXPECT_EQ(f.body.size(), 1u);
}

TEST(Parser, TwoFunctions) {
  auto p = parse("function y = f(x)\ny = g(x);\nend\nfunction y = g(x)\ny = x;\nend");
  EXPECT_EQ(p->functions.size(), 2u);
  EXPECT_NE(p->findFunction("g"), nullptr);
  EXPECT_EQ(p->findFunction("h"), nullptr);
}

TEST(Parser, TransposePostfix) {
  auto p = parse("y = x';");
  EXPECT_EQ(rhsOf(*p).kind, NodeKind::Transpose);
  EXPECT_TRUE(static_cast<const Transpose&>(rhsOf(*p)).conjugate);
}

TEST(Parser, NestedCalls) {
  auto p = parse("y = f(g(x), h(1, 2));");
  const auto& ci = static_cast<const CallIndex&>(rhsOf(*p));
  ASSERT_EQ(ci.args.size(), 2u);
  EXPECT_EQ(ci.args[0]->kind, NodeKind::CallIndex);
}

TEST(Parser, ShortCircuitPrecedence) {
  // a || b && c => a || (b && c)
  auto p = parse("x = a || b && c;");
  const auto& b = static_cast<const Binary&>(rhsOf(*p));
  EXPECT_EQ(b.op, BinaryOp::OrOr);
  EXPECT_EQ(static_cast<const Binary&>(*b.rhs).op, BinaryOp::AndAnd);
}

TEST(Parser, CommaSeparatedStatements) {
  auto p = parse("a = 1, b = 2; c = 3");
  EXPECT_EQ(p->scriptBody.size(), 3u);
}

TEST(Parser, DumpContainsStructure) {
  auto p = parse("for i = 1:3\n  a(i) = i * 2;\nend");
  std::string d = dump(*p);
  EXPECT_NE(d.find("For i"), std::string::npos);
  EXPECT_NE(d.find("Assign a(...)"), std::string::npos);
}

TEST(Parser, ErrorOnBadTarget) {
  DiagnosticEngine diags;
  EXPECT_THROW(parseSource("1 + 2 = x;", diags), CompileError);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Parser, ErrorOnCellArray) {
  DiagnosticEngine diags;
  EXPECT_THROW(parseSource("x = {1, 2};", diags), CompileError);
}

TEST(Parser, ParenthesizedExpressionAcrossNewlines) {
  auto p = parse("x = (1 + ...\n 2);");
  EXPECT_EQ(rhsOf(*p).kind, NodeKind::Binary);
}

}  // namespace
}  // namespace mat2c
