// Type and shape inference tests.
#include <gtest/gtest.h>

#include "parser/parser.hpp"
#include "sema/sema.hpp"

namespace mat2c::sema {
namespace {

FunctionSummary infer(const std::string& src, const std::string& entry,
                      const std::vector<ArgSpec>& args) {
  DiagnosticEngine diags;
  auto prog = parseSource(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.renderAll();
  return checkProgram(*prog, entry, args, diags);
}

Type outType(const std::string& body, const std::vector<ArgSpec>& args,
             const std::string& params = "x") {
  std::string src = "function y = f(" + params + ")\n" + body + "\nend\n";
  return infer(src, "f", args).outTypes.at(0);
}

TEST(Sema, ScalarArithmetic) {
  Type t = outType("y = x * 2 + 1;", {ArgSpec::scalar()});
  EXPECT_EQ(t, Type::realScalar());
}

TEST(Sema, VectorShapePropagates) {
  Type t = outType("y = x + 1;", {ArgSpec::row(8)});
  EXPECT_EQ(t.shape, Shape::row(8));
  EXPECT_EQ(t.elem, Elem::Real);
}

TEST(Sema, ComplexPromotionThroughArithmetic) {
  Type t = outType("y = x * 2i;", {ArgSpec::scalar()});
  EXPECT_EQ(t.elem, Elem::Complex);
}

TEST(Sema, ComparisonsAreBool) {
  Type t = outType("y = x > 0;", {ArgSpec::row(4)});
  EXPECT_EQ(t.elem, Elem::Bool);
  EXPECT_EQ(t.shape, Shape::row(4));
}

TEST(Sema, BoolDecaysToRealInArithmetic) {
  Type t = outType("y = (x > 0) + 1;", {ArgSpec::row(4)});
  EXPECT_EQ(t.elem, Elem::Real);
}

TEST(Sema, TransposeSwapsShape) {
  Type t = outType("y = x';", {ArgSpec::matrix(2, 5)});
  EXPECT_EQ(t.shape, Shape::matrix(5, 2));
}

TEST(Sema, MatMulShapes) {
  std::string src =
      "function y = f(a, b)\ny = a * b;\nend\n";
  Type t = infer(src, "f", {ArgSpec::matrix(3, 4), ArgSpec::matrix(4, 7)}).outTypes[0];
  EXPECT_EQ(t.shape, Shape::matrix(3, 7));
}

TEST(Sema, MatMulInnerMismatchFails) {
  std::string src = "function y = f(a, b)\ny = a * b;\nend\n";
  DiagnosticEngine diags;
  auto prog = parseSource(src, diags);
  EXPECT_THROW(
      checkProgram(*prog, "f", {ArgSpec::matrix(3, 4), ArgSpec::matrix(5, 7)}, diags),
      CompileError);
}

TEST(Sema, ElementwiseShapeMismatchFails) {
  DiagnosticEngine diags;
  auto prog = parseSource("function y = f(a, b)\ny = a + b;\nend\n", diags);
  EXPECT_THROW(checkProgram(*prog, "f", {ArgSpec::row(4), ArgSpec::row(5)}, diags),
               CompileError);
}

TEST(Sema, ConstantLatticeDrivesZeros) {
  Type t = outType("n = length(x); y = zeros(1, n);", {ArgSpec::row(17)});
  EXPECT_EQ(t.shape, Shape::row(17));
}

TEST(Sema, ConstantArithmeticFolds) {
  Type t = outType("n = length(x); y = zeros(1, 2 * n + 1);", {ArgSpec::row(8)});
  EXPECT_EQ(t.shape, Shape::row(17));
}

TEST(Sema, SizeQueryFolds) {
  Type t = outType("m = size(x, 1); y = zeros(m, m);", {ArgSpec::matrix(3, 9)});
  EXPECT_EQ(t.shape, Shape::matrix(3, 3));
}

TEST(Sema, RangeLength) {
  Type t = outType("y = 1:10;", {ArgSpec::scalar()});
  EXPECT_EQ(t.shape, Shape::row(10));
  Type t2 = outType("y = 0:0.5:2;", {ArgSpec::scalar()});
  EXPECT_EQ(t2.shape, Shape::row(5));
}

TEST(Sema, SliceShapes) {
  Type t = outType("y = x(2:5);", {ArgSpec::row(10)});
  EXPECT_EQ(t.shape, Shape::row(4));
  Type t2 = outType("y = x(2:end);", {ArgSpec::row(10)});
  EXPECT_EQ(t2.shape, Shape::row(9));
}

TEST(Sema, TwoDimSliceShapes) {
  Type t = outType("y = x(2, :);", {ArgSpec::matrix(4, 6)});
  EXPECT_EQ(t.shape, Shape::matrix(1, 6));
  Type t2 = outType("y = x(:, 3);", {ArgSpec::matrix(4, 6)});
  EXPECT_EQ(t2.shape, Shape::matrix(4, 1));
}

TEST(Sema, ColonFlattensToColumn) {
  Type t = outType("y = x(:);", {ArgSpec::matrix(3, 4)});
  EXPECT_EQ(t.shape, Shape::col(12));
}

TEST(Sema, ScalarIndexIsScalar) {
  Type t = outType("y = x(3);", {ArgSpec::row(10)});
  EXPECT_TRUE(t.isScalar());
}

TEST(Sema, AccumulatorPromotionFixpoint) {
  // acc starts real, becomes complex via the loop — fixpoint must find it.
  Type t = outType(
      "acc = 0;\nfor k = 1:4\n  acc = acc + x(k) * 1i;\nend\ny = acc;",
      {ArgSpec::row(4)});
  EXPECT_EQ(t.elem, Elem::Complex);
}

TEST(Sema, IfJoinShapes) {
  Type t = outType(
      "if x > 0\n  y = 1;\nelse\n  y = 2;\nend", {ArgSpec::scalar()});
  EXPECT_TRUE(t.isScalar());
}

TEST(Sema, ReductionShapes) {
  EXPECT_TRUE(outType("y = sum(x);", {ArgSpec::row(9)}).isScalar());
  Type t = outType("y = sum(x);", {ArgSpec::matrix(3, 5)});
  EXPECT_EQ(t.shape, Shape::matrix(1, 5));
  EXPECT_TRUE(outType("y = norm(x);", {ArgSpec::row(9, true)}).isScalar());
}

TEST(Sema, SumOfComplexIsComplex) {
  Type t = outType("y = sum(x);", {ArgSpec::row(9, /*complex=*/true)});
  EXPECT_EQ(t.elem, Elem::Complex);
}

TEST(Sema, AbsOfComplexIsReal) {
  Type t = outType("y = abs(x);", {ArgSpec::row(9, true)});
  EXPECT_EQ(t.elem, Elem::Real);
  EXPECT_EQ(t.shape, Shape::row(9));
}

TEST(Sema, UserFunctionSpecialization) {
  std::string src =
      "function y = f(x)\ny = g(x) + g(x');\nend\n"
      "function y = g(a)\ny = sum(a .* a);\nend\n";
  Type t = infer(src, "f", {ArgSpec::row(5)}).outTypes[0];
  EXPECT_TRUE(t.isScalar());
}

TEST(Sema, RecursionRejected) {
  std::string src = "function y = f(x)\ny = f(x - 1);\nend\n";
  DiagnosticEngine diags;
  auto prog = parseSource(src, diags);
  EXPECT_THROW(checkProgram(*prog, "f", {ArgSpec::scalar()}, diags), CompileError);
}

TEST(Sema, UndefinedVariableFails) {
  DiagnosticEngine diags;
  auto prog = parseSource("function y = f(x)\ny = nosuch + 1;\nend\n", diags);
  EXPECT_THROW(checkProgram(*prog, "f", {ArgSpec::scalar()}, diags), CompileError);
}

TEST(Sema, IndexedAssignRequiresPreallocation) {
  DiagnosticEngine diags;
  auto prog = parseSource("function y = f(x)\nq(3) = x;\ny = q;\nend\n", diags);
  EXPECT_THROW(checkProgram(*prog, "f", {ArgSpec::scalar()}, diags), CompileError);
}

TEST(Sema, IndexedStorePromotesElement) {
  Type t = outType("y = zeros(1, 4);\ny(2) = x * 1i;", {ArgSpec::scalar()});
  EXPECT_EQ(t.elem, Elem::Complex);
  EXPECT_EQ(t.shape, Shape::row(4));
}

TEST(Sema, MultiOutputSize) {
  std::string src = "function [r, c] = f(x)\n[r, c] = size(x);\nend\n";
  auto summary = infer(src, "f", {ArgSpec::matrix(3, 8)});
  ASSERT_EQ(summary.outTypes.size(), 2u);
  EXPECT_TRUE(summary.outTypes[0].isScalar());
}

TEST(Sema, MatrixLiteralShape) {
  Type t = outType("y = [1 2 3; 4 5 6];", {ArgSpec::scalar()});
  EXPECT_EQ(t.shape, Shape::matrix(2, 3));
}

TEST(Sema, StringsRejected) {
  DiagnosticEngine diags;
  auto prog = parseSource("function y = f(x)\ny = 'nope';\nend\n", diags);
  EXPECT_THROW(checkProgram(*prog, "f", {ArgSpec::scalar()}, diags), CompileError);
}

TEST(Sema, TypeToString) {
  EXPECT_EQ(Type::realScalar().toString(), "real[1x1]");
  EXPECT_EQ(Type::complex(Shape::row(4)).toString(), "complex[1x4]");
  Type dyn{Elem::Real, Shape::dynamic()};
  EXPECT_EQ(dyn.toString(), "real[?x?]");
}

TEST(Sema, JoinRules) {
  EXPECT_EQ(joinElem(Elem::Real, Elem::Complex), Elem::Complex);
  EXPECT_EQ(joinElem(Elem::Bool, Elem::Bool), Elem::Bool);
  Shape j = joinShape(Shape::row(4), Shape::row(5));
  EXPECT_FALSE(j.cols.isKnown());
  EXPECT_TRUE(j.rows.isKnown());
}

}  // namespace
}  // namespace mat2c::sema
