// Public-API tests: Compiler/CompiledUnit surface, diagnostics, reports.
#include <gtest/gtest.h>

#include <algorithm>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "driver/report.hpp"

namespace mat2c {
namespace {

using sema::ArgSpec;

TEST(Driver, CompileErrorCarriesLocationAndMessage) {
  Compiler compiler;
  try {
    compiler.compileSource("function y = f(x)\ny = nosuch + 1;\nend\n", "f",
                           {ArgSpec::scalar()}, CompileOptions::proposed());
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("nosuch"), std::string::npos);
    EXPECT_NE(what.find("2:"), std::string::npos);  // line number
  }
  EXPECT_TRUE(compiler.diagnostics().hasErrors());
}

TEST(Driver, DiagnosticsResetBetweenCompilations) {
  Compiler compiler;
  EXPECT_THROW(compiler.compileSource("function y = f(x)\ny = qq;\nend\n", "f",
                                      {ArgSpec::scalar()}, CompileOptions::proposed()),
               CompileError);
  auto unit = compiler.compileSource("function y = f(x)\ny = x;\nend\n", "f",
                                     {ArgSpec::scalar()}, CompileOptions::proposed());
  EXPECT_FALSE(compiler.diagnostics().hasErrors());
  EXPECT_DOUBLE_EQ(unit.run({Matrix::scalar(5)}).outputs[0].scalarValue(), 5.0);
}

TEST(Driver, ParseErrorSurfaceviaCompileError) {
  Compiler compiler;
  EXPECT_THROW(compiler.compileSource("function y = f(x\ny = 1;\nend\n", "f",
                                      {ArgSpec::scalar()}, CompileOptions::proposed()),
               CompileError);
}

TEST(Driver, MissingEntryFunction) {
  Compiler compiler;
  EXPECT_THROW(compiler.compileSource("function y = g(x)\ny = x;\nend\n", "f",
                                      {ArgSpec::scalar()}, CompileOptions::proposed()),
               CompileError);
}

TEST(Driver, WrongArgumentCount) {
  Compiler compiler;
  EXPECT_THROW(compiler.compileSource("function y = f(a, b)\ny = a + b;\nend\n", "f",
                                      {ArgSpec::scalar()}, CompileOptions::proposed()),
               CompileError);
}

TEST(Driver, UnitExposesFunctionAndIsa) {
  Compiler compiler;
  auto unit = compiler.compileSource("function [y, n] = f(x)\ny = x * 2;\nn = sum(x);\nend\n",
                                     "f", {ArgSpec::row(4)}, CompileOptions::proposed());
  EXPECT_EQ(unit.fn().name, "f");
  ASSERT_EQ(unit.fn().outs.size(), 2u);
  EXPECT_TRUE(unit.fn().outs[0].isArray);
  EXPECT_FALSE(unit.fn().outs[1].isArray);
  EXPECT_EQ(unit.isa().name(), "dspx");
  EXPECT_FALSE(unit.lirDump().empty());
}

TEST(Driver, CoderLikeStripsCustomInstructionFeatures) {
  Compiler compiler;
  auto unit = compiler.compileSource("function y = f(x)\ny = x;\nend\n", "f",
                                     {ArgSpec::row(4)}, CompileOptions::coderLike());
  EXPECT_FALSE(unit.isa().hasCmul());
  EXPECT_FALSE(unit.isa().hasFma());
  EXPECT_TRUE(unit.isa().hasZol());  // datapath-independent features remain
  EXPECT_EQ(unit.isa().lanesF64(), 8);
}

TEST(Driver, MultiOutputValidation) {
  const char* src =
      "function [lo, hi] = f(x)\nlo = min(x);\nhi = max(x);\nend\n";
  Compiler compiler;
  auto unit = compiler.compileSource(src, "f", {ArgSpec::row(8)},
                                     CompileOptions::proposed());
  kernels::InputGen gen(71);
  EXPECT_LE(validateAgainstInterpreter(src, "f", unit, {gen.rowVector(8)}), 0.0);
}

TEST(Driver, UnitIsCopyable) {
  Compiler compiler;
  auto unit = compiler.compileSource("function y = f(x)\ny = x + 1;\nend\n", "f",
                                     {ArgSpec::scalar()}, CompileOptions::proposed());
  CompiledUnit copy = unit;  // shared LIR
  EXPECT_DOUBLE_EQ(copy.run({Matrix::scalar(1)}).outputs[0].scalarValue(), 2.0);
  EXPECT_DOUBLE_EQ(unit.run({Matrix::scalar(1)}).outputs[0].scalarValue(), 2.0);
}

TEST(Report, TableFormatsAndAligns) {
  report::Table t({"a", "long header"});
  t.addRow({"x", "1"});
  t.addRow({"longer cell", "2"});
  std::string s = t.toString();
  EXPECT_NE(s.find("| a           | long header |"), std::string::npos);
  EXPECT_NE(s.find("|-"), std::string::npos);
  EXPECT_EQ(report::Table::cycles(1234567), "1,234,567");
  EXPECT_EQ(report::Table::num(3.14159, 2), "3.14");
}

TEST(Report, ShortRowsPad) {
  report::Table t({"a", "b", "c"});
  t.addRow({"only"});
  EXPECT_NE(t.toString().find("| only |"), std::string::npos);
}

TEST(Driver, ReportExposesPerPassRecords) {
  Compiler compiler;
  auto unit = compiler.compileSource("function y = f(x)\ny = x .* x;\nend\n", "f",
                                     {ArgSpec::row(32)}, CompileOptions::proposed());
  const auto& passes = unit.optimizationReport().passes;
  ASSERT_FALSE(passes.empty());
  EXPECT_EQ(passes.front().name, "constfold");
  EXPECT_EQ(passes.back().name, "dce.final");
  for (const auto& p : passes) EXPECT_GT(p.after.statements, 0) << p.name;
}

TEST(Driver, CoderLikeStillSinksDecls) {
  // Bugfix regression: sinkdecls was gated on vectorization, so CoderLike
  // pipelines silently lost the cleanup.
  Compiler compiler;
  auto unit = compiler.compileSource("function y = f(x)\ny = x;\nend\n", "f",
                                     {ArgSpec::row(4)}, CompileOptions::coderLike());
  bool sawSink = false;
  bool sawVectorize = false;
  for (const auto& p : unit.optimizationReport().passes) {
    sawSink |= p.name == "sinkdecls";
    sawVectorize |= p.name == "vectorize";
  }
  EXPECT_TRUE(sawSink);
  EXPECT_FALSE(sawVectorize);
}

TEST(Driver, VerifyEachOptionPassesCleanPipelines) {
  Compiler compiler;
  CompileOptions options = CompileOptions::proposed();
  options.verifyEach = true;
  auto unit = compiler.compileSource("function y = f(x, h)\ny = x .* h;\nend\n", "f",
                                     {ArgSpec::row(16), ArgSpec::row(16)}, options);
  auto r = unit.run({Matrix::zeros(1, 16), Matrix::zeros(1, 16)});
  ASSERT_EQ(r.outputs.size(), 1u);
}

TEST(Driver, TracePassesHookObservesPipeline) {
  Compiler compiler;
  CompileOptions options = CompileOptions::proposed();
  std::vector<std::string> traced;
  options.tracePasses = [&](const opt::PassRecord& rec, const lir::Function&) {
    traced.push_back(rec.name);
  };
  auto unit = compiler.compileSource("function y = f(x)\ny = x + 1;\nend\n", "f",
                                     {ArgSpec::row(8)}, options);
  EXPECT_EQ(traced.size(), unit.optimizationReport().passes.size());
}

TEST(Driver, CompilationIsDeterministic) {
  // Byte-identical output for identical input is the correctness
  // precondition for the compile cache and single-flight dedup in
  // src/service/: a cached unit must be indistinguishable from a fresh
  // compile. Two independent Compiler instances keep hidden state honest.
  const char* src =
      "function y = fir(x, h)\n"
      "y = 0;\n"
      "for k = 1:length(x)\n"
      "  y = y + x(k) * h(k);\n"
      "end\n"
      "end\n";
  std::vector<ArgSpec> specs = {ArgSpec::row(64), ArgSpec::row(64)};
  Compiler first;
  Compiler second;
  auto a = first.compileSource(src, "fir", specs, CompileOptions::proposed());
  auto b = second.compileSource(src, "fir", specs, CompileOptions::proposed());
  EXPECT_EQ(a.cCode(), b.cCode());
  EXPECT_EQ(a.lirDump(), b.lirDump());
  // Reports match structurally (wall times naturally differ).
  EXPECT_EQ(a.optimizationReport().idiomRewrites, b.optimizationReport().idiomRewrites);
  EXPECT_EQ(a.optimizationReport().checksRemoved, b.optimizationReport().checksRemoved);
  EXPECT_EQ(a.optimizationReport().vec.loopsVectorized,
            b.optimizationReport().vec.loopsVectorized);
  EXPECT_EQ(a.optimizationReport().vec.missed, b.optimizationReport().vec.missed);
  ASSERT_EQ(a.optimizationReport().passes.size(), b.optimizationReport().passes.size());
  for (std::size_t i = 0; i < a.optimizationReport().passes.size(); ++i) {
    const auto& pa = a.optimizationReport().passes[i];
    const auto& pb = b.optimizationReport().passes[i];
    EXPECT_EQ(pa.name, pb.name);
    EXPECT_TRUE(pa.before == pb.before) << pa.name;
    EXPECT_TRUE(pa.after == pb.after) << pa.name;
    EXPECT_EQ(pa.idiomRewrites, pb.idiomRewrites) << pa.name;
    EXPECT_EQ(pa.loopsVectorized, pb.loopsVectorized) << pa.name;
  }
  // And a recompile by the *same* instance is also identical.
  auto c = first.compileSource(src, "fir", specs, CompileOptions::proposed());
  EXPECT_EQ(a.cCode(), c.cCode());
}

TEST(Report, TelemetryJsonHasOneRecordPerPass) {
  Compiler compiler;
  auto unit = compiler.compileSource("function y = f(x, h)\ny = 0;\n"
                                     "for k = 1:length(x)\n  y = y + x(k) * h(k);\nend\nend\n",
                                     "f", {ArgSpec::row(64), ArgSpec::row(64)},
                                     CompileOptions::proposed());
  std::string json = report::telemetryJson(unit.optimizationReport(), "f", "dspx");
  EXPECT_NE(json.find("\"entry\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"isa\": \"dspx\""), std::string::npos);
  for (const auto& p : unit.optimizationReport().passes) {
    EXPECT_NE(json.find("\"name\": \"" + p.name + "\""), std::string::npos) << p.name;
  }
  // Structural sanity: brace/bracket balance and key presence per record.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  auto occurrences = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(occurrences("\"millis\""), unit.optimizationReport().passes.size());
  EXPECT_EQ(occurrences("\"before\""), unit.optimizationReport().passes.size());
  EXPECT_EQ(occurrences("\"after\""), unit.optimizationReport().passes.size());
  EXPECT_EQ(occurrences("\"counters\""), unit.optimizationReport().passes.size());
}

}  // namespace
}  // namespace mat2c
