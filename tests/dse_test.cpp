// DSE subsystem tests (src/dse): idiom mining, candidate synthesis, the
// fused-costing exactness contract with the VM, and a small end-to-end
// exploration with oracle-checked emission. Labeled `dse` (ctest -L dse).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "dse/dse.hpp"

namespace mat2c::dse {
namespace {

/// Compiles `spec` for `point`, runs it once with a statement profile, and
/// returns (unit, run result, mined instances). The unit must outlive the
/// instances — their node pointers refer into its LIR.
struct MinedKernel {
  CompiledUnit unit;
  vm::RunResult run;
  std::vector<IdiomInstance> instances;
};

MinedKernel mineKernel(const kernels::KernelSpec& spec, const DesignPoint& point) {
  Compiler compiler;
  CompileOptions opts;
  opts.isa = toIsa(point, "dse_test");
  MinedKernel mk{compiler.compileSource(spec.source, spec.entry, spec.argSpecs, opts),
                 {},
                 {}};
  vm::StmtProfile profile;
  vm::Machine machine(mk.unit.isa());
  machine.setProfile(&profile);
  mk.run = machine.run(mk.unit.fn(), spec.args);
  mk.instances = mineFunction(mk.unit.fn(), profile);
  return mk;
}

/// Widest featureless point — the configuration explore() mines on, where
/// mul->add and conj->mul chains are still unfused in the LIR.
DesignPoint featurelessW8() {
  DesignPoint p;
  p.lanesF64 = 8;
  p.lanesC64 = 4;
  p.zol = p.agu = true;
  return p;
}

TEST(DseMine, FirYieldsMulAddChains) {
  auto spec = kernels::makeFir(256, 16, 1);
  auto mk = mineKernel(spec, featurelessW8());
  ASSERT_FALSE(mk.instances.empty());
  bool sawMulAdd = false;
  for (const auto& inst : mk.instances) {
    EXPECT_GE(inst.ops.size(), 2u);
    EXPECT_LE(inst.ops.size(), 4u);
    EXPECT_GT(inst.dynCount, 0.0);
    EXPECT_EQ(inst.nodes.size() + (inst.store ? 1u : 0u), inst.ops.size());
    if (inst.signature.find("mul") != std::string::npos &&
        inst.signature.find("add") != std::string::npos)
      sawMulAdd = true;
  }
  // The FIR inner product is a mul->add reduction; with no fma feature the
  // chain is unfused in the LIR and the miner must surface it.
  EXPECT_TRUE(sawMulAdd);
}

TEST(DseMine, AggregationDedupsByHashAndSumsDynCounts) {
  auto fir = mineKernel(kernels::makeFir(256, 16, 1), featurelessW8());
  auto cdot = mineKernel(kernels::makeCdot(512, 4), featurelessW8());
  auto idioms = aggregateIdioms({fir.instances, cdot.instances});
  ASSERT_FALSE(idioms.empty());
  // Sorted by descending dynamic count, unique hashes.
  for (std::size_t i = 1; i < idioms.size(); ++i) {
    EXPECT_GE(idioms[i - 1].dynCount, idioms[i].dynCount);
    for (std::size_t j = 0; j < i; ++j) EXPECT_NE(idioms[i].hash, idioms[j].hash);
  }
  // Aggregate dynCount conservation: per-idiom sums equal instance sums.
  double instanceTotal = 0.0;
  for (const auto& inst : fir.instances) instanceTotal += inst.dynCount;
  for (const auto& inst : cdot.instances) instanceTotal += inst.dynCount;
  double idiomTotal = 0.0;
  for (const auto& idiom : idioms) {
    idiomTotal += idiom.dynCount;
    EXPECT_GE(idiom.kernels, 1);
    EXPECT_LE(idiom.kernels, 2);
  }
  EXPECT_DOUBLE_EQ(idiomTotal, instanceTotal);
}

TEST(DseCandidates, CostModelSanity) {
  auto fir = mineKernel(kernels::makeFir(256, 16, 1), featurelessW8());
  auto idioms = aggregateIdioms({fir.instances});
  auto costRef = toIsa(featurelessW8(), "dse_costref");
  auto candidates = synthesizeCandidates(idioms, costRef, 4);
  ASSERT_FALSE(candidates.empty());
  EXPECT_LE(candidates.size(), 4u);
  for (const auto& c : candidates) {
    double sum = 0.0, maxMember = 0.0;
    for (isa::Op op : c.ops) {
      sum += costRef.cost(op);
      maxMember = std::max(maxMember, costRef.cost(op));
    }
    // Dual-issue fusion: never faster than the slowest member or half the
    // serial cost, and strictly profitable (else it would not be a candidate).
    EXPECT_GE(c.cycles, maxMember);
    EXPECT_GE(c.cycles, std::ceil(sum / 2.0) - 1e-9);
    EXPECT_LT(c.cycles, sum);
    EXPECT_DOUBLE_EQ(c.latency, sum);
    EXPECT_GT(c.hwUnits, 0.0);
    EXPECT_GT(c.estSavedCycles, 0.0);
  }
  // Ranked most-profitable-first.
  for (std::size_t i = 1; i < candidates.size(); ++i)
    EXPECT_GE(candidates[i - 1].estSavedCycles, candidates[i].estSavedCycles);
}

TEST(DseCandidates, HwCostCalibration) {
  // The scale is calibrated so the paper's hand-written dspx lands at 70 and
  // scalar is an order of magnitude cheaper; exploration compares against
  // these anchors.
  EXPECT_DOUBLE_EQ(hwCostEstimate(isa::IsaDescription::preset("dspx")), 70.0);
  EXPECT_LT(hwCostEstimate(isa::IsaDescription::preset("scalar")), 20.0);
  EXPECT_GT(hwCostEstimate(isa::IsaDescription::preset("dspx_w16")),
            hwCostEstimate(isa::IsaDescription::preset("dspx")));
}

TEST(DseTile, AnalyticSavingMatchesVmMeasurement) {
  // The exactness contract behind analytic rescoring: the saving tileFused()
  // predicts equals what the VM measures when the same tiling is installed
  // via the FusedCosting hook.
  auto spec = kernels::makeFir(256, 16, 1);
  auto mk = mineKernel(spec, featurelessW8());
  auto idioms = aggregateIdioms({mk.instances});
  auto variant = toIsa(featurelessW8(), "dse_variant");
  auto candidates = synthesizeCandidates(idioms, variant, 2);
  ASSERT_FALSE(candidates.empty());
  std::vector<int> selection;
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) selection.push_back(i);

  vm::FusedCosting costing;
  double analytic = tileFused(mk.instances, candidates, selection, variant, &costing);
  ASSERT_GT(analytic, 0.0);
  ASSERT_FALSE(costing.roots.empty());

  vm::Machine machine(mk.unit.isa());
  machine.setFusedCosting(&costing);
  auto fusedRun = machine.run(mk.unit.fn(), spec.args);
  EXPECT_DOUBLE_EQ(fusedRun.cycles.fusedSavedCycles, analytic);
  EXPECT_DOUBLE_EQ(fusedRun.cycles.total, mk.run.cycles.total - analytic);
  EXPECT_GT(fusedRun.cycles.fusedOpsExecuted, 0u);
  // Costing is observational only — outputs must be bit-identical.
  ASSERT_EQ(fusedRun.outputs.size(), mk.run.outputs.size());
  for (std::size_t i = 0; i < fusedRun.outputs.size(); ++i) {
    ASSERT_EQ(fusedRun.outputs[i].numel(), mk.run.outputs[i].numel());
    for (std::size_t j = 0; j < fusedRun.outputs[i].numel(); ++j)
      EXPECT_EQ(fusedRun.outputs[i].real(j), mk.run.outputs[i].real(j));
  }
}

TEST(DseTile, EmptySelectionSavesNothing) {
  auto mk = mineKernel(kernels::makeFir(256, 16, 1), featurelessW8());
  auto variant = toIsa(featurelessW8(), "dse_variant");
  EXPECT_DOUBLE_EQ(tileFused(mk.instances, {}, {}, variant), 0.0);
}

TEST(DseExplore, SmallCorpusEndToEnd) {
  ExploreOptions opts;
  opts.corpus = {kernels::makeFir(256, 16, 1), kernels::makeCdot(512, 4)};
  opts.laneWidths = {2, 8};
  opts.memLaneChoices = {8};
  opts.topCandidates = 2;
  auto r = explore(opts);

  EXPECT_FALSE(r.idioms.empty());
  EXPECT_GT(r.pointsEvaluated, 0);

  // Pareto frontier: ascending hardware cost, strictly increasing geomean.
  ASSERT_GE(r.pareto.size(), 2u);
  for (std::size_t i = 1; i < r.pareto.size(); ++i) {
    EXPECT_GE(r.pareto[i].hwCost, r.pareto[i - 1].hwCost);
    EXPECT_GT(r.pareto[i].geomean, r.pareto[i - 1].geomean);
  }

  // The emitted winner: expressible, within dspx's hardware budget, at least
  // as fast (the dspx-equivalent point is in the enumeration, so this is
  // guaranteed, not luck), and VM-confirmed.
  EXPECT_TRUE(r.best.expressible);
  EXPECT_TRUE(r.best.measured);
  EXPECT_LE(r.best.hwCost, r.dspxRef.hwCost + 1e-9);
  EXPECT_GE(r.best.geomean, r.dspxRef.geomean - 1e-9);
  for (const auto& [name, err] : r.bestMaxAbsErr) EXPECT_LE(err, 1e-9) << name;

  // Emission: the .isa file text (comment header included) parses back to a
  // description with the winner's fingerprint.
  DiagnosticEngine diags;
  auto reloaded = isa::IsaDescription::parse(isaFileText(r), diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.renderAll();
  EXPECT_EQ(reloaded.fingerprint(), r.bestIsa.fingerprint());

  // The reloaded description drives a fresh compile whose cycle counts match
  // the recorded winner.
  Compiler compiler;
  for (const auto& spec : opts.corpus) {
    CompileOptions copts;
    copts.isa = reloaded;
    auto unit = compiler.compileSource(spec.source, spec.entry, spec.argSpecs, copts);
    vm::Machine machine(unit.isa());
    auto run = machine.run(unit.fn(), spec.args);
    EXPECT_DOUBLE_EQ(run.cycles.total, r.best.kernelCycles.at(spec.name)) << spec.name;
  }

  // The bench document carries the gate's quality bar.
  std::string json = benchJson(r);
  EXPECT_NE(json.find("\"reference\""), std::string::npos);
  EXPECT_NE(json.find("\"dspx\""), std::string::npos);
  EXPECT_NE(json.find("\"geomean_speedup\""), std::string::npos);
}

TEST(DseExplore, DefaultCorpusIsNineKernels) {
  // An empty ExploreOptions::corpus means "use the default"; the fallback
  // must exist and carry the nine oracle-checked kernels.
  auto corpus = kernels::dseCorpus();
  EXPECT_EQ(corpus.size(), 9u);
  for (const auto& spec : corpus) EXPECT_FALSE(spec.source.empty());
}

TEST(DseDesignPoint, LabelAndIsaMaterialization) {
  DesignPoint p;
  p.lanesF64 = 8;
  p.lanesC64 = 4;
  p.memLanes = 16;
  p.fma = p.cmul = p.cmac = true;
  p.zol = p.agu = true;
  EXPECT_EQ(p.label(), "w8 fma+cmul+cmac zol+agu m16");
  auto d = toIsa(p, "auto_x");
  EXPECT_EQ(d.name(), "auto_x");
  EXPECT_EQ(d.lanesF64(), 8);
  EXPECT_EQ(d.lanesC64(), 4);
  EXPECT_EQ(d.memLanes(), 16);
  EXPECT_TRUE(d.hasFma());
  EXPECT_TRUE(d.hasCmac());
  EXPECT_TRUE(d.hasZol());
  EXPECT_TRUE(d.hasAgu());
}

}  // namespace
}  // namespace mat2c::dse
