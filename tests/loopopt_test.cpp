// Golden tests for the loop-optimization layer: every DSP kernel is pushed
// through each of the four new passes individually and in combination, always
// with --verify-each semantics on, and compared against the reference
// interpreter. The passes are value-preserving (they reorder or share pure
// computations without reassociating), so the tolerance is tighter than the
// general kernel suite's.
#include <gtest/gtest.h>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"

namespace mat2c {
namespace {

// All loop passes off; the baseline the per-pass configs build on.
CompileOptions loopLayerOff() {
  CompileOptions o = CompileOptions::proposed();
  o.fuseLoops = false;
  o.unrollRecurrences = false;
  o.licm = false;
  o.cse = false;
  o.deadStores = false;
  o.verifyEach = true;
  return o;
}

struct LoopPassConfig {
  const char* name;
  void (*enable)(CompileOptions&);
};

const LoopPassConfig kConfigs[] = {
    {"fuse", [](CompileOptions& o) { o.fuseLoops = true; }},
    {"unroll", [](CompileOptions& o) { o.unrollRecurrences = true; }},
    {"licm", [](CompileOptions& o) { o.licm = true; }},
    {"cse", [](CompileOptions& o) { o.cse = true; }},
    {"deadstores", [](CompileOptions& o) { o.deadStores = true; }},
    {"all",
     [](CompileOptions& o) {
       o.fuseLoops = o.unrollRecurrences = o.licm = o.cse = o.deadStores = true;
     }},
};

TEST(LoopOpt, EveryKernelMatchesInterpreterUnderEveryPass) {
  Compiler compiler;
  for (const auto& k : kernels::dspBenchmarkSuite()) {
    for (const auto& cfg : kConfigs) {
      CompileOptions o = loopLayerOff();
      cfg.enable(o);
      auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs, o);
      EXPECT_LE(validateAgainstInterpreter(k.source, k.entry, unit, k.args), 1e-12)
          << k.name << " under " << cfg.name;
    }
  }
}

TEST(LoopOpt, CombinedLayerNeverRegressesCycles) {
  // The cycle-regression gate in-process: turning the whole loop layer on
  // must never cost cycles versus leaving it off, on any kernel.
  Compiler compiler;
  for (const auto& k : kernels::dspBenchmarkSuite()) {
    auto off = compiler.compileSource(k.source, k.entry, k.argSpecs, loopLayerOff());
    auto on = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::proposed());
    double cyclesOff = off.run(k.args).cycles.total;
    double cyclesOn = on.run(k.args).cycles.total;
    EXPECT_LE(cyclesOn, cyclesOff) << k.name;
  }
}

TEST(LoopOpt, UnrollExpandsRecurrenceLoop) {
  Compiler compiler;
  CompileOptions o = loopLayerOff();
  o.unrollRecurrences = true;
  auto unit = compiler.compileSource(
      "function y = f(x)\ns = 0;\nfor k = 1:4\n  s = s * 0.5 + x(k);\nend\ny = s;\nend\n",
      "f", {sema::ArgSpec::row(4)}, o);
  EXPECT_EQ(unit.optimizationReport().loopsUnrolled, 1);
  EXPECT_LE(validateAgainstInterpreter(
                "function y = f(x)\ns = 0;\nfor k = 1:4\n  s = s * 0.5 + x(k);\nend\n"
                "y = s;\nend\n",
                "f", unit,
                {kernels::makeFir(4, 2).args[0]}),
            1e-12);
}

TEST(LoopOpt, UnrollRespectsMaxTrip) {
  Compiler compiler;
  CompileOptions o = loopLayerOff();
  o.unrollRecurrences = true;
  o.unrollMaxTrip = 2;
  auto unit = compiler.compileSource(
      "function y = f(x)\ns = 0;\nfor k = 1:4\n  s = s * 0.5 + x(k);\nend\ny = s;\nend\n",
      "f", {sema::ArgSpec::row(4)}, o);
  EXPECT_EQ(unit.optimizationReport().loopsUnrolled, 0);
}

TEST(LoopOpt, FusionMergesAdjacentElementwiseLoops) {
  // Two explicit loops over the same space, the second reading what the
  // first wrote. Post-vectorize both keep the same (vector) shape, so they
  // fuse; the store-to-load forwarding payoff is CSE's job afterwards.
  const char* src =
      "function y = f(x)\nu = zeros(1, 64);\ny = zeros(1, 64);\n"
      "for k = 1:64\n  u(k) = x(k) + 1;\nend\n"
      "for k = 1:64\n  y(k) = u(k) * 2;\nend\nend\n";
  Compiler compiler;
  CompileOptions o = loopLayerOff();
  o.fuseLoops = true;
  // Dead-loop cleanup is fusion's designed companion: it deletes the
  // zero-trip strip-mine remainder loops that would otherwise sit between
  // the two vectorized main loops.
  o.deadStores = true;
  auto unit = compiler.compileSource(src, "f", {sema::ArgSpec::row(64)}, o);
  EXPECT_GE(unit.optimizationReport().loopsFused, 1);
  EXPECT_LE(validateAgainstInterpreter(src, "f", unit,
                                       {kernels::makeFir(64, 2).args[0]}),
            1e-12);
}

TEST(LoopOpt, CseSharesRepeatedSubexpressions) {
  const char* src =
      "function y = f(x)\ny = (x(1) * 2 + x(2)) + (x(1) * 2 + x(2));\nend\n";
  Compiler compiler;
  CompileOptions o = loopLayerOff();
  o.cse = true;
  auto unit = compiler.compileSource(src, "f", {sema::ArgSpec::row(4)}, o);
  EXPECT_GE(unit.optimizationReport().cseEliminated, 1);
  EXPECT_LE(validateAgainstInterpreter(src, "f", unit,
                                       {kernels::makeFir(4, 2).args[0]}),
            1e-12);
}

TEST(LoopOpt, TelemetryFiresOnTheKernelSuite) {
  // Each new pass must do real work on at least one paper kernel: unroll,
  // fuse and licm (register promotion) on iir, cse on fmdemod.
  Compiler compiler;
  auto iir = kernels::kernelByName("iir");
  CompileOptions o = CompileOptions::proposed();
  o.verifyEach = true;
  auto iirUnit = compiler.compileSource(iir.source, iir.entry, iir.argSpecs, o);
  const auto& ir = iirUnit.optimizationReport();
  EXPECT_GE(ir.loopsUnrolled, 1);
  EXPECT_GE(ir.loopsFused, 1);
  EXPECT_GE(ir.scalarsPromoted, 1);
  EXPECT_GE(ir.exprsHoisted, 1);

  auto fm = kernels::kernelByName("fmdemod");
  auto fmUnit = compiler.compileSource(fm.source, fm.entry, fm.argSpecs, o);
  EXPECT_GE(fmUnit.optimizationReport().cseEliminated, 1);
}

TEST(LoopOpt, IirSpeedupComesFromTheLoopLayer) {
  // The headline iir result: unroll + promotion + hoisting take the biquad
  // cascade from ~1.8x to >=2.5x over the Coder-style baseline.
  Compiler compiler;
  auto k = kernels::kernelByName("iir");
  auto base = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::coderLike());
  auto prop = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::proposed());
  double speedup = base.run(k.args).cycles.total / prop.run(k.args).cycles.total;
  EXPECT_GE(speedup, 2.5);
}

TEST(LoopOpt, FftBuiltinMatchesOracleUnderEveryPass) {
  // The compiled fft/ifft builtin emits its own loop nests (bit reversal,
  // butterfly stages, DFT fallback), so every loop pass gets a shot at it.
  // Each variant runs with --verify-each semantics and is differenced
  // against the interpreter oracle under every pass toggle.
  struct Variant {
    const char* name;
    const char* source;
    std::vector<sema::ArgSpec> specs;
  };
  const Variant variants[] = {
      {"row_pow2", "function y = f(x)\ny = fft(x);\nend\n",
       {sema::ArgSpec::row(16, /*complex=*/true)}},
      {"two_arg_pad", "function y = f(x)\ny = fft(x, 16);\nend\n",
       {sema::ArgSpec::row(11, /*complex=*/true)}},
      {"two_arg_truncate_nonpow2", "function y = f(x)\ny = fft(x, 6);\nend\n",
       {sema::ArgSpec::row(9, /*complex=*/true)}},
      {"matrix_columnwise", "function y = f(x)\ny = fft(x);\nend\n",
       {sema::ArgSpec::matrix(8, 3, /*complex=*/true)}},
      {"ifft_roundtrip", "function y = f(x)\ny = ifft(fft(x));\nend\n",
       {sema::ArgSpec::row(16, /*complex=*/true)}},
      {"nonpow2_real", "function y = f(x)\ny = fft(x);\nend\n",
       {sema::ArgSpec::row(10)}},
      {"inplace_alias", "function y = f(x)\ny = x;\ny = fft(y);\nend\n",
       {sema::ArgSpec::row(8, /*complex=*/true)}},
  };
  Compiler compiler;
  for (const auto& v : variants) {
    std::vector<Matrix> args;
    kernels::InputGen gen(42);
    for (const auto& spec : v.specs) {
      auto rows = spec.type.shape.rows.extent();
      auto cols = spec.type.shape.cols.extent();
      if (spec.type.elem == sema::Elem::Complex) {
        Matrix m = Matrix::zeros(static_cast<std::size_t>(rows),
                                 static_cast<std::size_t>(cols), /*complex=*/true);
        for (std::size_t i = 0; i < m.numel(); ++i)
          m.set(i, Complex{gen.next(), gen.next()});
        args.push_back(std::move(m));
      } else {
        args.push_back(gen.matrix(rows, cols));
      }
    }
    for (const auto& cfg : kConfigs) {
      CompileOptions o = loopLayerOff();
      cfg.enable(o);
      auto unit = compiler.compileSource(v.source, "f", v.specs, o);
      EXPECT_LE(validateAgainstInterpreter(v.source, "f", unit, args), 1e-12)
          << v.name << " under " << cfg.name;
    }
  }
}

TEST(LoopOpt, ReassocStaysAccurateAndIsOffByDefault) {
  EXPECT_FALSE(CompileOptions::proposed().reassoc);
  Compiler compiler;
  for (const auto& k : kernels::dspBenchmarkSuite()) {
    CompileOptions o = CompileOptions::proposed();
    o.reassoc = true;
    o.verifyEach = true;
    auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs, o);
    // Reassociation changes rounding; the drift stays at the 1e-12 scale
    // measured in EXPERIMENTS.md.
    EXPECT_LE(validateAgainstInterpreter(k.source, k.entry, unit, k.args), 1e-12)
        << k.name;
  }
}

}  // namespace
}  // namespace mat2c
