// VM tests: cycle accounting, category attribution, runtime faults.
#include <gtest/gtest.h>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"

namespace mat2c {
namespace {

using sema::ArgSpec;

CompiledUnit compile(const std::string& src, const std::vector<ArgSpec>& specs,
                     const CompileOptions& options = CompileOptions::proposed()) {
  Compiler compiler;
  return compiler.compileSource(src, "f", specs, options);
}

TEST(Vm, ScalarResult) {
  auto unit = compile("function y = f(a)\ny = a * 3;\nend\n", {ArgSpec::scalar()});
  auto r = unit.run({Matrix::scalar(7)});
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_DOUBLE_EQ(r.outputs[0].scalarValue(), 21.0);
  EXPECT_GT(r.cycles.total, 0.0);
}

TEST(Vm, CyclesScaleWithWork) {
  std::string src = "function y = f(x)\ny = x + 1;\nend\n";
  kernels::InputGen gen(50);
  CompileOptions scalarIsa = CompileOptions::proposed("scalar");
  auto small = compile(src, {ArgSpec::row(64)}, scalarIsa);
  auto large = compile(src, {ArgSpec::row(256)}, scalarIsa);
  double cSmall = small.run({gen.rowVector(64)}).cycles.total;
  double cLarge = large.run({gen.rowVector(256)}).cycles.total;
  EXPECT_NEAR(cLarge / cSmall, 4.0, 0.3);
}

TEST(Vm, CategoriesArePopulated) {
  auto k = kernels::makeFir(128, 8);
  Compiler compiler;
  auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::coderLike("scalar"));
  auto r = unit.run(k.args);
  EXPECT_GT(r.cycles.byCategory.at("arith"), 0.0);
  EXPECT_GT(r.cycles.byCategory.at("memory"), 0.0);
  EXPECT_GT(r.cycles.byCategory.at("loop"), 0.0);
  EXPECT_GT(r.cycles.byCategory.at("check"), 0.0);
  double sum = 0;
  for (const auto& [cat, v] : r.cycles.byCategory) sum += v;
  EXPECT_NEAR(sum, r.cycles.total, 1e-6);
}

TEST(Vm, ByOpBreakdownIsConsistent) {
  auto k = kernels::makeCdot(64);
  Compiler compiler;
  auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::proposed());
  auto r = unit.run(k.args);
  double sum = 0;
  for (const auto& [op, v] : r.cycles.byOp) sum += v;
  EXPECT_NEAR(sum, r.cycles.total, 1e-6);
  // The complex MAC unit must actually be used.
  EXPECT_GT(r.cycles.byOp.count("vcmac.c64") + r.cycles.byOp.count("cmac.c64"), 0u);
}

TEST(Vm, IntrinsicOpsCounted) {
  auto k = kernels::makeFdeq(64);
  Compiler compiler;
  auto prop = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::proposed());
  auto base = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::coderLike());
  EXPECT_GT(prop.run(k.args).cycles.intrinsicOpsExecuted, 0u);
  EXPECT_EQ(base.run(k.args).cycles.intrinsicOpsExecuted, 0u);
}

TEST(Vm, ArgumentShapeMismatchThrows) {
  auto unit = compile("function y = f(x)\ny = x + 1;\nend\n", {ArgSpec::row(8)});
  EXPECT_THROW(unit.run({kernels::InputGen(51).rowVector(9)}), RuntimeError);
  EXPECT_THROW(unit.run({}), RuntimeError);
}

TEST(Vm, RealParamRejectsComplexInput) {
  auto unit = compile("function y = f(x)\ny = x + 1;\nend\n", {ArgSpec::row(4)});
  EXPECT_THROW(unit.run({kernels::InputGen(52).complexRowVector(4)}), RuntimeError);
}

TEST(Vm, OutOfBoundsLoadFaults) {
  // Index depends on a runtime scalar — compile succeeds, VM faults.
  auto unit = compile("function y = f(x, i)\ny = x(i);\nend\n",
                      {ArgSpec::row(4), ArgSpec::scalar()});
  EXPECT_THROW(unit.run({kernels::InputGen(53).rowVector(4), Matrix::scalar(9)}),
               RuntimeError);
  auto ok = unit.run({kernels::InputGen(53).rowVector(4), Matrix::scalar(2)});
  EXPECT_EQ(ok.outputs.size(), 1u);
}

TEST(Vm, OpBudgetStopsRunaway) {
  auto unit = compile("function y = f(x)\ny = 0;\nwhile x > -1\n  y = y + 1;\nend\nend\n",
                      {ArgSpec::scalar()});
  vm::Machine machine(unit.isa());
  machine.setMaxOps(10'000);
  EXPECT_THROW(machine.run(unit.fn(), {Matrix::scalar(1)}), RuntimeError);
}

TEST(Vm, ComplexOutputs) {
  auto unit = compile("function y = f(x)\ny = x * 2i;\nend\n", {ArgSpec::complexScalar()});
  auto r = unit.run({Matrix::scalar(Complex{1, 1})});
  EXPECT_EQ(r.outputs[0].at(0), (Complex{-2, 2}));
}

TEST(Vm, BaselineCheckCyclesDisappearInProposed) {
  auto k = kernels::makeFir(128, 8);
  Compiler compiler;
  auto base = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::coderLike());
  auto prop = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::proposed());
  auto rb = base.run(k.args);
  auto rp = prop.run(k.args);
  EXPECT_GT(rb.cycles.byCategory.at("check"), 0.0);
  EXPECT_EQ(rp.cycles.byCategory.count("check"), 0u);
  EXPECT_EQ(rp.cycles.byCategory.count("alloc"), 0u);
}

TEST(Vm, DeterministicCycles) {
  auto k = kernels::makeFmdemod(128);
  Compiler compiler;
  auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::proposed());
  double c1 = unit.run(k.args).cycles.total;
  double c2 = unit.run(k.args).cycles.total;
  EXPECT_DOUBLE_EQ(c1, c2);
}

}  // namespace
}  // namespace mat2c
