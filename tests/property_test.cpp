// Property-based differential testing: randomly generated MATLAB programs
// must produce identical results through the interpreter and through the
// compiled pipeline (both styles, several targets).
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"

namespace mat2c {
namespace {

using sema::ArgSpec;

/// Random elementwise expression over `x` (vector), `s` (scalar), and
/// literals. Division is guarded so results stay finite.
class ExprGen {
 public:
  explicit ExprGen(unsigned seed) : rng_(seed) {}

  std::string expr(int depth) {
    if (depth <= 0) return leaf();
    switch (rng_() % 8) {
      case 0: return "(" + expr(depth - 1) + " + " + expr(depth - 1) + ")";
      case 1: return "(" + expr(depth - 1) + " - " + expr(depth - 1) + ")";
      case 2: return "(" + expr(depth - 1) + " .* " + expr(depth - 1) + ")";
      case 3: return "(" + expr(depth - 1) + " ./ (abs(" + expr(depth - 1) + ") + 2))";
      case 4: return "abs(" + expr(depth - 1) + ")";
      case 5: return "(-" + expr(depth - 1) + ")";
      case 6: return "cos(" + expr(depth - 1) + ")";
      default: return "min(" + expr(depth - 1) + ", " + expr(depth - 1) + ")";
    }
  }

  std::string leaf() {
    switch (rng_() % 4) {
      case 0: return "x";
      case 1: return "s";
      case 2: return std::to_string(static_cast<int>(rng_() % 7) - 3);
      default: return "x";
    }
  }

  std::mt19937 rng_;
};

class ElementwiseProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ElementwiseProperty, InterpreterAndVmAgree) {
  unsigned seed = GetParam();
  ExprGen gen(seed);
  std::string body = gen.expr(4);
  std::string src = "function y = f(x, s)\ny = " + body + ";\nend\n";

  std::int64_t n = 5 + seed % 13;
  kernels::InputGen inputs(seed * 7 + 1);
  std::vector<Matrix> args = {inputs.rowVector(n), Matrix::scalar(inputs.next())};
  std::vector<ArgSpec> specs = {ArgSpec::row(n), ArgSpec::scalar()};

  Compiler compiler;
  for (const char* isaName : {"dspx", "scalar"}) {
    auto prop = compiler.compileSource(src, "f", specs, CompileOptions::proposed(isaName));
    EXPECT_LE(validateAgainstInterpreter(src, "f", prop, args), 1e-9)
        << "proposed/" << isaName << " seed=" << seed << " body: " << body;
  }
  auto base = compiler.compileSource(src, "f", specs, CompileOptions::coderLike());
  EXPECT_LE(validateAgainstInterpreter(src, "f", base, args), 1e-9)
      << "coder seed=" << seed << " body: " << body;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElementwiseProperty, ::testing::Range(0u, 32u));

/// Random scalar reduction loops with control flow.
class LoopProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(LoopProperty, InterpreterAndVmAgree) {
  unsigned seed = GetParam();
  std::mt19937 rng(seed * 31 + 5);
  std::ostringstream body;
  body << "acc = " << static_cast<int>(rng() % 5) << ";\n";
  body << "for k = 1:length(x)\n";
  switch (rng() % 4) {
    case 0:
      body << "  acc = acc + x(k) * " << (1 + rng() % 3) << ";\n";
      break;
    case 1:
      body << "  if x(k) > 0\n    acc = acc + x(k);\n  else\n    acc = acc - x(k);\n  end\n";
      break;
    case 2:
      body << "  if mod(k, 2) == 0\n    continue\n  end\n  acc = acc + x(k) * x(k);\n";
      break;
    default:
      body << "  acc = acc + x(k) * x(length(x) - k + 1);\n";
      break;
  }
  body << "end\ny = acc;";
  std::string src = "function y = f(x)\n" + body.str() + "\nend\n";

  std::int64_t n = 4 + seed % 21;
  kernels::InputGen inputs(seed + 100);
  std::vector<Matrix> args = {inputs.rowVector(n)};

  Compiler compiler;
  auto prop = compiler.compileSource(src, "f", {ArgSpec::row(n)},
                                     CompileOptions::proposed());
  auto base = compiler.compileSource(src, "f", {ArgSpec::row(n)},
                                     CompileOptions::coderLike());
  EXPECT_LE(validateAgainstInterpreter(src, "f", prop, args), 1e-9) << src;
  EXPECT_LE(validateAgainstInterpreter(src, "f", base, args), 1e-9) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopProperty, ::testing::Range(0u, 24u));

/// Random complex pipelines.
class ComplexProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ComplexProperty, InterpreterAndVmAgree) {
  unsigned seed = GetParam();
  std::mt19937 rng(seed * 17 + 3);
  const char* forms[] = {
      "y = x .* conj(h);",
      "y = real(x) + imag(h) * 1i;",
      "y = abs(x) .* h;",
      "y = x + conj(h) .* 2i;",
      "y = complex(real(x), imag(h));",
      "y = conj(x .* h);",
  };
  std::string src =
      std::string("function y = f(x, h)\n") + forms[rng() % 6] + "\nend\n";
  std::int64_t n = 3 + seed % 14;
  kernels::InputGen inputs(seed + 500);
  std::vector<Matrix> args = {inputs.complexRowVector(n), inputs.complexRowVector(n)};
  std::vector<ArgSpec> specs = {ArgSpec::row(n, true), ArgSpec::row(n, true)};

  Compiler compiler;
  auto prop = compiler.compileSource(src, "f", specs, CompileOptions::proposed());
  auto base = compiler.compileSource(src, "f", specs, CompileOptions::coderLike());
  EXPECT_LE(validateAgainstInterpreter(src, "f", prop, args), 1e-9) << src;
  EXPECT_LE(validateAgainstInterpreter(src, "f", base, args), 1e-9) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComplexProperty, ::testing::Range(0u, 18u));

/// Cycle-model invariant: for any generated program, the Proposed style is
/// never slower than CoderLike on the same target.
class CostDominanceProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CostDominanceProperty, ProposedNeverSlower) {
  unsigned seed = GetParam();
  ExprGen gen(seed + 77);
  std::string src = "function y = f(x, s)\ny = " + gen.expr(3) + ";\nend\n";
  std::int64_t n = 32 + seed % 64;
  kernels::InputGen inputs(seed);
  std::vector<Matrix> args = {inputs.rowVector(n), Matrix::scalar(0.5)};
  std::vector<ArgSpec> specs = {ArgSpec::row(n), ArgSpec::scalar()};

  Compiler compiler;
  auto prop = compiler.compileSource(src, "f", specs, CompileOptions::proposed());
  auto base = compiler.compileSource(src, "f", specs, CompileOptions::coderLike());
  double cp = prop.run(args).cycles.total;
  double cb = base.run(args).cycles.total;
  EXPECT_LE(cp, cb) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostDominanceProperty, ::testing::Range(0u, 16u));

}  // namespace
}  // namespace mat2c
