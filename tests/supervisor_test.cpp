// Shard supervisor: multi-process fleet management over real worker
// processes (MAT2C_BIN_PATH points at the mat2c CLI built in this tree).
//
// These tests exercise the resilience layer end to end — spawn, routing,
// kill -9 recovery with re-dispatch, warm restarts from a shared artifact
// store, permanent ejection, and reload broadcasting — with the seeded
// chaos schedule living in tools/chaos_test.cpp. Labeled `service` and
// `chaos` so the suite runs under the sanitizer presets.
#include <gtest/gtest.h>
#include <signal.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "service/supervisor.hpp"

namespace mat2c {
namespace {

namespace fs = std::filesystem;
using namespace service;

const char* kFirSource =
    "function y = fir(x, h)\n"
    "y = 0;\n"
    "for k = 1:length(x)\n"
    "  y = y + x(k) * h(k);\n"
    "end\n"
    "end\n";

const char* kScaleSource =
    "function y = scale(x)\n"
    "y = x .* 2;\n"
    "end\n";

WireRequest makeRequest(const std::string& id, const char* source,
                        const std::string& entry, const std::string& args) {
  WireRequest r;
  r.id = id;
  r.source = source;
  r.entry = entry;
  r.args = args;
  return r;
}

/// Collects every response delivered by the supervisor, keyed by arrival.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<BinaryResponse> responses;

  ShardSupervisor::ResponseHandler handler() {
    return [this](const std::string&, const BinaryResponse& decoded) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(decoded);
      cv.notify_all();
    };
  }
  std::vector<BinaryResponse> take() {
    std::lock_guard<std::mutex> lock(mu);
    return responses;
  }
};

fs::path freshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("mat2c_sup_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

ShardSupervisor::Config fleetConfig(int shards, const fs::path& storeDir) {
  ShardSupervisor::Config c;
  c.shards = shards;
  c.binaryPath = MAT2C_BIN_PATH;
  c.workerArgs = {"--store-dir", storeDir.string(), "--jobs", "2"};
  c.restart.baseMillis = 5.0;  // fast restarts keep the tests quick
  c.restart.maxMillis = 50.0;
  c.seed = 7;
  return c;
}

bool waitForAlive(ShardSupervisor& sup, int want, int timeoutMillis = 15000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeoutMillis);
  while (std::chrono::steady_clock::now() < deadline) {
    if (sup.stats().shardsAlive >= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

TEST(RetryPolicy, DeterministicJitterWithinExponentialEnvelope) {
  RetryPolicy p;
  p.baseMillis = 10.0;
  p.maxMillis = 2000.0;
  p.multiplier = 2.0;
  for (int attempt = 0; attempt < 12; ++attempt) {
    double cap = 10.0;
    for (int i = 0; i < attempt && cap < 2000.0; ++i) cap *= 2.0;
    cap = std::min(cap, 2000.0);
    double d = p.delayMillis(attempt, 42);
    // Full-jitter window: [cap/2, cap].
    EXPECT_GE(d, cap / 2.0) << "attempt " << attempt;
    EXPECT_LE(d, cap) << "attempt " << attempt;
    // Deterministic: the chaos harness replays schedules from a seed.
    EXPECT_EQ(d, p.delayMillis(attempt, 42)) << "attempt " << attempt;
  }
  // Different seeds jitter differently (the point of seeding per shard).
  EXPECT_NE(p.delayMillis(3, 1), p.delayMillis(3, 2));
  // Negative attempts clamp instead of underflowing the exponent.
  EXPECT_GE(p.delayMillis(-5, 1), 5.0);
  EXPECT_LE(p.delayMillis(-5, 1), 10.0);
}

TEST(ShardSupervisor, RouteHashIsStableAndContentSensitive) {
  WireRequest a = makeRequest("id1", kFirSource, "fir", "1x64,1x64");
  WireRequest b = makeRequest("id2", kFirSource, "fir", "1x64,1x64");
  // The id is NOT part of the route: repeats of the same content must land
  // on the same shard to hit its in-memory cache.
  EXPECT_EQ(ShardSupervisor::routeHash(a), ShardSupervisor::routeHash(b));
  WireRequest c = makeRequest("id1", kScaleSource, "scale", "1x64");
  EXPECT_NE(ShardSupervisor::routeHash(a), ShardSupervisor::routeHash(c));
  WireRequest d = a;
  d.isa = "scalar";
  EXPECT_NE(ShardSupervisor::routeHash(a), ShardSupervisor::routeHash(d));
}

TEST(ShardSupervisor, FleetAnswersBatchAndRepeatsHitShardCache) {
  fs::path store = freshDir("fleet_basic");
  ShardSupervisor sup(fleetConfig(2, store));
  std::string error;
  ASSERT_TRUE(sup.start(error)) << error;
  ASSERT_TRUE(waitForAlive(sup, 2));

  Collector out;
  sup.submit(makeRequest("fir1", kFirSource, "fir", "1x64,1x64"), out.handler());
  sup.submit(makeRequest("scale1", kScaleSource, "scale", "1x64"), out.handler());
  sup.submit(makeRequest("fir2", kFirSource, "fir", "1x64,1x64"), out.handler());
  sup.drainPending();

  auto responses = out.take();
  ASSERT_EQ(responses.size(), 3u);
  int firSeen = 0;
  for (const auto& r : responses) {
    EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
    EXPECT_GT(r.cBytes, 0u) << r.id;
    if (r.id == "fir1" || r.id == "fir2") ++firSeen;
  }
  EXPECT_EQ(firSeen, 2);

  auto stats = sup.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.restarts, 0u);
  EXPECT_EQ(stats.failedNoShard, 0u);
  sup.shutdown();
}

TEST(ShardSupervisor, KillNineMidLoadRedispatchesAndRestartsWarm) {
  fs::path store = freshDir("fleet_kill");
  ShardSupervisor sup(fleetConfig(2, store));
  std::string error;
  ASSERT_TRUE(sup.start(error)) << error;
  ASSERT_TRUE(waitForAlive(sup, 2));

  // Warm the store first so restarted workers can answer from disk.
  Collector warmup;
  sup.submit(makeRequest("w1", kFirSource, "fir", "1x64,1x64"), warmup.handler());
  sup.submit(makeRequest("w2", kScaleSource, "scale", "1x64"), warmup.handler());
  sup.drainPending();
  for (const auto& r : warmup.take()) ASSERT_TRUE(r.ok) << r.id << ": " << r.error;

  // kill -9 the whole fleet, then immediately submit repeats: they queue in
  // the dead shards' backlogs, the monitor restarts the workers, and the
  // repeats must come back correct — and warm (cached), since the artifact
  // store survived the kill.
  std::vector<int> pids = sup.shardPids();
  ASSERT_EQ(pids.size(), 2u);
  for (int pid : pids) {
    ASSERT_GT(pid, 0);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
  }

  Collector out;
  sup.submit(makeRequest("r1", kFirSource, "fir", "1x64,1x64"), out.handler());
  sup.submit(makeRequest("r2", kScaleSource, "scale", "1x64"), out.handler());
  sup.drainPending();

  auto responses = out.take();
  ASSERT_EQ(responses.size(), 2u);
  for (const auto& r : responses) {
    EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
    // Zero wrong answers after kill -9: the repeat is byte-identical
    // metadata served from the shared store (or the rebuilt memory tier).
    EXPECT_TRUE(r.cached) << r.id << " should be served warm after restart";
  }

  auto stats = sup.stats();
  EXPECT_GE(stats.restarts, 2u);
  EXPECT_EQ(stats.completed, 4u);
  std::vector<int> newPids = sup.shardPids();
  for (std::size_t i = 0; i < pids.size(); ++i) {
    EXPECT_NE(newPids[i], pids[i]) << "shard " << i << " must be a new process";
  }
  // The metrics surface names the restart/redispatch counters.
  std::string metrics = sup.metricsText();
  EXPECT_NE(metrics.find("mat2c_shard_restarts_total"), std::string::npos);
  EXPECT_NE(metrics.find("mat2c_shard_redispatches_total"), std::string::npos);
  sup.shutdown();
}

TEST(ShardSupervisor, CrashLoopingShardIsEjectedAndSubmitsFailCleanly) {
  ShardSupervisor::Config c;
  c.shards = 1;
  c.binaryPath = "/bin/false";  // exits instantly; never answers the probe
  c.maxRestarts = 0;            // first death ejects
  c.restart.baseMillis = 1.0;
  c.restart.maxMillis = 5.0;
  ShardSupervisor sup(c);
  std::string error;
  ASSERT_TRUE(sup.start(error)) << error;  // fork/exec itself succeeds

  Collector out;
  sup.submit(makeRequest("doomed", kFirSource, "fir", "1x64,1x64"), out.handler());
  sup.drainPending();

  auto responses = out.take();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].errorKind, ErrorKind::ResourceExhausted);
  EXPECT_NE(responses[0].error.find("no shards"), std::string::npos)
      << responses[0].error;

  auto stats = sup.stats();
  EXPECT_EQ(stats.shardsEjected, 1);
  EXPECT_EQ(stats.shardsAlive, 0);

  // Later submissions fail fast — nothing left to queue for.
  Collector late;
  sup.submit(makeRequest("late", kFirSource, "fir", "1x64,1x64"), late.handler());
  sup.drainPending();
  auto lateResponses = late.take();
  ASSERT_EQ(lateResponses.size(), 1u);
  EXPECT_FALSE(lateResponses[0].ok);
  EXPECT_GE(sup.stats().failedNoShard, 2u);
  sup.shutdown();
}

TEST(ShardSupervisor, ReloadBroadcastReachesEveryLiveShard) {
  fs::path store = freshDir("fleet_reload");
  // Workers need an --isa-file for reload to mean anything.
  fs::path isaFile = store / "default.isa";
  {
    std::string text = isa::IsaDescription::preset("dspx").serialize();
    FILE* f = std::fopen(isaFile.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  ShardSupervisor::Config c = fleetConfig(2, store);
  c.workerArgs.push_back("--isa-file");
  c.workerArgs.push_back(isaFile.string());
  ShardSupervisor sup(c);
  std::string error;
  ASSERT_TRUE(sup.start(error)) << error;
  ASSERT_TRUE(waitForAlive(sup, 2));

  EXPECT_EQ(sup.broadcastReload(), 2);
  // The fleet stays serviceable across the reload.
  Collector out;
  sup.submit(makeRequest("post", kScaleSource, "scale", "1x64"), out.handler());
  sup.drainPending();
  auto responses = out.take();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].ok) << responses[0].error;
  EXPECT_EQ(sup.stats().reloads, 1u);
  sup.shutdown();
}

}  // namespace
}  // namespace mat2c
