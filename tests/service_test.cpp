// Compilation service layer: cache key, sharded LRU cache, concurrent
// service with single-flight dedup, and the JSON-lines protocol.
//
// The concurrency tests here carry the `service` ctest label so they can be
// run under TSan: cmake -DMAT2C_SANITIZE=thread && ctest -L service.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "driver/kernels.hpp"
#include "service/compile_service.hpp"
#include "service/protocol.hpp"

namespace mat2c {
namespace {

using sema::ArgSpec;
using namespace service;

const char* kFirSource =
    "function y = fir(x, h)\n"
    "y = 0;\n"
    "for k = 1:length(x)\n"
    "  y = y + x(k) * h(k);\n"
    "end\n"
    "end\n";

CompileRequest firRequest(const std::string& id) {
  CompileRequest r;
  r.id = id;
  r.source = kFirSource;
  r.entry = "fir";
  r.args = {ArgSpec::row(64), ArgSpec::row(64)};
  r.options = CompileOptions::proposed();
  return r;
}

// ---- CacheKey ------------------------------------------------------------

TEST(CacheKey, IdenticalRequestsProduceIdenticalKeys) {
  auto a = CacheKey::make(kFirSource, "fir", {ArgSpec::row(64), ArgSpec::row(64)},
                          CompileOptions::proposed());
  auto b = CacheKey::make(kFirSource, "fir", {ArgSpec::row(64), ArgSpec::row(64)},
                          CompileOptions::proposed());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.fingerprint().size(), 16u);
}

TEST(CacheKey, EveryInputDimensionChangesTheKey) {
  auto base = CacheKey::make(kFirSource, "fir", {ArgSpec::row(64)}, CompileOptions::proposed());
  auto otherSource =
      CacheKey::make(std::string(kFirSource) + " ", "fir", {ArgSpec::row(64)},
                     CompileOptions::proposed());
  auto otherEntry =
      CacheKey::make(kFirSource, "fir2", {ArgSpec::row(64)}, CompileOptions::proposed());
  auto otherArgs =
      CacheKey::make(kFirSource, "fir", {ArgSpec::row(128)}, CompileOptions::proposed());
  auto complexArgs =
      CacheKey::make(kFirSource, "fir", {ArgSpec::row(64, true)}, CompileOptions::proposed());
  auto otherIsa =
      CacheKey::make(kFirSource, "fir", {ArgSpec::row(64)}, CompileOptions::proposed("scalar"));
  CompileOptions noVec = CompileOptions::proposed();
  noVec.vectorize = false;
  auto otherOptions = CacheKey::make(kFirSource, "fir", {ArgSpec::row(64)}, noVec);

  EXPECT_NE(base.canonical, otherSource.canonical);
  EXPECT_NE(base.canonical, otherEntry.canonical);
  EXPECT_NE(base.canonical, otherArgs.canonical);
  EXPECT_NE(base.canonical, complexArgs.canonical);
  EXPECT_NE(base.canonical, otherIsa.canonical);
  EXPECT_NE(base.canonical, otherOptions.canonical);
}

TEST(CacheKey, LoopLayerOptionsChangeTheKey) {
  // Two compiles differing in exactly one loop-layer flag must never share a
  // cache entry — every new flag participates in passSignature().
  auto base = CacheKey::make(kFirSource, "fir", {ArgSpec::row(64)}, CompileOptions::proposed());
  auto vary = [&](void (*mutate)(CompileOptions&)) {
    CompileOptions o = CompileOptions::proposed();
    mutate(o);
    return CacheKey::make(kFirSource, "fir", {ArgSpec::row(64)}, o);
  };
  EXPECT_NE(base.canonical, vary([](CompileOptions& o) { o.fuseLoops = false; }).canonical);
  EXPECT_NE(base.canonical,
            vary([](CompileOptions& o) { o.unrollRecurrences = false; }).canonical);
  EXPECT_NE(base.canonical, vary([](CompileOptions& o) { o.unrollMaxTrip = 4; }).canonical);
  EXPECT_NE(base.canonical, vary([](CompileOptions& o) { o.licm = false; }).canonical);
  EXPECT_NE(base.canonical, vary([](CompileOptions& o) { o.cse = false; }).canonical);
  EXPECT_NE(base.canonical, vary([](CompileOptions& o) { o.deadStores = false; }).canonical);
  EXPECT_NE(base.canonical, vary([](CompileOptions& o) { o.reassoc = true; }).canonical);
}

TEST(CacheKey, PassSignatureDriftGuardCoversEveryField) {
  // Drift guard: flipping ANY output-affecting option must change
  // passSignature(), and each flip must land on its own signature — a field
  // added to CompileOptions without a passSignature() line shows up here as
  // a missing entry (add it below), while a field dropped from the signature
  // shows up as a collision. Covers the tuner-searched knobs too, since the
  // tuned-options memo stores winners by this string.
  const std::vector<std::pair<const char*, std::function<void(CompileOptions&)>>> flips = {
      {"style", [](CompileOptions& o) { o.style = lower::CodeStyle::CoderLike; }},
      {"constFold", [](CompileOptions& o) { o.constFold = false; }},
      {"idioms", [](CompileOptions& o) { o.idioms = false; }},
      {"vectorize", [](CompileOptions& o) { o.vectorize = false; }},
      {"sinkDecls", [](CompileOptions& o) { o.sinkDecls = false; }},
      {"fuseElementwise=0", [](CompileOptions& o) { o.fuseElementwise = false; }},
      {"fuseElementwise=1", [](CompileOptions& o) { o.fuseElementwise = true; }},
      {"boundsChecks=0", [](CompileOptions& o) { o.boundsChecks = false; }},
      {"boundsChecks=1", [](CompileOptions& o) { o.boundsChecks = true; }},
      {"checkElim", [](CompileOptions& o) { o.checkElim = true; }},
      {"fuseLoops", [](CompileOptions& o) { o.fuseLoops = false; }},
      {"unrollRecurrences", [](CompileOptions& o) { o.unrollRecurrences = false; }},
      {"unrollMaxTrip", [](CompileOptions& o) { o.unrollMaxTrip = 4; }},
      {"licm", [](CompileOptions& o) { o.licm = false; }},
      {"cse", [](CompileOptions& o) { o.cse = false; }},
      {"deadStores", [](CompileOptions& o) { o.deadStores = false; }},
      {"deadCode", [](CompileOptions& o) { o.deadCode = false; }},
      {"reassoc", [](CompileOptions& o) { o.reassoc = true; }},
      {"degrade", [](CompileOptions& o) { o.degrade = false; }},
      {"limits.maxLirOps", [](CompileOptions& o) { o.limits.maxLirOps = 12345; }},
  };
  const std::string base = CompileOptions{}.passSignature();
  std::set<std::string> signatures{base};
  for (const auto& [name, flip] : flips) {
    CompileOptions o;
    flip(o);
    std::string sig = o.passSignature();
    EXPECT_NE(sig, base) << name << " does not reach passSignature()";
    EXPECT_TRUE(signatures.insert(sig).second) << name << " collides with another flip";
  }
}

TEST(CacheKey, TunedKeyIgnoresPassOptionsAndIsDisjointFromCompileKeys) {
  // The tuned-entry key deliberately takes no CompileOptions: the winning
  // pass configuration is the cache's OUTPUT, so any two tune requests for
  // the same (source, entry, args, ISA) must coalesce regardless of the
  // base options they started from. The namespace is disjoint from compile
  // keys (a version-tagged header), so a plain compile can never be served
  // a tuned artifact by accident or vice versa.
  std::vector<ArgSpec> args = {ArgSpec::row(64), ArgSpec::row(64)};
  auto isa = isa::IsaDescription::preset("dspx");
  auto a = CacheKey::makeTuned(kFirSource, "fir", args, isa);
  auto b = CacheKey::makeTuned(kFirSource, "fir", args, isa);
  EXPECT_EQ(a, b);

  auto compileKey = CacheKey::make(kFirSource, "fir", args, CompileOptions::proposed());
  EXPECT_NE(a.canonical, compileKey.canonical);

  // Every remaining input dimension still participates.
  EXPECT_NE(a.canonical,
            CacheKey::makeTuned(std::string(kFirSource) + " ", "fir", args, isa).canonical);
  EXPECT_NE(a.canonical, CacheKey::makeTuned(kFirSource, "fir2", args, isa).canonical);
  EXPECT_NE(a.canonical,
            CacheKey::makeTuned(kFirSource, "fir", {ArgSpec::row(128)}, isa).canonical);

  // The ISA joins via its fingerprint: any observable ISA change (here a
  // retuned op cost) invalidates the memoized tuned configuration, whose
  // winner was chosen by that ISA's cycle model.
  auto retuned = isa::IsaDescription::preset("dspx");
  retuned.setCost(isa::Op::MulF, 3);
  EXPECT_NE(a.canonical, CacheKey::makeTuned(kFirSource, "fir", args, retuned).canonical);
  EXPECT_NE(a.canonical,
            CacheKey::makeTuned(kFirSource, "fir", args,
                                isa::IsaDescription::preset("scalar")).canonical);
}

TEST(CacheKey, ObservationOnlyOptionsDoNotChangeTheKey) {
  CompileOptions verified = CompileOptions::proposed();
  verified.verifyEach = true;
  verified.tracePasses = [](const opt::PassRecord&, const lir::Function&) {};
  auto a = CacheKey::make(kFirSource, "fir", {ArgSpec::row(64)}, CompileOptions::proposed());
  auto b = CacheKey::make(kFirSource, "fir", {ArgSpec::row(64)}, verified);
  EXPECT_EQ(a, b);
}

TEST(CacheKey, IsaFingerprintTracksObservableState) {
  auto dspx = isa::IsaDescription::preset("dspx");
  auto dspx2 = isa::IsaDescription::preset("dspx");
  EXPECT_EQ(dspx.fingerprint(), dspx2.fingerprint());
  dspx2.setCost(isa::Op::MulF, 3);
  EXPECT_NE(dspx.fingerprint(), dspx2.fingerprint());
  EXPECT_NE(dspx.fingerprint(), isa::IsaDescription::preset("scalar").fingerprint());
}

TEST(CacheKey, ArgSpecTokenRoundTrip) {
  EXPECT_EQ(argSpecToken(ArgSpec::row(64)), "r1x64");
  EXPECT_EQ(argSpecToken(ArgSpec::matrix(4, 3, true)), "c4x3");
}

// ---- CompileCache --------------------------------------------------------

std::shared_ptr<const CachedResult> compileToResult(const CompileRequest& r) {
  Compiler compiler;
  CompiledUnit unit = compiler.compileSource(r.source, r.entry, r.args, r.options);
  std::string c = unit.cCode();
  return std::make_shared<const CachedResult>(std::move(unit), std::move(c));
}

TEST(CompileCache, HitMissAndByteCounters) {
  CompileCache cache(/*maxEntries=*/8, /*shardCount=*/2);
  auto key = CacheKey::make(kFirSource, "fir", {ArgSpec::row(64), ArgSpec::row(64)},
                            CompileOptions::proposed());
  EXPECT_EQ(cache.lookup(key), nullptr);
  auto result = compileToResult(firRequest("a"));
  cache.insert(key, result);
  EXPECT_EQ(cache.lookup(key), result);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_GT(stats.bytes, result->cCode.size());
  cache.clear();
  EXPECT_EQ(cache.lookup(key), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(CompileCache, LruEvictsOldestWithinShard) {
  // Single shard so the LRU order is total.
  CompileCache cache(/*maxEntries=*/2, /*shardCount=*/1);
  auto result = compileToResult(firRequest("a"));
  auto keyFor = [&](int n) {
    return CacheKey::make(kFirSource, "fir", {ArgSpec::row(n)}, CompileOptions::proposed());
  };
  cache.insert(keyFor(1), result);
  cache.insert(keyFor(2), result);
  EXPECT_NE(cache.lookup(keyFor(1)), nullptr);  // refresh 1 → 2 is now oldest
  cache.insert(keyFor(3), result);              // evicts 2
  EXPECT_EQ(cache.lookup(keyFor(2)), nullptr);
  EXPECT_NE(cache.lookup(keyFor(1)), nullptr);
  EXPECT_NE(cache.lookup(keyFor(3)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(CompileCache, ZeroCapacityDisablesCaching) {
  CompileCache cache(/*maxEntries=*/0);
  auto key = CacheKey::make(kFirSource, "fir", {ArgSpec::row(64)}, CompileOptions::proposed());
  cache.insert(key, compileToResult(firRequest("a")));
  EXPECT_EQ(cache.lookup(key), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---- CompileService ------------------------------------------------------

TEST(CompileService, BatchCompilesAndWarmRepeatHitsCache) {
  CompileService::Config config;
  config.threads = 4;
  CompileService svc(config);

  std::vector<CompileRequest> batch;
  for (int i = 0; i < 4; ++i) {
    CompileRequest r;
    r.id = "sq" + std::to_string(i);
    r.source = "function y = sq(x)\ny = x .* " + std::to_string(i + 2) + ";\nend\n";
    r.entry = "sq";
    r.args = {ArgSpec::row(16)};
    r.options = CompileOptions::proposed();
    batch.push_back(r);
  }
  auto cold = svc.compileBatch(batch);
  ASSERT_EQ(cold.size(), 4u);
  for (const auto& r : cold) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.cacheHit);
    ASSERT_NE(r.result, nullptr);
    EXPECT_FALSE(r.result->cCode.empty());
  }

  auto warm = svc.compileBatch(batch);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_TRUE(warm[i].ok);
    EXPECT_TRUE(warm[i].cacheHit) << warm[i].id;
    EXPECT_EQ(warm[i].result, cold[i].result) << "hit must share the cold result";
  }

  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.requests, 8u);
  EXPECT_EQ(stats.compiles, 4u);
  EXPECT_EQ(stats.cacheHits, 4u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(CompileService, SingleFlightDedupCompilesOnce) {
  // Stall the (only possible) underlying compile until all 8 identical
  // requests are submitted, so every later submit must join the first
  // request's flight — the test is deterministic, not timing-dependent.
  std::promise<void> release;
  std::shared_future<void> releaseFuture = release.get_future().share();
  std::atomic<int> started{0};

  CompileService::Config config;
  config.threads = 2;
  config.onCompileStart = [&](const CompileRequest&) {
    started.fetch_add(1);
    releaseFuture.wait();
  };
  CompileService svc(config);

  std::vector<std::future<CompileResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(svc.submit(firRequest("req" + std::to_string(i))));
  }
  release.set_value();

  std::shared_ptr<const CachedResult> shared;
  int deduped = 0;
  for (int i = 0; i < 8; ++i) {
    CompileResponse r = futures[static_cast<std::size_t>(i)].get();
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.id, "req" + std::to_string(i)) << "responses keep their own ids";
    ASSERT_NE(r.result, nullptr);
    if (!shared) shared = r.result;
    EXPECT_EQ(r.result, shared) << "all joiners share one compile's result";
    deduped += r.deduped ? 1 : 0;
  }
  EXPECT_EQ(started.load(), 1);
  EXPECT_EQ(deduped, 7);

  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.requests, 8u);
  EXPECT_EQ(stats.compiles, 1u) << "exactly one underlying compile";
  EXPECT_EQ(stats.dedupJoins, 7u);
  EXPECT_EQ(stats.cacheHits, 0u);

  // The stats JSON (the serve subcommand's end-of-run document) exposes the
  // hit/miss and dedup counters.
  std::string json = statsJson(stats, 12.5);
  EXPECT_NE(json.find("\"compiles\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"dedupJoins\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"hits\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"misses\": "), std::string::npos);
  EXPECT_NE(json.find("\"wallMillis\": 12.500"), std::string::npos);
  EXPECT_NE(json.find("\"requestsPerSecond\": "), std::string::npos);
}

TEST(CompileService, CompileErrorsAreReportedInBandToEveryJoiner) {
  std::promise<void> release;
  std::shared_future<void> releaseFuture = release.get_future().share();
  CompileService::Config config;
  config.threads = 1;
  config.onCompileStart = [&](const CompileRequest&) { releaseFuture.wait(); };
  CompileService svc(config);

  CompileRequest bad;
  bad.id = "bad";
  bad.source = "function y = f(x)\ny = nosuch;\nend\n";
  bad.entry = "f";
  bad.args = {ArgSpec::row(4)};
  auto f1 = svc.submit(bad);
  bad.id = "bad2";
  auto f2 = svc.submit(bad);
  release.set_value();

  CompileResponse r1 = f1.get();
  CompileResponse r2 = f2.get();
  EXPECT_FALSE(r1.ok);
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r1.error.find("nosuch"), std::string::npos);
  EXPECT_EQ(r1.error, r2.error);
  EXPECT_EQ(svc.stats().errors, 2u);
  EXPECT_EQ(svc.stats().compiles, 1u) << "errors dedup too";
  // Failures are not cached: a retry compiles again.
  EXPECT_FALSE(svc.submit(bad).get().cacheHit);
}

TEST(CompileService, ConcurrentSubmittersStressCacheAndDedup) {
  CompileService::Config config;
  config.threads = 4;
  config.cacheEntries = 64;
  CompileService svc(config);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Half the traffic is the shared fir kernel (cache/dedup churn),
        // half is a per-(thread,i) unique kernel (cold compiles).
        CompileRequest r;
        if (i % 2 == 0) {
          r = firRequest("t" + std::to_string(t) + "i" + std::to_string(i));
        } else {
          r.id = "u" + std::to_string(t) + "_" + std::to_string(i);
          r.source = "function y = u(x)\ny = x + " + std::to_string(t * 100 + i) + ";\nend\n";
          r.entry = "u";
          r.args = {ArgSpec::row(8)};
        }
        CompileResponse resp = svc.submit(std::move(r)).get();
        if (!resp.ok || !resp.result || resp.result->cCode.empty()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.errors, 0u);
  // The shared kernel compiles at most a handful of times (first miss plus
  // any benign race past the retired flight); far fewer than its 48 requests.
  EXPECT_LE(stats.compiles, static_cast<std::uint64_t>(kThreads * kPerThread / 2 + kThreads));
}

// Satellite: Compiler::compileSource itself must be safe to run from many
// threads at once (one Compiler instance per thread — the documented
// contract), on both distinct and identical inputs.
TEST(Concurrency, ParallelCompileSourceDistinctAndIdenticalInputs) {
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        Compiler compiler;  // thread-local instance
        for (int i = 0; i < 4; ++i) {
          // Identical input on every thread…
          auto shared = compiler.compileSource(kFirSource, "fir",
                                               {ArgSpec::row(32), ArgSpec::row(32)},
                                               CompileOptions::proposed());
          if (shared.cCode().empty()) failures.fetch_add(1);
          // …and a thread-distinct one, executed to check the result.
          double scale = t + 2;
          auto unit = compiler.compileSource(
              "function y = f(x)\ny = x * " + std::to_string(t + 2) + ";\nend\n", "f",
              {ArgSpec::scalar()}, CompileOptions::proposed());
          double got = unit.run({Matrix::scalar(3)}).outputs[0].scalarValue();
          if (got != 3.0 * scale) failures.fetch_add(1);
        }
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---- Protocol ------------------------------------------------------------

TEST(Protocol, ParsesRequestWithAllFields) {
  CompileRequest r;
  std::string error;
  ASSERT_TRUE(parseCompileRequest(
      R"({"id": "x", "source": "function y = f(x)\ny = x;\nend", "entry": "f",)"
      R"( "args": "1x8,c2x2", "isa": "scalar", "style": "coder", "vectorize": false,)"
      R"( "checkElim": true})",
      r, error))
      << error;
  EXPECT_EQ(r.id, "x");
  EXPECT_NE(r.source.find('\n'), std::string::npos) << "\\n escape decoded";
  EXPECT_EQ(r.entry, "f");
  ASSERT_EQ(r.args.size(), 2u);
  EXPECT_EQ(argSpecToken(r.args[0]), "r1x8");
  EXPECT_EQ(argSpecToken(r.args[1]), "c2x2");
  EXPECT_EQ(r.options.isa.name(), "scalar");
  EXPECT_EQ(r.options.style, lower::CodeStyle::CoderLike);
  EXPECT_FALSE(r.options.vectorize);
  EXPECT_TRUE(r.options.checkElim);
}

TEST(Protocol, RequestErrorsNameTheProblem) {
  CompileRequest r;
  std::string error;
  EXPECT_FALSE(parseCompileRequest(R"({"entry": "f"})", r, error));
  EXPECT_NE(error.find("source"), std::string::npos);
  EXPECT_FALSE(parseCompileRequest(R"({"source": "s", "entry": "f", "typo": 1})", r, error));
  EXPECT_NE(error.find("typo"), std::string::npos);
  EXPECT_FALSE(parseCompileRequest(R"({"source": "s", "entry": "f", "args": "0x3"})", r, error));
  EXPECT_NE(error.find("bad arg spec '0x3'"), std::string::npos);
  EXPECT_FALSE(
      parseCompileRequest(R"({"source": "s", "entry": "f", "isa": "nope"})", r, error));
  EXPECT_NE(error.find("nope"), std::string::npos);
  EXPECT_FALSE(parseCompileRequest("{", r, error));
  EXPECT_NE(error.find("byte"), std::string::npos);
  EXPECT_FALSE(parseCompileRequest("[1, 2]", r, error));
  EXPECT_NE(error.find("object"), std::string::npos);
}

TEST(Protocol, InlineIsaTextOverridesPreset) {
  CompileRequest r;
  std::string error;
  ASSERT_TRUE(parseCompileRequest(
      R"({"source": "s", "entry": "f", "isa": "dspx",)"
      R"( "isa_text": "name mydsp\nsimd f64 4\nfeature fma"})",
      r, error))
      << error;
  EXPECT_EQ(r.options.isa.name(), "mydsp");
  EXPECT_EQ(r.options.isa.lanesF64(), 4);
  EXPECT_TRUE(r.options.isa.hasFma());
}

TEST(Protocol, JsonParserHandlesEscapesNumbersAndStructure) {
  std::string error;
  auto v = parseJson(R"({"s": "a\"bA\n", "n": -2.5e2, "b": true, "z": null,)"
                     R"( "a": [1, "two", {"k": false}]})",
                     error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->find("s")->text, "a\"bA\n");
  EXPECT_EQ(v->find("n")->number, -250.0);
  EXPECT_TRUE(v->find("b")->boolean);
  EXPECT_EQ(v->find("z")->kind, JsonValue::Kind::Null);
  ASSERT_EQ(v->find("a")->elements.size(), 3u);
  EXPECT_EQ(v->find("a")->elements[2].find("k")->kind, JsonValue::Kind::Bool);
  EXPECT_EQ(v->find("missing"), nullptr);

  EXPECT_FALSE(parseJson(R"({"x": 1} junk)", error).has_value());
  EXPECT_FALSE(parseJson(R"("unterminated)", error).has_value());
  EXPECT_FALSE(parseJson("{\"x\": nope}", error).has_value());
}

TEST(Protocol, ResponseJsonCarriesResultOrError) {
  CompileResponse ok;
  ok.id = "r1";
  ok.ok = true;
  ok.cacheHit = true;
  ok.result = compileToResult(firRequest("r1"));
  ok.millis = 1.5;
  std::string line = responseJson(ok);
  EXPECT_NE(line.find("\"id\": \"r1\""), std::string::npos);
  EXPECT_NE(line.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(line.find("\"cached\": true"), std::string::npos);
  EXPECT_NE(line.find("\"cBytes\": "), std::string::npos);
  EXPECT_NE(line.find("\"loopsVectorized\": 1"), std::string::npos);

  CompileResponse bad;
  bad.id = "r2";
  bad.error = "boom \"quoted\"";
  std::string badLine = responseJson(bad);
  EXPECT_NE(badLine.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(badLine.find("\\\"quoted\\\""), std::string::npos);
}

// ---- Autotune through the service ----------------------------------------

CompileRequest tuneRequest(const std::string& id, int budget = 4) {
  CompileRequest r = firRequest(id);
  r.tune = true;
  r.tuneBudget = budget;  // small: the test exercises memoization, not search
  return r;
}

TEST(CompileService, TuneRequestMemoizesTheWinnerForWarmHits) {
  CompileService::Config config;
  config.threads = 2;
  CompileService svc(config);

  CompileResponse cold = svc.submit(tuneRequest("t1")).get();
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cacheHit);
  ASSERT_NE(cold.result, nullptr);
  EXPECT_TRUE(cold.result->tuned());
  EXPECT_GE(cold.result->tuneCandidates, 1);
  EXPECT_GT(cold.result->tunedCycles, 0.0);
  EXPECT_GE(cold.result->tuneDefaultCycles, cold.result->tunedCycles);

  // The warm request starts from DIFFERENT base pass options: the tuned key
  // ignores them, so it must still hit the memoized artifact — the whole
  // point of caching the search, a client need not know the winner to get it.
  CompileRequest warmReq = tuneRequest("t2");
  warmReq.options.licm = false;
  warmReq.options.unrollMaxTrip = 2;
  CompileResponse warm = svc.submit(warmReq).get();
  EXPECT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.cacheHit);
  EXPECT_EQ(warm.result, cold.result) << "warm tune must reuse the memoized winner";

  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.tunes, 1u) << "the search ran once";
  EXPECT_EQ(stats.cacheHits, 1u);
  EXPECT_EQ(stats.compiles, static_cast<std::uint64_t>(cold.result->tuneCandidates))
      << "compiles counts the search's real compileSource calls";
}

TEST(CompileService, TunedEntryInvalidatedByIsaChangeAndDisjointFromCompiles) {
  CompileService::Config config;
  config.threads = 2;
  CompileService svc(config);

  CompileResponse first = svc.submit(tuneRequest("t1")).get();
  ASSERT_TRUE(first.ok) << first.error;

  // Same request on a different ISA: the fingerprint is in the key, so the
  // dspx winner (chosen by dspx's cycle model) cannot be served for scalar.
  CompileRequest other = tuneRequest("t2");
  other.options = CompileOptions::proposed("scalar");
  CompileResponse second = svc.submit(other).get();
  EXPECT_TRUE(second.ok) << second.error;
  EXPECT_FALSE(second.cacheHit);
  EXPECT_NE(second.result, first.result);
  EXPECT_EQ(svc.stats().tunes, 2u);

  // A plain compile of the same (source, args, ISA) lives in the compile-key
  // namespace and must not be answered from the tuned entry.
  CompileResponse plain = svc.submit(firRequest("t3")).get();
  EXPECT_TRUE(plain.ok) << plain.error;
  EXPECT_FALSE(plain.cacheHit);
  ASSERT_NE(plain.result, nullptr);
  EXPECT_FALSE(plain.result->tuned());
}

TEST(CompileService, ConcurrentTuneRequestsShareOneSearch) {
  // Same single-flight guarantee as plain compiles, but the deduplicated
  // work is a whole pass-parameter search — stall the first search until
  // every identical tune request is queued, then assert one search served
  // all of them.
  std::promise<void> release;
  std::shared_future<void> releaseFuture = release.get_future().share();
  std::atomic<int> started{0};

  CompileService::Config config;
  config.threads = 2;
  config.onCompileStart = [&](const CompileRequest&) {
    started.fetch_add(1);
    releaseFuture.wait();
  };
  CompileService svc(config);

  std::vector<std::future<CompileResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(svc.submit(tuneRequest("t" + std::to_string(i))));
  }
  release.set_value();

  std::shared_ptr<const CachedResult> shared;
  int deduped = 0;
  for (auto& f : futures) {
    CompileResponse r = f.get();
    EXPECT_TRUE(r.ok) << r.error;
    ASSERT_NE(r.result, nullptr);
    EXPECT_TRUE(r.result->tuned());
    if (!shared) shared = r.result;
    EXPECT_EQ(r.result, shared) << "all joiners share one search's winner";
    deduped += r.deduped ? 1 : 0;
  }
  EXPECT_EQ(started.load(), 1);
  EXPECT_EQ(deduped, 5);

  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.tunes, 1u) << "exactly one underlying search";
  EXPECT_EQ(stats.dedupJoins, 5u);
}

TEST(CompileCache, ByteAccountingCoversTunedEntries) {
  // The memoized tuned signature is part of the entry's heap footprint, so
  // it must be charged on insert and released on evict — the per-shard
  // audit catches a byteSize() that forgets the new field.
  CompileCache cache(/*maxEntries=*/4, /*shardCount=*/2);
  auto plain = compileToResult(firRequest("a"));

  Compiler compiler;
  CompileRequest r = firRequest("b");
  CompiledUnit unit = compiler.compileSource(r.source, r.entry, r.args, r.options);
  std::string cCode = unit.cCode();
  std::string signature = r.options.passSignature();
  auto tuned = std::make_shared<const CachedResult>(std::move(unit), std::move(cCode),
                                                    signature, /*candidates=*/7,
                                                    /*tunedCycles=*/100.0,
                                                    /*defaultCycles=*/250.0);
  EXPECT_EQ(tuned->byteSize(), plain->byteSize() + signature.size())
      << "the tuned signature joins the entry's footprint";

  auto plainKey = CacheKey::make(r.source, r.entry, r.args, r.options);
  auto tunedKey = CacheKey::makeTuned(r.source, r.entry, r.args, r.options.isa);
  cache.insert(plainKey, plain);
  cache.insert(tunedKey, tuned);
  EXPECT_TRUE(cache.checkByteAccounting());
  EXPECT_EQ(cache.stats().entries, 2u);

  cache.clear();
  EXPECT_TRUE(cache.checkByteAccounting());
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(Protocol, TuneRequestFieldsParseAndValidate) {
  CompileRequest r;
  std::string error;
  ASSERT_TRUE(parseCompileRequest(
      R"({"source": "s", "entry": "f", "tune": true, "tune_budget": 12})", r, error))
      << error;
  EXPECT_TRUE(r.tune);
  EXPECT_EQ(r.tuneBudget, 12);

  EXPECT_FALSE(parseCompileRequest(R"({"source": "s", "entry": "f", "tune": "yes"})",
                                   r, error));
  EXPECT_NE(error.find("'tune' must be a boolean"), std::string::npos);
  EXPECT_FALSE(parseCompileRequest(R"({"source": "s", "entry": "f", "tune_budget": 0})",
                                   r, error));
  EXPECT_NE(error.find("'tune_budget' must be a positive integer"), std::string::npos);
  EXPECT_FALSE(parseCompileRequest(R"({"source": "s", "entry": "f", "tune_budget": 2.5})",
                                   r, error));
}

TEST(Protocol, ResponseJsonCarriesTunedProvenance) {
  Compiler compiler;
  CompileRequest req = firRequest("t1");
  CompiledUnit unit = compiler.compileSource(req.source, req.entry, req.args, req.options);
  std::string cCode = unit.cCode();
  CompileResponse resp;
  resp.id = "t1";
  resp.ok = true;
  resp.result = std::make_shared<const CachedResult>(
      std::move(unit), std::move(cCode), req.options.passSignature(),
      /*candidates=*/9, /*tunedCycles=*/123.0, /*defaultCycles=*/456.0);

  std::string line = responseJson(resp);
  EXPECT_NE(line.find("\"tuned\": true"), std::string::npos);
  EXPECT_NE(line.find("\"tunedSignature\": \"style=proposed;"), std::string::npos);
  EXPECT_NE(line.find("\"tuneCandidates\": 9"), std::string::npos);
  EXPECT_NE(line.find("\"tunedCycles\": 123.0"), std::string::npos);
  EXPECT_NE(line.find("\"tuneDefaultCycles\": 456.0"), std::string::npos);

  // A plain compile result carries none of the tuned fields.
  CompileResponse plain;
  plain.id = "p1";
  plain.ok = true;
  plain.result = compileToResult(firRequest("p1"));
  EXPECT_EQ(responseJson(plain).find("\"tuned\""), std::string::npos);
}

// ---- byte accounting with the optional CompiledUnit ----------------------

TEST(CompileCache, ByteAccountingChargesTheUnitFootprint) {
  // A cached entry pins its whole LIR statement tree; byteSize() must charge
  // for it, or a byte-capped cache holds far more memory than it reports.
  auto withUnit = compileToResult(firRequest("u"));
  ASSERT_TRUE(withUnit->hasUnit());
  EXPECT_GT(withUnit->unitFootprintBytes(), 0u);
  EXPECT_GT(withUnit->byteSize(),
            sizeof(CachedResult) + withUnit->cCode.size() + withUnit->isaName.size());

  // A store-rehydrated entry has no unit: same metadata, smaller footprint.
  CachedResult::Meta meta;
  meta.isaName = withUnit->isaName;
  meta.loopsVectorized = withUnit->loopsVectorized;
  meta.idiomRewrites = withUnit->idiomRewrites;
  meta.degraded = withUnit->degraded;
  CachedResult rehydrated(withUnit->cCode, std::move(meta), "", 0, 0.0, 0.0);
  EXPECT_FALSE(rehydrated.hasUnit());
  EXPECT_EQ(rehydrated.unitFootprintBytes(), 0u);
  EXPECT_EQ(rehydrated.byteSize() + withUnit->unitFootprintBytes(), withUnit->byteSize());

  // The per-shard audit holds with mixed with-unit / metadata-only entries.
  CompileCache cache(/*maxEntries=*/4, /*shardCount=*/2);
  CompileRequest r = firRequest("u");
  cache.insert(CacheKey::make(r.source, r.entry, r.args, r.options), withUnit);
  cache.insert(CacheKey::make(r.source, r.entry, r.args, CompileOptions::coderLike()),
               std::make_shared<const CachedResult>(std::move(rehydrated)));
  EXPECT_TRUE(cache.checkByteAccounting());
}

// ---- latency histogram ----------------------------------------------------

TEST(LatencyHistogram, PercentilesReadBucketUpperBounds) {
  LatencyHistogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(h.snapshot().p99Millis, 0.0);

  // 90 fast requests at 3 µs (bucket [2,4)) and 10 slow at 1000 µs (bucket
  // [512,1024)): the median reads the fast bucket's upper bound, the p99 the
  // slow one's.
  for (int i = 0; i < 90; ++i) h.record(3.0);
  for (int i = 0; i < 10; ++i) h.record(1000.0);
  LatencyStats s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.p50Millis, 0.004);   // 4 µs
  EXPECT_DOUBLE_EQ(s.p99Millis, 1.024);   // 1024 µs
  EXPECT_LE(s.p50Millis, s.p95Millis);
  EXPECT_LE(s.p95Millis, s.p99Millis);

  // Sub-microsecond and absurdly large values both land in real buckets.
  LatencyHistogram edges;
  edges.record(0.0);
  edges.record(1e30);
  EXPECT_EQ(edges.snapshot().count, 2u);
}

// ---- fair-share admission -------------------------------------------------

TEST(CompileService, FairShareKeepsFloodedTenantResponsive) {
  // Tenant A floods 24 distinct jobs into a single-worker service; tenant B
  // then submits 4. Round-robin draining must interleave B's jobs with A's —
  // every one of B's compiles happens within the first 2*4+1 claims, and
  // B's worst-case latency stays far below A's tail instead of queueing
  // behind all 24 floods.
  constexpr int kFlood = 24;
  constexpr int kVictim = 4;
  std::mutex mu;
  std::condition_variable released;
  bool release = false;
  std::vector<std::string> claimOrder;

  CompileService::Config config;
  config.threads = 1;
  config.onCompileStart = [&](const CompileRequest& r) {
    std::unique_lock<std::mutex> lock(mu);
    claimOrder.push_back(r.tenant);
    // Hold the FIRST job until both tenants finished submitting, so the
    // round-robin sees the full backlog.
    if (claimOrder.size() == 1) released.wait(lock, [&] { return release; });
  };
  CompileService svc(config);

  auto distinct = [](const std::string& tenant, int i) {
    CompileRequest r;
    r.id = tenant + std::to_string(i);
    r.source = "function y = f(x)\ny = x + " + std::to_string(i) + ";\nend\n";
    if (tenant == "B") r.source += "% tenant B\n";
    r.entry = "f";
    r.args = {ArgSpec::row(8)};
    r.options = CompileOptions::proposed();
    r.tenant = tenant;
    return r;
  };

  std::vector<std::future<CompileResponse>> floodFutures, victimFutures;
  for (int i = 0; i < kFlood; ++i) floodFutures.push_back(svc.submit(distinct("A", i)));
  for (int i = 0; i < kVictim; ++i) victimFutures.push_back(svc.submit(distinct("B", i)));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  released.notify_all();

  double victimMax = 0.0;
  for (auto& f : victimFutures) {
    CompileResponse r = f.get();
    ASSERT_TRUE(r.ok) << r.error;
    victimMax = std::max(victimMax, r.millis);
  }
  double floodMax = 0.0;
  for (auto& f : floodFutures) {
    CompileResponse r = f.get();
    ASSERT_TRUE(r.ok) << r.error;
    floodMax = std::max(floodMax, r.millis);
  }

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(claimOrder.size(), static_cast<std::size_t>(kFlood + kVictim));
  for (int i = 0; i < kVictim; ++i) {
    auto pos = std::find(claimOrder.begin() + 1, claimOrder.end(), "B");
    ASSERT_NE(pos, claimOrder.end());
    std::size_t index = static_cast<std::size_t>(pos - claimOrder.begin());
    EXPECT_LE(index, static_cast<std::size_t>(2 * (i + 1)))
        << "victim job " << i << " claimed too late";
    *pos = "A(done B" + std::to_string(i) + ")";
  }
  EXPECT_LT(victimMax, floodMax)
      << "the flooding tenant, not the victim, must absorb the queueing delay";

  ServiceStats stats = svc.stats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].name, "A");
  EXPECT_EQ(stats.tenants[0].submitted, static_cast<std::uint64_t>(kFlood));
  EXPECT_EQ(stats.tenants[1].name, "B");
  EXPECT_EQ(stats.tenants[1].submitted, static_cast<std::uint64_t>(kVictim));
  EXPECT_EQ(stats.latency.count, static_cast<std::uint64_t>(kFlood + kVictim));
}

TEST(CompileService, TenantInflightCapNeverExceeded) {
  // With a cap of 1 a tenant's jobs serialize even on a 4-thread pool, while
  // two tenants still run concurrently with each other.
  std::atomic<int> inHook{0};
  std::atomic<int> maxPerTenantA{0};
  std::atomic<int> maxOverall{0};
  std::atomic<int> inHookA{0};

  CompileService::Config config;
  config.threads = 4;
  config.tenantInflightCap = 1;
  config.onCompileStart = [&](const CompileRequest& r) {
    int all = ++inHook;
    int prevMax = maxOverall.load();
    while (all > prevMax && !maxOverall.compare_exchange_weak(prevMax, all)) {
    }
    if (r.tenant == "A") {
      int a = ++inHookA;
      int prev = maxPerTenantA.load();
      while (a > prev && !maxPerTenantA.compare_exchange_weak(prev, a)) {
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (r.tenant == "A") --inHookA;
    --inHook;
  };
  CompileService svc(config);

  std::vector<CompileRequest> batch;
  for (int i = 0; i < 4; ++i) {
    for (const char* tenant : {"A", "B"}) {
      CompileRequest r;
      r.id = std::string(tenant) + std::to_string(i);
      r.source = "function y = f(x)\ny = x * " + std::to_string(i + 2) + ";\nend\n" +
                 "% " + tenant + "\n";
      r.entry = "f";
      r.args = {ArgSpec::row(8)};
      r.options = CompileOptions::proposed();
      r.tenant = tenant;
      batch.push_back(std::move(r));
    }
  }
  for (const auto& r : svc.compileBatch(std::move(batch))) ASSERT_TRUE(r.ok) << r.error;

  EXPECT_EQ(maxPerTenantA.load(), 1) << "cap of 1 means tenant A never overlaps itself";
  EXPECT_GE(maxOverall.load(), 2) << "distinct tenants still run concurrently";
  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.tenantInflightCap, 1u);
}

// ---- binary wire protocol -------------------------------------------------

TEST(Protocol, BinaryRequestRoundTripMatchesJsonParse) {
  WireRequest wire;
  wire.id = "r1";
  wire.source = "function y = f(x)\ny = x;\nend\n";
  wire.entry = "f";
  wire.args = "1x8,c1x4";
  wire.isa = "dspx";  // empty now means "server default", so name it explicitly
  wire.style = "coder";
  wire.tenant = "acme";
  wire.vectorize = false;
  wire.degrade = true;
  wire.deadlineMillis = 1500.0;
  wire.tune = true;
  wire.tuneBudget = 9;

  std::string payload = encodeBinaryRequest(wire);
  WireRequest decoded;
  std::string error;
  ASSERT_TRUE(decodeBinaryRequest(payload, decoded, error)) << error;
  EXPECT_EQ(decoded.id, wire.id);
  EXPECT_EQ(decoded.source, wire.source);
  EXPECT_EQ(decoded.entry, wire.entry);
  EXPECT_EQ(decoded.args, wire.args);
  EXPECT_EQ(decoded.isa, "dspx");
  EXPECT_EQ(decoded.style, "coder");
  EXPECT_EQ(decoded.tenant, "acme");
  EXPECT_EQ(decoded.vectorize, std::optional<bool>(false));
  EXPECT_EQ(decoded.degrade, std::optional<bool>(true));
  EXPECT_EQ(decoded.constFold, std::nullopt) << "absent toggles stay absent";
  EXPECT_EQ(decoded.deadlineMillis, 1500.0);
  EXPECT_TRUE(decoded.tune);
  EXPECT_EQ(decoded.tuneBudget, 9);

  // Both encodings resolve to the same CompileRequest.
  CompileRequest fromBinary, fromJson;
  ASSERT_TRUE(decoded.resolve(fromBinary, error)) << error;
  ASSERT_TRUE(parseCompileRequest(
      R"({"id": "r1", "source": "function y = f(x)\ny = x;\nend\n", "entry": "f",)"
      R"( "args": "1x8,c1x4", "style": "coder", "tenant": "acme",)"
      R"( "vectorize": false, "degrade": true, "deadline_ms": 1500,)"
      R"( "tune": true, "tune_budget": 9})",
      fromJson, error))
      << error;
  EXPECT_EQ(CacheKey::make(fromBinary.source, fromBinary.entry, fromBinary.args,
                           fromBinary.options),
            CacheKey::make(fromJson.source, fromJson.entry, fromJson.args,
                           fromJson.options));
  EXPECT_EQ(fromBinary.tenant, fromJson.tenant);
  EXPECT_EQ(fromBinary.deadlineMillis, fromJson.deadlineMillis);
  EXPECT_EQ(fromBinary.tuneBudget, fromJson.tuneBudget);
}

TEST(Protocol, BinaryRequestDecodeRejectsDamage) {
  WireRequest wire;
  wire.source = "s";
  wire.entry = "f";
  std::string good = encodeBinaryRequest(wire);
  WireRequest out;
  std::string error;

  EXPECT_FALSE(decodeBinaryRequest(good.substr(0, good.size() / 2), out, error));
  EXPECT_FALSE(decodeBinaryRequest("", out, error));
  EXPECT_FALSE(decodeBinaryRequest("\xff\xff\xff\xff garbage", out, error));
  EXPECT_FALSE(decodeBinaryRequest(good + "trailing", out, error));
  EXPECT_EQ(error, "malformed request payload");

  // Semantic bounds survive the trip through binary.
  WireRequest badBudget = wire;
  badBudget.tuneBudget = -3;
  EXPECT_FALSE(decodeBinaryRequest(encodeBinaryRequest(badBudget), out, error));
  EXPECT_NE(error.find("tune_budget"), std::string::npos);
}

TEST(Protocol, BinaryResponseRoundTrip) {
  CompileResponse resp;
  resp.id = "ok1";
  resp.ok = true;
  resp.cacheHit = true;
  resp.storeHit = true;
  resp.millis = 2.5;
  CachedResult::Meta meta;
  meta.isaName = "dspx";
  meta.loopsVectorized = 3;
  meta.idiomRewrites = 1;
  meta.degraded = {"licm"};
  resp.result = std::make_shared<const CachedResult>("/* c */", std::move(meta),
                                                     "reassoc=1", 22, 100.0, 250.0);

  BinaryResponse out;
  std::string error;
  ASSERT_TRUE(decodeBinaryResponse(encodeBinaryResponse(resp), out, error)) << error;
  EXPECT_EQ(out.id, "ok1");
  EXPECT_TRUE(out.ok);
  EXPECT_TRUE(out.cached);
  EXPECT_TRUE(out.storeHit);
  EXPECT_FALSE(out.deduped);
  EXPECT_EQ(out.millis, 2.5);
  EXPECT_EQ(out.isa, "dspx");
  EXPECT_EQ(out.cBytes, 7u);
  EXPECT_EQ(out.loopsVectorized, 3);
  EXPECT_EQ(out.degraded, (std::vector<std::string>{"licm"}));
  EXPECT_TRUE(out.tuned);
  EXPECT_EQ(out.tunedSignature, "reassoc=1");
  EXPECT_EQ(out.tuneCandidates, 22);
  EXPECT_EQ(out.tunedCycles, 100.0);
  EXPECT_EQ(out.tuneDefaultCycles, 250.0);

  CompileResponse failure;
  failure.id = "e1";
  failure.error = "type error: something";
  failure.errorKind = ErrorKind::SemaError;
  failure.millis = 0.25;
  ASSERT_TRUE(decodeBinaryResponse(encodeBinaryResponse(failure), out, error)) << error;
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.errorKind, ErrorKind::SemaError);
  EXPECT_EQ(out.error, "type error: something");
  EXPECT_FALSE(out.tuned);

  EXPECT_FALSE(decodeBinaryResponse("short", out, error));
}

TEST(Protocol, FrameRoundTripAndFramingErrors) {
  std::string payload = "hello frames";
  std::string frame = encodeFrame(FrameType::Request, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());

  // Two frames back to back, then clean EOF.
  std::istringstream in(frame + encodeFrame(FrameType::Response, ""));
  FrameType type{};
  std::string got, error;
  EXPECT_EQ(readFrame(in, type, got, error), 1);
  EXPECT_EQ(type, FrameType::Request);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(readFrame(in, type, got, error), 1);
  EXPECT_EQ(type, FrameType::Response);
  EXPECT_EQ(got, "");
  EXPECT_EQ(readFrame(in, type, got, error), 0) << "stream ends at a frame boundary";

  auto readOne = [&](std::string bytes) {
    std::istringstream s(std::move(bytes));
    error.clear();
    return readFrame(s, type, got, error);
  };
  EXPECT_EQ(readOne(frame.substr(0, 5)), -1);
  EXPECT_NE(error.find("truncated frame header"), std::string::npos);
  EXPECT_EQ(readOne(frame.substr(0, frame.size() - 3)), -1);
  EXPECT_NE(error.find("truncated frame payload"), std::string::npos);

  std::string badMagic = frame;
  badMagic[0] = 'X';
  EXPECT_EQ(readOne(badMagic), -1);
  EXPECT_NE(error.find("bad frame magic"), std::string::npos);

  std::string badVersion = frame;
  badVersion[4] = 9;
  EXPECT_EQ(readOne(badVersion), -1);
  EXPECT_NE(error.find("unsupported frame version"), std::string::npos);

  std::string badType = frame;
  badType[6] = 7;
  EXPECT_EQ(readOne(badType), -1);
  EXPECT_NE(error.find("unknown frame type"), std::string::npos);

  // Payload limit enforced from the header, before any allocation.
  ProtocolLimits tight;
  tight.maxRequestBytes = 4;
  std::istringstream s(frame);
  EXPECT_EQ(readFrame(s, type, got, error, tight), -1);
  EXPECT_NE(error.find("frame payload is"), std::string::npos);
}

// ---- stats rendering: JSON, Prometheus, healthz ---------------------------

TEST(CompileService, StatsJsonCarriesLatencyTenantsAndStoreBlocks) {
  CompileService::Config config;
  config.threads = 2;
  config.tenantInflightCap = 3;
  CompileService svc(config);
  CompileRequest r = firRequest("s1");
  r.tenant = "acme";
  ASSERT_TRUE(svc.compileBatch({r})[0].ok);

  std::string doc = statsJson(svc.stats(), /*wallMillis=*/10.0);
  EXPECT_NE(doc.find("\"storeHits\": 0"), std::string::npos);
  EXPECT_NE(doc.find("\"latency\""), std::string::npos);
  EXPECT_NE(doc.find("\"p99Millis\""), std::string::npos);
  EXPECT_NE(doc.find("\"tenantInflightCap\": 3"), std::string::npos);
  EXPECT_NE(doc.find("\"tenants\""), std::string::npos);
  EXPECT_NE(doc.find("\"acme\""), std::string::npos);
  EXPECT_EQ(doc.find("\"store\""), std::string::npos)
      << "no store block when persistence is disabled";
  EXPECT_NE(doc.find("\"requestsPerSecond\""), std::string::npos);

  std::string metrics = metricsText(svc.stats(), /*wallMillis=*/10.0);
  for (const char* name :
       {"mat2c_requests_total 1", "mat2c_compiles_total 1", "mat2c_store_hits_total 0",
        "mat2c_request_latency_millis{quantile=\"0.99\"}",
        "mat2c_tenant_requests_total{tenant=\"acme\"} 1", "mat2c_requests_per_second",
        "mat2c_healthz 1"}) {
    EXPECT_NE(metrics.find(name), std::string::npos) << "missing metric: " << name;
  }
  EXPECT_EQ(healthzText(svc.stats()), "ok");

  ServiceStats degraded = svc.stats();
  degraded.panics = 2;
  EXPECT_NE(healthzText(degraded).find("degraded"), std::string::npos);
  EXPECT_NE(metricsText(degraded).find("mat2c_healthz 0"), std::string::npos);
}

// ---- ISA registry: zero-downtime reload ----------------------------------

TEST(IsaRegistry, ReloadKeepsOldIsaOnBadFileAndBumpsVersionOnSuccess) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "mat2c_registry_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  fs::path file = dir / "default.isa";
  {
    std::ofstream out(file);
    out << isa::IsaDescription::preset("dspx").serialize();
  }

  IsaRegistry registry(IsaRegistry::parseFile(file.string()), file.string());
  EXPECT_EQ(registry.snapshot().isa->name(), "dspx");
  EXPECT_EQ(registry.version(), 1u);

  // A bad push must NOT take the default target down: reload reports the
  // parse failure and the old description keeps serving.
  {
    std::ofstream out(file, std::ios::trunc);
    out << "isa utterly { broken\n";
  }
  std::string error = registry.reload();
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(registry.snapshot().isa->name(), "dspx");
  EXPECT_EQ(registry.version(), 1u);
  EXPECT_EQ(registry.reloads(), 0u);

  {
    std::ofstream out(file, std::ios::trunc);
    out << isa::IsaDescription::preset("dspx_w4").serialize();
  }
  EXPECT_EQ(registry.reload(), "");
  EXPECT_EQ(registry.snapshot().isa->name(), "dspx_w4");
  EXPECT_EQ(registry.version(), 2u);
  EXPECT_EQ(registry.reloads(), 1u);

  // Snapshots taken before the reload stay valid: in-flight requests hold
  // the shared_ptr, not the registry.
  IsaRegistry fresh(isa::IsaDescription::preset("dspx"));
  IsaRegistry::Snapshot old = fresh.snapshot();
  fresh.install(isa::IsaDescription::preset("scalar"));
  EXPECT_EQ(old.isa->name(), "dspx");
  EXPECT_EQ(fresh.snapshot().isa->name(), "scalar");

  EXPECT_THROW(IsaRegistry::parseFile((dir / "missing.isa").string()),
               std::runtime_error);
  fs::remove_all(dir);
}

TEST(CompileService, IsaHotReloadDrainsInFlightOnOldFingerprint) {
  // The reload-correctness contract: a request submitted before the swap
  // finishes on the ISA it was stamped with, a request submitted after it
  // compiles fresh under the new ISA (the fingerprint change makes the old
  // cache entry unreachable — no stale or mixed answers), and repeats of the
  // new request hit the new entry.
  IsaRegistry registry(isa::IsaDescription::preset("dspx"));

  std::promise<void> reloadDone;
  std::shared_future<void> reloadDoneFuture = reloadDone.get_future().share();
  std::promise<void> compileEntered;
  std::atomic<bool> gateArmed{true};

  CompileService::Config config;
  config.threads = 1;
  config.isaRegistry = &registry;
  config.onCompileStart = [&](const CompileRequest&) {
    if (gateArmed.exchange(false)) {
      compileEntered.set_value();
      reloadDoneFuture.wait();  // the swap happens while this compile runs
    }
  };
  CompileService svc(config);

  CompileRequest r1 = firRequest("inflight");
  r1.useDefaultIsa = true;
  std::future<CompileResponse> f1 = svc.submit(r1);

  compileEntered.get_future().wait();
  registry.install(isa::IsaDescription::preset("dspx_w4"));
  reloadDone.set_value();

  CompileResponse inflight = f1.get();
  ASSERT_TRUE(inflight.ok) << inflight.error;
  ASSERT_NE(inflight.result, nullptr);
  EXPECT_EQ(inflight.result->isaName, "dspx")
      << "in-flight request must finish on the ISA it was stamped with";

  CompileRequest r2 = firRequest("post_swap");
  r2.useDefaultIsa = true;
  CompileResponse post = svc.submit(r2).get();
  ASSERT_TRUE(post.ok) << post.error;
  EXPECT_FALSE(post.cacheHit)
      << "the old artifact must be unreachable after the swap";
  ASSERT_NE(post.result, nullptr);
  EXPECT_EQ(post.result->isaName, "dspx_w4");

  CompileRequest r3 = firRequest("post_swap_repeat");
  r3.useDefaultIsa = true;
  CompileResponse repeat = svc.submit(r3).get();
  ASSERT_TRUE(repeat.ok) << repeat.error;
  EXPECT_TRUE(repeat.cacheHit);
  EXPECT_EQ(repeat.result->isaName, "dspx_w4");

  ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.isaVersion, 2u);
  EXPECT_EQ(stats.compiles, 2u) << "one compile per ISA version, no mixing";

  std::string metrics = metricsText(stats);
  EXPECT_NE(metrics.find("mat2c_isa_version 2"), std::string::npos);
  EXPECT_NE(metrics.find("mat2c_isa_reloads_total"), std::string::npos);
}

// ---- artifact store: blocked directory degrades, never fails -------------

TEST(CompileService, BlockedStoreDirServesFromMemoryAndReportsDegraded) {
  // Tests run as root, so a chmod 000 directory is still writable; blocking
  // the store with a regular FILE where a path component must be a directory
  // fails create_directories for any uid.
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "mat2c_blocked_store";
  fs::remove_all(dir);
  fs::create_directories(dir);
  fs::path blocker = dir / "blocker";
  { std::ofstream out(blocker); out << "not a directory"; }

  CompileService::Config config;
  config.threads = 2;
  config.storeDir = (blocker / "store").string();
  CompileService svc(config);

  ASSERT_NE(svc.artifactStore(), nullptr);
  EXPECT_FALSE(svc.artifactStore()->ok());

  // Compiles still succeed — the store failure only costs persistence.
  CompileResponse cold = svc.submit(firRequest("cold")).get();
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cacheHit);
  CompileResponse warm = svc.submit(firRequest("warm")).get();
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.cacheHit) << "memory tier keeps working without the store";

  // The write-behind runs after the waiter promise is fulfilled (it is kept
  // off the request's critical path), so give the worker a moment to attempt
  // the doomed put before asserting it was counted.
  ServiceStats stats = svc.stats();
  for (int i = 0; i < 400 && stats.store.putFailures == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stats = svc.stats();
  }
  EXPECT_TRUE(stats.storeEnabled);
  EXPECT_GE(stats.store.putFailures, 1u)
      << "every write-behind against the blocked store must be counted";
  EXPECT_NE(healthzText(stats).find("degraded"), std::string::npos);
  EXPECT_NE(healthzText(stats).find("store write failures"), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mat2c
