// Integration test: the emitted C is compiled with the *host* C compiler,
// executed, and its output compared against the reference interpreter.
// This is the paper's portability claim — "the generated code can be used
// as input to any C/C++ compiler" — verified end to end.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "parser/parser.hpp"
#include "support/string_utils.hpp"

namespace mat2c {
namespace {

std::string cInitializer(const Matrix& m, bool complex) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < m.numel(); ++i) {
    if (i) os << ", ";
    if (complex) {
      os << "{" << formatDouble(m.real(i)) << ", " << formatDouble(m.imag(i)) << "}";
    } else {
      os << formatDouble(m.real(i));
    }
  }
  os << "}";
  return os.str();
}

/// Emits kernel + main, compiles with cc, runs, parses stdout doubles.
std::vector<double> compileAndRunWithCc(const CompiledUnit& unit,
                                        const std::vector<Matrix>& args,
                                        const std::string& tag) {
  const lir::Function& fn = unit.fn();
  std::ostringstream src;
  src << unit.cCode();

  src << "\nint main(void) {\n";
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    const lir::Param& p = fn.params[i];
    bool cplx = p.elem == lir::Scalar::C64;
    if (p.isArray) {
      src << "  static const " << (cplx ? "mat2c_c64" : "double") << " arg" << i << "[] = "
          << cInitializer(args[i], cplx) << ";\n";
    } else if (cplx) {
      src << "  mat2c_c64 arg" << i << " = {" << formatDouble(args[i].real(0)) << ", "
          << formatDouble(args[i].imag(0)) << "};\n";
    } else {
      src << "  double arg" << i << " = " << formatDouble(args[i].real(0)) << ";\n";
    }
  }
  for (std::size_t i = 0; i < fn.outs.size(); ++i) {
    const lir::Param& p = fn.outs[i];
    bool cplx = p.elem == lir::Scalar::C64;
    if (p.isArray) {
      src << "  static " << (cplx ? "mat2c_c64" : "double") << " out" << i << "["
          << p.numel() << "];\n";
    } else {
      src << "  " << (cplx ? "mat2c_c64" : "double") << " out" << i << ";\n";
    }
  }
  src << "  " << fn.name << "(";
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (i) src << ", ";
    src << "arg" << i;
  }
  for (std::size_t i = 0; i < fn.outs.size(); ++i) {
    if (!fn.params.empty() || i) src << ", ";
    src << (fn.outs[i].isArray ? "out" : "&out") << i;
  }
  src << ");\n";
  for (std::size_t i = 0; i < fn.outs.size(); ++i) {
    const lir::Param& p = fn.outs[i];
    bool cplx = p.elem == lir::Scalar::C64;
    if (p.isArray) {
      src << "  for (int k = 0; k < " << p.numel() << "; ++k) {\n";
      if (cplx) {
        src << "    printf(\"%.17g\\n%.17g\\n\", out" << i << "[k].re, out" << i
            << "[k].im);\n";
      } else {
        src << "    printf(\"%.17g\\n\", out" << i << "[k]);\n";
      }
      src << "  }\n";
    } else if (cplx) {
      src << "  printf(\"%.17g\\n%.17g\\n\", out" << i << ".re, out" << i << ".im);\n";
    } else {
      src << "  printf(\"%.17g\\n\", out" << i << ");\n";
    }
  }
  src << "  return 0;\n}\n";

  std::string base = std::string(::testing::TempDir()) + "/mat2c_" + tag;
  std::string cPath = base + ".c";
  std::string binPath = base + ".bin";
  {
    std::ofstream out(cPath);
    out << src.str();
  }
  std::string cmd = "cc -std=c99 -O1 -o " + binPath + " " + cPath + " -lm 2>" + base + ".log";
  int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << "host cc failed; see " << base << ".log";
  if (rc != 0) return {};

  std::vector<double> values;
  FILE* pipe = popen(binPath.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (!pipe) return {};
  char line[128];
  while (std::fgets(line, sizeof line, pipe)) values.push_back(std::strtod(line, nullptr));
  pclose(pipe);
  return values;
}

void checkKernelThroughCc(const kernels::KernelSpec& k, const CompileOptions& options,
                          const std::string& tag) {
  Compiler compiler;
  auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs, options);
  std::vector<double> actual = compileAndRunWithCc(unit, k.args, tag);

  DiagnosticEngine diags;
  auto prog = parseSource(k.source, diags);
  Interpreter interp(*prog);
  auto expected = interp.callFunction(k.entry, k.args, unit.fn().outs.size());

  std::vector<double> flat;
  for (std::size_t o = 0; o < expected.size(); ++o) {
    bool cplx = unit.fn().outs[o].elem == lir::Scalar::C64;
    for (std::size_t i = 0; i < expected[o].numel(); ++i) {
      flat.push_back(expected[o].real(i));
      if (cplx) flat.push_back(expected[o].imag(i));
    }
  }
  ASSERT_EQ(actual.size(), flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_NEAR(actual[i], flat[i], 1e-9 + 1e-9 * std::abs(flat[i])) << "element " << i;
  }
}

TEST(CcIntegration, FirProposed) {
  checkKernelThroughCc(kernels::makeFir(128, 12), CompileOptions::proposed(),
                       "fir_proposed");
}

TEST(CcIntegration, FirCoderLike) {
  checkKernelThroughCc(kernels::makeFir(128, 12), CompileOptions::coderLike(),
                       "fir_coder");
}

TEST(CcIntegration, FdeqComplexIntrinsics) {
  checkKernelThroughCc(kernels::makeFdeq(64), CompileOptions::proposed(), "fdeq");
}

TEST(CcIntegration, CdotComplexReduction) {
  checkKernelThroughCc(kernels::makeCdot(64), CompileOptions::proposed(), "cdot");
}

TEST(CcIntegration, IirRecurrence) {
  checkKernelThroughCc(kernels::makeIir(128, 4), CompileOptions::proposed(), "iir");
}

TEST(CcIntegration, MatmulOnScalarTarget) {
  checkKernelThroughCc(kernels::makeMatmul(8, 8, 8), CompileOptions::proposed("scalar"),
                       "matmul_scalar");
}

TEST(CcIntegration, FmdemodWidth4) {
  checkKernelThroughCc(kernels::makeFmdemod(96), CompileOptions::proposed("dspx_w4"),
                       "fmdemod_w4");
}

TEST(CcIntegration, FftExtendedKernel) {
  checkKernelThroughCc(kernels::makeFft(64), CompileOptions::proposed(), "fft64");
}

/// Property-level: random elementwise programs through the host compiler.
class CcProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CcProperty, HostBinaryMatchesInterpreter) {
  unsigned seed = GetParam();
  std::mt19937 rng(seed * 131 + 7);
  const char* bodies[] = {
      "y = x .* x - 2 .* x + 1;",
      "y = abs(x) + min(x, 0.5) .* max(x, -0.5);",
      "y = (x > 0) .* x + (x <= 0) .* (-x);",
      "y = cos(x) .* cos(x) + sin(x) .* sin(x);",
  };
  std::string src = std::string("function y = f(x)\n") + bodies[rng() % 4] + "\nend\n";
  std::int64_t n = 8 + rng() % 24;

  kernels::KernelSpec k;
  k.name = "prop";
  k.entry = "f";
  k.source = src;
  k.argSpecs = {sema::ArgSpec::row(n)};
  kernels::InputGen gen(seed + 900);
  k.args = {gen.rowVector(n)};
  checkKernelThroughCc(k, CompileOptions::proposed(), "prop" + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CcProperty, ::testing::Range(0u, 4u));

}  // namespace
}  // namespace mat2c
