#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/diagnostics.hpp"
#include "support/string_utils.hpp"

namespace mat2c {
namespace {

TEST(StringUtils, SplitKeepsEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtils, SplitSingleField) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtils, TrimBothEnds) {
  EXPECT_EQ(trim("  x y\t"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, FormatDoubleRoundTrips) {
  EXPECT_EQ(formatDouble(1.0), "1.0");
  EXPECT_EQ(formatDouble(0.5), "0.5");
  // Must parse back to the identical value.
  double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(formatDouble(v)), v);
}

TEST(StringUtils, FormatDoubleSpecials) {
  EXPECT_EQ(formatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(formatDouble(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(formatDouble(std::nan("")), "nan");
}

TEST(StringUtils, JoinAndIdentifier) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_TRUE(isIdentifier("x_1"));
  EXPECT_FALSE(isIdentifier("1x"));
  EXPECT_FALSE(isIdentifier(""));
  EXPECT_FALSE(isIdentifier("a-b"));
}

TEST(Diagnostics, CountsErrors) {
  DiagnosticEngine diags;
  diags.warning({1, 2}, "w");
  EXPECT_FALSE(diags.hasErrors());
  diags.error({3, 4}, "e");
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_EQ(diags.errorCount(), 1u);
  EXPECT_EQ(diags.diagnostics().size(), 2u);
}

TEST(Diagnostics, RendersLocation) {
  DiagnosticEngine diags;
  diags.error({3, 4}, "boom");
  EXPECT_EQ(diags.diagnostics()[0].render(), "error at 3:4: boom");
}

TEST(Diagnostics, FatalThrowsAfterRecording) {
  DiagnosticEngine diags;
  EXPECT_THROW(diags.fatal({1, 1}, "stop"), CompileError);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Diagnostics, UnknownLocationRenders) {
  Diagnostic d{Severity::Note, {}, "hi"};
  EXPECT_EQ(d.render(), "note at <unknown>: hi");
}

}  // namespace
}  // namespace mat2c
