// ISA description tests: presets, parsing, serialization, cost model.
#include <gtest/gtest.h>

#include "isa/isa.hpp"

namespace mat2c::isa {
namespace {

TEST(Isa, ScalarPresetHasNoCustomInstructions) {
  auto d = IsaDescription::preset("scalar");
  EXPECT_EQ(d.lanesF64(), 1);
  EXPECT_EQ(d.lanesC64(), 1);
  EXPECT_FALSE(d.hasFma());
  EXPECT_FALSE(d.hasCmul());
  EXPECT_FALSE(d.supports(Op::VAddF));
  EXPECT_FALSE(d.supports(Op::MulC));
  EXPECT_TRUE(d.supports(Op::AddF));
  EXPECT_TRUE(d.supports(Op::LoadC));
}

TEST(Isa, DspxPreset) {
  auto d = IsaDescription::preset("dspx");
  EXPECT_EQ(d.lanesF64(), 8);
  EXPECT_EQ(d.lanesC64(), 4);
  EXPECT_TRUE(d.hasFma());
  EXPECT_TRUE(d.hasCmul());
  EXPECT_TRUE(d.hasCmac());
  EXPECT_TRUE(d.hasZol());
  EXPECT_TRUE(d.hasAgu());
  EXPECT_TRUE(d.supports(Op::VFmaF));
  EXPECT_TRUE(d.supports(Op::VMulC));
  EXPECT_TRUE(d.supports(Op::VFmaC));
}

TEST(Isa, WidthVariants) {
  EXPECT_EQ(IsaDescription::preset("dspx_w2").lanesF64(), 2);
  EXPECT_EQ(IsaDescription::preset("dspx_w4").lanesF64(), 4);
  EXPECT_EQ(IsaDescription::preset("dspx_w16").lanesF64(), 16);
  EXPECT_EQ(IsaDescription::preset("dspx_novec").lanesF64(), 1);
}

TEST(Isa, NoComplexVariantDisablesComplexUnit) {
  auto d = IsaDescription::preset("dspx_nocomplex");
  EXPECT_FALSE(d.hasCmul());
  EXPECT_FALSE(d.supports(Op::VMulC));
  EXPECT_FALSE(d.supports(Op::MulC));
  EXPECT_TRUE(d.supports(Op::VAddF));  // plain SIMD remains
}

TEST(Isa, UnknownPresetThrows) {
  EXPECT_THROW(IsaDescription::preset("nope"), std::invalid_argument);
}

TEST(Isa, PresetNamesAllConstructible) {
  for (const auto& name : IsaDescription::presetNames()) {
    EXPECT_NO_THROW(IsaDescription::preset(name));
  }
}

TEST(Isa, CmulDecomposition) {
  auto scalar = IsaDescription::preset("scalar");
  // 4 multiplies + 2 adds when there is no complex unit.
  EXPECT_DOUBLE_EQ(scalar.cost(Op::MulC),
                   4 * scalar.cost(Op::MulF) + 2 * scalar.cost(Op::AddF));
  auto dspx = IsaDescription::preset("dspx");
  EXPECT_DOUBLE_EQ(dspx.cost(Op::MulC), 1.0);
}

TEST(Isa, FmaDecomposition) {
  auto scalar = IsaDescription::preset("scalar");
  EXPECT_DOUBLE_EQ(scalar.cost(Op::FmaF), scalar.cost(Op::MulF) + scalar.cost(Op::AddF));
}

TEST(Isa, UnsupportedVectorOpCostThrows) {
  auto scalar = IsaDescription::preset("scalar");
  EXPECT_THROW(scalar.cost(Op::VMulC), std::logic_error);
}

TEST(Isa, ZolAndAguZeroOutOverheads) {
  auto dspx = IsaDescription::preset("dspx");
  EXPECT_DOUBLE_EQ(dspx.cost(Op::LoopOverhead), 0.0);
  EXPECT_DOUBLE_EQ(dspx.cost(Op::AddI), 0.0);
  auto scalar = IsaDescription::preset("scalar");
  EXPECT_GT(scalar.cost(Op::LoopOverhead), 0.0);
  EXPECT_GT(scalar.cost(Op::AddI), 0.0);
}

TEST(Isa, MemoryPortLimitsWideVectors) {
  auto w8 = IsaDescription::preset("dspx");
  auto w16 = IsaDescription::preset("dspx_w16");
  // 16 lanes through an 8-lane port = twice the issues.
  EXPECT_DOUBLE_EQ(w16.cost(Op::VLoadF), 2 * w8.cost(Op::VLoadF));
}

TEST(Isa, ReductionCostScalesWithWidth) {
  auto w4 = IsaDescription::preset("dspx_w4");
  auto w16 = IsaDescription::preset("dspx_w16");
  EXPECT_LT(w4.cost(Op::VReduceAddF), w16.cost(Op::VReduceAddF));
}

TEST(Isa, IntrinsicNamesDeriveFromTargetName) {
  auto d = IsaDescription::preset("dspx");
  EXPECT_EQ(d.intrinsicName(Op::VFmaF), "dspx_vfma_f64");
  EXPECT_EQ(d.intrinsicName(Op::MulC), "dspx_cmul_c64");
}

TEST(Isa, UsesIntrinsicOnlyForCustomOps) {
  auto d = IsaDescription::preset("dspx");
  EXPECT_TRUE(d.usesIntrinsic(Op::VAddF));
  EXPECT_TRUE(d.usesIntrinsic(Op::MulC));
  EXPECT_TRUE(d.usesIntrinsic(Op::FmaF));
  EXPECT_FALSE(d.usesIntrinsic(Op::AddF));   // plain C operator
  EXPECT_FALSE(d.usesIntrinsic(Op::LoadF));  // plain array access
  auto scalar = IsaDescription::preset("scalar");
  EXPECT_FALSE(scalar.usesIntrinsic(Op::MulC));
}

TEST(Isa, MnemonicRoundTrip) {
  for (Op op : {Op::AddF, Op::MulC, Op::VFmaC, Op::BoundsCheck, Op::VLoadF}) {
    auto back = opFromMnemonic(mnemonic(op));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, op);
  }
  EXPECT_FALSE(opFromMnemonic("not.an.op").has_value());
}

TEST(Isa, ParseDescription) {
  DiagnosticEngine diags;
  auto d = IsaDescription::parse(R"(
# my custom DSP
name mydsp
simd f64 4
simd c64 2
memlanes 4
feature fma
feature cmul
cost cmul.c64 2
intrinsic vfma.f64 mydsp_fused_mac
)",
                                 diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.renderAll();
  EXPECT_EQ(d.name(), "mydsp");
  EXPECT_EQ(d.lanesF64(), 4);
  EXPECT_EQ(d.lanesC64(), 2);
  EXPECT_TRUE(d.hasFma());
  EXPECT_TRUE(d.hasCmul());
  EXPECT_FALSE(d.hasCmac());
  EXPECT_DOUBLE_EQ(d.cost(Op::MulC), 2.0);
  EXPECT_EQ(d.intrinsicName(Op::VFmaF), "mydsp_fused_mac");
}

TEST(Isa, ParseDiagnosesUnknownDirectives) {
  DiagnosticEngine diags;
  IsaDescription::parse("bogus directive\nfeature warp\ncost nop.x 1\n", diags);
  EXPECT_GE(diags.errorCount(), 3u);
}

TEST(Isa, ParseDiagnosesDuplicateCost) {
  // A repeated `cost` entry would silently overwrite the first — the parser
  // must name both definitions so the typo is findable in a long file.
  DiagnosticEngine diags;
  IsaDescription::parse(R"(name dup
cost cmul.c64 2
cost vfma.f64 1
cost cmul.c64 3
)",
                        diags);
  ASSERT_TRUE(diags.hasErrors());
  std::string rendered = diags.renderAll();
  EXPECT_NE(rendered.find("duplicate cost for 'cmul.c64'"), std::string::npos) << rendered;
  // Both line numbers: the diagnostic is at line 4, and names line 2 as the
  // first definition.
  EXPECT_NE(rendered.find("first defined at line 2"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("4"), std::string::npos) << rendered;
}

TEST(Isa, ParseDiagnosesDuplicateIntrinsic) {
  DiagnosticEngine diags;
  IsaDescription::parse(R"(name dup
intrinsic vfma.f64 mac_a
intrinsic vfma.f64 mac_b
)",
                        diags);
  ASSERT_TRUE(diags.hasErrors());
  std::string rendered = diags.renderAll();
  EXPECT_NE(rendered.find("duplicate intrinsic for 'vfma.f64'"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("first defined at line 2"), std::string::npos) << rendered;
}

TEST(Isa, DistinctOpsAreNotDuplicates) {
  // Duplicate detection is per-op: costing two different ops is fine.
  DiagnosticEngine diags;
  auto d = IsaDescription::parse("name ok\ncost cmul.c64 2\ncost vfma.f64 1\n", diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.renderAll();
  EXPECT_EQ(d.name(), "ok");
}

TEST(Isa, EveryPresetRoundTripsThroughTextByFingerprint) {
  // serialize() -> parse() must reproduce the exact observable state for
  // every preset; fingerprint() hashes serialize(), so equality here means
  // the round-tripped description compiles, costs, and emits identically.
  for (const auto& name : IsaDescription::presetNames()) {
    auto d = IsaDescription::preset(name);
    DiagnosticEngine diags;
    auto d2 = IsaDescription::parse(d.serialize(), diags);
    EXPECT_FALSE(diags.hasErrors()) << name << ": " << diags.renderAll();
    EXPECT_EQ(d2.fingerprint(), d.fingerprint()) << name;
  }
}

TEST(Isa, GeneratedDescriptionRoundTripsByFingerprint) {
  // Mirror of what src/dse emits: a programmatically built description
  // (setters, not parse) must survive the same text round trip.
  auto d = IsaDescription::preset("scalar");
  d.setName("auto_rt");
  d.setLanes(8, 4);
  d.setMemLanes(16);
  for (const char* f : {"fma", "cmul", "zol"}) d.setFeature(f, true);
  d.setCost(Op::MulC, 2);
  d.setIntrinsicName(Op::VFmaF, "auto_rt_mac");
  DiagnosticEngine diags;
  auto d2 = IsaDescription::parse(d.serialize(), diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.renderAll();
  EXPECT_EQ(d2.fingerprint(), d.fingerprint());
  EXPECT_EQ(d2.memLanes(), 16);
}

TEST(Isa, SerializeRoundTrip) {
  auto d = IsaDescription::preset("dspx");
  d.setCost(Op::SinF, 11);
  d.setIntrinsicName(Op::VAddF, "dspx_wide_add");
  DiagnosticEngine diags;
  auto d2 = IsaDescription::parse(d.serialize(), diags);
  EXPECT_FALSE(diags.hasErrors());
  EXPECT_EQ(d2.name(), d.name());
  EXPECT_EQ(d2.lanesF64(), d.lanesF64());
  EXPECT_EQ(d2.lanesC64(), d.lanesC64());
  EXPECT_EQ(d2.hasCmac(), d.hasCmac());
  EXPECT_DOUBLE_EQ(d2.cost(Op::SinF), 11.0);
  EXPECT_EQ(d2.intrinsicName(Op::VAddF), "dspx_wide_add");
}

TEST(Isa, VectorAndComplexClassifiers) {
  EXPECT_TRUE(isVectorOp(Op::VAddF));
  EXPECT_FALSE(isVectorOp(Op::AddF));
  EXPECT_TRUE(isComplexOp(Op::MulC));
  EXPECT_TRUE(isComplexOp(Op::VLoadC));
  EXPECT_FALSE(isComplexOp(Op::VLoadF));
}

}  // namespace
}  // namespace mat2c::isa
