// Robustness tests: the structured error taxonomy, resource guards
// (CompileLimits + DeadlineGuard), the graceful-degradation ladder, service
// hardening (deadlines, queue timeouts, panic containment, single-flight
// leak regression), protocol input rejection, and cache byte accounting.
//
// These tests carry the `robustness` ctest label; most fault paths are
// reached deterministically through support/fault_injection.hpp, so every
// ladder rung and every ErrorKind has a test that hits it on purpose.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "parser/parser.hpp"
#include "service/compile_service.hpp"
#include "service/protocol.hpp"
#include "support/fault_injection.hpp"
#include "support/limits.hpp"

namespace mat2c {
namespace {

using sema::ArgSpec;
using namespace service;

const char* kFirSource =
    "function y = fir(x, h)\n"
    "y = 0;\n"
    "for k = 1:length(x)\n"
    "  y = y + x(k) * h(k);\n"
    "end\n"
    "end\n";

CompileRequest firRequest(const std::string& id) {
  CompileRequest r;
  r.id = id;
  r.source = kFirSource;
  r.entry = "fir";
  r.args = {ArgSpec::row(64), ArgSpec::row(64)};
  r.options = CompileOptions::proposed();
  return r;
}

std::vector<Matrix> firArgs() {
  auto k = kernels::makeFir(64, 64);
  return k.args;
}

/// The fault spec is process-global; every test that installs one must clear
/// it even when an assertion throws.
struct FaultScope {
  explicit FaultScope(const std::string& spec) { fault::setSpec(spec); }
  ~FaultScope() { fault::setSpec(""); }
};

// ---- DeadlineGuard -------------------------------------------------------

TEST(DeadlineGuard, InactiveGuardPollsAreNoOps) {
  DeadlineGuard guard(0);
  EXPECT_FALSE(guard.active());
  DeadlineGuard::Scope scope(guard);
  EXPECT_NO_THROW(DeadlineGuard::poll("test"));
}

TEST(DeadlineGuard, NoGuardInstalledPollsAreNoOps) {
  EXPECT_EQ(DeadlineGuard::current(), nullptr);
  EXPECT_NO_THROW(DeadlineGuard::poll("test"));
}

TEST(DeadlineGuard, ForcedExpiryThrowsTimeoutNamingTheSite) {
  DeadlineGuard guard(60000);
  DeadlineGuard::Scope scope(guard);
  EXPECT_TRUE(guard.active());
  EXPECT_FALSE(guard.expired());
  guard.forceExpire();
  EXPECT_TRUE(guard.expired());
  try {
    DeadlineGuard::poll("unit-test-site");
    FAIL() << "expected StructuredError(Timeout)";
  } catch (const StructuredError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Timeout);
    EXPECT_NE(std::string(e.what()).find("unit-test-site"), std::string::npos) << e.what();
  }
}

TEST(DeadlineGuard, ScopeRestoresThePreviousGuard) {
  DeadlineGuard outer(60000);
  DeadlineGuard::Scope outerScope(outer);
  EXPECT_EQ(DeadlineGuard::current(), &outer);
  {
    DeadlineGuard inner(60000);
    DeadlineGuard::Scope innerScope(inner);
    EXPECT_EQ(DeadlineGuard::current(), &inner);
  }
  EXPECT_EQ(DeadlineGuard::current(), &outer);
}

// ---- ErrorKind taxonomy --------------------------------------------------

TEST(ErrorTaxonomy, KindStringsRoundTrip) {
  for (ErrorKind k : {ErrorKind::None, ErrorKind::ParseError, ErrorKind::SemaError,
                      ErrorKind::PassError, ErrorKind::VerifyError,
                      ErrorKind::ResourceExhausted, ErrorKind::Timeout, ErrorKind::Panic}) {
    EXPECT_EQ(errorKindFromString(toString(k)), k);
  }
  EXPECT_EQ(errorKindFromString("NoSuchKind"), ErrorKind::None);
}

TEST(ErrorTaxonomy, OnlyPassAndVerifyErrorsAreDegradable) {
  EXPECT_TRUE(isDegradable(ErrorKind::PassError));
  EXPECT_TRUE(isDegradable(ErrorKind::VerifyError));
  EXPECT_FALSE(isDegradable(ErrorKind::ParseError));
  EXPECT_FALSE(isDegradable(ErrorKind::SemaError));
  EXPECT_FALSE(isDegradable(ErrorKind::ResourceExhausted));
  EXPECT_FALSE(isDegradable(ErrorKind::Timeout));
  EXPECT_FALSE(isDegradable(ErrorKind::Panic));
}

ErrorKind kindOf(const std::string& source, const std::string& entry,
                 const std::vector<ArgSpec>& args, const CompileOptions& options) {
  Compiler compiler;
  try {
    compiler.compileSource(source, entry, args, options);
  } catch (const StructuredError& e) {
    return e.kind();
  }
  return ErrorKind::None;
}

TEST(ErrorTaxonomy, SyntaxErrorClassifiesAsParseError) {
  EXPECT_EQ(kindOf("function y = f(x\ny = 1;\nend\n", "f", {ArgSpec::scalar()},
                   CompileOptions::proposed()),
            ErrorKind::ParseError);
}

TEST(ErrorTaxonomy, UndefinedVariableClassifiesAsSemaError) {
  EXPECT_EQ(kindOf("function y = f(x)\ny = nosuch + 1;\nend\n", "f", {ArgSpec::scalar()},
                   CompileOptions::proposed()),
            ErrorKind::SemaError);
}

TEST(ErrorTaxonomy, MissingEntryClassifiesAsSemaError) {
  EXPECT_EQ(kindOf("function y = g(x)\ny = x;\nend\n", "f", {ArgSpec::scalar()},
                   CompileOptions::proposed()),
            ErrorKind::SemaError);
}

TEST(ErrorTaxonomy, VerifyFailureNamesThePassAndClassifiesAsVerifyError) {
  DiagnosticEngine diags;
  auto prog = parseSource(kFirSource, diags);
  lir::Function fn =
      lower::lowerProgram(*prog, "fir", {ArgSpec::row(64), ArgSpec::row(64)}, {}, diags);
  ASSERT_FALSE(diags.hasErrors()) << diags.renderAll();

  opt::PassPipeline pipeline;
  pipeline.addPass("breaker", [](lir::Function& f, const isa::IsaDescription&,
                                 opt::PassRecord&, opt::PipelineReport&) {
    f.body.push_back(lir::assign("no_such_var", lir::constF(1.0)));
  });
  opt::PipelineOptions opts;
  opts.verifyEach = true;
  try {
    pipeline.run(fn, isa::IsaDescription::preset("dspx"), opts);
    FAIL() << "expected StructuredError(VerifyError)";
  } catch (const StructuredError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::VerifyError);
    EXPECT_EQ(e.pass(), "breaker");
    EXPECT_NE(std::string(e.what()).find("no_such_var"), std::string::npos) << e.what();
  }
}

TEST(ErrorTaxonomy, PassExceptionIsWrappedWithAttribution) {
  DiagnosticEngine diags;
  auto prog = parseSource(kFirSource, diags);
  lir::Function fn =
      lower::lowerProgram(*prog, "fir", {ArgSpec::row(64), ArgSpec::row(64)}, {}, diags);
  ASSERT_FALSE(diags.hasErrors()) << diags.renderAll();

  opt::PassPipeline pipeline;
  pipeline.addPass("thrower", [](lir::Function&, const isa::IsaDescription&,
                                 opt::PassRecord&, opt::PipelineReport&) {
    throw std::runtime_error("boom");
  });
  try {
    pipeline.run(fn, isa::IsaDescription::preset("dspx"), {});
    FAIL() << "expected StructuredError(PassError)";
  } catch (const StructuredError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::PassError);
    EXPECT_EQ(e.pass(), "thrower");
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos) << e.what();
  }
}

// ---- Resource limits -----------------------------------------------------

TEST(ResourceLimits, OversizedSourceIsRejectedBeforeParsing) {
  CompileOptions o = CompileOptions::proposed();
  o.limits.maxSourceBytes = 8;
  EXPECT_EQ(kindOf(kFirSource, "fir", {ArgSpec::row(64), ArgSpec::row(64)}, o),
            ErrorKind::ResourceExhausted);
}

TEST(ResourceLimits, AstNodeBudgetIsEnforced) {
  CompileOptions o = CompileOptions::proposed();
  o.limits.maxAstNodes = 3;
  EXPECT_EQ(kindOf(kFirSource, "fir", {ArgSpec::row(64), ArgSpec::row(64)}, o),
            ErrorKind::ResourceExhausted);
}

TEST(ResourceLimits, AstDepthBudgetIsEnforced) {
  CompileOptions o = CompileOptions::proposed();
  o.limits.maxAstDepth = 4;
  // Nested unary minus grows AST depth without tripping the node budget.
  EXPECT_EQ(kindOf("function y = f(x)\ny = - - - - - - - - x;\nend\n", "f",
                   {ArgSpec::scalar()}, o),
            ErrorKind::ResourceExhausted);
}

TEST(ResourceLimits, ParserNestingCapStopsDepthBombs) {
  // Deeper than the parser's hard recursion cap: must fail with a ParseError
  // diagnostic, not exhaust the stack (the AST depth limit never gets to run
  // because parsing itself is the recursive phase).
  std::string src = "function y = f(x)\ny = ";
  src += std::string(500, '(');
  src += "x";
  src += std::string(500, ')');
  src += ";\nend\n";
  Compiler compiler;
  try {
    compiler.compileSource(src, "f", {ArgSpec::scalar()}, CompileOptions::proposed());
    FAIL() << "expected StructuredError(ParseError)";
  } catch (const StructuredError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::ParseError);
    EXPECT_NE(std::string(e.what()).find("nesting too deep"), std::string::npos) << e.what();
  }
}

// ---- Unroll under an LIR budget (downward / zero-trip loops) -------------

const char* kRecurrenceSource =
    "function y = f(x)\ns = 0;\nfor k = 1:4\n  s = s * 0.5 + x(k);\nend\ny = s;\nend\n";
const char* kDownwardSource =
    "function y = f(x)\ns = 0;\nfor k = 4:-1:1\n  s = s * 0.5 + x(k);\nend\ny = s;\nend\n";
const char* kZeroTripSource =
    "function y = f(x)\ns = 7;\nfor k = 6:5\n  s = s * 0.5 + x(k);\nend\ny = s;\nend\n";

/// Unroll is the only size-increasing pass left on: a tiny maxLirOps budget
/// then isolates the unroll/budget interaction.
CompileOptions unrollOnly() {
  CompileOptions o = CompileOptions::proposed();
  o.vectorize = false;
  o.fuseLoops = false;
  o.licm = false;
  o.cse = false;
  o.deadStores = false;
  return o;
}

TEST(UnrollBudget, TinyBudgetSkipsTheUnrollInsteadOfFailing) {
  Compiler compiler;
  auto baseline =
      compiler.compileSource(kRecurrenceSource, "f", {ArgSpec::row(4)}, unrollOnly());
  EXPECT_EQ(baseline.optimizationReport().loopsUnrolled, 1);

  CompileOptions tight = unrollOnly();
  tight.limits.maxLirOps = 1;  // growth-gated: nothing may grow, ever
  auto unit = compiler.compileSource(kRecurrenceSource, "f", {ArgSpec::row(4)}, tight);
  EXPECT_EQ(unit.optimizationReport().loopsUnrolled, 0);
  EXPECT_TRUE(unit.optimizationReport().degraded.empty());
  EXPECT_LE(validateAgainstInterpreter(kRecurrenceSource, "f", unit,
                                       {kernels::makeFir(4, 2).args[0]}),
            1e-12);
}

TEST(UnrollBudget, DownwardLoopUnderTinyBudgetCompilesUnchanged) {
  Compiler compiler;
  CompileOptions tight = unrollOnly();
  tight.limits.maxLirOps = 1;
  auto unit = compiler.compileSource(kDownwardSource, "f", {ArgSpec::row(4)}, tight);
  EXPECT_EQ(unit.optimizationReport().loopsUnrolled, 0);
  EXPECT_LE(validateAgainstInterpreter(kDownwardSource, "f", unit,
                                       {kernels::makeFir(4, 2).args[0]}),
            1e-12);
}

TEST(UnrollBudget, ZeroTripLoopUnderTinyBudgetCompilesUnchanged) {
  Compiler compiler;
  CompileOptions tight = unrollOnly();
  tight.limits.maxLirOps = 1;
  auto unit = compiler.compileSource(kZeroTripSource, "f", {ArgSpec::row(8)}, tight);
  EXPECT_EQ(unit.optimizationReport().loopsUnrolled, 0);
  auto run = unit.run({kernels::makeFir(8, 2).args[0]});
  EXPECT_DOUBLE_EQ(run.outputs[0].scalarValue(), 7.0);  // body never executes
}

#ifdef MAT2C_FAULT_INJECTION

// ---- Fault injection plumbing --------------------------------------------

TEST(FaultInjection, SpecInstallAndClear) {
  EXPECT_FALSE(fault::enabled());
  {
    FaultScope f("pass:licm:throw");
    EXPECT_TRUE(fault::enabled());
    EXPECT_EQ(fault::activeSpec(), "pass:licm:throw");
  }
  EXPECT_FALSE(fault::enabled());
  EXPECT_EQ(fault::activeSpec(), "");
}

TEST(FaultInjection, MalformedSpecIsRejectedNotIgnored) {
  // A typo'd spec must fail loudly; silently dropping the clause would run
  // the test without the fault and pass vacuously.
  EXPECT_THROW(fault::setSpec("pass:*:sleep:9999999999999"), std::invalid_argument);
  EXPECT_THROW(fault::setSpec("pass:*:sleep:10ms"), std::invalid_argument);
  EXPECT_THROW(fault::setSpec("pass:*:explode"), std::invalid_argument);
  EXPECT_THROW(fault::setSpec("alloc:after:x7"), std::invalid_argument);
  EXPECT_THROW(fault::setSpec("alloc:after:-1"), std::invalid_argument);
  EXPECT_THROW(fault::setSpec("bogus"), std::invalid_argument);
  // One bad clause poisons the whole spec even next to a valid one.
  EXPECT_THROW(fault::setSpec("pass:licm:throw,alloc:after:zzz"), std::invalid_argument);
  fault::setSpec("");  // leave no residue for later tests
  EXPECT_FALSE(fault::enabled());
}

TEST(FaultInjection, ValidSpecsStillInstall) {
  FaultScope f("pass:licm:sleep:5,alloc:after:1000000,deadline:pass:*");
  EXPECT_TRUE(fault::enabled());
}

TEST(FaultInjection, PointSpecsValidateActionAndCount) {
  // Point hit counts are 1-based ("the Nth hit"); 0, negatives, junk, and a
  // missing count are all spec errors, same as the pass clauses.
  EXPECT_THROW(fault::setSpec("crash:compile:0"), std::invalid_argument);
  EXPECT_THROW(fault::setSpec("crash:compile:-1"), std::invalid_argument);
  EXPECT_THROW(fault::setSpec("crash:compile:two"), std::invalid_argument);
  EXPECT_THROW(fault::setSpec("crash:compile:"), std::invalid_argument);
  EXPECT_THROW(fault::setSpec("crash:compile"), std::invalid_argument);
  EXPECT_THROW(fault::setSpec("fail:store.write:0"), std::invalid_argument);
  EXPECT_THROW(fault::setSpec("torn:frame.write:1x"), std::invalid_argument);
  fault::setSpec("");  // leave no residue for later tests
  EXPECT_FALSE(fault::enabled());
}

TEST(FaultInjection, FailPointFiresFromTheNthHitOnward) {
  FaultScope f("fail:unit.point:3");
  EXPECT_EQ(fault::atPoint("unit.point"), fault::PointAction::None);  // hit 1
  EXPECT_EQ(fault::atPoint("unit.point"), fault::PointAction::None);  // hit 2
  EXPECT_EQ(fault::atPoint("unit.point"), fault::PointAction::Fail);  // hit 3
  EXPECT_EQ(fault::atPoint("unit.point"), fault::PointAction::Fail)
      << "fail: is sticky from the threshold onward";
  // Other points are untouched, and their hits don't advance this counter.
  EXPECT_EQ(fault::atPoint("other.point"), fault::PointAction::None);
}

TEST(FaultInjection, TornPointFiresFromTheNthHitAndBeatsFail) {
  {
    FaultScope f("torn:unit.point:2");
    EXPECT_EQ(fault::atPoint("unit.point"), fault::PointAction::None);
    EXPECT_EQ(fault::atPoint("unit.point"), fault::PointAction::Torn);
    EXPECT_EQ(fault::atPoint("unit.point"), fault::PointAction::Torn);
  }
  {
    // When both clauses cover one hit, the torn write wins: the half-written
    // artifact is the harder case for the reader, so composed specs must
    // exercise it regardless of clause order.
    FaultScope f("fail:unit.point:1,torn:unit.point:1");
    EXPECT_EQ(fault::atPoint("unit.point"), fault::PointAction::Torn);
  }
  {
    FaultScope f("torn:unit.point:1,fail:unit.point:1");
    EXPECT_EQ(fault::atPoint("unit.point"), fault::PointAction::Torn);
  }
}

TEST(FaultInjection, PointCountersResetWithEachSpecInstall) {
  {
    FaultScope f("fail:unit.point:2");
    EXPECT_EQ(fault::atPoint("unit.point"), fault::PointAction::None);
    EXPECT_EQ(fault::atPoint("unit.point"), fault::PointAction::Fail);
  }
  // A fresh install starts counting from zero — chaos workers that restart
  // re-arm their fault from the environment the same way.
  FaultScope f("fail:unit.point:2");
  EXPECT_EQ(fault::atPoint("unit.point"), fault::PointAction::None);
  EXPECT_EQ(fault::atPoint("unit.point"), fault::PointAction::Fail);
}

TEST(FaultInjection, AllocBudgetClassifiesAsResourceExhausted) {
  FaultScope f("alloc:after:0");
  EXPECT_EQ(kindOf(kFirSource, "fir", {ArgSpec::row(64), ArgSpec::row(64)},
                   CompileOptions::proposed()),
            ErrorKind::ResourceExhausted);
}

TEST(FaultInjection, InjectedPassThrowClassifiesAsPassErrorWhenDegradeOff) {
  FaultScope f("pass:licm:throw");
  CompileOptions o = CompileOptions::proposed();
  o.degrade = false;
  Compiler compiler;
  try {
    compiler.compileSource(kFirSource, "fir", {ArgSpec::row(64), ArgSpec::row(64)}, o);
    FAIL() << "expected StructuredError(PassError)";
  } catch (const StructuredError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::PassError);
    EXPECT_EQ(e.pass(), "licm");
    EXPECT_NE(std::string(e.what()).find("licm"), std::string::npos) << e.what();
  }
}

// ---- Timeouts ------------------------------------------------------------

TEST(Timeouts, DeadlineFaultAtPassBoundaryClassifiesAsTimeout) {
  FaultScope f("deadline:pass:fuse");
  CompileOptions o = CompileOptions::proposed();
  o.limits.wallBudgetMillis = 60000;  // guard active; the fault trips it early
  EXPECT_EQ(kindOf(kFirSource, "fir", {ArgSpec::row(64), ArgSpec::row(64)}, o),
            ErrorKind::Timeout);
}

TEST(Timeouts, StuckPassAgainstTinyBudgetClassifiesAsTimeout) {
  FaultScope f("pass:constfold:sleep:30");
  CompileOptions o = CompileOptions::proposed();
  o.limits.wallBudgetMillis = 5;
  EXPECT_EQ(kindOf(kFirSource, "fir", {ArgSpec::row(64), ArgSpec::row(64)}, o),
            ErrorKind::Timeout);
}

// ---- The degradation ladder ----------------------------------------------

TEST(DegradationLadder, RetriesWithTheOffendingPassDisabled) {
  FaultScope f("pass:licm:throw");
  Compiler compiler;
  auto unit = compiler.compileSource(kFirSource, "fir", {ArgSpec::row(64), ArgSpec::row(64)},
                                     CompileOptions::proposed());
  EXPECT_EQ(unit.optimizationReport().degraded, (std::vector<std::string>{"licm"}));
  for (const auto& p : unit.optimizationReport().passes) EXPECT_NE(p.name, "licm");
  EXPECT_LE(validateAgainstInterpreter(kFirSource, "fir", unit, firArgs()), 1e-9);
}

TEST(DegradationLadder, FallsBackToCoderLikeWhenRetryFailsToo) {
  // Two distinct failing passes: disabling the first (vectorize) is not
  // enough — the second failure lands on the coderLike rung, whose pipeline
  // contains neither pass.
  FaultScope f("pass:vectorize:throw,pass:licm:throw");
  Compiler compiler;
  auto unit = compiler.compileSource(kFirSource, "fir", {ArgSpec::row(64), ArgSpec::row(64)},
                                     CompileOptions::proposed());
  EXPECT_EQ(unit.optimizationReport().degraded,
            (std::vector<std::string>{"vectorize", "coderLike"}));
  EXPECT_LE(validateAgainstInterpreter(kFirSource, "fir", unit, firArgs()), 1e-9);
}

TEST(DegradationLadder, ExhaustedLadderPropagatesTheError) {
  // Every pass throws, including the coderLike baseline's: the ladder runs
  // out of rungs and the PassError surfaces.
  FaultScope f("pass:*:throw");
  EXPECT_EQ(kindOf(kFirSource, "fir", {ArgSpec::row(64), ArgSpec::row(64)},
                   CompileOptions::proposed()),
            ErrorKind::PassError);
}

TEST(DegradationLadder, CleanCompileRecordsNoDegradation) {
  Compiler compiler;
  auto unit = compiler.compileSource(kFirSource, "fir", {ArgSpec::row(64), ArgSpec::row(64)},
                                     CompileOptions::proposed());
  EXPECT_TRUE(unit.optimizationReport().degraded.empty());
}

// ---- Service hardening ---------------------------------------------------

TEST(ServiceHardening, StuckCompileResolvesAsTimeoutAndWorkerSurvives) {
  CompileService::Config cfg;
  cfg.threads = 1;
  CompileService svc(cfg);

  {
    FaultScope f("pass:*:sleep:30");
    CompileRequest r = firRequest("stuck");
    r.deadlineMillis = 50;
    CompileResponse resp = svc.submit(std::move(r)).get();
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorKind, ErrorKind::Timeout);
  }

  // The worker must still be alive and compiling after the timeout.
  CompileRequest clean = firRequest("after");
  clean.source = kRecurrenceSource;
  clean.entry = "f";
  clean.args = {ArgSpec::row(4)};
  CompileResponse resp = svc.submit(std::move(clean)).get();
  EXPECT_TRUE(resp.ok) << resp.error;
  EXPECT_GE(svc.stats().timeouts, 1u);
}

TEST(ServiceHardening, QueuedPastDeadlineIsResolvedAtPickupWithoutCompiling) {
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> started{0};
  CompileService::Config cfg;
  cfg.threads = 1;
  cfg.onCompileStart = [&](const CompileRequest&) {
    if (started.fetch_add(1) == 0) opened.wait();
  };
  CompileService svc(cfg);

  auto blocker = svc.submit(firRequest("blocker"));
  while (started.load() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  CompileRequest doomed = firRequest("doomed");
  doomed.source = kRecurrenceSource;
  doomed.entry = "f";
  doomed.args = {ArgSpec::row(4)};
  doomed.deadlineMillis = 1;
  auto doomedFuture = svc.submit(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.set_value();

  CompileResponse blocked = blocker.get();
  EXPECT_TRUE(blocked.ok) << blocked.error;
  CompileResponse timedOut = doomedFuture.get();
  EXPECT_FALSE(timedOut.ok);
  EXPECT_EQ(timedOut.errorKind, ErrorKind::Timeout);
  EXPECT_NE(timedOut.error.find("queue"), std::string::npos) << timedOut.error;
  // The doomed request never reached the compiler.
  EXPECT_EQ(svc.stats().compiles, 1u);
}

TEST(ServiceHardening, LeaderPanicStillFulfillsSingleFlightWaiters) {
  // Leak regression for single-flight dedup: a waiter joined to a flight
  // whose leader compile panics (non-std exception) must still get a
  // response, and the worker must survive to serve the next request.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> started{0};
  CompileService::Config cfg;
  cfg.threads = 1;
  cfg.onCompileStart = [&](const CompileRequest&) {
    if (started.fetch_add(1) == 0) opened.wait();
  };
  CompileService svc(cfg);

  auto leader = svc.submit(firRequest("leader"));
  while (started.load() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto joiner = svc.submit(firRequest("joiner"));  // identical → joins the flight

  fault::setSpec("pass:*:panic");
  gate.set_value();

  CompileResponse leaderResp = leader.get();
  CompileResponse joinerResp = joiner.get();
  fault::setSpec("");

  EXPECT_FALSE(leaderResp.ok);
  EXPECT_EQ(leaderResp.errorKind, ErrorKind::Panic);
  EXPECT_FALSE(joinerResp.ok);
  EXPECT_EQ(joinerResp.errorKind, ErrorKind::Panic);
  EXPECT_TRUE(joinerResp.deduped);
  EXPECT_GE(svc.stats().panics, 1u);
  EXPECT_GE(svc.stats().dedupJoins, 1u);

  CompileRequest clean = firRequest("after-panic");
  clean.source = kRecurrenceSource;
  clean.entry = "f";
  clean.args = {ArgSpec::row(4)};
  CompileResponse resp = svc.submit(std::move(clean)).get();
  EXPECT_TRUE(resp.ok) << resp.error;
}

TEST(ServiceHardening, DegradedCompilesAreSurfacedAndCounted) {
  FaultScope f("pass:licm:throw");
  CompileService::Config cfg;
  cfg.threads = 1;
  CompileService svc(cfg);
  CompileResponse resp = svc.submit(firRequest("degraded")).get();
  ASSERT_TRUE(resp.ok) << resp.error;
  ASSERT_NE(resp.result, nullptr);
  EXPECT_EQ(resp.result->degraded, (std::vector<std::string>{"licm"}));
  ASSERT_TRUE(resp.result->hasUnit());
  EXPECT_EQ(resp.result->unit->optimizationReport().degraded,
            (std::vector<std::string>{"licm"}));
  EXPECT_EQ(svc.stats().degraded, 1u);

  std::string json = responseJson(resp);
  EXPECT_NE(json.find("\"degraded\""), std::string::npos) << json;
  EXPECT_NE(json.find("licm"), std::string::npos) << json;
}

#endif  // MAT2C_FAULT_INJECTION

TEST(ServiceHardening, StatsJsonCarriesTheRobustnessCounters) {
  CompileService svc(CompileService::Config{});
  std::string json = statsJson(svc.stats());
  EXPECT_NE(json.find("\"timeouts\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"panics\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"degraded\""), std::string::npos) << json;
}

// ---- Protocol hardening --------------------------------------------------

TEST(ProtocolHardening, OversizedRequestLineClassifiesAsResourceExhausted) {
  ProtocolLimits limits;
  limits.maxRequestBytes = 64;
  std::string line = "{\"source\": \"" + std::string(100, 'x') + "\", \"entry\": \"f\"}";
  CompileRequest out;
  std::string error;
  ErrorKind kind = ErrorKind::None;
  EXPECT_FALSE(parseCompileRequest(line, out, error, &kind, limits));
  EXPECT_EQ(kind, ErrorKind::ResourceExhausted);
  EXPECT_FALSE(error.empty());
}

TEST(ProtocolHardening, MalformedInputsClassifyAsParseError) {
  struct Case {
    std::string name;
    std::string line;
  };
  std::vector<Case> cases;
  cases.push_back({"embedded NUL byte",
                   std::string("{\"entry\": \"a") + '\0' + "b\"}"});
  cases.push_back({"unterminated string", "{\"entry\": \"abc"});
  cases.push_back({"array depth bomb", std::string(100, '[')});
  cases.push_back({"object depth bomb", [] {
                     std::string s;
                     for (int i = 0; i < 100; ++i) s += "{\"k\":";
                     return s;
                   }()});
  cases.push_back({"unknown field", "{\"source\": \"x\", \"entry\": \"f\", \"bogus\": 1}"});
  cases.push_back({"non-object top level", "42"});
  cases.push_back({"trailing junk", "{\"source\": \"x\", \"entry\": \"f\"} extra"});
  cases.push_back({"missing required fields", "{}"});
  cases.push_back({"empty line", ""});
  cases.push_back({"negative deadline",
                   "{\"source\": \"x\", \"entry\": \"f\", \"deadline_ms\": -5}"});

  for (const Case& c : cases) {
    CompileRequest out;
    std::string error;
    ErrorKind kind = ErrorKind::None;
    EXPECT_FALSE(parseCompileRequest(c.line, out, error, &kind)) << c.name;
    EXPECT_EQ(kind, ErrorKind::ParseError) << c.name;
    EXPECT_FALSE(error.empty()) << c.name;
  }
}

TEST(ProtocolHardening, DeadlineAndDegradeFieldsParse) {
  CompileRequest out;
  std::string error;
  ErrorKind kind = ErrorKind::ParseError;
  std::string line =
      "{\"source\": \"function y = f(x)\\ny = x;\\nend\\n\", \"entry\": \"f\","
      " \"args\": \"1x1\", \"deadline_ms\": 250, \"degrade\": false}";
  ASSERT_TRUE(parseCompileRequest(line, out, error, &kind)) << error;
  EXPECT_EQ(kind, ErrorKind::None);
  EXPECT_DOUBLE_EQ(out.deadlineMillis, 250.0);
  EXPECT_FALSE(out.options.degrade);
}

TEST(ProtocolHardening, ErrorResponsesCarryTheErrorKind) {
  CompileResponse resp;
  resp.id = "r1";
  resp.ok = false;
  resp.error = "request timed out in queue";
  resp.errorKind = ErrorKind::Timeout;
  std::string json = responseJson(resp);
  EXPECT_NE(json.find("\"errorKind\": \"Timeout\""), std::string::npos) << json;
}

// ---- Cache byte accounting -----------------------------------------------

std::shared_ptr<const CachedResult> paddedResult(const CompiledUnit& unit,
                                                 std::size_t padding) {
  return std::make_shared<const CachedResult>(unit,
                                              unit.cCode() + std::string(padding, ' '));
}

TEST(CacheAccounting, KeyBytesAreChargedAndReleased) {
  Compiler compiler;
  auto unit = compiler.compileSource(kFirSource, "fir", {ArgSpec::row(64), ArgSpec::row(64)},
                                     CompileOptions::proposed());
  CompileCache cache(4, 1);  // single shard: eviction order is deterministic
  EXPECT_EQ(cache.stats().bytes, 0u);

  auto key = CacheKey::make(kFirSource, "fir", {ArgSpec::row(64)}, CompileOptions::proposed());
  auto small = paddedResult(unit, 0);
  auto large = paddedResult(unit, 4096);

  cache.insert(key, small);
  EXPECT_EQ(cache.stats().bytes, key.canonical.size() + small->byteSize());
  EXPECT_TRUE(cache.checkByteAccounting());

  // Refresh with a different value: key bytes stay charged exactly once.
  cache.insert(key, large);
  EXPECT_EQ(cache.stats().bytes, key.canonical.size() + large->byteSize());
  EXPECT_TRUE(cache.checkByteAccounting());

  // Fill past capacity: the evicted entry's key+value bytes are released.
  for (int i = 0; i < 5; ++i) {
    auto k = CacheKey::make(std::string(kFirSource) + std::string(i + 1, ' '), "fir",
                            {ArgSpec::row(64)}, CompileOptions::proposed());
    cache.insert(k, small);
  }
  EXPECT_EQ(cache.stats().entries, 4u);
  EXPECT_GE(cache.stats().evictions, 2u);
  EXPECT_TRUE(cache.checkByteAccounting());

  cache.clear();
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_TRUE(cache.checkByteAccounting());
}

TEST(CacheAccounting, InvariantHoldsUnderEightThreadChurn) {
  Compiler compiler;
  auto unit = compiler.compileSource(kFirSource, "fir", {ArgSpec::row(64), ArgSpec::row(64)},
                                     CompileOptions::proposed());
  std::vector<std::shared_ptr<const CachedResult>> results;
  for (int i = 0; i < 4; ++i) results.push_back(paddedResult(unit, i * 37u));

  CompileCache cache(16, 4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        int variant = (t * 131 + i * 7) % 40;
        auto key = CacheKey::make(std::string(kFirSource) + std::string(variant, ' '),
                                  "fir", {ArgSpec::row(64), ArgSpec::row(64)},
                                  CompileOptions::proposed());
        if ((t + i) % 3 == 0) {
          cache.lookup(key);
        } else {
          cache.insert(key, results[static_cast<std::size_t>(t + i) % results.size()]);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_TRUE(cache.checkByteAccounting());
  EXPECT_LE(cache.stats().entries, 16u);
  cache.clear();
  EXPECT_TRUE(cache.checkByteAccounting());
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// ---- Cache key coverage of the new options -------------------------------

TEST(CacheAccounting, RobustnessOptionsParticipateInTheKey) {
  auto base = CacheKey::make(kFirSource, "fir", {ArgSpec::row(64)}, CompileOptions::proposed());
  auto vary = [&](void (*mutate)(CompileOptions&)) {
    CompileOptions o = CompileOptions::proposed();
    mutate(o);
    return CacheKey::make(kFirSource, "fir", {ArgSpec::row(64)}, o);
  };
  // Output-affecting: must change the key.
  EXPECT_NE(base.canonical, vary([](CompileOptions& o) { o.degrade = false; }).canonical);
  EXPECT_NE(base.canonical, vary([](CompileOptions& o) { o.deadCode = false; }).canonical);
  EXPECT_NE(base.canonical,
            vary([](CompileOptions& o) { o.limits.maxLirOps = 123; }).canonical);
  // Observation/operational-only: a successful compile's output is identical,
  // so these must NOT fragment the cache.
  EXPECT_EQ(base.canonical,
            vary([](CompileOptions& o) { o.limits.wallBudgetMillis = 5000; }).canonical);
  EXPECT_EQ(base.canonical,
            vary([](CompileOptions& o) { o.limits.maxSourceBytes = 99; }).canonical);
  EXPECT_EQ(base.canonical,
            vary([](CompileOptions& o) { o.limits.maxAstNodes = 99; }).canonical);
}

}  // namespace
}  // namespace mat2c
