// Builtin-catalog tests for the reference interpreter.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "interp/interpreter.hpp"
#include "parser/parser.hpp"

namespace mat2c {
namespace {

Matrix runVar(const std::string& src, const std::string& name = "x") {
  DiagnosticEngine diags;
  auto prog = parseSource(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.renderAll();
  Interpreter interp(*prog);
  auto vars = interp.runScript();
  auto it = vars.find(name);
  if (it == vars.end()) throw RuntimeError("variable '" + name + "' not set");
  return it->second;
}

double runScalar(const std::string& src) { return runVar(src).scalarValue(); }

TEST(Builtins, ZerosOnesEye) {
  Matrix z = runVar("x = zeros(2, 3);");
  EXPECT_EQ(z.rows(), 2u);
  EXPECT_EQ(z.cols(), 3u);
  Matrix o = runVar("x = ones(3);");
  EXPECT_EQ(o.rows(), 3u);
  EXPECT_DOUBLE_EQ(o.real(8), 1.0);
  Matrix e = runVar("x = eye(2);");
  EXPECT_DOUBLE_EQ(e.at(0, 0).real(), 1.0);
  EXPECT_DOUBLE_EQ(e.at(0, 1).real(), 0.0);
}

TEST(Builtins, SizeForms) {
  EXPECT_DOUBLE_EQ(runScalar("m = zeros(2, 5); x = size(m, 1);"), 2.0);
  EXPECT_DOUBLE_EQ(runScalar("m = zeros(2, 5); x = size(m, 2);"), 5.0);
  Matrix both = runVar("m = zeros(2, 5); x = size(m);");
  EXPECT_EQ(both.numel(), 2u);
  EXPECT_DOUBLE_EQ(runScalar("m = zeros(2,5); [r, c] = size(m); x = r * 10 + c;"), 25.0);
}

TEST(Builtins, LengthNumel) {
  EXPECT_DOUBLE_EQ(runScalar("x = length(zeros(3, 7));"), 7.0);
  EXPECT_DOUBLE_EQ(runScalar("x = numel(zeros(3, 7));"), 21.0);
  EXPECT_DOUBLE_EQ(runScalar("x = length([]);"), 0.0);
}

TEST(Builtins, SumProdMean) {
  EXPECT_DOUBLE_EQ(runScalar("x = prod(1:5);"), 120.0);
  EXPECT_DOUBLE_EQ(runScalar("x = mean([2 4 6]);"), 4.0);
  // Column-wise on matrices.
  Matrix s = runVar("x = sum([1 2; 3 4]);");
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s.real(0), 4.0);
  EXPECT_DOUBLE_EQ(s.real(1), 6.0);
}

TEST(Builtins, SumEmptyIsZero) { EXPECT_DOUBLE_EQ(runScalar("x = sum([]);"), 0.0); }

TEST(Builtins, MinMaxVector) {
  EXPECT_DOUBLE_EQ(runScalar("x = max([3 9 4]);"), 9.0);
  EXPECT_DOUBLE_EQ(runScalar("x = min([3 9 4]);"), 3.0);
  EXPECT_DOUBLE_EQ(runScalar("[v, i] = max([3 9 4]); x = i;"), 2.0);
}

TEST(Builtins, MinMaxTwoArg) {
  Matrix m = runVar("x = max([1 5 2], 3);");
  EXPECT_DOUBLE_EQ(m.real(0), 3.0);
  EXPECT_DOUBLE_EQ(m.real(1), 5.0);
}

TEST(Builtins, AnyAll) {
  EXPECT_DOUBLE_EQ(runScalar("x = any([0 0 1]);"), 1.0);
  EXPECT_DOUBLE_EQ(runScalar("x = any([0 0 0]);"), 0.0);
  EXPECT_DOUBLE_EQ(runScalar("x = all([1 2 3]);"), 1.0);
  EXPECT_DOUBLE_EQ(runScalar("x = all([1 0 3]);"), 0.0);
}

TEST(Builtins, AbsRealAndComplex) {
  EXPECT_DOUBLE_EQ(runScalar("x = abs(-4);"), 4.0);
  EXPECT_DOUBLE_EQ(runScalar("x = abs(3 + 4i);"), 5.0);
}

TEST(Builtins, SqrtNegativeGoesComplex) {
  Matrix z = runVar("x = sqrt(-4);");
  EXPECT_TRUE(z.isComplex());
  EXPECT_NEAR(z.at(0).imag(), 2.0, 1e-12);
}

TEST(Builtins, ExpOfComplexIsEuler) {
  Matrix z = runVar("x = exp(1i * pi);");
  EXPECT_NEAR(z.real(0), -1.0, 1e-12);
  EXPECT_NEAR(z.imag(0), 0.0, 1e-12);
}

TEST(Builtins, TrigAndRounding) {
  EXPECT_NEAR(runScalar("x = sin(pi / 2);"), 1.0, 1e-12);
  EXPECT_NEAR(runScalar("x = cos(0);"), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(runScalar("x = floor(2.7);"), 2.0);
  EXPECT_DOUBLE_EQ(runScalar("x = ceil(2.1);"), 3.0);
  EXPECT_DOUBLE_EQ(runScalar("x = round(2.5);"), 3.0);
  EXPECT_DOUBLE_EQ(runScalar("x = fix(-2.7);"), -2.0);
  EXPECT_DOUBLE_EQ(runScalar("x = sign(-3);"), -1.0);
}

TEST(Builtins, ModRem) {
  EXPECT_DOUBLE_EQ(runScalar("x = mod(7, 3);"), 1.0);
  EXPECT_DOUBLE_EQ(runScalar("x = mod(-1, 3);"), 2.0);  // MATLAB mod
  EXPECT_DOUBLE_EQ(runScalar("x = rem(-1, 3);"), -1.0); // C-style rem
  EXPECT_DOUBLE_EQ(runScalar("x = mod(5, 0);"), 5.0);
}

TEST(Builtins, Atan2) {
  EXPECT_NEAR(runScalar("x = atan2(1, 1);"), std::numbers::pi / 4, 1e-12);
}

TEST(Builtins, ComplexParts) {
  EXPECT_DOUBLE_EQ(runScalar("x = real(3 + 4i);"), 3.0);
  EXPECT_DOUBLE_EQ(runScalar("x = imag(3 + 4i);"), 4.0);
  Matrix c = runVar("x = conj(3 + 4i);");
  EXPECT_EQ(c.at(0), (Complex{3.0, -4.0}));
  EXPECT_NEAR(runScalar("x = angle(1i);"), std::numbers::pi / 2, 1e-12);
  Matrix z = runVar("x = complex(1, 2);");
  EXPECT_EQ(z.at(0), (Complex{1.0, 2.0}));
}

TEST(Builtins, IsRealIsEmpty) {
  EXPECT_DOUBLE_EQ(runScalar("x = isreal([1 2]);"), 1.0);
  EXPECT_DOUBLE_EQ(runScalar("x = isreal(1i);"), 0.0);
  EXPECT_DOUBLE_EQ(runScalar("x = isempty([]);"), 1.0);
  EXPECT_DOUBLE_EQ(runScalar("x = isempty(0);"), 0.0);
}

TEST(Builtins, Reshape) {
  Matrix m = runVar("x = reshape(1:6, 2, 3);");
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m.at(1, 0).real(), 2.0);  // column-major fill
  EXPECT_DOUBLE_EQ(m.at(0, 1).real(), 3.0);
  EXPECT_THROW(runScalar("x = reshape(1:6, 2, 2);"), RuntimeError);
}

TEST(Builtins, Linspace) {
  Matrix m = runVar("x = linspace(0, 1, 5);");
  ASSERT_EQ(m.numel(), 5u);
  EXPECT_DOUBLE_EQ(m.real(1), 0.25);
  EXPECT_DOUBLE_EQ(m.real(4), 1.0);
}

TEST(Builtins, NormDot) {
  EXPECT_DOUBLE_EQ(runScalar("x = norm([3 4]);"), 5.0);
  EXPECT_DOUBLE_EQ(runScalar("x = dot([1 2 3], [4 5 6]);"), 32.0);
  // dot conjugates its first argument.
  Matrix z = runVar("x = dot([1i], [1i]);");
  EXPECT_DOUBLE_EQ(z.real(0), 1.0);
}

TEST(Builtins, FftIfftRoundTrip) {
  Matrix err = runVar("v = [1 2 3 4 5 6 7 8]; x = max(abs(ifft(fft(v)) - v));");
  EXPECT_LT(err.scalarValue(), 1e-12);
}

TEST(Builtins, FftOfImpulseIsFlat) {
  Matrix m = runVar("v = zeros(1, 8); v(1) = 1; x = fft(v);");
  for (std::size_t i = 0; i < m.numel(); ++i) {
    EXPECT_NEAR(m.at(i).real(), 1.0, 1e-12);
    EXPECT_NEAR(m.at(i).imag(), 0.0, 1e-12);
  }
}

TEST(Builtins, FftMatchesDftForNonPow2) {
  // Length 6 exercises the O(n^2) fallback; check Parseval's theorem.
  Matrix lhs = runVar("v = [1 2 3 4 5 6]; x = sum(abs(fft(v)).^2);");
  Matrix rhs = runVar("v = [1 2 3 4 5 6]; x = 6 * sum(abs(v).^2);");
  EXPECT_NEAR(lhs.scalarValue(), rhs.scalarValue(), 1e-9);
}

TEST(Builtins, FftOfMatrixIsColumnwise) {
  // fft of a matrix must equal fft applied to each column independently.
  Matrix m = runVar("a = [1 5; 2 6; 3 7; 4 8]; x = fft(a);");
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 2u);
  Matrix c0 = runVar("x = fft([1; 2; 3; 4]);");
  Matrix c1 = runVar("x = fft([5; 6; 7; 8]);");
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(std::abs(m.at(r, 0) - c0.at(r)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(m.at(r, 1) - c1.at(r)), 0.0, 1e-12);
  }
}

TEST(Builtins, FftTwoArgZeroPadsAndTruncates) {
  // Padding: fft(v, 8) == fft([v zeros]) elementwise.
  Matrix err = runVar(
      "v = [1 2 3]; x = max(abs(fft(v, 8) - fft([v 0 0 0 0 0])));");
  EXPECT_LT(err.scalarValue(), 1e-12);
  // Truncation: fft(v, 2) == fft(v(1:2)).
  Matrix err2 = runVar("v = [1 2 3 4]; x = max(abs(fft(v, 2) - fft([1 2])));");
  EXPECT_LT(err2.scalarValue(), 1e-12);
  // Orientation follows the input; a padded column stays a column.
  Matrix col = runVar("x = fft([1; 2], 4);");
  EXPECT_EQ(col.rows(), 4u);
  EXPECT_EQ(col.cols(), 1u);
  // Matrices pad column-wise.
  Matrix m = runVar("x = fft([1 2; 3 4], 8);");
  EXPECT_EQ(m.rows(), 8u);
  EXPECT_EQ(m.cols(), 2u);
}

TEST(Builtins, FftIfftTwoArgRoundTrip) {
  Matrix err = runVar("v = [1 2 3 4 5]; x = max(abs(ifft(fft(v, 8), 8) - [v 0 0 0]));");
  EXPECT_LT(err.scalarValue(), 1e-12);
}

TEST(Builtins, FftRejectsBadLengthArg) {
  EXPECT_THROW(runVar("x = fft([1 2 3], 0);"), RuntimeError);
  EXPECT_THROW(runVar("x = fft([1 2 3], -4);"), RuntimeError);
  EXPECT_THROW(runVar("x = fft([1 2 3], 2.5);"), RuntimeError);
  EXPECT_THROW(runVar("x = fft([1 2 3], [4 8]);"), RuntimeError);
  EXPECT_THROW(runVar("x = fft([1 2 3], 4, 1);"), RuntimeError);
}

TEST(Builtins, FlipLrUd) {
  Matrix m = runVar("x = fliplr([1 2 3]);");
  EXPECT_DOUBLE_EQ(m.real(0), 3.0);
  Matrix u = runVar("x = flipud([1; 2; 3]);");
  EXPECT_DOUBLE_EQ(u.real(0), 3.0);
}

TEST(Builtins, SortAscendDescendWithIndex) {
  Matrix v = runVar("x = sort([3 1 2]);");
  EXPECT_DOUBLE_EQ(v.real(0), 1.0);
  EXPECT_DOUBLE_EQ(v.real(2), 3.0);
  Matrix d = runVar("x = sort([3 1 2], 'descend');");
  EXPECT_DOUBLE_EQ(d.real(0), 3.0);
  EXPECT_DOUBLE_EQ(runScalar("[s, i] = sort([9 4 7]); x = i(1);"), 2.0);
}

TEST(Builtins, SortComplexByMagnitude) {
  Matrix v = runVar("x = sort([3i, 1, -2]);");
  EXPECT_DOUBLE_EQ(std::abs(v.at(0)), 1.0);
  EXPECT_DOUBLE_EQ(std::abs(v.at(2)), 3.0);
}

TEST(Builtins, CumsumCumprod) {
  Matrix c = runVar("x = cumsum([1 2 3 4]);");
  EXPECT_DOUBLE_EQ(c.real(3), 10.0);
  Matrix p = runVar("x = cumprod([1 2 3 4]);");
  EXPECT_DOUBLE_EQ(p.real(3), 24.0);
  EXPECT_DOUBLE_EQ(p.real(0), 1.0);
}

TEST(Builtins, VarAndStd) {
  // var([1 2 3 4]) = 5/3 (normalized by n-1, MATLAB default)
  EXPECT_NEAR(runScalar("x = var([1 2 3 4]);"), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(runScalar("x = std([1 2 3 4]);"), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(runScalar("x = var(7);"), 0.0);
}

TEST(Builtins, Repmat) {
  Matrix m = runVar("x = repmat([1 2], 2, 3);");
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 6u);
  EXPECT_DOUBLE_EQ(m.at(1, 5).real(), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 4).real(), 1.0);
}

TEST(Builtins, ErrorThrows) {
  EXPECT_THROW(runScalar("error('boom'); x = 1;"), RuntimeError);
}

TEST(Builtins, WrongArityThrows) {
  EXPECT_THROW(runScalar("x = atan2(1);"), RuntimeError);
  EXPECT_THROW(runScalar("x = length();"), RuntimeError);
}

}  // namespace
}  // namespace mat2c
