// Retargeting invariants: textual descriptions are first-class targets.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"

namespace mat2c {
namespace {

/// A textual clone of dspx_w4 with renamed intrinsics.
isa::IsaDescription textualClone() {
  DiagnosticEngine diags;
  auto d = isa::IsaDescription::parse(R"(
name cloned
simd f64 4
simd c64 2
memlanes 8
feature fma
feature cmul
feature cmac
feature zol
feature agu
)",
                                      diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.renderAll();
  return d;
}

TEST(Retarget, TextualCloneMatchesPresetCycles) {
  // Identical datapath parameters => identical cycle counts, for every
  // kernel in both corpora. Retargeting is purely the description.
  Compiler compiler;
  CompileOptions preset = CompileOptions::proposed("dspx_w4");
  CompileOptions clone;
  clone.isa = textualClone();
  for (auto& k : kernels::dspBenchmarkSuite()) {
    auto a = compiler.compileSource(k.source, k.entry, k.argSpecs, preset);
    auto b = compiler.compileSource(k.source, k.entry, k.argSpecs, clone);
    EXPECT_DOUBLE_EQ(a.run(k.args).cycles.total, b.run(k.args).cycles.total) << k.name;
  }
}

TEST(Retarget, TextualCloneEmitsOwnVocabulary) {
  Compiler compiler;
  CompileOptions clone;
  clone.isa = textualClone();
  auto k = kernels::makeFir(128, 8);
  auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs, clone);
  codegen::EmitOptions body;
  body.embedRuntime = false;
  std::string c = unit.cCode(body);
  EXPECT_NE(c.find("cloned_vfma_f64"), std::string::npos);
  EXPECT_EQ(c.find("dspx_"), std::string::npos);
}

TEST(Retarget, EveryPresetCompilesEveryKernel) {
  Compiler compiler;
  for (const auto& preset : isa::IsaDescription::presetNames()) {
    for (auto& k : kernels::dspBenchmarkSuite()) {
      auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                         CompileOptions::proposed(preset));
      EXPECT_LE(validateAgainstInterpreter(k.source, k.entry, unit, k.args), 1e-9)
          << k.name << " on " << preset;
    }
  }
}

TEST(Retarget, RuntimeHeaderCompilesForEveryPreset) {
  // The emitted runtime header must be valid C for every target shape.
  for (const auto& preset : isa::IsaDescription::presetNames()) {
    auto isa = isa::IsaDescription::preset(preset);
    std::string base = std::string(::testing::TempDir()) + "/hdr_" + preset;
    {
      std::ofstream out(base + ".c");
      out << codegen::runtimeHeader(isa);
      out << "int main(void) { return 0; }\n";
    }
    std::string cmd =
        "cc -std=c99 -Wall -Werror -o " + base + ".bin " + base + ".c -lm 2>" + base + ".log";
    EXPECT_EQ(std::system(cmd.c_str()), 0) << preset << " — see " << base << ".log";
  }
}

TEST(Retarget, CostsFollowDescribedDatapath) {
  // Halving the lanes roughly doubles cycles on a bandwidth-bound kernel.
  Compiler compiler;
  auto k = kernels::makeFdeq(2048);
  auto w8 = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                   CompileOptions::proposed("dspx"));
  auto w4 = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                   CompileOptions::proposed("dspx_w4"));
  double ratio = w4.run(k.args).cycles.total / w8.run(k.args).cycles.total;
  EXPECT_NEAR(ratio, 2.0, 0.4);
}

TEST(Retarget, CostOverridesChangeCycleCounts) {
  Compiler compiler;
  auto k = kernels::makeCdot(512);
  CompileOptions expensive = CompileOptions::proposed();
  expensive.isa.setCost(isa::Op::VFmaC, 5.0);
  auto cheap = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                      CompileOptions::proposed());
  auto costly = compiler.compileSource(k.source, k.entry, k.argSpecs, expensive);
  EXPECT_GT(costly.run(k.args).cycles.total, cheap.run(k.args).cycles.total);
}

}  // namespace
}  // namespace mat2c
