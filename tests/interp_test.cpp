// Interpreter semantics tests: statements, control flow, indexing, functions.
#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "parser/parser.hpp"

namespace mat2c {
namespace {

/// Runs `src` as a script and returns variable `name` from the workspace.
Matrix runVar(const std::string& src, const std::string& name) {
  DiagnosticEngine diags;
  auto prog = parseSource(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.renderAll();
  Interpreter interp(*prog);
  auto vars = interp.runScript();
  auto it = vars.find(name);
  if (it == vars.end()) throw RuntimeError("variable '" + name + "' not set");
  return it->second;
}

double runScalar(const std::string& src, const std::string& name = "x") {
  return runVar(src, name).scalarValue();
}

TEST(Interp, Arithmetic) {
  EXPECT_DOUBLE_EQ(runScalar("x = 1 + 2 * 3;"), 7.0);
  EXPECT_DOUBLE_EQ(runScalar("x = (1 + 2) * 3;"), 9.0);
  EXPECT_DOUBLE_EQ(runScalar("x = 7 / 2;"), 3.5);
  EXPECT_DOUBLE_EQ(runScalar("x = 2^10;"), 1024.0);
  EXPECT_DOUBLE_EQ(runScalar("x = -2^2;"), -4.0);
}

TEST(Interp, ComplexArithmetic) {
  Matrix z = runVar("x = (1 + 2i) * (3 - 1i);", "x");
  EXPECT_EQ(z.at(0), (Complex{5.0, 5.0}));
}

TEST(Interp, ImaginaryLiteralUnit) {
  Matrix z = runVar("x = 1i * 1i;", "x");
  EXPECT_DOUBLE_EQ(z.real(0), -1.0);
}

TEST(Interp, RangeAndSum) {
  EXPECT_DOUBLE_EQ(runScalar("x = sum(1:100);"), 5050.0);
  EXPECT_DOUBLE_EQ(runScalar("x = sum(1:2:9);"), 25.0);
}

TEST(Interp, MatrixLiteralAndIndexing) {
  EXPECT_DOUBLE_EQ(runScalar("m = [1 2; 3 4]; x = m(2, 1);"), 3.0);
  EXPECT_DOUBLE_EQ(runScalar("m = [1 2; 3 4]; x = m(3);"), 2.0);  // column-major
  EXPECT_DOUBLE_EQ(runScalar("v = [10 20 30]; x = v(end);"), 30.0);
  EXPECT_DOUBLE_EQ(runScalar("v = [10 20 30]; x = v(end-1);"), 20.0);
}

TEST(Interp, SliceIndexing) {
  Matrix v = runVar("a = 1:10; x = a(2:4);", "x");
  ASSERT_EQ(v.numel(), 3u);
  EXPECT_DOUBLE_EQ(v.real(0), 2.0);
  EXPECT_TRUE(v.isRow());
}

TEST(Interp, ColonFlattensToColumn) {
  Matrix v = runVar("m = [1 2; 3 4]; x = m(:);", "x");
  EXPECT_EQ(v.rows(), 4u);
  EXPECT_EQ(v.cols(), 1u);
  EXPECT_DOUBLE_EQ(v.real(1), 3.0);
}

TEST(Interp, TwoDimSliceWithColon) {
  Matrix v = runVar("m = [1 2 3; 4 5 6]; x = m(2, :);", "x");
  EXPECT_EQ(v.rows(), 1u);
  EXPECT_EQ(v.cols(), 3u);
  EXPECT_DOUBLE_EQ(v.real(2), 6.0);
}

TEST(Interp, LogicalIndexing) {
  Matrix v = runVar("a = [5 -3 8 -1]; x = a(a > 0);", "x");
  ASSERT_EQ(v.numel(), 2u);
  EXPECT_DOUBLE_EQ(v.real(1), 8.0);
}

TEST(Interp, LogicalIndexAssignment) {
  Matrix v = runVar("a = [5 -3 8 -1]; a(a < 0) = 0; x = a;", "x");
  EXPECT_DOUBLE_EQ(v.real(1), 0.0);
  EXPECT_DOUBLE_EQ(v.real(3), 0.0);
  EXPECT_DOUBLE_EQ(v.real(2), 8.0);
}

TEST(Interp, VectorIndexAssignment) {
  Matrix v = runVar("a = zeros(1, 5); a([1 3 5]) = [10 30 50]; x = a;", "x");
  EXPECT_DOUBLE_EQ(v.real(0), 10.0);
  EXPECT_DOUBLE_EQ(v.real(2), 30.0);
  EXPECT_DOUBLE_EQ(v.real(1), 0.0);
}

TEST(Interp, VectorGrowthOnAssign) {
  Matrix v = runVar("a = []; a(3) = 7; x = a;", "x");
  EXPECT_EQ(v.numel(), 3u);
  EXPECT_DOUBLE_EQ(v.real(0), 0.0);
  EXPECT_DOUBLE_EQ(v.real(2), 7.0);
}

TEST(Interp, MatrixGrowthOnTwoDimAssign) {
  Matrix v = runVar("a = zeros(2,2); a(3, 4) = 9; x = a;", "x");
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 4u);
  EXPECT_DOUBLE_EQ(v.at(2, 3).real(), 9.0);
}

TEST(Interp, SliceAssignment) {
  Matrix v = runVar("a = zeros(1,5); a(2:3) = [7 8]; x = a;", "x");
  EXPECT_DOUBLE_EQ(v.real(1), 7.0);
  EXPECT_DOUBLE_EQ(v.real(2), 8.0);
}

TEST(Interp, ScalarBroadcastAssignment) {
  Matrix v = runVar("a = ones(1,4); a(2:3) = 0; x = a;", "x");
  EXPECT_DOUBLE_EQ(v.real(1), 0.0);
  EXPECT_DOUBLE_EQ(v.real(3), 1.0);
}

TEST(Interp, IfElse) {
  EXPECT_DOUBLE_EQ(runScalar("a = 5; if a > 3\nx = 1;\nelse\nx = 2;\nend"), 1.0);
  EXPECT_DOUBLE_EQ(runScalar("a = 1; if a > 3\nx = 1;\nelse\nx = 2;\nend"), 2.0);
  EXPECT_DOUBLE_EQ(
      runScalar("a = 2; if a == 1\nx = 1;\nelseif a == 2\nx = 22;\nelse\nx = 3;\nend"), 22.0);
}

TEST(Interp, ForLoopAccumulates) {
  EXPECT_DOUBLE_EQ(runScalar("x = 0; for i = 1:10\nx = x + i;\nend"), 55.0);
}

TEST(Interp, ForLoopOverVector) {
  EXPECT_DOUBLE_EQ(runScalar("x = 0; for v = [2 4 6]\nx = x + v;\nend"), 12.0);
}

TEST(Interp, ForLoopBreakContinue) {
  EXPECT_DOUBLE_EQ(
      runScalar("x = 0; for i = 1:10\nif i == 4\nbreak\nend\nx = x + i;\nend"), 6.0);
  EXPECT_DOUBLE_EQ(
      runScalar("x = 0; for i = 1:5\nif mod(i,2) == 0\ncontinue\nend\nx = x + i;\nend"), 9.0);
}

TEST(Interp, WhileLoop) {
  EXPECT_DOUBLE_EQ(runScalar("x = 1; while x < 100\nx = x * 2;\nend"), 128.0);
}

TEST(Interp, SwitchOnNumberAndString) {
  EXPECT_DOUBLE_EQ(runScalar("m = 2; switch m\ncase 1\nx = 10;\ncase 2\nx = 20;\nend"), 20.0);
  EXPECT_DOUBLE_EQ(
      runScalar("m = 'b'; switch m\ncase 'a'\nx = 1;\ncase 'b'\nx = 2;\notherwise\nx = 3;\nend"),
      2.0);
  EXPECT_DOUBLE_EQ(
      runScalar("m = 9; switch m\ncase 1\nx = 1;\notherwise\nx = 42;\nend"), 42.0);
}

TEST(Interp, FunctionCall) {
  const char* src =
      "x = twice(21);\n"
      "function y = twice(a)\n"
      "y = 2 * a;\n"
      "end\n";
  EXPECT_DOUBLE_EQ(runScalar(src), 42.0);
}

TEST(Interp, FunctionMultipleOutputs) {
  const char* src =
      "[lo, hi] = bounds([3 1 4 1 5]);\n"
      "function [mn, mx] = bounds(v)\n"
      "mn = min(v);\n"
      "mx = max(v);\n"
      "end\n";
  EXPECT_DOUBLE_EQ(runScalar(src, "lo"), 1.0);
  EXPECT_DOUBLE_EQ(runScalar(src, "hi"), 5.0);
}

TEST(Interp, RecursiveFunction) {
  const char* src =
      "x = fact(6);\n"
      "function y = fact(n)\n"
      "if n <= 1\n y = 1;\nelse\n y = n * fact(n - 1);\nend\n"
      "end\n";
  EXPECT_DOUBLE_EQ(runScalar(src), 720.0);
}

TEST(Interp, FunctionEarlyReturn) {
  const char* src =
      "x = f(5);\n"
      "function y = f(a)\n"
      "y = 1;\n"
      "if a > 3\n return\nend\n"
      "y = 2;\n"
      "end\n";
  EXPECT_DOUBLE_EQ(runScalar(src), 1.0);
}

TEST(Interp, VariableShadowsFunction) {
  // `sum` used as a variable should shadow the builtin.
  EXPECT_DOUBLE_EQ(runScalar("sum = [1 2 3]; x = sum(2);"), 2.0);
}

TEST(Interp, TransposeAndMatMul) {
  EXPECT_DOUBLE_EQ(runScalar("v = [1 2 3]; x = v * v';"), 14.0);
}

TEST(Interp, ConjugateTranspose) {
  Matrix z = runVar("v = [1+2i]; x = v';", "x");
  EXPECT_EQ(z.at(0), (Complex{1.0, -2.0}));
}

TEST(Interp, ShortCircuitAvoidsEvaluation) {
  // Division by zero on the rhs must not be evaluated.
  EXPECT_DOUBLE_EQ(runScalar("a = 0; x = 0; if a ~= 0 && 1/a > 1\nx = 1;\nend\nx = x + 1;"),
                   1.0);
}

TEST(Interp, UndefinedVariableThrows) {
  EXPECT_THROW(runScalar("x = nope + 1;"), RuntimeError);
}

TEST(Interp, OutOfBoundsReadThrows) {
  EXPECT_THROW(runScalar("a = [1 2]; x = a(5);"), RuntimeError);
}

TEST(Interp, DimensionMismatchThrows) {
  EXPECT_THROW(runScalar("x = [1 2] + [1 2 3];"), RuntimeError);
}

TEST(Interp, StepBudgetGuardsInfiniteLoop) {
  DiagnosticEngine diags;
  auto prog = parseSource("x = 1; while 1\nx = x + 1;\nend", diags);
  Interpreter interp(*prog);
  interp.setMaxSteps(10'000);
  EXPECT_THROW(interp.runScript(), RuntimeError);
}

TEST(Interp, StringComparisonInSwitchOnly) {
  Matrix s = runVar("x = 'abc';", "x");
  EXPECT_TRUE(s.isString());
  EXPECT_EQ(s.stringValue(), "abc");
}

TEST(Interp, CallFunctionApi) {
  DiagnosticEngine diags;
  auto prog = parseSource("function y = addone(x)\ny = x + 1;\nend", diags);
  Interpreter interp(*prog);
  auto outs = interp.callFunction("addone", {Matrix::scalar(41.0)});
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_DOUBLE_EQ(outs[0].scalarValue(), 42.0);
  EXPECT_THROW(interp.callFunction("nosuch", {}), RuntimeError);
}

TEST(Interp, NestedLoops) {
  const char* src =
      "x = 0;\n"
      "for i = 1:3\n"
      "  for j = 1:3\n"
      "    if j > i\n continue\n end\n"
      "    x = x + 1;\n"
      "  end\n"
      "end\n";
  EXPECT_DOUBLE_EQ(runScalar(src), 6.0);
}

}  // namespace
}  // namespace mat2c
