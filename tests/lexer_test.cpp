#include <gtest/gtest.h>

#include "lexer/lexer.hpp"

namespace mat2c {
namespace {

std::vector<Token> lex(const std::string& src) {
  DiagnosticEngine diags;
  Lexer lexer(src, diags);
  auto toks = lexer.tokenize();
  EXPECT_FALSE(diags.hasErrors()) << diags.renderAll();
  return toks;
}

std::vector<TokenKind> kinds(const std::string& src) {
  std::vector<TokenKind> out;
  for (const auto& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInput) {
  auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::Eof);
}

TEST(Lexer, Numbers) {
  auto toks = lex("1 2.5 .5 1e3 2.5e-3 3.");
  ASSERT_GE(toks.size(), 6u);
  EXPECT_DOUBLE_EQ(toks[0].numValue, 1.0);
  EXPECT_DOUBLE_EQ(toks[1].numValue, 2.5);
  EXPECT_DOUBLE_EQ(toks[2].numValue, 0.5);
  EXPECT_DOUBLE_EQ(toks[3].numValue, 1000.0);
  EXPECT_DOUBLE_EQ(toks[4].numValue, 0.0025);
  EXPECT_DOUBLE_EQ(toks[5].numValue, 3.0);
}

TEST(Lexer, ImaginaryLiterals) {
  auto toks = lex("3i 2.5j");
  EXPECT_TRUE(toks[0].imaginary);
  EXPECT_DOUBLE_EQ(toks[0].numValue, 3.0);
  EXPECT_TRUE(toks[1].imaginary);
  EXPECT_DOUBLE_EQ(toks[1].numValue, 2.5);
}

TEST(Lexer, NumberDotStarIsNotPartOfNumber) {
  auto k = kinds("2.*x");
  ASSERT_GE(k.size(), 3u);
  EXPECT_EQ(k[0], TokenKind::Number);
  EXPECT_EQ(k[1], TokenKind::DotStar);
  EXPECT_EQ(k[2], TokenKind::Identifier);
}

TEST(Lexer, KeywordsVsIdentifiers) {
  auto toks = lex("for forx end endx");
  EXPECT_EQ(toks[0].kind, TokenKind::KwFor);
  EXPECT_EQ(toks[1].kind, TokenKind::Identifier);
  EXPECT_EQ(toks[2].kind, TokenKind::KwEnd);
  EXPECT_EQ(toks[3].kind, TokenKind::Identifier);
}

TEST(Lexer, ElementwiseOperators) {
  auto k = kinds("a .* b ./ c .\\ d .^ e");
  EXPECT_EQ(k[1], TokenKind::DotStar);
  EXPECT_EQ(k[3], TokenKind::DotSlash);
  EXPECT_EQ(k[5], TokenKind::DotBackslash);
  EXPECT_EQ(k[7], TokenKind::DotCaret);
}

TEST(Lexer, ComparisonOperators) {
  auto k = kinds("a == b ~= c <= d >= e < f > g");
  EXPECT_EQ(k[1], TokenKind::Eq);
  EXPECT_EQ(k[3], TokenKind::Ne);
  EXPECT_EQ(k[5], TokenKind::Le);
  EXPECT_EQ(k[7], TokenKind::Ge);
  EXPECT_EQ(k[9], TokenKind::Lt);
  EXPECT_EQ(k[11], TokenKind::Gt);
}

TEST(Lexer, LogicalOperators) {
  auto k = kinds("a && b || c & d | e ~f");
  EXPECT_EQ(k[1], TokenKind::AndAnd);
  EXPECT_EQ(k[3], TokenKind::OrOr);
  EXPECT_EQ(k[5], TokenKind::And);
  EXPECT_EQ(k[7], TokenKind::Or);
  EXPECT_EQ(k[9], TokenKind::Not);
}

TEST(Lexer, TransposeAfterValue) {
  auto k = kinds("a' + (b)' + [1]' + x.'");
  EXPECT_EQ(k[1], TokenKind::Transpose);
  std::size_t count = 0;
  for (auto kk : k)
    if (kk == TokenKind::Transpose) ++count;
  EXPECT_EQ(count, 3u);
  EXPECT_NE(std::find(k.begin(), k.end(), TokenKind::DotTranspose), k.end());
}

TEST(Lexer, StringAfterOperatorIsString) {
  auto toks = lex("x = 'hello'");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[2].kind, TokenKind::String);
  EXPECT_EQ(toks[2].text, "hello");
}

TEST(Lexer, StringWithEscapedQuote) {
  auto toks = lex("x = 'it''s'");
  EXPECT_EQ(toks[2].text, "it's");
}

TEST(Lexer, LineCommentSkipped) {
  auto k = kinds("a % comment with ' and stuff\nb");
  EXPECT_EQ(k[0], TokenKind::Identifier);
  EXPECT_EQ(k[1], TokenKind::Newline);
  EXPECT_EQ(k[2], TokenKind::Identifier);
}

TEST(Lexer, BlockCommentSkipped) {
  auto k = kinds("a\n%{\nanything\n%}\nb");
  // a, newline, b, eof (blank lines collapse)
  EXPECT_EQ(k[0], TokenKind::Identifier);
  EXPECT_EQ(k[2], TokenKind::Identifier);
}

TEST(Lexer, ContinuationJoinsLines) {
  auto k = kinds("a + ...\nb");
  EXPECT_EQ(k[0], TokenKind::Identifier);
  EXPECT_EQ(k[1], TokenKind::Plus);
  EXPECT_EQ(k[2], TokenKind::Identifier);
  EXPECT_EQ(k[3], TokenKind::Eof);
}

TEST(Lexer, BlankLinesCollapse) {
  auto k = kinds("a\n\n\nb");
  ASSERT_EQ(k.size(), 4u);
  EXPECT_EQ(k[1], TokenKind::Newline);
}

TEST(Lexer, TracksLocations) {
  auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.col, 1u);
  EXPECT_EQ(toks[2].loc.line, 2u);
  EXPECT_EQ(toks[2].loc.col, 3u);
}

TEST(Lexer, PrecededBySpaceFlag) {
  auto toks = lex("[1 -2]");
  // tokens: [ 1 - 2 ] eof
  EXPECT_FALSE(toks[1].precededBySpace);  // 1
  EXPECT_TRUE(toks[2].precededBySpace);   // -
  EXPECT_FALSE(toks[3].precededBySpace);  // 2
}

TEST(Lexer, UnterminatedStringIsError) {
  DiagnosticEngine diags;
  Lexer lexer("x = 'oops\n", diags);
  lexer.tokenize();
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, UnexpectedCharacterIsError) {
  DiagnosticEngine diags;
  Lexer lexer("a # b", diags);
  auto toks = lexer.tokenize();
  EXPECT_TRUE(diags.hasErrors());
  // Lexing continues past the bad character.
  EXPECT_EQ(toks[1].kind, TokenKind::Identifier);
}

}  // namespace
}  // namespace mat2c
