// Optimizer tests: constant folding, declaration sinking, idiom
// recognition, and the vectorizer (legality + numerics via the VM).
#include <gtest/gtest.h>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "parser/parser.hpp"

namespace mat2c {
namespace {

using sema::ArgSpec;

lir::Function lowerOnly(const std::string& src, const std::string& entry,
                        const std::vector<ArgSpec>& specs) {
  DiagnosticEngine diags;
  auto prog = parseSource(src, diags);
  lir::Function fn = lower::lowerProgram(*prog, entry, specs, {}, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.renderAll();
  return fn;
}

/// Compiles with/without vectorization and checks identical-within-tolerance
/// results plus an expected number of vectorized loops.
void checkVectorization(const std::string& src, const std::vector<ArgSpec>& specs,
                        const std::vector<Matrix>& args, int expectVectorized,
                        const std::string& isaName = "dspx") {
  Compiler compiler;
  CompileOptions vec = CompileOptions::proposed(isaName);
  CompileOptions novec = CompileOptions::proposed(isaName);
  novec.vectorize = false;
  auto uv = compiler.compileSource(src, "f", specs, vec);
  auto us = compiler.compileSource(src, "f", specs, novec);
  EXPECT_EQ(uv.optimizationReport().vec.loopsVectorized, expectVectorized) << uv.lirDump();
  auto rv = uv.run(args);
  auto rs = us.run(args);
  ASSERT_EQ(rv.outputs.size(), rs.outputs.size());
  for (std::size_t i = 0; i < rv.outputs.size(); ++i) {
    EXPECT_LE(maxAbsDiff(rv.outputs[i], rs.outputs[i]), 1e-9);
  }
  if (expectVectorized > 0) {
    EXPECT_LT(rv.cycles.total, rs.cycles.total) << "vectorization should save cycles";
  }
}

TEST(ConstFold, FoldsIndexArithmetic) {
  lir::Function fn = lowerOnly(
      "function y = f(x)\ny = zeros(1, 8);\nfor k = 1:8\n  y(k) = x(k);\nend\nend\n", "f",
      {ArgSpec::row(8)});
  opt::constFold(fn);
  // Index (k - 1) + 0 style chains must fold to a canonical small form.
  std::string dump = lir::print(fn);
  EXPECT_EQ(dump.find("(0 + "), std::string::npos) << dump;
}

TEST(ConstFold, FoldsConstantScalars) {
  lir::Function fn = lowerOnly("function y = f(x)\ny = x * (2 * 3 + 4);\nend\n", "f",
                               {ArgSpec::scalar()});
  opt::constFold(fn);
  std::string dump = lir::print(fn);
  EXPECT_NE(dump.find("10"), std::string::npos);
}

TEST(SinkDecls, MovesLoopTemporaryIntoLoop) {
  lir::Function fn = lowerOnly(
      "function y = f(x)\ny = zeros(1, 8);\nfor k = 1:8\n  t = x(k) * 2;\n  y(k) = t + 1;\n"
      "end\nend\n",
      "f", {ArgSpec::row(8)});
  opt::constFold(fn);
  opt::sinkDecls(fn);
  // The decl of t must now be the for-body's first reference.
  bool foundInLoop = false;
  for (const auto& s : fn.body) {
    if (s->kind != lir::StmtKind::For) continue;
    for (const auto& inner : s->body) {
      if (inner->kind == lir::StmtKind::DeclScalar && inner->value) foundInLoop = true;
    }
  }
  EXPECT_TRUE(foundInLoop) << lir::print(fn);
  EXPECT_TRUE(lir::verify(fn).empty());
}

TEST(SinkDecls, DoesNotSinkCarriedValue) {
  // `s` carries across iterations (read before write) — must stay outside.
  lir::Function fn = lowerOnly(
      "function y = f(x)\ns = 0;\nfor k = 1:8\n  s = s + x(k);\nend\ny = s;\nend\n", "f",
      {ArgSpec::row(8)});
  opt::constFold(fn);
  opt::sinkDecls(fn);
  EXPECT_TRUE(lir::verify(fn).empty());
  // The accumulator decl stays at frame level.
  bool declAtTop = false;
  for (const auto& s : fn.body) {
    if (s->kind == lir::StmtKind::DeclScalar) declAtTop = true;
  }
  EXPECT_TRUE(declAtTop);
}

TEST(Idioms, FormsScalarFma) {
  lir::Function fn = lowerOnly(
      "function y = f(a, b, c)\ny = a * b + c;\nend\n", "f",
      {ArgSpec::scalar(), ArgSpec::scalar(), ArgSpec::scalar()});
  int n = opt::recognizeIdioms(fn, isa::IsaDescription::preset("dspx"));
  EXPECT_EQ(n, 1);
  EXPECT_NE(lir::print(fn).find("fma("), std::string::npos);
}

TEST(Idioms, SkipsWhenTargetLacksFma) {
  lir::Function fn = lowerOnly(
      "function y = f(a, b, c)\ny = a * b + c;\nend\n", "f",
      {ArgSpec::scalar(), ArgSpec::scalar(), ArgSpec::scalar()});
  int n = opt::recognizeIdioms(fn, isa::IsaDescription::preset("scalar"));
  EXPECT_EQ(n, 0);
}

TEST(Idioms, ComplexMacNeedsCmac) {
  const char* src = "function y = f(a, b, c)\ny = a * b + c;\nend\n";
  std::vector<ArgSpec> specs = {ArgSpec::complexScalar(), ArgSpec::complexScalar(),
                                ArgSpec::complexScalar()};
  lir::Function withUnit = lowerOnly(src, "f", specs);
  EXPECT_EQ(opt::recognizeIdioms(withUnit, isa::IsaDescription::preset("dspx")), 1);
  lir::Function withoutUnit = lowerOnly(src, "f", specs);
  EXPECT_EQ(opt::recognizeIdioms(withoutUnit, isa::IsaDescription::preset("dspx_nocomplex")),
            0);
}

TEST(Vectorize, ElementwiseLoop) {
  kernels::InputGen gen(31);
  // One fused loop: the whole expression writes the output directly.
  checkVectorization("function y = f(x)\ny = x .* x + 2 .* x;\nend\n", {ArgSpec::row(37)},
                     {gen.rowVector(37)}, /*expectVectorized=*/1);
}

TEST(Vectorize, RemainderLoopCoversOddTripCounts) {
  // 37 % 8 = 5 remainder iterations; numerics must match exactly.
  kernels::InputGen gen(32);
  Compiler compiler;
  std::string src = "function y = f(x)\ny = 3 .* x;\nend\n";
  auto unit = compiler.compileSource(src, "f", {ArgSpec::row(37)},
                                     CompileOptions::proposed());
  EXPECT_LE(validateAgainstInterpreter(src, "f", unit, {gen.rowVector(37)}), 0.0);
}

TEST(Vectorize, ReductionLoop) {
  kernels::InputGen gen(33);
  checkVectorization(
      "function y = f(x)\ny = 0;\nfor k = 1:length(x)\n  y = y + x(k);\nend\nend\n",
      {ArgSpec::row(100)}, {gen.rowVector(100)}, 1);
}

TEST(Vectorize, FmaReductionLoop) {
  kernels::InputGen gen(34);
  checkVectorization(
      "function y = f(x, h)\ny = 0;\nfor k = 1:length(x)\n  y = y + x(k) * h(k);\nend\nend\n",
      {ArgSpec::row(64), ArgSpec::row(64)}, {gen.rowVector(64), gen.rowVector(64)}, 1);
}

TEST(Vectorize, MinReductionLoop) {
  kernels::InputGen gen(35);
  checkVectorization(
      "function y = f(x)\ny = x(1);\nfor k = 2:length(x)\n  y = min(y, x(k));\nend\nend\n",
      {ArgSpec::row(50)}, {gen.rowVector(50)}, 1);
}

TEST(Vectorize, ComplexLoopUsesComplexLanes) {
  kernels::InputGen gen(36);
  Compiler compiler;
  std::string src = "function y = f(x, h)\ny = x .* conj(h);\nend\n";
  auto unit = compiler.compileSource(src, "f",
                                     {ArgSpec::row(32, true), ArgSpec::row(32, true)},
                                     CompileOptions::proposed());
  EXPECT_EQ(unit.optimizationReport().vec.loopsVectorized, 1);
  EXPECT_NE(unit.lirDump().find(":4"), std::string::npos)  // c64 width is 4
      << unit.lirDump();
}

TEST(Vectorize, RejectsWithoutSimdLanes) {
  kernels::InputGen gen(37);
  checkVectorization("function y = f(x)\ny = x + 1;\nend\n", {ArgSpec::row(32)},
                     {gen.rowVector(32)}, 0, "dspx_novec");
}

TEST(Vectorize, RejectsComplexMulWithoutCmul) {
  kernels::InputGen gen(38);
  // Without the complex unit the elementwise complex product stays scalar.
  checkVectorization("function y = f(x, h)\ny = x .* h;\nend\n",
                     {ArgSpec::row(32, true), ArgSpec::row(32, true)},
                     {gen.complexRowVector(32), gen.complexRowVector(32)}, 0,
                     "dspx_nocomplex");
}

TEST(Vectorize, ComplexAddVectorizesWithoutCmul) {
  kernels::InputGen gen(39);
  checkVectorization("function y = f(x, h)\ny = x + h;\nend\n",
                     {ArgSpec::row(32, true), ArgSpec::row(32, true)},
                     {gen.complexRowVector(32), gen.complexRowVector(32)}, 1,
                     "dspx_nocomplex");
}

TEST(Vectorize, RejectsReverseStride) {
  kernels::InputGen gen(40);
  checkVectorization(
      "function y = f(x)\nn = length(x);\ny = zeros(1, n);\nfor k = 1:n\n"
      "  y(k) = x(n - k + 1);\nend\nend\n",
      {ArgSpec::row(24)}, {gen.rowVector(24)}, 1);
  // Only the zeros-fill vectorizes; the reversal loop (stride -1 load) must not.
}

TEST(Vectorize, RejectsLoopsWithBranches) {
  kernels::InputGen gen(41);
  checkVectorization(
      "function y = f(x)\ny = 0;\nfor k = 1:length(x)\n  if x(k) > 0\n    y = y + x(k);\n"
      "  end\nend\nend\n",
      {ArgSpec::row(24)}, {gen.rowVector(24)}, 0);
}

TEST(Vectorize, RejectsSequentialDependence) {
  kernels::InputGen gen(42);
  checkVectorization(
      "function y = f(x)\nn = length(x);\ny = zeros(1, n);\ny(1) = x(1);\n"
      "for k = 2:n\n  y(k) = y(k - 1) * 0.5 + x(k);\nend\nend\n",
      {ArgSpec::row(24)}, {gen.rowVector(24)}, 1);
  // Only the zeros fill; the recurrence (load y[k-2] vs store y[k-1]) must not.
}

TEST(Vectorize, AllowsSameIndexLoadStore) {
  kernels::InputGen gen(43);
  // y appears on both sides with the same index — legal elementwise update.
  checkVectorization(
      "function y = f(x)\ny = zeros(1, 32);\nfor k = 1:32\n  y(k) = x(k);\nend\n"
      "for k = 1:32\n  y(k) = y(k) * 2;\nend\nend\n",
      {ArgSpec::row(32)}, {gen.rowVector(32)}, 3);
}

TEST(Vectorize, TranscendentalsStayScalar) {
  kernels::InputGen gen(44);
  checkVectorization("function y = f(x)\ny = sin(x);\nend\n", {ArgSpec::row(32)},
                     {gen.rowVector(32)}, 0);
}

TEST(Vectorize, WidthSweepMonotoneCycles) {
  // Wider SIMD must never be slower on a clean elementwise kernel.
  kernels::InputGen gen(45);
  Matrix x = gen.rowVector(256);
  std::string src = "function y = f(x)\ny = x .* x + x;\nend\n";
  Compiler compiler;
  double prev = 1e18;
  for (const char* isaName : {"dspx_w2", "dspx_w4", "dspx", "dspx_w16"}) {
    auto unit = compiler.compileSource(src, "f", {ArgSpec::row(256)},
                                       CompileOptions::proposed(isaName));
    double cycles = unit.run({x}).cycles.total;
    EXPECT_LE(cycles, prev) << isaName;
    prev = cycles;
  }
}

TEST(DeadCode, RemovesUnreadScalars) {
  lir::Function fn = lowerOnly(
      "function y = f(x)\nn = length(x);\nm = n * 2;\ny = x(1);\nend\n", "f",
      {ArgSpec::row(8)});
  opt::constFold(fn);
  opt::eliminateDeadScalars(fn);
  std::string dump = lir::print(fn);
  // `m` is never read; its assignment and declaration must be gone.
  EXPECT_EQ(dump.find("t1_m"), std::string::npos) << dump;
  EXPECT_TRUE(lir::verify(fn).empty());
}

TEST(DeadCode, KeepsScalarOutputs) {
  lir::Function fn =
      lowerOnly("function y = f(x)\ny = x * 2;\nend\n", "f", {ArgSpec::scalar()});
  opt::eliminateDeadScalars(fn);
  // The assignment to the output must survive even though nothing reads it.
  EXPECT_NE(lir::print(fn).find("y ="), std::string::npos);
}

TEST(DeadCode, RemovesLoopVarMirrors) {
  lir::Function fn = lowerOnly(
      "function y = f(x)\ny = 0;\nfor k = 1:8\n  y = y + x(k);\nend\nend\n", "f",
      {ArgSpec::row(8)});
  opt::constFold(fn);
  opt::eliminateDeadScalars(fn);
  // k's f64 mirror (final-value materialization) is unread here.
  EXPECT_EQ(lir::print(fn).find("t1_k ="), std::string::npos) << lir::print(fn);
}

TEST(CheckElim, RemovesProvableChecks) {
  lower::LowerOptions coder;
  coder.style = lower::CodeStyle::CoderLike;
  DiagnosticEngine diags;
  auto prog = parseSource(
      "function y = f(x)\ny = zeros(1, 8);\nfor k = 1:8\n  y(k) = x(k) * 2;\nend\nend\n",
      diags);
  lir::Function fn = lower::lowerProgram(*prog, "f", {ArgSpec::row(8)}, coder, diags);
  opt::constFold(fn);
  int removed = opt::eliminateProvableChecks(fn);
  EXPECT_GT(removed, 0);
  // All indices here are affine in k with known bounds: no checks remain.
  EXPECT_EQ(lir::print(fn).find("boundscheck"), std::string::npos) << lir::print(fn);
}

TEST(CheckElim, KeepsDataDependentChecks) {
  lower::LowerOptions coder;
  coder.style = lower::CodeStyle::CoderLike;
  DiagnosticEngine diags;
  auto prog =
      parseSource("function y = f(x, i)\ny = x(i);\nend\n", diags);
  lir::Function fn = lower::lowerProgram(*prog, "f", {ArgSpec::row(8), ArgSpec::scalar()},
                                         coder, diags);
  opt::constFold(fn);
  opt::eliminateProvableChecks(fn);
  // The index comes from a runtime scalar: the check must survive.
  EXPECT_NE(lir::print(fn).find("boundscheck"), std::string::npos);
}

TEST(CheckElim, NumericsUnchanged) {
  kernels::InputGen gen(61);
  std::string src =
      "function y = f(x)\ny = zeros(1, 24);\nfor k = 1:24\n  y(k) = x(k) + 1;\nend\nend\n";
  Compiler compiler;
  CompileOptions checked = CompileOptions::coderLike();
  CompileOptions elided = CompileOptions::coderLike();
  elided.checkElim = true;
  auto a = compiler.compileSource(src, "f", {ArgSpec::row(24)}, checked);
  auto b = compiler.compileSource(src, "f", {ArgSpec::row(24)}, elided);
  Matrix x = gen.rowVector(24);
  auto ra = a.run({x});
  auto rb = b.run({x});
  EXPECT_EQ(maxAbsDiff(ra.outputs[0], rb.outputs[0]), 0.0);
  EXPECT_LT(rb.cycles.total, ra.cycles.total);
  EXPECT_GT(b.optimizationReport().checksRemoved, 0);
}

TEST(IntAlias, IndexTemporariesStayAffine) {
  // base = (j-1)*m must not block vectorization of the inner loop.
  kernels::InputGen gen(62);
  std::string src =
      "function y = f(x)\ny = zeros(1, 64);\nfor j = 1:8\n  base = (j - 1) * 8;\n"
      "  for k = 1:8\n    y(base + k) = x(base + k) * 2;\n  end\nend\nend\n";
  Compiler compiler;
  auto unit = compiler.compileSource(src, "f", {ArgSpec::row(64)},
                                     CompileOptions::proposed());
  EXPECT_GE(unit.optimizationReport().vec.loopsVectorized, 2) << unit.lirDump();
  EXPECT_LE(validateAgainstInterpreter(src, "f", unit, {gen.rowVector(64)}), 0.0);
}

TEST(IntAlias, ConditionalAssignmentIsBarrier) {
  // base assigned under an if: alias must not propagate (correctness first).
  kernels::InputGen gen(63);
  std::string src =
      "function y = f(x, s)\ny = zeros(1, 8);\nbase = 0;\nif s > 0\n  base = 4;\nend\n"
      "for k = 1:4\n  y(base + k) = x(k);\nend\nend\n";
  Compiler compiler;
  auto unit = compiler.compileSource(src, "f", {ArgSpec::row(8), ArgSpec::scalar()},
                                     CompileOptions::proposed());
  for (double s : {-1.0, 1.0}) {
    EXPECT_LE(validateAgainstInterpreter(src, "f", unit,
                                         {gen.rowVector(8), Matrix::scalar(s)}),
              0.0);
  }
}

TEST(Vectorize, DynamicTripCountLoop) {
  // Runtime bound, i64 induction: must still vectorize with a remainder loop.
  kernels::InputGen gen(64);
  std::string src =
      "function y = f(x, n)\ny = 0;\nfor k = 1:n\n  y = y + x(k) * x(k);\nend\nend\n";
  Compiler compiler;
  auto unit = compiler.compileSource(src, "f", {ArgSpec::row(64), ArgSpec::scalar()},
                                     CompileOptions::proposed());
  EXPECT_EQ(unit.optimizationReport().vec.loopsVectorized, 1) << unit.lirDump();
  for (double n : {64.0, 37.0, 3.0}) {
    EXPECT_LE(validateAgainstInterpreter(src, "f", unit,
                                         {gen.rowVector(64), Matrix::scalar(n)}),
              1e-9)
        << "n=" << n;
  }
}

TEST(Vectorize, MissDiagnostics) {
  kernels::InputGen gen(65);
  Compiler compiler;
  // Control flow in the body.
  auto u1 = compiler.compileSource(
      "function y = f(x)\ny = 0;\nfor k = 1:8\n  if x(k) > 0\n    y = y + 1;\n  end\nend\nend\n",
      "f", {ArgSpec::row(8)}, CompileOptions::proposed());
  ASSERT_FALSE(u1.optimizationReport().vec.missed.empty());
  EXPECT_NE(u1.optimizationReport().vec.missed[0].find("control flow"), std::string::npos);

  // Reverse stride.
  auto u2 = compiler.compileSource(
      "function y = f(x)\ny = zeros(1, 8);\nfor k = 1:8\n  y(k) = x(9 - k);\nend\nend\n",
      "f", {ArgSpec::row(8)}, CompileOptions::proposed());
  bool found = false;
  for (const auto& note : u2.optimizationReport().vec.missed) {
    if (note.find("no supported vector form") != std::string::npos ||
        note.find("unit-stride") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << u2.lirDump();

  // Loop-carried dependence through a scalar. (Unrolling disabled: the
  // recurrence unroller would otherwise expand this tiny loop before the
  // vectorizer could diagnose it.)
  CompileOptions noUnroll = CompileOptions::proposed();
  noUnroll.unrollRecurrences = false;
  auto u3 = compiler.compileSource(
      "function y = f(x)\ns = 0;\ny = zeros(1, 8);\nfor k = 1:8\n  s = s * 0.5 + x(k);\n"
      "  y(k) = s;\nend\nend\n",
      "f", {ArgSpec::row(8)}, noUnroll);
  ASSERT_FALSE(u3.optimizationReport().vec.missed.empty());
  EXPECT_NE(u3.optimizationReport().vec.missed[0].find("carries a value"),
            std::string::npos);

  // A fully-vectorized function reports nothing missed.
  auto u4 = compiler.compileSource("function y = f(x)\ny = x + 1;\nend\n", "f",
                                   {ArgSpec::row(32)}, CompileOptions::proposed());
  EXPECT_TRUE(u4.optimizationReport().vec.missed.empty());
}

TEST(Pipeline, ReportCountsPasses) {
  Compiler compiler;
  auto k = kernels::makeFir(256, 16);
  auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::proposed());
  EXPECT_GE(unit.optimizationReport().idiomRewrites, 1);
  EXPECT_GE(unit.optimizationReport().vec.loopsVectorized, 1);
  EXPECT_GE(unit.optimizationReport().vec.loopsConsidered,
            unit.optimizationReport().vec.loopsVectorized);
}

// --- instrumented pass manager ----------------------------------------------

const char* kMacSrc =
    "function y = f(x, h)\ny = 0;\nfor k = 1:length(x)\n  y = y + x(k) * h(k);\nend\nend\n";

lir::Function lowerMac() {
  return lowerOnly(kMacSrc, "f", {ArgSpec::row(64), ArgSpec::row(64)});
}

TEST(PassManager, RecordsEveryPassInOrder) {
  lir::Function fn = lowerMac();
  opt::PipelineOptions opts;  // defaults: everything but checkElim
  auto report = opt::runPipeline(fn, isa::IsaDescription::preset("dspx"), opts);
  std::vector<std::string> names;
  for (const auto& p : report.passes) names.push_back(p.name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"constfold", "dce", "sinkdecls", "unroll", "idioms",
                                      "vectorize", "constfold.post", "dce.post", "fuse",
                                      "licm", "cse", "dce.final"}));
  EXPECT_EQ(names, opt::standardPipeline(opts).names());
  double total = 0.0;
  for (const auto& p : report.passes) {
    EXPECT_GE(p.millis, 0.0) << p.name;
    EXPECT_GT(p.before.statements, 0) << p.name;
    EXPECT_GT(p.after.statements, 0) << p.name;
    total += p.millis;
  }
  EXPECT_DOUBLE_EQ(total, report.totalMillis);
}

TEST(PassManager, OptionTogglesDropPassRecords) {
  opt::PipelineOptions opts;
  opts.vectorize = false;
  opts.idioms = false;
  lir::Function fn = lowerMac();
  auto report = opt::runPipeline(fn, isa::IsaDescription::preset("dspx"), opts);
  std::vector<std::string> names;
  for (const auto& p : report.passes) names.push_back(p.name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"constfold", "dce", "sinkdecls", "unroll",
                                      "constfold.post", "dce.post", "fuse", "licm", "cse",
                                      "dce.final"}));
}

TEST(PassManager, PerPassCountersMatchAggregates) {
  opt::PipelineOptions opts;
  lir::Function fn = lowerMac();
  auto report = opt::runPipeline(fn, isa::IsaDescription::preset("dspx"), opts);
  int idioms = 0;
  int vec = 0;
  int checks = 0;
  for (const auto& p : report.passes) {
    idioms += p.idiomRewrites;
    vec += p.loopsVectorized;
    checks += p.checksRemoved;
  }
  EXPECT_EQ(idioms, report.idiomRewrites);
  EXPECT_EQ(vec, report.vec.loopsVectorized);
  EXPECT_EQ(checks, report.checksRemoved);
  EXPECT_GE(report.idiomRewrites, 1);
  EXPECT_GE(report.vec.loopsVectorized, 1);
}

TEST(PassManager, StatsRecordVectorizerGrowth) {
  opt::PipelineOptions opts;
  lir::Function fn = lowerMac();
  auto report = opt::runPipeline(fn, isa::IsaDescription::preset("dspx"), opts);
  for (const auto& p : report.passes) {
    if (p.name != "vectorize") continue;
    // Strip-mining adds the vector loop + remainder loop machinery.
    EXPECT_GT(p.after.statements, p.before.statements);
    EXPECT_GT(p.after.loops, p.before.loops);
    EXPECT_TRUE(p.resized());
  }
}

TEST(PassManager, SinkDeclsRunsWithoutVectorize) {
  // Bugfix regression: decl sinking used to be gated on options.vectorize.
  lir::Function fn = lowerOnly(
      "function y = f(x)\ny = zeros(1, 8);\nfor k = 1:8\n  t = x(k) * 2;\n  y(k) = t + 1;\n"
      "end\nend\n",
      "f", {ArgSpec::row(8)});
  opt::PipelineOptions opts;
  opts.vectorize = false;
  auto report = opt::runPipeline(fn, isa::IsaDescription::preset("dspx"), opts);
  bool sawSink = false;
  for (const auto& p : report.passes) sawSink |= p.name == "sinkdecls";
  EXPECT_TRUE(sawSink);
  bool declInLoop = false;
  for (const auto& s : fn.body) {
    if (s->kind != lir::StmtKind::For) continue;
    for (const auto& inner : s->body) {
      if (inner->kind == lir::StmtKind::DeclScalar && inner->value) declInLoop = true;
    }
  }
  EXPECT_TRUE(declInLoop) << lir::print(fn);
}

TEST(PassManager, SinkDeclsFlagDisablesThePass) {
  lir::Function fn = lowerMac();
  opt::PipelineOptions opts;
  opts.sinkDecls = false;
  auto report = opt::runPipeline(fn, isa::IsaDescription::preset("dspx"), opts);
  for (const auto& p : report.passes) EXPECT_NE(p.name, "sinkdecls");
}

TEST(PassManager, VerifyEachNamesTheOffendingPass) {
  lir::Function fn = lowerMac();
  opt::PassPipeline pipeline;
  pipeline.addPass("benign", [](lir::Function&, const isa::IsaDescription&,
                                opt::PassRecord&, opt::PipelineReport&) {});
  pipeline.addPass("breaker", [](lir::Function& f, const isa::IsaDescription&,
                                 opt::PassRecord&, opt::PipelineReport&) {
    // Two distinct problems: every one must surface in the error message.
    f.body.push_back(lir::assign("no_such_var", lir::constF(1.0)));
    f.body.push_back(lir::store("no_such_array", lir::constI(0), lir::constF(2.0)));
  });
  opt::PipelineOptions opts;
  opts.verifyEach = true;
  try {
    pipeline.run(fn, isa::IsaDescription::preset("dspx"), opts);
    FAIL() << "expected CompileError from verifyEach";
  } catch (const CompileError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("breaker"), std::string::npos) << what;
    EXPECT_EQ(what.find("benign"), std::string::npos) << what;
    EXPECT_NE(what.find("no_such_var"), std::string::npos) << what;
    EXPECT_NE(what.find("no_such_array"), std::string::npos) << what;
  }
}

TEST(PassManager, VerifyEachAcceptsTheStandardPipeline) {
  lir::Function fn = lowerMac();
  opt::PipelineOptions opts;
  opts.verifyEach = true;
  auto report = opt::runPipeline(fn, isa::IsaDescription::preset("dspx"), opts);
  EXPECT_EQ(report.passes.size(), 12u);
}

TEST(PassManager, TraceHookSeesEveryPass) {
  lir::Function fn = lowerMac();
  opt::PipelineOptions opts;
  std::vector<std::string> traced;
  opts.trace = [&](const opt::PassRecord& rec, const lir::Function& f) {
    traced.push_back(rec.name);
    EXPECT_FALSE(lir::print(f).empty());
  };
  auto report = opt::runPipeline(fn, isa::IsaDescription::preset("dspx"), opts);
  ASSERT_EQ(traced.size(), report.passes.size());
  for (std::size_t i = 0; i < traced.size(); ++i) EXPECT_EQ(traced[i], report.passes[i].name);
}

TEST(PassManager, CustomPipelineRecordsInjectedPass) {
  lir::Function fn = lowerMac();
  opt::PassPipeline pipeline;
  pipeline.addPass("fold", [](lir::Function& f, const isa::IsaDescription&,
                              opt::PassRecord&, opt::PipelineReport&) { opt::constFold(f); });
  auto report = pipeline.run(fn, isa::IsaDescription::preset("dspx"), {});
  ASSERT_EQ(report.passes.size(), 1u);
  EXPECT_EQ(report.passes[0].name, "fold");
}

}  // namespace
}  // namespace mat2c
