// Benchmark-corpus tests: every kernel compiles in both styles, matches the
// interpreter, and shows the expected performance character on the ASIP.
#include <gtest/gtest.h>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "parser/parser.hpp"

namespace mat2c {
namespace {

struct SpeedupExpectation {
  const char* name;
  double minSpeedup;
  double maxSpeedup;
};

class KernelSuiteTest : public ::testing::TestWithParam<SpeedupExpectation> {};

TEST_P(KernelSuiteTest, ValidatesAndSpeedsUp) {
  const auto& expect = GetParam();
  auto k = kernels::kernelByName(expect.name);
  Compiler compiler;
  auto prop = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::proposed());
  auto base = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::coderLike());

  // Numerics: both styles must match the reference interpreter.
  EXPECT_LE(validateAgainstInterpreter(k.source, k.entry, prop, k.args), 1e-9);
  EXPECT_LE(validateAgainstInterpreter(k.source, k.entry, base, k.args), 1e-9);

  // Performance shape: within the expected band on the dspx ASIP.
  double cyclesProp = prop.run(k.args).cycles.total;
  double cyclesBase = base.run(k.args).cycles.total;
  double speedup = cyclesBase / cyclesProp;
  EXPECT_GE(speedup, expect.minSpeedup) << k.title;
  EXPECT_LE(speedup, expect.maxSpeedup) << k.title;
}

// Bands bracket the measured behaviour loosely enough to survive cost-model
// tuning but tightly enough to catch a silently-disabled optimization.
INSTANTIATE_TEST_SUITE_P(
    DspSuite, KernelSuiteTest,
    ::testing::Values(SpeedupExpectation{"fir", 6.0, 40.0},
                      SpeedupExpectation{"iir", 2.5, 8.0},
                      SpeedupExpectation{"matmul", 5.0, 40.0},
                      SpeedupExpectation{"cdot", 5.0, 40.0},
                      SpeedupExpectation{"fdeq", 5.0, 40.0},
                      SpeedupExpectation{"fmdemod", 1.3, 5.0}),
    [](const ::testing::TestParamInfo<SpeedupExpectation>& info) {
      return info.param.name;
    });

struct ExtendedExpectation {
  const char* name;
  double minSpeedup;
  double maxSpeedup;
  int minVecLoops;  // vectorized-loop floor; deeper loop nests must fire
};

class ExtendedKernelTest : public ::testing::TestWithParam<ExtendedExpectation> {};

TEST_P(ExtendedKernelTest, ValidatesAndSpeedsUp) {
  const auto& expect = GetParam();
  auto k = kernels::kernelByName(expect.name);
  Compiler compiler;
  auto prop = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::proposed());
  auto base = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::coderLike());
  EXPECT_LE(validateAgainstInterpreter(k.source, k.entry, prop, k.args), 1e-9);
  EXPECT_LE(validateAgainstInterpreter(k.source, k.entry, base, k.args), 1e-9);
  double speedup = base.run(k.args).cycles.total / prop.run(k.args).cycles.total;
  EXPECT_GE(speedup, expect.minSpeedup) << k.title;
  EXPECT_LE(speedup, expect.maxSpeedup) << k.title;
  // These kernels exist to exercise deeper loop structure — vectorization
  // must actually fire.
  EXPECT_GE(prop.optimizationReport().vec.loopsVectorized, expect.minVecLoops);
}

INSTANTIATE_TEST_SUITE_P(
    ExtendedSuite, ExtendedKernelTest,
    ::testing::Values(ExtendedExpectation{"xcorr", 6.0, 40.0, 2},
                      ExtendedExpectation{"blockdct", 3.0, 30.0, 2},
                      ExtendedExpectation{"framepow", 4.0, 30.0, 2},
                      ExtendedExpectation{"fft", 1.2, 4.0, 2},
                      ExtendedExpectation{"qr_decomp", 4.0, 40.0, 2},
                      ExtendedExpectation{"cholesky", 1.2, 8.0, 1},
                      ExtendedExpectation{"uplink_chain", 1.5, 10.0, 1}),
    [](const ::testing::TestParamInfo<ExtendedExpectation>& info) {
      return info.param.name;
    });

TEST(Kernels, ExtendedSuiteHasSeven) {
  EXPECT_EQ(kernels::extendedKernelSuite().size(), 7u);
}

TEST(Kernels, FftMatchesBuiltinOracle) {
  // The compiled loop-style FFT must agree with the interpreter's builtin
  // fft() — two completely independent implementations.
  auto k = kernels::makeFft(128);
  DiagnosticEngine diags;
  auto prog = parseSource(k.source, diags);
  Interpreter interp(*prog);
  Matrix viaKernel = interp.callFunction(k.entry, k.args)[0];

  DiagnosticEngine d2;
  auto builtinProg = parseSource("function y = g(x)\ny = fft(x);\nend\n", d2);
  Interpreter builtinInterp(*builtinProg);
  Matrix viaBuiltin = builtinInterp.callFunction("g", {k.args[0]})[0];
  EXPECT_LE(maxAbsDiff(viaKernel, viaBuiltin), 1e-9);
}

TEST(Kernels, SuiteHasSixBenchmarks) {
  auto suite = kernels::dspBenchmarkSuite();
  EXPECT_EQ(suite.size(), 6u);
  for (const auto& k : suite) {
    EXPECT_FALSE(k.source.empty());
    EXPECT_EQ(k.argSpecs.size(), k.args.size());
  }
}

TEST(Kernels, InputsAreDeterministic) {
  auto a = kernels::makeFir(64, 8, 123);
  auto b = kernels::makeFir(64, 8, 123);
  EXPECT_EQ(maxAbsDiff(a.args[0], b.args[0]), 0.0);
  auto c = kernels::makeFir(64, 8, 124);
  EXPECT_GT(maxAbsDiff(a.args[0], c.args[0]), 0.0);
}

TEST(Kernels, InputGenBounds) {
  kernels::InputGen gen(99);
  for (int i = 0; i < 1000; ++i) {
    double v = gen.next();
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Kernels, BiquadCascadeIsStable) {
  Matrix b;
  Matrix a;
  kernels::biquadCascade(6, b, a);
  ASSERT_EQ(b.rows(), 6u);
  ASSERT_EQ(a.cols(), 3u);
  for (std::size_t j = 0; j < 6; ++j) {
    // Stability: |poles| < 1 <=> |a2| < 1 and |a1| < 1 + a2.
    double a1 = a.at(j, 1).real();
    double a2 = a.at(j, 2).real();
    EXPECT_LT(std::abs(a2), 1.0);
    EXPECT_LT(std::abs(a1), 1.0 + a2);
    EXPECT_DOUBLE_EQ(a.at(j, 0).real(), 1.0);
  }
}

TEST(Kernels, UnknownNameThrows) {
  EXPECT_THROW(kernels::kernelByName("bogus"), std::invalid_argument);
}

TEST(Kernels, SizesAreConfigurable) {
  auto k = kernels::makeMatmul(4, 5, 6);
  EXPECT_EQ(k.args[0].rows(), 4u);
  EXPECT_EQ(k.args[0].cols(), 5u);
  EXPECT_EQ(k.args[1].cols(), 6u);
  Compiler compiler;
  auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::proposed());
  EXPECT_LE(validateAgainstInterpreter(k.source, k.entry, unit, k.args), 1e-9);
}

TEST(Kernels, FmdemodRecoversPhaseIncrements) {
  // Sanity of the kernel itself: output approximates the phase steps.
  auto k = kernels::makeFmdemod(64);
  DiagnosticEngine diags;
  auto prog = parseSource(k.source, diags);
  Interpreter interp(*prog);
  auto out = interp.callFunction(k.entry, k.args);
  // Phase increments were 0.2 +/- 0.15; all demodulated values in (0, 0.4).
  for (std::size_t i = 1; i < out[0].numel(); ++i) {
    EXPECT_GT(out[0].real(i), 0.0);
    EXPECT_LT(out[0].real(i), 0.4);
  }
}

}  // namespace
}  // namespace mat2c
