// End-to-end lowering tests: compile MATLAB source, run on the VM, and
// compare element-wise against the reference interpreter. Each test is a
// distinct language feature passing through the full pipeline.
#include <gtest/gtest.h>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"

namespace mat2c {
namespace {

using sema::ArgSpec;

/// Compiles (both styles), validates both against the interpreter, and
/// returns the Proposed-style result for further checks.
vm::RunResult compileRunValidate(const std::string& src, const std::string& entry,
                                 const std::vector<ArgSpec>& specs,
                                 const std::vector<Matrix>& args, double tol = 1e-9) {
  Compiler compiler;
  auto prop = compiler.compileSource(src, entry, specs, CompileOptions::proposed());
  auto base = compiler.compileSource(src, entry, specs, CompileOptions::coderLike());
  EXPECT_LE(validateAgainstInterpreter(src, entry, prop, args), tol) << "proposed mismatch";
  EXPECT_LE(validateAgainstInterpreter(src, entry, base, args), tol) << "baseline mismatch";
  return prop.run(args);
}

Matrix rowOf(std::initializer_list<double> vals) {
  return Matrix::rowVector(std::vector<double>(vals));
}

TEST(Lowering, ScalarFunction) {
  auto r = compileRunValidate("function y = f(a, b)\ny = a * 2 + b / 4;\nend\n", "f",
                              {ArgSpec::scalar(), ArgSpec::scalar()},
                              {Matrix::scalar(3), Matrix::scalar(8)});
  EXPECT_DOUBLE_EQ(r.outputs[0].scalarValue(), 8.0);
}

TEST(Lowering, ElementwiseExpression) {
  compileRunValidate("function y = f(x)\ny = 2 .* x + x .* x - 1;\nend\n", "f",
                     {ArgSpec::row(7)}, {rowOf({1, 2, 3, 4, 5, 6, 7})});
}

TEST(Lowering, ScalarExpansion) {
  compileRunValidate("function y = f(x, s)\ny = x * s + 1;\nend\n", "f",
                     {ArgSpec::row(5), ArgSpec::scalar()},
                     {rowOf({1, 2, 3, 4, 5}), Matrix::scalar(2.5)});
}

TEST(Lowering, ForLoopAccumulation) {
  auto r = compileRunValidate(
      "function y = f(x)\ny = 0;\nfor k = 1:length(x)\n  y = y + x(k);\nend\nend\n", "f",
      {ArgSpec::row(6)}, {rowOf({1, 2, 3, 4, 5, 6})});
  EXPECT_DOUBLE_EQ(r.outputs[0].scalarValue(), 21.0);
}

TEST(Lowering, ForLoopWithStep) {
  compileRunValidate(
      "function y = f(x)\ny = 0;\nfor k = 1:2:length(x)\n  y = y + x(k);\nend\nend\n", "f",
      {ArgSpec::row(7)}, {rowOf({1, 2, 3, 4, 5, 6, 7})});
}

TEST(Lowering, ForLoopDownward) {
  compileRunValidate(
      "function y = f(x)\ny = 0;\nfor k = length(x):-1:1\n  y = y * 2 + x(k);\nend\nend\n",
      "f", {ArgSpec::row(5)}, {rowOf({1, 2, 3, 4, 5})});
}

TEST(Lowering, LoopVariableAfterLoop) {
  auto r = compileRunValidate("function y = f(x)\nfor k = 1:4\nend\ny = k + x;\nend\n", "f",
                              {ArgSpec::scalar()}, {Matrix::scalar(10)});
  EXPECT_DOUBLE_EQ(r.outputs[0].scalarValue(), 14.0);
}

TEST(Lowering, NonIntegerRangeLoop) {
  compileRunValidate(
      "function y = f(x)\ny = 0;\nfor t = 0:0.25:1\n  y = y + t * x;\nend\nend\n", "f",
      {ArgSpec::scalar()}, {Matrix::scalar(2)});
}

TEST(Lowering, DynamicBoundLoop) {
  // Loop bound that is a runtime scalar (not a compile-time constant).
  compileRunValidate(
      "function y = f(x, n)\ny = 0;\nk = 1;\nwhile k <= n\n  y = y + x(k);\n  k = k + 1;"
      "\nend\nend\n",
      "f", {ArgSpec::row(8), ArgSpec::scalar()},
      {rowOf({1, 2, 3, 4, 5, 6, 7, 8}), Matrix::scalar(5)});
}

TEST(Lowering, DynamicStopForLoop) {
  const char* src =
      "function y = f(x, n)\ny = 0;\nfor k = 1:n\n  y = y + x(k);\nend\ny = y + k;\nend\n";
  for (double n : {5.0, 8.0, 1.0}) {
    compileRunValidate(src, "f", {ArgSpec::row(8), ArgSpec::scalar()},
                       {rowOf({1, 2, 3, 4, 5, 6, 7, 8}), Matrix::scalar(n)});
  }
}

TEST(Lowering, DynamicStopZeroTrips) {
  // for k = 1:0 never runs; k keeps its prior value (MATLAB semantics).
  const char* src =
      "function y = f(n)\nk = 99;\nfor k = 1:n\nend\ny = k;\nend\n";
  auto r = compileRunValidate(src, "f", {ArgSpec::scalar()}, {Matrix::scalar(0)});
  EXPECT_DOUBLE_EQ(r.outputs[0].scalarValue(), 99.0);
  auto r2 = compileRunValidate(src, "f", {ArgSpec::scalar()}, {Matrix::scalar(3)});
  EXPECT_DOUBLE_EQ(r2.outputs[0].scalarValue(), 3.0);
}

TEST(Lowering, DynamicStopNonInteger) {
  // for k = 1:4.7 iterates 1..4.
  const char* src =
      "function y = f(n)\ny = 0;\nfor k = 1:n\n  y = y + k;\nend\nend\n";
  auto r = compileRunValidate(src, "f", {ArgSpec::scalar()}, {Matrix::scalar(4.7)});
  EXPECT_DOUBLE_EQ(r.outputs[0].scalarValue(), 10.0);
}

TEST(Lowering, DynamicStopNegativeStep) {
  const char* src =
      "function y = f(n)\ny = 0;\nfor k = 10:-3:n\n  y = y * 100 + k;\nend\ny = y + k;\nend\n";
  for (double n : {3.0, 2.0, 10.0}) {
    compileRunValidate(src, "f", {ArgSpec::scalar()}, {Matrix::scalar(n)});
  }
}

TEST(Lowering, IfElseChain) {
  for (double v : {-2.0, 0.0, 3.0}) {
    compileRunValidate(
        "function y = f(x)\nif x < 0\n  y = -x;\nelseif x == 0\n  y = 100;\nelse\n  y = x;"
        "\nend\nend\n",
        "f", {ArgSpec::scalar()}, {Matrix::scalar(v)});
  }
}

TEST(Lowering, WhileLoop) {
  auto r = compileRunValidate(
      "function y = f(x)\ny = 1;\nwhile y < x\n  y = y * 3;\nend\nend\n", "f",
      {ArgSpec::scalar()}, {Matrix::scalar(50)});
  EXPECT_DOUBLE_EQ(r.outputs[0].scalarValue(), 81.0);
}

TEST(Lowering, BreakAndContinue) {
  compileRunValidate(
      "function y = f(x)\ny = 0;\nfor k = 1:10\n  if k > 6\n    break\n  end\n"
      "  if mod(k, 2) == 0\n    continue\n  end\n  y = y + x(k);\nend\nend\n",
      "f", {ArgSpec::row(10)}, {rowOf({1, 2, 3, 4, 5, 6, 7, 8, 9, 10})});
}

TEST(Lowering, SwitchStatement) {
  for (double v : {1.0, 2.0, 9.0}) {
    compileRunValidate(
        "function y = f(m)\nswitch m\ncase 1\n  y = 10;\ncase 2\n  y = 20;\notherwise\n"
        "  y = 30;\nend\nend\n",
        "f", {ArgSpec::scalar()}, {Matrix::scalar(v)});
  }
}

TEST(Lowering, SwitchCaseList) {
  for (double v : {1.0, 3.0, 5.0}) {
    compileRunValidate(
        "function y = f(m)\nswitch m\ncase [1 2 3]\n  y = 1;\notherwise\n  y = 0;\nend\nend\n",
        "f", {ArgSpec::scalar()}, {Matrix::scalar(v)});
  }
}

TEST(Lowering, IndexedReadsAndWrites) {
  compileRunValidate(
      "function y = f(x)\ny = zeros(1, length(x));\nfor k = 1:length(x)\n"
      "  y(k) = x(length(x) - k + 1);\nend\nend\n",
      "f", {ArgSpec::row(6)}, {rowOf({1, 2, 3, 4, 5, 6})});
}

TEST(Lowering, TwoDimensionalIndexing) {
  Matrix m = Matrix::zeros(3, 4);
  for (std::size_t i = 0; i < 12; ++i) m.set(i, Complex{static_cast<double>(i + 1), 0});
  compileRunValidate(
      "function y = f(a)\n[r, c] = size(a);\ny = zeros(r, c);\nfor j = 1:c\n  for i = 1:r\n"
      "    y(i, j) = a(i, j) * 2;\n  end\nend\nend\n",
      "f", {ArgSpec::matrix(3, 4)}, {m});
}

TEST(Lowering, SliceRead) {
  compileRunValidate("function y = f(x)\ny = x(2:5);\nend\n", "f", {ArgSpec::row(8)},
                     {rowOf({1, 2, 3, 4, 5, 6, 7, 8})});
  compileRunValidate("function y = f(x)\ny = x(2:end-1);\nend\n", "f", {ArgSpec::row(8)},
                     {rowOf({1, 2, 3, 4, 5, 6, 7, 8})});
}

TEST(Lowering, SliceReadWithStep) {
  compileRunValidate("function y = f(x)\ny = x(1:2:end);\nend\n", "f", {ArgSpec::row(9)},
                     {rowOf({1, 2, 3, 4, 5, 6, 7, 8, 9})});
  compileRunValidate("function y = f(x)\ny = x(end:-1:1);\nend\n", "f", {ArgSpec::row(5)},
                     {rowOf({1, 2, 3, 4, 5})});
}

TEST(Lowering, DynamicStartSlice) {
  // Slice whose start is a loop variable (static span, dynamic base).
  compileRunValidate(
      "function y = f(x, h)\nm = length(h);\nn = length(x);\ny = zeros(1, n - m + 1);\n"
      "for k = 1:n - m + 1\n  y(k) = sum(x(k:k + m - 1) .* h);\nend\nend\n",
      "f", {ArgSpec::row(10), ArgSpec::row(3)},
      {rowOf({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}), rowOf({0.5, 1, 0.25})});
}

TEST(Lowering, SliceWrite) {
  compileRunValidate(
      "function y = f(x)\ny = zeros(1, 10);\ny(3:6) = x;\nend\n", "f", {ArgSpec::row(4)},
      {rowOf({1, 2, 3, 4})});
  compileRunValidate(
      "function y = f(s)\ny = ones(1, 8);\ny(2:2:end) = s;\nend\n", "f", {ArgSpec::scalar()},
      {Matrix::scalar(7)});
}

TEST(Lowering, TwoDimSliceRead) {
  Matrix m = Matrix::zeros(4, 5);
  for (std::size_t i = 0; i < 20; ++i) m.set(i, Complex{static_cast<double>(i), 0});
  compileRunValidate("function y = f(a)\ny = a(2:3, 2:4);\nend\n", "f",
                     {ArgSpec::matrix(4, 5)}, {m});
  compileRunValidate("function y = f(a)\ny = a(2, :);\nend\n", "f", {ArgSpec::matrix(4, 5)},
                     {m});
}

TEST(Lowering, WholeArrayCopyAndColon) {
  Matrix m = Matrix::zeros(2, 3);
  for (std::size_t i = 0; i < 6; ++i) m.set(i, Complex{static_cast<double>(i), 0});
  compileRunValidate("function y = f(a)\ny = a;\nend\n", "f", {ArgSpec::matrix(2, 3)}, {m});
  compileRunValidate("function y = f(a)\ny = a(:);\nend\n", "f", {ArgSpec::matrix(2, 3)},
                     {m});
}

TEST(Lowering, Transpose) {
  Matrix m = Matrix::zeros(2, 3);
  for (std::size_t i = 0; i < 6; ++i) m.set(i, Complex{static_cast<double>(i + 1), 0});
  compileRunValidate("function y = f(a)\ny = a';\nend\n", "f", {ArgSpec::matrix(2, 3)}, {m});
}

TEST(Lowering, ConjugateTranspose) {
  Matrix m = Matrix::zeros(1, 3, true);
  m.set(0, {1, 2});
  m.set(1, {3, -4});
  m.set(2, {0, 1});
  compileRunValidate("function y = f(a)\ny = a';\nend\n", "f", {ArgSpec::row(3, true)}, {m});
  compileRunValidate("function y = f(a)\ny = a.';\nend\n", "f", {ArgSpec::row(3, true)}, {m});
}

TEST(Lowering, MatrixMultiply) {
  kernels::InputGen gen(7);
  compileRunValidate("function y = f(a, b)\ny = a * b;\nend\n", "f",
                     {ArgSpec::matrix(3, 4), ArgSpec::matrix(4, 2)},
                     {gen.matrix(3, 4), gen.matrix(4, 2)});
}

TEST(Lowering, MatVecProduct) {
  kernels::InputGen gen(8);
  compileRunValidate("function y = f(a, v)\ny = a * v;\nend\n", "f",
                     {ArgSpec::matrix(3, 4), ArgSpec::col(4)},
                     {gen.matrix(3, 4), gen.matrix(4, 1)});
}

TEST(Lowering, DotAndNorm) {
  kernels::InputGen gen(9);
  compileRunValidate("function y = f(a, b)\ny = dot(a, b);\nend\n", "f",
                     {ArgSpec::row(6), ArgSpec::row(6)},
                     {gen.rowVector(6), gen.rowVector(6)});
  compileRunValidate("function y = f(a)\ny = norm(a);\nend\n", "f", {ArgSpec::row(6)},
                     {gen.rowVector(6)});
}

TEST(Lowering, ReductionsAndMean) {
  kernels::InputGen gen(10);
  for (const char* fn : {"sum", "prod", "mean", "min", "max"}) {
    std::string src = std::string("function y = f(a)\ny = ") + fn + "(a);\nend\n";
    compileRunValidate(src, "f", {ArgSpec::row(7)}, {gen.rowVector(7)});
  }
}

TEST(Lowering, ColumnReductions) {
  kernels::InputGen gen(11);
  for (const char* fn : {"sum", "mean", "max"}) {
    std::string src = std::string("function y = f(a)\ny = ") + fn + "(a);\nend\n";
    compileRunValidate(src, "f", {ArgSpec::matrix(4, 5)}, {gen.matrix(4, 5)});
  }
}

TEST(Lowering, MinMaxWithIndex) {
  auto r = compileRunValidate(
      "function [v, i] = f(a)\n[v, i] = max(a);\nend\n", "f", {ArgSpec::row(5)},
      {rowOf({3, 9, 1, 9, 2})});
  EXPECT_DOUBLE_EQ(r.outputs[0].scalarValue(), 9.0);
  EXPECT_DOUBLE_EQ(r.outputs[1].scalarValue(), 2.0);  // first max wins
}

TEST(Lowering, ElementwiseBuiltins) {
  kernels::InputGen gen(12);
  compileRunValidate(
      "function y = f(a)\ny = abs(a) + sqrt(abs(a)) + exp(a) .* cos(a) - sin(a);\nend\n",
      "f", {ArgSpec::row(6)}, {gen.rowVector(6)});
}

TEST(Lowering, RoundingAndMod) {
  compileRunValidate(
      "function y = f(a)\ny = floor(a) + ceil(a) - round(a) + fix(a) + sign(a) + "
      "mod(a, 3) + rem(a, 3);\nend\n",
      "f", {ArgSpec::row(5)}, {rowOf({-2.7, -0.5, 0.0, 1.5, 2.2})});
}

TEST(Lowering, ComplexArithmetic) {
  kernels::InputGen gen(13);
  compileRunValidate(
      "function y = f(a, b)\ny = a .* b + conj(a) - 2i * b;\nend\n", "f",
      {ArgSpec::row(5, true), ArgSpec::row(5, true)},
      {gen.complexRowVector(5), gen.complexRowVector(5)});
}

TEST(Lowering, ComplexParts) {
  kernels::InputGen gen(14);
  compileRunValidate(
      "function y = f(a)\ny = real(a) .* imag(a) + abs(a) + angle(a);\nend\n", "f",
      {ArgSpec::row(5, true)}, {gen.complexRowVector(5)});
  compileRunValidate("function y = f(a, b)\ny = complex(a, b);\nend\n", "f",
                     {ArgSpec::row(4), ArgSpec::row(4)},
                     {gen.rowVector(4), gen.rowVector(4)});
}

TEST(Lowering, ComplexAccumulatorPromotion) {
  kernels::InputGen gen(15);
  compileRunValidate(
      "function y = f(x)\nacc = 0;\nfor k = 1:length(x)\n  acc = acc + x(k);\nend\n"
      "y = acc;\nend\n",
      "f", {ArgSpec::row(6, true)}, {gen.complexRowVector(6)});
}

TEST(Lowering, ZerosOnesEyeLinspace) {
  compileRunValidate("function y = f(s)\ny = zeros(2, 3) + s;\nend\n", "f",
                     {ArgSpec::scalar()}, {Matrix::scalar(4)});
  compileRunValidate("function y = f(s)\ny = ones(3) * s;\nend\n", "f", {ArgSpec::scalar()},
                     {Matrix::scalar(2)});
  compileRunValidate("function y = f(s)\ny = eye(3) * s;\nend\n", "f", {ArgSpec::scalar()},
                     {Matrix::scalar(5)});
  compileRunValidate("function y = f(s)\ny = linspace(0, s, 5);\nend\n", "f",
                     {ArgSpec::scalar()}, {Matrix::scalar(8)});
}

TEST(Lowering, RangeValue) {
  compileRunValidate("function y = f(s)\ny = (1:6) * s;\nend\n", "f", {ArgSpec::scalar()},
                     {Matrix::scalar(3)});
  compileRunValidate("function y = f(s)\ny = (0:0.5:2) + s;\nend\n", "f",
                     {ArgSpec::scalar()}, {Matrix::scalar(2)});
}

TEST(Lowering, MatrixLiteral) {
  compileRunValidate("function y = f(s)\ny = [1 2 s; 4 5 6];\nend\n", "f",
                     {ArgSpec::scalar()}, {Matrix::scalar(3)});
}

TEST(Lowering, UserFunctionInlining) {
  std::string src =
      "function y = f(x)\ny = helper(x) + helper(x * 2);\nend\n"
      "function y = helper(a)\ny = a * a + 1;\nend\n";
  compileRunValidate(src, "f", {ArgSpec::scalar()}, {Matrix::scalar(3)});
}

TEST(Lowering, InlinedVectorFunction) {
  kernels::InputGen gen(16);
  std::string src =
      "function y = f(x)\ny = normalize(x) * 2;\nend\n"
      "function y = normalize(v)\ny = v ./ max(abs(v));\nend\n";
  compileRunValidate(src, "f", {ArgSpec::row(6)}, {gen.rowVector(6)});
}

TEST(Lowering, InlinedFunctionWritesParam) {
  // Callee mutates its parameter: MATLAB value semantics require a copy.
  kernels::InputGen gen(17);
  std::string src =
      "function y = f(x)\ny = clobber(x) + sum(x);\nend\n"
      "function y = clobber(v)\nv(1) = 999;\ny = sum(v);\nend\n";
  compileRunValidate(src, "f", {ArgSpec::row(4)}, {gen.rowVector(4)});
}

TEST(Lowering, InlinedMultiOutput) {
  std::string src =
      "function y = f(x)\n[a, b] = stats(x);\ny = a + b;\nend\n"
      "function [mn, mx] = stats(v)\nmn = min(v);\nmx = max(v);\nend\n";
  compileRunValidate(src, "f", {ArgSpec::row(5)}, {rowOf({5, 3, 8, 1, 9})});
}

TEST(Lowering, OutputShadowsInput) {
  kernels::InputGen gen(18);
  compileRunValidate("function x = f(x)\nx = x * 2;\nend\n", "f", {ArgSpec::row(4)},
                     {gen.rowVector(4)});
}

TEST(Lowering, ShortCircuitConditions) {
  compileRunValidate(
      "function y = f(a)\ny = 0;\nif a ~= 0 && 1 / a > 0.1\n  y = 1;\nend\nend\n", "f",
      {ArgSpec::scalar()}, {Matrix::scalar(5)});
  compileRunValidate(
      "function y = f(a)\ny = 0;\nif a ~= 0 && 1 / a > 0.1\n  y = 1;\nend\nend\n", "f",
      {ArgSpec::scalar()}, {Matrix::scalar(0)});
}

TEST(Lowering, LogicalValuesInArithmetic) {
  kernels::InputGen gen(19);
  compileRunValidate("function y = f(x)\ny = sum(x > 0) + sum(x <= 0);\nend\n", "f",
                     {ArgSpec::row(9)}, {gen.rowVector(9)});
}

TEST(Lowering, NestedFunctionCallsDeep) {
  std::string src =
      "function y = f(x)\ny = a1(x);\nend\n"
      "function y = a1(x)\ny = a2(x) + 1;\nend\n"
      "function y = a2(x)\ny = a3(x) * 2;\nend\n"
      "function y = a3(x)\ny = x - 1;\nend\n";
  compileRunValidate(src, "f", {ArgSpec::scalar()}, {Matrix::scalar(10)});
}

TEST(Lowering, PowerOperators) {
  compileRunValidate("function y = f(a)\ny = a^2 + 2^a + a.^0.5;\nend\n", "f",
                     {ArgSpec::scalar()}, {Matrix::scalar(4)});
  compileRunValidate("function y = f(x)\ny = x.^2;\nend\n", "f", {ArgSpec::row(4)},
                     {rowOf({1, 2, 3, 4})});
}

TEST(Lowering, ScalarDivisionAndNegationOnVectors) {
  kernels::InputGen gen(22);
  compileRunValidate("function y = f(x)\ny = x / 2 - (-x) * 3;\nend\n", "f",
                     {ArgSpec::row(9)}, {gen.rowVector(9)});
}

TEST(Lowering, LogicalNotOnVectors) {
  kernels::InputGen gen(23);
  compileRunValidate("function y = f(x)\ny = ~(x > 0) + 2 .* ~(x < 0);\nend\n", "f",
                     {ArgSpec::row(9)}, {gen.rowVector(9)});
}

TEST(Lowering, ColumnProd) {
  kernels::InputGen gen(24);
  compileRunValidate("function y = f(a)\ny = prod(a);\nend\n", "f",
                     {ArgSpec::matrix(3, 4)}, {gen.matrix(3, 4)});
}

TEST(Lowering, ChainedSliceOfCopy) {
  kernels::InputGen gen(25);
  compileRunValidate(
      "function y = f(x)\nt = x;\ny = t(3:6) + t(1:4);\nend\n", "f", {ArgSpec::row(8)},
      {gen.rowVector(8)});
}

TEST(Lowering, NestedIfInLoopWithAccumulator) {
  kernels::InputGen gen(26);
  compileRunValidate(
      "function y = f(x)\ny = 0;\nfor k = 1:length(x)\n  if x(k) > 0.5\n    y = y + 2;\n"
      "  elseif x(k) > 0\n    y = y + 1;\n  else\n    y = y - 1;\n  end\nend\nend\n",
      "f", {ArgSpec::row(16)}, {gen.rowVector(16)});
}

TEST(Lowering, ShapeChangeRejected) {
  Compiler compiler;
  EXPECT_THROW(compiler.compileSource(
                   "function y = f(x)\ny = zeros(1, 3);\ny = zeros(1, 5);\nend\n", "f",
                   {ArgSpec::scalar()}, CompileOptions::proposed()),
               CompileError);
}

TEST(Lowering, ReturnRejected) {
  Compiler compiler;
  EXPECT_THROW(
      compiler.compileSource("function y = f(x)\ny = 1;\nreturn\nend\n", "f",
                             {ArgSpec::scalar()}, CompileOptions::proposed()),
      CompileError);
}

TEST(Lowering, CoderStyleHasChecksAndAllocs) {
  Compiler compiler;
  auto unit = compiler.compileSource("function y = f(x)\ny = x + x .* x;\nend\n", "f",
                                     {ArgSpec::row(16)}, CompileOptions::coderLike());
  auto r = unit.run({kernels::InputGen(20).rowVector(16)});
  EXPECT_GT(r.cycles.byCategory["check"], 0.0);
  EXPECT_GT(r.cycles.byCategory["alloc"], 0.0);
}

TEST(Lowering, ProposedStyleHasNoChecks) {
  Compiler compiler;
  auto unit = compiler.compileSource("function y = f(x)\ny = x + x .* x;\nend\n", "f",
                                     {ArgSpec::row(16)}, CompileOptions::proposed());
  auto r = unit.run({kernels::InputGen(21).rowVector(16)});
  EXPECT_EQ(r.cycles.byCategory.count("check"), 0u);
}

}  // namespace
}  // namespace mat2c
