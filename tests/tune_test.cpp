// Pass-parameter autotuner (src/tune): the search must find the known wins
// on the recurrence kernels, stay inside its candidate/deadline budgets, and
// never accept a winner outside the interpreter-oracle error bound.
//
// Kernel sizes here are reduced from the benchmark corpus — the wins under
// test are structural (unroll-then-promote, fma reassociation), so they do
// not depend on the outer trip count and the suite stays fast.
#include <gtest/gtest.h>

#include "support/errors.hpp"
#include "tune/tune.hpp"

namespace mat2c {
namespace {

using tune::TuneInput;
using tune::TuneOptions;
using tune::TuneResult;

TuneInput inputFor(const kernels::KernelSpec& spec) {
  TuneInput input;
  input.source = spec.source;
  input.entry = spec.entry;
  input.argSpecs = spec.argSpecs;
  input.args = spec.args;
  return input;
}

const char* kSquareSource =
    "function y = sq(x)\n"
    "y = x .* x;\n"
    "end\n";

TuneInput squareInput() {
  TuneInput input;
  input.source = kSquareSource;
  input.entry = "sq";
  input.argSpecs = {sema::ArgSpec::row(32)};
  return input;
}

// ---- The wins the tuner exists to find -----------------------------------

TEST(Autotune, DeepIirWantsTripSixteen) {
  // 16 biquad sections sit past the default unrollMaxTrip of 8, so the stock
  // pipeline leaves the section loop rolled; raising the trip cap unrolls it
  // and lets LICM promote the state arrays. The tuner must find this within
  // the smoke budget via coordinate descent (the full grid does not fit).
  TuneOptions topt;
  topt.budget = 24;
  TuneResult r = tune::autotune(inputFor(kernels::makeIir16(512)), topt);

  EXPECT_FALSE(r.report.exhaustive);
  EXPECT_LT(r.report.tunedCycles, r.report.defaultCycles);
  EXPECT_GT(r.report.speedup, 1.5);
  EXPECT_EQ(r.report.best.effectiveUnrollMaxTrip(), 16);
  EXPECT_LE(r.report.bestMaxAbsErr, topt.maxAbsErr);
  // The cached artifact is the winner's compile, not the default's.
  EXPECT_LT(r.unit.run(inputFor(kernels::makeIir16(512)).args).cycles.total,
            r.report.defaultCycles);
}

TEST(Autotune, IirWinsViaReassociation) {
  // The 8-section cascade is already fully unrolled by the default pipeline;
  // the remaining headroom is the reassociating fma rewrite, which is opt-in
  // precisely because it changes rounding — the tuner admits it only under
  // the reassoc oracle bound.
  TuneResult r = tune::autotune(inputFor(kernels::makeIir(512)));

  EXPECT_LT(r.report.tunedCycles, r.report.defaultCycles);
  EXPECT_TRUE(r.report.best.reassoc);
  EXPECT_LE(r.report.bestMaxAbsErr, TuneOptions{}.reassocMaxAbsErr);
  EXPECT_GT(r.report.bestMaxAbsErr, 0.0) << "reassoc changes rounding";
}

TEST(Autotune, ZeroReassocBoundRejectsReassocWinners) {
  // Tightening the reassoc bound to exactly zero disqualifies every
  // candidate whose rounding differs from the interpreter, so the reassoc
  // win on iir must vanish rather than slip through the gate.
  TuneOptions topt;
  topt.reassocMaxAbsErr = 0.0;
  TuneResult r = tune::autotune(inputFor(kernels::makeIir(512)), topt);

  EXPECT_FALSE(r.report.best.reassoc);
  EXPECT_EQ(r.report.bestMaxAbsErr, 0.0);
  for (const tune::TuneCandidate& c : r.report.candidates) {
    if (c.accepted) EXPECT_TRUE(c.oracleOk) << c.signature;
  }
}

TEST(Autotune, DefaultOptimalKernelKeepsTheDefaultConfiguration) {
  // Acceptance is strictly-better: on a kernel with no tuning headroom the
  // incumbent survives every sweep and the report says so (speedup 1.0,
  // winner == base), rather than drifting to an arbitrary tied candidate.
  TuneInput input = squareInput();
  TuneResult r = tune::autotune(input);

  EXPECT_EQ(r.report.tunedCycles, r.report.defaultCycles);
  EXPECT_EQ(r.report.speedup, 1.0);
  EXPECT_EQ(r.report.best.passSignature(), input.base.passSignature());
}

// ---- Budgets and deadlines -----------------------------------------------

TEST(Autotune, SearchSpaceSizeCountsTheGrid) {
  // 5 trips x 2^7 toggles (vectorize, fuseLoops, licm, cse, deadStores,
  // checkElim, reassoc) — the documented default grid.
  EXPECT_EQ(tune::searchSpaceSize(TuneOptions{}), 640);

  TuneOptions narrow;
  narrow.unrollTrips = {1};
  narrow.tuneVectorize = narrow.tuneFuseLoops = narrow.tuneLicm = false;
  narrow.tuneCse = narrow.tuneDeadStores = narrow.tuneCheckElim = false;
  narrow.allowReassoc = false;
  EXPECT_EQ(tune::searchSpaceSize(narrow), 1);
}

TEST(Autotune, ClampedTripsCollapseToOneChoice) {
  // All out-of-range trips normalize through effectiveUnrollMaxTrip() — the
  // single clamp point shared with the pipeline and the cache key — so a
  // caller-supplied {0, 1, -3} is one "never unroll" choice, not three
  // candidates wasting budget on identical compiles.
  CompileOptions zero, one, negative, huge;
  zero.unrollMaxTrip = 0;
  one.unrollMaxTrip = 1;
  negative.unrollMaxTrip = -5;
  huge.unrollMaxTrip = CompileOptions::kUnrollTripCap + 7;
  EXPECT_EQ(zero.effectiveUnrollMaxTrip(), 1);
  EXPECT_EQ(negative.effectiveUnrollMaxTrip(), 1);
  EXPECT_EQ(huge.effectiveUnrollMaxTrip(), CompileOptions::kUnrollTripCap);
  EXPECT_EQ(zero.passSignature(), one.passSignature());
  EXPECT_EQ(negative.passSignature(), one.passSignature());

  TuneOptions topt;
  topt.unrollTrips = {0, 1, -3};
  topt.tuneVectorize = topt.tuneFuseLoops = topt.tuneLicm = false;
  topt.tuneCse = topt.tuneDeadStores = topt.tuneCheckElim = false;
  topt.allowReassoc = false;
  EXPECT_EQ(tune::searchSpaceSize(topt), 1);
}

TEST(Autotune, ExhaustiveFallbackWhenTheGridFitsTheBudget) {
  // One toggled knob -> a 2-point space, well under the default budget: the
  // search enumerates it instead of descending, and the base configuration
  // is memo-pruned rather than compiled twice.
  TuneOptions topt;
  topt.unrollTrips = {8};
  topt.tuneVectorize = topt.tuneFuseLoops = false;
  topt.tuneCse = topt.tuneDeadStores = topt.tuneCheckElim = false;
  topt.allowReassoc = false;
  topt.tuneLicm = true;
  ASSERT_EQ(tune::searchSpaceSize(topt), 2);

  TuneResult r = tune::autotune(squareInput(), topt);
  EXPECT_TRUE(r.report.exhaustive);
  EXPECT_FALSE(r.report.budgetExhausted);
  EXPECT_EQ(r.report.candidatesTried, 2);   // base + licm=off
  EXPECT_EQ(r.report.candidatesPruned, 1);  // the licm=on revisit of the base
}

TEST(Autotune, CandidateBudgetIsAHardCap) {
  TuneOptions topt;
  topt.budget = 3;
  TuneResult r = tune::autotune(squareInput(), topt);

  EXPECT_FALSE(r.report.exhaustive) << "640-point grid cannot fit a budget of 3";
  EXPECT_LE(r.report.candidatesTried, 3);
  EXPECT_TRUE(r.report.budgetExhausted);
}

TEST(Autotune, TinyDeadlineKeepsBestSoFarOrTimesOut) {
  // Deadline semantics: expiry after the base was scored keeps the best
  // configuration found so far (here: the base itself); expiry before
  // anything was scored surfaces as a Timeout error — never a partial
  // result with no incumbent.
  TuneOptions topt;
  topt.wallBudgetMillis = 0.01;
  TuneInput input = squareInput();
  try {
    TuneResult r = tune::autotune(input, topt);
    EXPECT_TRUE(r.report.deadlineExpired);
    EXPECT_LE(r.report.candidatesTried, 2);
    EXPECT_EQ(r.report.best.passSignature(), input.base.passSignature());
  } catch (const StructuredError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Timeout);
  }
}

TEST(Autotune, BrokenBaseConfigurationIsTheCallersError) {
  // A base that cannot compile leaves nothing to cache: structured error,
  // not a silent fall-through to some other configuration.
  TuneInput input = squareInput();
  input.entry = "nosuchfunction";
  EXPECT_THROW(tune::autotune(input), StructuredError);
}

// ---- Report plumbing ------------------------------------------------------

TEST(Autotune, ReportTableAndBenchJsonCarryTheWinners) {
  TuneOptions topt;
  topt.budget = 24;
  TuneResult r = tune::autotune(inputFor(kernels::makeIir16(512)), topt);
  r.report.kernel = "iir16";

  std::string table = tune::reportTable({r.report});
  EXPECT_NE(table.find("iir16"), std::string::npos);
  EXPECT_NE(table.find("unrollMaxTrip=16"), std::string::npos);
  EXPECT_NE(table.find("coord-descent"), std::string::npos);

  std::string json = tune::benchJson({r.report}, "dspx");
  EXPECT_NE(json.find("\"iir16\""), std::string::npos);
  EXPECT_NE(json.find("\"baseline_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"proposed_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"geomean_speedup\""), std::string::npos);
  EXPECT_NE(json.find("\"tuned\": \"unrollMaxTrip=16"), std::string::npos);
}

TEST(Autotune, TuneCorpusContainsTheDeepIir) {
  // The tune corpus is the DSE corpus plus the deep IIR; kernelByName must
  // resolve the new kernel so `mat2c tune --kernels iir16` works.
  bool found = false;
  for (const auto& spec : kernels::tuneCorpus()) {
    if (spec.name == "iir16") found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(kernels::kernelByName("iir16").entry, kernels::makeIir16().entry);
}

}  // namespace
}  // namespace mat2c
