// LIR structure tests: builders, printing, verification, affine analysis.
#include <gtest/gtest.h>

#include "lir/lir.hpp"

namespace mat2c::lir {
namespace {

Function makeSaxpy() {
  // y[i] = a * x[i] + y[i]
  Function fn;
  fn.name = "saxpy";
  fn.params.push_back({"a", Scalar::F64, false, 1, 1});
  fn.params.push_back({"x", Scalar::F64, true, 1, 8});
  fn.outs.push_back({"y", Scalar::F64, true, 1, 8});
  std::vector<StmtPtr> body;
  ExprPtr val = fma(varRef("a", VType::f64()),
                    load("x", varRef("i", VType::i64()), VType::f64()),
                    load("y", varRef("i", VType::i64()), VType::f64()), VType::f64());
  body.push_back(store("y", varRef("i", VType::i64()), std::move(val)));
  fn.body.push_back(forLoop("i", constI(0), constI(8), 1, std::move(body)));
  return fn;
}

TEST(Lir, VerifyAcceptsWellFormed) {
  Function fn = makeSaxpy();
  EXPECT_TRUE(verify(fn).empty());
}

TEST(Lir, PrintContainsStructure) {
  Function fn = makeSaxpy();
  std::string text = print(fn);
  EXPECT_NE(text.find("func saxpy"), std::string::npos);
  EXPECT_NE(text.find("for i = 0 .. 8"), std::string::npos);
  EXPECT_NE(text.find("fma(a, x[i], y[i])"), std::string::npos);
}

TEST(Lir, VerifyCatchesUndeclaredVariable) {
  Function fn = makeSaxpy();
  fn.body.push_back(assign("ghost", constF(1.0)));
  auto problems = verify(fn);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("ghost"), std::string::npos);
}

TEST(Lir, VerifyCatchesUnknownArray) {
  Function fn = makeSaxpy();
  fn.body.push_back(store("nosuch", constI(0), constF(1.0)));
  EXPECT_FALSE(verify(fn).empty());
}

TEST(Lir, VerifyCatchesTypeMismatch) {
  Function fn = makeSaxpy();
  fn.body.push_back(declScalar("t", VType::f64(), constI(3)));  // i64 init for f64
  EXPECT_FALSE(verify(fn).empty());
}

TEST(Lir, VerifyCatchesNonI64Index) {
  Function fn = makeSaxpy();
  fn.body.push_back(store("y", constF(0.0), constF(1.0)));
  EXPECT_FALSE(verify(fn).empty());
}

TEST(Lir, CollectStatsCountsTheStatementTree) {
  Function fn = makeSaxpy();
  FunctionStats stats = collectStats(fn);
  EXPECT_EQ(stats.statements, 2);  // for + store
  EXPECT_EQ(stats.loops, 1);
  EXPECT_EQ(stats.stores, 1);
  EXPECT_EQ(stats.decls, 0);
  EXPECT_EQ(stats.boundsChecks, 0);

  // Nested and conditional statements are counted recursively.
  std::vector<StmtPtr> thenBody;
  thenBody.push_back(declScalar("t", VType::f64(), constF(0.0)));
  fn.body.push_back(ifStmt(binary(BinOp::Lt, constF(0.0), constF(1.0), VType::b1()),
                           std::move(thenBody)));
  fn.body.push_back(boundsCheck("y", constI(0)));
  FunctionStats grown = collectStats(fn);
  EXPECT_EQ(grown.statements, 5);
  EXPECT_EQ(grown.decls, 1);
  EXPECT_EQ(grown.boundsChecks, 1);
  EXPECT_FALSE(stats == grown);
}

TEST(Lir, VerifyCatchesBreakOutsideLoop) {
  Function fn;
  fn.name = "f";
  fn.body.push_back(breakStmt());
  EXPECT_FALSE(verify(fn).empty());
}

TEST(Lir, VerifyScopesLoopVariables) {
  Function fn;
  fn.name = "f";
  std::vector<StmtPtr> body;
  body.push_back(declScalar("t", VType::i64(), varRef("i", VType::i64())));
  fn.body.push_back(forLoop("i", constI(0), constI(4), 1, std::move(body)));
  // `i` out of scope after the loop:
  fn.body.push_back(declScalar("u", VType::i64(), varRef("i", VType::i64())));
  EXPECT_FALSE(verify(fn).empty());
}

TEST(Lir, CloneIsDeep) {
  Function fn = makeSaxpy();
  StmtPtr loop = fn.body[0]->clone();
  // Mutating the clone must not affect the original.
  loop->body.clear();
  EXPECT_FALSE(fn.body[0]->body.empty());
}

TEST(Lir, ArrayInfoFindsAllStorageKinds) {
  Function fn = makeSaxpy();
  fn.arrays.push_back({"tmp", Scalar::C64, 2, 3});
  Scalar elem{};
  std::int64_t n = 0;
  EXPECT_TRUE(fn.arrayInfo("x", elem, n));
  EXPECT_EQ(n, 8);
  EXPECT_TRUE(fn.arrayInfo("y", elem, n));
  EXPECT_TRUE(fn.arrayInfo("tmp", elem, n));
  EXPECT_EQ(elem, Scalar::C64);
  EXPECT_EQ(n, 6);
  EXPECT_FALSE(fn.arrayInfo("a", elem, n));  // scalar param is not an array
  EXPECT_FALSE(fn.arrayInfo("zz", elem, n));
}

TEST(Lir, TypeToString) {
  EXPECT_EQ(toString(VType::f64()), "f64");
  EXPECT_EQ(toString(VType::c64(4)), "c64x4");
  EXPECT_EQ(toString(VType::i64()), "i64");
}

// -- affine analysis ---------------------------------------------------------

TEST(LirAffine, ConstantsAndVars) {
  auto a = affineOf(*constI(7));
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.constant, 7);
  auto v = affineOf(*varRef("i", VType::i64()));
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.coeff("i"), 1);
}

TEST(LirAffine, LinearCombination) {
  // (i * 3 + j) - 2
  ExprPtr e = binary(
      BinOp::Sub,
      binary(BinOp::Add,
             binary(BinOp::Mul, varRef("i", VType::i64()), constI(3), VType::i64()),
             varRef("j", VType::i64()), VType::i64()),
      constI(2), VType::i64());
  auto a = affineOf(*e);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.coeff("i"), 3);
  EXPECT_EQ(a.coeff("j"), 1);
  EXPECT_EQ(a.constant, -2);
  EXPECT_FALSE(a.onlyVar("i"));
  EXPECT_TRUE(affineOf(*varRef("i", VType::i64())).onlyVar("i"));
}

TEST(LirAffine, NonAffineRejected) {
  ExprPtr e = binary(BinOp::Mul, varRef("i", VType::i64()), varRef("j", VType::i64()),
                     VType::i64());
  EXPECT_FALSE(affineOf(*e).ok);
  ExprPtr f = unary(UnOp::ToI64, constF(3.0), VType::i64());
  EXPECT_FALSE(affineOf(*f).ok);
}

TEST(LirAffine, Subtraction) {
  // (i + 5) - (i + 2) == 3
  ExprPtr a = binary(BinOp::Add, varRef("i", VType::i64()), constI(5), VType::i64());
  ExprPtr b = binary(BinOp::Add, varRef("i", VType::i64()), constI(2), VType::i64());
  Affine d = affineSub(affineOf(*a), affineOf(*b));
  ASSERT_TRUE(d.ok);
  EXPECT_EQ(d.constant, 3);
  EXPECT_EQ(d.coeff("i"), 0);
}

}  // namespace
}  // namespace mat2c::lir
