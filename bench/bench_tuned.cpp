// Autotuned-vs-default pipeline comparison (ROADMAP item 1, src/tune).
//
// The paper fixes one pass configuration for every kernel; this harness
// quantifies what per-kernel pass-parameter tuning adds on top. For each
// kernel in the tune corpus it runs the src/tune search (greedy coordinate
// descent under the default candidate budget), oracle-checks the winner
// against the reference interpreter, and reports tuned vs default cycles.
//
// --json <path> writes BENCH_tuned.json — baseline_cycles = the default
// Proposed pipeline, proposed_cycles = the tuned winner — which
// tools/check_perf.py gates in CI (ctest perf_tuned_regression): a pipeline
// change that erodes a tuned win or breaks a winner's oracle bound fails the
// gate.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "driver/kernels.hpp"
#include "tune/tune.hpp"

namespace {

using namespace mat2c;

std::vector<tune::TuneReport> runTuneSweep() {
  std::vector<tune::TuneReport> reports;
  for (const auto& spec : kernels::tuneCorpus()) {
    tune::TuneInput input;
    input.source = spec.source;
    input.entry = spec.entry;
    input.argSpecs = spec.argSpecs;
    input.args = spec.args;
    tune::TuneResult result = tune::autotune(input, tune::TuneOptions{});
    result.report.kernel = spec.name;
    reports.push_back(std::move(result.report));
  }
  return reports;
}

void BM_Tuned(benchmark::State& state, std::string kernel) {
  kernels::KernelSpec spec = kernels::kernelByName(kernel);
  tune::TuneInput input;
  input.source = spec.source;
  input.entry = spec.entry;
  input.argSpecs = spec.argSpecs;
  input.args = spec.args;
  tune::TuneResult tuned = tune::autotune(input, tune::TuneOptions{});
  double cycles = 0;
  for (auto _ : state) {
    auto r = tuned.unit.run(spec.args);
    cycles = r.cycles.total;
    benchmark::DoNotOptimize(r.outputs.data());
  }
  state.counters["asip_cycles"] = cycles;
  state.counters["default_cycles"] = tuned.report.defaultCycles;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  // Strip --json <path> before google-benchmark sees the argument list.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }

  std::vector<tune::TuneReport> reports;
  try {
    reports = runTuneSweep();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_tuned: tune sweep failed: %s\n", e.what());
    return 1;
  }
  std::printf("\n=== Autotuned vs default pipeline (dspx) ===\n\n%s\n",
              tune::reportTable(reports).c_str());

  if (!jsonPath.empty()) {
    std::ofstream out(jsonPath);
    if (!out) {
      std::fprintf(stderr, "bench_tuned: cannot write '%s'\n", jsonPath.c_str());
      return 1;
    }
    out << tune::benchJson(reports, "dspx");
    int improved = 0;
    for (const auto& r : reports) {
      if (r.tunedCycles < r.defaultCycles) ++improved;
    }
    std::fprintf(stderr, "bench_tuned: wrote %s (%d of %zu kernels improved)\n",
                 jsonPath.c_str(), improved, reports.size());
  }

  for (const char* k : {"iir", "iir16"}) {
    benchmark::RegisterBenchmark(("tuned/" + std::string(k)).c_str(), BM_Tuned,
                                 std::string(k));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
