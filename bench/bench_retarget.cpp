// Retargetability — the paper's parameterized-ISA claim.
//
// "The proposed compiler allows the description of the specialized
//  instruction set of the target processor in a parameterized way allowing
//  the support of any processor."
//
// This harness compiles the same MATLAB kernels against (a) built-in
// presets and (b) a *textual ISA description parsed at run time* with custom
// intrinsic spellings, then shows that the emitted C switches intrinsic
// vocabularies with zero compiler changes and that cycle counts follow the
// described datapaths.
//
// It is also the DSE harness (ROADMAP item 5): --json <path> runs the full
// src/dse exploration loop over the nine-kernel corpus and writes
// BENCH_dse.json — the best auto-designed ISA's per-kernel cycles vs the
// scalar baseline plus the dspx reference block — which tools/check_perf.py
// gates in CI (ctest perf_dse_regression).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "driver/report.hpp"
#include "dse/dse.hpp"

namespace {

using namespace mat2c;

const char* kCustomIsaText = R"(
# "vecstar" — a hypothetical licensed vector DSP, described textually.
name vecstar
simd f64 4
simd c64 2
memlanes 4
feature fma
feature cmul
feature cmac
feature zol
feature agu
cost cmul.c64 2
intrinsic vfma.f64 vs_mac4d
intrinsic vld.f64 vs_load4d
intrinsic vst.f64 vs_store4d
intrinsic vcmul.c64 vs_cxmul2
)";

isa::IsaDescription customIsa() {
  DiagnosticEngine diags;
  auto d = isa::IsaDescription::parse(kCustomIsaText, diags);
  if (diags.hasErrors()) std::fprintf(stderr, "%s", diags.renderAll().c_str());
  return d;
}

int countOccurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

void printTable() {
  std::printf("\n=== Retargeting: one MATLAB source, four ISA descriptions ===\n\n");
  report::Table table({"kernel", "target", "f64xW", "c64xW", "cycles", "speedup vs scalar",
                       "intrinsic calls in C"});
  Compiler compiler;
  for (const char* kernel : {"fir", "fdeq"}) {
    auto k = kernels::kernelByName(kernel);
    double scalarCycles = 0;
    for (int t = 0; t < 4; ++t) {
      CompileOptions opts;
      std::string label;
      if (t == 0) {
        opts = CompileOptions::proposed("scalar");
        label = "scalar";
      } else if (t == 1) {
        opts = CompileOptions::proposed("dspx_w4");
        label = "dspx_w4";
      } else if (t == 2) {
        opts = CompileOptions::proposed("dspx");
        label = "dspx";
      } else {
        opts = CompileOptions::proposed();
        opts.isa = customIsa();
        label = "vecstar (textual)";
      }
      auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs, opts);
      if (validateAgainstInterpreter(k.source, k.entry, unit, k.args) > 1e-9) {
        std::fprintf(stderr, "VALIDATION FAILED: %s on %s\n", kernel, label.c_str());
      }
      double cycles = unit.run(k.args).cycles.total;
      if (t == 0) scalarCycles = cycles;
      codegen::EmitOptions body;
      body.embedRuntime = false;
      std::string c = unit.cCode(body);
      int intrinsics = countOccurrences(c, opts.isa.name() + "_") +
                       countOccurrences(c, "vs_");
      table.addRow({t == 0 ? k.name : "", label, std::to_string(opts.isa.lanesF64()),
                    std::to_string(opts.isa.lanesC64()), report::Table::cycles(cycles),
                    report::Table::num(scalarCycles / cycles, 1) + "x",
                    std::to_string(intrinsics)});
    }
  }
  std::printf("%s\n", table.toString().c_str());

  // Show a slice of the emitted C for the textual target, proving the
  // intrinsic vocabulary follows the description.
  auto k = kernels::kernelByName("fir");
  CompileOptions opts;
  opts.isa = customIsa();
  auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs, opts);
  codegen::EmitOptions body;
  body.embedRuntime = false;
  std::string c = unit.cCode(body);
  std::printf("--- fir inner loop emitted for 'vecstar' (textual description) ---\n");
  std::size_t pos = c.find("vs_mac4d");
  if (pos != std::string::npos) {
    std::size_t start = c.rfind('\n', c.rfind('\n', pos) - 1) + 1;
    std::size_t stop = c.find('\n', c.find('\n', pos) + 1);
    std::printf("%s\n\n", c.substr(start, stop - start).c_str());
  }
}

void BM_Retarget(benchmark::State& state, std::string label) {
  auto k = kernels::kernelByName("fir");
  Compiler compiler;
  CompileOptions opts;
  if (label == "vecstar") {
    opts.isa = customIsa();
  } else {
    opts = CompileOptions::proposed(label);
  }
  auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs, opts);
  double cycles = 0;
  for (auto _ : state) {
    auto r = unit.run(k.args);
    cycles = r.cycles.total;
    benchmark::DoNotOptimize(r.outputs.data());
  }
  state.counters["asip_cycles"] = cycles;
}

/// Runs the src/dse exploration loop over the nine-kernel corpus and writes
/// the BENCH_dse.json regression baseline (schema mirrors BENCH_table1.json
/// plus the hw_cost / reference fields check_perf.py gates).
bool writeDseJson(const std::string& path) {
  try {
    dse::ExploreResult r = dse::explore(dse::ExploreOptions{});
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench_retarget: cannot write '%s'\n", path.c_str());
      return false;
    }
    out << dse::benchJson(r);
    std::fprintf(stderr,
                 "bench_retarget: wrote %s (auto ISA '%s': geomean %.2fx at hw %.0f; "
                 "dspx %.2fx at %.0f; %d points)\n",
                 path.c_str(), r.bestIsa.name().c_str(), r.best.geomean, r.best.hwCost,
                 r.dspxRef.geomean, r.dspxRef.hwCost, r.pointsEvaluated);
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_retarget: explore failed: %s\n", e.what());
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  // Strip --json <path> before google-benchmark sees the argument list.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  if (!jsonPath.empty() && !writeDseJson(jsonPath)) return 1;
  printTable();
  for (const char* t : {"scalar", "dspx", "vecstar"}) {
    benchmark::RegisterBenchmark(("retarget/fir/" + std::string(t)).c_str(), BM_Retarget,
                                 std::string(t));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
