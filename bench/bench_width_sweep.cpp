// Ablation A — SIMD width sweep.
//
// The paper's ISA description is parameterized; this harness retargets the
// compiler across SIMD widths (1/2/4/8/16 f64 lanes) and reports the speedup
// of every benchmark over the CoderLike baseline at each width. Expected
// shape: monotone gains with diminishing returns once the memory port
// saturates (8-lane port on dspx); recurrence-bound kernels stay flat.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "driver/report.hpp"

namespace {

using namespace mat2c;

const std::vector<std::string>& widths() {
  static const std::vector<std::string> w = {"dspx_novec", "dspx_w2", "dspx_w4", "dspx",
                                             "dspx_w16"};
  return w;
}

double speedupFor(const kernels::KernelSpec& k, const std::string& isaName) {
  Compiler compiler;
  auto prop = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::proposed(isaName));
  auto base = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::coderLike(isaName));
  if (validateAgainstInterpreter(k.source, k.entry, prop, k.args) > 1e-9) {
    std::fprintf(stderr, "VALIDATION FAILED: %s on %s\n", k.name.c_str(), isaName.c_str());
  }
  return base.run(k.args).cycles.total / prop.run(k.args).cycles.total;
}

void printTable() {
  std::printf("\n=== Ablation A: speedup vs SIMD width (proposed vs CoderLike baseline) "
              "===\n");
  std::printf("    columns = f64 lanes (c64 lanes are half); dspx memory port is 8 "
              "f64/cycle\n\n");
  report::Table table({"benchmark", "W=1", "W=2", "W=4", "W=8", "W=16"});
  for (auto& k : kernels::dspBenchmarkSuite()) {
    std::vector<std::string> row{k.name};
    for (const auto& isaName : widths()) {
      row.push_back(report::Table::num(speedupFor(k, isaName), 1) + "x");
    }
    table.addRow(std::move(row));
  }
  std::printf("%s\n", table.toString().c_str());
}

void BM_Width(benchmark::State& state, std::string isaName, std::string kernelName) {
  auto k = kernels::kernelByName(kernelName);
  Compiler compiler;
  auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::proposed(isaName));
  double cycles = 0;
  for (auto _ : state) {
    auto r = unit.run(k.args);
    cycles = r.cycles.total;
    benchmark::DoNotOptimize(r.outputs.data());
  }
  state.counters["asip_cycles"] = cycles;
}

}  // namespace

int main(int argc, char** argv) {
  printTable();
  for (const char* kernel : {"fir", "fdeq"}) {
    for (const auto& isaName : widths()) {
      benchmark::RegisterBenchmark(("width/" + std::string(kernel) + "/" + isaName).c_str(),
                                   BM_Width, isaName, kernel);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
