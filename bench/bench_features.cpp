// Ablation B — which custom instructions matter where.
//
// The paper's ASIP exposes two families of custom instructions: SIMD
// processing and complex arithmetic. This harness toggles them
// independently and reports per-benchmark speedups, isolating each family's
// contribution: complex kernels (cdot, fdeq) collapse without cmul/cmac;
// real kernels (fir, matmul) collapse without SIMD; iir barely moves.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "driver/report.hpp"

namespace {

using namespace mat2c;

struct Config {
  const char* label;
  const char* isaName;
};

const std::vector<Config>& configs() {
  static const std::vector<Config> c = {
      {"full dspx (SIMD + complex unit + MAC)", "dspx"},
      {"no complex unit (SIMD only)", "dspx_nocomplex"},
      {"no SIMD (scalar custom instructions only)", "dspx_novec"},
  };
  return c;
}

double speedupFor(const kernels::KernelSpec& k, const std::string& isaName) {
  Compiler compiler;
  auto prop = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::proposed(isaName));
  // Fixed baseline: CoderLike on the full dspx (what the paper compares to).
  auto base = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::coderLike("dspx"));
  if (validateAgainstInterpreter(k.source, k.entry, prop, k.args) > 1e-9) {
    std::fprintf(stderr, "VALIDATION FAILED: %s on %s\n", k.name.c_str(), isaName.c_str());
  }
  return base.run(k.args).cycles.total / prop.run(k.args).cycles.total;
}

void printPassTimes();

void printTable() {
  std::printf("\n=== Ablation B: contribution of the custom-instruction families ===\n");
  std::printf("    speedup of proposed code over the CoderLike baseline on full dspx\n\n");
  report::Table table({"benchmark", "full dspx", "no complex unit", "no SIMD"});
  for (auto& k : kernels::dspBenchmarkSuite()) {
    std::vector<std::string> row{k.name};
    for (const auto& cfg : configs()) {
      row.push_back(report::Table::num(speedupFor(k, cfg.isaName), 1) + "x");
    }
    table.addRow(std::move(row));
  }
  std::printf("%s\n", table.toString().c_str());
  printPassTimes();
}

/// Per-pass compile time on the full dspx target — attributes compile-time
/// regressions to a pass, complementing the cycle-count ablation above.
void printPassTimes() {
  std::printf("=== Per-pass compile time on full dspx (ms) ===\n\n");
  Compiler compiler;
  std::vector<std::string> names;
  std::vector<opt::PipelineReport> reports;
  for (auto& k : kernels::dspBenchmarkSuite()) {
    names.push_back(k.name);
    reports.push_back(compiler
                          .compileSource(k.source, k.entry, k.argSpecs,
                                         CompileOptions::proposed("dspx"))
                          .optimizationReport());
  }
  std::vector<std::string> headers{"benchmark"};
  for (const auto& p : reports.front().passes) headers.push_back(p.name);
  headers.push_back("total");
  report::Table table(headers);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    std::vector<std::string> cells{names[i]};
    for (const auto& p : reports[i].passes) cells.push_back(report::Table::num(p.millis, 3));
    cells.push_back(report::Table::num(reports[i].totalMillis, 3));
    table.addRow(std::move(cells));
  }
  std::printf("%s\n", table.toString().c_str());
}

void BM_Feature(benchmark::State& state, std::string isaName, std::string kernelName) {
  auto k = kernels::kernelByName(kernelName);
  Compiler compiler;
  auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::proposed(isaName));
  double cycles = 0;
  for (auto _ : state) {
    auto r = unit.run(k.args);
    cycles = r.cycles.total;
    benchmark::DoNotOptimize(r.outputs.data());
  }
  state.counters["asip_cycles"] = cycles;
}

}  // namespace

int main(int argc, char** argv) {
  printTable();
  for (const char* kernel : {"cdot", "fdeq", "fir"}) {
    for (const auto& cfg : configs()) {
      benchmark::RegisterBenchmark(
          ("features/" + std::string(kernel) + "/" + cfg.isaName).c_str(), BM_Feature,
          std::string(cfg.isaName), std::string(kernel));
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
