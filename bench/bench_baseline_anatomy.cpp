// Ablation C — where the MATLAB-Coder-style baseline loses its cycles.
//
// Decomposes the baseline's cycle count by cost category (arithmetic,
// memory, loop control, bounds checks, temporary materialization) and
// contrasts with the proposed code. This substantiates the substitution
// argument in DESIGN.md: the 2x-30x spread comes from scalar complex
// arithmetic, per-op temporaries + checks, and unexploited SIMD — exactly
// the mechanisms the proposed compiler removes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "driver/report.hpp"

namespace {

using namespace mat2c;

double categoryOf(const vm::CycleStats& s, const char* cat) {
  auto it = s.byCategory.find(cat);
  return it == s.byCategory.end() ? 0.0 : it->second;
}

void printTable() {
  std::printf("\n=== Ablation C: baseline cycle anatomy (dspx ASIP) ===\n");
  std::printf("    per-benchmark cycles split by cost category; proposed total for "
              "contrast\n\n");
  report::Table table({"benchmark", "style", "total", "arith", "memory", "loop", "checks",
                       "allocs"});
  Compiler compiler;
  for (auto& k : kernels::dspBenchmarkSuite()) {
    auto base = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                       CompileOptions::coderLike());
    auto prop = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                       CompileOptions::proposed());
    for (bool proposed : {false, true}) {
      auto r = (proposed ? prop : base).run(k.args);
      table.addRow({proposed ? "" : k.name, proposed ? "proposed" : "coder",
                    report::Table::cycles(r.cycles.total),
                    report::Table::cycles(categoryOf(r.cycles, "arith")),
                    report::Table::cycles(categoryOf(r.cycles, "memory")),
                    report::Table::cycles(categoryOf(r.cycles, "loop")),
                    report::Table::cycles(categoryOf(r.cycles, "check")),
                    report::Table::cycles(categoryOf(r.cycles, "alloc"))});
    }
  }
  std::printf("%s\n", table.toString().c_str());

  // Second view: peel the baseline's mechanisms off one at a time with the
  // lowering toggles and attribute the gap to each (paper-style waterfall):
  //   baseline -> drop bounds checks -> fuse elementwise temps ->
  //   proposed (adds custom instructions + SIMD).
  std::printf("=== Baseline loss waterfall (share of the gap to proposed) ===\n\n");
  report::Table decomp({"benchmark", "gap (cycles)", "bounds checks",
                        "per-op temporaries", "intrinsics + SIMD"});
  for (auto& k : kernels::dspBenchmarkSuite()) {
    CompileOptions base = CompileOptions::coderLike();
    CompileOptions noChecks = CompileOptions::coderLike();
    noChecks.boundsChecks = false;
    CompileOptions fused = CompileOptions::coderLike();
    fused.boundsChecks = false;
    fused.fuseElementwise = true;
    CompileOptions prop = CompileOptions::proposed();

    auto cyclesOf = [&](const CompileOptions& o) {
      auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs, o);
      return unit.run(k.args).cycles.total;
    };
    double c0 = cyclesOf(base);
    double c1 = cyclesOf(noChecks);
    double c2 = cyclesOf(fused);
    double c3 = cyclesOf(prop);
    double gap = c0 - c3;
    auto pct = [&](double v) { return report::Table::num(100.0 * v / gap, 0) + "%"; };
    decomp.addRow({k.name, report::Table::cycles(gap), pct(c0 - c1), pct(c1 - c2),
                   pct(c2 - c3)});
  }
  std::printf("%s\n", decomp.toString().c_str());

  // Third view: the static-shape payoff. Even *keeping* the Coder-style
  // runtime, the specializing front end can prove most checks dead
  // (eliminateProvableChecks) — something a dynamic-shape runtime cannot do.
  std::printf("=== Static-shape payoff: provable bounds-check elimination on the "
              "baseline ===\n\n");
  report::Table ce({"benchmark", "baseline cycles", "after check-elim", "checks removed",
                    "residual checks"});
  for (auto& k : kernels::dspBenchmarkSuite()) {
    CompileOptions plain = CompileOptions::coderLike();
    CompileOptions elided = CompileOptions::coderLike();
    elided.checkElim = true;
    auto a = compiler.compileSource(k.source, k.entry, k.argSpecs, plain);
    auto b = compiler.compileSource(k.source, k.entry, k.argSpecs, elided);
    auto ra = a.run(k.args);
    auto rb = b.run(k.args);
    double residual = 0;
    if (auto it = rb.cycles.byCategory.find("check"); it != rb.cycles.byCategory.end()) {
      residual = it->second;
    }
    ce.addRow({k.name, report::Table::cycles(ra.cycles.total),
               report::Table::cycles(rb.cycles.total),
               std::to_string(b.optimizationReport().checksRemoved),
               report::Table::cycles(residual)});
  }
  std::printf("%s\n", ce.toString().c_str());
}

void BM_Anatomy(benchmark::State& state, std::string kernelName) {
  auto k = kernels::kernelByName(kernelName);
  Compiler compiler;
  auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::coderLike());
  for (auto _ : state) {
    auto r = unit.run(k.args);
    benchmark::DoNotOptimize(r.cycles.total);
  }
}

}  // namespace

int main(int argc, char** argv) {
  printTable();
  benchmark::RegisterBenchmark("anatomy/fir_baseline", BM_Anatomy, std::string("fir"));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
