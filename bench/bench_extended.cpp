// Extended corpus — kernels from the authors' journal follow-up
// ("A MATLAB Vectorizing Compiler Targeting Application-Specific Instruction
//  Set Processors", 2017) plus the 5G/comms expansion (ROADMAP item 3):
// sliding cross-correlation, blockwise DCT-II, windowed frame power, the
// loop-style radix-2 FFT, QR and Cholesky factorizations, and a fused OFDM
// uplink chain built on the compiled fft builtin. Exercises the
// dynamic-start slice path, integer index-alias tracking, nested-loop
// declaration sinking, triangular loop nests and the c64 transform path
// that the six headline kernels do not cover.
//
// `--json <path>` writes the same machine-readable schema as bench_table1
// (per-kernel cycles, speedups, geomean) so tools/check_perf.py can gate the
// extended corpus against BENCH_extended.json.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "driver/report.hpp"

namespace {

using namespace mat2c;

struct Row {
  kernels::KernelSpec spec;
  CompiledUnit proposed;
  CompiledUnit baseline;
};

std::vector<Row>& rows() {
  static std::vector<Row> r = [] {
    std::vector<Row> out;
    Compiler compiler;
    for (auto& k : kernels::extendedKernelSuite()) {
      auto prop = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                         CompileOptions::proposed());
      auto base = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                         CompileOptions::coderLike());
      out.push_back(Row{std::move(k), std::move(prop), std::move(base)});
    }
    return out;
  }();
  return r;
}

void printTable() {
  std::printf("\n=== Extended kernels: proposed vs CoderLike baseline (dspx) ===\n\n");
  report::Table table({"kernel", "description", "baseline cycles", "proposed cycles",
                       "speedup", "max |err|", "vectorized loops"});
  for (auto& row : rows()) {
    double err = std::max(
        validateAgainstInterpreter(row.spec.source, row.spec.entry, row.proposed,
                                   row.spec.args),
        validateAgainstInterpreter(row.spec.source, row.spec.entry, row.baseline,
                                   row.spec.args));
    auto rp = row.proposed.run(row.spec.args);
    auto rb = row.baseline.run(row.spec.args);
    table.addRow({row.spec.name, row.spec.title, report::Table::cycles(rb.cycles.total),
                  report::Table::cycles(rp.cycles.total),
                  report::Table::num(rb.cycles.total / rp.cycles.total, 1) + "x",
                  report::Table::num(err, 15),
                  std::to_string(row.proposed.optimizationReport().vec.loopsVectorized)});
  }
  std::printf("%s\n", table.toString().c_str());
}

/// Writes the extended-corpus numbers as JSON for the perf-regression gate
/// (same schema as bench_table1).
bool writeJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_extended: cannot write '%s'\n", path.c_str());
    return false;
  }
  double logSum = 0.0;
  std::string kernelsJson;
  for (auto& row : rows()) {
    auto rp = row.proposed.run(row.spec.args);
    auto rb = row.baseline.run(row.spec.args);
    double speedup = rb.cycles.total / rp.cycles.total;
    logSum += std::log(speedup);
    double err = validateAgainstInterpreter(row.spec.source, row.spec.entry, row.proposed,
                                            row.spec.args);
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    \"%s\": {\"baseline_cycles\": %.0f, \"proposed_cycles\": %.0f, "
                  "\"speedup\": %.4f, \"max_abs_err\": %.3e},\n",
                  row.spec.name.c_str(), rb.cycles.total, rp.cycles.total, speedup, err);
    kernelsJson += buf;
  }
  if (!kernelsJson.empty()) kernelsJson.erase(kernelsJson.size() - 2, 1);  // drop last comma
  double geomean = std::exp(logSum / static_cast<double>(rows().size()));
  out << "{\n  \"bench\": \"extended\",\n  \"isa\": \"dspx\",\n  \"kernels\": {\n"
      << kernelsJson << "  },\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", geomean);
  out << "  \"geomean_speedup\": " << buf << "\n}\n";
  std::fprintf(stderr, "bench_extended: wrote %s (geomean %.2fx)\n", path.c_str(), geomean);
  return true;
}

void BM_Extended(benchmark::State& state, std::size_t idx, bool proposed) {
  Row& row = rows()[idx];
  const CompiledUnit& unit = proposed ? row.proposed : row.baseline;
  double cycles = 0;
  for (auto _ : state) {
    auto r = unit.run(row.spec.args);
    cycles = r.cycles.total;
    benchmark::DoNotOptimize(r.outputs.data());
  }
  state.counters["asip_cycles"] = cycles;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  // Strip --json <path> before google-benchmark sees the argument list.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  printTable();
  if (!jsonPath.empty() && !writeJson(jsonPath)) return 1;
  for (std::size_t i = 0; i < rows().size(); ++i) {
    benchmark::RegisterBenchmark(("extended/" + rows()[i].spec.name + "/proposed").c_str(),
                                 BM_Extended, i, true);
    benchmark::RegisterBenchmark(("extended/" + rows()[i].spec.name + "/coder").c_str(),
                                 BM_Extended, i, false);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
