// Extended corpus — kernels from the authors' journal follow-up
// ("A MATLAB Vectorizing Compiler Targeting Application-Specific Instruction
//  Set Processors", 2017): sliding cross-correlation, blockwise DCT-II and
// windowed frame power. Exercises the dynamic-start slice path, integer
// index-alias tracking (base = (j-1)*8 temporaries) and nested-loop
// declaration sinking that the six headline kernels do not cover.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "driver/report.hpp"

namespace {

using namespace mat2c;

void printTable() {
  std::printf("\n=== Extended kernels: proposed vs CoderLike baseline (dspx) ===\n\n");
  report::Table table({"kernel", "description", "baseline cycles", "proposed cycles",
                       "speedup", "max |err|", "vectorized loops"});
  Compiler compiler;
  for (auto& k : kernels::extendedKernelSuite()) {
    auto prop = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                       CompileOptions::proposed());
    auto base = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                       CompileOptions::coderLike());
    double err = std::max(validateAgainstInterpreter(k.source, k.entry, prop, k.args),
                          validateAgainstInterpreter(k.source, k.entry, base, k.args));
    auto rp = prop.run(k.args);
    auto rb = base.run(k.args);
    table.addRow({k.name, k.title, report::Table::cycles(rb.cycles.total),
                  report::Table::cycles(rp.cycles.total),
                  report::Table::num(rb.cycles.total / rp.cycles.total, 1) + "x",
                  report::Table::num(err, 15),
                  std::to_string(prop.optimizationReport().vec.loopsVectorized)});
  }
  std::printf("%s\n", table.toString().c_str());
}

void BM_Extended(benchmark::State& state, std::string name, bool proposed) {
  auto k = kernels::kernelByName(name);
  Compiler compiler;
  auto unit = compiler.compileSource(
      k.source, k.entry, k.argSpecs,
      proposed ? CompileOptions::proposed() : CompileOptions::coderLike());
  double cycles = 0;
  for (auto _ : state) {
    auto r = unit.run(k.args);
    cycles = r.cycles.total;
    benchmark::DoNotOptimize(r.outputs.data());
  }
  state.counters["asip_cycles"] = cycles;
}

}  // namespace

int main(int argc, char** argv) {
  printTable();
  for (const char* name : {"xcorr", "blockdct", "framepow"}) {
    benchmark::RegisterBenchmark(("extended/" + std::string(name) + "/proposed").c_str(),
                                 BM_Extended, std::string(name), true);
    benchmark::RegisterBenchmark(("extended/" + std::string(name) + "/coder").c_str(),
                                 BM_Extended, std::string(name), false);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
