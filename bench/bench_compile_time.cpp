// Compile-time harness — the paper's development-cost claim.
//
// "The proposed compiler can be employed to reduce the development
//  time/effort/cost ... by raising the abstraction of application design."
//
// The quantitative slice we can measure: compiler throughput (MATLAB source
// -> optimized LIR -> C text) per kernel and per pipeline stage, plus the
// LoC leverage of MATLAB over the generated C.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "driver/report.hpp"
#include "parser/parser.hpp"

namespace {

using namespace mat2c;

int lineCount(const std::string& text) {
  int n = 0;
  for (char c : text) {
    if (c == '\n') ++n;
  }
  return n;
}

void printTable() {
  std::printf("\n=== Compiler throughput and abstraction leverage ===\n\n");
  report::Table table({"benchmark", "MATLAB LoC", "generated C LoC (kernel)",
                       "leverage", "intrinsic call sites"});
  Compiler compiler;
  for (auto& k : kernels::dspBenchmarkSuite()) {
    auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                       CompileOptions::proposed());
    codegen::EmitOptions body;
    body.embedRuntime = false;
    std::string c = unit.cCode(body);
    int mloc = lineCount(k.source);
    int cloc = lineCount(c);
    int intrinsics = 0;
    for (std::size_t pos = c.find("dspx_"); pos != std::string::npos;
         pos = c.find("dspx_", pos + 1)) {
      ++intrinsics;
    }
    table.addRow({k.name, std::to_string(mloc), std::to_string(cloc),
                  report::Table::num(static_cast<double>(cloc) / mloc, 1) + "x",
                  std::to_string(intrinsics)});
  }
  std::printf("%s\n", table.toString().c_str());
}

void BM_ParseOnly(benchmark::State& state, std::string name) {
  auto k = kernels::kernelByName(name);
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto prog = parseSource(k.source, diags);
    benchmark::DoNotOptimize(prog.get());
  }
}

void BM_FullCompile(benchmark::State& state, std::string name, bool proposed) {
  auto k = kernels::kernelByName(name);
  Compiler compiler;
  CompileOptions opts = proposed ? CompileOptions::proposed() : CompileOptions::coderLike();
  for (auto _ : state) {
    auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs, opts);
    benchmark::DoNotOptimize(unit.fn().body.size());
  }
}

void BM_EmitC(benchmark::State& state, std::string name) {
  auto k = kernels::kernelByName(name);
  Compiler compiler;
  auto unit = compiler.compileSource(k.source, k.entry, k.argSpecs,
                                     CompileOptions::proposed());
  for (auto _ : state) {
    std::string c = unit.cCode();
    benchmark::DoNotOptimize(c.data());
  }
}

}  // namespace

int main(int argc, char** argv) {
  printTable();
  for (const char* name : {"fir", "iir", "matmul", "cdot", "fdeq", "fmdemod"}) {
    benchmark::RegisterBenchmark(("compile/parse/" + std::string(name)).c_str(),
                                 BM_ParseOnly, std::string(name));
    benchmark::RegisterBenchmark(("compile/full_proposed/" + std::string(name)).c_str(),
                                 BM_FullCompile, std::string(name), true);
    benchmark::RegisterBenchmark(("compile/full_coder/" + std::string(name)).c_str(),
                                 BM_FullCompile, std::string(name), false);
    benchmark::RegisterBenchmark(("compile/emit_c/" + std::string(name)).c_str(), BM_EmitC,
                                 std::string(name));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
