// Compilation-service throughput: cold vs. warm cache, and worker scaling.
//
// The north-star workload is a compile farm doing design-space exploration:
// the same kernels recompiled against many ISA variants, with heavy repeat
// traffic. Two questions matter there:
//   1. what does the content-addressed cache buy on repeated requests
//      (warm / cold throughput ratio — the summary table below), and
//   2. how does cold-compile throughput scale with worker threads
//      (service/cold_batch/threads:N).
//
// --json <path> writes BENCH_service.json, the serve-plane regression
// baseline: warm-hit and warm-restart (artifact-store-backed) latency per
// request, JSON vs. binary framing cost, and the sustained warm throughput
// that backs the 10k req/s exit criterion. The measurement hard-fails (exit
// 1) if warm throughput drops below 10k req/s, if a warm restart compiles
// anything (the store must answer every request), or if store-backed warm
// throughput falls below half of in-memory warm.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "driver/report.hpp"
#include "service/compile_service.hpp"
#include "service/protocol.hpp"

namespace {

using namespace mat2c;
using service::CompileRequest;
using service::CompileService;

/// Distinct FIR-like kernels (the varying constant defeats the cache) — each
/// one vectorizes and triggers the MAC idiom, so a cold compile runs the full
/// pipeline.
CompileRequest kernelRequest(int variant) {
  CompileRequest r;
  r.id = "k" + std::to_string(variant);
  r.source = "function y = f(x, h)\n"
             "y = 0;\n"
             "for k = 1:length(x)\n"
             "  y = y + x(k) * h(k) * " + std::to_string(variant + 1) + ";\n"
             "end\n"
             "end\n";
  r.entry = "f";
  r.args = {sema::ArgSpec::row(64), sema::ArgSpec::row(64)};
  r.options = CompileOptions::proposed();
  return r;
}

std::vector<CompileRequest> repeatedWorkload(int distinct, int repeats) {
  std::vector<CompileRequest> batch;
  batch.reserve(static_cast<std::size_t>(distinct) * repeats);
  for (int rep = 0; rep < repeats; ++rep) {
    for (int k = 0; k < distinct; ++k) batch.push_back(kernelRequest(k));
  }
  return batch;
}

/// The acceptance measurement: one repeated-request workload served by a
/// cache-disabled service (every request compiles) and by a pre-warmed
/// cached service (every request hits). Printed before the benchmarks run.
void printColdVsWarmTable() {
  constexpr int kDistinct = 8;
  constexpr int kRepeats = 16;
  std::printf("\n=== Compile service: cold vs. warm cache "
              "(%d distinct kernels x %d repeats, 4 threads) ===\n\n",
              kDistinct, kRepeats);

  auto run = [&](std::size_t cacheEntries, bool prewarm) {
    CompileService::Config config;
    config.threads = 4;
    config.cacheEntries = cacheEntries;
    CompileService svc(config);
    if (prewarm) svc.compileBatch(repeatedWorkload(kDistinct, 1));
    auto batch = repeatedWorkload(kDistinct, kRepeats);
    auto t0 = std::chrono::steady_clock::now();
    auto responses = svc.compileBatch(std::move(batch));
    double millis =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    for (const auto& r : responses) {
      if (!r.ok) {
        std::fprintf(stderr, "bench_service: compile failed: %s\n", r.error.c_str());
        std::exit(1);
      }
    }
    return std::pair<double, service::ServiceStats>(
        1000.0 * static_cast<double>(responses.size()) / millis, svc.stats());
  };

  auto [coldRps, coldStats] = run(/*cacheEntries=*/0, /*prewarm=*/false);
  auto [warmRps, warmStats] = run(/*cacheEntries=*/256, /*prewarm=*/true);

  report::Table table({"configuration", "req/s", "compiles", "cache hits", "dedup joins"});
  table.addRow({"cold (cache off)", report::Table::num(coldRps, 0),
                std::to_string(coldStats.compiles), std::to_string(coldStats.cacheHits),
                std::to_string(coldStats.dedupJoins)});
  table.addRow({"warm (pre-warmed)", report::Table::num(warmRps, 0),
                std::to_string(warmStats.compiles - kDistinct),  // minus the untimed warm-up
                std::to_string(warmStats.cacheHits), std::to_string(warmStats.dedupJoins)});
  std::printf("%s\nwarm/cold throughput ratio: %.1fx\n\n", table.toString().c_str(),
              warmRps / coldRps);
}

/// Cold-compile scaling: every request is distinct, so throughput is bounded
/// by the worker pool. threads = state.range(0).
void BM_ColdBatch(benchmark::State& state) {
  constexpr int kBatch = 32;
  int round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    CompileService::Config config;
    config.threads = static_cast<std::size_t>(state.range(0));
    config.cacheEntries = 0;  // force every request through a compile
    auto svc = std::make_unique<CompileService>(config);
    // New variants every round so neither the service nor any lower layer
    // can learn across iterations.
    std::vector<CompileRequest> batch;
    for (int k = 0; k < kBatch; ++k) batch.push_back(kernelRequest(round * kBatch + k));
    ++round;
    state.ResumeTiming();

    auto responses = svc->compileBatch(std::move(batch));
    benchmark::DoNotOptimize(responses.data());

    state.PauseTiming();
    svc.reset();  // include no teardown in the next timed region
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

/// Warm-cache throughput on the repeated-request workload (all hits).
void BM_WarmBatch(benchmark::State& state) {
  constexpr int kBatch = 32;
  CompileService::Config config;
  config.threads = static_cast<std::size_t>(state.range(0));
  config.cacheEntries = 256;
  CompileService svc(config);
  svc.compileBatch(repeatedWorkload(kBatch, 1));  // warm
  for (auto _ : state) {
    auto responses = svc.compileBatch(repeatedWorkload(kBatch, 1));
    benchmark::DoNotOptimize(responses.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

/// Single-flight burst: N identical requests in flight at once — one
/// compile, N-1 joins (cache cleared each round via a fresh variant).
void BM_IdenticalBurst(benchmark::State& state) {
  constexpr int kBurst = 32;
  CompileService::Config config;
  config.threads = static_cast<std::size_t>(state.range(0));
  CompileService svc(config);
  int round = 0;
  for (auto _ : state) {
    CompileRequest base = kernelRequest(1000000 + round++);
    std::vector<std::future<service::CompileResponse>> futures;
    futures.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      CompileRequest r = base;
      r.id += "_" + std::to_string(i);
      futures.push_back(svc.submit(std::move(r)));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get().ok);
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
}

// --- serve-plane baseline (--json) -----------------------------------------

struct ServeMeasurement {
  double coldNsPerReq = 0;
  double warmNsPerReq = 0;
  double warmRps = 0;
  double restartNsPerReq = 0;
  double restartRps = 0;
  std::uint64_t restartCompiles = 0;
  service::LatencyStats warmLatency;
  double jsonFrameNs = 0;
  double binaryFrameNs = 0;
};

/// Timed batch through a service; returns ns/request.
double timedBatch(CompileService& svc, std::vector<CompileRequest> batch) {
  std::size_t n = batch.size();
  auto t0 = std::chrono::steady_clock::now();
  auto responses = svc.compileBatch(std::move(batch));
  double nanos =
      std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const auto& r : responses) {
    if (!r.ok) {
      std::fprintf(stderr, "bench_service: compile failed: %s\n", r.error.c_str());
      std::exit(1);
    }
  }
  return nanos / static_cast<double>(n);
}

/// Framing cost per request: parse one request + serialize one response, in
/// the JSON-lines encoding vs. the length-prefixed binary encoding. Measures
/// the protocol layer only — no compile, no service.
void measureFraming(ServeMeasurement& m) {
  constexpr int kIters = 20000;
  CompileRequest proto = kernelRequest(0);
  // JSON-lines: the request as clients send it (source newlines escaped).
  std::string escaped;
  for (char c : proto.source) {
    if (c == '\n') escaped += "\\n";
    else escaped += c;
  }
  std::string jsonLine = "{\"id\": \"k0\", \"source\": \"" + escaped +
                         "\", \"entry\": \"f\", \"args\": \"1x64,1x64\", "
                         "\"tenant\": \"bench\"}";
  service::CompileResponse resp;
  resp.id = "k0";
  resp.ok = true;
  resp.cacheHit = true;
  resp.millis = 0.01;
  resp.result = std::make_shared<service::CachedResult>(
      std::string(2048, 'c'), service::CachedResult::Meta{"dspx", 1, 2, {}},
      std::string(), 0, 0.0, 0.0);

  service::ProtocolLimits limits;
  auto time = [&](auto&& body) {
    auto t0 = std::chrono::steady_clock::now();
    std::size_t sink = 0;
    for (int i = 0; i < kIters; ++i) sink += body();
    benchmark::DoNotOptimize(sink);
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0)
               .count() /
           kIters;
  };

  m.jsonFrameNs = time([&]() -> std::size_t {
    CompileRequest req;
    std::string error;
    if (!service::parseCompileRequest(jsonLine, req, error, nullptr, limits)) {
      std::fprintf(stderr, "bench_service: framing json parse failed: %s\n", error.c_str());
      std::exit(1);
    }
    return req.source.size() + service::responseJson(resp).size();
  });

  service::WireRequest wire;
  wire.id = "k0";
  wire.source = proto.source;
  wire.entry = "f";
  wire.args = "1x64,1x64";
  wire.tenant = "bench";
  std::string reqFrame =
      service::encodeFrame(service::FrameType::Request, service::encodeBinaryRequest(wire));
  m.binaryFrameNs = time([&]() -> std::size_t {
    // Decode through the same path the CLI uses: frame header + payload.
    service::WireRequest decoded;
    std::string error;
    if (!service::decodeBinaryRequest(
            std::string_view(reqFrame).substr(service::kFrameHeaderBytes), decoded, error)) {
      std::fprintf(stderr, "bench_service: framing binary decode failed: %s\n",
                   error.c_str());
      std::exit(1);
    }
    return decoded.source.size() +
           service::encodeFrame(service::FrameType::Response,
                                service::encodeBinaryResponse(resp))
               .size();
  });
}

ServeMeasurement measureServePlane() {
  constexpr int kDistinct = 8;
  constexpr int kWarmRepeats = 2000;  // 16k warm requests per timed run
  constexpr std::size_t kThreads = 4;
  ServeMeasurement m;

  // Cold: every request a distinct compile, cache off.
  {
    CompileService::Config config;
    config.threads = kThreads;
    config.cacheEntries = 0;
    CompileService svc(config);
    std::vector<CompileRequest> batch;
    for (int k = 0; k < 32; ++k) batch.push_back(kernelRequest(k));
    m.coldNsPerReq = timedBatch(svc, std::move(batch));
  }

  std::filesystem::path storeDir =
      std::filesystem::temp_directory_path() /
      ("mat2c_bench_store." + std::to_string(static_cast<unsigned>(::getpid())));
  std::filesystem::remove_all(storeDir);

  // Warm in-memory: pre-warmed cache, every request a hit. The store is
  // attached so this run also populates it for the restart measurement
  // (writes are behind the response path, so they do not distort timing
  // materially at this batch size).
  {
    CompileService::Config config;
    config.threads = kThreads;
    config.cacheEntries = 256;
    config.storeDir = storeDir.string();
    CompileService svc(config);
    svc.compileBatch(repeatedWorkload(kDistinct, 1));  // warm + populate store
    m.warmNsPerReq = timedBatch(svc, repeatedWorkload(kDistinct, kWarmRepeats));
    m.warmRps = 1e9 / m.warmNsPerReq;
    m.warmLatency = svc.stats().latency;
  }

  // Warm restart: a fresh service, empty memory cache, same store directory.
  // Every distinct kernel must come back from disk — zero compiles.
  {
    CompileService::Config config;
    config.threads = kThreads;
    config.cacheEntries = 256;
    config.storeDir = storeDir.string();
    CompileService svc(config);
    m.restartNsPerReq = timedBatch(svc, repeatedWorkload(kDistinct, kWarmRepeats));
    m.restartRps = 1e9 / m.restartNsPerReq;
    m.restartCompiles = svc.stats().compiles;
  }
  std::filesystem::remove_all(storeDir);

  measureFraming(m);
  return m;
}

int writeServeJson(const std::string& path) {
  ServeMeasurement m = measureServePlane();

  // Exit criteria, enforced here so the perf gate inherits them: warm
  // sustained throughput >= 10k req/s; a warm restart never compiles; the
  // store-backed warm path stays within 2x of in-memory warm.
  bool ok = true;
  if (m.warmRps < 10000.0) {
    std::fprintf(stderr, "bench_service: FAIL warm throughput %.0f req/s < 10000\n",
                 m.warmRps);
    ok = false;
  }
  if (m.restartCompiles != 0) {
    std::fprintf(stderr,
                 "bench_service: FAIL warm restart ran %llu compile(s); "
                 "the artifact store must answer every request\n",
                 static_cast<unsigned long long>(m.restartCompiles));
    ok = false;
  }
  if (m.restartNsPerReq > 2.0 * m.warmNsPerReq) {
    std::fprintf(stderr,
                 "bench_service: FAIL warm restart %.0f ns/req exceeds 2x "
                 "in-memory warm %.0f ns/req\n",
                 m.restartNsPerReq, m.warmNsPerReq);
    ok = false;
  }
  if (!ok) return 1;

  double warmSpeedup = m.coldNsPerReq / m.warmNsPerReq;
  double restartSpeedup = m.coldNsPerReq / m.restartNsPerReq;
  double framingSpeedup = m.jsonFrameNs / m.binaryFrameNs;
  double geomean = std::cbrt(warmSpeedup * restartSpeedup * framingSpeedup);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_service: cannot write '%s'\n", path.c_str());
    return 1;
  }
  char buf[512];
  out << "{\n  \"bench\": \"service\",\n  \"threads\": 4,\n  \"kernels\": {\n";
  std::snprintf(buf, sizeof buf,
                "    \"framing\": {\"baseline_cycles\": %.0f, \"proposed_cycles\": %.0f, "
                "\"speedup\": %.4f, \"max_abs_err\": 0.0},\n",
                m.jsonFrameNs, m.binaryFrameNs, framingSpeedup);
  out << buf;
  std::snprintf(buf, sizeof buf,
                "    \"warm_hit\": {\"baseline_cycles\": %.0f, \"proposed_cycles\": %.0f, "
                "\"speedup\": %.4f, \"max_abs_err\": 0.0, \"rps\": %.0f, "
                "\"p50_millis\": %.4f, \"p99_millis\": %.4f},\n",
                m.coldNsPerReq, m.warmNsPerReq, warmSpeedup, m.warmRps,
                m.warmLatency.p50Millis, m.warmLatency.p99Millis);
  out << buf;
  std::snprintf(buf, sizeof buf,
                "    \"warm_restart\": {\"baseline_cycles\": %.0f, \"proposed_cycles\": "
                "%.0f, \"speedup\": %.4f, \"max_abs_err\": 0.0, \"rps\": %.0f, "
                "\"compiles\": %llu}\n",
                m.coldNsPerReq, m.restartNsPerReq, restartSpeedup, m.restartRps,
                static_cast<unsigned long long>(m.restartCompiles));
  out << buf;
  std::snprintf(buf, sizeof buf, "  },\n  \"geomean_speedup\": %.4f\n}\n", geomean);
  out << buf;
  std::fprintf(stderr,
               "bench_service: wrote %s (warm %.0f req/s, restart %.0f req/s, "
               "framing %.0f -> %.0f ns)\n",
               path.c_str(), m.warmRps, m.restartRps, m.jsonFrameNs, m.binaryFrameNs);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --json <path> before google-benchmark sees the argument list.
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[i + 1];
      for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  if (!jsonPath.empty()) {
    int rc = writeServeJson(jsonPath);
    if (rc != 0) return rc;
  }

  printColdVsWarmTable();
  for (int threads : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark("service/cold_batch", BM_ColdBatch)->Arg(threads)
        ->Unit(benchmark::kMillisecond)->UseRealTime();
    benchmark::RegisterBenchmark("service/warm_batch", BM_WarmBatch)->Arg(threads)
        ->Unit(benchmark::kMillisecond)->UseRealTime();
    benchmark::RegisterBenchmark("service/identical_burst", BM_IdenticalBurst)->Arg(threads)
        ->Unit(benchmark::kMillisecond)->UseRealTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
