// Compilation-service throughput: cold vs. warm cache, and worker scaling.
//
// The north-star workload is a compile farm doing design-space exploration:
// the same kernels recompiled against many ISA variants, with heavy repeat
// traffic. Two questions matter there:
//   1. what does the content-addressed cache buy on repeated requests
//      (warm / cold throughput ratio — the summary table below), and
//   2. how does cold-compile throughput scale with worker threads
//      (service/cold_batch/threads:N).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "driver/report.hpp"
#include "service/compile_service.hpp"

namespace {

using namespace mat2c;
using service::CompileRequest;
using service::CompileService;

/// Distinct FIR-like kernels (the varying constant defeats the cache) — each
/// one vectorizes and triggers the MAC idiom, so a cold compile runs the full
/// pipeline.
CompileRequest kernelRequest(int variant) {
  CompileRequest r;
  r.id = "k" + std::to_string(variant);
  r.source = "function y = f(x, h)\n"
             "y = 0;\n"
             "for k = 1:length(x)\n"
             "  y = y + x(k) * h(k) * " + std::to_string(variant + 1) + ";\n"
             "end\n"
             "end\n";
  r.entry = "f";
  r.args = {sema::ArgSpec::row(64), sema::ArgSpec::row(64)};
  r.options = CompileOptions::proposed();
  return r;
}

std::vector<CompileRequest> repeatedWorkload(int distinct, int repeats) {
  std::vector<CompileRequest> batch;
  batch.reserve(static_cast<std::size_t>(distinct) * repeats);
  for (int rep = 0; rep < repeats; ++rep) {
    for (int k = 0; k < distinct; ++k) batch.push_back(kernelRequest(k));
  }
  return batch;
}

/// The acceptance measurement: one repeated-request workload served by a
/// cache-disabled service (every request compiles) and by a pre-warmed
/// cached service (every request hits). Printed before the benchmarks run.
void printColdVsWarmTable() {
  constexpr int kDistinct = 8;
  constexpr int kRepeats = 16;
  std::printf("\n=== Compile service: cold vs. warm cache "
              "(%d distinct kernels x %d repeats, 4 threads) ===\n\n",
              kDistinct, kRepeats);

  auto run = [&](std::size_t cacheEntries, bool prewarm) {
    CompileService::Config config;
    config.threads = 4;
    config.cacheEntries = cacheEntries;
    CompileService svc(config);
    if (prewarm) svc.compileBatch(repeatedWorkload(kDistinct, 1));
    auto batch = repeatedWorkload(kDistinct, kRepeats);
    auto t0 = std::chrono::steady_clock::now();
    auto responses = svc.compileBatch(std::move(batch));
    double millis =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    for (const auto& r : responses) {
      if (!r.ok) {
        std::fprintf(stderr, "bench_service: compile failed: %s\n", r.error.c_str());
        std::exit(1);
      }
    }
    return std::pair<double, service::ServiceStats>(
        1000.0 * static_cast<double>(responses.size()) / millis, svc.stats());
  };

  auto [coldRps, coldStats] = run(/*cacheEntries=*/0, /*prewarm=*/false);
  auto [warmRps, warmStats] = run(/*cacheEntries=*/256, /*prewarm=*/true);

  report::Table table({"configuration", "req/s", "compiles", "cache hits", "dedup joins"});
  table.addRow({"cold (cache off)", report::Table::num(coldRps, 0),
                std::to_string(coldStats.compiles), std::to_string(coldStats.cacheHits),
                std::to_string(coldStats.dedupJoins)});
  table.addRow({"warm (pre-warmed)", report::Table::num(warmRps, 0),
                std::to_string(warmStats.compiles - kDistinct),  // minus the untimed warm-up
                std::to_string(warmStats.cacheHits), std::to_string(warmStats.dedupJoins)});
  std::printf("%s\nwarm/cold throughput ratio: %.1fx\n\n", table.toString().c_str(),
              warmRps / coldRps);
}

/// Cold-compile scaling: every request is distinct, so throughput is bounded
/// by the worker pool. threads = state.range(0).
void BM_ColdBatch(benchmark::State& state) {
  constexpr int kBatch = 32;
  int round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    CompileService::Config config;
    config.threads = static_cast<std::size_t>(state.range(0));
    config.cacheEntries = 0;  // force every request through a compile
    auto svc = std::make_unique<CompileService>(config);
    // New variants every round so neither the service nor any lower layer
    // can learn across iterations.
    std::vector<CompileRequest> batch;
    for (int k = 0; k < kBatch; ++k) batch.push_back(kernelRequest(round * kBatch + k));
    ++round;
    state.ResumeTiming();

    auto responses = svc->compileBatch(std::move(batch));
    benchmark::DoNotOptimize(responses.data());

    state.PauseTiming();
    svc.reset();  // include no teardown in the next timed region
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

/// Warm-cache throughput on the repeated-request workload (all hits).
void BM_WarmBatch(benchmark::State& state) {
  constexpr int kBatch = 32;
  CompileService::Config config;
  config.threads = static_cast<std::size_t>(state.range(0));
  config.cacheEntries = 256;
  CompileService svc(config);
  svc.compileBatch(repeatedWorkload(kBatch, 1));  // warm
  for (auto _ : state) {
    auto responses = svc.compileBatch(repeatedWorkload(kBatch, 1));
    benchmark::DoNotOptimize(responses.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

/// Single-flight burst: N identical requests in flight at once — one
/// compile, N-1 joins (cache cleared each round via a fresh variant).
void BM_IdenticalBurst(benchmark::State& state) {
  constexpr int kBurst = 32;
  CompileService::Config config;
  config.threads = static_cast<std::size_t>(state.range(0));
  CompileService svc(config);
  int round = 0;
  for (auto _ : state) {
    CompileRequest base = kernelRequest(1000000 + round++);
    std::vector<std::future<service::CompileResponse>> futures;
    futures.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      CompileRequest r = base;
      r.id += "_" + std::to_string(i);
      futures.push_back(svc.submit(std::move(r)));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get().ok);
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
}

}  // namespace

int main(int argc, char** argv) {
  printColdVsWarmTable();
  for (int threads : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark("service/cold_batch", BM_ColdBatch)->Arg(threads)
        ->Unit(benchmark::kMillisecond)->UseRealTime();
    benchmark::RegisterBenchmark("service/warm_batch", BM_WarmBatch)->Arg(threads)
        ->Unit(benchmark::kMillisecond)->UseRealTime();
    benchmark::RegisterBenchmark("service/identical_burst", BM_IdenticalBurst)->Arg(threads)
        ->Unit(benchmark::kMillisecond)->UseRealTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
