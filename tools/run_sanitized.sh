#!/bin/sh
# Sanitized sweep of the concurrency- and crash-heavy suites.
#
#   tools/run_sanitized.sh [thread|address] [ctest -L regex]
#
# Configures a separate build tree (build-san-<kind>) with MAT2C_SANITIZE set,
# builds it, and runs the labeled tests under the sanitizer:
#
#   thread  (default) — TSan over the service/chaos/robustness labels: the
#           CompileService worker pool, the shard supervisor's reader/monitor
#           threads, and the seeded chaos harness. Data races in the serve
#           plane show up here, not in production.
#   address — ASan+UBSan over the same labels (docs/robustness.md sweep).
#
# The label regex defaults to "chaos|robustness|service"; pass a second
# argument to narrow it (e.g. `tools/run_sanitized.sh thread chaos`).
set -eu

kind="${1:-thread}"
labels="${2:-chaos|robustness|service}"
case "$kind" in
  thread|address) ;;
  *) echo "usage: $0 [thread|address] [ctest -L regex]" >&2; exit 2 ;;
esac

root="$(cd "$(dirname "$0")/.." && pwd)"
build="$root/build-san-$kind"

cmake -B "$build" -S "$root" -DMAT2C_SANITIZE="$kind" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$(nproc 2>/dev/null || echo 2)"

# halt_on_error makes a sanitizer report a hard test failure instead of a
# log line scrolling past; second_deadlock_stack improves TSan lock reports.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=0}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}" \
  ctest --test-dir "$build" -L "$labels" --output-on-failure
echo "sanitized ($kind) sweep over -L '$labels': ok"
