#!/usr/bin/env python3
"""Reference client for the `mat2c serve --binary` wire protocol.

Implements the length-prefixed frame format documented in docs/service.md
independently of the C++ codec, so it doubles as a cross-implementation
check: anything this script encodes must decode server-side and vice versa.

Usage:
  binary_client.py encode <requests.jsonl> > requests.bin
      Translates JSON-lines compile requests into Request frames (the same
      fields `mat2c serve` accepts in JSON mode; unknown fields are an
      error, mirroring the server's strictness).

  binary_client.py decode <responses.bin>
      Walks Response frames, prints one summary line per response, and
      exits 0 with "binary-serve-ok (<n> responses)" iff every response has
      ok=true. Exits 1 on a malformed stream or a failed response.

  binary_client.py run <requests.jsonl> [--retries N] [--base-ms B]
                       [--max-ms M] [--seed S] -- <server argv...>
      Live client: spawns the server, streams Request frames in, reads
      Response frames back, and RETRIES on transport failures — a dead
      server (ECONNRESET/EPIPE on write, short read mid-frame, torn frame)
      is answered by respawning and re-sending every still-unanswered
      request after a capped exponential backoff with deterministic jitter
      (requests are idempotent by content-addressed key, so re-sending a
      possibly-half-processed request is safe). Prints per-response
      summaries plus a retry-counter line; exits 1 cleanly (no traceback)
      when retries are exhausted or any response has ok=false.
"""
import json
import struct
import subprocess
import sys
import threading
import time

MAGIC = b"M2CB"
VERSION = 2  # v2: request gained trailing `admin`, response trailing `adminInfo`
TYPE_REQUEST = 1
TYPE_RESPONSE = 2

# WireRequest optional-toggle bit positions (must match src/service/protocol.cpp).
TOGGLES = ["constFold", "idioms", "vectorize", "sinkDecls", "checkElim", "degrade"]

ERROR_KINDS = ["None", "ParseError", "SemaError", "PassError", "VerifyError",
               "ResourceExhausted", "Timeout", "Panic"]

MASK64 = (1 << 64) - 1


def splitmix64(x):
    x = (x + 0x9E3779B97F4A7C15) & MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return x ^ (x >> 31)


def retry_delay_ms(attempt, base_ms, max_ms, seed):
    """Mirror of RetryPolicy::delayMillis: jitter in [cap/2, cap], cap doubling
    per attempt. Deterministic so test schedules replay from a seed."""
    cap = base_ms
    for _ in range(attempt):
        if cap >= max_ms:
            break
        cap *= 2.0
    cap = min(cap, max_ms)
    h = splitmix64((seed ^ (attempt + 1)) & MASK64)
    frac = (h >> 11) / float(1 << 53)
    return cap * (0.5 + 0.5 * frac)


def pack_str(s):
    b = s.encode("utf-8")
    return struct.pack("<I", len(b)) + b


def encode_request(obj):
    # isa defaults to "" = the server-default target (its --isa-file registry,
    # or the dspx preset); name a preset explicitly to pin one.
    payload = b"".join(pack_str(obj.get(k, d)) for k, d in [
        ("id", ""), ("source", ""), ("entry", ""), ("args", ""),
        ("isa", ""), ("isa_text", ""), ("style", "proposed"), ("tenant", "")])
    present = value = 0
    for bit, name in enumerate(TOGGLES):
        if name in obj:
            present |= 1 << bit
            if obj[name]:
                value |= 1 << bit
    payload += struct.pack("<BBBid", present, value,
                           1 if obj.get("tune") else 0,
                           int(obj.get("tune_budget", 0)),
                           float(obj.get("deadline_ms", 0.0)))
    payload += pack_str(obj.get("admin", ""))  # v2
    return MAGIC + struct.pack("<HHI", VERSION, TYPE_REQUEST, len(payload)) + payload


class Reader:
    def __init__(self, data):
        self.data, self.at = data, 0

    def take(self, n):
        if self.at + n > len(self.data):
            raise ValueError("truncated payload")
        out = self.data[self.at:self.at + n]
        self.at += n
        return out

    def u8(self):
        return self.take(1)[0]

    def u32(self):
        return struct.unpack("<I", self.take(4))[0]

    def f64(self):
        return struct.unpack("<d", self.take(8))[0]

    def s(self):
        return self.take(self.u32()).decode("utf-8", errors="replace")


def decode_response(payload):
    r = Reader(payload)
    out = {"id": r.s()}
    flags = r.u8()
    out["ok"] = bool(flags & 1)
    out["cached"] = bool(flags & 2)
    out["deduped"] = bool(flags & 4)
    out["storeHit"] = bool(flags & 8)
    tuned = bool(flags & 16)
    kind = r.u8()
    out["errorKind"] = ERROR_KINDS[kind] if kind < len(ERROR_KINDS) else f"?{kind}"
    out["millis"] = r.f64()
    out["error"] = r.s()
    out["isa"] = r.s()
    out["cBytes"] = struct.unpack("<Q", r.take(8))[0]
    out["loopsVectorized"], out["idiomRewrites"] = struct.unpack("<ii", r.take(8))
    out["degraded"] = [r.s() for _ in range(r.u32())]
    out["tunedSignature"] = r.s()
    out["tuneCandidates"] = struct.unpack("<i", r.take(4))[0]
    out["tunedCycles"] = r.f64()
    out["tuneDefaultCycles"] = r.f64()
    out["tuned"] = tuned
    out["adminInfo"] = r.s()  # v2
    return out


def load_requests(path):
    requests = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            obj = json.loads(line)
            if not obj.get("id"):
                obj["id"] = f"req{len(requests) + 1}"
            requests.append(obj)
    return requests


class ShortRead(Exception):
    pass


def read_exact(stream, n):
    buf = b""
    while len(buf) < n:
        chunk = stream.read(n - len(buf))
        if not chunk:
            raise ShortRead(f"short read: wanted {n} bytes, got {len(buf)}")
        buf += chunk
    return buf


def read_response_frame(stream):
    """One Response frame from a live stream. None on clean EOF at a frame
    boundary; ShortRead/ValueError on a torn or garbled stream."""
    first = stream.read(1)
    if not first:
        return None
    header = first + read_exact(stream, 11)
    if header[:4] != MAGIC:
        raise ValueError("bad frame magic")
    version, ftype, length = struct.unpack("<HHI", header[4:12])
    if version != VERSION:
        raise ValueError(f"unsupported frame version {version}")
    if ftype != TYPE_RESPONSE:
        raise ValueError(f"unexpected frame type {ftype}")
    return decode_response(read_exact(stream, length))


def cmd_run(argv):
    retries, base_ms, max_ms, seed = 5, 10.0, 2000.0, 1
    if "--" not in argv:
        print("run mode needs `-- <server argv...>`", file=sys.stderr)
        return 2
    split = argv.index("--")
    head, server_argv = argv[:split], argv[split + 1:]
    if not head or not server_argv:
        print("run mode needs a requests file and `-- <server argv...>`",
              file=sys.stderr)
        return 2
    requests_path = head[0]
    i = 1
    while i < len(head):
        flag = head[i]
        if i + 1 >= len(head):
            print(f"{flag} expects a value", file=sys.stderr)
            return 2
        value = head[i + 1]
        if flag == "--retries":
            retries = int(value)
        elif flag == "--base-ms":
            base_ms = float(value)
        elif flag == "--max-ms":
            max_ms = float(value)
        elif flag == "--seed":
            seed = int(value)
        else:
            print(f"unknown run option '{flag}'", file=sys.stderr)
            return 2
        i += 2

    requests = load_requests(requests_path)
    order = [obj["id"] for obj in requests]
    unanswered = {obj["id"]: obj for obj in requests}
    answered = {}
    stats = {"attempts": 0, "spawn_failures": 0, "transport_retries": 0}

    attempt = 0
    while unanswered:
        if attempt > retries:
            print(f"binary-client: retries exhausted after {attempt} attempt(s), "
                  f"{len(unanswered)} request(s) unanswered", file=sys.stderr)
            return 1
        if attempt > 0:
            time.sleep(retry_delay_ms(attempt - 1, base_ms, max_ms, seed) / 1000.0)
        attempt += 1
        stats["attempts"] += 1
        try:
            proc = subprocess.Popen(server_argv, stdin=subprocess.PIPE,
                                    stdout=subprocess.PIPE, stderr=subprocess.DEVNULL)
        except OSError as e:
            print(f"binary-client: cannot spawn server: {e}", file=sys.stderr)
            stats["spawn_failures"] += 1
            continue

        # Feed on a thread: writing everything before reading would deadlock
        # once the response pipe fills. EPIPE here just means the server died;
        # the reader side notices and the outer loop retries.
        batch = [unanswered[rid] for rid in order if rid in unanswered]

        def feed():
            try:
                for obj in batch:
                    proc.stdin.write(encode_request(obj))
                    proc.stdin.flush()
                proc.stdin.close()
            except (BrokenPipeError, ConnectionResetError, OSError):
                pass

        feeder = threading.Thread(target=feed)
        feeder.start()
        try:
            while True:
                resp = read_response_frame(proc.stdout)
                if resp is None:
                    break
                answered[resp["id"]] = resp
                unanswered.pop(resp["id"], None)
        except (ShortRead, ValueError, ConnectionResetError, OSError) as e:
            print(f"binary-client: transport error (attempt {attempt}): {e}",
                  file=sys.stderr)
        feeder.join()
        try:
            proc.stdout.close()
        except OSError:
            pass
        proc.wait()
        if unanswered:
            stats["transport_retries"] += 1

    failures = 0
    for rid in order:
        resp = answered[rid]
        if not resp["ok"]:
            failures += 1
        print(json.dumps(resp))
    print(f"binary-client-stats attempts={stats['attempts']} "
          f"transport_retries={stats['transport_retries']} "
          f"spawn_failures={stats['spawn_failures']}", file=sys.stderr)
    if failures:
        print(f"binary-serve-failed ({failures} of {len(order)} responses)",
              file=sys.stderr)
        return 1
    print(f"binary-serve-ok ({len(order)} responses)", file=sys.stderr)
    return 0


def main():
    if len(sys.argv) >= 3 and sys.argv[1] == "run":
        return cmd_run(sys.argv[2:])
    if len(sys.argv) != 3 or sys.argv[1] not in ("encode", "decode"):
        print(__doc__, file=sys.stderr)
        return 2

    if sys.argv[1] == "encode":
        with open(sys.argv[2]) as f:
            for line in f:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                sys.stdout.buffer.write(encode_request(json.loads(line)))
        sys.stdout.buffer.flush()
        return 0

    with open(sys.argv[2], "rb") as f:
        data = f.read()
    at, failures, count = 0, 0, 0
    while at < len(data):
        if data[at:at + 4] != MAGIC:
            print(f"bad frame magic at byte {at}", file=sys.stderr)
            return 1
        version, ftype, length = struct.unpack("<HHI", data[at + 4:at + 12])
        if version != VERSION or ftype != TYPE_RESPONSE:
            print(f"unexpected frame version={version} type={ftype}", file=sys.stderr)
            return 1
        at += 12
        try:
            resp = decode_response(data[at:at + length])
        except ValueError as e:
            print(f"frame at byte {at - 12}: {e}", file=sys.stderr)
            return 1
        at += length
        count += 1
        if not resp["ok"]:
            failures += 1
        print(json.dumps(resp))
    if failures:
        print(f"binary-serve-failed ({failures} of {count} responses)", file=sys.stderr)
        return 1
    print(f"binary-serve-ok ({count} responses)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
