#!/usr/bin/env python3
"""Reference client for the `mat2c serve --binary` wire protocol.

Implements the length-prefixed frame format documented in docs/service.md
independently of the C++ codec, so it doubles as a cross-implementation
check: anything this script encodes must decode server-side and vice versa.

Usage:
  binary_client.py encode <requests.jsonl> > requests.bin
      Translates JSON-lines compile requests into Request frames (the same
      fields `mat2c serve` accepts in JSON mode; unknown fields are an
      error, mirroring the server's strictness).

  binary_client.py decode <responses.bin>
      Walks Response frames, prints one summary line per response, and
      exits 0 with "binary-serve-ok (<n> responses)" iff every response has
      ok=true. Exits 1 on a malformed stream or a failed response.
"""
import json
import struct
import sys

MAGIC = b"M2CB"
VERSION = 1
TYPE_REQUEST = 1
TYPE_RESPONSE = 2

# WireRequest optional-toggle bit positions (must match src/service/protocol.cpp).
TOGGLES = ["constFold", "idioms", "vectorize", "sinkDecls", "checkElim", "degrade"]

ERROR_KINDS = ["None", "ParseError", "SemaError", "PassError", "VerifyError",
               "ResourceExhausted", "Timeout", "Panic"]


def pack_str(s):
    b = s.encode("utf-8")
    return struct.pack("<I", len(b)) + b


def encode_request(obj):
    payload = b"".join(pack_str(obj.get(k, d)) for k, d in [
        ("id", ""), ("source", ""), ("entry", ""), ("args", ""),
        ("isa", "dspx"), ("isa_text", ""), ("style", "proposed"), ("tenant", "")])
    present = value = 0
    for bit, name in enumerate(TOGGLES):
        if name in obj:
            present |= 1 << bit
            if obj[name]:
                value |= 1 << bit
    payload += struct.pack("<BBBid", present, value,
                           1 if obj.get("tune") else 0,
                           int(obj.get("tune_budget", 0)),
                           float(obj.get("deadline_ms", 0.0)))
    return MAGIC + struct.pack("<HHI", VERSION, TYPE_REQUEST, len(payload)) + payload


class Reader:
    def __init__(self, data):
        self.data, self.at = data, 0

    def take(self, n):
        if self.at + n > len(self.data):
            raise ValueError("truncated payload")
        out = self.data[self.at:self.at + n]
        self.at += n
        return out

    def u8(self):
        return self.take(1)[0]

    def u32(self):
        return struct.unpack("<I", self.take(4))[0]

    def f64(self):
        return struct.unpack("<d", self.take(8))[0]

    def s(self):
        return self.take(self.u32()).decode("utf-8", errors="replace")


def decode_response(payload):
    r = Reader(payload)
    out = {"id": r.s()}
    flags = r.u8()
    out["ok"] = bool(flags & 1)
    out["cached"] = bool(flags & 2)
    out["deduped"] = bool(flags & 4)
    out["storeHit"] = bool(flags & 8)
    tuned = bool(flags & 16)
    kind = r.u8()
    out["errorKind"] = ERROR_KINDS[kind] if kind < len(ERROR_KINDS) else f"?{kind}"
    out["millis"] = r.f64()
    out["error"] = r.s()
    out["isa"] = r.s()
    out["cBytes"] = struct.unpack("<Q", r.take(8))[0]
    out["loopsVectorized"], out["idiomRewrites"] = struct.unpack("<ii", r.take(8))
    out["degraded"] = [r.s() for _ in range(r.u32())]
    out["tunedSignature"] = r.s()
    out["tuneCandidates"] = struct.unpack("<i", r.take(4))[0]
    out["tunedCycles"] = r.f64()
    out["tuneDefaultCycles"] = r.f64()
    out["tuned"] = tuned
    return out


def main():
    if len(sys.argv) != 3 or sys.argv[1] not in ("encode", "decode"):
        print(__doc__, file=sys.stderr)
        return 2

    if sys.argv[1] == "encode":
        with open(sys.argv[2]) as f:
            for line in f:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                sys.stdout.buffer.write(encode_request(json.loads(line)))
        sys.stdout.buffer.flush()
        return 0

    with open(sys.argv[2], "rb") as f:
        data = f.read()
    at, failures, count = 0, 0, 0
    while at < len(data):
        if data[at:at + 4] != MAGIC:
            print(f"bad frame magic at byte {at}", file=sys.stderr)
            return 1
        version, ftype, length = struct.unpack("<HHI", data[at + 4:at + 12])
        if version != VERSION or ftype != TYPE_RESPONSE:
            print(f"unexpected frame version={version} type={ftype}", file=sys.stderr)
            return 1
        at += 12
        try:
            resp = decode_response(data[at:at + length])
        except ValueError as e:
            print(f"frame at byte {at - 12}: {e}", file=sys.stderr)
            return 1
        at += length
        count += 1
        if not resp["ok"]:
            failures += 1
        print(json.dumps(resp))
    if failures:
        print(f"binary-serve-failed ({failures} of {count} responses)", file=sys.stderr)
        return 1
    print(f"binary-serve-ok ({count} responses)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
