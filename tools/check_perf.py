#!/usr/bin/env python3
"""Cycle-regression gate for the Table 1 benchmark.

Compares a freshly generated BENCH_table1.json (bench_table1 --json) against
the checked-in baseline and fails when any kernel's proposed cycle count
regresses by more than the tolerance, or when the geometric-mean speedup
drops below the baseline's. Cycle counts come from the deterministic ASIP
cycle model, so the tolerance only needs to absorb deliberate cost-model
retuning, not measurement noise; improvements never fail the gate and are
reported so the baseline can be refreshed.

Usage: check_perf.py <baseline.json> <current.json> [--tolerance PCT]
Exit codes: 0 ok, 1 regression, 2 bad input.
"""
import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_perf: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=2.0,
                    help="allowed cycle regression, percent (default 2)")
    args = ap.parse_args()

    # A zero or negative tolerance is never a meaningful gate (0 fails on any
    # cycle-model noise; negative inverts the comparison so improvements fail
    # and regressions pass). Bad invocation, not a perf regression: exit 2.
    # `not (x > 0)` also catches NaN, which compares false against everything.
    if not (args.tolerance > 0):
        print(f"check_perf: --tolerance must be a positive percentage, "
              f"got {args.tolerance}", file=sys.stderr)
        return 2

    base = load(args.baseline)
    cur = load(args.current)
    tol = args.tolerance / 100.0

    failures = []
    improvements = []
    compared = 0
    # A kernel only in the current run has no baseline to gate against — that
    # is exactly how a new benchmark silently escapes the cycle gate, so it
    # is an error until the baseline is refreshed.
    for name in cur.get("kernels", {}):
        if name not in base.get("kernels", {}):
            failures.append(
                f"{name}: kernel not in baseline — refresh {args.baseline} "
                f"(rerun the bench with --json and check the result in)")
    for name, b in base.get("kernels", {}).items():
        c = cur.get("kernels", {}).get(name)
        if c is None:
            failures.append(f"{name}: missing from current results")
            continue
        compared += 1
        b_cycles = float(b["proposed_cycles"])
        c_cycles = float(c["proposed_cycles"])
        if c_cycles > b_cycles * (1.0 + tol):
            failures.append(
                f"{name}: proposed cycles regressed {b_cycles:.0f} -> {c_cycles:.0f} "
                f"(+{100.0 * (c_cycles / b_cycles - 1.0):.2f}%, tolerance {args.tolerance}%)")
        elif c_cycles < b_cycles * (1.0 - tol):
            improvements.append(f"{name}: {b_cycles:.0f} -> {c_cycles:.0f} cycles")
        if float(c.get("max_abs_err", 0.0)) > 1e-9:
            failures.append(f"{name}: correctness drift, max_abs_err={c['max_abs_err']}")

    # A missing geomean would make the geomean check pass vacuously (0 < x),
    # so treat it as malformed input rather than defaulting.
    b_geo = c_geo = 0.0
    geo_missing = False
    for doc, path, which in ((base, args.baseline, "baseline"),
                             (cur, args.current, "current")):
        if "geomean_speedup" not in doc:
            failures.append(f"{which} {path}: missing geomean_speedup")
            geo_missing = True
    if not geo_missing:
        b_geo = float(base["geomean_speedup"])
        c_geo = float(cur["geomean_speedup"])
        if c_geo < b_geo * (1.0 - tol):
            failures.append(f"geomean speedup regressed {b_geo:.4f} -> {c_geo:.4f}")

    # Optional reference block (BENCH_dse.json): the document carries its own
    # quality bar — the auto-designed ISA must stay at least as fast as the
    # named reference design at no more hardware cost. This is how a
    # regression in mined-ISA *quality* (not just cycle counts) fails CI.
    ref = cur.get("reference")
    if ref is not None:
        ref_name = ref.get("name", "reference")
        try:
            ref_geo = float(ref["geomean_speedup"])
            cur_geo = float(cur["geomean_speedup"])
            if cur_geo < ref_geo * (1.0 - tol):
                failures.append(
                    f"auto ISA geomean {cur_geo:.4f} fell below the {ref_name} "
                    f"reference {ref_geo:.4f} (tolerance {args.tolerance}%)")
        except (KeyError, TypeError, ValueError):
            failures.append(f"reference block malformed: {ref!r}")
        # The hardware-cost half of the quality bar gets the same treatment
        # as geomean_speedup: once a reference block is present, a missing
        # hw_cost on either side would let a cost regression pass vacuously,
        # so it is a FAIL, not a silent skip.
        hw_missing = False
        for doc, which in ((ref, f"{ref_name} reference block"),
                           (cur, f"current {args.current}")):
            if "hw_cost" not in doc:
                failures.append(f"{which}: missing hw_cost "
                                f"(required when a reference block is present)")
                hw_missing = True
        if not hw_missing:
            ref_hw = float(ref["hw_cost"])
            cur_hw = float(cur["hw_cost"])
            if cur_hw > ref_hw + 1e-6:
                failures.append(
                    f"auto ISA hardware cost {cur_hw:.1f} exceeds the {ref_name} "
                    f"reference {ref_hw:.1f}")

    for line in improvements:
        print(f"check_perf: improvement: {line} (consider refreshing the baseline)")
    if failures:
        for line in failures:
            print(f"check_perf: FAIL: {line}", file=sys.stderr)
        return 1
    # Report the number of kernels actually compared, not the baseline's
    # size — the two only coincide when the kernel sets match exactly.
    print(f"check_perf: ok ({compared} kernels, "
          f"geomean {c_geo:.2f}x vs baseline {b_geo:.2f}x, tolerance {args.tolerance}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
