// Deterministic chaos harness for the supervised serve plane.
//
// Drives a real multi-process shard fleet (MAT2C_BIN_PATH workers sharing
// one artifact store) through a seeded schedule of
//
//   * cold + repeat compile floods across tenants,
//   * kill -9 of scheduled shards mid-load,
//   * in-process worker crashes (MAT2C_FAULT=crash:compile:N in the worker
//     environment — every worker incarnation aborts at its Nth compile),
//   * a zero-downtime ISA hot-reload (the --isa-file is rewritten and
//     broadcast mid-flight), and
//   * a torn-response-frame fleet (MAT2C_FAULT=torn:frame.write:N), where a
//     worker truncates a frame mid-write and dies,
//
// while a differential checker holds the line: EVERY completed response is
// compared against a local compile of the same kernel under the same ISA —
// itself validated against the reference interpreter — so "zero incorrect
// responses" means oracle-checked, not merely ok=true. The schedule derives
// entirely from the seed (which shard dies at which step, no wall-clock
// randomness in the backoff jitter), so a failure reproduces by rerunning
// with the same seed.
//
// Prints "chaos-ok" and exits 0 on success; any violated invariant prints a
// diagnostic and exits 1. Registered as a ctest with the `chaos` label.
#include <signal.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "service/supervisor.hpp"

namespace fs = std::filesystem;
using namespace mat2c;
using namespace mat2c::service;

namespace {

int gFailures = 0;

#define CHAOS_CHECK(cond, ...)                                   \
  do {                                                           \
    if (!(cond)) {                                               \
      std::fprintf(stderr, "chaos: FAILED %s:%d: ", __FILE__, __LINE__); \
      std::fprintf(stderr, __VA_ARGS__);                         \
      std::fprintf(stderr, "\n");                                \
      ++gFailures;                                               \
    }                                                            \
  } while (0)

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string argsTokenFor(const std::vector<sema::ArgSpec>& specs) {
  std::string out;
  for (const auto& spec : specs) {
    if (!out.empty()) out += ',';
    const sema::Shape& s = spec.type.shape;
    if (spec.type.elem == sema::Elem::Complex) out += 'c';
    out += std::to_string(s.rows.extent()) + "x" + std::to_string(s.cols.extent());
  }
  return out;
}

/// What a correct response for (kernel, ISA) must report. Anchored to the
/// interpreter: the local compile these numbers come from is itself
/// validated element-wise against the reference interpreter first.
struct Expected {
  std::string isaName;
  std::uint64_t cBytes = 0;
  std::int32_t loopsVectorized = 0;
  std::int32_t idiomRewrites = 0;
};

Expected oracleFor(const kernels::KernelSpec& k, const isa::IsaDescription& isa) {
  Compiler compiler;
  CompileOptions opts = CompileOptions::proposed();
  opts.isa = isa;
  CompiledUnit unit = compiler.compileSource(k.source, k.entry, k.argSpecs, opts);
  double err = validateAgainstInterpreter(k.source, k.entry, unit, k.args);
  CHAOS_CHECK(err <= 1e-9, "oracle compile of %s on %s diverges from the interpreter (%g)",
              k.name.c_str(), isa.name().c_str(), err);
  Expected e;
  e.isaName = unit.isa().name();
  e.cBytes = unit.cCode().size();
  e.loopsVectorized = unit.optimizationReport().vec.loopsVectorized;
  e.idiomRewrites = unit.optimizationReport().idiomRewrites;
  return e;
}

/// One submitted request and its (eventual) response.
struct Probe {
  std::string id;
  std::string kernel;  ///< key into the expectation tables
  BinaryResponse response;
  bool answered = false;
};

class ResponseLog {
 public:
  ShardSupervisor::ResponseHandler handlerFor(std::shared_ptr<Probe> probe) {
    return [this, probe](const std::string&, const BinaryResponse& decoded) {
      std::lock_guard<std::mutex> lock(mu_);
      CHAOS_CHECK(!probe->answered, "request %s answered twice", probe->id.c_str());
      probe->answered = true;
      probe->response = decoded;
    };
  }

  std::mutex mu_;
};

void writeIsaFile(const fs::path& path, const isa::IsaDescription& isa) {
  std::ofstream out(path, std::ios::trunc);
  out << isa.serialize();
  if (!out) {
    std::fprintf(stderr, "chaos: cannot write %s\n", path.string().c_str());
    std::exit(1);
  }
}

/// Checks one answered probe against the expectation table; `allowedIsas`
/// lists the ISA names a response may legitimately carry at this point in
/// the schedule (a reload in flight means old OR new, never anything else).
void checkProbe(const Probe& probe,
                const std::map<std::string, std::map<std::string, Expected>>& table,
                const std::vector<std::string>& allowedIsas) {
  CHAOS_CHECK(probe.answered, "request %s was dropped (never answered)", probe.id.c_str());
  if (!probe.answered) return;
  const BinaryResponse& r = probe.response;
  CHAOS_CHECK(r.ok, "request %s failed: %s", probe.id.c_str(), r.error.c_str());
  if (!r.ok) return;
  bool isaAllowed = false;
  for (const auto& name : allowedIsas) isaAllowed = isaAllowed || name == r.isa;
  CHAOS_CHECK(isaAllowed, "request %s answered with unexpected ISA '%s'",
              probe.id.c_str(), r.isa.c_str());
  if (!isaAllowed) return;
  const Expected& e = table.at(probe.kernel).at(r.isa);
  CHAOS_CHECK(r.cBytes == e.cBytes,
              "request %s (%s on %s): cBytes %llu != oracle %llu", probe.id.c_str(),
              probe.kernel.c_str(), r.isa.c_str(),
              static_cast<unsigned long long>(r.cBytes),
              static_cast<unsigned long long>(e.cBytes));
  CHAOS_CHECK(r.loopsVectorized == e.loopsVectorized,
              "request %s: loopsVectorized %d != oracle %d", probe.id.c_str(),
              r.loopsVectorized, e.loopsVectorized);
  CHAOS_CHECK(r.idiomRewrites == e.idiomRewrites,
              "request %s: idiomRewrites %d != oracle %d", probe.id.c_str(),
              r.idiomRewrites, e.idiomRewrites);
}

WireRequest wireFor(const kernels::KernelSpec& k, const std::string& id,
                    const std::string& tenant = "") {
  WireRequest w;
  w.id = id;
  w.source = k.source;
  w.entry = k.entry;
  w.args = argsTokenFor(k.argSpecs);
  w.tenant = tenant;
  return w;  // isa stays "" = the server default (the workers' --isa-file)
}

int runMainFleet(std::uint64_t seed, const fs::path& root) {
  // Small problem sizes keep a full chaos run in seconds; distinct content
  // per kernel so consistent-hash routing actually spreads the corpus.
  std::vector<kernels::KernelSpec> corpus = {
      kernels::makeFir(64, 16), kernels::makeMatmul(8, 8, 8), kernels::makeCdot(64),
      kernels::makeFramePow(8, 16)};
  // Fresh content for the post-reload phase: same kernels, different sizes,
  // so they MUST cold-compile under whatever ISA is then current.
  std::vector<kernels::KernelSpec> freshCorpus = {kernels::makeFir(48, 12),
                                                  kernels::makeCdot(48)};

  isa::IsaDescription oldIsa = isa::IsaDescription::preset("dspx");
  isa::IsaDescription newIsa = isa::IsaDescription::preset("dspx_w4");

  // Oracle table first: every (kernel, isa) pair this schedule can produce,
  // each anchored to the interpreter before the fleet sees a single request.
  std::map<std::string, std::map<std::string, Expected>> oracle;
  for (const auto& k : corpus) {
    oracle[k.name][oldIsa.name()] = oracleFor(k, oldIsa);
    oracle[k.name][newIsa.name()] = oracleFor(k, newIsa);
  }
  for (const auto& k : freshCorpus) {
    std::string key = k.name + "#fresh";
    oracle[key][oldIsa.name()] = oracleFor(k, oldIsa);
    oracle[key][newIsa.name()] = oracleFor(k, newIsa);
  }
  if (gFailures > 0) return 1;  // a broken oracle invalidates everything else

  fs::path store = root / "store";
  fs::path isaFile = root / "default.isa";
  fs::create_directories(store);
  writeIsaFile(isaFile, oldIsa);

  ShardSupervisor::Config config;
  config.shards = 3;
  config.binaryPath = MAT2C_BIN_PATH;
  config.workerArgs = {"--store-dir", store.string(), "--isa-file", isaFile.string(),
                       "--jobs", "2"};
  // Every worker incarnation aborts at its 3rd compile: in-process crash
  // coverage on top of the external kill -9s. Warm (cached) answers do not
  // count compiles, so restarted workers serving from the store live on.
  config.workerEnv = {"MAT2C_FAULT=crash:compile:3"};
  config.restart.baseMillis = 5.0;
  config.restart.maxMillis = 100.0;
  config.maxRestarts = 32;
  config.seed = seed;

  ShardSupervisor fleet(config);
  std::string error;
  if (!fleet.start(error)) {
    std::fprintf(stderr, "chaos: cannot start fleet: %s\n", error.c_str());
    return 1;
  }

  ResponseLog log;
  std::vector<std::shared_ptr<Probe>> probes;
  auto submit = [&](const kernels::KernelSpec& k, const std::string& id,
                    const std::string& oracleKey, const std::string& tenant = "") {
    auto probe = std::make_shared<Probe>();
    probe->id = id;
    probe->kernel = oracleKey;
    probes.push_back(probe);
    fleet.submit(wireFor(k, id, tenant), log.handlerFor(probe));
  };

  // --- Phase 1: cold flood. Workers crash at their 3rd compile, so even
  // this phase exercises abort-mid-compile + redispatch + store warmup.
  std::size_t coldEnd;
  {
    int n = 0;
    for (const auto& k : corpus) submit(k, "cold" + std::to_string(++n), k.name);
    fleet.drainPending();
    coldEnd = probes.size();
  }

  // --- Phase 2: repeat flood with kill -9 of seeded shards mid-load.
  std::size_t repeatEnd;
  {
    int kills = 0;
    for (int step = 0; step < 24; ++step) {
      const auto& k = corpus[static_cast<std::size_t>(step) % corpus.size()];
      std::string tenant = (splitmix64(seed ^ step) & 1) ? "flood" : "victim";
      submit(k, "rep" + std::to_string(step), k.name, tenant);
      if (step == 8 || step == 16) {
        // The victim shard is chosen by the seed, not by the clock.
        std::vector<int> pids = fleet.shardPids();
        int target = static_cast<int>(splitmix64(seed ^ (0xdeadULL + step)) % pids.size());
        if (pids[static_cast<std::size_t>(target)] > 0) {
          ::kill(pids[static_cast<std::size_t>(target)], SIGKILL);
          ++kills;
        }
      }
    }
    fleet.drainPending();
    repeatEnd = probes.size();
    CHAOS_CHECK(kills > 0, "schedule killed no shard (broken schedule)");
  }

  // --- Phase 3: warm-restart proof. Every kernel is in the shared store by
  // now; repeats must be served without compiling (cached), whatever mix of
  // original and restarted workers answers them.
  std::size_t warmEnd;
  {
    int n = 0;
    for (const auto& k : corpus) submit(k, "warm" + std::to_string(++n), k.name);
    fleet.drainPending();
    warmEnd = probes.size();
  }

  // --- Phase 4: zero-downtime ISA hot-reload. Old-content repeats are
  // submitted BEFORE the broadcast (they must finish on the old fingerprint
  // — per-shard FIFO: the reload admin frame is written after them), fresh
  // content after it must cold-compile on the NEW ISA.
  {
    int n = 0;
    for (const auto& k : corpus) submit(k, "pre_reload" + std::to_string(++n), k.name);
    writeIsaFile(isaFile, newIsa);
    int reached = fleet.broadcastReload();
    CHAOS_CHECK(reached >= 1, "reload broadcast reached no shard");
    n = 0;
    for (const auto& k : freshCorpus) {
      submit(k, "post_reload" + std::to_string(++n), k.name + "#fresh");
    }
    fleet.drainPending();
  }

  ShardSupervisor::Stats stats = fleet.stats();
  fleet.shutdown();

  // --- The differential ledger. Every submitted request must be answered,
  // correct, and on an ISA the schedule allows at its point in time.
  std::lock_guard<std::mutex> lock(log.mu_);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const Probe& p = *probes[i];
    bool preReload = i < warmEnd || p.id.rfind("pre_reload", 0) == 0;
    checkProbe(p, oracle,
               preReload ? std::vector<std::string>{oldIsa.name()}
                         : std::vector<std::string>{newIsa.name()});
    if (i >= repeatEnd && i < warmEnd) {
      CHAOS_CHECK(p.response.cached,
                  "warm repeat %s recompiled after restart (cached=false): the "
                  "restarted shard did not come back warm from the store",
                  p.id.c_str());
    }
    if (p.id.rfind("post_reload", 0) == 0) {
      CHAOS_CHECK(!p.response.cached, "fresh post-reload request %s claims a cache hit",
                  p.id.c_str());
    }
  }
  (void)coldEnd;
  CHAOS_CHECK(stats.completed == probes.size(), "completed %llu != submitted %zu",
              static_cast<unsigned long long>(stats.completed), probes.size());
  CHAOS_CHECK(stats.restarts >= 2, "expected the schedule to force restarts, saw %llu",
              static_cast<unsigned long long>(stats.restarts));
  CHAOS_CHECK(stats.reloads == 1, "expected exactly one reload broadcast, saw %llu",
              static_cast<unsigned long long>(stats.reloads));
  CHAOS_CHECK(stats.shardsEjected == 0, "no shard should exhaust maxRestarts, %d ejected",
              stats.shardsEjected);
  std::fprintf(stderr,
               "chaos: main fleet: %zu requests, %llu restarts, %llu redispatched, "
               "%llu reload broadcast(s)\n",
               probes.size(), static_cast<unsigned long long>(stats.restarts),
               static_cast<unsigned long long>(stats.redispatched),
               static_cast<unsigned long long>(stats.reloads));
  return gFailures == 0 ? 0 : 1;
}

/// A one-shard fleet whose worker tears its 2nd response frame mid-write and
/// dies: the supervisor must detect the torn stream, kill + reap the worker,
/// restart it, and re-dispatch — the client still sees only correct,
/// complete responses.
int runTornFrameFleet(std::uint64_t seed, const fs::path& root) {
  kernels::KernelSpec k = kernels::makeFir(64, 16);
  isa::IsaDescription dspx = isa::IsaDescription::preset("dspx");
  Expected expected = oracleFor(k, dspx);

  fs::path store = root / "torn_store";
  fs::create_directories(store);
  ShardSupervisor::Config config;
  config.shards = 1;
  config.binaryPath = MAT2C_BIN_PATH;
  config.workerArgs = {"--store-dir", store.string(), "--jobs", "1"};
  // Hit 3, not 2: the supervisor's readmission probe consumes one response
  // frame per restarted incarnation, and torn is sticky from the Nth hit
  // onward — at hit 2 a restarted worker could never answer a compile.
  config.workerEnv = {"MAT2C_FAULT=torn:frame.write:3"};
  config.restart.baseMillis = 5.0;
  config.restart.maxMillis = 50.0;
  config.maxRestarts = 16;
  config.seed = seed;

  ShardSupervisor fleet(config);
  std::string error;
  if (!fleet.start(error)) {
    std::fprintf(stderr, "chaos: cannot start torn-frame fleet: %s\n", error.c_str());
    return 1;
  }

  ResponseLog log;
  std::vector<std::shared_ptr<Probe>> probes;
  for (int i = 0; i < 4; ++i) {
    auto probe = std::make_shared<Probe>();
    probe->id = "torn" + std::to_string(i);
    probe->kernel = k.name;
    probes.push_back(probe);
    fleet.submit(wireFor(k, probe->id), log.handlerFor(probe));
  }
  fleet.drainPending();
  ShardSupervisor::Stats stats = fleet.stats();
  fleet.shutdown();

  std::lock_guard<std::mutex> lock(log.mu_);
  std::map<std::string, std::map<std::string, Expected>> oracle;
  oracle[k.name][dspx.name()] = expected;
  for (const auto& probe : probes) {
    checkProbe(*probe, oracle, {dspx.name()});
  }
  CHAOS_CHECK(stats.restarts >= 1, "a torn frame must kill and restart the worker");
  std::fprintf(stderr, "chaos: torn-frame fleet: %zu requests, %llu restarts\n",
               probes.size(), static_cast<unsigned long long>(stats.restarts));
  return gFailures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  fs::path root = fs::temp_directory_path() / ("mat2c_chaos_" + std::to_string(seed));
  fs::remove_all(root);
  fs::create_directories(root);

  int rc = runMainFleet(seed, root);
  if (rc == 0) rc = runTornFrameFleet(seed, root);

  fs::remove_all(root);
  if (rc == 0 && gFailures == 0) {
    std::printf("chaos-ok (seed %llu)\n", static_cast<unsigned long long>(seed));
    return 0;
  }
  std::fprintf(stderr, "chaos: %d invariant violation(s) (seed %llu)\n", gFailures,
               static_cast<unsigned long long>(seed));
  return 1;
}
