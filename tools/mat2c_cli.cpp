// mat2c — command-line front end.
//
// Usage:
//   mat2c compile <file.m> --entry <name> --args <spec,...> [options]
//   mat2c serve [<requests.jsonl>|-] [--jobs <n>] [--cache-entries <n>]
//               [--stats-json <file>] [--metrics <file>]
//               [--max-request-bytes <n>] [--deadline-ms <ms>]
//               [--store-dir <dir>] [--max-store-bytes <n>]
//               [--tenant-inflight <n>] [--binary] [--isa-file <file>]
//               [--shards <n>] [--hedge-ms <ms>] [--max-restarts <n>]
//               [--seed <n>]
//   mat2c isa [--preset <name> | --isa-file <file>]
//   mat2c list-kernels
//
// Argument specs (the MATLAB Coder -args equivalent):
//   1x1        real scalar         c1x1      complex scalar
//   1x1024     real row vector     c1x1024   complex row vector
//   64x3       real matrix         c8x8      complex matrix
//
// Options for `compile`:
//   --isa <preset>        target preset (default dspx; see `mat2c isa`)
//   --isa-file <file>     textual ISA description instead of a preset
//   --style coder         MATLAB-Coder-style baseline code
//   --emit-c <out.c>      write the generated translation unit
//   --dump-lir            print the optimized LIR
//   --run                 execute on the cycle-model VM with seeded inputs
//   --validate            also run the reference interpreter and compare
//   --seed <n>            input seed for --run/--validate (default 1)
//   --no-vectorize        disable the SIMD vectorizer
//   --no-idioms           disable MAC/complex idiom mapping
//   --no-sink-decls       disable declaration sinking
//   --no-fuse-loops       disable cross-statement loop fusion
//   --no-unroll           disable recurrence unrolling
//   --no-licm             disable loop-invariant code motion / promotion
//   --no-cse              disable common-subexpression elimination
//   --no-dead-stores      disable dead-store / dead-loop cleanup
//   --reassoc             allow reassociating fma rewrites (changes rounding)
//   --unroll-max-trip <n> max trip count fully unrolled (default 8)
//   --time-passes         print per-pass wall time and LIR stat deltas
//   --verify-each         verify the LIR after every pass (names the
//                         offending pass on failure)
//   --trace-passes        dump the LIR after every pass (stderr)
//   --telemetry-json <f>  write per-pass telemetry as JSON (see
//                         docs/pipeline.md for the schema)
//
// `serve` reads JSON-lines compile requests (one object per line; see
// docs/service.md for the schema) from a file or stdin, compiles them on a
// worker pool with a content-addressed compile cache, writes one JSON
// response line per request to stdout in input order, and finishes with a
// cache/throughput stats JSON (stderr, or --stats-json <file>).
// With --binary, requests and responses are length-prefixed binary frames
// instead of JSON lines (docs/service.md has the frame layout). --store-dir
// persists compiled artifacts across restarts; --tenant-inflight caps each
// tenant's concurrent compiles (fair-share round-robin admission); --metrics
// writes Prometheus text-format metrics.
//
// Resilience (docs/service.md "Resilience"): responses stream out in input
// order as they complete (not batched at EOF). --isa-file makes that file the
// server-default target with zero-downtime hot reload — a `{"admin":
// "reload"}` request or SIGHUP re-parses it; in-flight requests finish on the
// ISA they were submitted under. --shards N runs N worker processes behind a
// supervisor that restarts crashed workers with backed-off jitter, re-routes
// after permanent ejection, and optionally hedges slow requests (--hedge-ms).
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "driver/report.hpp"

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "dse/dse.hpp"
#include "service/compile_service.hpp"
#include "service/isa_registry.hpp"
#include "service/protocol.hpp"
#include "service/supervisor.hpp"
#include "support/fault_injection.hpp"
#include "support/string_utils.hpp"
#include "tune/tune.hpp"

namespace {

using namespace mat2c;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mat2c compile <file.m> --entry <name> --args <spec,...> [options]\n"
               "  mat2c compile -e '<matlab source>' --entry <name> --args <spec,...>\n"
               "  mat2c serve [<requests.jsonl>|-] [--jobs <n>] [--cache-entries <n>]"
               " [--stats-json <file>]\n"
               "              [--max-request-bytes <n>] [--deadline-ms <ms>]"
               " [--metrics <file>]\n"
               "              [--store-dir <dir>] [--max-store-bytes <n>]"
               " [--tenant-inflight <n>] [--binary]\n"
               "              [--isa-file <file>] [--shards <n>] [--hedge-ms <ms>]"
               " [--max-restarts <n>] [--seed <n>]\n"
               "  mat2c isa [--preset <name>] [--isa-file <file>]\n"
               "  mat2c list-isas\n"
               "  mat2c list-kernels\n"
               "  mat2c explore [--kernels <name,...>] [--top <n>] [--no-fused]\n"
               "                [--json <file>] [--emit-isa <file>] [--quiet]\n"
               "  mat2c tune [--kernels <name,...>] [--budget <n>] [--json <file>]\n"
               "             [--isa <preset>] [--isa-file <file>] [--seed <n>] [--quiet]\n"
               "run `head tools/mat2c_cli.cpp` for the full option list\n");
  return 2;
}

/// Strict numeric-flag parsing: the whole token must parse and land in
/// [lo, hi]; anything else ("abc", "1e999", trailing junk, overflow) is the
/// same usage error (exit 2) a missing value produces. Bare std::stoi-family
/// calls would instead die with an uncaught std::invalid_argument.
long long parseIntFlag(const char* flag, const char* text, long long lo, long long hi) {
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < lo || v > hi) {
    std::fprintf(stderr, "mat2c: %s expects an integer in [%lld, %lld], got '%s'\n", flag,
                 lo, hi, text);
    std::exit(2);
  }
  return v;
}

double parseDoubleFlag(const char* flag, const char* text, double lo, double hi) {
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !(v >= lo) || !(v <= hi)) {
    std::fprintf(stderr, "mat2c: %s expects a number in [%g, %g], got '%s'\n", flag, lo,
                 hi, text);
    std::exit(2);
  }
  return v;
}

/// Reads and parses a textual ISA description file, printing the open error
/// or parse diagnostics on failure. Shared by `isa` and `compile`.
std::optional<isa::IsaDescription> loadIsaFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "mat2c: cannot open '%s'\n", path.c_str());
    return std::nullopt;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  DiagnosticEngine diags;
  isa::IsaDescription d = isa::IsaDescription::parse(ss.str(), diags);
  if (diags.hasErrors()) {
    std::fprintf(stderr, "%s", diags.renderAll().c_str());
    return std::nullopt;
  }
  return d;
}

Matrix makeInput(const sema::ArgSpec& spec, kernels::InputGen& gen) {
  const sema::Shape& s = spec.type.shape;
  auto rows = s.rows.extent();
  auto cols = s.cols.extent();
  if (spec.type.elem == sema::Elem::Complex) {
    Matrix m = Matrix::zeros(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols),
                             true);
    for (std::size_t i = 0; i < m.numel(); ++i) m.set(i, Complex{gen.next(), gen.next()});
    return m;
  }
  Matrix m = gen.matrix(rows, cols);
  return m;
}

int cmdIsa(int argc, char** argv) {
  std::string preset = "dspx";
  std::string file;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--preset" && i + 1 < argc) {
      preset = argv[++i];
    } else if (a == "--isa-file" && i + 1 < argc) {
      file = argv[++i];
    } else {
      return usage();
    }
  }
  isa::IsaDescription d;
  if (!file.empty()) {
    auto loaded = loadIsaFile(file);
    if (!loaded) return 1;
    d = *loaded;
  } else {
    try {
      d = isa::IsaDescription::preset(preset);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mat2c: %s\navailable presets:", e.what());
      for (const auto& n : isa::IsaDescription::presetNames()) {
        std::fprintf(stderr, " %s", n.c_str());
      }
      std::fprintf(stderr, "\n");
      return 1;
    }
  }
  std::printf("%s", d.serialize().c_str());
  return 0;
}

int cmdListIsas() {
  for (const auto& name : isa::IsaDescription::presetNames()) {
    isa::IsaDescription d = isa::IsaDescription::preset(name);
    std::string units;
    if (d.hasFma()) units += " fma";
    if (d.hasCmul()) units += " cmul";
    if (d.hasCmac()) units += " cmac";
    if (d.hasZol()) units += " zol";
    if (d.hasAgu()) units += " agu";
    if (units.empty()) units = " (no custom units)";
    std::printf("%-15s f64x%-2d c64x%-2d mem%-2d%s\n", name.c_str(), d.lanesF64(),
                d.lanesC64(), d.memLanes(), units.c_str());
  }
  return 0;
}

int cmdExplore(int argc, char** argv) {
  std::string kernelsCsv;
  std::string jsonPath;
  std::string emitPath;
  dse::ExploreOptions opts;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mat2c: %s expects a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--kernels") {
      kernelsCsv = need("--kernels");
    } else if (a == "--top") {
      opts.topCandidates = static_cast<int>(parseIntFlag("--top", need("--top"), 0, 64));
    } else if (a == "--no-fused") {
      opts.exploreFused = false;
    } else if (a == "--json") {
      jsonPath = need("--json");
    } else if (a == "--emit-isa") {
      emitPath = need("--emit-isa");
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "mat2c: unknown option '%s'\n", a.c_str());
      return 2;
    }
  }
  if (!kernelsCsv.empty()) {
    std::vector<kernels::KernelSpec> corpus;
    for (const auto& name : split(kernelsCsv, ',')) {
      std::string trimmed(trim(name));
      if (trimmed.empty()) continue;
      bool found = false;
      for (auto& spec : kernels::dseCorpus()) {
        if (spec.name == trimmed) {
          corpus.push_back(std::move(spec));
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "mat2c: unknown corpus kernel '%s' (see the first nine of "
                             "`mat2c list-kernels`)\n",
                     trimmed.c_str());
        return 2;
      }
    }
    opts.corpus = std::move(corpus);
  }
  if (!quiet) opts.progress = &std::cerr;

  try {
    dse::ExploreResult result = dse::explore(opts);
    std::printf("Mined idioms (top %zu by dynamic count):\n%s\n", result.idioms.size(),
                dse::idiomTable(result).c_str());
    if (!result.candidates.empty()) {
      std::printf("Synthesized fused-instruction candidates:\n%s\n",
                  dse::candidateTable(result).c_str());
    }
    std::printf("Pareto frontier (%d design points scored):\n%s\n",
                result.pointsEvaluated, dse::paretoTable(result).c_str());
    std::printf("winner: %s — geomean %.2fx vs scalar at hw cost %.0f units "
                "(dspx: %.2fx at %.0f)\n",
                result.best.point.label().c_str(), result.best.geomean,
                result.best.hwCost, result.dspxRef.geomean, result.dspxRef.hwCost);
    double worstErr = 0.0;
    for (const auto& [name, err] : result.bestMaxAbsErr) worstErr = std::max(worstErr, err);
    std::printf("oracle check at winner: max |error| vs interpreter = %g\n", worstErr);
    if (!emitPath.empty()) {
      std::ofstream out(emitPath);
      if (!out) {
        std::fprintf(stderr, "mat2c: cannot write '%s'\n", emitPath.c_str());
        return 1;
      }
      out << dse::isaFileText(result);
      std::fprintf(stderr, "mat2c: wrote %s\n", emitPath.c_str());
    }
    if (!jsonPath.empty()) {
      std::ofstream out(jsonPath);
      if (!out) {
        std::fprintf(stderr, "mat2c: cannot write '%s'\n", jsonPath.c_str());
        return 1;
      }
      out << dse::benchJson(result);
      std::fprintf(stderr, "mat2c: wrote %s\n", jsonPath.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mat2c: explore failed: %s\n", e.what());
    return 1;
  }
  return 0;
}

int cmdTune(int argc, char** argv) {
  std::string kernelsCsv;
  std::string jsonPath;
  std::string isaPreset = "dspx";
  std::string isaFile;
  tune::TuneOptions topt;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mat2c: %s expects a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--kernels") {
      kernelsCsv = need("--kernels");
    } else if (a == "--budget") {
      topt.budget = static_cast<int>(parseIntFlag("--budget", need("--budget"), 1, 100000));
    } else if (a == "--json") {
      jsonPath = need("--json");
    } else if (a == "--isa") {
      isaPreset = need("--isa");
    } else if (a == "--isa-file") {
      isaFile = need("--isa-file");
    } else if (a == "--seed") {
      topt.seed =
          static_cast<unsigned>(parseIntFlag("--seed", need("--seed"), 0, 4294967295LL));
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "mat2c: unknown option '%s'\n", a.c_str());
      return 2;
    }
  }

  CompileOptions base;
  try {
    base = CompileOptions::proposed(isaPreset);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mat2c: %s\navailable presets (see `mat2c list-isas`):",
                 e.what());
    for (const auto& n : isa::IsaDescription::presetNames()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  if (!isaFile.empty()) {
    auto loaded = loadIsaFile(isaFile);
    if (!loaded) return 1;
    base.isa = *loaded;
  }

  // Kernel selection: the tune corpus (reduced sizes) by name when possible,
  // any full-size corpus kernel otherwise, so `--kernels fft` still works.
  std::vector<kernels::KernelSpec> corpus;
  if (kernelsCsv.empty()) {
    corpus = kernels::tuneCorpus();
  } else {
    std::vector<kernels::KernelSpec> pool = kernels::tuneCorpus();
    for (const auto& name : split(kernelsCsv, ',')) {
      std::string trimmed(trim(name));
      if (trimmed.empty()) continue;
      bool found = false;
      for (auto& spec : pool) {
        if (spec.name == trimmed) {
          corpus.push_back(spec);
          found = true;
          break;
        }
      }
      if (found) continue;
      try {
        corpus.push_back(kernels::kernelByName(trimmed));
      } catch (const std::exception&) {
        std::fprintf(stderr, "mat2c: unknown kernel '%s' (see `mat2c list-kernels`)\n",
                     trimmed.c_str());
        return 2;
      }
    }
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "mat2c: no kernels selected\n");
    return 2;
  }

  std::vector<tune::TuneReport> reports;
  int improved = 0;
  for (const auto& spec : corpus) {
    if (!quiet) std::fprintf(stderr, "mat2c: tuning %s...\n", spec.name.c_str());
    tune::TuneInput input;
    input.source = spec.source;
    input.entry = spec.entry;
    input.argSpecs = spec.argSpecs;
    input.args = spec.args;
    input.base = base;
    try {
      tune::TuneResult result = tune::autotune(input, topt);
      result.report.kernel = spec.name;  // corpus id, not just the entry name
      if (result.report.tunedCycles < result.report.defaultCycles) ++improved;
      reports.push_back(std::move(result.report));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mat2c: tune failed for '%s': %s\n", spec.name.c_str(),
                   e.what());
      return 1;
    }
  }

  std::printf("Autotune results (budget %d, search space %d):\n%s\n", topt.budget,
              tune::searchSpaceSize(topt), tune::reportTable(reports).c_str());
  std::printf("%d of %zu kernel(s) beat the default pipeline\n", improved,
              reports.size());
  if (!jsonPath.empty()) {
    std::ofstream out(jsonPath);
    if (!out) {
      std::fprintf(stderr, "mat2c: cannot write '%s'\n", jsonPath.c_str());
      return 1;
    }
    out << tune::benchJson(reports, base.isa.name());
    std::fprintf(stderr, "mat2c: wrote %s\n", jsonPath.c_str());
  }
  return 0;
}

int cmdListKernels() {
  for (const auto& k : kernels::dspBenchmarkSuite()) {
    std::printf("%-10s %s\n", k.name.c_str(), k.title.c_str());
  }
  for (const auto& k : kernels::extendedKernelSuite()) {
    std::printf("%-10s %s (extended)\n", k.name.c_str(), k.title.c_str());
  }
  return 0;
}

int cmdCompile(int argc, char** argv) {
  std::string source;
  std::string entry;
  std::string argsText;
  std::string emitPath;
  std::string isaFile;
  std::string isaPreset = "dspx";
  bool coder = false;
  bool dumpLir = false;
  bool run = false;
  bool validate = false;
  bool noVectorize = false;
  bool noIdioms = false;
  bool noSinkDecls = false;
  bool noFuseLoops = false;
  bool noUnroll = false;
  bool noLicm = false;
  bool noCse = false;
  bool noDeadStores = false;
  bool reassoc = false;
  int unrollMaxTrip = -1;
  bool timePasses = false;
  bool verifyEach = false;
  bool tracePasses = false;
  std::string telemetryPath;
  unsigned seed = 1;

  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mat2c: %s expects a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--entry") {
      entry = need("--entry");
    } else if (a == "--args") {
      argsText = need("--args");
    } else if (a == "--emit-c") {
      emitPath = need("--emit-c");
    } else if (a == "--isa") {
      isaPreset = need("--isa");
    } else if (a == "--isa-file") {
      isaFile = need("--isa-file");
    } else if (a == "--style") {
      coder = std::string(need("--style")) == "coder";
    } else if (a == "--seed") {
      seed = static_cast<unsigned>(parseIntFlag("--seed", need("--seed"), 0, 4294967295LL));
    } else if (a == "--dump-lir") {
      dumpLir = true;
    } else if (a == "--run") {
      run = true;
    } else if (a == "--validate") {
      validate = true;
    } else if (a == "--no-vectorize") {
      noVectorize = true;
    } else if (a == "--no-idioms") {
      noIdioms = true;
    } else if (a == "--no-sink-decls") {
      noSinkDecls = true;
    } else if (a == "--no-fuse-loops") {
      noFuseLoops = true;
    } else if (a == "--no-unroll") {
      noUnroll = true;
    } else if (a == "--no-licm") {
      noLicm = true;
    } else if (a == "--no-cse") {
      noCse = true;
    } else if (a == "--no-dead-stores") {
      noDeadStores = true;
    } else if (a == "--reassoc") {
      reassoc = true;
    } else if (a == "--unroll-max-trip") {
      unrollMaxTrip = static_cast<int>(
          parseIntFlag("--unroll-max-trip", need("--unroll-max-trip"), 0, 1 << 20));
    } else if (a == "--time-passes") {
      timePasses = true;
    } else if (a == "--verify-each") {
      verifyEach = true;
    } else if (a == "--trace-passes") {
      tracePasses = true;
    } else if (a == "--telemetry-json") {
      telemetryPath = need("--telemetry-json");
    } else if (a == "-e") {
      source = need("-e");
    } else if (!a.empty() && a[0] != '-' && source.empty()) {
      std::ifstream in(a);
      if (!in) {
        std::fprintf(stderr, "mat2c: cannot open '%s'\n", a.c_str());
        return 1;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      source = ss.str();
    } else {
      std::fprintf(stderr, "mat2c: unknown option '%s'\n", a.c_str());
      return 2;
    }
  }
  if (source.empty() || entry.empty()) return usage();

  std::vector<sema::ArgSpec> specs;
  std::string badSpec;
  if (!service::parseArgSpecList(argsText, specs, badSpec)) {
    std::fprintf(stderr,
                 "mat2c: bad arg spec '%s' (dims must be positive integers with no "
                 "trailing characters; want e.g. 1x1024 or c1x64)\n",
                 badSpec.c_str());
    return 2;
  }

  CompileOptions options;
  try {
    options = coder ? CompileOptions::coderLike(isaPreset)
                    : CompileOptions::proposed(isaPreset);
  } catch (const std::exception& e) {
    // Unknown --isa spelling is a usage error (exit 2), not an abort.
    std::fprintf(stderr, "mat2c: %s\navailable presets (see `mat2c list-isas`):",
                 e.what());
    for (const auto& n : isa::IsaDescription::presetNames()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  if (!isaFile.empty()) {
    auto loaded = loadIsaFile(isaFile);
    if (!loaded) return 1;
    options.isa = *loaded;
  }
  if (noVectorize) options.vectorize = false;
  if (noIdioms) options.idioms = false;
  if (noSinkDecls) options.sinkDecls = false;
  if (noFuseLoops) options.fuseLoops = false;
  if (noUnroll) options.unrollRecurrences = false;
  if (noLicm) options.licm = false;
  if (noCse) options.cse = false;
  if (noDeadStores) options.deadStores = false;
  if (reassoc) options.reassoc = true;
  if (unrollMaxTrip >= 0) options.unrollMaxTrip = unrollMaxTrip;
  options.verifyEach = verifyEach;
  if (tracePasses) {
    options.tracePasses = [](const opt::PassRecord& rec, const lir::Function& fn) {
      std::fprintf(stderr, "mat2c: --- LIR after pass '%s' (%.3f ms) ---\n%s\n",
                   rec.name.c_str(), rec.millis, lir::print(fn).c_str());
    };
  }

  Compiler compiler;
  try {
    auto unit = compiler.compileSource(source, entry, specs, options);

    std::fprintf(stderr, "mat2c: compiled '%s' for target '%s' (%d loop(s) vectorized, "
                         "%d MAC rewrite(s))\n",
                 entry.c_str(), options.isa.name().c_str(),
                 unit.optimizationReport().vec.loopsVectorized,
                 unit.optimizationReport().idiomRewrites);
    for (const auto& note : unit.optimizationReport().vec.missed) {
      std::fprintf(stderr, "mat2c: note: %s\n", note.c_str());
    }
    if (timePasses) {
      std::fprintf(stderr, "mat2c: per-pass telemetry (%.3f ms total):\n%s",
                   unit.optimizationReport().totalMillis,
                   report::passTable(unit.optimizationReport()).toString().c_str());
    }
    if (!telemetryPath.empty()) {
      std::ofstream out(telemetryPath);
      if (!out) {
        std::fprintf(stderr, "mat2c: cannot write '%s'\n", telemetryPath.c_str());
        return 1;
      }
      out << report::telemetryJson(unit.optimizationReport(), entry,
                                   options.isa.name());
      std::fprintf(stderr, "mat2c: wrote %s\n", telemetryPath.c_str());
    }

    if (dumpLir) std::printf("%s\n", unit.lirDump().c_str());
    if (!emitPath.empty()) {
      std::ofstream out(emitPath);
      out << unit.cCode();
      std::fprintf(stderr, "mat2c: wrote %s\n", emitPath.c_str());
    }
    if (emitPath.empty() && !dumpLir && !run && !validate) {
      std::printf("%s", unit.cCode().c_str());
    }

    if (run || validate) {
      kernels::InputGen gen(seed);
      std::vector<Matrix> inputs;
      inputs.reserve(specs.size());
      for (const auto& spec : specs) inputs.push_back(makeInput(spec, gen));
      auto result = unit.run(inputs);
      std::printf("cycles: %.0f\n", result.cycles.total);
      for (const auto& [cat, v] : result.cycles.byCategory) {
        std::printf("  %-8s %.0f\n", cat.c_str(), v);
      }
      for (std::size_t i = 0; i < result.outputs.size(); ++i) {
        std::printf("out%zu = %s\n", i, result.outputs[i].toString().c_str());
      }
      if (validate) {
        double err = validateAgainstInterpreter(source, entry, unit, inputs);
        std::printf("max |error| vs interpreter: %g\n", err);
        if (err > 1e-9) {
          std::fprintf(stderr, "mat2c: VALIDATION FAILED\n");
          return 1;
        }
      }
    }
  } catch (const CompileError& e) {
    std::fprintf(stderr, "mat2c: compile error:\n%s\n", e.what());
    return 1;
  } catch (const RuntimeError& e) {
    std::fprintf(stderr, "mat2c: runtime error: %s\n", e.what());
    return 1;
  }
  return 0;
}

volatile std::sig_atomic_t gSighup = 0;
void sighupHandler(int) { gSighup = 1; }

struct ServeOptions {
  std::string inputPath = "-";
  bool binary = false;
  service::CompileService::Config config;
  service::ProtocolLimits protocolLimits;
  double defaultDeadlineMillis = 0.0;  // applied to requests without their own
  std::string statsPath;
  std::string metricsPath;
  std::string isaFile;    ///< server-default ISA with hot reload ("" = dspx)
  int shards = 0;         ///< >0: supervisor mode (N worker processes)
  double hedgeMillis = 0.0;
  int maxRestarts = 8;
  std::uint64_t seed = 1;
  /// Flags forwarded verbatim to shard workers in supervisor mode.
  std::vector<std::string> workerArgs;
};

/// Single-process serve loop: ingest on this thread, emit on a writer thread
/// so responses stream out in input order as they complete — a prerequisite
/// for running under the shard supervisor, whose readmission probe would
/// deadlock against batch-at-EOF emission.
int runServeSingle(const ServeOptions& opt, std::istream& in) {
  std::optional<service::IsaRegistry> registry;
  if (!opt.isaFile.empty()) {
    try {
      registry.emplace(service::IsaRegistry::parseFile(opt.isaFile), opt.isaFile);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mat2c: %s\n", e.what());
      return 1;
    }
  }
  service::CompileService::Config config = opt.config;
  if (registry) config.isaRegistry = &*registry;

  service::CompileService serviceInstance(config);
  if (!config.storeDir.empty() && serviceInstance.artifactStore() &&
      !serviceInstance.artifactStore()->ok()) {
    // Degraded, not fatal: the service keeps compiling from memory, every
    // write-behind counts a putFailure, and healthz reports degraded.
    std::fprintf(stderr, "mat2c: warning: %s; serving without persistence\n",
                 serviceInstance.artifactStore()->error().c_str());
  }

  auto t0 = std::chrono::steady_clock::now();

  // One slot per request; the writer fulfills them strictly in input order,
  // so output order is deterministic even though the pool completes jobs in
  // any order. Malformed requests get an immediate in-band error response.
  struct Slot {
    bool ready = false;
    service::CompileResponse response;
    std::future<service::CompileResponse> future;
  };
  std::deque<Slot> queue;
  std::mutex qmu;
  std::condition_variable qcv;
  bool ingestDone = false;
  std::atomic<std::size_t> failed{0};

  std::thread writer([&] {
    while (true) {
      Slot slot;
      {
        std::unique_lock<std::mutex> lk(qmu);
        qcv.wait(lk, [&] { return ingestDone || !queue.empty(); });
        if (queue.empty()) break;
        slot = std::move(queue.front());
        queue.pop_front();
      }
      service::CompileResponse response =
          slot.ready ? std::move(slot.response) : slot.future.get();
      if (!response.ok) ++failed;
      if (opt.binary) {
        std::string frame = service::encodeFrame(service::FrameType::Response,
                                                 service::encodeBinaryResponse(response));
        // Chaos point: a worker dying mid-write leaves the client a torn
        // frame (Torn: half the bytes) or nothing (Fail). Either way the
        // process must die — continuing after a skipped frame would shift
        // every later response onto the wrong request.
        fault::PointAction chaos = fault::atPoint("frame.write");
        if (chaos != fault::PointAction::None) {
          if (chaos == fault::PointAction::Torn) {
            std::fwrite(frame.data(), 1, frame.size() / 2, stdout);
          }
          std::fflush(stdout);
          std::_Exit(9);
        }
        std::fwrite(frame.data(), 1, frame.size(), stdout);
      } else {
        std::printf("%s\n", service::responseJson(response).c_str());
      }
      // Flush per response: downstream (supervisor, live clients) blocks on
      // answers, and stdout is fully buffered on a pipe.
      std::fflush(stdout);
    }
  });

  std::size_t requestCount = 0;  // answered requests (admin + compile + errors)
  auto push = [&](Slot&& slot) {
    ++requestCount;
    {
      std::lock_guard<std::mutex> lk(qmu);
      queue.push_back(std::move(slot));
    }
    qcv.notify_one();
  };
  auto pushReady = [&](service::CompileResponse r) {
    Slot slot;
    slot.ready = true;
    slot.response = std::move(r);
    push(std::move(slot));
  };

  // Admin requests are answered by the serve loop itself, synchronously with
  // ingest — so a reload orders naturally against compiles: requests already
  // submitted keep the ISA they were stamped with, later ones see the new one.
  auto handleAdmin = [&](const service::WireRequest& wire) {
    service::CompileResponse r;
    r.id = wire.id;
    if (wire.admin == "healthz") {
      r.ok = true;
      r.adminInfo = service::healthzText(serviceInstance.stats());
    } else if (wire.admin == "stats") {
      double wallSoFar =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count();
      r.ok = true;
      r.adminInfo = service::statsJson(serviceInstance.stats(), wallSoFar);
    } else if (wire.admin == "reload") {
      if (!registry) {
        r.error = "reload requires --isa-file";
        r.errorKind = ErrorKind::ParseError;
      } else {
        std::string why = registry->reload();
        if (why.empty()) {
          r.ok = true;
          r.adminInfo = "reloaded '" + opt.isaFile + "' as '" +
                        registry->snapshot().isa->name() + "' (version " +
                        std::to_string(registry->version()) + ")";
        } else {
          r.error = "reload failed (previous ISA kept): " + why;
          r.errorKind = ErrorKind::ParseError;
        }
      }
    } else {
      r.error = "unknown admin command '" + wire.admin + "'";
      r.errorKind = ErrorKind::ParseError;
    }
    return r;
  };
  auto checkSighup = [&] {
    if (!gSighup) return;
    gSighup = 0;
    if (!registry) return;
    std::string why = registry->reload();
    if (why.empty()) {
      std::fprintf(stderr, "mat2c: SIGHUP: reloaded '%s' (version %llu)\n",
                   opt.isaFile.c_str(),
                   static_cast<unsigned long long>(registry->version()));
    } else {
      std::fprintf(stderr, "mat2c: SIGHUP: reload failed (previous ISA kept): %s\n",
                   why.c_str());
    }
  };

  std::size_t lineNo = 0;
  if (opt.binary) {
    // Length-prefixed frames: no line structure, no JSON. A framing error is
    // not resynchronizable (the stream position is unknown), so it produces
    // one in-band error response and ends ingest; a *request* decode error
    // is per-frame and ingest continues.
    while (true) {
      checkSighup();
      service::FrameType type{};
      std::string payload;
      std::string error;
      int rc = service::readFrame(in, type, payload, error, opt.protocolLimits);
      if (rc == 0) break;
      ++lineNo;
      if (rc < 0) {
        service::CompileResponse r;
        r.id = "frame" + std::to_string(lineNo);
        r.error = "bad frame: " + error;
        r.errorKind = startsWith(error, "frame payload is") ? ErrorKind::ResourceExhausted
                                                            : ErrorKind::ParseError;
        pushReady(std::move(r));
        break;
      }
      if (type != service::FrameType::Request) {
        service::CompileResponse r;
        r.id = "frame" + std::to_string(lineNo);
        r.error = "bad frame: expected a request frame";
        r.errorKind = ErrorKind::ParseError;
        pushReady(std::move(r));
        continue;
      }
      service::WireRequest wire;
      if (!service::decodeBinaryRequest(payload, wire, error)) {
        service::CompileResponse r;
        r.id = wire.id.empty() ? "frame" + std::to_string(lineNo) : wire.id;
        r.error = "bad request: " + error;
        r.errorKind = ErrorKind::ParseError;
        pushReady(std::move(r));
        continue;
      }
      if (wire.id.empty()) wire.id = "frame" + std::to_string(lineNo);
      if (!wire.admin.empty()) {
        pushReady(handleAdmin(wire));
        continue;
      }
      service::CompileRequest request;
      if (!wire.resolve(request, error)) {
        service::CompileResponse r;
        r.id = wire.id;
        r.error = "bad request: " + error;
        r.errorKind = ErrorKind::ParseError;
        pushReady(std::move(r));
        continue;
      }
      if (request.deadlineMillis <= 0) request.deadlineMillis = opt.defaultDeadlineMillis;
      Slot slot;
      slot.future = serviceInstance.submit(std::move(request));
      push(std::move(slot));
    }
  } else {
    std::string line;
    while (std::getline(in, line)) {
      checkSighup();
      ++lineNo;
      std::string_view stripped = trim(line);
      if (stripped.empty() || stripped[0] == '#') continue;
      service::WireRequest wire;
      std::string error;
      ErrorKind errorKind = ErrorKind::None;
      if (!service::parseWireRequest(stripped, wire, error, &errorKind,
                                     opt.protocolLimits)) {
        service::CompileResponse r;
        r.id = "line" + std::to_string(lineNo);
        r.error = "bad request: " + error;
        r.errorKind = errorKind;
        pushReady(std::move(r));
        continue;
      }
      if (wire.id.empty()) wire.id = "line" + std::to_string(lineNo);
      if (!wire.admin.empty()) {
        pushReady(handleAdmin(wire));
        continue;
      }
      service::CompileRequest request;
      if (!wire.resolve(request, error)) {
        service::CompileResponse r;
        r.id = wire.id;
        r.error = "bad request: " + error;
        r.errorKind = ErrorKind::ParseError;
        pushReady(std::move(r));
        continue;
      }
      if (request.deadlineMillis <= 0) request.deadlineMillis = opt.defaultDeadlineMillis;
      Slot slot;
      slot.future = serviceInstance.submit(std::move(request));
      push(std::move(slot));
    }
  }

  {
    std::lock_guard<std::mutex> lk(qmu);
    ingestDone = true;
  }
  qcv.notify_all();
  writer.join();
  double wallMillis =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  service::ServiceStats stats = serviceInstance.stats();
  std::string statsDoc = service::statsJson(stats, wallMillis);
  if (!opt.statsPath.empty()) {
    std::ofstream out(opt.statsPath);
    if (!out) {
      std::fprintf(stderr, "mat2c: cannot write '%s'\n", opt.statsPath.c_str());
      return 1;
    }
    out << statsDoc;
  } else {
    std::fprintf(stderr, "%s", statsDoc.c_str());
  }
  if (!opt.metricsPath.empty()) {
    std::ofstream out(opt.metricsPath);
    if (!out) {
      std::fprintf(stderr, "mat2c: cannot write '%s'\n", opt.metricsPath.c_str());
      return 1;
    }
    out << service::metricsText(stats, wallMillis);
  }
  std::fprintf(stderr,
               "mat2c: served %zu request(s) on %zu thread(s): %llu compile(s), "
               "%llu cache hit(s) (%llu from store), %llu dedup join(s), "
               "%zu failure(s), %.1f ms, healthz: %s\n",
               requestCount, serviceInstance.threadCount(),
               static_cast<unsigned long long>(stats.compiles),
               static_cast<unsigned long long>(stats.cacheHits),
               static_cast<unsigned long long>(stats.storeHits),
               static_cast<unsigned long long>(stats.dedupJoins), failed.load(), wallMillis,
               service::healthzText(stats).c_str());
  // Per-request failures are reported in-band (the "ok" field); only a
  // completely failed batch is an error exit.
  return requestCount > 0 && failed.load() == requestCount ? 1 : 0;
}

std::string supervisorStatsJson(const service::ShardSupervisor::Stats& s,
                                std::size_t requests, double wallMillis) {
  std::ostringstream os;
  os << "{\n  \"requests\": " << requests << ",\n  \"completed\": " << s.completed
     << ",\n  \"restarts\": " << s.restarts << ",\n  \"redispatched\": " << s.redispatched
     << ",\n  \"hedges\": " << s.hedges << ",\n  \"hedgeWins\": " << s.hedgeWins
     << ",\n  \"reloads\": " << s.reloads << ",\n  \"failedNoShard\": " << s.failedNoShard
     << ",\n  \"shardsAlive\": " << s.shardsAlive
     << ",\n  \"shardsEjected\": " << s.shardsEjected << ",\n  \"wallMillis\": "
     << wallMillis << "\n}\n";
  return os.str();
}

/// Supervisor serve loop: N worker processes behind consistent-hash routing,
/// crash restart with backoff, re-dispatch, and optional hedging. The
/// supervisor itself never compiles; it forwards wire requests and relays the
/// workers' binary responses (re-rendered as JSON lines when the client side
/// is JSON).
int runServeSupervisor(const ServeOptions& opt, std::istream& in) {
  service::ShardSupervisor::Config sc;
  sc.shards = opt.shards;
  sc.workerArgs = opt.workerArgs;
  sc.maxRestarts = opt.maxRestarts;
  sc.seed = opt.seed;
  sc.hedgeMillis = opt.hedgeMillis;
  service::ShardSupervisor supervisor(sc);
  std::string error;
  if (!supervisor.start(error)) {
    std::fprintf(stderr, "mat2c: cannot start shard fleet: %s\n", error.c_str());
    return 1;
  }

  auto t0 = std::chrono::steady_clock::now();

  // Input-order emission, same contract as the single-process server: the
  // writer waits on the oldest un-answered slot even while younger ones are
  // already done.
  struct OutSlot {
    bool ready = false;
    std::string payload;  ///< raw worker payload ("" = synthesized locally)
    service::BinaryResponse decoded;
  };
  std::deque<std::shared_ptr<OutSlot>> order;
  std::mutex omu;
  std::condition_variable ocv;
  bool ingestDone = false;
  std::atomic<std::size_t> failed{0};

  std::thread writer([&] {
    while (true) {
      std::shared_ptr<OutSlot> slot;
      {
        std::unique_lock<std::mutex> lk(omu);
        ocv.wait(lk, [&] {
          return (ingestDone && order.empty()) || (!order.empty() && order.front()->ready);
        });
        if (order.empty()) break;
        slot = order.front();
        order.pop_front();
      }
      if (!slot->decoded.ok) ++failed;
      if (opt.binary) {
        std::string payload =
            slot->payload.empty() ? service::encodeBinaryResponse(slot->decoded)
                                  : slot->payload;
        std::string frame = service::encodeFrame(service::FrameType::Response, payload);
        std::fwrite(frame.data(), 1, frame.size(), stdout);
      } else {
        std::printf("%s\n", service::responseJson(slot->decoded).c_str());
      }
      std::fflush(stdout);
    }
  });

  std::size_t requestCount = 0;  // answered requests (admin + compile + errors)
  auto pushReady = [&](service::BinaryResponse r) {
    ++requestCount;
    auto slot = std::make_shared<OutSlot>();
    slot->decoded = std::move(r);
    slot->ready = true;
    {
      std::lock_guard<std::mutex> lk(omu);
      order.push_back(slot);
    }
    ocv.notify_all();
  };
  auto submitWire = [&](const service::WireRequest& wire) {
    ++requestCount;
    auto slot = std::make_shared<OutSlot>();
    {
      std::lock_guard<std::mutex> lk(omu);
      order.push_back(slot);
    }
    supervisor.submit(wire, [slot, &omu, &ocv](const std::string& raw,
                                               const service::BinaryResponse& decoded) {
      {
        std::lock_guard<std::mutex> lk(omu);
        slot->payload = raw;
        slot->decoded = decoded;
        slot->ready = true;
      }
      ocv.notify_all();
    });
  };

  auto handleAdmin = [&](const service::WireRequest& wire) {
    service::BinaryResponse r;
    r.id = wire.id;
    if (wire.admin == "reload") {
      int n = supervisor.broadcastReload();
      r.ok = true;
      r.adminInfo = "reload broadcast to " + std::to_string(n) + " shard(s)";
    } else if (wire.admin == "healthz") {
      service::ShardSupervisor::Stats s = supervisor.stats();
      r.ok = true;
      int total = static_cast<int>(s.pids.size());
      if (s.shardsAlive == total) {
        r.adminInfo = "ok (" + std::to_string(s.shardsAlive) + "/" +
                      std::to_string(total) + " shards alive)";
      } else {
        r.adminInfo = "degraded (" + std::to_string(s.shardsAlive) + "/" +
                      std::to_string(total) + " shards alive, " +
                      std::to_string(s.shardsEjected) + " ejected)";
      }
    } else if (wire.admin == "stats") {
      double wallSoFar =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count();
      r.ok = true;
      r.adminInfo = supervisorStatsJson(supervisor.stats(), 0, wallSoFar);
    } else {
      r.error = "unknown admin command '" + wire.admin + "'";
      r.errorKind = ErrorKind::ParseError;
    }
    pushReady(std::move(r));
  };
  auto checkSighup = [&] {
    if (!gSighup) return;
    gSighup = 0;
    int n = supervisor.broadcastReload();
    std::fprintf(stderr, "mat2c: SIGHUP: reload broadcast to %d shard(s)\n", n);
  };

  std::size_t lineNo = 0;
  if (opt.binary) {
    while (true) {
      checkSighup();
      service::FrameType type{};
      std::string payload;
      int rc = service::readFrame(in, type, payload, error, opt.protocolLimits);
      if (rc == 0) break;
      ++lineNo;
      if (rc < 0 || type != service::FrameType::Request) {
        service::BinaryResponse r;
        r.id = "frame" + std::to_string(lineNo);
        r.error = rc < 0 ? "bad frame: " + error : "bad frame: expected a request frame";
        r.errorKind = rc < 0 && startsWith(error, "frame payload is")
                          ? ErrorKind::ResourceExhausted
                          : ErrorKind::ParseError;
        pushReady(std::move(r));
        if (rc < 0) break;
        continue;
      }
      service::WireRequest wire;
      if (!service::decodeBinaryRequest(payload, wire, error)) {
        service::BinaryResponse r;
        r.id = wire.id.empty() ? "frame" + std::to_string(lineNo) : wire.id;
        r.error = "bad request: " + error;
        r.errorKind = ErrorKind::ParseError;
        pushReady(std::move(r));
        continue;
      }
      if (wire.id.empty()) wire.id = "frame" + std::to_string(lineNo);
      if (!wire.admin.empty()) {
        handleAdmin(wire);
        continue;
      }
      submitWire(wire);
    }
  } else {
    std::string line;
    while (std::getline(in, line)) {
      checkSighup();
      ++lineNo;
      std::string_view stripped = trim(line);
      if (stripped.empty() || stripped[0] == '#') continue;
      service::WireRequest wire;
      ErrorKind errorKind = ErrorKind::None;
      if (!service::parseWireRequest(stripped, wire, error, &errorKind,
                                     opt.protocolLimits)) {
        service::BinaryResponse r;
        r.id = "line" + std::to_string(lineNo);
        r.error = "bad request: " + error;
        r.errorKind = errorKind;
        pushReady(std::move(r));
        continue;
      }
      if (wire.id.empty()) wire.id = "line" + std::to_string(lineNo);
      if (!wire.admin.empty()) {
        handleAdmin(wire);
        continue;
      }
      submitWire(wire);
    }
  }

  {
    std::lock_guard<std::mutex> lk(omu);
    ingestDone = true;
  }
  ocv.notify_all();
  writer.join();
  supervisor.shutdown();
  double wallMillis =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  service::ShardSupervisor::Stats ss = supervisor.stats();
  std::string statsDoc = supervisorStatsJson(ss, requestCount, wallMillis);
  if (!opt.statsPath.empty()) {
    std::ofstream out(opt.statsPath);
    if (!out) {
      std::fprintf(stderr, "mat2c: cannot write '%s'\n", opt.statsPath.c_str());
      return 1;
    }
    out << statsDoc;
  } else {
    std::fprintf(stderr, "%s", statsDoc.c_str());
  }
  if (!opt.metricsPath.empty()) {
    std::ofstream out(opt.metricsPath);
    if (!out) {
      std::fprintf(stderr, "mat2c: cannot write '%s'\n", opt.metricsPath.c_str());
      return 1;
    }
    out << supervisor.metricsText();
  }
  std::fprintf(stderr,
               "mat2c: supervised %d shard(s): %zu request(s), %llu restart(s), "
               "%llu redispatch(es), %llu hedge(s) (%llu won), %llu reload "
               "broadcast(s), %zu failure(s), %.1f ms\n",
               opt.shards, requestCount, static_cast<unsigned long long>(ss.restarts),
               static_cast<unsigned long long>(ss.redispatched),
               static_cast<unsigned long long>(ss.hedges),
               static_cast<unsigned long long>(ss.hedgeWins),
               static_cast<unsigned long long>(ss.reloads), failed.load(), wallMillis);
  return requestCount > 0 && failed.load() == requestCount ? 1 : 0;
}

int cmdServe(int argc, char** argv) {
  ServeOptions opt;
  bool sawInput = false;

  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mat2c: %s expects a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    // Worker-relevant flags are remembered verbatim so --shards mode can
    // forward them to every worker process unchanged.
    auto passthrough = [&](const char* flag, const char* value) {
      opt.workerArgs.push_back(flag);
      opt.workerArgs.push_back(value);
    };
    if (a == "--jobs") {
      const char* v = need("--jobs");
      opt.config.threads = static_cast<std::size_t>(parseIntFlag("--jobs", v, 1, 4096));
      passthrough("--jobs", v);
    } else if (a == "--cache-entries") {
      const char* v = need("--cache-entries");
      opt.config.cacheEntries =
          static_cast<std::size_t>(parseIntFlag("--cache-entries", v, 0, 1 << 30));
      passthrough("--cache-entries", v);
    } else if (a == "--stats-json") {
      opt.statsPath = need("--stats-json");
    } else if (a == "--metrics") {
      opt.metricsPath = need("--metrics");
    } else if (a == "--max-request-bytes") {
      const char* v = need("--max-request-bytes");
      opt.protocolLimits.maxRequestBytes =
          static_cast<std::size_t>(parseIntFlag("--max-request-bytes", v, 1, 1LL << 40));
      passthrough("--max-request-bytes", v);
    } else if (a == "--deadline-ms") {
      const char* v = need("--deadline-ms");
      opt.defaultDeadlineMillis = parseDoubleFlag("--deadline-ms", v, 0.0, 1e9);
      passthrough("--deadline-ms", v);
    } else if (a == "--store-dir") {
      const char* v = need("--store-dir");
      opt.config.storeDir = v;
      passthrough("--store-dir", v);
    } else if (a == "--max-store-bytes") {
      const char* v = need("--max-store-bytes");
      opt.config.maxStoreBytes =
          static_cast<std::size_t>(parseIntFlag("--max-store-bytes", v, 0, 1LL << 50));
      passthrough("--max-store-bytes", v);
    } else if (a == "--tenant-inflight") {
      const char* v = need("--tenant-inflight");
      opt.config.tenantInflightCap =
          static_cast<std::size_t>(parseIntFlag("--tenant-inflight", v, 0, 1 << 20));
      passthrough("--tenant-inflight", v);
    } else if (a == "--isa-file") {
      const char* v = need("--isa-file");
      opt.isaFile = v;
      passthrough("--isa-file", v);
    } else if (a == "--shards") {
      opt.shards = static_cast<int>(parseIntFlag("--shards", need("--shards"), 1, 256));
    } else if (a == "--hedge-ms") {
      opt.hedgeMillis = parseDoubleFlag("--hedge-ms", need("--hedge-ms"), 0.0, 1e9);
    } else if (a == "--max-restarts") {
      opt.maxRestarts =
          static_cast<int>(parseIntFlag("--max-restarts", need("--max-restarts"), 0, 1 << 20));
    } else if (a == "--seed") {
      opt.seed = static_cast<std::uint64_t>(
          parseIntFlag("--seed", need("--seed"), 0, 4294967295LL));
    } else if (a == "--binary") {
      opt.binary = true;
    } else if ((a == "-" || a[0] != '-') && !sawInput) {
      opt.inputPath = a;
      sawInput = true;
    } else {
      std::fprintf(stderr, "mat2c: unknown option '%s'\n", a.c_str());
      return 2;
    }
  }

  // Path validation is a usage error (exit 2), consistent with the strict
  // numeric flags: pointing the store at a file would silently disable
  // persistence otherwise.
  if (!opt.config.storeDir.empty()) {
    std::error_code ec;
    if (std::filesystem::exists(opt.config.storeDir, ec) &&
        !std::filesystem::is_directory(opt.config.storeDir, ec)) {
      std::fprintf(stderr, "mat2c: --store-dir '%s' exists and is not a directory\n",
                   opt.config.storeDir.c_str());
      return 2;
    }
  }

  std::ifstream file;
  if (opt.inputPath != "-") {
    file.open(opt.inputPath, opt.binary ? std::ios::in | std::ios::binary : std::ios::in);
    if (!file) {
      std::fprintf(stderr, "mat2c: cannot open '%s'\n", opt.inputPath.c_str());
      return 1;
    }
  }
  std::istream& in = opt.inputPath == "-" ? std::cin : file;

  std::signal(SIGHUP, sighupHandler);
  if (opt.shards > 0) return runServeSupervisor(opt, in);
  return runServeSingle(opt, in);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  if (cmd == "compile") return cmdCompile(argc, argv);
  if (cmd == "serve") return cmdServe(argc, argv);
  if (cmd == "isa") return cmdIsa(argc, argv);
  if (cmd == "list-isas" || cmd == "--list-isas") return cmdListIsas();
  if (cmd == "list-kernels") return cmdListKernels();
  if (cmd == "explore") return cmdExplore(argc, argv);
  if (cmd == "tune") return cmdTune(argc, argv);
  return usage();
}
