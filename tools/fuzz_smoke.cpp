// Deterministic fuzz smoke test for the hardened front end.
//
// 10,000 seeded-mutation iterations split across the untrusted-input
// surfaces: MATLAB source through Compiler::compileSource (under tight
// CompileLimits, so pathological mutants hit the resource guards instead of
// the OOM killer), JSON-lines requests through parseCompileRequest, binary
// frames through readFrame/decodeBinaryRequest/decodeBinaryResponse, and
// on-disk artifact images through ArtifactStore::deserialize. The contract
// under test is *containment*: every input either succeeds or is rejected
// with a classified error — nothing may crash, hang, or escape as an
// unclassified exception.
//
// Fully deterministic: a fixed xorshift64 seed (override: argv[1] seed,
// argv[2] iterations) and no wall-clock- or address-dependent decisions, so
// a failure reproduces by rerunning the same binary. Prints an outcome
// digest and "fuzz-smoke-ok" (the ctest pass pattern) on success.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "driver/compiler.hpp"
#include "service/artifact_store.hpp"
#include "service/protocol.hpp"

using namespace mat2c;

namespace {

struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed ? seed : 0x9e3779b97f4a7c15ull) {}
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::size_t below(std::size_t n) { return n ? static_cast<std::size_t>(next() % n) : 0; }
};

const char* kSourceCorpus[] = {
    "function y = f(x, h)\ny = 0;\nfor k = 1:length(x)\n  y = y + x(k) * h(k);\nend\nend\n",
    "function y = f(x)\ns = 0;\nfor k = 1:4\n  s = s * 0.5 + x(k);\nend\ny = s;\nend\n",
    "function y = f(x)\ns = 0;\nfor k = 4:-1:1\n  s = s * 0.5 + x(k);\nend\ny = s;\nend\n",
    "function y = f(x)\nif x(1) > 0\n  y = x .* 2;\nelse\n  y = x + 1;\nend\nend\n",
    "function y = f(a)\ny = zeros(1, 8);\nfor k = 1:8\n  y(k) = a(k) * a(k);\nend\nend\n",
    "function [y, n] = f(x)\ny = x * 2;\nn = sum(x);\nend\n",
};

const char* kRequestCorpus[] = {
    "{\"id\": \"a\", \"source\": \"function y = f(x)\\ny = x;\\nend\\n\", \"entry\": \"f\","
    " \"args\": \"1x8\"}",
    "{\"source\": \"function y = f(x)\\ny = x .* 2;\\nend\\n\", \"entry\": \"f\","
    " \"args\": \"1x16\", \"style\": \"coder\", \"deadline_ms\": 100}",
    "{\"source\": \"function y = f(x)\\ny = x;\\nend\\n\", \"entry\": \"f\","
    " \"args\": \"c1x4\", \"vectorize\": false, \"degrade\": false}",
    "{\"source\": \"s\", \"entry\": \"f\", \"isa\": \"scalar\"}",
};

const char* kDictionary[] = {"for",  "end", "function", "if",  "else", "while", "(",
                             ")",    "[",   "]",        "{",   "}",    ":",     ";",
                             "\"",   "\\",  ",",        "=",   "..",   "1e999", "0x",
                             "'",    "%",   "\n",       "\0x", ".*",   "deadline_ms"};

std::string mutate(std::string s, Rng& rng) {
  int edits = 1 + static_cast<int>(rng.below(4));
  for (int e = 0; e < edits; ++e) {
    switch (rng.below(6)) {
      case 0: {  // flip one byte
        if (s.empty()) break;
        s[rng.below(s.size())] = static_cast<char>(rng.next() & 0xFF);
        break;
      }
      case 1: {  // insert a byte (biased printable, occasionally control/NUL)
        char c = (rng.below(8) == 0) ? static_cast<char>(rng.below(32))
                                     : static_cast<char>(32 + rng.below(95));
        s.insert(s.begin() + static_cast<std::ptrdiff_t>(rng.below(s.size() + 1)), c);
        break;
      }
      case 2: {  // erase a span
        if (s.empty()) break;
        std::size_t at = rng.below(s.size());
        s.erase(at, rng.below(s.size() - at) + 1);
        break;
      }
      case 3: {  // duplicate a span (nesting amplifier)
        if (s.empty()) break;
        std::size_t at = rng.below(s.size());
        std::size_t len = rng.below(std::min<std::size_t>(s.size() - at, 16)) + 1;
        s.insert(at, s.substr(at, len));
        break;
      }
      case 4: {  // truncate
        s.resize(rng.below(s.size() + 1));
        break;
      }
      default: {  // splice a dictionary token
        const char* tok = kDictionary[rng.below(sizeof(kDictionary) / sizeof(*kDictionary))];
        s.insert(rng.below(s.size() + 1), tok);
        break;
      }
    }
  }
  return s;
}

/// Limits tight enough that amplifier mutants (nesting bombs, duplicated
/// loops) hit a structured guard instead of real resource pressure.
CompileOptions fuzzOptions(Rng& rng) {
  CompileOptions o = rng.below(4) == 0 ? CompileOptions::coderLike()
                                       : CompileOptions::proposed();
  o.limits.maxSourceBytes = 1u << 16;
  o.limits.maxAstNodes = 50'000;
  o.limits.maxAstDepth = 128;
  o.limits.maxLirOps = 50'000;
  o.limits.wallBudgetMillis = 1000;
  o.degrade = rng.below(2) == 0;
  return o;
}

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 0x100000001b3ull;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 0xC0FFEEull;
  long iterations = argc > 2 ? std::strtol(argv[2], nullptr, 0) : 10000;

  Rng rng(seed);
  std::uint64_t digest = 0xcbf29ce484222325ull;
  long compiled = 0, rejected = 0, parsed = 0, refused = 0;
  long framed = 0, unframed = 0, stored = 0, unstored = 0;

  // Seed images for the binary surfaces: well-formed frames/artifacts whose
  // mutants exercise deep rejection paths, not just the magic check.
  std::vector<std::string> binaryCorpus;
  {
    service::WireRequest wire;
    wire.id = "b1";
    wire.source = "function y = f(x)\ny = x;\nend\n";
    wire.entry = "f";
    wire.args = "1x8";
    wire.tenant = "fuzz";
    wire.deadlineMillis = 50.0;
    binaryCorpus.push_back(
        service::encodeFrame(service::FrameType::Request, service::encodeBinaryRequest(wire)));
    service::CompileResponse resp;
    resp.id = "b2";
    resp.error = "rejected";
    resp.errorKind = ErrorKind::SemaError;
    binaryCorpus.push_back(service::encodeFrame(service::FrameType::Response,
                                                service::encodeBinaryResponse(resp)));
  }
  std::vector<std::pair<service::CacheKey, std::string>> artifactCorpus;
  {
    service::CacheKey key = service::CacheKey::make(
        kSourceCorpus[0], "f", {sema::ArgSpec::row(8)}, CompileOptions::proposed());
    service::CachedResult::Meta meta;
    meta.isaName = "dspx";
    meta.loopsVectorized = 1;
    meta.degraded = {"licm"};
    service::CachedResult value("/* c */\n", std::move(meta), "reassoc=1", 9, 10.0, 25.0);
    artifactCorpus.emplace_back(key, service::ArtifactStore::serialize(key, value));
  }

  for (long i = 0; i < iterations; ++i) {
    int surface = static_cast<int>(i % 10);
    if (surface < 4) {
      // --- protocol surface -------------------------------------------
      std::string line =
          kRequestCorpus[rng.below(sizeof(kRequestCorpus) / sizeof(*kRequestCorpus))];
      if (rng.below(8) != 0) line = mutate(std::move(line), rng);
      service::ProtocolLimits limits;
      limits.maxRequestBytes = 8192;
      service::CompileRequest out;
      std::string error;
      ErrorKind kind = ErrorKind::None;
      bool ok;
      try {
        ok = service::parseCompileRequest(line, out, error, &kind, limits);
      } catch (...) {
        std::fprintf(stderr, "FUZZ FAIL iter %ld: parseCompileRequest threw on %zu-byte line\n",
                     i, line.size());
        return 1;
      }
      if (ok) {
        ++parsed;
      } else {
        ++refused;
        if (error.empty() || kind == ErrorKind::None) {
          std::fprintf(stderr, "FUZZ FAIL iter %ld: rejection without message/kind\n", i);
          return 1;
        }
      }
      digest = fnv(digest, ok ? 1 : 0x100u + static_cast<unsigned>(kind));
    } else if (surface < 6) {
      // --- binary frame surface ---------------------------------------
      std::string bytes = binaryCorpus[rng.below(binaryCorpus.size())];
      if (rng.below(8) != 0) bytes = mutate(std::move(bytes), rng);
      service::ProtocolLimits limits;
      limits.maxRequestBytes = 8192;
      try {
        std::istringstream in(bytes);
        service::FrameType type{};
        std::string payload, error;
        int rc = service::readFrame(in, type, payload, error, limits);
        if (rc < 0 && error.empty()) {
          std::fprintf(stderr, "FUZZ FAIL iter %ld: frame rejection without message\n", i);
          return 1;
        }
        bool ok = false;
        if (rc == 1) {
          // Decode the payload both ways — the frame type byte is attacker
          // data, so either decoder must contain arbitrary payloads.
          service::WireRequest req;
          service::BinaryResponse respOut;
          std::string decodeError;
          ok = (type == service::FrameType::Request)
                   ? service::decodeBinaryRequest(payload, req, decodeError)
                   : service::decodeBinaryResponse(payload, respOut, decodeError);
          if (!ok && decodeError.empty()) {
            std::fprintf(stderr, "FUZZ FAIL iter %ld: payload rejection without message\n",
                         i);
            return 1;
          }
        }
        ok ? ++framed : ++unframed;
        digest = fnv(digest, 0x200u + static_cast<unsigned>(rc + 1) * 2 + (ok ? 1 : 0));
      } catch (...) {
        std::fprintf(stderr, "FUZZ FAIL iter %ld: binary frame path threw on %zu bytes\n",
                     i, bytes.size());
        return 1;
      }
    } else if (surface < 8) {
      // --- artifact image surface -------------------------------------
      const auto& [key, image] = artifactCorpus[rng.below(artifactCorpus.size())];
      std::string bytes = image;
      if (rng.below(8) != 0) bytes = mutate(std::move(bytes), rng);
      try {
        std::string error;
        auto result = service::ArtifactStore::deserialize(bytes, key, &error);
        if (result == nullptr && error.empty()) {
          std::fprintf(stderr, "FUZZ FAIL iter %ld: artifact rejection without message\n", i);
          return 1;
        }
        result ? ++stored : ++unstored;
        digest = fnv(digest, result ? 0x300u : 0x301u);
      } catch (...) {
        std::fprintf(stderr, "FUZZ FAIL iter %ld: artifact deserialize threw on %zu bytes\n",
                     i, bytes.size());
        return 1;
      }
    } else {
      // --- compiler surface -------------------------------------------
      std::string src =
          kSourceCorpus[rng.below(sizeof(kSourceCorpus) / sizeof(*kSourceCorpus))];
      if (rng.below(8) != 0) src = mutate(std::move(src), rng);
      std::vector<sema::ArgSpec> args;
      std::size_t nargs = rng.below(3);
      for (std::size_t a = 0; a < nargs; ++a)
        args.push_back(sema::ArgSpec::row(static_cast<std::int64_t>(1 + rng.below(16))));
      Compiler compiler;
      try {
        compiler.compileSource(src, "f", args, fuzzOptions(rng));
        ++compiled;
        digest = fnv(digest, 1);
      } catch (const StructuredError& e) {
        ++rejected;
        if (e.kind() == ErrorKind::None || std::string(e.what()).empty()) {
          std::fprintf(stderr, "FUZZ FAIL iter %ld: unclassified StructuredError\n", i);
          return 1;
        }
        digest = fnv(digest, 0x100u + static_cast<unsigned>(e.kind()));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "FUZZ FAIL iter %ld: unclassified exception escaped: %s\n", i,
                     e.what());
        return 1;
      } catch (...) {
        std::fprintf(stderr, "FUZZ FAIL iter %ld: non-standard exception escaped\n", i);
        return 1;
      }
    }
  }

  std::printf("fuzz-smoke-ok seed=0x%llx iterations=%ld compiled=%ld rejected=%ld "
              "parsed=%ld refused=%ld framed=%ld unframed=%ld stored=%ld unstored=%ld "
              "digest=0x%016llx\n",
              static_cast<unsigned long long>(seed), iterations, compiled, rejected, parsed,
              refused, framed, unframed, stored, unstored,
              static_cast<unsigned long long>(digest));
  return 0;
}
