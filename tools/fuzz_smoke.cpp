// Deterministic fuzz smoke test for the hardened front end.
//
// 10,000 seeded-mutation iterations split between the two untrusted-input
// surfaces: MATLAB source through Compiler::compileSource (under tight
// CompileLimits, so pathological mutants hit the resource guards instead of
// the OOM killer) and JSON-lines requests through parseCompileRequest. The
// contract under test is *containment*: every input either succeeds or is
// rejected with a classified StructuredError — nothing may crash, hang, or
// escape as an unclassified exception.
//
// Fully deterministic: a fixed xorshift64 seed (override: argv[1] seed,
// argv[2] iterations) and no wall-clock- or address-dependent decisions, so
// a failure reproduces by rerunning the same binary. Prints an outcome
// digest and "fuzz-smoke-ok" (the ctest pass pattern) on success.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "driver/compiler.hpp"
#include "service/protocol.hpp"

using namespace mat2c;

namespace {

struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed ? seed : 0x9e3779b97f4a7c15ull) {}
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::size_t below(std::size_t n) { return n ? static_cast<std::size_t>(next() % n) : 0; }
};

const char* kSourceCorpus[] = {
    "function y = f(x, h)\ny = 0;\nfor k = 1:length(x)\n  y = y + x(k) * h(k);\nend\nend\n",
    "function y = f(x)\ns = 0;\nfor k = 1:4\n  s = s * 0.5 + x(k);\nend\ny = s;\nend\n",
    "function y = f(x)\ns = 0;\nfor k = 4:-1:1\n  s = s * 0.5 + x(k);\nend\ny = s;\nend\n",
    "function y = f(x)\nif x(1) > 0\n  y = x .* 2;\nelse\n  y = x + 1;\nend\nend\n",
    "function y = f(a)\ny = zeros(1, 8);\nfor k = 1:8\n  y(k) = a(k) * a(k);\nend\nend\n",
    "function [y, n] = f(x)\ny = x * 2;\nn = sum(x);\nend\n",
};

const char* kRequestCorpus[] = {
    "{\"id\": \"a\", \"source\": \"function y = f(x)\\ny = x;\\nend\\n\", \"entry\": \"f\","
    " \"args\": \"1x8\"}",
    "{\"source\": \"function y = f(x)\\ny = x .* 2;\\nend\\n\", \"entry\": \"f\","
    " \"args\": \"1x16\", \"style\": \"coder\", \"deadline_ms\": 100}",
    "{\"source\": \"function y = f(x)\\ny = x;\\nend\\n\", \"entry\": \"f\","
    " \"args\": \"c1x4\", \"vectorize\": false, \"degrade\": false}",
    "{\"source\": \"s\", \"entry\": \"f\", \"isa\": \"scalar\"}",
};

const char* kDictionary[] = {"for",  "end", "function", "if",  "else", "while", "(",
                             ")",    "[",   "]",        "{",   "}",    ":",     ";",
                             "\"",   "\\",  ",",        "=",   "..",   "1e999", "0x",
                             "'",    "%",   "\n",       "\0x", ".*",   "deadline_ms"};

std::string mutate(std::string s, Rng& rng) {
  int edits = 1 + static_cast<int>(rng.below(4));
  for (int e = 0; e < edits; ++e) {
    switch (rng.below(6)) {
      case 0: {  // flip one byte
        if (s.empty()) break;
        s[rng.below(s.size())] = static_cast<char>(rng.next() & 0xFF);
        break;
      }
      case 1: {  // insert a byte (biased printable, occasionally control/NUL)
        char c = (rng.below(8) == 0) ? static_cast<char>(rng.below(32))
                                     : static_cast<char>(32 + rng.below(95));
        s.insert(s.begin() + static_cast<std::ptrdiff_t>(rng.below(s.size() + 1)), c);
        break;
      }
      case 2: {  // erase a span
        if (s.empty()) break;
        std::size_t at = rng.below(s.size());
        s.erase(at, rng.below(s.size() - at) + 1);
        break;
      }
      case 3: {  // duplicate a span (nesting amplifier)
        if (s.empty()) break;
        std::size_t at = rng.below(s.size());
        std::size_t len = rng.below(std::min<std::size_t>(s.size() - at, 16)) + 1;
        s.insert(at, s.substr(at, len));
        break;
      }
      case 4: {  // truncate
        s.resize(rng.below(s.size() + 1));
        break;
      }
      default: {  // splice a dictionary token
        const char* tok = kDictionary[rng.below(sizeof(kDictionary) / sizeof(*kDictionary))];
        s.insert(rng.below(s.size() + 1), tok);
        break;
      }
    }
  }
  return s;
}

/// Limits tight enough that amplifier mutants (nesting bombs, duplicated
/// loops) hit a structured guard instead of real resource pressure.
CompileOptions fuzzOptions(Rng& rng) {
  CompileOptions o = rng.below(4) == 0 ? CompileOptions::coderLike()
                                       : CompileOptions::proposed();
  o.limits.maxSourceBytes = 1u << 16;
  o.limits.maxAstNodes = 50'000;
  o.limits.maxAstDepth = 128;
  o.limits.maxLirOps = 50'000;
  o.limits.wallBudgetMillis = 1000;
  o.degrade = rng.below(2) == 0;
  return o;
}

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 0x100000001b3ull;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 0xC0FFEEull;
  long iterations = argc > 2 ? std::strtol(argv[2], nullptr, 0) : 10000;

  Rng rng(seed);
  std::uint64_t digest = 0xcbf29ce484222325ull;
  long compiled = 0, rejected = 0, parsed = 0, refused = 0;

  for (long i = 0; i < iterations; ++i) {
    if (i % 10 < 7) {
      // --- protocol surface -------------------------------------------
      std::string line =
          kRequestCorpus[rng.below(sizeof(kRequestCorpus) / sizeof(*kRequestCorpus))];
      if (rng.below(8) != 0) line = mutate(std::move(line), rng);
      service::ProtocolLimits limits;
      limits.maxRequestBytes = 8192;
      service::CompileRequest out;
      std::string error;
      ErrorKind kind = ErrorKind::None;
      bool ok;
      try {
        ok = service::parseCompileRequest(line, out, error, &kind, limits);
      } catch (...) {
        std::fprintf(stderr, "FUZZ FAIL iter %ld: parseCompileRequest threw on %zu-byte line\n",
                     i, line.size());
        return 1;
      }
      if (ok) {
        ++parsed;
      } else {
        ++refused;
        if (error.empty() || kind == ErrorKind::None) {
          std::fprintf(stderr, "FUZZ FAIL iter %ld: rejection without message/kind\n", i);
          return 1;
        }
      }
      digest = fnv(digest, ok ? 1 : 0x100u + static_cast<unsigned>(kind));
    } else {
      // --- compiler surface -------------------------------------------
      std::string src =
          kSourceCorpus[rng.below(sizeof(kSourceCorpus) / sizeof(*kSourceCorpus))];
      if (rng.below(8) != 0) src = mutate(std::move(src), rng);
      std::vector<sema::ArgSpec> args;
      std::size_t nargs = rng.below(3);
      for (std::size_t a = 0; a < nargs; ++a)
        args.push_back(sema::ArgSpec::row(static_cast<std::int64_t>(1 + rng.below(16))));
      Compiler compiler;
      try {
        compiler.compileSource(src, "f", args, fuzzOptions(rng));
        ++compiled;
        digest = fnv(digest, 1);
      } catch (const StructuredError& e) {
        ++rejected;
        if (e.kind() == ErrorKind::None || std::string(e.what()).empty()) {
          std::fprintf(stderr, "FUZZ FAIL iter %ld: unclassified StructuredError\n", i);
          return 1;
        }
        digest = fnv(digest, 0x100u + static_cast<unsigned>(e.kind()));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "FUZZ FAIL iter %ld: unclassified exception escaped: %s\n", i,
                     e.what());
        return 1;
      } catch (...) {
        std::fprintf(stderr, "FUZZ FAIL iter %ld: non-standard exception escaped\n", i);
        return 1;
      }
    }
  }

  std::printf("fuzz-smoke-ok seed=0x%llx iterations=%ld compiled=%ld rejected=%ld "
              "parsed=%ld refused=%ld digest=0x%016llx\n",
              static_cast<unsigned long long>(seed), iterations, compiled, rejected, parsed,
              refused, static_cast<unsigned long long>(digest));
  return 0;
}
