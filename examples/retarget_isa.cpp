// Retargeting walkthrough: describe a brand-new processor in the textual
// ISA format and watch the same MATLAB source compile to its intrinsic
// vocabulary — no compiler changes, exactly the paper's workflow.
//
//   $ ./build/examples/retarget_isa
#include <cstdio>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"

int main() {
  using namespace mat2c;

  // The kernel: a complex correlator dot product (beamformer inner loop).
  auto kernel = kernels::makeCdot(256);

  // A hypothetical audio DSP, described entirely in text. Two complex lanes,
  // a complex MAC unit, vendor-style intrinsic names.
  const char* isaText = R"(
name audiodsp
simd f64 4
simd c64 2
memlanes 4
feature fma
feature cmul
feature cmac
feature zol
feature agu
intrinsic vcmac.c64 adsp_cmac2
intrinsic vld.c64 adsp_vldc
intrinsic vconj.c64 adsp_conj2
)";
  DiagnosticEngine diags;
  CompileOptions custom;
  custom.isa = isa::IsaDescription::parse(isaText, diags);
  if (diags.hasErrors()) {
    std::fprintf(stderr, "%s", diags.renderAll().c_str());
    return 1;
  }

  Compiler compiler;
  codegen::EmitOptions bodyOnly;
  bodyOnly.embedRuntime = false;

  std::printf("One MATLAB source, three processors:\n\n%s\n", kernel.source.c_str());
  for (int i = 0; i < 3; ++i) {
    CompileOptions options = i == 0   ? CompileOptions::proposed("scalar")
                             : i == 1 ? CompileOptions::proposed("dspx")
                                      : custom;
    auto unit = compiler.compileSource(kernel.source, kernel.entry, kernel.argSpecs,
                                       options);
    auto run = unit.run(kernel.args);
    double err =
        validateAgainstInterpreter(kernel.source, kernel.entry, unit, kernel.args);
    std::printf("--- target '%s': %.0f cycles, err=%g ---\n%s\n",
                options.isa.name().c_str(), run.cycles.total, err,
                unit.cCode(bodyOnly).c_str());
  }

  std::printf("The serialized form of the textual target (round-trippable):\n%s\n",
              custom.isa.serialize().c_str());
  return 0;
}
