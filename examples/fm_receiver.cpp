// A small software-radio receiver chain built from compiled MATLAB stages:
//   channel equalization (fdeq) -> FM demodulation (fmdemod) -> FIR
//   de-emphasis (fir). Each stage is an independently compiled unit; data
//   flows between them as MATLAB matrices. Shows the library driving a
//   multi-kernel application, with per-stage cycle accounting and a
//   whole-chain validation against the interpreter.
//
//   $ ./build/examples/fm_receiver
#include <cmath>
#include <cstdio>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "driver/report.hpp"
#include "parser/parser.hpp"

int main() {
  using namespace mat2c;

  constexpr std::int64_t kSamples = 2048;
  constexpr std::int64_t kTaps = 16;

  // Synthesize an FM signal (varying instantaneous frequency) through a
  // mildly frequency-selective channel.
  kernels::InputGen gen(2026);
  Matrix tx = Matrix::zeros(1, kSamples, /*complex=*/true);
  Matrix channel = Matrix::zeros(1, kSamples, /*complex=*/true);
  double phase = 0.0;
  for (std::int64_t i = 0; i < kSamples; ++i) {
    double msg = std::sin(2.0 * 3.14159265358979 * 3.0 * static_cast<double>(i) /
                          static_cast<double>(kSamples));
    phase += 0.3 + 0.1 * msg;
    double rot = 0.15 * std::sin(2.0 * 3.14159265358979 * static_cast<double>(i) /
                                 static_cast<double>(kSamples));
    tx.set(static_cast<std::size_t>(i), Complex{std::cos(phase), std::sin(phase)});
    channel.set(static_cast<std::size_t>(i), Complex{std::cos(rot), std::sin(rot)});
  }
  // Received = tx rotated by channel; equalizer multiplies by conj(channel).
  Matrix rx = elementwise(ElemOp::Mul, tx, channel);

  Matrix deemph = kernels::makeFir(kSamples, kTaps).args[1];  // reuse generator taps
  for (std::size_t i = 0; i < deemph.numel(); ++i) {
    deemph.set(i, Complex{1.0 / static_cast<double>(kTaps), 0.0});  // moving average
  }

  // Compile the three stages.
  Compiler compiler;
  auto eqK = kernels::makeFdeq(kSamples);
  auto demodK = kernels::makeFmdemod(kSamples);
  auto firK = kernels::makeFir(kSamples, kTaps);
  auto eq = compiler.compileSource(eqK.source, eqK.entry, eqK.argSpecs,
                                   CompileOptions::proposed());
  auto demod = compiler.compileSource(demodK.source, demodK.entry, demodK.argSpecs,
                                      CompileOptions::proposed());
  auto fir = compiler.compileSource(firK.source, firK.entry, firK.argSpecs,
                                    CompileOptions::proposed());

  // Run the chain on the ASIP model.
  auto r1 = eq.run({rx, channel});
  auto r2 = demod.run({r1.outputs[0]});
  auto r3 = fir.run({r2.outputs[0], deemph});

  // Reference: the same chain through the interpreter.
  auto interpStage = [](const kernels::KernelSpec& k, const std::vector<Matrix>& args) {
    DiagnosticEngine diags;
    auto prog = parseSource(k.source, diags);
    Interpreter interp(*prog);
    return interp.callFunction(k.entry, args)[0];
  };
  Matrix ref1 = interpStage(eqK, {rx, channel});
  Matrix ref2 = interpStage(demodK, {ref1});
  Matrix ref3 = interpStage(firK, {ref2, deemph});
  double err = maxAbsDiff(ref3, r3.outputs[0]);

  report::Table table({"stage", "kernel", "cycles", "share"});
  double total = r1.cycles.total + r2.cycles.total + r3.cycles.total;
  auto row = [&](const char* stage, const char* kn, double c) {
    table.addRow({stage, kn, report::Table::cycles(c),
                  report::Table::num(100.0 * c / total, 0) + "%"});
  };
  row("1. channel equalizer", "fdeq", r1.cycles.total);
  row("2. FM discriminator", "fmdemod", r2.cycles.total);
  row("3. de-emphasis filter", "fir", r3.cycles.total);
  std::printf("FM receiver chain on the dspx ASIP (%lld samples)\n\n%s\n",
              static_cast<long long>(kSamples), table.toString().c_str());
  std::printf("total cycles: %.0f  (%.2f cycles/sample)\n", total,
              total / static_cast<double>(kSamples));
  std::printf("whole-chain max |error| vs interpreter: %g\n", err);

  // Demodulated output sanity: the recovered message is a ~3 Hz sine riding
  // on the 0.3 rad/sample carrier increment.
  double lo = 1e9;
  double hi = -1e9;
  const Matrix& audio = r3.outputs[0];
  for (std::size_t i = kTaps; i < audio.numel(); ++i) {
    lo = std::min(lo, audio.real(i));
    hi = std::max(hi, audio.real(i));
  }
  std::printf("recovered message swing: [%.3f, %.3f] rad/sample (expected ~0.2..0.4)\n", lo,
              hi);
  return err < 1e-9 ? 0 : 1;
}
