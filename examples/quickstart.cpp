// Quickstart: compile a MATLAB function to C for an ASIP, inspect the
// generated code, and execute it on the bundled cycle-model VM.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "driver/compiler.hpp"

int main() {
  using namespace mat2c;

  // 1. A MATLAB function. `scale_offset` maps each sample of x through
  //    a gain and an offset — the kind of one-liner DSP engineers write all
  //    day.
  const std::string source = R"(
function y = scale_offset(x, g, o)
y = g .* x + o;
end
)";

  // 2. Compile it, specialized to 1x16 real input (like MATLAB Coder's
  //    -args), targeting the bundled `dspx` ASIP description.
  Compiler compiler;
  CompileOptions options = CompileOptions::proposed("dspx");
  auto unit = compiler.compileSource(
      source, "scale_offset",
      {sema::ArgSpec::row(16), sema::ArgSpec::scalar(), sema::ArgSpec::scalar()}, options);

  // 3. The generated ANSI C. Note the dspx_* intrinsics in the hot loop and
  //    the portable fallback definitions in the embedded runtime header —
  //    this file compiles with any C compiler.
  std::printf("===== generated C (kernel only) =====\n");
  codegen::EmitOptions emitOpts;
  emitOpts.embedRuntime = false;
  std::printf("%s\n", unit.cCode(emitOpts).c_str());

  // 4. Execute on the ASIP cycle model.
  Matrix x = Matrix::rowVector({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  auto result = unit.run({x, Matrix::scalar(2.0), Matrix::scalar(0.5)});
  std::printf("===== execution on the dspx cycle model =====\n");
  std::printf("y(1..4)    = %g %g %g %g\n", result.outputs[0].real(0),
              result.outputs[0].real(1), result.outputs[0].real(2),
              result.outputs[0].real(3));
  std::printf("cycles     = %.0f\n", result.cycles.total);
  std::printf("vectorized = %d loop(s)\n",
              unit.optimizationReport().vec.loopsVectorized);

  // 5. Validate against the reference MATLAB interpreter.
  double err = validateAgainstInterpreter(source, "scale_offset", unit,
                                          {x, Matrix::scalar(2.0), Matrix::scalar(0.5)});
  std::printf("max |error| vs interpreter = %g\n", err);
  return err < 1e-12 ? 0 : 1;
}
