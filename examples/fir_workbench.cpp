// FIR workbench: the paper's comparison on one kernel, end to end.
// Compiles an FIR filter both ways, prints the two C programs side by
// side conceptually (baseline checks/temps vs intrinsics), and breaks the
// ASIP cycles down by cost category.
//
//   $ ./build/examples/fir_workbench [n] [taps]
#include <cstdio>
#include <cstdlib>

#include "driver/compiler.hpp"
#include "driver/kernels.hpp"
#include "driver/report.hpp"

int main(int argc, char** argv) {
  using namespace mat2c;

  std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 2048;
  std::int64_t taps = argc > 2 ? std::atoll(argv[2]) : 32;
  auto kernel = kernels::makeFir(n, taps);
  std::printf("%s\n\n", kernel.title.c_str());

  Compiler compiler;
  auto proposed = compiler.compileSource(kernel.source, kernel.entry, kernel.argSpecs,
                                         CompileOptions::proposed());
  auto baseline = compiler.compileSource(kernel.source, kernel.entry, kernel.argSpecs,
                                         CompileOptions::coderLike());

  // Correctness gate first — never report cycles for wrong answers.
  double errP =
      validateAgainstInterpreter(kernel.source, kernel.entry, proposed, kernel.args);
  double errB =
      validateAgainstInterpreter(kernel.source, kernel.entry, baseline, kernel.args);
  std::printf("validated against the MATLAB interpreter: proposed err=%g, baseline err=%g\n\n",
              errP, errB);

  auto rp = proposed.run(kernel.args);
  auto rb = baseline.run(kernel.args);

  report::Table table({"metric", "coder-like baseline", "proposed"});
  auto cat = [](const vm::RunResult& r, const char* c) {
    auto it = r.cycles.byCategory.find(c);
    return report::Table::cycles(it == r.cycles.byCategory.end() ? 0 : it->second);
  };
  table.addRow({"total cycles", report::Table::cycles(rb.cycles.total),
                report::Table::cycles(rp.cycles.total)});
  table.addRow({"arithmetic", cat(rb, "arith"), cat(rp, "arith")});
  table.addRow({"memory", cat(rb, "memory"), cat(rp, "memory")});
  table.addRow({"bounds checks", cat(rb, "check"), cat(rp, "check")});
  table.addRow({"custom-instruction issues",
                std::to_string(rb.cycles.intrinsicOpsExecuted),
                std::to_string(rp.cycles.intrinsicOpsExecuted)});
  std::printf("%s\n", table.toString().c_str());
  std::printf("speedup: %.1fx\n\n", rb.cycles.total / rp.cycles.total);

  codegen::EmitOptions bodyOnly;
  bodyOnly.embedRuntime = false;
  std::printf("===== baseline C (MATLAB-Coder style: checks, no intrinsics) =====\n%s\n",
              baseline.cCode(bodyOnly).c_str());
  std::printf("===== proposed C (SIMD + MAC intrinsics) =====\n%s\n",
              proposed.cCode(bodyOnly).c_str());
  return 0;
}
