// LIR virtual machine with an ASIP cycle model.
//
// This is the substitute for the paper's proprietary ASIP toolchain and
// board: it executes the exact operations the emitted C expresses (each
// custom instruction = one VM op) and charges each op the cycle cost the
// active IsaDescription assigns it. Numeric results are bit-identical to
// what the portable C fallbacks compute, so outputs can be validated against
// the reference interpreter while cycles are being counted.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "interp/value.hpp"
#include "isa/isa.hpp"
#include "lir/lir.hpp"

namespace mat2c::vm {

/// Where cycles went — used by the baseline-anatomy ablation.
enum class CostCategory { Arith, Memory, Loop, Check, Alloc };
const char* toString(CostCategory c);

struct CycleStats {
  double total = 0.0;
  std::map<std::string, double> byCategory;
  std::map<std::string, double> byOp;        // mnemonic -> cycles
  std::map<std::string, double> countByOp;   // mnemonic -> issue count
  std::uint64_t opsExecuted = 0;
  std::uint64_t intrinsicOpsExecuted = 0;    // ops that map to custom instructions
  /// Cycles the installed FusedCosting removed (member-op charges replaced by
  /// fused-instruction charges). total already reflects the replacement.
  double fusedSavedCycles = 0.0;
  std::uint64_t fusedOpsExecuted = 0;

  void charge(const isa::IsaDescription& isa, isa::Op op, CostCategory cat,
              double count = 1.0);
};

struct RunResult {
  std::vector<Matrix> outputs;  // in Function::outs order
  CycleStats cycles;
};

/// Per-statement dynamic execution counts, keyed by Stmt identity within the
/// executed Function. The DSE idiom miner weighs statically mined dataflow
/// patterns by these counts so candidate custom instructions are ranked by
/// dynamic frequency, not source occurrence.
using StmtProfile = std::map<const lir::Stmt*, std::uint64_t>;

/// Costing hook for synthesized fused custom instructions (DSE candidate
/// evaluation). Nodes in `members` (and Store statements in `storeMembers`)
/// have their normal per-op charges suppressed; each expression in `roots`
/// instead charges `cycles` once per execution under the fused instruction's
/// name. The sets refer to nodes of the specific Function being run; matching
/// is by pointer identity, so the annotation pre-pass is free of any
/// per-execution pattern matching.
struct FusedCosting {
  struct Root {
    std::string name;  // byOp key, e.g. "fused.vld_vfma"
    double cycles = 1.0;
  };
  std::map<const lir::Expr*, Root> roots;
  std::set<const lir::Expr*> members;
  std::set<const lir::Stmt*> storeMembers;  // Store statements folded into a root
};

class Machine {
 public:
  explicit Machine(const isa::IsaDescription& isa) : isa_(isa) {}

  /// Executes `fn` with MATLAB-value arguments (shapes must match the
  /// parameter declarations). Throws RuntimeError on numeric/shape faults.
  RunResult run(const lir::Function& fn, const std::vector<Matrix>& args);

  void setMaxOps(std::uint64_t maxOps) { maxOps_ = maxOps; }
  /// Optional per-statement execution profile, filled during run().
  void setProfile(StmtProfile* profile) { profile_ = profile; }
  /// Optional fused-instruction costing table (not owned; must outlive run()).
  void setFusedCosting(const FusedCosting* fused) { fused_ = fused; }

 private:
  const isa::IsaDescription& isa_;
  std::uint64_t maxOps_ = 2'000'000'000;
  StmtProfile* profile_ = nullptr;
  const FusedCosting* fused_ = nullptr;
};

}  // namespace mat2c::vm
