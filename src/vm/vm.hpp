// LIR virtual machine with an ASIP cycle model.
//
// This is the substitute for the paper's proprietary ASIP toolchain and
// board: it executes the exact operations the emitted C expresses (each
// custom instruction = one VM op) and charges each op the cycle cost the
// active IsaDescription assigns it. Numeric results are bit-identical to
// what the portable C fallbacks compute, so outputs can be validated against
// the reference interpreter while cycles are being counted.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "interp/value.hpp"
#include "isa/isa.hpp"
#include "lir/lir.hpp"

namespace mat2c::vm {

/// Where cycles went — used by the baseline-anatomy ablation.
enum class CostCategory { Arith, Memory, Loop, Check, Alloc };
const char* toString(CostCategory c);

struct CycleStats {
  double total = 0.0;
  std::map<std::string, double> byCategory;
  std::map<std::string, double> byOp;        // mnemonic -> cycles
  std::uint64_t opsExecuted = 0;
  std::uint64_t intrinsicOpsExecuted = 0;    // ops that map to custom instructions

  void charge(const isa::IsaDescription& isa, isa::Op op, CostCategory cat,
              double count = 1.0);
};

struct RunResult {
  std::vector<Matrix> outputs;  // in Function::outs order
  CycleStats cycles;
};

class Machine {
 public:
  explicit Machine(const isa::IsaDescription& isa) : isa_(isa) {}

  /// Executes `fn` with MATLAB-value arguments (shapes must match the
  /// parameter declarations). Throws RuntimeError on numeric/shape faults.
  RunResult run(const lir::Function& fn, const std::vector<Matrix>& args);

  void setMaxOps(std::uint64_t maxOps) { maxOps_ = maxOps; }

 private:
  const isa::IsaDescription& isa_;
  std::uint64_t maxOps_ = 2'000'000'000;
};

}  // namespace mat2c::vm
