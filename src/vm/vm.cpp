#include "vm/vm.hpp"

#include <cmath>

#include "support/limits.hpp"

namespace mat2c::vm {

using lir::BinOp;
using lir::ExprKind;
using lir::ReduceOp;
using lir::Scalar;
using lir::StmtKind;
using lir::UnOp;
using lir::VType;
using isa::Op;

const char* toString(CostCategory c) {
  switch (c) {
    case CostCategory::Arith: return "arith";
    case CostCategory::Memory: return "memory";
    case CostCategory::Loop: return "loop";
    case CostCategory::Check: return "check";
    case CostCategory::Alloc: return "alloc";
  }
  return "?";
}

void CycleStats::charge(const isa::IsaDescription& isa, Op op, CostCategory cat,
                        double count) {
  double cycles = isa.cost(op) * count;
  total += cycles;
  byCategory[toString(cat)] += cycles;
  byOp[isa::mnemonic(op)] += cycles;
  countByOp[isa::mnemonic(op)] += count;
  opsExecuted += static_cast<std::uint64_t>(count);
  if (isa.usesIntrinsic(op)) intrinsicOpsExecuted += static_cast<std::uint64_t>(count);
}

namespace {

/// A runtime value: scalar i64/b1, or `lanes` elements of f64/c64.
struct Value {
  VType type;
  std::int64_t i = 0;
  bool b = false;
  std::vector<Complex> v;  // f64 values keep imag == 0

  static Value ofI(std::int64_t x) {
    Value r;
    r.type = VType::i64();
    r.i = x;
    return r;
  }
  static Value ofB(bool x) {
    Value r;
    r.type = VType::b1();
    r.b = x;
    return r;
  }
  static Value ofF(double x, int lanes = 1) {
    Value r;
    r.type = VType::f64(lanes);
    r.v.assign(static_cast<std::size_t>(lanes), Complex{x, 0.0});
    return r;
  }
  static Value ofC(Complex x, int lanes = 1) {
    Value r;
    r.type = VType::c64(lanes);
    r.v.assign(static_cast<std::size_t>(lanes), x);
    return r;
  }

  double f() const { return v.at(0).real(); }
  Complex c() const { return v.at(0); }
};

struct ArrayStore {
  Scalar elem = Scalar::F64;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<Complex> data;
};

enum class Flow { Normal, Break, Continue };

class Exec {
 public:
  Exec(const isa::IsaDescription& isa, const lir::Function& fn, std::uint64_t maxOps,
       StmtProfile* profile, const FusedCosting* fused)
      : isa_(isa), fn_(fn), maxOps_(maxOps), profile_(profile), fused_(fused) {}

  RunResult run(const std::vector<Matrix>& args) {
    bindParams(args);
    for (const auto& a : fn_.arrays) {
      ArrayStore st;
      st.elem = a.elem;
      st.rows = a.rows;
      st.cols = a.cols;
      st.data.assign(static_cast<std::size_t>(a.numel()), Complex{});
      arrays_.emplace(a.name, std::move(st));
    }
    for (const auto& o : fn_.outs) {
      if (o.isArray) {
        ArrayStore st;
        st.elem = o.elem;
        st.rows = o.rows;
        st.cols = o.cols;
        st.data.assign(static_cast<std::size_t>(o.numel()), Complex{});
        arrays_.emplace(o.name, std::move(st));
      } else {
        scalars_[o.name] = o.elem == Scalar::C64 ? Value::ofC({}) : Value::ofF(0.0);
      }
    }

    execBlock(fn_.body);

    RunResult result;
    result.cycles = std::move(stats_);
    for (const auto& o : fn_.outs) {
      if (o.isArray) {
        const ArrayStore& st = arrays_.at(o.name);
        Matrix m = Matrix::zeros(static_cast<std::size_t>(st.rows),
                                 static_cast<std::size_t>(st.cols),
                                 st.elem == Scalar::C64);
        for (std::size_t idx = 0; idx < st.data.size(); ++idx) m.set(idx, st.data[idx]);
        m.dropZeroImag();
        result.outputs.push_back(std::move(m));
      } else {
        const Value& v = scalars_.at(o.name);
        result.outputs.push_back(Matrix::scalar(v.c()));
      }
    }
    return result;
  }

 private:
  void bindParams(const std::vector<Matrix>& args) {
    if (args.size() != fn_.params.size())
      throw RuntimeError("VM: argument count mismatch for '" + fn_.name + "'");
    for (std::size_t i = 0; i < args.size(); ++i) {
      const lir::Param& p = fn_.params[i];
      const Matrix& m = args[i];
      if (p.isArray) {
        if (static_cast<std::int64_t>(m.rows()) != p.rows ||
            static_cast<std::int64_t>(m.cols()) != p.cols)
          throw RuntimeError("VM: argument '" + p.name + "' shape mismatch: expected " +
                             std::to_string(p.rows) + "x" + std::to_string(p.cols) + ", got " +
                             std::to_string(m.rows()) + "x" + std::to_string(m.cols()));
        if (p.elem == Scalar::F64 && m.isComplex())
          throw RuntimeError("VM: argument '" + p.name + "' must be real");
        ArrayStore st;
        st.elem = p.elem;
        st.rows = p.rows;
        st.cols = p.cols;
        st.data.resize(m.numel());
        for (std::size_t idx = 0; idx < m.numel(); ++idx) st.data[idx] = m.at(idx);
        arrays_.emplace(p.name, std::move(st));
      } else {
        if (!m.isScalar())
          throw RuntimeError("VM: argument '" + p.name + "' must be scalar");
        scalars_[p.name] =
            p.elem == Scalar::C64 ? Value::ofC(m.at(0)) : Value::ofF(m.real(0));
      }
    }
  }

  void budget(double n = 1.0) {
    opBudget_ += static_cast<std::uint64_t>(n);
    if (opBudget_ > maxOps_) throw RuntimeError("VM: op budget exceeded (runaway loop?)");
    // Cooperative deadline poll, amortized so the hot step loop pays one
    // counter increment per op and a thread-local load every 16k ops.
    if ((++pollTick_ & 0x3FFF) == 0) DeadlineGuard::poll("vm");
  }

  void charge(Op op, CostCategory cat, double count = 1.0) {
    stats_.charge(isa_, op, cat, count);
    budget(count);
  }

  /// Charge attributed to an expression node: a node folded into a fused
  /// custom instruction (FusedCosting member) suppresses its normal per-op
  /// charge — the fused root charges the whole pattern once instead.
  void chargeExpr(const lir::Expr& e, Op op, CostCategory cat, double count = 1.0) {
    if (fused_ && fused_->members.count(&e)) {
      stats_.fusedSavedCycles += isa_.cost(op) * count;
      budget(count);
      return;
    }
    charge(op, cat, count);
  }

  void chargeFused(const FusedCosting::Root& root) {
    // Members accumulated their gross suppressed cost; deduct the fused
    // instruction's own charge so fusedSavedCycles is the net reduction in
    // total (the quantity tileFused() predicts analytically).
    stats_.fusedSavedCycles -= root.cycles;
    stats_.total += root.cycles;
    stats_.byCategory[toString(CostCategory::Arith)] += root.cycles;
    stats_.byOp[root.name] += root.cycles;
    stats_.countByOp[root.name] += 1.0;
    ++stats_.opsExecuted;
    ++stats_.intrinsicOpsExecuted;
    ++stats_.fusedOpsExecuted;
    budget(1.0);
  }

  // -- expression evaluation -------------------------------------------------

  Value eval(const lir::Expr& e) {
    Value v = evalDispatch(e);
    if (fused_) {
      auto it = fused_->roots.find(&e);
      if (it != fused_->roots.end()) chargeFused(it->second);
    }
    return v;
  }

  Value evalDispatch(const lir::Expr& e) {
    switch (e.kind) {
      case ExprKind::ConstF: return Value::ofF(e.fval);
      case ExprKind::ConstI: return Value::ofI(e.ival);
      case ExprKind::VarRef: {
        auto it = scalars_.find(e.name);
        if (it == scalars_.end())
          throw RuntimeError("VM: undefined variable '" + e.name + "'");
        return it->second;
      }
      case ExprKind::Load: return evalLoad(e);
      case ExprKind::Unary: return evalUnary(e);
      case ExprKind::Binary: return evalBinary(e);
      case ExprKind::Fma: return evalFma(e);
      case ExprKind::Splat: {
        Value s = eval(*e.a);
        chargeExpr(e, e.type.scalar == Scalar::C64 ? Op::VSplatC : Op::VSplatF,
                   CostCategory::Arith);
        Value r;
        r.type = e.type;
        r.v.assign(static_cast<std::size_t>(e.type.lanes), s.v.empty() ? Complex{} : s.v[0]);
        return r;
      }
      case ExprKind::Reduce: return evalReduce(e);
    }
    throw RuntimeError("VM: bad expression kind");
  }

  ArrayStore& arrayFor(const std::string& name) {
    auto it = arrays_.find(name);
    if (it == arrays_.end()) throw RuntimeError("VM: unknown array '" + name + "'");
    return it->second;
  }

  std::int64_t evalIndex(const lir::Expr& idx) {
    Value v = eval(idx);
    if (!(v.type == VType::i64())) throw RuntimeError("VM: index is not i64");
    return v.i;
  }

  Value evalLoad(const lir::Expr& e) {
    ArrayStore& st = arrayFor(e.name);
    std::int64_t base = evalIndex(*e.index);
    int lanes = e.type.lanes;
    if (base < 0 || base + lanes > static_cast<std::int64_t>(st.data.size()))
      throw RuntimeError("VM: load out of bounds on '" + e.name + "' at " +
                         std::to_string(base) + " (+" + std::to_string(lanes) + ") of " +
                         std::to_string(st.data.size()));
    bool cplx = st.elem == Scalar::C64;
    if (lanes == 1) {
      chargeExpr(e, cplx ? Op::LoadC : Op::LoadF, CostCategory::Memory);
    } else {
      chargeExpr(e, cplx ? Op::VLoadC : Op::VLoadF, CostCategory::Memory);
    }
    Value r;
    r.type = e.type;
    r.v.assign(st.data.begin() + base, st.data.begin() + base + lanes);
    return r;
  }

  Value evalUnary(const lir::Expr& e) {
    Value a = eval(*e.a);
    int lanes = e.type.lanes;
    bool vec = lanes > 1;
    bool cplx = a.type.scalar == Scalar::C64;

    auto mapF = [&](double (*f)(double), Op op) {
      Value r;
      r.type = e.type;
      r.v.resize(a.v.size());
      for (std::size_t i = 0; i < a.v.size(); ++i) r.v[i] = Complex{f(a.v[i].real()), 0.0};
      charge(op, CostCategory::Arith, vec ? 1.0 : 1.0);
      return r;
    };

    switch (e.unOp) {
      case UnOp::Neg: {
        Value r;
        r.type = e.type;
        if (e.type.scalar == Scalar::I64) {
          r = Value::ofI(-a.i);
          charge(Op::AddI, CostCategory::Arith);
          return r;
        }
        r.v.resize(a.v.size());
        for (std::size_t i = 0; i < a.v.size(); ++i) r.v[i] = -a.v[i];
        chargeExpr(e, vec ? (cplx ? Op::VNegC : Op::VNegF) : (cplx ? Op::NegC : Op::NegF),
                   CostCategory::Arith);
        return r;
      }
      case UnOp::Not: {
        bool operand = a.type.scalar == Scalar::B1 ? a.b : (a.f() != 0.0);
        charge(Op::CmpI, CostCategory::Arith);
        if (e.type.scalar == Scalar::B1) return Value::ofB(!operand);
        return Value::ofF(operand ? 0.0 : 1.0);
      }
      case UnOp::Abs: {
        Value r;
        r.type = e.type;
        r.v.resize(a.v.size());
        for (std::size_t i = 0; i < a.v.size(); ++i)
          r.v[i] = Complex{std::abs(a.v[i]), 0.0};
        if (cplx) {
          // |z| = sqrt(re^2 + im^2): decomposed on any target.
          charge(Op::MulF, CostCategory::Arith, 2);
          charge(Op::AddF, CostCategory::Arith);
          charge(Op::SqrtF, CostCategory::Arith);
        } else {
          charge(vec ? Op::VAbsF : Op::AbsF, CostCategory::Arith);
        }
        return r;
      }
      case UnOp::Sqrt:
        if (cplx) {
          Value r;
          r.type = e.type;
          r.v.resize(a.v.size());
          for (std::size_t i = 0; i < a.v.size(); ++i) r.v[i] = std::sqrt(a.v[i]);
          charge(Op::SqrtF, CostCategory::Arith, 2);
          charge(Op::DivF, CostCategory::Arith);
          return r;
        }
        return mapF([](double x) { return std::sqrt(x); }, Op::SqrtF);
      case UnOp::Exp:
        if (cplx) {
          Value r;
          r.type = e.type;
          r.v.resize(a.v.size());
          for (std::size_t i = 0; i < a.v.size(); ++i) r.v[i] = std::exp(a.v[i]);
          charge(Op::ExpF, CostCategory::Arith);
          charge(Op::SinF, CostCategory::Arith);
          charge(Op::CosF, CostCategory::Arith);
          charge(Op::MulF, CostCategory::Arith, 2);
          return r;
        }
        return mapF([](double x) { return std::exp(x); }, Op::ExpF);
      case UnOp::Log:
        return mapF([](double x) { return std::log(x); }, Op::LogF);
      case UnOp::Log2:
        return mapF([](double x) { return std::log2(x); }, Op::LogF);
      case UnOp::Log10:
        return mapF([](double x) { return std::log10(x); }, Op::LogF);
      case UnOp::Sin: return mapF([](double x) { return std::sin(x); }, Op::SinF);
      case UnOp::Cos: return mapF([](double x) { return std::cos(x); }, Op::CosF);
      case UnOp::Tan: return mapF([](double x) { return std::tan(x); }, Op::TanF);
      case UnOp::Asin: return mapF([](double x) { return std::asin(x); }, Op::AtanF);
      case UnOp::Acos: return mapF([](double x) { return std::acos(x); }, Op::AtanF);
      case UnOp::Atan: return mapF([](double x) { return std::atan(x); }, Op::AtanF);
      case UnOp::Floor: return mapF([](double x) { return std::floor(x); }, Op::FloorF);
      case UnOp::Ceil: return mapF([](double x) { return std::ceil(x); }, Op::FloorF);
      case UnOp::Round: return mapF([](double x) { return std::round(x); }, Op::RoundF);
      case UnOp::Trunc: return mapF([](double x) { return std::trunc(x); }, Op::FloorF);
      case UnOp::Sign:
        return mapF([](double x) { return x > 0 ? 1.0 : (x < 0 ? -1.0 : 0.0); }, Op::CmpF);
      case UnOp::Conj: {
        Value r;
        r.type = e.type;
        r.v.resize(a.v.size());
        for (std::size_t i = 0; i < a.v.size(); ++i) r.v[i] = std::conj(a.v[i]);
        chargeExpr(e, vec ? Op::VConjC : Op::ConjC, CostCategory::Arith);
        return r;
      }
      case UnOp::RealPart: {
        Value r;
        r.type = e.type;
        r.v.resize(a.v.size());
        for (std::size_t i = 0; i < a.v.size(); ++i) r.v[i] = Complex{a.v[i].real(), 0.0};
        return r;  // register extraction — free
      }
      case UnOp::ImagPart: {
        Value r;
        r.type = e.type;
        r.v.resize(a.v.size());
        for (std::size_t i = 0; i < a.v.size(); ++i) r.v[i] = Complex{a.v[i].imag(), 0.0};
        return r;
      }
      case UnOp::Arg: {
        Value r;
        r.type = e.type;
        r.v.resize(a.v.size());
        for (std::size_t i = 0; i < a.v.size(); ++i) r.v[i] = Complex{std::arg(a.v[i]), 0.0};
        charge(Op::Atan2F, CostCategory::Arith);
        return r;
      }
      case UnOp::ToF64: {
        double x = a.type.scalar == Scalar::B1 ? (a.b ? 1.0 : 0.0)
                   : a.type.scalar == Scalar::I64 ? static_cast<double>(a.i)
                                                  : a.f();
        return Value::ofF(x);
      }
      case UnOp::ToI64: {
        std::int64_t x = a.type.scalar == Scalar::I64 ? a.i
                         : a.type.scalar == Scalar::B1 ? (a.b ? 1 : 0)
                                                       : static_cast<std::int64_t>(a.f());
        return Value::ofI(x);
      }
      case UnOp::ToC64: {
        if (a.type.scalar == Scalar::C64) {
          Value r = a;
          r.type = e.type;
          return r;
        }
        Value r;
        r.type = e.type;
        r.v.resize(a.v.empty() ? 1 : a.v.size());
        for (std::size_t i = 0; i < r.v.size(); ++i) {
          double x = a.type.scalar == Scalar::I64 ? static_cast<double>(a.i)
                     : a.type.scalar == Scalar::B1 ? (a.b ? 1.0 : 0.0)
                                                   : a.v[i].real();
          r.v[i] = Complex{x, 0.0};
        }
        return r;
      }
    }
    throw RuntimeError("VM: bad unary op");
  }

  Value evalBinary(const lir::Expr& e) {
    Value a = eval(*e.a);
    Value b = eval(*e.b);

    if (e.binOp == BinOp::MakeComplex) {
      Value r;
      r.type = e.type;
      std::size_t n = std::max(a.v.size(), b.v.size());
      r.v.resize(n);
      for (std::size_t i = 0; i < n; ++i)
        r.v[i] = Complex{a.v[i % a.v.size()].real(), b.v[i % b.v.size()].real()};
      return r;
    }

    // Integer arithmetic (index math).
    if (e.type.scalar == Scalar::I64) {
      std::int64_t x = a.i;
      std::int64_t y = b.i;
      switch (e.binOp) {
        case BinOp::Add: charge(Op::AddI, CostCategory::Arith); return Value::ofI(x + y);
        case BinOp::Sub: charge(Op::AddI, CostCategory::Arith); return Value::ofI(x - y);
        case BinOp::Mul: charge(Op::MulI, CostCategory::Arith); return Value::ofI(x * y);
        case BinOp::Div:
          charge(Op::MulI, CostCategory::Arith);
          if (y == 0) throw RuntimeError("VM: integer division by zero");
          return Value::ofI(x / y);
        case BinOp::Min: charge(Op::CmpI, CostCategory::Arith); return Value::ofI(std::min(x, y));
        case BinOp::Max: charge(Op::CmpI, CostCategory::Arith); return Value::ofI(std::max(x, y));
        default:
          throw RuntimeError("VM: unsupported i64 binary op");
      }
    }

    // Comparisons / logicals produce b1.
    if (e.type.scalar == Scalar::B1) {
      charge(a.type.scalar == Scalar::I64 ? Op::CmpI : Op::CmpF, CostCategory::Arith);
      auto scalarOf = [](const Value& v) -> double {
        if (v.type.scalar == Scalar::I64) return static_cast<double>(v.i);
        if (v.type.scalar == Scalar::B1) return v.b ? 1.0 : 0.0;
        return v.v.at(0).real();
      };
      auto cplxOf = [](const Value& v) -> Complex {
        if (v.type.scalar == Scalar::I64) return {static_cast<double>(v.i), 0.0};
        if (v.type.scalar == Scalar::B1) return {v.b ? 1.0 : 0.0, 0.0};
        return v.v.at(0);
      };
      switch (e.binOp) {
        case BinOp::Eq: return Value::ofB(cplxOf(a) == cplxOf(b));
        case BinOp::Ne: return Value::ofB(cplxOf(a) != cplxOf(b));
        case BinOp::Lt: return Value::ofB(scalarOf(a) < scalarOf(b));
        case BinOp::Le: return Value::ofB(scalarOf(a) <= scalarOf(b));
        case BinOp::Gt: return Value::ofB(scalarOf(a) > scalarOf(b));
        case BinOp::Ge: return Value::ofB(scalarOf(a) >= scalarOf(b));
        case BinOp::And: return Value::ofB(scalarOf(a) != 0.0 && scalarOf(b) != 0.0);
        case BinOp::Or: return Value::ofB(scalarOf(a) != 0.0 || scalarOf(b) != 0.0);
        default:
          throw RuntimeError("VM: unsupported b1 binary op");
      }
    }

    bool vec = e.type.isVector();
    bool cplx = e.type.scalar == Scalar::C64;
    std::size_t n = static_cast<std::size_t>(e.type.lanes);
    Value r;
    r.type = e.type;
    r.v.resize(n);
    auto elemA = [&](std::size_t i) { return a.v[a.v.size() == 1 ? 0 : i]; };
    auto elemB = [&](std::size_t i) { return b.v[b.v.size() == 1 ? 0 : i]; };

    Op op;
    switch (e.binOp) {
      case BinOp::Add:
        op = vec ? (cplx ? Op::VAddC : Op::VAddF) : (cplx ? Op::AddC : Op::AddF);
        for (std::size_t i = 0; i < n; ++i) r.v[i] = elemA(i) + elemB(i);
        break;
      case BinOp::Sub:
        op = vec ? (cplx ? Op::VSubC : Op::VSubF) : (cplx ? Op::SubC : Op::SubF);
        for (std::size_t i = 0; i < n; ++i) r.v[i] = elemA(i) - elemB(i);
        break;
      case BinOp::Mul:
        op = vec ? (cplx ? Op::VMulC : Op::VMulF) : (cplx ? Op::MulC : Op::MulF);
        for (std::size_t i = 0; i < n; ++i) r.v[i] = elemA(i) * elemB(i);
        break;
      case BinOp::Div:
        op = vec ? (cplx ? Op::DivC : Op::VDivF) : (cplx ? Op::DivC : Op::DivF);
        for (std::size_t i = 0; i < n; ++i) r.v[i] = elemA(i) / elemB(i);
        break;
      case BinOp::Pow:
        op = Op::PowF;
        for (std::size_t i = 0; i < n; ++i) {
          Complex base = elemA(i);
          Complex expo = elemB(i);
          if (!cplx) {
            double x = base.real();
            double y = expo.real();
            if (x >= 0.0 || y == std::floor(y)) {
              r.v[i] = Complex{std::pow(x, y), 0.0};
              continue;
            }
          }
          r.v[i] = std::pow(base, expo);
        }
        break;
      case BinOp::Min:
        op = vec ? Op::VMinF : Op::MinF;
        for (std::size_t i = 0; i < n; ++i)
          r.v[i] = Complex{std::min(elemA(i).real(), elemB(i).real()), 0.0};
        break;
      case BinOp::Max:
        op = vec ? Op::VMaxF : Op::MaxF;
        for (std::size_t i = 0; i < n; ++i)
          r.v[i] = Complex{std::max(elemA(i).real(), elemB(i).real()), 0.0};
        break;
      case BinOp::Atan2:
        op = Op::Atan2F;
        for (std::size_t i = 0; i < n; ++i)
          r.v[i] = Complex{std::atan2(elemA(i).real(), elemB(i).real()), 0.0};
        break;
      case BinOp::Mod:
        op = Op::ModF;
        for (std::size_t i = 0; i < n; ++i) {
          double x = elemA(i).real();
          double m = elemB(i).real();
          r.v[i] = Complex{m == 0.0 ? x : x - std::floor(x / m) * m, 0.0};
        }
        break;
      case BinOp::Rem:
        op = Op::ModF;
        for (std::size_t i = 0; i < n; ++i) {
          double x = elemA(i).real();
          double m = elemB(i).real();
          r.v[i] = Complex{m == 0.0 ? x : std::fmod(x, m), 0.0};
        }
        break;
      default:
        throw RuntimeError("VM: unsupported binary op");
    }
    chargeExpr(e, op, CostCategory::Arith);
    return r;
  }

  Value evalFma(const lir::Expr& e) {
    Value a = eval(*e.a);
    Value b = eval(*e.b);
    Value c = eval(*e.c);
    bool vec = e.type.isVector();
    bool cplx = e.type.scalar == Scalar::C64;
    std::size_t n = static_cast<std::size_t>(e.type.lanes);
    Value r;
    r.type = e.type;
    r.v.resize(n);
    auto lane = [&](const Value& v, std::size_t i) { return v.v[v.v.size() == 1 ? 0 : i]; };
    for (std::size_t i = 0; i < n; ++i) r.v[i] = lane(a, i) * lane(b, i) + lane(c, i);
    chargeExpr(e, vec ? (cplx ? Op::VFmaC : Op::VFmaF) : (cplx ? Op::FmaC : Op::FmaF),
               CostCategory::Arith);
    return r;
  }

  Value evalReduce(const lir::Expr& e) {
    Value a = eval(*e.a);
    bool cplx = a.type.scalar == Scalar::C64;
    Complex acc = a.v.at(0);
    for (std::size_t i = 1; i < a.v.size(); ++i) {
      switch (e.reduceOp) {
        case ReduceOp::Add: acc += a.v[i]; break;
        case ReduceOp::Min: acc = Complex{std::min(acc.real(), a.v[i].real()), 0.0}; break;
        case ReduceOp::Max: acc = Complex{std::max(acc.real(), a.v[i].real()), 0.0}; break;
      }
    }
    Op op = e.reduceOp == ReduceOp::Add ? (cplx ? Op::VReduceAddC : Op::VReduceAddF)
            : e.reduceOp == ReduceOp::Min ? Op::VReduceMinF
                                          : Op::VReduceMaxF;
    charge(op, CostCategory::Arith);
    Value r;
    r.type = {a.type.scalar, 1};
    r.v = {acc};
    return r;
  }

  // -- statements --------------------------------------------------------------

  bool truthy(const Value& v) {
    if (v.type.scalar == Scalar::B1) return v.b;
    if (v.type.scalar == Scalar::I64) return v.i != 0;
    return v.v.at(0) != Complex{};
  }

  Flow execStmt(const lir::Stmt& s) {
    if (profile_) ++(*profile_)[&s];
    switch (s.kind) {
      case StmtKind::DeclScalar: {
        Value init;
        if (s.value) {
          init = eval(*s.value);
        } else if (s.declType.scalar == Scalar::I64) {
          init = Value::ofI(0);
        } else if (s.declType.scalar == Scalar::B1) {
          init = Value::ofB(false);
        } else if (s.declType.scalar == Scalar::C64) {
          init = Value::ofC({}, s.declType.lanes);
        } else {
          init = Value::ofF(0.0, s.declType.lanes);
        }
        scalars_[s.name] = std::move(init);
        return Flow::Normal;
      }
      case StmtKind::Assign: {
        Value v = eval(*s.value);
        scalars_[s.name] = std::move(v);
        return Flow::Normal;
      }
      case StmtKind::Store: {
        Value v = eval(*s.value);
        ArrayStore& st = arrayFor(s.name);
        std::int64_t base = evalIndex(*s.index);
        int lanes = v.type.lanes;
        if (base < 0 || base + lanes > static_cast<std::int64_t>(st.data.size()))
          throw RuntimeError("VM: store out of bounds on '" + s.name + "' at " +
                             std::to_string(base));
        bool cplx = st.elem == Scalar::C64;
        if (!cplx && v.type.scalar == Scalar::C64)
          throw RuntimeError("VM: storing complex into real array '" + s.name + "'");
        for (int i = 0; i < lanes; ++i) {
          Complex x = v.type.scalar == Scalar::I64 ? Complex{static_cast<double>(v.i), 0.0}
                      : v.type.scalar == Scalar::B1 ? Complex{v.b ? 1.0 : 0.0, 0.0}
                                                    : v.v[static_cast<std::size_t>(i)];
          st.data[static_cast<std::size_t>(base + i)] = x;
        }
        Op storeOp = lanes == 1 ? (cplx ? Op::StoreC : Op::StoreF)
                                : (cplx ? Op::VStoreC : Op::VStoreF);
        if (fused_ && fused_->storeMembers.count(&s)) {
          stats_.fusedSavedCycles += isa_.cost(storeOp);
          budget(1.0);
        } else {
          charge(storeOp, CostCategory::Memory);
        }
        return Flow::Normal;
      }
      case StmtKind::For: {
        std::int64_t lo = evalIndex(*s.lo);
        std::int64_t hi = evalIndex(*s.hi);
        for (std::int64_t i = lo; s.step > 0 ? i < hi : i > hi; i += s.step) {
          scalars_[s.name] = Value::ofI(i);
          charge(Op::LoopOverhead, CostCategory::Loop);
          Flow f = execBlock(s.body);
          if (f == Flow::Break) break;
        }
        return Flow::Normal;
      }
      case StmtKind::If: {
        charge(Op::Branch, CostCategory::Loop);
        if (truthy(eval(*s.cond))) return execBlock(s.body);
        return execBlock(s.elseBody);
      }
      case StmtKind::While: {
        while (true) {
          charge(Op::Branch, CostCategory::Loop);
          if (!truthy(eval(*s.cond))) return Flow::Normal;
          Flow f = execBlock(s.body);
          if (f == Flow::Break) return Flow::Normal;
        }
      }
      case StmtKind::Break: return Flow::Break;
      case StmtKind::Continue: return Flow::Continue;
      case StmtKind::BoundsCheck: {
        ArrayStore& st = arrayFor(s.name);
        std::int64_t idx = evalIndex(*s.index);
        charge(Op::BoundsCheck, CostCategory::Check);
        if (idx < 0 || idx >= static_cast<std::int64_t>(st.data.size()))
          throw RuntimeError("VM: bounds check failed on '" + s.name + "'");
        return Flow::Normal;
      }
      case StmtKind::AllocMark:
        charge(Op::AllocTemp, CostCategory::Alloc);
        return Flow::Normal;
      case StmtKind::Comment:
        return Flow::Normal;
    }
    throw RuntimeError("VM: bad statement kind");
  }

  Flow execBlock(const std::vector<lir::StmtPtr>& body) {
    for (const auto& s : body) {
      Flow f = execStmt(*s);
      if (f != Flow::Normal) return f;
    }
    return Flow::Normal;
  }

  const isa::IsaDescription& isa_;
  const lir::Function& fn_;
  std::uint64_t maxOps_;
  StmtProfile* profile_ = nullptr;
  const FusedCosting* fused_ = nullptr;
  std::uint64_t opBudget_ = 0;
  std::uint64_t pollTick_ = 0;
  CycleStats stats_;
  std::map<std::string, Value> scalars_;
  std::map<std::string, ArrayStore> arrays_;
};

}  // namespace

RunResult Machine::run(const lir::Function& fn, const std::vector<Matrix>& args) {
  Exec exec(isa_, fn, maxOps_, profile_, fused_);
  return exec.run(args);
}

}  // namespace mat2c::vm
