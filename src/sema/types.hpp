// Static types for the compiled MATLAB subset.
//
// The compiler (unlike the reference interpreter) is a *specializing*
// compiler in the MATLAB-Coder mould: the caller supplies the entry
// function's argument types/shapes and inference propagates static shapes
// through the body. Dimensions it cannot pin down become Dim::dynamic(),
// which later stages reject with a diagnostic pointing at the argument spec.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace mat2c::sema {

/// Element domain of a value. Everything is double-precision at runtime;
/// Bool tracks logical results, Complex tracks a re/im pair.
enum class Elem { Real, Complex, Bool };

const char* toString(Elem e);

/// Join for control-flow merges and arithmetic promotion.
Elem joinElem(Elem a, Elem b);

/// One static dimension: a known extent or dynamic.
class Dim {
 public:
  constexpr Dim() = default;
  static constexpr Dim of(std::int64_t n) {
    Dim d;
    d.extent_ = n;
    return d;
  }
  static constexpr Dim dynamic() { return Dim{}; }

  constexpr bool isKnown() const { return extent_ >= 0; }
  constexpr std::int64_t extent() const { return extent_; }

  friend constexpr bool operator==(Dim, Dim) = default;

 private:
  std::int64_t extent_ = -1;
};

struct Shape {
  Dim rows = Dim::of(1);
  Dim cols = Dim::of(1);

  static Shape scalar() { return {Dim::of(1), Dim::of(1)}; }
  static Shape row(std::int64_t n) { return {Dim::of(1), Dim::of(n)}; }
  static Shape col(std::int64_t n) { return {Dim::of(n), Dim::of(1)}; }
  static Shape matrix(std::int64_t r, std::int64_t c) { return {Dim::of(r), Dim::of(c)}; }
  static Shape dynamic() { return {Dim::dynamic(), Dim::dynamic()}; }

  bool isKnown() const { return rows.isKnown() && cols.isKnown(); }
  bool isScalar() const { return rows == Dim::of(1) && cols == Dim::of(1); }
  bool isRow() const { return rows == Dim::of(1); }
  bool isCol() const { return cols == Dim::of(1); }
  bool isVector() const { return isRow() || isCol(); }
  /// Known total element count (requires isKnown()).
  std::int64_t numel() const { return rows.extent() * cols.extent(); }

  friend bool operator==(const Shape&, const Shape&) = default;
};

/// Merge at control-flow joins: differing extents become dynamic.
Shape joinShape(const Shape& a, const Shape& b);

struct Type {
  Elem elem = Elem::Real;
  Shape shape = Shape::scalar();

  static Type realScalar() { return {Elem::Real, Shape::scalar()}; }
  static Type complexScalar() { return {Elem::Complex, Shape::scalar()}; }
  static Type boolScalar() { return {Elem::Bool, Shape::scalar()}; }
  static Type real(Shape s) { return {Elem::Real, s}; }
  static Type complex(Shape s) { return {Elem::Complex, s}; }

  bool isScalar() const { return shape.isScalar(); }
  bool isComplex() const { return elem == Elem::Complex; }

  /// "complex[4x1]" — used in diagnostics and DESIGN docs.
  std::string toString() const;

  friend bool operator==(const Type&, const Type&) = default;
};

Type joinType(const Type& a, const Type& b);

/// Entry-argument specification (the `-args` of MATLAB Coder).
struct ArgSpec {
  Type type;

  static ArgSpec scalar() { return {Type::realScalar()}; }
  static ArgSpec complexScalar() { return {Type::complexScalar()}; }
  static ArgSpec row(std::int64_t n, bool complex = false) {
    return {{complex ? Elem::Complex : Elem::Real, Shape::row(n)}};
  }
  static ArgSpec col(std::int64_t n, bool complex = false) {
    return {{complex ? Elem::Complex : Elem::Real, Shape::col(n)}};
  }
  static ArgSpec matrix(std::int64_t r, std::int64_t c, bool complex = false) {
    return {{complex ? Elem::Complex : Elem::Real, Shape::matrix(r, c)}};
  }
};

}  // namespace mat2c::sema
