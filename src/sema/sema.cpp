#include "sema/sema.hpp"

#include <cmath>

#include "support/fault_injection.hpp"
#include "support/limits.hpp"

namespace mat2c::sema {

using namespace ast;

TypeInference::TypeInference(const Program& program, DiagnosticEngine& diags)
    : program_(program), diags_(diags) {}

namespace {

std::string signatureKey(const std::string& name, const std::vector<Type>& args) {
  std::string key = name;
  for (const auto& t : args) {
    key += '|';
    key += t.toString();
  }
  return key;
}

bool isArithmetic(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::ElemMul:
    case BinaryOp::ElemDiv:
    case BinaryOp::ElemLeftDiv:
    case BinaryOp::ElemPow:
    case BinaryOp::MatMul:
    case BinaryOp::MatDiv:
    case BinaryOp::MatLeftDiv:
    case BinaryOp::MatPow:
      return true;
    default:
      return false;
  }
}

/// Bool participates in arithmetic as Real.
Elem arithElem(Elem e) { return e == Elem::Bool ? Elem::Real : e; }

}  // namespace

const FunctionSummary& TypeInference::inferFunction(const Function& fn,
                                                    const std::vector<Type>& args) {
  std::string key = signatureKey(fn.name, args);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  if (inProgress_.count(fn.name))
    fail(fn.loc, "recursive function '" + fn.name + "' is not supported by the compiler");
  if (args.size() != fn.params.size())
    fail(fn.loc, "function '" + fn.name + "' expects " + std::to_string(fn.params.size()) +
                     " arguments, got " + std::to_string(args.size()));

  inProgress_.insert(fn.name);
  Env env;
  for (std::size_t i = 0; i < args.size(); ++i) env.vars[fn.params[i]] = args[i];
  processBlock(fn.body, env);
  inProgress_.erase(fn.name);

  FunctionSummary summary;
  summary.paramTypes = args;
  for (const auto& out : fn.outs) {
    auto vit = env.vars.find(out);
    if (vit == env.vars.end())
      fail(fn.loc, "output '" + out + "' of '" + fn.name + "' is never assigned");
    summary.outTypes.push_back(vit->second);
  }
  return memo_.emplace(std::move(key), std::move(summary)).first->second;
}

const FunctionSummary& TypeInference::inferEntry(const std::string& name,
                                                 const std::vector<ArgSpec>& args) {
  const Function* fn = program_.findFunction(name);
  if (!fn) fail({}, "entry function '" + name + "' not found");
  std::vector<Type> types;
  types.reserve(args.size());
  for (const auto& a : args) types.push_back(a.type);
  return inferFunction(*fn, types);
}

void TypeInference::joinInto(Env& dst, const Env& src) {
  // Variable types: join shared names, keep the union of names (a variable
  // assigned on one path may be read later; MATLAB errors at runtime if the
  // unassigned path executes).
  for (const auto& [name, type] : src.vars) {
    auto it = dst.vars.find(name);
    if (it == dst.vars.end()) {
      dst.vars.emplace(name, type);
    } else {
      it->second = joinType(it->second, type);
    }
  }
  // Constants: keep only values that agree on both paths.
  for (auto it = dst.consts.begin(); it != dst.consts.end();) {
    auto sit = src.consts.find(it->first);
    if (sit == src.consts.end() || sit->second != it->second) {
      it = dst.consts.erase(it);
    } else {
      ++it;
    }
  }
}

void TypeInference::processBlock(const std::vector<StmtPtr>& body, Env& env) {
  for (const auto& s : body) processStmt(*s, env);
}

void TypeInference::processStmt(const Stmt& stmt, Env& env) {
  // Per-statement cooperative guard point, mirroring Parser::parseStatement.
  DeadlineGuard::poll("sema");
  fault::onAllocPoint();
  switch (stmt.kind) {
    case NodeKind::Assign: {
      const auto& s = static_cast<const Assign&>(stmt);
      if (s.targets.size() == 1) {
        const LValue& t = s.targets[0];
        Type rhs = inferExpr(*s.rhs, env);
        if (t.indices.empty()) {
          env.vars[t.name] = rhs;
          auto cv = constValue(*s.rhs, env);
          if (cv && rhs.isScalar() && rhs.elem != Elem::Complex) {
            env.consts[t.name] = *cv;
          } else {
            env.consts.erase(t.name);
          }
        } else {
          auto it = env.vars.find(t.name);
          if (it == env.vars.end())
            fail(t.loc, "indexed assignment to undefined variable '" + t.name +
                            "' — preallocate with zeros(...)");
          // Indexed stores keep the shape; complex stores promote the element.
          if (rhs.elem == Elem::Complex && it->second.elem != Elem::Complex)
            it->second.elem = Elem::Complex;
          env.consts.erase(t.name);
        }
        return;
      }
      // Multi-assignment: rhs must be a call.
      if (s.rhs->kind != NodeKind::CallIndex)
        fail(s.loc, "multi-assignment requires a function call on the right-hand side");
      const auto& call = static_cast<const CallIndex&>(*s.rhs);
      std::vector<Type> outs = inferCallOutputs(call, env, s.targets.size());
      if (outs.size() < s.targets.size())
        fail(s.loc, "function returns fewer outputs than assignment targets");
      for (std::size_t i = 0; i < s.targets.size(); ++i) {
        if (!s.targets[i].indices.empty())
          fail(s.targets[i].loc, "indexed targets in multi-assignment are not supported");
        env.vars[s.targets[i].name] = outs[i];
        env.consts.erase(s.targets[i].name);
      }
      // [r, c] = size(a) with a static shape feeds the constant lattice.
      if (call.base->kind == NodeKind::Ident &&
          static_cast<const Ident&>(*call.base).name == "size" && call.args.size() == 1 &&
          s.targets.size() == 2 && !env.vars.count("size")) {
        Type t = inferExpr(*call.args[0], env);
        if (t.shape.isKnown()) {
          env.consts[s.targets[0].name] = static_cast<double>(t.shape.rows.extent());
          env.consts[s.targets[1].name] = static_cast<double>(t.shape.cols.extent());
        }
      }
      return;
    }
    case NodeKind::ExprStmt:
      inferExpr(*static_cast<const ExprStmt&>(stmt).expr, env);
      return;
    case NodeKind::If: {
      const auto& s = static_cast<const If&>(stmt);
      std::vector<Env> outs;
      for (const auto& b : s.branches) {
        inferExpr(*b.cond, env);
        Env branch = env;
        processBlock(b.body, branch);
        outs.push_back(std::move(branch));
      }
      Env elseEnv = env;
      processBlock(s.elseBody, elseEnv);
      env = std::move(elseEnv);
      for (const auto& o : outs) joinInto(env, o);
      return;
    }
    case NodeKind::For: {
      const auto& s = static_cast<const For&>(stmt);
      Type rangeType = inferExpr(*s.range, env);
      if (rangeType.elem == Elem::Complex)
        fail(s.loc, "complex for-loop ranges are not supported");
      for (int iter = 0; iter < 16; ++iter) {
        Env body = env;
        body.vars[s.var] = Type::realScalar();
        body.consts.erase(s.var);
        processBlock(s.body, body);
        Env joined = env;
        joinInto(joined, body);
        if (joined == env) break;
        env = std::move(joined);
        if (iter == 15) fail(s.loc, "type inference did not converge in for-loop");
      }
      env.vars[s.var] = Type::realScalar();
      env.consts.erase(s.var);
      return;
    }
    case NodeKind::While: {
      const auto& s = static_cast<const While&>(stmt);
      for (int iter = 0; iter < 16; ++iter) {
        inferExpr(*s.cond, env);
        Env body = env;
        processBlock(s.body, body);
        Env joined = env;
        joinInto(joined, body);
        if (joined == env) break;
        env = std::move(joined);
        if (iter == 15) fail(s.loc, "type inference did not converge in while-loop");
      }
      return;
    }
    case NodeKind::Switch: {
      const auto& s = static_cast<const Switch&>(stmt);
      Type subject = inferExpr(*s.subject, env);
      if (!subject.isScalar()) fail(s.loc, "switch subject must be a scalar in compiled code");
      std::vector<Env> outs;
      for (const auto& c : s.cases) {
        inferExpr(*c.value, env);
        Env branch = env;
        processBlock(c.body, branch);
        outs.push_back(std::move(branch));
      }
      Env other = env;
      processBlock(s.otherwise, other);
      env = std::move(other);
      for (const auto& o : outs) joinInto(env, o);
      return;
    }
    case NodeKind::Break:
    case NodeKind::Continue:
    case NodeKind::Return:
      return;
    default:
      fail(stmt.loc, "unsupported statement in compiled code");
  }
}

std::optional<double> TypeInference::constValue(const Expr& expr, Env& env,
                                                std::optional<double> endExtent) {
  switch (expr.kind) {
    case NodeKind::NumberLit: {
      const auto& e = static_cast<const NumberLit&>(expr);
      if (e.imaginary) return std::nullopt;
      return e.value;
    }
    case NodeKind::End:
      return endExtent;
    case NodeKind::Ident: {
      const auto& e = static_cast<const Ident&>(expr);
      auto it = env.consts.find(e.name);
      if (it != env.consts.end()) return it->second;
      if (!env.vars.count(e.name)) {
        auto info = findCompilableBuiltin(e.name);
        if (info && info->kind == BuiltinKind::Constant) return info->constantValue;
      }
      return std::nullopt;
    }
    case NodeKind::Unary: {
      const auto& e = static_cast<const Unary&>(expr);
      auto v = constValue(*e.operand, env, endExtent);
      if (!v) return std::nullopt;
      switch (e.op) {
        case UnaryOp::Neg: return -*v;
        case UnaryOp::Plus: return *v;
        case UnaryOp::Not: return *v == 0.0 ? 1.0 : 0.0;
      }
      return std::nullopt;
    }
    case NodeKind::Binary: {
      const auto& e = static_cast<const Binary&>(expr);
      auto a = constValue(*e.lhs, env, endExtent);
      auto b = constValue(*e.rhs, env, endExtent);
      if (!a || !b) return std::nullopt;
      switch (e.op) {
        case BinaryOp::Add: return *a + *b;
        case BinaryOp::Sub: return *a - *b;
        case BinaryOp::MatMul:
        case BinaryOp::ElemMul: return *a * *b;
        case BinaryOp::MatDiv:
        case BinaryOp::ElemDiv: return *a / *b;
        case BinaryOp::MatPow:
        case BinaryOp::ElemPow: return std::pow(*a, *b);
        default: return std::nullopt;
      }
    }
    case NodeKind::CallIndex: {
      const auto& e = static_cast<const CallIndex&>(expr);
      if (e.base->kind != NodeKind::Ident) return std::nullopt;
      const std::string& name = static_cast<const Ident&>(*e.base).name;
      if (env.vars.count(name)) return std::nullopt;  // variable indexing
      // Shape queries fold when the argument shape is static.
      if (name == "length" || name == "numel") {
        if (e.args.size() != 1) return std::nullopt;
        Type t = inferExpr(*e.args[0], env);
        if (!t.shape.isKnown()) return std::nullopt;
        if (name == "numel") return static_cast<double>(t.shape.numel());
        return static_cast<double>(
            std::max(t.shape.rows.extent(), t.shape.cols.extent()));
      }
      if (name == "size" && e.args.size() == 2) {
        Type t = inferExpr(*e.args[0], env);
        auto d = constValue(*e.args[1], env);
        if (!d || !t.shape.isKnown()) return std::nullopt;
        if (*d == 1.0) return static_cast<double>(t.shape.rows.extent());
        if (*d == 2.0) return static_cast<double>(t.shape.cols.extent());
        return 1.0;
      }
      // Pure scalar math folds.
      if (e.args.size() == 1) {
        auto v = constValue(*e.args[0], env, endExtent);
        if (!v) return std::nullopt;
        if (name == "floor") return std::floor(*v);
        if (name == "ceil") return std::ceil(*v);
        if (name == "round") return std::round(*v);
        if (name == "fix") return std::trunc(*v);
        if (name == "abs") return std::abs(*v);
        if (name == "sqrt" && *v >= 0) return std::sqrt(*v);
        if (name == "log2" && *v > 0) return std::log2(*v);
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

TypeInference::AffineExpr TypeInference::astAffine(const Expr& e, Env& env,
                                                   std::optional<double> endExtent) {
  AffineExpr r;
  if (auto cv = constValue(e, env, endExtent)) {
    r.ok = true;
    r.constant = *cv;
    return r;
  }
  switch (e.kind) {
    case NodeKind::Ident: {
      const auto& id = static_cast<const Ident&>(e);
      if (env.vars.count(id.name)) {
        Type t = env.vars.at(id.name);
        if (t.isScalar() && t.elem != Elem::Complex) {
          r.ok = true;
          r.coeffs[id.name] = 1.0;
        }
      }
      return r;
    }
    case NodeKind::Unary: {
      const auto& u = static_cast<const Unary&>(e);
      if (u.op != UnaryOp::Neg && u.op != UnaryOp::Plus) return r;
      AffineExpr a = astAffine(*u.operand, env, endExtent);
      if (!a.ok) return r;
      r = a;
      if (u.op == UnaryOp::Neg) {
        r.constant = -r.constant;
        for (auto& [name, c] : r.coeffs) c = -c;
      }
      return r;
    }
    case NodeKind::Binary: {
      const auto& b = static_cast<const Binary&>(e);
      if (b.op == BinaryOp::Add || b.op == BinaryOp::Sub) {
        AffineExpr x = astAffine(*b.lhs, env, endExtent);
        AffineExpr y = astAffine(*b.rhs, env, endExtent);
        if (!x.ok || !y.ok) return r;
        double sign = b.op == BinaryOp::Add ? 1.0 : -1.0;
        r = x;
        r.constant += sign * y.constant;
        for (const auto& [name, c] : y.coeffs) r.coeffs[name] += sign * c;
        return r;
      }
      if (b.op == BinaryOp::ElemMul || b.op == BinaryOp::MatMul) {
        auto kl = constValue(*b.lhs, env, endExtent);
        auto kr = constValue(*b.rhs, env, endExtent);
        const Expr* varSide = kl ? b.rhs.get() : b.lhs.get();
        std::optional<double> k = kl ? kl : kr;
        if (!k) return r;
        AffineExpr v = astAffine(*varSide, env, endExtent);
        if (!v.ok) return r;
        r.ok = true;
        r.constant = v.constant * *k;
        for (const auto& [name, c] : v.coeffs) r.coeffs[name] = c * *k;
        return r;
      }
      return r;
    }
    default:
      return r;
  }
}

Dim TypeInference::indexCount(const Expr& arg, Env& env, Dim extent) {
  if (arg.kind == NodeKind::Colon) return extent;
  std::optional<double> endV;
  if (extent.isKnown()) endV = static_cast<double>(extent.extent());
  if (arg.kind == NodeKind::Range) {
    const auto& r = static_cast<const Range&>(arg);
    auto step = r.step ? constValue(*r.step, env, endV) : std::optional<double>(1.0);
    if (!step || *step == 0.0) return Dim::dynamic();
    auto start = constValue(*r.start, env, endV);
    auto stop = constValue(*r.stop, env, endV);
    std::optional<double> span;
    if (start && stop) {
      span = *stop - *start;
    } else {
      // The ends may be dynamic while their difference is static, e.g.
      // x(k : k+m-1) inside a loop. Fold (stop - start) symbolically.
      AffineExpr a = astAffine(*r.start, env, endV);
      AffineExpr b = astAffine(*r.stop, env, endV);
      if (a.ok && b.ok) {
        bool pure = true;
        for (const auto& [name, coeff] : b.coeffs) {
          double other = 0.0;
          auto it = a.coeffs.find(name);
          if (it != a.coeffs.end()) other = it->second;
          if (coeff != other) pure = false;
        }
        for (const auto& [name, coeff] : a.coeffs) {
          if (!b.coeffs.count(name) && coeff != 0.0) pure = false;
        }
        if (pure) span = b.constant - a.constant;
      }
    }
    if (!span) return Dim::dynamic();
    double n = std::floor(*span / *step + 1e-10) + 1.0;
    return Dim::of(n < 0 ? 0 : static_cast<std::int64_t>(n));
  }
  if (arg.kind == NodeKind::End) return Dim::of(1);
  Type t = inferExpr(const_cast<Expr&>(arg), env);
  if (t.isScalar()) return Dim::of(1);
  if (t.elem == Elem::Bool) return Dim::dynamic();  // logical masks are dynamic
  if (t.shape.isKnown()) return Dim::of(t.shape.numel());
  return Dim::dynamic();
}

Type TypeInference::inferIndexResult(const Type& base, const std::vector<ExprPtr>& args,
                                     Env& env, SourceLoc loc) {
  if (args.empty()) return base;
  if (args.size() == 1) {
    if (args[0]->kind == NodeKind::Colon) {
      // A(:) is always a column.
      Dim n = base.shape.isKnown() ? Dim::of(base.shape.numel()) : Dim::dynamic();
      return {base.elem, Shape{n, Dim::of(1)}};
    }
    Dim extent = base.shape.isKnown() ? Dim::of(base.shape.numel()) : Dim::dynamic();
    Dim n = indexCount(*args[0], env, extent);
    if (n == Dim::of(1)) return {base.elem, Shape::scalar()};
    // Orientation follows the base for vectors; matrices yield rows.
    if (base.shape.isCol()) return {base.elem, Shape{n, Dim::of(1)}};
    return {base.elem, Shape{Dim::of(1), n}};
  }
  if (args.size() != 2) fail(loc, "only 1-D and 2-D indexing are supported");
  Dim r = indexCount(*args[0], env, base.shape.rows);
  Dim c = indexCount(*args[1], env, base.shape.cols);
  return {base.elem, Shape{r, c}};
}

Type TypeInference::inferMatrixLit(const MatrixLit& expr, Env& env) {
  if (expr.rows.empty()) return {Elem::Real, Shape{Dim::of(0), Dim::of(0)}};
  Elem elem = Elem::Bool;
  std::int64_t totalRows = 0;
  std::int64_t width = -1;
  for (const auto& row : expr.rows) {
    std::int64_t h = -1;
    std::int64_t w = 0;
    for (const auto& el : row) {
      Type t = inferExpr(*el, env);
      elem = joinElem(elem, t.elem);
      if (!t.shape.isKnown())
        fail(el->loc, "matrix literal element has dynamic shape");
      if (t.shape.numel() == 0) continue;
      if (h == -1) h = t.shape.rows.extent();
      if (t.shape.rows.extent() != h)
        fail(el->loc, "matrix literal: inconsistent row heights");
      w += t.shape.cols.extent();
    }
    if (h == -1) continue;  // all-empty row
    if (width == -1) width = w;
    if (w != width) fail(expr.loc, "matrix literal: inconsistent column widths");
    totalRows += h;
  }
  if (width == -1) return {Elem::Real, Shape{Dim::of(0), Dim::of(0)}};
  if (elem == Elem::Bool) elem = Elem::Real;  // literals of logicals decay
  return {elem, Shape::matrix(totalRows, width)};
}

Type TypeInference::inferBinary(const Binary& expr, Env& env) {
  if (expr.op == BinaryOp::AndAnd || expr.op == BinaryOp::OrOr) {
    Type a = inferExpr(*expr.lhs, env);
    Type b = inferExpr(*expr.rhs, env);
    if (!a.isScalar() || !b.isScalar())
      fail(expr.loc, "'&&'/'||' require scalar operands");
    return Type::boolScalar();
  }

  Type a = inferExpr(*expr.lhs, env);
  Type b = inferExpr(*expr.rhs, env);

  auto broadcastShape = [&](const Shape& sa, const Shape& sb) -> Shape {
    if (sa.isScalar()) return sb;
    if (sb.isScalar()) return sa;
    if (sa.isKnown() && sb.isKnown() && !(sa == sb))
      fail(expr.loc, std::string("shape mismatch for '") + toString(expr.op) + "': " +
                         Type{Elem::Real, sa}.toString() + " vs " +
                         Type{Elem::Real, sb}.toString());
    return sa.isKnown() ? sa : sb;
  };

  if (isComparison(expr.op) || expr.op == BinaryOp::And || expr.op == BinaryOp::Or) {
    return {Elem::Bool, broadcastShape(a.shape, b.shape)};
  }

  if (!isArithmetic(expr.op)) fail(expr.loc, "unsupported binary operator");
  Elem elem = joinElem(arithElem(a.elem), arithElem(b.elem));

  switch (expr.op) {
    case BinaryOp::MatMul: {
      if (a.isScalar() || b.isScalar()) return {elem, broadcastShape(a.shape, b.shape)};
      if (a.shape.cols.isKnown() && b.shape.rows.isKnown() &&
          !(a.shape.cols == b.shape.rows))
        fail(expr.loc, "inner matrix dimensions must agree");
      return {elem, Shape{a.shape.rows, b.shape.cols}};
    }
    case BinaryOp::MatDiv:
      if (!b.isScalar()) fail(expr.loc, "matrix right division is not supported (use ./)");
      return {elem, a.shape};
    case BinaryOp::MatLeftDiv:
      if (!a.isScalar()) fail(expr.loc, "matrix left division is not supported");
      return {elem, b.shape};
    case BinaryOp::MatPow:
      if (!a.isScalar() || !b.isScalar())
        fail(expr.loc, "matrix power is only supported for scalars");
      return {elem, Shape::scalar()};
    default:
      return {elem, broadcastShape(a.shape, b.shape)};
  }
}

std::vector<Type> TypeInference::inferCallOutputs(const CallIndex& call, Env& env,
                                                  std::size_t nOut) {
  if (call.base->kind != NodeKind::Ident) {
    Type base = inferExpr(*call.base, env);
    return {inferIndexResult(base, call.args, env, call.loc)};
  }
  const std::string& name = static_cast<const Ident&>(*call.base).name;

  auto vit = env.vars.find(name);
  if (vit != env.vars.end()) {
    return {inferIndexResult(vit->second, call.args, env, call.loc)};
  }

  std::vector<Type> argTypes;
  std::vector<std::optional<double>> argConsts;
  argTypes.reserve(call.args.size());
  for (const auto& a : call.args) {
    if (a->kind == NodeKind::Colon || a->kind == NodeKind::End)
      fail(a->loc, "':'/'end' used in a call to '" + name + "' which is not a variable");
    argTypes.push_back(inferExpr(*a, env));
    argConsts.push_back(constValue(*a, env));
  }

  if (const Function* fn = program_.findFunction(name)) {
    const FunctionSummary& summary = inferFunction(*fn, argTypes);
    if (nOut > summary.outTypes.size())
      fail(call.loc, "function '" + name + "' returns " +
                         std::to_string(summary.outTypes.size()) + " outputs, " +
                         std::to_string(nOut) + " requested");
    return summary.outTypes;
  }

  if (auto info = findCompilableBuiltin(name)) {
    std::vector<Type> extra;
    Type first = inferBuiltin(name, *info, argTypes, argConsts, call.loc, nOut, &extra);
    std::vector<Type> outs{first};
    for (auto& t : extra) outs.push_back(t);
    return outs;
  }
  fail(call.loc, "'" + name + "' is not a variable, user function, or compilable builtin");
}

Type TypeInference::inferBuiltin(const std::string& name, const BuiltinInfo& info,
                                 const std::vector<Type>& args,
                                 const std::vector<std::optional<double>>& argConsts,
                                 SourceLoc loc, std::size_t nOut, std::vector<Type>* extraOuts) {
  auto need = [&](std::size_t lo, std::size_t hi) {
    if (args.size() < lo || args.size() > hi)
      fail(loc, "'" + name + "': wrong number of arguments");
  };
  auto broadcast2 = [&]() -> Shape {
    need(2, 2);
    if (args[0].isScalar()) return args[1].shape;
    if (args[1].isScalar()) return args[0].shape;
    if (args[0].shape.isKnown() && args[1].shape.isKnown() &&
        !(args[0].shape == args[1].shape))
      fail(loc, "'" + name + "': shape mismatch");
    return args[0].shape.isKnown() ? args[0].shape : args[1].shape;
  };
  auto reducedShape = [&](const Shape& s) -> Shape {
    if (s.isVector() || s.isScalar()) return Shape::scalar();
    return Shape{Dim::of(1), s.cols};
  };

  switch (info.kind) {
    case BuiltinKind::Constant:
      need(0, 0);
      return Type::realScalar();

    case BuiltinKind::ElemUnary: {
      need(1, 1);
      Elem elem = Elem::Real;
      if ((name == "exp" || name == "log" || name == "sqrt") &&
          args[0].elem == Elem::Complex) {
        elem = Elem::Complex;
      }
      return {elem, args[0].shape};
    }

    case BuiltinKind::ElemBinary:
      return {Elem::Real, broadcast2()};

    case BuiltinKind::MinMax: {
      need(1, 2);
      if (args.size() == 2) return {Elem::Real, broadcast2()};
      if (extraOuts && nOut >= 2)
        extraOuts->push_back({Elem::Real, reducedShape(args[0].shape)});
      return {arithElem(args[0].elem), reducedShape(args[0].shape)};
    }

    case BuiltinKind::Reduction: {
      if (name == "dot") {
        need(2, 2);
        return {joinElem(arithElem(args[0].elem), arithElem(args[1].elem)), Shape::scalar()};
      }
      if (name == "norm") {
        need(1, 1);
        return Type::realScalar();
      }
      need(1, 1);
      return {arithElem(args[0].elem), reducedShape(args[0].shape)};
    }

    case BuiltinKind::Query: {
      if (name == "size") {
        need(1, 2);
        if (args.size() == 1 && nOut >= 2) {
          if (extraOuts) extraOuts->push_back(Type::realScalar());
          return Type::realScalar();
        }
        if (args.size() == 1) return {Elem::Real, Shape::row(2)};
        return Type::realScalar();
      }
      if (name == "isreal" || name == "isempty") {
        need(1, 1);
        return Type::boolScalar();
      }
      need(1, 1);
      return Type::realScalar();  // length/numel
    }

    case BuiltinKind::Constructor: {
      if (name == "linspace") {
        need(2, 3);
        Dim n = Dim::dynamic();
        if (args.size() == 3) {
          if (argConsts[2]) n = Dim::of(static_cast<std::int64_t>(*argConsts[2]));
        } else {
          n = Dim::of(100);
        }
        return {Elem::Real, Shape{Dim::of(1), n}};
      }
      need(0, 2);
      Dim r = Dim::of(1);
      Dim c = Dim::of(1);
      if (args.size() == 1) {
        r = c = argConsts[0] ? Dim::of(static_cast<std::int64_t>(*argConsts[0]))
                             : Dim::dynamic();
      } else if (args.size() == 2) {
        r = argConsts[0] ? Dim::of(static_cast<std::int64_t>(*argConsts[0])) : Dim::dynamic();
        c = argConsts[1] ? Dim::of(static_cast<std::int64_t>(*argConsts[1])) : Dim::dynamic();
      }
      return {Elem::Real, Shape{r, c}};
    }

    case BuiltinKind::ComplexPart: {
      if (name == "complex") return {Elem::Complex, broadcast2()};
      need(1, 1);
      if (name == "conj") return {args[0].elem, args[0].shape};
      return {Elem::Real, args[0].shape};  // real/imag/angle
    }

    case BuiltinKind::Transform: {
      // fft(x) / fft(x, n): complex result; vectors keep their orientation,
      // matrices transform column-wise. The transform length must be static
      // (one-arg: the input extent; two-arg: a compile-time constant n).
      need(1, 2);
      const Shape& s = args[0].shape;
      if (args.size() == 2) {
        if (!argConsts[1])
          fail(loc, "'" + name + "': transform length must be a compile-time constant");
        auto n = static_cast<std::int64_t>(*argConsts[1]);
        if (n < 1 || static_cast<double>(n) != *argConsts[1])
          fail(loc, "'" + name + "': transform length must be a positive integer");
        if (s.isScalar() || s.isRow()) return {Elem::Complex, Shape::row(n)};
        if (s.isCol()) return {Elem::Complex, Shape::col(n)};
        return {Elem::Complex, Shape{Dim::of(n), s.cols}};
      }
      return {Elem::Complex, s};
    }
  }
  fail(loc, "'" + name + "': unhandled builtin kind");
}

Type TypeInference::inferExpr(const Expr& expr, Env& env) {
  switch (expr.kind) {
    case NodeKind::NumberLit: {
      const auto& e = static_cast<const NumberLit&>(expr);
      return e.imaginary ? Type::complexScalar() : Type::realScalar();
    }
    case NodeKind::StringLit:
      fail(expr.loc, "string values are not supported in compiled functions");
    case NodeKind::Ident: {
      const auto& e = static_cast<const Ident&>(expr);
      auto it = env.vars.find(e.name);
      if (it != env.vars.end()) return it->second;
      if (const Function* fn = program_.findFunction(e.name)) {
        const FunctionSummary& s = inferFunction(*fn, {});
        if (s.outTypes.empty()) fail(expr.loc, "'" + e.name + "' returns no value");
        return s.outTypes[0];
      }
      if (auto info = findCompilableBuiltin(e.name)) {
        if (info->kind == BuiltinKind::Constant) return Type::realScalar();
      }
      fail(expr.loc, "undefined variable or function '" + e.name + "'");
    }
    case NodeKind::Unary: {
      const auto& e = static_cast<const Unary&>(expr);
      Type t = inferExpr(*e.operand, env);
      if (e.op == UnaryOp::Not) return {Elem::Bool, t.shape};
      return {arithElem(t.elem), t.shape};
    }
    case NodeKind::Binary:
      return inferBinary(static_cast<const Binary&>(expr), env);
    case NodeKind::Transpose: {
      const auto& e = static_cast<const Transpose&>(expr);
      Type t = inferExpr(*e.operand, env);
      return {t.elem, Shape{t.shape.cols, t.shape.rows}};
    }
    case NodeKind::Range: {
      const auto& e = static_cast<const Range&>(expr);
      Type st = inferExpr(*e.start, env);
      if (e.step) inferExpr(*e.step, env);
      Type sp = inferExpr(*e.stop, env);
      if (st.elem == Elem::Complex || sp.elem == Elem::Complex)
        fail(expr.loc, "complex ranges are not supported");
      Dim n = indexCount(expr, env, Dim::dynamic());
      return {Elem::Real, Shape{Dim::of(1), n}};
    }
    case NodeKind::MatrixLit:
      return inferMatrixLit(static_cast<const MatrixLit&>(expr), env);
    case NodeKind::CallIndex:
      return inferCallOutputs(static_cast<const CallIndex&>(expr), env, 1)[0];
    case NodeKind::Colon:
    case NodeKind::End:
      fail(expr.loc, "':'/'end' outside of an index expression");
    default:
      fail(expr.loc, "unsupported expression in compiled code");
  }
}

FunctionSummary checkProgram(const Program& program, const std::string& entry,
                             const std::vector<ArgSpec>& args, DiagnosticEngine& diags) {
  TypeInference inference(program, diags);
  return inference.inferEntry(entry, args);
}

}  // namespace mat2c::sema
