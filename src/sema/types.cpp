#include "sema/types.hpp"

namespace mat2c::sema {

const char* toString(Elem e) {
  switch (e) {
    case Elem::Real: return "real";
    case Elem::Complex: return "complex";
    case Elem::Bool: return "bool";
  }
  return "?";
}

Elem joinElem(Elem a, Elem b) {
  if (a == Elem::Complex || b == Elem::Complex) return Elem::Complex;
  if (a == Elem::Real || b == Elem::Real) return Elem::Real;
  return Elem::Bool;
}

namespace {
Dim joinDim(Dim a, Dim b) { return a == b ? a : Dim::dynamic(); }
}  // namespace

Shape joinShape(const Shape& a, const Shape& b) {
  return {joinDim(a.rows, b.rows), joinDim(a.cols, b.cols)};
}

Type joinType(const Type& a, const Type& b) {
  return {joinElem(a.elem, b.elem), joinShape(a.shape, b.shape)};
}

std::string Type::toString() const {
  std::string s = sema::toString(elem);
  s += '[';
  s += shape.rows.isKnown() ? std::to_string(shape.rows.extent()) : std::string("?");
  s += 'x';
  s += shape.cols.isKnown() ? std::to_string(shape.cols.extent()) : std::string("?");
  s += ']';
  return s;
}

}  // namespace mat2c::sema
