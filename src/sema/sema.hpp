// Type and shape inference for the compiled subset.
//
// TypeInference is the single engine used both by the standalone semantic
// check (tests, diagnostics) and by the lowerer, which replays statement
// processing as it emits LIR so that every subexpression's type is available
// in its *inlined* context.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ast/ast.hpp"
#include "sema/builtins.hpp"
#include "sema/types.hpp"
#include "support/diagnostics.hpp"

namespace mat2c::sema {

/// Per-scope inference state: variable types plus the constant-value lattice
/// that drives static shapes (n = length(x); y = zeros(1, n); ...).
struct Env {
  std::map<std::string, Type> vars;
  std::map<std::string, double> consts;

  friend bool operator==(const Env&, const Env&) = default;
};

struct FunctionSummary {
  std::vector<Type> paramTypes;
  std::vector<Type> outTypes;
};

class TypeInference {
 public:
  TypeInference(const ast::Program& program, DiagnosticEngine& diags);

  /// Infers a user function specialized to `args`; memoized per signature.
  /// Rejects recursion (the compiled subset has no stack discipline for it).
  const FunctionSummary& inferFunction(const ast::Function& fn, const std::vector<Type>& args);

  /// Entry point used by the driver: function by name + argument specs.
  const FunctionSummary& inferEntry(const std::string& name, const std::vector<ArgSpec>& args);

  // -- statement/expression level API (used by the lowerer) -----------------
  Type inferExpr(const ast::Expr& expr, Env& env);
  void processStmt(const ast::Stmt& stmt, Env& env);
  void processBlock(const std::vector<ast::StmtPtr>& body, Env& env);

  /// Constant scalar folding over the env's const lattice. `endExtent`, when
  /// set, gives `end` a value (used inside index expressions).
  std::optional<double> constValue(const ast::Expr& expr, Env& env,
                                   std::optional<double> endExtent = std::nullopt);

  /// Affine view of a scalar AST expression over non-constant scalar
  /// variables: value = constant + sum(coeff_i * var_i). Lets slice spans
  /// like k : k+m-1 fold to a static length even when k is dynamic.
  struct AffineExpr {
    bool ok = false;
    std::map<std::string, double> coeffs;
    double constant = 0.0;
  };
  AffineExpr astAffine(const ast::Expr& e, Env& env, std::optional<double> endExtent);

  /// Number of positions selected when indexing a dimension of extent
  /// `extent` with `arg` (Colon, scalar, range, or vector index).
  Dim indexCount(const ast::Expr& arg, Env& env, Dim extent);

  /// Output types of a call expression requested with nOut outputs.
  std::vector<Type> inferCallOutputs(const ast::CallIndex& call, Env& env, std::size_t nOut);

  /// Result type of indexing a value of type `base` with `args`.
  Type inferIndexResult(const Type& base, const std::vector<ast::ExprPtr>& args, Env& env,
                        SourceLoc loc);

  const ast::Program& program() const { return program_; }

 private:
  [[noreturn]] void fail(SourceLoc loc, std::string msg) { diags_.fatal(loc, std::move(msg)); }

  Type inferBinary(const ast::Binary& expr, Env& env);
  Type inferBuiltin(const std::string& name, const BuiltinInfo& info,
                    const std::vector<Type>& args, const std::vector<std::optional<double>>&
                    argConsts, SourceLoc loc, std::size_t nOut,
                    std::vector<Type>* extraOuts);
  Type inferMatrixLit(const ast::MatrixLit& expr, Env& env);

  static void joinInto(Env& dst, const Env& src);

  const ast::Program& program_;
  DiagnosticEngine& diags_;
  std::map<std::string, FunctionSummary> memo_;
  std::set<std::string> inProgress_;
};

/// Convenience wrapper: parse-free semantic check of an already-parsed
/// program. Returns the entry summary; throws CompileError on type errors.
FunctionSummary checkProgram(const ast::Program& program, const std::string& entry,
                             const std::vector<ArgSpec>& args, DiagnosticEngine& diags);

}  // namespace mat2c::sema
