// Classification of the builtin catalog for the *compiled* subset.
//
// The reference interpreter supports a superset (see interp/builtins_runtime);
// this table describes what the code generator can lower and how. Builtins
// not listed here remain interpreter-only: kernels that want them compiled
// must spell them as MATLAB loops, which is exactly what the paper's DSP
// benchmarks do.
#pragma once

#include <optional>
#include <string>

namespace mat2c::sema {

enum class BuiltinKind {
  Constant,     // pi, eps — scalar constants
  ElemUnary,    // abs, sqrt, exp, log, sin, cos, ... applied elementwise
  ElemBinary,   // atan2, mod, rem, power-like two-operand elementwise
  MinMax,       // min/max — reduction (1 arg) or elementwise (2 args)
  Reduction,    // sum, mean, prod, dot, norm
  Query,        // length, numel, size, isreal, isempty
  Constructor,  // zeros, ones, eye, linspace
  ComplexPart,  // real, imag, conj, angle, complex
  Transform,    // fft, ifft — whole-tensor transforms with their own loop nests
};

struct BuiltinInfo {
  BuiltinKind kind;
  /// For Constant: its value.
  double constantValue = 0.0;
};

/// Lookup in the compilable catalog; nullopt when the name is not a
/// compilable builtin (it may still be a runtime builtin or a user function).
std::optional<BuiltinInfo> findCompilableBuiltin(const std::string& name);

}  // namespace mat2c::sema
