#include "sema/builtins.hpp"

#include <map>
#include <numbers>

namespace mat2c::sema {

std::optional<BuiltinInfo> findCompilableBuiltin(const std::string& name) {
  static const std::map<std::string, BuiltinInfo> table = {
      {"pi", {BuiltinKind::Constant, std::numbers::pi}},
      {"eps", {BuiltinKind::Constant, 2.220446049250313e-16}},

      {"abs", {BuiltinKind::ElemUnary}},
      {"sqrt", {BuiltinKind::ElemUnary}},
      {"exp", {BuiltinKind::ElemUnary}},
      {"log", {BuiltinKind::ElemUnary}},
      {"log2", {BuiltinKind::ElemUnary}},
      {"log10", {BuiltinKind::ElemUnary}},
      {"sin", {BuiltinKind::ElemUnary}},
      {"cos", {BuiltinKind::ElemUnary}},
      {"tan", {BuiltinKind::ElemUnary}},
      {"asin", {BuiltinKind::ElemUnary}},
      {"acos", {BuiltinKind::ElemUnary}},
      {"atan", {BuiltinKind::ElemUnary}},
      {"floor", {BuiltinKind::ElemUnary}},
      {"ceil", {BuiltinKind::ElemUnary}},
      {"round", {BuiltinKind::ElemUnary}},
      {"fix", {BuiltinKind::ElemUnary}},
      {"sign", {BuiltinKind::ElemUnary}},

      {"atan2", {BuiltinKind::ElemBinary}},
      {"mod", {BuiltinKind::ElemBinary}},
      {"rem", {BuiltinKind::ElemBinary}},

      {"min", {BuiltinKind::MinMax}},
      {"max", {BuiltinKind::MinMax}},

      {"sum", {BuiltinKind::Reduction}},
      {"prod", {BuiltinKind::Reduction}},
      {"mean", {BuiltinKind::Reduction}},
      {"dot", {BuiltinKind::Reduction}},
      {"norm", {BuiltinKind::Reduction}},

      {"length", {BuiltinKind::Query}},
      {"numel", {BuiltinKind::Query}},
      {"size", {BuiltinKind::Query}},
      {"isreal", {BuiltinKind::Query}},
      {"isempty", {BuiltinKind::Query}},

      {"zeros", {BuiltinKind::Constructor}},
      {"ones", {BuiltinKind::Constructor}},
      {"eye", {BuiltinKind::Constructor}},
      {"linspace", {BuiltinKind::Constructor}},

      {"fft", {BuiltinKind::Transform}},
      {"ifft", {BuiltinKind::Transform}},

      {"real", {BuiltinKind::ComplexPart}},
      {"imag", {BuiltinKind::ComplexPart}},
      {"conj", {BuiltinKind::ComplexPart}},
      {"angle", {BuiltinKind::ComplexPart}},
      {"complex", {BuiltinKind::ComplexPart}},
  };
  auto it = table.find(name);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

}  // namespace mat2c::sema
