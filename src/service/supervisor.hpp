// Multi-process shard supervisor for the serve plane.
//
// ShardSupervisor runs N worker processes (`mat2c serve - --binary`, sharing
// one --store-dir) behind a single request interface:
//
//   * requests route to a shard by consistent hash of their content, so the
//     same kernel always lands on the same worker and its in-memory cache,
//   * each worker answers over a pipe in the order it reads (the serve loop
//     streams responses in input order), so the supervisor matches responses
//     to requests positionally with a per-shard outstanding FIFO,
//   * worker death — exit, kill -9, abort mid-request — is detected as pipe
//     EOF (or a torn frame); every unanswered request of the dead shard is
//     queued for re-dispatch and the shard restarts with capped exponential
//     backoff + deterministic jitter (RetryPolicy). Re-sending a request
//     that a dying worker may have half-processed is safe by construction:
//     requests are idempotent by content-addressed key, and the restarted
//     worker comes back warm from the shared artifact store,
//   * a restarted shard is readmitted only after it answers a healthz probe;
//     a shard that dies more than maxRestarts times is permanently ejected
//     and its traffic re-routed to surviving shards,
//   * optional hedging: a request outstanding longer than hedgeMillis is
//     duplicated to another live shard and the first answer wins (safe for
//     the same idempotency reason; counted, never silent),
//   * broadcastReload() sends every live shard an ISA-reload admin request
//     (the supervisor CLI wires SIGHUP to this).
//
// Determinism contract for the chaos harness: given the same schedule of
// submissions, kills, and reloads, restart delays derive from RetryPolicy's
// seeded jitter — no wall-clock randomness — so a chaos failure reproduces
// from its seed.
#pragma once

#include <sys/types.h>

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"

namespace mat2c::service {

class ShardSupervisor {
 public:
  struct Config {
    int shards = 2;
    /// Worker executable; "" = this process's own binary (/proc/self/exe).
    std::string binaryPath;
    /// Extra argv after `serve - --binary` (e.g. --store-dir, --isa-file,
    /// --jobs). Every shard gets the same arguments.
    std::vector<std::string> workerArgs;
    /// Extra KEY=VALUE environment entries for workers (e.g. MAT2C_FAULT for
    /// chaos runs); appended to the inherited environment.
    std::vector<std::string> workerEnv;
    /// Backoff between restarts of one shard.
    RetryPolicy restart;
    /// Restarts allowed per shard before permanent ejection.
    int maxRestarts = 8;
    /// Jitter seed (chaos determinism).
    std::uint64_t seed = 1;
    /// >0: duplicate a request still unanswered after this long to another
    /// live shard (first answer wins).
    double hedgeMillis = 0.0;
  };

  struct Stats {
    std::uint64_t submitted = 0;     ///< compile requests accepted
    std::uint64_t completed = 0;     ///< responses delivered to callers
    std::uint64_t restarts = 0;      ///< worker processes respawned
    std::uint64_t redispatched = 0;  ///< requests re-sent after a shard died
    std::uint64_t hedges = 0;        ///< duplicate copies sent
    std::uint64_t hedgeWins = 0;     ///< completions won by a non-primary copy
    std::uint64_t reloads = 0;       ///< broadcastReload() calls
    std::uint64_t failedNoShard = 0; ///< requests failed: every shard ejected
    int shardsAlive = 0;
    int shardsEjected = 0;
    std::vector<int> pids;           ///< per shard; -1 when dead/ejected
  };

  /// Completion callback. Runs on a supervisor internal thread; exactly one
  /// call per submit(). `rawPayload` is the Response frame payload as the
  /// worker sent it ("" for supervisor-synthesized failures) and `decoded`
  /// its parsed form.
  using ResponseHandler =
      std::function<void(const std::string& rawPayload, const BinaryResponse& decoded)>;

  explicit ShardSupervisor(Config config);
  /// Joins everything; outstanding requests are failed, workers terminated.
  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Spawns the fleet. False (with `error`) when no worker could be started.
  bool start(std::string& error);

  /// Routes one request. Queues for the target shard even while it is
  /// restarting (its cache affinity is worth the wait); fails fast only when
  /// every shard has been permanently ejected.
  void submit(const WireRequest& request, ResponseHandler done);

  /// Sends every live shard an ISA-reload admin request. Returns the number
  /// of shards the reload was queued to.
  int broadcastReload();

  /// Blocks until every submitted request has been answered.
  void drainPending();

  /// Graceful stop: close worker stdin, let them drain, reap. Idempotent.
  void shutdown();

  Stats stats() const;
  /// Supervisor-level Prometheus metrics (mat2c_shard_*, mat2c_hedges_*).
  std::string metricsText() const;
  /// Live worker PIDs (per shard; -1 when down) — the chaos harness kills
  /// these directly.
  std::vector<int> shardPids() const;

  /// Stable content hash used for shard routing (source/entry/args/isa/
  /// style/tune — the fields that determine the cache key).
  static std::uint64_t routeHash(const WireRequest& request);

 private:
  struct Pending;
  struct Shard;

  bool spawnLocked(std::size_t idx, std::string& error);
  bool sendLocked(Shard& shard, const std::shared_ptr<Pending>& p);
  void flushBacklogLocked(std::size_t idx);
  void onShardDown(std::size_t idx);
  void readerLoop(std::size_t idx, int fd, pid_t pid);
  void monitorLoop();
  void ejectLocked(std::size_t idx, std::vector<std::shared_ptr<Pending>>& reroute);
  int pickShardLocked(std::uint64_t hash) const;  ///< -1 when all ejected
  void failPending(const std::shared_ptr<Pending>& p, const std::string& why);
  void completeFromShard(std::size_t idx, std::string rawPayload);

  Config config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;       ///< monitor wakeups
  std::condition_variable idleCv_;   ///< drainPending()
  std::vector<std::unique_ptr<Shard>> shards_;
  std::thread monitor_;
  bool started_ = false;
  bool stopping_ = false;
  std::size_t pendingCount_ = 0;  ///< submitted, not yet answered

  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t redispatched_ = 0;
  std::uint64_t hedges_ = 0;
  std::uint64_t hedgeWins_ = 0;
  std::uint64_t reloads_ = 0;
  std::uint64_t failedNoShard_ = 0;
};

}  // namespace mat2c::service
