// Sharded, thread-safe LRU cache of compilation results.
//
// The cache is the service's memory of past work: design-space exploration
// recompiles the same kernels against many ISA variants, and a busy server
// sees the same (source, specs, ISA, options) request again and again. Each
// shard owns its own mutex + LRU list, so concurrent lookups on different
// keys rarely contend; the shard is picked from the CacheKey hash. Values
// are immutable and shared (shared_ptr<const CachedResult>), so a hit can be
// handed to any number of threads without copying or further locking.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/cache_key.hpp"

namespace mat2c::service {

/// What the cache stores per key: the compiled unit (shared, immutable LIR)
/// plus the C text emitted once at compile time, so warm hits pay zero
/// re-emission cost. The response-facing metadata (ISA name, vectorization /
/// idiom counters, degradation markers) is denormalized out of the unit so
/// an entry rehydrated from the on-disk artifact store — which persists the
/// C text and metadata but not the LIR — can answer requests without one.
/// For tune requests (keyed via CacheKey::makeTuned) the entry additionally
/// memoizes the winning pass configuration — the search result itself — so a
/// warm tune request skips the whole search, not just the final compile.
struct CachedResult {
  /// Absent when the entry was loaded from the artifact store: the serve
  /// plane answers from `cCode` + the metadata below, never from the LIR.
  std::optional<CompiledUnit> unit;
  std::string cCode;

  /// Response metadata, valid with or without `unit`.
  std::string isaName;
  int loopsVectorized = 0;
  int idiomRewrites = 0;
  std::vector<std::string> degraded;  ///< degradation-ladder markers

  /// passSignature() of the autotuned winner; empty for plain compiles.
  std::string tunedSignature;
  /// Search provenance (tune entries only; zeros otherwise).
  int tuneCandidates = 0;
  double tunedCycles = 0.0;
  double tuneDefaultCycles = 0.0;

  CachedResult(CompiledUnit u, std::string c);
  CachedResult(CompiledUnit u, std::string c, std::string tunedSig, int candidates,
               double tuned, double dflt);

  /// Store-rehydration constructor: no CompiledUnit, metadata supplied
  /// explicitly (artifact_store.cpp is the only intended caller).
  struct Meta {
    std::string isaName;
    int loopsVectorized = 0;
    int idiomRewrites = 0;
    std::vector<std::string> degraded;
  };
  CachedResult(std::string c, Meta meta, std::string tunedSig, int candidates,
               double tuned, double dflt);

  bool tuned() const { return !tunedSignature.empty(); }
  bool hasUnit() const { return unit.has_value(); }

  /// Estimated heap footprint of the retained CompiledUnit (LIR statement
  /// tree + declarations); 0 for store-loaded entries. Computed once at
  /// construction from lir::collectStats, so byteSize() stays O(1).
  std::size_t unitFootprintBytes() const { return unitBytes_; }

  /// Approximate heap footprint used for the byte counters. Covers the C
  /// text, the metadata strings, the memoized tuned-options payload, AND the
  /// CompiledUnit's LIR (unitFootprintBytes) — an entry that pins a whole
  /// statement tree must be charged for it, or byte-based caps lie.
  std::size_t byteSize() const {
    std::size_t n = sizeof(CachedResult) + cCode.size() + isaName.size() +
                    tunedSignature.size() + unitBytes_;
    for (const std::string& d : degraded) n += sizeof(std::string) + d.size();
    return n;
  }

 private:
  std::size_t unitBytes_ = 0;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

class CompileCache {
 public:
  /// `maxEntries` is the total capacity, split evenly across `shardCount`
  /// shards (each shard evicts independently). maxEntries == 0 disables the
  /// cache: every lookup misses and insert is a no-op — the cold-compile
  /// baseline for benches.
  explicit CompileCache(std::size_t maxEntries, std::size_t shardCount = 8);

  /// Returns the cached value and refreshes its LRU position, or nullptr.
  /// Full canonical-key comparison: a hash collision is a miss, never a
  /// wrong answer.
  std::shared_ptr<const CachedResult> lookup(const CacheKey& key);

  /// Inserts (or refreshes) `value`; evicts from the shard's LRU tail when
  /// over per-shard capacity.
  void insert(const CacheKey& key, std::shared_ptr<const CachedResult> value);

  /// Counters aggregated across shards (each shard is snapshotted under its
  /// own lock; the aggregate is approximate under concurrent mutation).
  CacheStats stats() const;

  /// Invariant check for tests: per shard (under its lock), the byte counter
  /// must equal the sum of key + value footprints of the live entries.
  bool checkByteAccounting() const;

  void clear();

  std::size_t maxEntries() const { return maxEntries_; }
  std::size_t shardCount() const { return shards_.size(); }

 private:
  struct Entry {
    std::string canonical;
    std::shared_ptr<const CachedResult> value;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
    std::size_t bytes = 0;
  };

  Shard& shardFor(const CacheKey& key) { return shards_[key.hash % shards_.size()]; }

  std::size_t maxEntries_;
  std::size_t perShardCapacity_;
  std::vector<Shard> shards_;
};

}  // namespace mat2c::service
