#include "service/artifact_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "support/binary_io.hpp"
#include "support/fault_injection.hpp"
#include "support/string_utils.hpp"

namespace fs = std::filesystem;

namespace mat2c::service {

namespace {

using bin::appendF64;
using bin::appendI32;
using bin::appendStr;
using bin::appendU32;
using bin::appendU64;
using bin::Reader;

bool isArtifactFile(const fs::directory_entry& entry) {
  return entry.is_regular_file() && entry.path().extension() == ".art";
}

}  // namespace

std::string ArtifactStore::fileNameFor(const CacheKey& key) {
  return hex64(key.hash) + ".art";
}

std::string ArtifactStore::serialize(const CacheKey& key, const CachedResult& value) {
  std::string payload;
  appendStr(payload, key.canonical);
  appendStr(payload, value.cCode);
  appendStr(payload, value.isaName);
  appendI32(payload, value.loopsVectorized);
  appendI32(payload, value.idiomRewrites);
  appendU32(payload, static_cast<std::uint32_t>(value.degraded.size()));
  for (const std::string& d : value.degraded) appendStr(payload, d);
  appendStr(payload, value.tunedSignature);
  appendI32(payload, value.tuneCandidates);
  appendF64(payload, value.tunedCycles);
  appendF64(payload, value.tuneDefaultCycles);

  std::string out;
  out.reserve(24 + payload.size());
  out.append(kMagic, sizeof kMagic);
  appendU32(out, kFormatVersion);
  appendU64(out, fnv1a64(payload));
  appendU64(out, payload.size());
  out += payload;
  return out;
}

std::shared_ptr<const CachedResult> ArtifactStore::deserialize(std::string_view bytes,
                                                               const CacheKey& key,
                                                               std::string* error) {
  auto fail = [&](const char* why) -> std::shared_ptr<const CachedResult> {
    if (error) *error = why;
    return nullptr;
  };
  constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 8;
  if (bytes.size() < kHeaderSize) return fail("truncated header");
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) return fail("bad magic");
  Reader header(bytes.substr(4, kHeaderSize - 4));
  std::uint32_t version = 0;
  std::uint64_t checksum = 0;
  std::uint64_t payloadSize = 0;
  header.u32(version);
  header.u64(checksum);
  header.u64(payloadSize);
  if (version != kFormatVersion) return fail("version skew");
  std::string_view payload = bytes.substr(kHeaderSize);
  if (payload.size() != payloadSize) return fail("payload size mismatch");
  if (fnv1a64(payload) != checksum) return fail("checksum mismatch");

  Reader r(payload);
  std::string canonical, cCode, tunedSignature;
  CachedResult::Meta meta;
  std::uint32_t degradedCount = 0;
  std::int32_t tuneCandidates = 0;
  double tunedCycles = 0.0, tuneDefaultCycles = 0.0;
  if (!r.str(canonical) || !r.str(cCode) || !r.str(meta.isaName) ||
      !r.i32(meta.loopsVectorized) || !r.i32(meta.idiomRewrites) || !r.u32(degradedCount)) {
    return fail("malformed payload");
  }
  if (degradedCount > payload.size()) return fail("malformed payload");  // cheap DoS guard
  meta.degraded.reserve(degradedCount);
  for (std::uint32_t i = 0; i < degradedCount; ++i) {
    std::string d;
    if (!r.str(d)) return fail("malformed payload");
    meta.degraded.push_back(std::move(d));
  }
  if (!r.str(tunedSignature) || !r.i32(tuneCandidates) || !r.f64(tunedCycles) ||
      !r.f64(tuneDefaultCycles) || !r.done()) {
    return fail("malformed payload");
  }
  // Content addressing is by hash; the embedded canonical key is the
  // collision guard. A mismatch is a miss, never a wrong artifact.
  if (canonical != key.canonical) return fail("canonical key mismatch");
  return std::make_shared<const CachedResult>(std::move(cCode), std::move(meta),
                                              std::move(tunedSignature), tuneCandidates,
                                              tunedCycles, tuneDefaultCycles);
}

ArtifactStore::ArtifactStore(Config config) : config_(std::move(config)) {
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec || !fs::is_directory(config_.dir, ec) || ec) {
    error_ = "cannot create store directory '" + config_.dir + "'";
    if (ec) error_ += ": " + ec.message();
    return;
  }
  // Inventory what a previous process left behind: this is what makes a
  // restarted server start warm.
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    if (ec) break;
    if (!isArtifactFile(entry)) continue;
    std::error_code sizeEc;
    std::uintmax_t size = entry.file_size(sizeEc);
    if (sizeEc) continue;
    bytes_ += static_cast<std::size_t>(size);
    ++files_;
  }
  ok_ = true;
}

std::shared_ptr<const CachedResult> ArtifactStore::load(const CacheKey& key) {
  if (!ok_) {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    return nullptr;
  }
  fs::path path = fs::path(config_.dir) / fileNameFor(key);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::lock_guard<std::mutex> lock(mu_);
      ++misses_;
      return nullptr;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = std::move(buf).str();
    if (!in.good() && !in.eof()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++corrupt_;
      return nullptr;
    }
  }
  std::string why;
  auto result = deserialize(bytes, key, &why);
  std::lock_guard<std::mutex> lock(mu_);
  if (result) {
    ++hits_;
    return result;
  }
  if (why == "canonical key mismatch") {
    // Hash collision with a healthy file belonging to a different key: a
    // plain miss, and the resident artifact stays.
    ++misses_;
    return nullptr;
  }
  // Damaged file: count it, remove it so the next lookup is a clean miss.
  ++corrupt_;
  std::error_code sizeEc;
  std::uintmax_t size = fs::file_size(path, sizeEc);
  std::error_code rmEc;
  if (fs::remove(path, rmEc) && !rmEc) {
    if (files_ > 0) --files_;
    if (!sizeEc) bytes_ -= std::min(bytes_, static_cast<std::size_t>(size));
  }
  return nullptr;
}

bool ArtifactStore::store(const CacheKey& key, const CachedResult& value) {
  std::string image = serialize(key, value);
  // Chaos hooks. Fail models a full/readonly disk (counted, no bytes
  // touched); Torn truncates the image mid-write and lets the rename land —
  // the on-disk artifact is damaged exactly the way a crash between write
  // and fsync damages it, and load()'s checksum must turn it into a clean
  // miss, never a wrong answer.
  fault::PointAction chaos = fault::atPoint("store.write");
  std::lock_guard<std::mutex> lock(mu_);
  if (chaos == fault::PointAction::Fail) {
    ++putFailures_;
    return false;
  }
  if (chaos == fault::PointAction::Torn) image.resize(image.size() / 2);
  if (!ok_) {
    ++putFailures_;
    return false;
  }
  fs::path finalPath = fs::path(config_.dir) / fileNameFor(key);
  // Temp name is unique per (process address, counter): concurrent writers —
  // including sibling processes sharing the directory — never collide on the
  // temp file, and each rename is atomic.
  char tmpName[64];
  std::snprintf(tmpName, sizeof tmpName, ".tmp-%p-%llu", static_cast<const void*>(this),
                static_cast<unsigned long long>(++tempCounter_));
  fs::path tmpPath = fs::path(config_.dir) / (fileNameFor(key) + tmpName);

  {
    std::ofstream out(tmpPath, std::ios::binary | std::ios::trunc);
    if (!out || !out.write(image.data(), static_cast<std::streamsize>(image.size())) ||
        !out.flush()) {
      ++putFailures_;
      std::error_code ec;
      fs::remove(tmpPath, ec);
      return false;
    }
  }

  std::error_code ec;
  std::uintmax_t oldSize = fs::file_size(finalPath, ec);
  bool replacing = !ec;
  fs::rename(tmpPath, finalPath, ec);
  if (ec) {
    ++putFailures_;
    fs::remove(tmpPath, ec);
    return false;
  }
  if (replacing) {
    bytes_ -= std::min(bytes_, static_cast<std::size_t>(oldSize));
  } else {
    ++files_;
  }
  bytes_ += image.size();
  ++puts_;
  if (config_.maxBytes > 0 && bytes_ > config_.maxBytes) evictLocked();
  return true;
}

void ArtifactStore::evictLocked() {
  // Oldest-first by mtime: artifacts written (or rewritten) recently survive.
  struct Victim {
    fs::file_time_type mtime;
    fs::path path;
    std::size_t size;
  };
  std::vector<Victim> victims;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    if (ec) return;
    if (!isArtifactFile(entry)) continue;
    std::error_code entryEc;
    auto mtime = entry.last_write_time(entryEc);
    if (entryEc) continue;
    std::uintmax_t size = entry.file_size(entryEc);
    if (entryEc) continue;
    victims.push_back({mtime, entry.path(), static_cast<std::size_t>(size)});
  }
  // Filename tie-break: same-second writes are common on coarse-mtime
  // filesystems, and an eviction order that depends on directory iteration
  // order is impossible to test or reason about across siblings.
  std::sort(victims.begin(), victims.end(), [](const Victim& a, const Victim& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path.filename().string() < b.path.filename().string();
  });
  for (const Victim& v : victims) {
    if (bytes_ <= config_.maxBytes) break;
    std::error_code rmEc;
    if (!fs::remove(v.path, rmEc) || rmEc) continue;
    bytes_ -= std::min(bytes_, v.size);
    if (files_ > 0) --files_;
    ++evictions_;
  }
}

ArtifactStore::Stats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.puts = puts_;
  s.putFailures = putFailures_;
  s.corrupt = corrupt_;
  s.evictions = evictions_;
  s.bytes = bytes_;
  s.files = files_;
  return s;
}

}  // namespace mat2c::service
