// Concurrent batch-compilation service.
//
// CompileService fronts mat2c::Compiler with the mechanisms a production
// compile farm needs:
//   * a fixed worker pool draining bounded per-tenant FIFOs, fair-share
//     round-robin across tenants with optional per-tenant in-flight caps
//     (one chatty tenant can no longer starve the fleet),
//   * a content-addressed CompileCache (see cache_key.hpp) so repeated
//     requests are served without recompiling,
//   * an optional persistent ArtifactStore second tier (read-through on
//     miss, write-behind after compile) so a restarted — or sibling —
//     server starts warm, and
//   * single-flight deduplication: N identical requests in flight at once
//     trigger exactly one underlying compile; the other N-1 join the first
//     one's "flight" and are fulfilled from its result.
//
// Thread-safety contract with the rest of the compiler: one mat2c::Compiler
// instance is NOT safe to share across threads (it accumulates diagnostics),
// but distinct instances are independent — each worker thread owns one.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/artifact_store.hpp"
#include "service/compile_cache.hpp"
#include "service/isa_registry.hpp"

namespace mat2c::service {

struct CompileRequest {
  std::string id;  ///< echoed back in the response (JSON-lines "id" field)
  std::string source;
  std::string entry;
  std::vector<sema::ArgSpec> args;
  CompileOptions options;
  /// Fair-share admission class (wire field "tenant", "" = the default
  /// tenant). Requests are queued per tenant and drained round-robin;
  /// Config::tenantInflightCap bounds how many of one tenant's jobs may
  /// occupy workers at once. The tenant is deliberately NOT part of the
  /// cache key: artifacts are content-addressed and shared across tenants.
  std::string tenant;
  /// Tune mode (src/tune): instead of compiling with `options` as given, the
  /// worker searches the pass-parameter space around them and caches the
  /// winner. Tune requests are keyed WITHOUT the pass options
  /// (CacheKey::makeTuned), so a warm request — whatever baseline options it
  /// carries — returns the tuned artifact straight from the cache, and
  /// concurrent identical tune requests share one search via single-flight.
  bool tune = false;
  /// Candidate budget for the search (0 = TuneOptions default).
  int tuneBudget = 0;
  /// The request did not name a target: stamp the server-default ISA from
  /// Config::isaRegistry at submit time (before the cache key is computed),
  /// so the request is pinned to one registry version for its whole life —
  /// a concurrent reload changes later submissions, never this one. When no
  /// registry is configured, `options.isa` is used as given.
  bool useDefaultIsa = false;
  /// Per-request deadline in milliseconds from submit (0 = none). Covers
  /// queue time and the compile itself: a request still queued past its
  /// deadline is resolved with Timeout at pickup (the future is never
  /// leaked), and a running compile is bounded cooperatively via
  /// CompileLimits::wallBudgetMillis.
  double deadlineMillis = 0.0;
};

struct CompileResponse {
  std::string id;
  bool ok = false;
  bool cacheHit = false;  ///< served without compiling (memory or store tier)
  bool storeHit = false;  ///< the hit came from the persistent artifact store
  bool deduped = false;   ///< joined another request's in-flight compile
  std::string error;      ///< CompileError text when !ok
  /// Structured classification of `error` (ErrorKind::None when ok); see
  /// support/errors.hpp for the taxonomy.
  ErrorKind errorKind = ErrorKind::None;
  std::shared_ptr<const CachedResult> result;  ///< non-null when ok
  double millis = 0.0;    ///< latency from submit to fulfillment
  /// Admin-request result text (reload/healthz/stats), "" for compiles.
  /// Synthesized by the serve loop — CompileService itself never sets it.
  std::string adminInfo;
};

/// Point-in-time percentile summary of the request-latency histogram.
struct LatencyStats {
  std::uint64_t count = 0;
  double p50Millis = 0.0;
  double p95Millis = 0.0;
  double p99Millis = 0.0;
};

/// Lock-free fixed-bucket log-scale latency histogram. Bucket i counts
/// latencies in [2^i, 2^(i+1)) microseconds (bucket 0 also absorbs sub-µs),
/// covering 1 µs .. ~9 min in 32 buckets. record() is one atomic increment,
/// cheap enough for the 10k+ req/s warm path; percentiles are read as the
/// upper bound of the bucket containing the rank (≤ 2x overestimate by
/// construction — honest for tail bounds).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 32;

  void record(double micros);
  LatencyStats snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Per-tenant admission counters (quota observability).
struct TenantStats {
  std::string name;            ///< "" = the default tenant
  std::uint64_t submitted = 0; ///< jobs enqueued for this tenant
  std::uint64_t completed = 0; ///< jobs a worker finished for this tenant
  std::size_t queued = 0;      ///< currently waiting in the tenant's FIFO
  std::size_t inflight = 0;    ///< currently occupying a worker
};

struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t compiles = 0;    ///< underlying Compiler::compileSource calls
  std::uint64_t tunes = 0;       ///< autotune searches actually run (cold tune requests)
  std::uint64_t cacheHits = 0;   ///< submit-time fast-path hits (memory or store)
  std::uint64_t storeHits = 0;   ///< subset of cacheHits served from the artifact store
  std::uint64_t dedupJoins = 0;  ///< requests that joined an in-flight compile
  std::uint64_t errors = 0;
  std::uint64_t timeouts = 0;    ///< responses resolved with ErrorKind::Timeout
  std::uint64_t panics = 0;      ///< non-standard exceptions contained by a worker
  std::uint64_t degraded = 0;    ///< successful compiles that used the degradation ladder
  double compileMillis = 0.0;    ///< wall time spent inside compileSource
  std::size_t threads = 0;
  std::size_t tenantInflightCap = 0;  ///< 0 = unlimited
  CacheStats cache;
  LatencyStats latency;
  bool storeEnabled = false;
  ArtifactStore::Stats store;    ///< zeros when !storeEnabled
  std::vector<TenantStats> tenants;  ///< round-robin order (first-seen)
  std::uint64_t isaVersion = 0;  ///< registry version (0 = no registry)
  std::uint64_t isaReloads = 0;  ///< successful hot-reloads
};

/// Serializes stats in the same style as the pipeline telemetry JSON
/// (docs/pipeline.md); schema documented in docs/service.md. When
/// `wallMillis` >= 0, adds wall time and requests-per-second throughput.
std::string statsJson(const ServiceStats& stats, double wallMillis = -1.0);

/// Prometheus text-exposition rendering of the same stats (metric names in
/// docs/service.md). `wallMillis` >= 0 additionally emits throughput.
std::string metricsText(const ServiceStats& stats, double wallMillis = -1.0);

/// One-line health summary: "ok" while the pool is alive, "degraded: ..."
/// when panics have been contained or the store is failing writes.
std::string healthzText(const ServiceStats& stats);

class CompileService {
 public:
  struct Config {
    std::size_t threads = 0;        ///< 0 = hardware_concurrency (min 1)
    std::size_t queueCapacity = 1024;  ///< global bound across all tenant FIFOs
    std::size_t cacheEntries = 1024;
    std::size_t cacheShards = 8;
    /// Max jobs of ONE tenant occupying workers at once (0 = unlimited).
    /// With the round-robin drain this is the fair-share knob: a flooding
    /// tenant can hold at most this many workers while other tenants have
    /// queued work.
    std::size_t tenantInflightCap = 0;
    /// Persistent artifact store directory ("" = disabled). Read-through on
    /// cache miss, write-behind after each successful compile.
    std::string storeDir;
    /// On-disk cap for the store (0 = unlimited), oldest-first eviction.
    std::size_t maxStoreBytes = 0;
    /// Cap on time a job may sit in the queue before a worker picks it up
    /// (0 = unlimited). Waiters queued longer are resolved with Timeout at
    /// pickup even when they carry no per-request deadline — the bound that
    /// keeps a backlogged server from compiling for clients that gave up.
    double maxQueueMillis = 0.0;
    /// Test/instrumentation hook: runs on the worker thread immediately
    /// before each underlying compile (lets tests stall the worker to prove
    /// single-flight dedup deterministically).
    std::function<void(const CompileRequest&)> onCompileStart;
    /// Server-default ISA with zero-downtime reload (non-owning; the serve
    /// loop owns the registry and outlives the service). When set, requests
    /// flagged useDefaultIsa are stamped with the registry's current ISA at
    /// submit time. Null = requests compile with options.isa as given.
    IsaRegistry* isaRegistry = nullptr;
  };

  CompileService();
  explicit CompileService(const Config& config);
  /// Drains every queued job (all returned futures become ready), then joins
  /// the workers.
  ~CompileService();

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Enqueues one request. Returns immediately with a ready future on a
  /// cache or store hit; otherwise blocks only while the global job queue is
  /// full (backpressure). The future never throws — failures are reported
  /// through CompileResponse::ok/error.
  std::future<CompileResponse> submit(CompileRequest request);

  /// Submits the whole batch, then waits; responses are in request order.
  std::vector<CompileResponse> compileBatch(std::vector<CompileRequest> requests);

  ServiceStats stats() const;
  const CompileCache& cache() const { return cache_; }
  /// Non-null iff Config::storeDir was set.
  const ArtifactStore* artifactStore() const { return store_.get(); }
  std::size_t threadCount() const { return workers_.size(); }

 private:
  /// One in-flight compile; every identical request registered before it
  /// finishes gets fulfilled from the same result.
  struct Flight {
    struct Waiter {
      std::string id;
      bool deduped = false;
      double deadlineMillis = 0.0;  ///< 0 = none
      std::chrono::steady_clock::time_point submitted;
      std::promise<CompileResponse> promise;
    };
    std::vector<Waiter> waiters;
  };
  struct Job {
    CacheKey key;
    CompileRequest request;
    std::shared_ptr<Flight> flight;
  };
  /// One tenant's FIFO + quota counters. A flight joined by several tenants
  /// is queued (and capped) under the tenant that opened it.
  struct TenantQueue {
    std::deque<Job> jobs;
    std::size_t inflight = 0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
  };

  void workerLoop();
  void runJob(Job& job, const std::string& tenant);
  void finishTenantJobLocked(const std::string& tenant);
  /// Round-robin claim of the next eligible job (caller holds mu_). Returns
  /// false when no tenant has both queued work and in-flight headroom.
  bool claimJobLocked(Job& out, std::string& tenant);

  Config config_;
  CompileCache cache_;
  std::unique_ptr<ArtifactStore> store_;  ///< null when persistence disabled

  mutable std::mutex mu_;  // guards tenants_/rrOrder_/queuedTotal_ and inflight_
  std::condition_variable notEmpty_;
  std::condition_variable notFull_;
  std::unordered_map<std::string, TenantQueue> tenants_;
  std::vector<std::string> rrOrder_;  ///< tenant names, first-seen order
  std::size_t rrNext_ = 0;            ///< next rrOrder_ index to offer a worker
  std::size_t queuedTotal_ = 0;       ///< jobs across all tenant FIFOs
  std::unordered_map<std::string, std::shared_ptr<Flight>> inflight_;  // by canonical key
  bool stopping_ = false;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> compiles_{0};
  std::atomic<std::uint64_t> tunes_{0};
  std::atomic<std::uint64_t> cacheHits_{0};
  std::atomic<std::uint64_t> storeHits_{0};
  std::atomic<std::uint64_t> dedupJoins_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> panics_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> compileMicros_{0};
  LatencyHistogram latency_;

  std::vector<std::thread> workers_;
};

}  // namespace mat2c::service
