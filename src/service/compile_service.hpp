// Concurrent batch-compilation service.
//
// CompileService fronts mat2c::Compiler with the three mechanisms a
// production compile farm needs:
//   * a fixed worker pool draining a bounded job queue (submit applies
//     backpressure instead of growing without bound),
//   * a content-addressed CompileCache (see cache_key.hpp) so repeated
//     requests are served without recompiling, and
//   * single-flight deduplication: N identical requests in flight at once
//     trigger exactly one underlying compile; the other N-1 join the first
//     one's "flight" and are fulfilled from its result.
//
// Thread-safety contract with the rest of the compiler: one mat2c::Compiler
// instance is NOT safe to share across threads (it accumulates diagnostics),
// but distinct instances are independent — each worker thread owns one.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/compile_cache.hpp"

namespace mat2c::service {

struct CompileRequest {
  std::string id;  ///< echoed back in the response (JSON-lines "id" field)
  std::string source;
  std::string entry;
  std::vector<sema::ArgSpec> args;
  CompileOptions options;
  /// Tune mode (src/tune): instead of compiling with `options` as given, the
  /// worker searches the pass-parameter space around them and caches the
  /// winner. Tune requests are keyed WITHOUT the pass options
  /// (CacheKey::makeTuned), so a warm request — whatever baseline options it
  /// carries — returns the tuned artifact straight from the cache, and
  /// concurrent identical tune requests share one search via single-flight.
  bool tune = false;
  /// Candidate budget for the search (0 = TuneOptions default).
  int tuneBudget = 0;
  /// Per-request deadline in milliseconds from submit (0 = none). Covers
  /// queue time and the compile itself: a request still queued past its
  /// deadline is resolved with Timeout at pickup (the future is never
  /// leaked), and a running compile is bounded cooperatively via
  /// CompileLimits::wallBudgetMillis.
  double deadlineMillis = 0.0;
};

struct CompileResponse {
  std::string id;
  bool ok = false;
  bool cacheHit = false;  ///< served straight from the cache
  bool deduped = false;   ///< joined another request's in-flight compile
  std::string error;      ///< CompileError text when !ok
  /// Structured classification of `error` (ErrorKind::None when ok); see
  /// support/errors.hpp for the taxonomy.
  ErrorKind errorKind = ErrorKind::None;
  std::shared_ptr<const CachedResult> result;  ///< non-null when ok
  double millis = 0.0;    ///< latency from submit to fulfillment
};

struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t compiles = 0;    ///< underlying Compiler::compileSource calls
  std::uint64_t tunes = 0;       ///< autotune searches actually run (cold tune requests)
  std::uint64_t cacheHits = 0;   ///< submit-time fast-path hits
  std::uint64_t dedupJoins = 0;  ///< requests that joined an in-flight compile
  std::uint64_t errors = 0;
  std::uint64_t timeouts = 0;    ///< responses resolved with ErrorKind::Timeout
  std::uint64_t panics = 0;      ///< non-standard exceptions contained by a worker
  std::uint64_t degraded = 0;    ///< successful compiles that used the degradation ladder
  double compileMillis = 0.0;    ///< wall time spent inside compileSource
  std::size_t threads = 0;
  CacheStats cache;
};

/// Serializes stats in the same style as the pipeline telemetry JSON
/// (docs/pipeline.md); schema documented in docs/service.md. When
/// `wallMillis` >= 0, adds wall time and requests-per-second throughput.
std::string statsJson(const ServiceStats& stats, double wallMillis = -1.0);

class CompileService {
 public:
  struct Config {
    std::size_t threads = 0;        ///< 0 = hardware_concurrency (min 1)
    std::size_t queueCapacity = 1024;
    std::size_t cacheEntries = 1024;
    std::size_t cacheShards = 8;
    /// Cap on time a job may sit in the queue before a worker picks it up
    /// (0 = unlimited). Waiters queued longer are resolved with Timeout at
    /// pickup even when they carry no per-request deadline — the bound that
    /// keeps a backlogged server from compiling for clients that gave up.
    double maxQueueMillis = 0.0;
    /// Test/instrumentation hook: runs on the worker thread immediately
    /// before each underlying compile (lets tests stall the worker to prove
    /// single-flight dedup deterministically).
    std::function<void(const CompileRequest&)> onCompileStart;
  };

  CompileService();
  explicit CompileService(const Config& config);
  /// Drains every queued job (all returned futures become ready), then joins
  /// the workers.
  ~CompileService();

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Enqueues one request. Returns immediately with a ready future on a
  /// cache hit; otherwise blocks only while the job queue is full
  /// (backpressure). The future never throws — failures are reported through
  /// CompileResponse::ok/error.
  std::future<CompileResponse> submit(CompileRequest request);

  /// Submits the whole batch, then waits; responses are in request order.
  std::vector<CompileResponse> compileBatch(std::vector<CompileRequest> requests);

  ServiceStats stats() const;
  const CompileCache& cache() const { return cache_; }
  std::size_t threadCount() const { return workers_.size(); }

 private:
  /// One in-flight compile; every identical request registered before it
  /// finishes gets fulfilled from the same result.
  struct Flight {
    struct Waiter {
      std::string id;
      bool deduped = false;
      double deadlineMillis = 0.0;  ///< 0 = none
      std::chrono::steady_clock::time_point submitted;
      std::promise<CompileResponse> promise;
    };
    std::vector<Waiter> waiters;
  };
  struct Job {
    CacheKey key;
    CompileRequest request;
    std::shared_ptr<Flight> flight;
  };

  void workerLoop();
  void runJob(Job& job);

  Config config_;
  CompileCache cache_;

  mutable std::mutex mu_;  // guards queue_ and inflight_
  std::condition_variable notEmpty_;
  std::condition_variable notFull_;
  std::deque<Job> queue_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> inflight_;  // by canonical key
  bool stopping_ = false;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> compiles_{0};
  std::atomic<std::uint64_t> tunes_{0};
  std::atomic<std::uint64_t> cacheHits_{0};
  std::atomic<std::uint64_t> dedupJoins_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> panics_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> compileMicros_{0};

  std::vector<std::thread> workers_;
};

}  // namespace mat2c::service
