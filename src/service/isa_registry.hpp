// Versioned ISA registry: the server-default target with zero-downtime swap.
//
// The DSE loop (src/dse) keeps producing new ISA description files; deploying
// one used to require a full server restart. IsaRegistry holds the current
// default IsaDescription behind a shared_ptr so the serve plane can swap it
// atomically: requests that asked for the server default (empty `isa` field
// on the wire) are stamped with a snapshot at submit time, so in-flight
// requests finish on the fingerprint they started with while new submissions
// pick up the reloaded ISA. Cache correctness is free — CacheKey already
// incorporates IsaDescription::fingerprint(), so a reload naturally misses
// the old artifacts instead of serving stale code.
//
// reload() re-parses the file the registry was loaded from and keeps the old
// description on ANY failure (unreadable file, parse diagnostics), so a bad
// push can never take the default target down.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "isa/isa.hpp"

namespace mat2c::service {

class IsaRegistry {
 public:
  /// Immutable view of the registry at one instant. `isa` stays valid for as
  /// long as the caller holds the shared_ptr, across any number of reloads.
  struct Snapshot {
    std::shared_ptr<const isa::IsaDescription> isa;
    std::uint64_t version = 0;  ///< bumps on every successful install/reload
  };

  /// Starts at `initial` (version 1). `path` is the description file reload()
  /// re-reads; "" disables file reloads (install() still works).
  explicit IsaRegistry(isa::IsaDescription initial, std::string path = "");

  /// Parses `path` into a description suitable for the constructor (the
  /// registry itself is pinned by its mutex, so it is built in place:
  /// `registry.emplace(IsaRegistry::parseFile(p), p)`). Throws
  /// std::runtime_error on an unreadable or malformed file — startup, unlike
  /// reload, SHOULD fail loudly on a bad file.
  static isa::IsaDescription parseFile(const std::string& path);

  Snapshot snapshot() const;
  std::uint64_t version() const;
  std::uint64_t reloads() const;  ///< successful reload() calls
  const std::string& path() const { return path_; }

  /// Re-reads and re-parses the description file. Returns "" on success
  /// (version bumped, subsequent snapshots see the new ISA); on failure
  /// returns a one-line reason and leaves the current ISA untouched.
  std::string reload();

  /// Installs a description directly (tests, programmatic swaps).
  void install(isa::IsaDescription next);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const isa::IsaDescription> current_;
  std::uint64_t version_ = 1;
  std::uint64_t reloads_ = 0;
  std::string path_;
};

}  // namespace mat2c::service
