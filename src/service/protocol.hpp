// Wire format of the batch server (`mat2c serve`).
//
// Requests arrive as JSON-lines — one self-contained JSON object per line —
// and every request produces one JSON response line, so the server composes
// with shell pipelines and request logs can be replayed byte-for-byte. The
// parser below is a deliberately small, dependency-free JSON reader covering
// exactly what the request format needs (objects, arrays, strings with
// escapes, numbers, booleans, null); docs/service.md documents the schema.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "service/compile_service.hpp"

namespace mat2c::service {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Object, Array };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<std::pair<std::string, JsonValue>> members;  // Object, in input order
  std::vector<JsonValue> elements;                         // Array

  /// First member with `key`, or nullptr (Object only).
  const JsonValue* find(std::string_view key) const;
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
/// Returns nullopt and sets `error` (with a byte offset) on malformed input.
std::optional<JsonValue> parseJson(std::string_view text, std::string& error);

/// JSON string literal (quoted, escaped) for response emission.
std::string jsonQuote(std::string_view s);

/// Parses a comma-separated arg-spec list ("1x1024,c1x64", the CLI --args
/// syntax). On failure returns false and sets `badSpec` to the offending
/// token. An empty/whitespace list parses to no args.
bool parseArgSpecList(const std::string& text, std::vector<sema::ArgSpec>& out,
                      std::string& badSpec);

/// Wire-level resource bounds, enforced before the request body is parsed.
struct ProtocolLimits {
  /// Reject request lines larger than this many bytes (0 = unlimited).
  std::size_t maxRequestBytes = 4u << 20;
};

/// Parses one JSON-lines request into a CompileRequest. Recognized fields:
///   source (required), entry (required), id, args ("1x32,c1x8"),
///   isa (preset name), isa_text (inline ISA description, overrides isa),
///   style ("proposed"|"coder"), constFold/idioms/vectorize/sinkDecls/
///   checkElim/degrade (bools), deadline_ms (number, per-request deadline),
///   tune (bool: autotune the pass parameters and cache the winner),
///   tune_budget (positive integer: candidate cap for the tune search).
/// Unknown fields are an error, so typos cannot silently compile with
/// default options. On failure sets `error` and, when `kind` is non-null,
/// classifies it (ResourceExhausted for an oversized line, ParseError for
/// everything else).
bool parseCompileRequest(std::string_view line, CompileRequest& out, std::string& error,
                         ErrorKind* kind = nullptr, const ProtocolLimits& limits = {});

/// One response line (no trailing newline): id, ok, cached, deduped, millis,
/// and on success isa/cBytes/loopsVectorized/idiomRewrites (plus degraded
/// when the compile used the degradation ladder, plus tuned/tunedSignature/
/// tuneCandidates/tunedCycles/tuneDefaultCycles for autotuned results), else
/// error + errorKind.
std::string responseJson(const CompileResponse& response);

}  // namespace mat2c::service
