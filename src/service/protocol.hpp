// Wire formats of the batch server (`mat2c serve`).
//
// Two encodings share one request model (WireRequest → CompileRequest):
//
//   * JSON-lines — one self-contained JSON object per line, one JSON
//     response line per request, so the server composes with shell pipelines
//     and request logs can be replayed byte-for-byte. The parser below is a
//     deliberately small, dependency-free JSON reader covering exactly what
//     the request format needs.
//
//   * Length-prefixed binary frames ("M2CB" magic + version + type +
//     payload length) — the warm-path format: no JSON parse on ingest, no
//     JSON serialize on egress. bench_service measures the delta.
//
// docs/service.md documents both schemas and the frame layout.
#pragma once

#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "service/compile_service.hpp"

namespace mat2c::service {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Object, Array };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<std::pair<std::string, JsonValue>> members;  // Object, in input order
  std::vector<JsonValue> elements;                         // Array

  /// First member with `key`, or nullptr (Object only).
  const JsonValue* find(std::string_view key) const;
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
/// Returns nullopt and sets `error` (with a byte offset) on malformed input.
std::optional<JsonValue> parseJson(std::string_view text, std::string& error);

/// JSON string literal (quoted, escaped) for response emission.
std::string jsonQuote(std::string_view s);

/// Parses a comma-separated arg-spec list ("1x1024,c1x64", the CLI --args
/// syntax). On failure returns false and sets `badSpec` to the offending
/// token. An empty/whitespace list parses to no args.
bool parseArgSpecList(const std::string& text, std::vector<sema::ArgSpec>& out,
                      std::string& badSpec);

/// Wire-level resource bounds, enforced before the request body is parsed.
struct ProtocolLimits {
  /// Reject request lines / frame payloads larger than this many bytes
  /// (0 = unlimited).
  std::size_t maxRequestBytes = 4u << 20;
};

/// Encoding-independent request model: what both the JSON-lines parser and
/// the binary frame decoder produce before validation. resolve() performs
/// the shared semantic checks (required fields, arg specs, style, ISA
/// lookup/parse, pass-toggle overrides) and yields the CompileRequest the
/// service consumes.
struct WireRequest {
  std::string id;
  std::string source;
  std::string entry;
  std::string args;             ///< CLI arg-spec syntax, "" = none
  /// Preset name; "" = the server default target (the ISA registry when the
  /// server runs with --isa-file, the dspx preset otherwise). resolve() maps
  /// "" to CompileRequest::useDefaultIsa so the service stamps the registry
  /// snapshot at submit time.
  std::string isa;
  std::string isaText;          ///< inline ISA description, overrides `isa`
  std::string style = "proposed";
  std::string tenant;           ///< fair-share admission class, "" = default
  /// Admin command ("" = a normal compile request). Handled by the serve
  /// loop, never by CompileService: "reload" re-parses --isa-file through
  /// the registry, "healthz" / "stats" return the health line / stats JSON
  /// in the response's adminInfo. A frame with a non-empty admin field
  /// carries no compile payload.
  std::string admin;
  std::optional<bool> constFold, idioms, vectorize, sinkDecls, checkElim, degrade;
  double deadlineMillis = 0.0;
  bool tune = false;
  int tuneBudget = 0;

  /// Validates and lowers into a CompileRequest; on failure sets `error`.
  /// Admin requests must be intercepted before resolve() — a non-empty
  /// `admin` field is an error here.
  bool resolve(CompileRequest& out, std::string& error) const;
};

/// Parses one JSON-lines request into a CompileRequest. Recognized fields:
///   source (required), entry (required), id, args ("1x32,c1x8"),
///   isa (preset name), isa_text (inline ISA description, overrides isa),
///   style ("proposed"|"coder"), tenant (fair-share admission class),
///   constFold/idioms/vectorize/sinkDecls/checkElim/degrade (bools),
///   deadline_ms (number, per-request deadline), tune (bool: autotune the
///   pass parameters and cache the winner), tune_budget (positive integer:
///   candidate cap for the tune search).
/// Unknown fields are an error, so typos cannot silently compile with
/// default options. On failure sets `error` and, when `kind` is non-null,
/// classifies it (ResourceExhausted for an oversized line, ParseError for
/// everything else).
bool parseCompileRequest(std::string_view line, CompileRequest& out, std::string& error,
                         ErrorKind* kind = nullptr, const ProtocolLimits& limits = {});

/// Structural half of parseCompileRequest: JSON → WireRequest with no
/// semantic resolution, so the serve loop can intercept admin requests
/// ("admin" field) before resolve(). Same field set plus "admin" (string).
bool parseWireRequest(std::string_view line, WireRequest& out, std::string& error,
                      ErrorKind* kind = nullptr, const ProtocolLimits& limits = {});

/// One response line (no trailing newline): id, ok, cached, deduped, millis,
/// and on success isa/cBytes/loopsVectorized/idiomRewrites (plus
/// "storeHit": true when served from the artifact store, plus degraded when
/// the compile used the degradation ladder, plus tuned/tunedSignature/
/// tuneCandidates/tunedCycles/tuneDefaultCycles for autotuned results), else
/// error + errorKind.
std::string responseJson(const CompileResponse& response);

/// Same response line rendered from a decoded BinaryResponse — the shard
/// supervisor answers JSON-lines clients from its workers' binary frames
/// without rehydrating a CompileResponse (it has no CachedResult).
std::string responseJson(const struct BinaryResponse& response);

// --- binary framing --------------------------------------------------------
//
// Frame: 'M' '2' 'C' 'B' | u16 version | u16 type | u32 payloadLen | payload
// (all integers little-endian). docs/service.md has the payload layouts.

inline constexpr char kBinaryMagic[4] = {'M', '2', 'C', 'B'};
/// v2 (PR 10): request payload gained a trailing `str admin`, response
/// payload a trailing `str adminInfo`. Decoding is exact-consumption, so the
/// additions are a wire break — the version bump makes v1 frames fail fast
/// with "unsupported frame version" instead of a confusing payload error.
inline constexpr std::uint16_t kBinaryVersion = 2;
/// magic + version + type + payloadLen.
inline constexpr std::size_t kFrameHeaderBytes = 12;

enum class FrameType : std::uint16_t {
  Request = 1,
  Response = 2,
};

/// Wraps `payload` in a frame header.
std::string encodeFrame(FrameType type, std::string_view payload);

/// Reads one frame from `in`. Returns 1 on a frame, 0 on clean EOF (stream
/// exhausted exactly at a frame boundary), -1 on error (bad magic/version,
/// truncated frame, or payload over `limits.maxRequestBytes` — the stream
/// is not resynchronizable after -1).
int readFrame(std::istream& in, FrameType& type, std::string& payload, std::string& error,
              const ProtocolLimits& limits = {});

/// Request frame payload for `req` (client side / tests).
std::string encodeBinaryRequest(const WireRequest& req);

/// Parses a Request frame payload. Structural decode only — pair with
/// WireRequest::resolve() for semantic validation. Must never crash on
/// arbitrary bytes (fuzz_smoke feeds it garbage).
bool decodeBinaryRequest(std::string_view payload, WireRequest& out, std::string& error);

/// Decoded Response frame, mirroring the JSON response fields (client side /
/// tests; the server encodes straight from CompileResponse).
struct BinaryResponse {
  std::string id;
  bool ok = false;
  bool cached = false;
  bool deduped = false;
  bool storeHit = false;
  ErrorKind errorKind = ErrorKind::None;
  double millis = 0.0;
  std::string error;
  std::string isa;
  std::uint64_t cBytes = 0;
  std::int32_t loopsVectorized = 0;
  std::int32_t idiomRewrites = 0;
  std::vector<std::string> degraded;
  bool tuned = false;
  std::string tunedSignature;
  std::int32_t tuneCandidates = 0;
  double tunedCycles = 0.0;
  double tuneDefaultCycles = 0.0;
  std::string adminInfo;  ///< admin-request result text ("" for compiles)
};

/// Response frame payload for `response`.
std::string encodeBinaryResponse(const CompileResponse& response);

/// Response frame payload from an already-decoded (or synthesized)
/// BinaryResponse — the supervisor uses this for the failure responses it
/// fabricates itself (no CachedResult exists to encode from).
std::string encodeBinaryResponse(const BinaryResponse& response);

/// Parses a Response frame payload; never crashes on arbitrary bytes.
bool decodeBinaryResponse(std::string_view payload, BinaryResponse& out, std::string& error);

// --- client-side resilience ------------------------------------------------

/// Capped exponential backoff with deterministic jitter, shared by the shard
/// supervisor's restart loop and client retry paths. Deterministic on
/// purpose: the chaos harness must replay the exact same schedule from a
/// seed, so the "jitter" is a hash of (seed, attempt), not a clock or RNG.
struct RetryPolicy {
  int maxAttempts = 5;        ///< total tries (first attempt included)
  double baseMillis = 10.0;   ///< delay before attempt 1's retry
  double maxMillis = 2000.0;  ///< backoff ceiling
  double multiplier = 2.0;

  /// Delay before retry number `attempt` (0-based: the wait after the
  /// (attempt+1)-th failure). Full jitter over the exponential cap:
  /// uniform-ish in [cap/2, cap], derived from splitmix64(seed ^ attempt).
  double delayMillis(int attempt, std::uint64_t seed) const;
};

}  // namespace mat2c::service
