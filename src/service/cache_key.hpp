// Content-addressed fingerprint of one compilation request.
//
// A compile is a pure function of (MATLAB source, entry name, argument
// specializations, ISA description, pass options) — the determinism test in
// tests/driver_test.cpp guards that property. CacheKey serializes exactly
// those inputs into a canonical byte string and hashes it, so two requests
// collide iff they must produce byte-identical output. The canonical text is
// kept alongside the hash: the cache compares it on lookup (hash collisions
// can never serve a wrong unit) and dumps use it for debugging.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driver/compiler.hpp"

namespace mat2c::service {

struct CacheKey {
  std::string canonical;  ///< full canonical request serialization
  std::uint64_t hash = 0; ///< fnv1a64(canonical); also picks the cache shard

  static CacheKey make(const std::string& source, const std::string& entry,
                       const std::vector<sema::ArgSpec>& args,
                       const CompileOptions& options);

  /// Key for a TUNE request (src/tune): identical to make() except the pass
  /// options are deliberately absent — the whole point of a tune request is
  /// that the service picks the pass configuration, so two tune requests for
  /// the same (source, entry, args, ISA) must collide regardless of what
  /// baseline options they carry. A distinct header string keeps the tuned
  /// namespace disjoint from compile keys: a tuned artifact can never be
  /// served to a plain compile request or vice versa.
  static CacheKey makeTuned(const std::string& source, const std::string& entry,
                            const std::vector<sema::ArgSpec>& args,
                            const isa::IsaDescription& isa);

  /// Short printable form ("k3f9c2…", 16 hex digits) for logs and stats.
  std::string fingerprint() const;

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.hash == b.hash && a.canonical == b.canonical;
  }
};

/// Canonical one-token spelling of an ArgSpec ("r4x3" / "c1x64"), shared by
/// the key serialization and the CLI/service arg-spec parser.
std::string argSpecToken(const sema::ArgSpec& spec);

}  // namespace mat2c::service
