#include "service/protocol.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/binary_io.hpp"
#include "support/string_utils.hpp"

namespace mat2c::service {

namespace {

/// Recursive-descent JSON reader over a string_view. Depth-limited so a
/// hostile request line cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string& error) {
    JsonValue v;
    if (!parseValue(v, 0)) {
      error = error_ + " (at byte " + std::to_string(pos_) + ")";
      return std::nullopt;
    }
    skipWs();
    if (pos_ != text_.size()) {
      error = "trailing characters after JSON document (at byte " + std::to_string(pos_) + ")";
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool consume(char c, const char* what) {
    skipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) return fail(std::string("expected ") + what);
    ++pos_;
    return true;
  }

  bool parseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skipWs();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return parseObject(out, depth);
    if (c == '[') return parseArray(out, depth);
    if (c == '"') {
      out.kind = JsonValue::Kind::String;
      return parseString(out.text);
    }
    if (c == 't' || c == 'f') return parseKeyword(out);
    if (c == 'n') return parseKeyword(out);
    return parseNumber(out);
  }

  bool parseObject(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      std::string key;
      if (!parseString(key)) return false;
      if (!consume(':', "':'")) return false;
      JsonValue value;
      if (!parseValue(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}', "'}'");
    }
  }

  bool parseArray(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parseValue(value, depth + 1)) return false;
      out.elements.push_back(std::move(value));
      skipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']', "']'");
    }
  }

  bool parseString(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("unescaped control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — MATLAB sources are ASCII).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseKeyword(JsonValue& out) {
    auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (match("true")) {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.kind = JsonValue::Kind::Null;
      return true;
    }
    return fail("unknown keyword");
  }

  bool parseNumber(JsonValue& out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number");
    out.kind = JsonValue::Kind::Number;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// Strict positive-integer parse (rejects signs, trailing junk, overflow).
bool parsePositiveInt(std::string_view s, std::int64_t& out) {
  if (s.empty()) return false;
  std::int64_t v = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9') return false;
    int digit = ch - '0';
    if (v > (INT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  if (v <= 0) return false;
  out = v;
  return true;
}

bool parseOneArgSpec(std::string_view text, sema::ArgSpec& out) {
  std::string_view t = text;
  bool complex = false;
  if (!t.empty() && (t[0] == 'c' || t[0] == 'C')) {
    complex = true;
    t = t.substr(1);
  }
  auto xPos = t.find('x');
  if (xPos == std::string_view::npos) return false;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  if (!parsePositiveInt(t.substr(0, xPos), rows) || !parsePositiveInt(t.substr(xPos + 1), cols)) {
    return false;
  }
  out = sema::ArgSpec::matrix(rows, cols, complex);
  return true;
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<JsonValue> parseJson(std::string_view text, std::string& error) {
  return JsonParser(text).parse(error);
}

std::string jsonQuote(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

bool parseArgSpecList(const std::string& text, std::vector<sema::ArgSpec>& out,
                      std::string& badSpec) {
  out.clear();
  if (trim(text).empty()) return true;
  for (const auto& part : split(text, ',')) {
    std::string token{trim(part)};
    sema::ArgSpec spec;
    if (!parseOneArgSpec(token, spec)) {
      badSpec = token;
      return false;
    }
    out.push_back(spec);
  }
  return true;
}

bool WireRequest::resolve(CompileRequest& out, std::string& error) const {
  out = CompileRequest{};
  out.id = id;
  out.source = source;
  out.entry = entry;
  out.tenant = tenant;
  out.tune = tune;
  out.tuneBudget = tuneBudget;
  out.deadlineMillis = deadlineMillis;

  if (!admin.empty()) {
    error = "admin request reached the compile path (serve-loop bug)";
    return false;
  }
  if (out.source.empty()) {
    error = "missing required field 'source'";
    return false;
  }
  if (out.entry.empty()) {
    error = "missing required field 'entry'";
    return false;
  }
  std::string badSpec;
  if (!parseArgSpecList(args, out.args, badSpec)) {
    error = "bad arg spec '" + badSpec + "'";
    return false;
  }

  if (style == "proposed") {
    out.options = CompileOptions::proposed();
  } else if (style == "coder") {
    out.options = CompileOptions::coderLike();
  } else {
    error = "unknown style '" + style + "' (want 'proposed' or 'coder')";
    return false;
  }
  if (!isaText.empty()) {
    DiagnosticEngine diags;
    out.options.isa = isa::IsaDescription::parse(isaText, diags);
    if (diags.hasErrors()) {
      error = "bad isa_text: " + diags.renderAll();
      return false;
    }
  } else if (!isa.empty()) {
    try {
      out.options.isa = isa::IsaDescription::preset(isa);
    } catch (const std::exception& e) {
      error = e.what();
      return false;
    }
  } else {
    // No explicit target: take the server default. options.isa keeps the
    // style's dspx preset (standalone use); a service configured with an
    // IsaRegistry overwrites it at submit time — see CompileService::submit.
    out.useDefaultIsa = true;
  }
  if (constFold) out.options.constFold = *constFold;
  if (idioms) out.options.idioms = *idioms;
  if (vectorize) out.options.vectorize = *vectorize;
  if (sinkDecls) out.options.sinkDecls = *sinkDecls;
  if (checkElim) out.options.checkElim = *checkElim;
  if (degrade) out.options.degrade = *degrade;
  return true;
}

bool parseWireRequest(std::string_view line, WireRequest& out, std::string& error,
                      ErrorKind* kind, const ProtocolLimits& limits) {
  // Failures below are the client's malformed input unless re-classified.
  if (kind) *kind = ErrorKind::ParseError;

  if (limits.maxRequestBytes > 0 && line.size() > limits.maxRequestBytes) {
    error = "request line is " + std::to_string(line.size()) + " bytes (limit " +
            std::to_string(limits.maxRequestBytes) + ")";
    if (kind) *kind = ErrorKind::ResourceExhausted;
    return false;
  }

  auto doc = parseJson(line, error);
  if (!doc) return false;
  if (doc->kind != JsonValue::Kind::Object) {
    error = "request must be a JSON object";
    return false;
  }

  WireRequest req;
  for (const auto& [key, value] : doc->members) {
    auto wantString = [&](std::string& dst) {
      if (value.kind != JsonValue::Kind::String) {
        error = "field '" + key + "' must be a string";
        return false;
      }
      dst = value.text;
      return true;
    };
    auto wantBool = [&](std::optional<bool>& dst) {
      if (value.kind != JsonValue::Kind::Bool) {
        error = "field '" + key + "' must be a boolean";
        return false;
      }
      dst = value.boolean;
      return true;
    };
    if (key == "id") {
      if (!wantString(req.id)) return false;
    } else if (key == "source") {
      if (!wantString(req.source)) return false;
    } else if (key == "entry") {
      if (!wantString(req.entry)) return false;
    } else if (key == "args") {
      if (!wantString(req.args)) return false;
    } else if (key == "isa") {
      if (!wantString(req.isa)) return false;
    } else if (key == "isa_text") {
      if (!wantString(req.isaText)) return false;
    } else if (key == "style") {
      if (!wantString(req.style)) return false;
    } else if (key == "tenant") {
      if (!wantString(req.tenant)) return false;
    } else if (key == "admin") {
      if (!wantString(req.admin)) return false;
    } else if (key == "constFold") {
      if (!wantBool(req.constFold)) return false;
    } else if (key == "idioms") {
      if (!wantBool(req.idioms)) return false;
    } else if (key == "vectorize") {
      if (!wantBool(req.vectorize)) return false;
    } else if (key == "sinkDecls") {
      if (!wantBool(req.sinkDecls)) return false;
    } else if (key == "checkElim") {
      if (!wantBool(req.checkElim)) return false;
    } else if (key == "degrade") {
      if (!wantBool(req.degrade)) return false;
    } else if (key == "deadline_ms") {
      if (value.kind != JsonValue::Kind::Number || value.number < 0) {
        error = "field 'deadline_ms' must be a non-negative number";
        return false;
      }
      req.deadlineMillis = value.number;
    } else if (key == "tune") {
      if (value.kind != JsonValue::Kind::Bool) {
        error = "field 'tune' must be a boolean";
        return false;
      }
      req.tune = value.boolean;
    } else if (key == "tune_budget") {
      if (value.kind != JsonValue::Kind::Number || value.number < 1 ||
          value.number != static_cast<double>(static_cast<int>(value.number))) {
        error = "field 'tune_budget' must be a positive integer";
        return false;
      }
      req.tuneBudget = static_cast<int>(value.number);
    } else {
      error = "unknown request field '" + key + "'";
      return false;
    }
  }

  out = std::move(req);
  if (kind) *kind = ErrorKind::None;
  return true;
}

bool parseCompileRequest(std::string_view line, CompileRequest& out, std::string& error,
                         ErrorKind* kind, const ProtocolLimits& limits) {
  WireRequest req;
  if (!parseWireRequest(line, req, error, kind, limits)) return false;
  if (kind) *kind = ErrorKind::ParseError;
  if (!req.resolve(out, error)) return false;
  if (kind) *kind = ErrorKind::None;
  return true;
}

std::string responseJson(const CompileResponse& response) {
  std::string out = "{\"id\": " + jsonQuote(response.id);
  out += ", \"ok\": ";
  out += response.ok ? "true" : "false";
  out += ", \"cached\": ";
  out += response.cacheHit ? "true" : "false";
  out += ", \"deduped\": ";
  out += response.deduped ? "true" : "false";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", response.millis);
  out += ", \"millis\": ";
  out += buf;
  if (response.storeHit) out += ", \"storeHit\": true";
  if (!response.adminInfo.empty()) out += ", \"adminInfo\": " + jsonQuote(response.adminInfo);
  if (response.ok && response.result) {
    // Denormalized metadata, not the CompiledUnit: store-rehydrated entries
    // carry no LIR, and the response must not depend on having one.
    const CachedResult& res = *response.result;
    out += ", \"isa\": " + jsonQuote(res.isaName);
    out += ", \"cBytes\": " + std::to_string(res.cCode.size());
    out += ", \"loopsVectorized\": " + std::to_string(res.loopsVectorized);
    out += ", \"idiomRewrites\": " + std::to_string(res.idiomRewrites);
    if (response.result->tuned()) {
      char num[64];
      out += ", \"tuned\": true";
      out += ", \"tunedSignature\": " + jsonQuote(response.result->tunedSignature);
      out += ", \"tuneCandidates\": " + std::to_string(response.result->tuneCandidates);
      std::snprintf(num, sizeof num, "%.1f", response.result->tunedCycles);
      out += ", \"tunedCycles\": ";
      out += num;
      std::snprintf(num, sizeof num, "%.1f", response.result->tuneDefaultCycles);
      out += ", \"tuneDefaultCycles\": ";
      out += num;
    }
    if (!res.degraded.empty()) {
      out += ", \"degraded\": [";
      for (std::size_t i = 0; i < res.degraded.size(); ++i) {
        if (i > 0) out += ", ";
        out += jsonQuote(res.degraded[i]);
      }
      out += "]";
    }
  } else {
    out += ", \"error\": " + jsonQuote(response.error);
    out += ", \"errorKind\": " + jsonQuote(toString(response.errorKind));
  }
  out += "}";
  return out;
}

std::string responseJson(const BinaryResponse& response) {
  std::string out = "{\"id\": " + jsonQuote(response.id);
  out += ", \"ok\": ";
  out += response.ok ? "true" : "false";
  out += ", \"cached\": ";
  out += response.cached ? "true" : "false";
  out += ", \"deduped\": ";
  out += response.deduped ? "true" : "false";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", response.millis);
  out += ", \"millis\": ";
  out += buf;
  if (response.storeHit) out += ", \"storeHit\": true";
  if (!response.adminInfo.empty()) out += ", \"adminInfo\": " + jsonQuote(response.adminInfo);
  if (response.ok) {
    out += ", \"isa\": " + jsonQuote(response.isa);
    out += ", \"cBytes\": " + std::to_string(response.cBytes);
    out += ", \"loopsVectorized\": " + std::to_string(response.loopsVectorized);
    out += ", \"idiomRewrites\": " + std::to_string(response.idiomRewrites);
    if (response.tuned) {
      char num[64];
      out += ", \"tuned\": true";
      out += ", \"tunedSignature\": " + jsonQuote(response.tunedSignature);
      out += ", \"tuneCandidates\": " + std::to_string(response.tuneCandidates);
      std::snprintf(num, sizeof num, "%.1f", response.tunedCycles);
      out += ", \"tunedCycles\": ";
      out += num;
      std::snprintf(num, sizeof num, "%.1f", response.tuneDefaultCycles);
      out += ", \"tuneDefaultCycles\": ";
      out += num;
    }
    if (!response.degraded.empty()) {
      out += ", \"degraded\": [";
      for (std::size_t i = 0; i < response.degraded.size(); ++i) {
        if (i > 0) out += ", ";
        out += jsonQuote(response.degraded[i]);
      }
      out += "]";
    }
  } else {
    out += ", \"error\": " + jsonQuote(response.error);
    out += ", \"errorKind\": " + jsonQuote(toString(response.errorKind));
  }
  out += "}";
  return out;
}

// --- binary framing --------------------------------------------------------

namespace {

// WireRequest optional-bool bit positions (presentMask / valueMask).
constexpr std::uint8_t kBitConstFold = 1 << 0;
constexpr std::uint8_t kBitIdioms = 1 << 1;
constexpr std::uint8_t kBitVectorize = 1 << 2;
constexpr std::uint8_t kBitSinkDecls = 1 << 3;
constexpr std::uint8_t kBitCheckElim = 1 << 4;
constexpr std::uint8_t kBitDegrade = 1 << 5;

// Response flag bits.
constexpr std::uint8_t kRespOk = 1 << 0;
constexpr std::uint8_t kRespCached = 1 << 1;
constexpr std::uint8_t kRespDeduped = 1 << 2;
constexpr std::uint8_t kRespStoreHit = 1 << 3;
constexpr std::uint8_t kRespTuned = 1 << 4;

void packOptional(const std::optional<bool>& v, std::uint8_t bit, std::uint8_t& present,
                  std::uint8_t& value) {
  if (!v) return;
  present |= bit;
  if (*v) value |= bit;
}

std::optional<bool> unpackOptional(std::uint8_t bit, std::uint8_t present, std::uint8_t value) {
  if (!(present & bit)) return std::nullopt;
  return (value & bit) != 0;
}

}  // namespace

std::string encodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(12 + payload.size());
  out.append(kBinaryMagic, sizeof kBinaryMagic);
  bin::appendU16(out, kBinaryVersion);
  bin::appendU16(out, static_cast<std::uint16_t>(type));
  bin::appendU32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

int readFrame(std::istream& in, FrameType& type, std::string& payload, std::string& error,
              const ProtocolLimits& limits) {
  char header[12];
  in.read(header, sizeof header);
  std::streamsize got = in.gcount();
  if (got == 0 && in.eof()) return 0;  // clean end between frames
  if (got != static_cast<std::streamsize>(sizeof header)) {
    error = "truncated frame header";
    return -1;
  }
  if (std::memcmp(header, kBinaryMagic, sizeof kBinaryMagic) != 0) {
    error = "bad frame magic";
    return -1;
  }
  bin::Reader r(std::string_view(header + 4, sizeof header - 4));
  std::uint16_t version = 0;
  std::uint16_t rawType = 0;
  std::uint32_t payloadLen = 0;
  r.u16(version);
  r.u16(rawType);
  r.u32(payloadLen);
  if (version != kBinaryVersion) {
    error = "unsupported frame version " + std::to_string(version);
    return -1;
  }
  if (rawType != static_cast<std::uint16_t>(FrameType::Request) &&
      rawType != static_cast<std::uint16_t>(FrameType::Response)) {
    error = "unknown frame type " + std::to_string(rawType);
    return -1;
  }
  if (limits.maxRequestBytes > 0 && payloadLen > limits.maxRequestBytes) {
    error = "frame payload is " + std::to_string(payloadLen) + " bytes (limit " +
            std::to_string(limits.maxRequestBytes) + ")";
    return -1;
  }
  payload.resize(payloadLen);
  if (payloadLen > 0) {
    in.read(payload.data(), static_cast<std::streamsize>(payloadLen));
    if (in.gcount() != static_cast<std::streamsize>(payloadLen)) {
      error = "truncated frame payload";
      return -1;
    }
  }
  type = static_cast<FrameType>(rawType);
  return 1;
}

std::string encodeBinaryRequest(const WireRequest& req) {
  std::string out;
  bin::appendStr(out, req.id);
  bin::appendStr(out, req.source);
  bin::appendStr(out, req.entry);
  bin::appendStr(out, req.args);
  bin::appendStr(out, req.isa);
  bin::appendStr(out, req.isaText);
  bin::appendStr(out, req.style);
  bin::appendStr(out, req.tenant);
  std::uint8_t present = 0;
  std::uint8_t value = 0;
  packOptional(req.constFold, kBitConstFold, present, value);
  packOptional(req.idioms, kBitIdioms, present, value);
  packOptional(req.vectorize, kBitVectorize, present, value);
  packOptional(req.sinkDecls, kBitSinkDecls, present, value);
  packOptional(req.checkElim, kBitCheckElim, present, value);
  packOptional(req.degrade, kBitDegrade, present, value);
  bin::appendU8(out, present);
  bin::appendU8(out, value);
  bin::appendU8(out, req.tune ? 1 : 0);
  bin::appendI32(out, req.tuneBudget);
  bin::appendF64(out, req.deadlineMillis);
  bin::appendStr(out, req.admin);  // v2
  return out;
}

bool decodeBinaryRequest(std::string_view payload, WireRequest& out, std::string& error) {
  out = WireRequest{};
  bin::Reader r(payload);
  std::uint8_t present = 0;
  std::uint8_t value = 0;
  std::uint8_t flags = 0;
  std::int32_t tuneBudget = 0;
  double deadline = 0.0;
  if (!r.str(out.id) || !r.str(out.source) || !r.str(out.entry) || !r.str(out.args) ||
      !r.str(out.isa) || !r.str(out.isaText) || !r.str(out.style) || !r.str(out.tenant) ||
      !r.u8(present) || !r.u8(value) || !r.u8(flags) || !r.i32(tuneBudget) ||
      !r.f64(deadline) || !r.str(out.admin) || !r.done()) {
    error = "malformed request payload";
    return false;
  }
  out.constFold = unpackOptional(kBitConstFold, present, value);
  out.idioms = unpackOptional(kBitIdioms, present, value);
  out.vectorize = unpackOptional(kBitVectorize, present, value);
  out.sinkDecls = unpackOptional(kBitSinkDecls, present, value);
  out.checkElim = unpackOptional(kBitCheckElim, present, value);
  out.degrade = unpackOptional(kBitDegrade, present, value);
  out.tune = (flags & 1) != 0;
  if (tuneBudget < 0) {
    error = "field 'tune_budget' must be a positive integer";
    return false;
  }
  out.tuneBudget = tuneBudget;
  if (!(deadline >= 0.0) || std::isnan(deadline)) {
    error = "field 'deadline_ms' must be a non-negative number";
    return false;
  }
  out.deadlineMillis = deadline;
  return true;
}

std::string encodeBinaryResponse(const CompileResponse& response) {
  std::string out;
  bin::appendStr(out, response.id);
  std::uint8_t flags = 0;
  if (response.ok) flags |= kRespOk;
  if (response.cacheHit) flags |= kRespCached;
  if (response.deduped) flags |= kRespDeduped;
  if (response.storeHit) flags |= kRespStoreHit;
  bool tuned = response.ok && response.result && response.result->tuned();
  if (tuned) flags |= kRespTuned;
  bin::appendU8(out, flags);
  bin::appendU8(out, static_cast<std::uint8_t>(response.errorKind));
  bin::appendF64(out, response.millis);
  bin::appendStr(out, response.error);
  if (response.ok && response.result) {
    const CachedResult& res = *response.result;
    bin::appendStr(out, res.isaName);
    bin::appendU64(out, res.cCode.size());
    bin::appendI32(out, res.loopsVectorized);
    bin::appendI32(out, res.idiomRewrites);
    bin::appendU32(out, static_cast<std::uint32_t>(res.degraded.size()));
    for (const std::string& d : res.degraded) bin::appendStr(out, d);
    bin::appendStr(out, res.tunedSignature);
    bin::appendI32(out, res.tuneCandidates);
    bin::appendF64(out, res.tunedCycles);
    bin::appendF64(out, res.tuneDefaultCycles);
  } else {
    bin::appendStr(out, "");   // isa
    bin::appendU64(out, 0);    // cBytes
    bin::appendI32(out, 0);    // loopsVectorized
    bin::appendI32(out, 0);    // idiomRewrites
    bin::appendU32(out, 0);    // degraded count
    bin::appendStr(out, "");   // tunedSignature
    bin::appendI32(out, 0);    // tuneCandidates
    bin::appendF64(out, 0.0);  // tunedCycles
    bin::appendF64(out, 0.0);  // tuneDefaultCycles
  }
  bin::appendStr(out, response.adminInfo);  // v2
  return out;
}

std::string encodeBinaryResponse(const BinaryResponse& response) {
  std::string out;
  bin::appendStr(out, response.id);
  std::uint8_t flags = 0;
  if (response.ok) flags |= kRespOk;
  if (response.cached) flags |= kRespCached;
  if (response.deduped) flags |= kRespDeduped;
  if (response.storeHit) flags |= kRespStoreHit;
  if (response.tuned) flags |= kRespTuned;
  bin::appendU8(out, flags);
  bin::appendU8(out, static_cast<std::uint8_t>(response.errorKind));
  bin::appendF64(out, response.millis);
  bin::appendStr(out, response.error);
  bin::appendStr(out, response.isa);
  bin::appendU64(out, response.cBytes);
  bin::appendI32(out, response.loopsVectorized);
  bin::appendI32(out, response.idiomRewrites);
  bin::appendU32(out, static_cast<std::uint32_t>(response.degraded.size()));
  for (const std::string& d : response.degraded) bin::appendStr(out, d);
  bin::appendStr(out, response.tunedSignature);
  bin::appendI32(out, response.tuneCandidates);
  bin::appendF64(out, response.tunedCycles);
  bin::appendF64(out, response.tuneDefaultCycles);
  bin::appendStr(out, response.adminInfo);
  return out;
}

bool decodeBinaryResponse(std::string_view payload, BinaryResponse& out, std::string& error) {
  out = BinaryResponse{};
  bin::Reader r(payload);
  std::uint8_t flags = 0;
  std::uint8_t kindRaw = 0;
  std::uint32_t degradedCount = 0;
  if (!r.str(out.id) || !r.u8(flags) || !r.u8(kindRaw) || !r.f64(out.millis) ||
      !r.str(out.error) || !r.str(out.isa) || !r.u64(out.cBytes) ||
      !r.i32(out.loopsVectorized) || !r.i32(out.idiomRewrites) || !r.u32(degradedCount)) {
    error = "malformed response payload";
    return false;
  }
  if (kindRaw > static_cast<std::uint8_t>(ErrorKind::Panic)) {
    error = "bad errorKind value";
    return false;
  }
  if (degradedCount > payload.size()) {
    error = "malformed response payload";
    return false;
  }
  out.degraded.reserve(degradedCount);
  for (std::uint32_t i = 0; i < degradedCount; ++i) {
    std::string d;
    if (!r.str(d)) {
      error = "malformed response payload";
      return false;
    }
    out.degraded.push_back(std::move(d));
  }
  if (!r.str(out.tunedSignature) || !r.i32(out.tuneCandidates) || !r.f64(out.tunedCycles) ||
      !r.f64(out.tuneDefaultCycles) || !r.str(out.adminInfo) || !r.done()) {
    error = "malformed response payload";
    return false;
  }
  out.ok = (flags & kRespOk) != 0;
  out.cached = (flags & kRespCached) != 0;
  out.deduped = (flags & kRespDeduped) != 0;
  out.storeHit = (flags & kRespStoreHit) != 0;
  out.tuned = (flags & kRespTuned) != 0;
  out.errorKind = static_cast<ErrorKind>(kindRaw);
  return true;
}

// --- client-side resilience ------------------------------------------------

namespace {

/// splitmix64: tiny, well-distributed, and deterministic across platforms —
/// exactly what a replayable jitter needs.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double RetryPolicy::delayMillis(int attempt, std::uint64_t seed) const {
  if (attempt < 0) attempt = 0;
  double cap = baseMillis;
  for (int i = 0; i < attempt && cap < maxMillis; ++i) cap *= multiplier;
  if (cap > maxMillis) cap = maxMillis;
  // Jitter in [cap/2, cap]: enough spread to break restart synchronization
  // across shards, never so little backoff that a retry storm forms.
  std::uint64_t h = splitmix64(seed ^ (static_cast<std::uint64_t>(attempt) + 1));
  double frac = static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
  return cap * (0.5 + 0.5 * frac);
}

}  // namespace mat2c::service
