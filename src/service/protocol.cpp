#include "service/protocol.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "support/string_utils.hpp"

namespace mat2c::service {

namespace {

/// Recursive-descent JSON reader over a string_view. Depth-limited so a
/// hostile request line cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string& error) {
    JsonValue v;
    if (!parseValue(v, 0)) {
      error = error_ + " (at byte " + std::to_string(pos_) + ")";
      return std::nullopt;
    }
    skipWs();
    if (pos_ != text_.size()) {
      error = "trailing characters after JSON document (at byte " + std::to_string(pos_) + ")";
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool consume(char c, const char* what) {
    skipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) return fail(std::string("expected ") + what);
    ++pos_;
    return true;
  }

  bool parseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skipWs();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return parseObject(out, depth);
    if (c == '[') return parseArray(out, depth);
    if (c == '"') {
      out.kind = JsonValue::Kind::String;
      return parseString(out.text);
    }
    if (c == 't' || c == 'f') return parseKeyword(out);
    if (c == 'n') return parseKeyword(out);
    return parseNumber(out);
  }

  bool parseObject(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      std::string key;
      if (!parseString(key)) return false;
      if (!consume(':', "':'")) return false;
      JsonValue value;
      if (!parseValue(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}', "'}'");
    }
  }

  bool parseArray(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parseValue(value, depth + 1)) return false;
      out.elements.push_back(std::move(value));
      skipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']', "']'");
    }
  }

  bool parseString(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("unescaped control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — MATLAB sources are ASCII).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseKeyword(JsonValue& out) {
    auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (match("true")) {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.kind = JsonValue::Kind::Null;
      return true;
    }
    return fail("unknown keyword");
  }

  bool parseNumber(JsonValue& out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number");
    out.kind = JsonValue::Kind::Number;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// Strict positive-integer parse (rejects signs, trailing junk, overflow).
bool parsePositiveInt(std::string_view s, std::int64_t& out) {
  if (s.empty()) return false;
  std::int64_t v = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9') return false;
    int digit = ch - '0';
    if (v > (INT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  if (v <= 0) return false;
  out = v;
  return true;
}

bool parseOneArgSpec(std::string_view text, sema::ArgSpec& out) {
  std::string_view t = text;
  bool complex = false;
  if (!t.empty() && (t[0] == 'c' || t[0] == 'C')) {
    complex = true;
    t = t.substr(1);
  }
  auto xPos = t.find('x');
  if (xPos == std::string_view::npos) return false;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  if (!parsePositiveInt(t.substr(0, xPos), rows) || !parsePositiveInt(t.substr(xPos + 1), cols)) {
    return false;
  }
  out = sema::ArgSpec::matrix(rows, cols, complex);
  return true;
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<JsonValue> parseJson(std::string_view text, std::string& error) {
  return JsonParser(text).parse(error);
}

std::string jsonQuote(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

bool parseArgSpecList(const std::string& text, std::vector<sema::ArgSpec>& out,
                      std::string& badSpec) {
  out.clear();
  if (trim(text).empty()) return true;
  for (const auto& part : split(text, ',')) {
    std::string token{trim(part)};
    sema::ArgSpec spec;
    if (!parseOneArgSpec(token, spec)) {
      badSpec = token;
      return false;
    }
    out.push_back(spec);
  }
  return true;
}

bool parseCompileRequest(std::string_view line, CompileRequest& out, std::string& error,
                         ErrorKind* kind, const ProtocolLimits& limits) {
  // Failures below are the client's malformed input unless re-classified.
  if (kind) *kind = ErrorKind::ParseError;

  if (limits.maxRequestBytes > 0 && line.size() > limits.maxRequestBytes) {
    error = "request line is " + std::to_string(line.size()) + " bytes (limit " +
            std::to_string(limits.maxRequestBytes) + ")";
    if (kind) *kind = ErrorKind::ResourceExhausted;
    return false;
  }

  auto doc = parseJson(line, error);
  if (!doc) return false;
  if (doc->kind != JsonValue::Kind::Object) {
    error = "request must be a JSON object";
    return false;
  }

  out = CompileRequest{};
  std::string argsText;
  std::string isaPreset = "dspx";
  std::string isaText;
  std::string style = "proposed";
  std::optional<bool> constFold, idioms, vectorize, sinkDecls, checkElim, degrade;

  for (const auto& [key, value] : doc->members) {
    auto wantString = [&](std::string& dst) {
      if (value.kind != JsonValue::Kind::String) {
        error = "field '" + key + "' must be a string";
        return false;
      }
      dst = value.text;
      return true;
    };
    auto wantBool = [&](std::optional<bool>& dst) {
      if (value.kind != JsonValue::Kind::Bool) {
        error = "field '" + key + "' must be a boolean";
        return false;
      }
      dst = value.boolean;
      return true;
    };
    if (key == "id") {
      if (!wantString(out.id)) return false;
    } else if (key == "source") {
      if (!wantString(out.source)) return false;
    } else if (key == "entry") {
      if (!wantString(out.entry)) return false;
    } else if (key == "args") {
      if (!wantString(argsText)) return false;
    } else if (key == "isa") {
      if (!wantString(isaPreset)) return false;
    } else if (key == "isa_text") {
      if (!wantString(isaText)) return false;
    } else if (key == "style") {
      if (!wantString(style)) return false;
    } else if (key == "constFold") {
      if (!wantBool(constFold)) return false;
    } else if (key == "idioms") {
      if (!wantBool(idioms)) return false;
    } else if (key == "vectorize") {
      if (!wantBool(vectorize)) return false;
    } else if (key == "sinkDecls") {
      if (!wantBool(sinkDecls)) return false;
    } else if (key == "checkElim") {
      if (!wantBool(checkElim)) return false;
    } else if (key == "degrade") {
      if (!wantBool(degrade)) return false;
    } else if (key == "deadline_ms") {
      if (value.kind != JsonValue::Kind::Number || value.number < 0) {
        error = "field 'deadline_ms' must be a non-negative number";
        return false;
      }
      out.deadlineMillis = value.number;
    } else if (key == "tune") {
      if (value.kind != JsonValue::Kind::Bool) {
        error = "field 'tune' must be a boolean";
        return false;
      }
      out.tune = value.boolean;
    } else if (key == "tune_budget") {
      if (value.kind != JsonValue::Kind::Number || value.number < 1 ||
          value.number != static_cast<double>(static_cast<int>(value.number))) {
        error = "field 'tune_budget' must be a positive integer";
        return false;
      }
      out.tuneBudget = static_cast<int>(value.number);
    } else {
      error = "unknown request field '" + key + "'";
      return false;
    }
  }

  if (out.source.empty()) {
    error = "missing required field 'source'";
    return false;
  }
  if (out.entry.empty()) {
    error = "missing required field 'entry'";
    return false;
  }
  std::string badSpec;
  if (!parseArgSpecList(argsText, out.args, badSpec)) {
    error = "bad arg spec '" + badSpec + "'";
    return false;
  }

  if (style == "proposed") {
    out.options = CompileOptions::proposed();
  } else if (style == "coder") {
    out.options = CompileOptions::coderLike();
  } else {
    error = "unknown style '" + style + "' (want 'proposed' or 'coder')";
    return false;
  }
  if (!isaText.empty()) {
    DiagnosticEngine diags;
    out.options.isa = isa::IsaDescription::parse(isaText, diags);
    if (diags.hasErrors()) {
      error = "bad isa_text: " + diags.renderAll();
      return false;
    }
  } else {
    try {
      out.options.isa = isa::IsaDescription::preset(isaPreset);
    } catch (const std::exception& e) {
      error = e.what();
      return false;
    }
  }
  if (constFold) out.options.constFold = *constFold;
  if (idioms) out.options.idioms = *idioms;
  if (vectorize) out.options.vectorize = *vectorize;
  if (sinkDecls) out.options.sinkDecls = *sinkDecls;
  if (checkElim) out.options.checkElim = *checkElim;
  if (degrade) out.options.degrade = *degrade;
  if (kind) *kind = ErrorKind::None;
  return true;
}

std::string responseJson(const CompileResponse& response) {
  std::string out = "{\"id\": " + jsonQuote(response.id);
  out += ", \"ok\": ";
  out += response.ok ? "true" : "false";
  out += ", \"cached\": ";
  out += response.cacheHit ? "true" : "false";
  out += ", \"deduped\": ";
  out += response.deduped ? "true" : "false";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", response.millis);
  out += ", \"millis\": ";
  out += buf;
  if (response.ok && response.result) {
    const opt::PipelineReport& report = response.result->unit.optimizationReport();
    out += ", \"isa\": " + jsonQuote(response.result->unit.isa().name());
    out += ", \"cBytes\": " + std::to_string(response.result->cCode.size());
    out += ", \"loopsVectorized\": " + std::to_string(report.vec.loopsVectorized);
    out += ", \"idiomRewrites\": " + std::to_string(report.idiomRewrites);
    if (response.result->tuned()) {
      char num[64];
      out += ", \"tuned\": true";
      out += ", \"tunedSignature\": " + jsonQuote(response.result->tunedSignature);
      out += ", \"tuneCandidates\": " + std::to_string(response.result->tuneCandidates);
      std::snprintf(num, sizeof num, "%.1f", response.result->tunedCycles);
      out += ", \"tunedCycles\": ";
      out += num;
      std::snprintf(num, sizeof num, "%.1f", response.result->tuneDefaultCycles);
      out += ", \"tuneDefaultCycles\": ";
      out += num;
    }
    if (!report.degraded.empty()) {
      out += ", \"degraded\": [";
      for (std::size_t i = 0; i < report.degraded.size(); ++i) {
        if (i > 0) out += ", ";
        out += jsonQuote(report.degraded[i]);
      }
      out += "]";
    }
  } else {
    out += ", \"error\": " + jsonQuote(response.error);
    out += ", \"errorKind\": " + jsonQuote(toString(response.errorKind));
  }
  out += "}";
  return out;
}

}  // namespace mat2c::service
