#include "service/cache_key.hpp"

#include "support/string_utils.hpp"

namespace mat2c::service {

std::string argSpecToken(const sema::ArgSpec& spec) {
  const sema::Shape& s = spec.type.shape;
  std::string t(spec.type.elem == sema::Elem::Complex ? "c" : "r");
  t += s.rows.isKnown() ? std::to_string(s.rows.extent()) : "?";
  t += 'x';
  t += s.cols.isKnown() ? std::to_string(s.cols.extent()) : "?";
  return t;
}

CacheKey CacheKey::make(const std::string& source, const std::string& entry,
                        const std::vector<sema::ArgSpec>& args,
                        const CompileOptions& options) {
  // Length-prefix the free-form fields so no crafted source/entry pair can
  // alias another request's serialization.
  CacheKey key;
  std::string& c = key.canonical;
  c.reserve(source.size() + 256);
  c += "mat2c-cache-key-v1\n";
  c += "entry " + std::to_string(entry.size()) + ":" + entry + "\n";
  c += "args";
  for (const auto& a : args) c += " " + argSpecToken(a);
  c += "\n";
  c += "options " + options.passSignature() + "\n";
  c += "isa " + hex64(options.isa.fingerprint()) + "\n";
  c += options.isa.serialize();
  c += "source " + std::to_string(source.size()) + ":";
  c += source;
  key.hash = fnv1a64(c);
  return key;
}

CacheKey CacheKey::makeTuned(const std::string& source, const std::string& entry,
                             const std::vector<sema::ArgSpec>& args,
                             const isa::IsaDescription& isa) {
  CacheKey key;
  std::string& c = key.canonical;
  c.reserve(source.size() + 256);
  c += "mat2c-tune-key-v1\n";
  c += "entry " + std::to_string(entry.size()) + ":" + entry + "\n";
  c += "args";
  for (const auto& a : args) c += " " + argSpecToken(a);
  c += "\n";
  // No pass options: the tuned configuration is the cache's OUTPUT, not part
  // of its key. The ISA stays in — a tuned winner is only valid for the
  // cycle model it was scored on.
  c += "isa " + hex64(isa.fingerprint()) + "\n";
  c += isa.serialize();
  c += "source " + std::to_string(source.size()) + ":";
  c += source;
  key.hash = fnv1a64(c);
  return key;
}

std::string CacheKey::fingerprint() const { return hex64(hash); }

}  // namespace mat2c::service
