#include "service/isa_registry.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "support/diagnostics.hpp"

namespace mat2c::service {

namespace {

bool readFileText(const std::string& path, std::string& out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open ISA file '" + path + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    error = "read error on ISA file '" + path + "'";
    return false;
  }
  out = buf.str();
  return true;
}

bool parseIsaText(const std::string& text, isa::IsaDescription& out, std::string& error) {
  DiagnosticEngine diags;
  isa::IsaDescription parsed = isa::IsaDescription::parse(text, diags);
  if (diags.hasErrors()) {
    error = diags.renderAll();
    return false;
  }
  out = std::move(parsed);
  return true;
}

}  // namespace

IsaRegistry::IsaRegistry(isa::IsaDescription initial, std::string path)
    : current_(std::make_shared<const isa::IsaDescription>(std::move(initial))),
      path_(std::move(path)) {}

isa::IsaDescription IsaRegistry::parseFile(const std::string& path) {
  std::string text, error;
  if (!readFileText(path, text, error)) throw std::runtime_error(error);
  isa::IsaDescription parsed;
  if (!parseIsaText(text, parsed, error))
    throw std::runtime_error("bad ISA file '" + path + "': " + error);
  return parsed;
}

IsaRegistry::Snapshot IsaRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Snapshot{current_, version_};
}

std::uint64_t IsaRegistry::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

std::uint64_t IsaRegistry::reloads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reloads_;
}

std::string IsaRegistry::reload() {
  if (path_.empty()) return "ISA registry has no file to reload (--isa-file not set)";
  // Read + parse outside the lock: a slow disk must not stall snapshot()
  // on the submit path.
  std::string text, error;
  if (!readFileText(path_, text, error)) return error;
  isa::IsaDescription parsed;
  if (!parseIsaText(text, parsed, error))
    return "bad ISA file '" + path_ + "': " + error;
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::make_shared<const isa::IsaDescription>(std::move(parsed));
  ++version_;
  ++reloads_;
  return "";
}

void IsaRegistry::install(isa::IsaDescription next) {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::make_shared<const isa::IsaDescription>(std::move(next));
  ++version_;
}

}  // namespace mat2c::service
