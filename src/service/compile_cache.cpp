#include "service/compile_cache.hpp"

#include <algorithm>

#include "lir/lir.hpp"

namespace mat2c::service {

namespace {

/// Estimated heap bytes pinned by a retained CompiledUnit. Exact accounting
/// would require walking every Expr node; the per-statement constant below
/// covers a Stmt plus its typical expression tree on 64-bit builds. The
/// point is honesty of *scale* — a 500-statement unrolled kernel must cost
/// ~100x a 5-statement one in the byte counters, not 0.
std::size_t estimateUnitBytes(const CompiledUnit& unit) {
  constexpr std::size_t kBytesPerStatement = 160;
  const lir::Function& fn = unit.fn();
  lir::FunctionStats stats = lir::collectStats(fn);
  std::size_t bytes = sizeof(CompiledUnit) + sizeof(lir::Function);
  bytes += (fn.params.size() + fn.outs.size()) * sizeof(lir::Param);
  bytes += fn.arrays.size() * sizeof(lir::ArrayDecl);
  bytes += static_cast<std::size_t>(stats.statements) * kBytesPerStatement;
  return bytes;
}

CachedResult::Meta metaFrom(const CompiledUnit& unit) {
  CachedResult::Meta m;
  m.isaName = unit.isa().name();
  m.loopsVectorized = unit.optimizationReport().vec.loopsVectorized;
  m.idiomRewrites = unit.optimizationReport().idiomRewrites;
  m.degraded = unit.optimizationReport().degraded;
  return m;
}

}  // namespace

CachedResult::CachedResult(CompiledUnit u, std::string c)
    : CachedResult(std::move(u), std::move(c), std::string(), 0, 0.0, 0.0) {}

CachedResult::CachedResult(CompiledUnit u, std::string c, std::string tunedSig,
                           int candidates, double tuned, double dflt) {
  Meta m = metaFrom(u);
  unitBytes_ = estimateUnitBytes(u);
  unit = std::move(u);
  cCode = std::move(c);
  isaName = std::move(m.isaName);
  loopsVectorized = m.loopsVectorized;
  idiomRewrites = m.idiomRewrites;
  degraded = std::move(m.degraded);
  tunedSignature = std::move(tunedSig);
  tuneCandidates = candidates;
  tunedCycles = tuned;
  tuneDefaultCycles = dflt;
}

CachedResult::CachedResult(std::string c, Meta meta, std::string tunedSig, int candidates,
                           double tuned, double dflt)
    : cCode(std::move(c)),
      isaName(std::move(meta.isaName)),
      loopsVectorized(meta.loopsVectorized),
      idiomRewrites(meta.idiomRewrites),
      degraded(std::move(meta.degraded)),
      tunedSignature(std::move(tunedSig)),
      tuneCandidates(candidates),
      tunedCycles(tuned),
      tuneDefaultCycles(dflt) {}

CompileCache::CompileCache(std::size_t maxEntries, std::size_t shardCount)
    : maxEntries_(maxEntries),
      shards_(std::max<std::size_t>(1, shardCount)) {
  perShardCapacity_ = (maxEntries_ + shards_.size() - 1) / shards_.size();
}

std::shared_ptr<const CachedResult> CompileCache::lookup(const CacheKey& key) {
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.canonical);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void CompileCache::insert(const CacheKey& key, std::shared_ptr<const CachedResult> value) {
  if (maxEntries_ == 0 || !value) return;
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.canonical);
  if (it != shard.index.end()) {
    // Refresh: same key recompiled (e.g. raced past single-flight); keep the
    // newest value and its LRU position.
    shard.bytes -= it->second->value->byteSize();
    shard.bytes += value->byteSize();
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  // Key bytes are part of the footprint too: the canonical key embeds the
  // whole source text, so for small compiled outputs it dominates. (The
  // index's copy of the string is charged once; the Entry's copy rides along
  // in the same count.)
  shard.bytes += key.canonical.size() + value->byteSize();
  shard.lru.push_front(Entry{key.canonical, std::move(value)});
  shard.index.emplace(key.canonical, shard.lru.begin());
  ++shard.insertions;
  while (shard.lru.size() > perShardCapacity_) {
    Entry& victim = shard.lru.back();
    shard.bytes -= victim.canonical.size() + victim.value->byteSize();
    shard.index.erase(victim.canonical);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

CacheStats CompileCache::stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.evictions += shard.evictions;
    total.insertions += shard.insertions;
    total.entries += shard.lru.size();
    total.bytes += shard.bytes;
  }
  return total;
}

bool CompileCache::checkByteAccounting() const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::size_t expected = 0;
    for (const Entry& e : shard.lru) {
      expected += e.canonical.size() + e.value->byteSize();
    }
    if (expected != shard.bytes) return false;
  }
  return true;
}

void CompileCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

}  // namespace mat2c::service
