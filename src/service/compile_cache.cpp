#include "service/compile_cache.hpp"

#include <algorithm>

namespace mat2c::service {

CompileCache::CompileCache(std::size_t maxEntries, std::size_t shardCount)
    : maxEntries_(maxEntries),
      shards_(std::max<std::size_t>(1, shardCount)) {
  perShardCapacity_ = (maxEntries_ + shards_.size() - 1) / shards_.size();
}

std::shared_ptr<const CachedResult> CompileCache::lookup(const CacheKey& key) {
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.canonical);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void CompileCache::insert(const CacheKey& key, std::shared_ptr<const CachedResult> value) {
  if (maxEntries_ == 0 || !value) return;
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.canonical);
  if (it != shard.index.end()) {
    // Refresh: same key recompiled (e.g. raced past single-flight); keep the
    // newest value and its LRU position.
    shard.bytes -= it->second->value->byteSize();
    shard.bytes += value->byteSize();
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  // Key bytes are part of the footprint too: the canonical key embeds the
  // whole source text, so for small compiled outputs it dominates. (The
  // index's copy of the string is charged once; the Entry's copy rides along
  // in the same count.)
  shard.bytes += key.canonical.size() + value->byteSize();
  shard.lru.push_front(Entry{key.canonical, std::move(value)});
  shard.index.emplace(key.canonical, shard.lru.begin());
  ++shard.insertions;
  while (shard.lru.size() > perShardCapacity_) {
    Entry& victim = shard.lru.back();
    shard.bytes -= victim.canonical.size() + victim.value->byteSize();
    shard.index.erase(victim.canonical);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

CacheStats CompileCache::stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.evictions += shard.evictions;
    total.insertions += shard.insertions;
    total.entries += shard.lru.size();
    total.bytes += shard.bytes;
  }
  return total;
}

bool CompileCache::checkByteAccounting() const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::size_t expected = 0;
    for (const Entry& e : shard.lru) {
      expected += e.canonical.size() + e.value->byteSize();
    }
    if (expected != shard.bytes) return false;
  }
  return true;
}

void CompileCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

}  // namespace mat2c::service
