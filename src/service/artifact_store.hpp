// Persistent content-addressed artifact store — the on-disk second tier
// under the in-memory CompileCache.
//
// Each compiled artifact (C text + response metadata + tuned-search
// provenance) is serialized into one file named by its CacheKey hash, in a
// versioned, checksummed binary format. Writes go to a temp file in the same
// directory and are renamed into place, so a crash mid-write can never leave
// a half-visible artifact, and concurrent writers (threads or sibling server
// processes sharing the directory) race benignly — rename is atomic and both
// contenders wrote the same content for the same key.
//
// The store is deliberately forgiving on the read side: a missing file, a
// truncated file, a bad magic/version/checksum, or a canonical-key mismatch
// (64-bit hash collision) all degrade to a clean miss — the caller simply
// recompiles. It never throws on I/O trouble; failures are counted, not
// raised, because persistence is an optimization, not a correctness
// dependency. docs/service.md documents the file format.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "service/compile_cache.hpp"

namespace mat2c::service {

class ArtifactStore {
 public:
  struct Config {
    std::string dir;          ///< store directory (created if absent)
    std::size_t maxBytes = 0; ///< on-disk cap, 0 = unlimited; oldest-first eviction
  };

  struct Stats {
    std::uint64_t hits = 0;         ///< load() served an artifact
    std::uint64_t misses = 0;       ///< no file (or hash-collision mismatch)
    std::uint64_t puts = 0;         ///< store() persisted an artifact
    std::uint64_t putFailures = 0;  ///< store() hit an I/O error (artifact not persisted)
    std::uint64_t corrupt = 0;      ///< load() rejected a damaged file (treated as miss)
    std::uint64_t evictions = 0;    ///< files removed to honor maxBytes
    std::size_t bytes = 0;          ///< current on-disk footprint
    std::size_t files = 0;          ///< current artifact count
  };

  /// Creates `config.dir` if needed and scans existing artifacts into the
  /// byte/file counters. On failure the store is disabled (ok() == false,
  /// every load is a miss, every store a counted failure) — never throws.
  explicit ArtifactStore(Config config);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  const std::string& dir() const { return config_.dir; }

  /// Reads the artifact for `key`, or nullptr on miss/corruption (corrupt
  /// files are deleted so the next lookup is a clean miss). The returned
  /// CachedResult has no CompiledUnit — it answers from C text + metadata.
  std::shared_ptr<const CachedResult> load(const CacheKey& key);

  /// Persists `value` under `key` (temp-file + atomic rename). Best effort:
  /// returns false and counts a putFailure on I/O trouble. Triggers
  /// oldest-first eviction when the directory exceeds maxBytes.
  bool store(const CacheKey& key, const CachedResult& value);

  Stats stats() const;

  // --- format surface, exposed for tests and fuzz_smoke -------------------

  static constexpr char kMagic[4] = {'M', '2', 'C', 'A'};
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Full file image (header + payload) for `value` under `key`.
  static std::string serialize(const CacheKey& key, const CachedResult& value);

  /// Parses a file image. Returns nullptr (and sets `error` when non-null)
  /// on any damage: short header, bad magic, version skew, payload size
  /// mismatch, checksum mismatch, malformed payload, or canonical-key
  /// mismatch against `key`. Must never crash on arbitrary bytes — this is
  /// the fuzz_smoke entry point.
  static std::shared_ptr<const CachedResult> deserialize(std::string_view bytes,
                                                         const CacheKey& key,
                                                         std::string* error = nullptr);

  /// File name an artifact for `key` lives under ("<16 hex digits>.art").
  static std::string fileNameFor(const CacheKey& key);

 private:
  void evictLocked();

  Config config_;
  bool ok_ = false;
  std::string error_;

  mutable std::mutex mu_;  // guards counters + eviction scans
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t puts_ = 0;
  std::uint64_t putFailures_ = 0;
  std::uint64_t corrupt_ = 0;
  std::uint64_t evictions_ = 0;
  std::size_t bytes_ = 0;
  std::size_t files_ = 0;
  std::uint64_t tempCounter_ = 0;  // uniquifies temp names within this process
};

}  // namespace mat2c::service
