#include "service/supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "support/string_utils.hpp"

extern char** environ;

namespace mat2c::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Loops ::write over partial writes and EINTR. False on any hard error
/// (EPIPE after a worker died, mostly) — the caller treats that as a dead
/// shard, never as data loss.
bool writeAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool readExact(int fd, char* data, std::size_t size, bool& cleanEof) {
  cleanEof = false;
  std::size_t got = 0;
  while (got < size) {
    ssize_t n = ::read(fd, data + got, size - got);
    if (n == 0) {
      cleanEof = (got == 0);
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

/// fd flavor of protocol.cpp's readFrame: 1 = Response frame, 0 = clean EOF
/// at a frame boundary, -1 = torn/garbled stream (truncated header or
/// payload, bad magic/version/type). -1 is not resynchronizable — the shard
/// is declared dead and its traffic re-dispatched.
int readResponseFrameFd(int fd, std::string& payload) {
  char header[kFrameHeaderBytes];
  bool cleanEof = false;
  if (!readExact(fd, header, sizeof header, cleanEof)) return cleanEof ? 0 : -1;
  if (std::memcmp(header, kBinaryMagic, sizeof kBinaryMagic) != 0) return -1;
  auto u16At = [&](int off) {
    return static_cast<std::uint16_t>(static_cast<unsigned char>(header[off]) |
                                      (static_cast<unsigned char>(header[off + 1]) << 8));
  };
  std::uint32_t payloadLen = 0;
  for (int i = 0; i < 4; ++i) {
    payloadLen |= static_cast<std::uint32_t>(static_cast<unsigned char>(header[8 + i])) << (8 * i);
  }
  if (u16At(4) != kBinaryVersion) return -1;
  if (u16At(6) != static_cast<std::uint16_t>(FrameType::Response)) return -1;
  if (payloadLen > (64u << 20)) return -1;  // a worker never sends frames this big
  payload.resize(payloadLen);
  if (payloadLen > 0 && !readExact(fd, payload.data(), payloadLen, cleanEof)) return -1;
  return 1;
}

std::string healthzProbePayload() {
  WireRequest probe;
  probe.id = "__probe__";
  probe.admin = "healthz";
  return encodeBinaryRequest(probe);
}

std::string reloadPayload() {
  WireRequest req;
  req.id = "__reload__";
  req.admin = "reload";
  return encodeBinaryRequest(req);
}

}  // namespace

/// One routed request. Shared between the routing tables of up to two shards
/// (primary + hedge copy); `completed` guards double delivery.
struct ShardSupervisor::Pending {
  std::string id;
  std::string payload;       ///< encoded Request frame payload
  std::uint64_t hash = 0;    ///< route hash (re-routing after ejection)
  ResponseHandler done;
  Clock::time_point firstSent{};
  int primaryShard = -1;
  bool sentOnce = false;     ///< a later send is a re-dispatch (counted)
  bool completed = false;
  bool hedged = false;
  bool isProbe = false;      ///< internal readmission probe / reload
};

struct ShardSupervisor::Shard {
  pid_t pid = -1;
  int inFd = -1;   ///< worker stdin (requests out)
  int outFd = -1;  ///< worker stdout (responses in)
  std::thread reader;
  /// Sent and awaiting a response, in send order. The worker answers in the
  /// order it reads, so matching is positional.
  std::deque<std::shared_ptr<Pending>> outstanding;
  /// Routed here but not yet sendable (shard down or still probing).
  std::deque<std::shared_ptr<Pending>> backlog;
  bool spawned = false;  ///< process exists
  bool alive = false;    ///< healthz probe answered; accepting sends
  bool down = false;     ///< death seen, restart scheduled
  bool ejected = false;  ///< permanently out of rotation
  int restarts = 0;
  Clock::time_point restartAt{};
};

ShardSupervisor::ShardSupervisor(Config config) : config_(std::move(config)) {
  if (config_.shards < 1) config_.shards = 1;
}

ShardSupervisor::~ShardSupervisor() { shutdown(); }

std::uint64_t ShardSupervisor::routeHash(const WireRequest& request) {
  std::string key;
  key.reserve(request.source.size() + 64);
  auto field = [&](const std::string& s) {
    key += s;
    key += '\x1f';
  };
  field(request.source);
  field(request.entry);
  field(request.args);
  field(request.isa);
  field(request.isaText);
  field(request.style);
  key += request.tune ? '1' : '0';
  return fnv1a64(key);
}

bool ShardSupervisor::start(std::string& error) {
  // Workers dying mid-write must surface as EPIPE on our write(), not as a
  // process-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  if (config_.binaryPath.empty()) {
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0) {
      error = "cannot resolve /proc/self/exe and Config::binaryPath is empty";
      return false;
    }
    buf[n] = '\0';
    config_.binaryPath = buf;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    error = "supervisor already started";
    return false;
  }
  shards_.clear();
  for (int i = 0; i < config_.shards; ++i) shards_.push_back(std::make_unique<Shard>());
  int up = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::string shardError;
    if (spawnLocked(i, shardError)) {
      ++up;
    } else {
      // Couldn't even fork/exec: schedule it like a death so the monitor
      // retries with backoff instead of giving up at startup.
      shards_[i]->down = true;
      shards_[i]->restartAt = Clock::now();
      if (error.empty()) error = shardError;
    }
  }
  if (up == 0) {
    for (auto& s : shards_) s->ejected = true;
    return false;
  }
  error.clear();
  started_ = true;
  monitor_ = std::thread([this] { monitorLoop(); });
  return true;
}

bool ShardSupervisor::spawnLocked(std::size_t idx, std::string& error) {
  Shard& sh = *shards_[idx];
  int toChild[2];   // parent writes -> child stdin
  int fromChild[2]; // child stdout -> parent reads
  if (::pipe2(toChild, O_CLOEXEC) != 0) {
    error = "pipe2: " + std::string(std::strerror(errno));
    return false;
  }
  if (::pipe2(fromChild, O_CLOEXEC) != 0) {
    error = "pipe2: " + std::string(std::strerror(errno));
    ::close(toChild[0]);
    ::close(toChild[1]);
    return false;
  }

  // argv/envp are built BEFORE fork: the child may only use async-signal-safe
  // calls between fork and exec (this process is multithreaded).
  std::vector<std::string> argvStore = {config_.binaryPath, "serve", "-", "--binary"};
  for (const std::string& a : config_.workerArgs) argvStore.push_back(a);
  std::vector<char*> argv;
  for (std::string& s : argvStore) argv.push_back(s.data());
  argv.push_back(nullptr);
  std::vector<std::string> envStore;
  for (char** e = environ; e && *e; ++e) envStore.emplace_back(*e);
  for (const std::string& e : config_.workerEnv) envStore.push_back(e);
  std::vector<char*> envp;
  for (std::string& s : envStore) envp.push_back(s.data());
  envp.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) {
    error = "fork: " + std::string(std::strerror(errno));
    ::close(toChild[0]);
    ::close(toChild[1]);
    ::close(fromChild[0]);
    ::close(fromChild[1]);
    return false;
  }
  if (pid == 0) {
    // Child: wire the pipes to stdio and exec the worker. dup2 clears
    // O_CLOEXEC on the duplicate; every other supervisor fd closes on exec.
    ::dup2(toChild[0], 0);
    ::dup2(fromChild[1], 1);
    ::execve(argv[0], argv.data(), envp.data());
    _exit(127);
  }
  ::close(toChild[0]);
  ::close(fromChild[1]);
  sh.pid = pid;
  sh.inFd = toChild[1];
  sh.outFd = fromChild[0];
  sh.spawned = true;
  sh.alive = false;
  sh.down = false;

  // Readmission probe: the shard takes traffic only after it answers this.
  auto probe = std::make_shared<Pending>();
  probe->id = "__probe__";
  probe->payload = healthzProbePayload();
  probe->isProbe = true;
  if (!sendLocked(sh, probe)) {
    // Write failed instantly (exec failure racing us); the reader will see
    // EOF and schedule the restart.
    error = "probe write to shard " + std::to_string(idx) + " failed";
  }
  int fd = sh.outFd;
  sh.reader = std::thread([this, idx, fd, pid] { readerLoop(idx, fd, pid); });
  return true;
}

bool ShardSupervisor::sendLocked(Shard& shard, const std::shared_ptr<Pending>& p) {
  if (shard.inFd < 0) return false;
  std::string frame = encodeFrame(FrameType::Request, p->payload);
  shard.outstanding.push_back(p);
  if (p->firstSent == Clock::time_point{}) p->firstSent = Clock::now();
  if (p->sentOnce && !p->isProbe) ++redispatched_;
  p->sentOnce = true;
  // The write happens under mu_: requests are small relative to the pipe
  // buffer and workers drain continuously, so this does not block in
  // practice; in exchange the outstanding FIFO order always matches the
  // byte order on the pipe.
  if (!writeAll(shard.inFd, frame.data(), frame.size())) {
    shard.outstanding.pop_back();
    return false;
  }
  return true;
}

void ShardSupervisor::flushBacklogLocked(std::size_t idx) {
  Shard& sh = *shards_[idx];
  while (sh.alive && !sh.backlog.empty()) {
    std::shared_ptr<Pending> p = sh.backlog.front();
    sh.backlog.pop_front();
    if (p->completed) continue;  // a hedge copy already answered it
    if (!sendLocked(sh, p)) {
      sh.backlog.push_front(p);
      break;
    }
  }
}

void ShardSupervisor::submit(const WireRequest& request, ResponseHandler done) {
  auto p = std::make_shared<Pending>();
  p->id = request.id;
  p->payload = encodeBinaryRequest(request);
  p->hash = routeHash(request);
  p->done = std::move(done);
  std::string failWhy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || !started_) {
      failWhy = "supervisor is not running";
    } else {
      ++submitted_;
      int idx = pickShardLocked(p->hash);
      if (idx < 0) {
        ++failedNoShard_;
        failWhy = "no shards available (all permanently ejected)";
      } else {
        p->primaryShard = idx;
        ++pendingCount_;
        Shard& sh = *shards_[static_cast<std::size_t>(idx)];
        if (!sh.alive || !sendLocked(sh, p)) sh.backlog.push_back(p);
      }
    }
  }
  if (!failWhy.empty()) failPending(p, failWhy);
}

int ShardSupervisor::pickShardLocked(std::uint64_t hash) const {
  const std::size_t n = shards_.size();
  for (std::size_t probe = 0; probe < n; ++probe) {
    std::size_t idx = (static_cast<std::size_t>(hash) + probe) % n;
    if (!shards_[idx]->ejected) return static_cast<int>(idx);
  }
  return -1;
}

int ShardSupervisor::broadcastReload() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || stopping_) return 0;
  int sent = 0;
  for (auto& shPtr : shards_) {
    Shard& sh = *shPtr;
    if (sh.ejected) continue;
    auto p = std::make_shared<Pending>();
    p->id = "__reload__";
    p->payload = reloadPayload();
    p->isProbe = true;  // internal: no caller, dropped if the shard dies
    if (sh.alive) {
      if (sendLocked(sh, p)) ++sent;
    } else {
      // A restarting shard re-reads --isa-file at startup anyway; nothing to
      // send, but it still comes back on the new ISA.
    }
  }
  ++reloads_;
  return sent;
}

void ShardSupervisor::failPending(const std::shared_ptr<Pending>& p, const std::string& why) {
  ResponseHandler done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (p->completed || p->isProbe) return;
    p->completed = true;
    ++completed_;
    if (pendingCount_ > 0) --pendingCount_;
    done = std::move(p->done);
  }
  idleCv_.notify_all();
  if (!done) return;
  BinaryResponse r;
  r.id = p->id;
  r.ok = false;
  r.error = why;
  r.errorKind = ErrorKind::ResourceExhausted;
  done(encodeBinaryResponse(r), r);
}

void ShardSupervisor::completeFromShard(std::size_t idx, std::string rawPayload) {
  ResponseHandler done;
  BinaryResponse decoded;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Shard& sh = *shards_[idx];
    if (sh.outstanding.empty()) return;  // reader already validated alignment
    std::shared_ptr<Pending> p = sh.outstanding.front();
    sh.outstanding.pop_front();
    if (p->isProbe) {
      // Readmission: the worker is answering, so it is healthy enough to
      // take its backlog (healthz "degraded" still answers — degraded beats
      // down). Reload acks ride the same path.
      if (!sh.alive && !sh.down) {
        sh.alive = true;
        flushBacklogLocked(idx);
      }
      return;
    }
    if (p->completed) return;  // hedge duplicate: first answer already won
    std::string error;
    if (!decodeBinaryResponse(rawPayload, decoded, error)) {
      decoded = BinaryResponse{};
      decoded.id = p->id;
      decoded.ok = false;
      decoded.error = "malformed response payload from shard " + std::to_string(idx);
      decoded.errorKind = ErrorKind::Panic;
      rawPayload = encodeBinaryResponse(decoded);
    }
    p->completed = true;
    ++completed_;
    if (pendingCount_ > 0) --pendingCount_;
    if (p->hedged && static_cast<int>(idx) != p->primaryShard) ++hedgeWins_;
    done = std::move(p->done);
  }
  idleCv_.notify_all();
  if (done) done(rawPayload, decoded);
}

void ShardSupervisor::onShardDown(std::size_t idx) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Shard& sh = *shards_[idx];
    if (sh.down || !sh.spawned) return;
    sh.down = true;
    sh.alive = false;
    sh.spawned = false;
    if (sh.inFd >= 0) {
      ::close(sh.inFd);
      sh.inFd = -1;
    }
    if (sh.outFd >= 0) {
      ::close(sh.outFd);
      sh.outFd = -1;
    }
    // Unanswered requests go back to the FRONT of the backlog in their send
    // order — re-dispatch preserves FIFO fairness. Internal probes die with
    // the process (a fresh probe is part of every respawn).
    for (auto it = sh.outstanding.rbegin(); it != sh.outstanding.rend(); ++it) {
      if ((*it)->isProbe || (*it)->completed) continue;
      sh.backlog.push_front(*it);
    }
    sh.outstanding.clear();
    // Deterministic backoff: delay depends only on (seed, shard, attempt).
    double delay = config_.restart.delayMillis(
        sh.restarts, config_.seed ^ (0x9e3779b97f4a7c15ULL * (idx + 1)));
    sh.restartAt = Clock::now() + std::chrono::microseconds(static_cast<long>(delay * 1000.0));
  }
  cv_.notify_all();
}

void ShardSupervisor::readerLoop(std::size_t idx, int fd, pid_t pid) {
  int rc = 0;
  while (true) {
    std::string payload;
    rc = readResponseFrameFd(fd, payload);
    if (rc <= 0) break;
    completeFromShard(idx, std::move(payload));
  }
  // A torn stream (rc < 0) does not mean the process exited — a worker that
  // wrote garbage may be alive and blocked on stdin, and waitpid would hang
  // behind it. It is unusable either way: kill before reaping. Clean EOF
  // means the worker closed stdout, i.e. it is exiting on its own.
  if (rc < 0) ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  onShardDown(idx);
}

void ShardSupervisor::ejectLocked(std::size_t idx,
                                  std::vector<std::shared_ptr<Pending>>& reroute) {
  Shard& sh = *shards_[idx];
  sh.ejected = true;
  sh.down = false;
  for (auto& p : sh.backlog) {
    if (!p->completed && !p->isProbe) reroute.push_back(p);
  }
  sh.backlog.clear();
}

void ShardSupervisor::monitorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    // Next deadline: earliest scheduled restart, or the hedge scan tick.
    Clock::time_point wake = Clock::now() + std::chrono::seconds(3600);
    bool haveWork = false;
    for (auto& shPtr : shards_) {
      if (shPtr->down && !shPtr->ejected) {
        wake = std::min(wake, shPtr->restartAt);
        haveWork = true;
      }
    }
    if (config_.hedgeMillis > 0 && pendingCount_ > 0) {
      wake = std::min(wake, Clock::now() + std::chrono::microseconds(static_cast<long>(
                                std::max(1.0, config_.hedgeMillis / 2.0) * 1000.0)));
      haveWork = true;
    }
    if (!haveWork) {
      cv_.wait(lock, [&] {
        if (stopping_) return true;
        for (auto& s : shards_) {
          if (s->down && !s->ejected) return true;
        }
        return config_.hedgeMillis > 0 && pendingCount_ > 0;
      });
      continue;
    }
    cv_.wait_until(lock, wake);
    if (stopping_) break;

    // Restarts due.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& sh = *shards_[i];
      if (!sh.down || sh.ejected || Clock::now() < sh.restartAt) continue;
      // Join the finished reader outside the lock: it may still be inside
      // onShardDown waiting for mu_.
      std::thread oldReader = std::move(sh.reader);
      lock.unlock();
      if (oldReader.joinable()) oldReader.join();
      lock.lock();
      if (stopping_) break;
      if (!sh.down || sh.ejected) continue;  // state moved while unlocked
      if (sh.restarts >= config_.maxRestarts) {
        std::vector<std::shared_ptr<Pending>> reroute;
        ejectLocked(i, reroute);
        std::vector<std::shared_ptr<Pending>> failed;
        for (auto& p : reroute) {
          int target = pickShardLocked(p->hash);
          if (target < 0) {
            ++failedNoShard_;
            failed.push_back(p);
            continue;
          }
          Shard& dst = *shards_[static_cast<std::size_t>(target)];
          if (!dst.alive || !sendLocked(dst, p)) dst.backlog.push_back(p);
        }
        lock.unlock();
        for (auto& p : failed) failPending(p, "no shards available (all permanently ejected)");
        lock.lock();
        continue;
      }
      ++sh.restarts;
      ++restarts_;
      std::string error;
      if (!spawnLocked(i, error)) {
        // Spawn itself failed (fork limit, binary gone): back off again.
        sh.down = true;
        double delay = config_.restart.delayMillis(
            sh.restarts, config_.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
        sh.restartAt =
            Clock::now() + std::chrono::microseconds(static_cast<long>(delay * 1000.0));
      }
    }

    // Hedge scan: duplicate slow requests to another live shard.
    if (config_.hedgeMillis > 0) {
      Clock::time_point now = Clock::now();
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        Shard& sh = *shards_[i];
        if (!sh.alive) continue;
        for (auto& p : sh.outstanding) {
          if (p->isProbe || p->completed || p->hedged) continue;
          double age =
              std::chrono::duration<double, std::milli>(now - p->firstSent).count();
          if (age < config_.hedgeMillis) continue;
          for (std::size_t probe = 1; probe < shards_.size(); ++probe) {
            std::size_t j = (i + probe) % shards_.size();
            Shard& other = *shards_[j];
            if (!other.alive || other.ejected) continue;
            p->hedged = true;
            if (sendLocked(other, p)) ++hedges_;
            break;
          }
        }
      }
    }
  }
}

void ShardSupervisor::drainPending() {
  std::unique_lock<std::mutex> lock(mu_);
  idleCv_.wait(lock, [&] { return pendingCount_ == 0; });
}

void ShardSupervisor::shutdown() {
  std::vector<std::thread> readers;
  std::vector<std::shared_ptr<Pending>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) {
      if (!started_) return;
    }
    stopping_ = true;
    for (auto& shPtr : shards_) {
      Shard& sh = *shPtr;
      // Closing stdin lets a live worker drain and exit; its reader sees the
      // trailing responses, then EOF.
      if (sh.inFd >= 0) {
        ::close(sh.inFd);
        sh.inFd = -1;
      }
      for (auto& p : sh.backlog) {
        if (!p->completed && !p->isProbe) orphans.push_back(p);
      }
      sh.backlog.clear();
    }
  }
  cv_.notify_all();
  idleCv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& shPtr : shards_) {
      if (shPtr->reader.joinable()) readers.push_back(std::move(shPtr->reader));
    }
  }
  for (std::thread& t : readers) t.join();
  {
    // Readers exited; any request still unanswered never will be (worker
    // died mid-drain — onShardDown may have moved it outstanding → backlog
    // after the first sweep). Fail them cleanly rather than hanging callers.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& shPtr : shards_) {
      for (auto& p : shPtr->outstanding) {
        if (!p->completed && !p->isProbe) orphans.push_back(p);
      }
      shPtr->outstanding.clear();
      for (auto& p : shPtr->backlog) {
        if (!p->completed && !p->isProbe) orphans.push_back(p);
      }
      shPtr->backlog.clear();
      if (shPtr->outFd >= 0) {
        ::close(shPtr->outFd);
        shPtr->outFd = -1;
      }
    }
  }
  for (auto& p : orphans) failPending(p, "supervisor shut down before the request completed");
}

ShardSupervisor::Stats ShardSupervisor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.restarts = restarts_;
  s.redispatched = redispatched_;
  s.hedges = hedges_;
  s.hedgeWins = hedgeWins_;
  s.reloads = reloads_;
  s.failedNoShard = failedNoShard_;
  for (const auto& shPtr : shards_) {
    if (shPtr->alive) ++s.shardsAlive;
    if (shPtr->ejected) ++s.shardsEjected;
    s.pids.push_back(shPtr->spawned ? static_cast<int>(shPtr->pid) : -1);
  }
  return s;
}

std::vector<int> ShardSupervisor::shardPids() const {
  return stats().pids;
}

std::string ShardSupervisor::metricsText() const {
  Stats s = stats();
  std::ostringstream os;
  auto counter = [&](const char* name, std::uint64_t v, const char* help) {
    os << "# HELP " << name << ' ' << help << "\n# TYPE " << name << " counter\n"
       << name << ' ' << v << "\n";
  };
  counter("mat2c_shard_requests_total", s.submitted, "Requests routed to shards");
  counter("mat2c_shard_responses_total", s.completed, "Responses delivered");
  counter("mat2c_shard_restarts_total", s.restarts, "Worker processes respawned");
  counter("mat2c_shard_redispatches_total", s.redispatched,
          "Requests re-sent after a shard died");
  counter("mat2c_hedges_total", s.hedges, "Hedged duplicate requests sent");
  counter("mat2c_hedge_wins_total", s.hedgeWins, "Completions won by a hedge copy");
  counter("mat2c_supervisor_reloads_total", s.reloads, "ISA reload broadcasts");
  counter("mat2c_shard_route_failures_total", s.failedNoShard,
          "Requests failed with every shard ejected");
  os << "# HELP mat2c_shards_alive Live (readmitted) worker shards\n"
     << "# TYPE mat2c_shards_alive gauge\nmat2c_shards_alive " << s.shardsAlive << "\n";
  os << "# HELP mat2c_shards_ejected Permanently ejected shards\n"
     << "# TYPE mat2c_shards_ejected gauge\nmat2c_shards_ejected " << s.shardsEjected << "\n";
  return os.str();
}

}  // namespace mat2c::service
