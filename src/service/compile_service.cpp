#include "service/compile_service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/fault_injection.hpp"
#include "support/string_utils.hpp"
#include "tune/tune.hpp"

namespace mat2c::service {

namespace {

using Clock = std::chrono::steady_clock;

double millisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Minimal JSON string escape for tenant names in statsJson (protocol.cpp's
/// jsonQuote lives a layer above this one).
std::string quoteName(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

/// Prometheus label-value escape (backslash, quote, newline).
std::string promLabel(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

}  // namespace

void LatencyHistogram::record(double micros) {
  int idx = 0;
  if (micros >= 1.0) {
    auto v = static_cast<std::uint64_t>(std::min(micros, 1e18));
    idx = std::min(kBuckets - 1, static_cast<int>(std::bit_width(v)) - 1);
  }
  buckets_[static_cast<std::size_t>(idx)].fetch_add(1, std::memory_order_relaxed);
}

LatencyStats LatencyHistogram::snapshot() const {
  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += counts[static_cast<std::size_t>(i)];
  }
  auto percentile = [&](double p) -> double {
    if (total == 0) return 0.0;
    auto rank = static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(total)));
    rank = std::max<std::uint64_t>(1, rank);
    std::uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      cum += counts[static_cast<std::size_t>(i)];
      if (cum >= rank) {
        // Upper bound of bucket i: 2^(i+1) microseconds.
        return std::ldexp(1.0, i + 1) / 1000.0;
      }
    }
    return std::ldexp(1.0, kBuckets) / 1000.0;
  };
  LatencyStats s;
  s.count = total;
  s.p50Millis = percentile(50.0);
  s.p95Millis = percentile(95.0);
  s.p99Millis = percentile(99.0);
  return s;
}

std::string statsJson(const ServiceStats& stats, double wallMillis) {
  std::ostringstream os;
  char num[64];
  auto fixed = [&](double v) {
    std::snprintf(num, sizeof num, "%.3f", v);
    return std::string(num);
  };
  os << "{\n";
  os << "  \"requests\": " << stats.requests << ",\n";
  os << "  \"compiles\": " << stats.compiles << ",\n";
  os << "  \"tunes\": " << stats.tunes << ",\n";
  os << "  \"cacheHits\": " << stats.cacheHits << ",\n";
  os << "  \"storeHits\": " << stats.storeHits << ",\n";
  os << "  \"dedupJoins\": " << stats.dedupJoins << ",\n";
  os << "  \"errors\": " << stats.errors << ",\n";
  os << "  \"timeouts\": " << stats.timeouts << ",\n";
  os << "  \"panics\": " << stats.panics << ",\n";
  os << "  \"degraded\": " << stats.degraded << ",\n";
  os << "  \"threads\": " << stats.threads << ",\n";
  if (stats.isaVersion > 0) {
    os << "  \"isaVersion\": " << stats.isaVersion << ",\n";
    os << "  \"isaReloads\": " << stats.isaReloads << ",\n";
  }
  os << "  \"compileMillis\": " << fixed(stats.compileMillis) << ",\n";
  os << "  \"latency\": {\"count\": " << stats.latency.count
     << ", \"p50Millis\": " << fixed(stats.latency.p50Millis)
     << ", \"p95Millis\": " << fixed(stats.latency.p95Millis)
     << ", \"p99Millis\": " << fixed(stats.latency.p99Millis) << "},\n";
  if (!stats.tenants.empty()) {
    os << "  \"tenantInflightCap\": " << stats.tenantInflightCap << ",\n";
    os << "  \"tenants\": {";
    bool first = true;
    for (const TenantStats& t : stats.tenants) {
      if (!first) os << ", ";
      first = false;
      os << quoteName(t.name) << ": {\"submitted\": " << t.submitted
         << ", \"completed\": " << t.completed << ", \"queued\": " << t.queued
         << ", \"inflight\": " << t.inflight << "}";
    }
    os << "},\n";
  }
  if (stats.storeEnabled) {
    os << "  \"store\": {\"hits\": " << stats.store.hits << ", \"misses\": " << stats.store.misses
       << ", \"puts\": " << stats.store.puts << ", \"putFailures\": " << stats.store.putFailures
       << ", \"corrupt\": " << stats.store.corrupt << ", \"evictions\": " << stats.store.evictions
       << ", \"bytes\": " << stats.store.bytes << ", \"files\": " << stats.store.files << "},\n";
  }
  os << "  \"cache\": {\"entries\": " << stats.cache.entries
     << ", \"bytes\": " << stats.cache.bytes << ", \"hits\": " << stats.cache.hits
     << ", \"misses\": " << stats.cache.misses << ", \"evictions\": " << stats.cache.evictions
     << ", \"insertions\": " << stats.cache.insertions << "}";
  if (wallMillis >= 0) {
    double rps = wallMillis > 0 ? 1000.0 * static_cast<double>(stats.requests) / wallMillis
                                : 0.0;
    os << ",\n  \"wallMillis\": " << fixed(wallMillis);
    os << ",\n  \"requestsPerSecond\": " << fixed(rps);
  }
  os << "\n}\n";
  return os.str();
}

std::string healthzText(const ServiceStats& stats) {
  if (stats.threads == 0) return "unhealthy: no worker threads";
  std::string degraded;
  if (stats.panics > 0) {
    degraded += std::to_string(stats.panics) + " panics contained";
  }
  if (stats.storeEnabled && stats.store.putFailures > 0) {
    if (!degraded.empty()) degraded += "; ";
    degraded += std::to_string(stats.store.putFailures) + " store write failures";
  }
  if (!degraded.empty()) return "degraded: " + degraded;
  return "ok";
}

std::string metricsText(const ServiceStats& stats, double wallMillis) {
  std::ostringstream os;
  char num[64];
  auto fixed = [&](double v) {
    std::snprintf(num, sizeof num, "%.3f", v);
    return std::string(num);
  };
  auto counter = [&](const char* name, std::uint64_t v, const char* help) {
    os << "# HELP " << name << ' ' << help << "\n# TYPE " << name << " counter\n"
       << name << ' ' << v << "\n";
  };
  auto gauge = [&](const char* name, const std::string& v, const char* help) {
    os << "# HELP " << name << ' ' << help << "\n# TYPE " << name << " gauge\n"
       << name << ' ' << v << "\n";
  };
  counter("mat2c_requests_total", stats.requests, "Requests submitted");
  counter("mat2c_compiles_total", stats.compiles, "Underlying compileSource calls");
  counter("mat2c_tunes_total", stats.tunes, "Autotune searches run");
  counter("mat2c_cache_hits_total", stats.cacheHits, "Submit-time cache hits (memory or store)");
  counter("mat2c_store_hits_total", stats.storeHits, "Cache hits served from the artifact store");
  counter("mat2c_dedup_joins_total", stats.dedupJoins, "Requests joining an in-flight compile");
  counter("mat2c_errors_total", stats.errors, "Failed responses");
  counter("mat2c_timeouts_total", stats.timeouts, "Responses resolved with Timeout");
  counter("mat2c_panics_total", stats.panics, "Non-standard exceptions contained");
  counter("mat2c_degraded_total", stats.degraded, "Compiles that used the degradation ladder");
  gauge("mat2c_threads", std::to_string(stats.threads), "Worker pool size");
  if (stats.isaVersion > 0) {
    gauge("mat2c_isa_version", std::to_string(stats.isaVersion),
          "Version of the server-default ISA (bumps on hot-reload)");
    counter("mat2c_isa_reloads_total", stats.isaReloads, "Successful ISA hot-reloads");
  }
  gauge("mat2c_cache_entries", std::to_string(stats.cache.entries), "Live cache entries");
  gauge("mat2c_cache_bytes", std::to_string(stats.cache.bytes), "Cache footprint estimate");
  counter("mat2c_cache_evictions_total", stats.cache.evictions, "LRU evictions");
  counter("mat2c_cache_insertions_total", stats.cache.insertions, "Cache insertions");
  if (stats.storeEnabled) {
    gauge("mat2c_store_bytes", std::to_string(stats.store.bytes), "Artifact store on-disk bytes");
    gauge("mat2c_store_files", std::to_string(stats.store.files), "Artifact store file count");
    counter("mat2c_store_puts_total", stats.store.puts, "Artifacts persisted");
    counter("mat2c_store_put_failures_total", stats.store.putFailures,
            "Artifact persist failures");
    counter("mat2c_store_corrupt_total", stats.store.corrupt, "Damaged artifacts rejected");
    counter("mat2c_store_evictions_total", stats.store.evictions, "Artifacts evicted for space");
  }
  os << "# HELP mat2c_request_latency_millis Request latency submit-to-fulfillment\n"
     << "# TYPE mat2c_request_latency_millis summary\n";
  os << "mat2c_request_latency_millis{quantile=\"0.5\"} " << fixed(stats.latency.p50Millis)
     << "\n";
  os << "mat2c_request_latency_millis{quantile=\"0.95\"} " << fixed(stats.latency.p95Millis)
     << "\n";
  os << "mat2c_request_latency_millis{quantile=\"0.99\"} " << fixed(stats.latency.p99Millis)
     << "\n";
  os << "mat2c_request_latency_millis_count " << stats.latency.count << "\n";
  for (const TenantStats& t : stats.tenants) {
    os << "mat2c_tenant_requests_total{tenant=\"" << promLabel(t.name) << "\"} " << t.submitted
       << "\n";
    os << "mat2c_tenant_completed_total{tenant=\"" << promLabel(t.name) << "\"} " << t.completed
       << "\n";
  }
  if (wallMillis >= 0) {
    double rps = wallMillis > 0 ? 1000.0 * static_cast<double>(stats.requests) / wallMillis
                                : 0.0;
    gauge("mat2c_requests_per_second", fixed(rps), "Observed request throughput");
  }
  gauge("mat2c_healthz", healthzText(stats) == "ok" ? "1" : "0", "1 when healthy");
  return os.str();
}

CompileService::CompileService() : CompileService(Config{}) {}

CompileService::CompileService(const Config& config)
    : config_(config),
      cache_(config.cacheEntries, config.cacheShards) {
  if (!config_.storeDir.empty()) {
    store_ = std::make_unique<ArtifactStore>(
        ArtifactStore::Config{config_.storeDir, config_.maxStoreBytes});
  }
  std::size_t n = config_.threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

CompileService::~CompileService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  notEmpty_.notify_all();
  notFull_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<CompileResponse> CompileService::submit(CompileRequest request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Clock::time_point start = Clock::now();
  // Default-ISA stamping happens HERE, before the cache key is computed:
  // the request is pinned to one registry snapshot for its whole life, so a
  // hot-reload never yields a mixed-ISA answer — in-flight work finishes on
  // the old fingerprint, later submissions key (and miss) on the new one.
  if (request.useDefaultIsa && config_.isaRegistry) {
    request.options.isa = *config_.isaRegistry->snapshot().isa;
  }
  // Tune requests are keyed without the pass options: the tuned configuration
  // is what the cache stores, not what it is keyed on. Everything downstream
  // (fast path, single-flight, queueing) is shared with plain compiles.
  CacheKey key = request.tune
      ? CacheKey::makeTuned(request.source, request.entry, request.args, request.options.isa)
      : CacheKey::make(request.source, request.entry, request.args, request.options);

  // Fast path: served from cache without touching the queue.
  auto respondHit = [&](std::shared_ptr<const CachedResult> hit, bool fromStore) {
    cacheHits_.fetch_add(1, std::memory_order_relaxed);
    if (fromStore) storeHits_.fetch_add(1, std::memory_order_relaxed);
    CompileResponse r;
    r.id = std::move(request.id);
    r.ok = true;
    r.cacheHit = true;
    r.storeHit = fromStore;
    r.result = std::move(hit);
    r.millis = millisSince(start);
    latency_.record(r.millis * 1000.0);
    std::promise<CompileResponse> p;
    p.set_value(std::move(r));
    return p.get_future();
  };
  if (auto cached = cache_.lookup(key)) return respondHit(std::move(cached), false);
  // Second tier: the persistent store (read-through — a hit is promoted into
  // the in-memory LRU, so a restarted server warms itself as traffic flows).
  if (store_) {
    if (auto fromStore = store_->load(key)) {
      cache_.insert(key, fromStore);
      return respondHit(std::move(fromStore), true);
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  // Single-flight: identical request already compiling → join its flight.
  if (auto it = inflight_.find(key.canonical); it != inflight_.end()) {
    dedupJoins_.fetch_add(1, std::memory_order_relaxed);
    Flight::Waiter waiter;
    waiter.id = std::move(request.id);
    waiter.deduped = true;
    waiter.deadlineMillis = request.deadlineMillis;
    waiter.submitted = start;
    it->second->waiters.push_back(std::move(waiter));
    return it->second->waiters.back().promise.get_future();
  }

  auto flight = std::make_shared<Flight>();
  Flight::Waiter waiter;
  waiter.id = request.id;
  waiter.deadlineMillis = request.deadlineMillis;
  waiter.submitted = start;
  flight->waiters.push_back(std::move(waiter));
  std::future<CompileResponse> future = flight->waiters.back().promise.get_future();
  inflight_.emplace(key.canonical, flight);

  // Bounded admission: block the submitter, not the heap. The bound is
  // global across tenants; fairness is enforced at the drain, not here.
  notFull_.wait(lock, [&] { return queuedTotal_ < config_.queueCapacity || stopping_; });
  auto [it, inserted] = tenants_.try_emplace(request.tenant);
  if (inserted) rrOrder_.push_back(request.tenant);
  ++it->second.submitted;
  it->second.jobs.push_back(Job{std::move(key), std::move(request), std::move(flight)});
  ++queuedTotal_;
  lock.unlock();
  notEmpty_.notify_one();
  return future;
}

std::vector<CompileResponse> CompileService::compileBatch(std::vector<CompileRequest> requests) {
  std::vector<std::future<CompileResponse>> futures;
  futures.reserve(requests.size());
  for (CompileRequest& r : requests) futures.push_back(submit(std::move(r)));
  std::vector<CompileResponse> responses;
  responses.reserve(futures.size());
  for (auto& f : futures) responses.push_back(f.get());
  return responses;
}

bool CompileService::claimJobLocked(Job& out, std::string& tenant) {
  const std::size_t n = rrOrder_.size();
  for (std::size_t offset = 0; offset < n; ++offset) {
    std::size_t idx = (rrNext_ + offset) % n;
    TenantQueue& t = tenants_[rrOrder_[idx]];
    if (t.jobs.empty()) continue;
    // The fair-share cap: a tenant already holding its quota of workers is
    // skipped, letting the round-robin hand the slot to the next tenant with
    // work. During shutdown the cap is waived so the queue fully drains
    // (every future must become ready).
    if (!stopping_ && config_.tenantInflightCap > 0 && t.inflight >= config_.tenantInflightCap) {
      continue;
    }
    out = std::move(t.jobs.front());
    t.jobs.pop_front();
    ++t.inflight;
    --queuedTotal_;
    tenant = rrOrder_[idx];
    rrNext_ = (idx + 1) % n;
    return true;
  }
  return false;
}

void CompileService::workerLoop() {
  while (true) {
    Job job;
    std::string tenant;
    bool claimed = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      notEmpty_.wait(lock, [&] {
        if (claimJobLocked(job, tenant)) {
          claimed = true;
          return true;
        }
        return stopping_ && queuedTotal_ == 0;
      });
      if (!claimed) return;  // stopping, fully drained
    }
    notFull_.notify_one();
    runJob(job, tenant);
    // Freeing an in-flight slot can make a capped tenant eligible again.
    notEmpty_.notify_all();
  }
}

// Must hold mu_. Runs when the job's waiters have been (or are about to be)
// handed their responses, BEFORE any promise is fulfilled — so a client that
// sees its future ready and immediately snapshots stats() never observes a
// stale inflight count for a finished job.
void CompileService::finishTenantJobLocked(const std::string& tenant) {
  TenantQueue& t = tenants_[tenant];
  if (t.inflight > 0) --t.inflight;
  ++t.completed;
}

void CompileService::runJob(Job& job, const std::string& tenant) {
  Clock::time_point pickup = Clock::now();

  // Pickup-time triage (under the lock): waiters whose per-request deadline
  // already passed while queued — or whose queue time exceeds the service's
  // maxQueueMillis — are resolved with Timeout NOW, so a backlogged server
  // never leaks a future or compiles for clients that gave up. The largest
  // remaining headroom among surviving deadline-carrying waiters becomes the
  // compile's cooperative wall budget.
  std::vector<Flight::Waiter> expired;
  bool anyUnbounded = false;   // some survivor has no deadline
  double maxHeadroom = 0.0;    // millis the most patient survivor will wait
  bool allExpired = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& waiters = job.flight->waiters;
    for (auto it = waiters.begin(); it != waiters.end();) {
      double waited = std::chrono::duration<double, std::milli>(pickup - it->submitted).count();
      bool out = (it->deadlineMillis > 0 && waited >= it->deadlineMillis) ||
                 (config_.maxQueueMillis > 0 && waited >= config_.maxQueueMillis);
      if (out) {
        expired.push_back(std::move(*it));
        it = waiters.erase(it);
        continue;
      }
      if (it->deadlineMillis <= 0) {
        anyUnbounded = true;
      } else {
        maxHeadroom = std::max(maxHeadroom, it->deadlineMillis - waited);
      }
      ++it;
    }
    if (waiters.empty()) {
      // Nobody is listening: retire the flight and skip the compile.
      allExpired = true;
      auto it = inflight_.find(job.key.canonical);
      if (it != inflight_.end() && it->second == job.flight) inflight_.erase(it);
      finishTenantJobLocked(tenant);
    }
  }
  for (Flight::Waiter& w : expired) {
    CompileResponse r;
    r.id = std::move(w.id);
    r.deduped = w.deduped;
    r.millis = millisSince(w.submitted);
    r.error = "request timed out in queue";
    r.errorKind = ErrorKind::Timeout;
    errors_.fetch_add(1, std::memory_order_relaxed);
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    latency_.record(r.millis * 1000.0);
    w.promise.set_value(std::move(r));
  }
  if (allExpired) return;

  if (config_.onCompileStart) config_.onCompileStart(job.request);

  // Chaos crash point: `crash:compile:<N>` aborts the whole worker process
  // here (supervisor restart path); `fail:compile:<N>` turns the compile into
  // an injected failure without the cost of running it.
  if (fault::atPoint("compile") != fault::PointAction::None) {
    std::vector<Flight::Waiter> waiters;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = inflight_.find(job.key.canonical);
      if (it != inflight_.end() && it->second == job.flight) inflight_.erase(it);
      waiters = std::move(job.flight->waiters);
      finishTenantJobLocked(tenant);
    }
    for (Flight::Waiter& w : waiters) {
      CompileResponse r;
      r.id = std::move(w.id);
      r.deduped = w.deduped;
      r.millis = millisSince(w.submitted);
      r.error = "injected fault at point 'compile'";
      r.errorKind = ErrorKind::PassError;
      errors_.fetch_add(1, std::memory_order_relaxed);
      latency_.record(r.millis * 1000.0);
      w.promise.set_value(std::move(r));
    }
    return;
  }

  // Bound the compile by the most patient surviving waiter, unless one of
  // them has no deadline (then the compile must be allowed to finish).
  // Combines with any budget the request itself carries (tighter wins).
  CompileOptions options = job.request.options;
  if (!anyUnbounded && maxHeadroom > 0) {
    if (options.limits.wallBudgetMillis <= 0 ||
        options.limits.wallBudgetMillis > maxHeadroom) {
      options.limits.wallBudgetMillis = maxHeadroom;
    }
  }

  Clock::time_point t0 = Clock::now();
  std::shared_ptr<const CachedResult> result;
  std::string error;
  ErrorKind errorKind = ErrorKind::None;
  std::uint64_t compilesThisJob = 1;
  try {
    if (job.request.tune) {
      // Autotune path: search the pass-parameter space and cache the winner
      // with its configuration memoized alongside the artifact. The combined
      // waiter/request wall budget bounds the whole SEARCH (best-so-far wins
      // on expiry), not just one compile.
      tune::TuneInput input;
      input.source = job.request.source;
      input.entry = job.request.entry;
      input.argSpecs = job.request.args;
      input.base = options;
      tune::TuneOptions topt;
      if (job.request.tuneBudget > 0) topt.budget = job.request.tuneBudget;
      topt.wallBudgetMillis = options.limits.wallBudgetMillis;
      tune::TuneResult tuned = tune::autotune(input, topt);
      tunes_.fetch_add(1, std::memory_order_relaxed);
      // The search ran candidatesTried real compiles; the counter stays an
      // honest count of compileSource calls.
      compilesThisJob = static_cast<std::uint64_t>(
          std::max(1, tuned.report.candidatesTried));
      std::string cCode = tuned.unit.cCode();
      result = std::make_shared<const CachedResult>(
          std::move(tuned.unit), std::move(cCode), tuned.report.best.passSignature(),
          tuned.report.candidatesTried, tuned.report.tunedCycles,
          tuned.report.defaultCycles);
    } else {
      Compiler compiler;  // worker-local: a Compiler instance is single-threaded
      CompiledUnit unit = compiler.compileSource(job.request.source, job.request.entry,
                                                 job.request.args, options);
      std::string cCode = unit.cCode();
      result = std::make_shared<const CachedResult>(std::move(unit), std::move(cCode));
    }
  } catch (const StructuredError& e) {
    error = e.what();
    errorKind = e.kind();
  } catch (const std::bad_alloc&) {
    error = "out of memory";
    errorKind = ErrorKind::ResourceExhausted;
  } catch (const std::exception& e) {
    error = e.what();
    errorKind = ErrorKind::Panic;  // escaped the compiler's own classification
    panics_.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    // Panic containment: a non-standard exception must not kill the worker
    // (the pool has no respawn) or leak the flight's waiters.
    error = "panic: non-standard exception escaped the compiler";
    errorKind = ErrorKind::Panic;
    panics_.fetch_add(1, std::memory_order_relaxed);
  }
  compiles_.fetch_add(compilesThisJob, std::memory_order_relaxed);
  compileMicros_.fetch_add(static_cast<std::uint64_t>(millisSince(t0) * 1000.0),
                           std::memory_order_relaxed);
  if (result) {
    cache_.insert(job.key, result);
    if (!result->degraded.empty())
      degraded_.fetch_add(1, std::memory_order_relaxed);
  }

  // Retire the flight first (under the lock), so later identical submits
  // either hit the cache or start a fresh flight — then fulfill everyone.
  // A slow-but-successful compile is still delivered as success even to
  // waiters whose deadline lapsed mid-compile: the work is done and the
  // result is strictly more useful than a Timeout.
  std::vector<Flight::Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(job.key.canonical);
    if (it != inflight_.end() && it->second == job.flight) inflight_.erase(it);
    waiters = std::move(job.flight->waiters);
    finishTenantJobLocked(tenant);
  }
  for (Flight::Waiter& w : waiters) {
    CompileResponse r;
    r.id = std::move(w.id);
    r.deduped = w.deduped;
    r.millis = millisSince(w.submitted);
    if (result) {
      r.ok = true;
      r.result = result;
    } else {
      r.error = error;
      r.errorKind = errorKind;
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (errorKind == ErrorKind::Timeout) timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    latency_.record(r.millis * 1000.0);
    w.promise.set_value(std::move(r));
  }

  // Write-behind: persist after the waiters have their responses, so store
  // I/O never sits on the request's critical path. Best effort — a failed
  // put is a counted degradation, not an error.
  if (store_ && result) store_->store(job.key, *result);
}

ServiceStats CompileService::stats() const {
  ServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.compiles = compiles_.load(std::memory_order_relaxed);
  s.tunes = tunes_.load(std::memory_order_relaxed);
  s.cacheHits = cacheHits_.load(std::memory_order_relaxed);
  s.storeHits = storeHits_.load(std::memory_order_relaxed);
  s.dedupJoins = dedupJoins_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.panics = panics_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.compileMillis = static_cast<double>(compileMicros_.load(std::memory_order_relaxed)) / 1000.0;
  s.threads = workers_.size();
  s.tenantInflightCap = config_.tenantInflightCap;
  s.cache = cache_.stats();
  s.latency = latency_.snapshot();
  if (store_) {
    s.storeEnabled = true;
    s.store = store_->stats();
  }
  if (config_.isaRegistry) {
    s.isaVersion = config_.isaRegistry->version();
    s.isaReloads = config_.isaRegistry->reloads();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.tenants.reserve(rrOrder_.size());
    for (const std::string& name : rrOrder_) {
      auto it = tenants_.find(name);
      if (it == tenants_.end()) continue;
      TenantStats t;
      t.name = name;
      t.submitted = it->second.submitted;
      t.completed = it->second.completed;
      t.queued = it->second.jobs.size();
      t.inflight = it->second.inflight;
      s.tenants.push_back(std::move(t));
    }
  }
  return s;
}

}  // namespace mat2c::service
