#include "service/compile_service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "support/string_utils.hpp"
#include "tune/tune.hpp"

namespace mat2c::service {

namespace {

using Clock = std::chrono::steady_clock;

double millisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

std::string statsJson(const ServiceStats& stats, double wallMillis) {
  std::ostringstream os;
  char num[64];
  auto fixed = [&](double v) {
    std::snprintf(num, sizeof num, "%.3f", v);
    return std::string(num);
  };
  os << "{\n";
  os << "  \"requests\": " << stats.requests << ",\n";
  os << "  \"compiles\": " << stats.compiles << ",\n";
  os << "  \"tunes\": " << stats.tunes << ",\n";
  os << "  \"cacheHits\": " << stats.cacheHits << ",\n";
  os << "  \"dedupJoins\": " << stats.dedupJoins << ",\n";
  os << "  \"errors\": " << stats.errors << ",\n";
  os << "  \"timeouts\": " << stats.timeouts << ",\n";
  os << "  \"panics\": " << stats.panics << ",\n";
  os << "  \"degraded\": " << stats.degraded << ",\n";
  os << "  \"threads\": " << stats.threads << ",\n";
  os << "  \"compileMillis\": " << fixed(stats.compileMillis) << ",\n";
  os << "  \"cache\": {\"entries\": " << stats.cache.entries
     << ", \"bytes\": " << stats.cache.bytes << ", \"hits\": " << stats.cache.hits
     << ", \"misses\": " << stats.cache.misses << ", \"evictions\": " << stats.cache.evictions
     << ", \"insertions\": " << stats.cache.insertions << "}";
  if (wallMillis >= 0) {
    double rps = wallMillis > 0 ? 1000.0 * static_cast<double>(stats.requests) / wallMillis
                                : 0.0;
    os << ",\n  \"wallMillis\": " << fixed(wallMillis);
    os << ",\n  \"requestsPerSecond\": " << fixed(rps);
  }
  os << "\n}\n";
  return os.str();
}

CompileService::CompileService() : CompileService(Config{}) {}

CompileService::CompileService(const Config& config)
    : config_(config),
      cache_(config.cacheEntries, config.cacheShards) {
  std::size_t n = config_.threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

CompileService::~CompileService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  notEmpty_.notify_all();
  notFull_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<CompileResponse> CompileService::submit(CompileRequest request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Clock::time_point start = Clock::now();
  // Tune requests are keyed without the pass options: the tuned configuration
  // is what the cache stores, not what it is keyed on. Everything downstream
  // (fast path, single-flight, queueing) is shared with plain compiles.
  CacheKey key = request.tune
      ? CacheKey::makeTuned(request.source, request.entry, request.args, request.options.isa)
      : CacheKey::make(request.source, request.entry, request.args, request.options);

  // Fast path: served from cache without touching the queue.
  if (auto cached = cache_.lookup(key)) {
    cacheHits_.fetch_add(1, std::memory_order_relaxed);
    CompileResponse r;
    r.id = std::move(request.id);
    r.ok = true;
    r.cacheHit = true;
    r.result = std::move(cached);
    r.millis = millisSince(start);
    std::promise<CompileResponse> p;
    p.set_value(std::move(r));
    return p.get_future();
  }

  std::unique_lock<std::mutex> lock(mu_);
  // Single-flight: identical request already compiling → join its flight.
  if (auto it = inflight_.find(key.canonical); it != inflight_.end()) {
    dedupJoins_.fetch_add(1, std::memory_order_relaxed);
    Flight::Waiter waiter;
    waiter.id = std::move(request.id);
    waiter.deduped = true;
    waiter.deadlineMillis = request.deadlineMillis;
    waiter.submitted = start;
    it->second->waiters.push_back(std::move(waiter));
    return it->second->waiters.back().promise.get_future();
  }

  auto flight = std::make_shared<Flight>();
  Flight::Waiter waiter;
  waiter.id = request.id;
  waiter.deadlineMillis = request.deadlineMillis;
  waiter.submitted = start;
  flight->waiters.push_back(std::move(waiter));
  std::future<CompileResponse> future = flight->waiters.back().promise.get_future();
  inflight_.emplace(key.canonical, flight);

  // Bounded queue: block the submitter, not the heap.
  notFull_.wait(lock, [&] { return queue_.size() < config_.queueCapacity || stopping_; });
  queue_.push_back(Job{std::move(key), std::move(request), std::move(flight)});
  lock.unlock();
  notEmpty_.notify_one();
  return future;
}

std::vector<CompileResponse> CompileService::compileBatch(std::vector<CompileRequest> requests) {
  std::vector<std::future<CompileResponse>> futures;
  futures.reserve(requests.size());
  for (CompileRequest& r : requests) futures.push_back(submit(std::move(r)));
  std::vector<CompileResponse> responses;
  responses.reserve(futures.size());
  for (auto& f : futures) responses.push_back(f.get());
  return responses;
}

void CompileService::workerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      notEmpty_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    notFull_.notify_one();
    runJob(job);
  }
}

void CompileService::runJob(Job& job) {
  Clock::time_point pickup = Clock::now();

  // Pickup-time triage (under the lock): waiters whose per-request deadline
  // already passed while queued — or whose queue time exceeds the service's
  // maxQueueMillis — are resolved with Timeout NOW, so a backlogged server
  // never leaks a future or compiles for clients that gave up. The largest
  // remaining headroom among surviving deadline-carrying waiters becomes the
  // compile's cooperative wall budget.
  std::vector<Flight::Waiter> expired;
  bool anyUnbounded = false;   // some survivor has no deadline
  double maxHeadroom = 0.0;    // millis the most patient survivor will wait
  bool allExpired = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& waiters = job.flight->waiters;
    for (auto it = waiters.begin(); it != waiters.end();) {
      double waited = std::chrono::duration<double, std::milli>(pickup - it->submitted).count();
      bool out = (it->deadlineMillis > 0 && waited >= it->deadlineMillis) ||
                 (config_.maxQueueMillis > 0 && waited >= config_.maxQueueMillis);
      if (out) {
        expired.push_back(std::move(*it));
        it = waiters.erase(it);
        continue;
      }
      if (it->deadlineMillis <= 0) {
        anyUnbounded = true;
      } else {
        maxHeadroom = std::max(maxHeadroom, it->deadlineMillis - waited);
      }
      ++it;
    }
    if (waiters.empty()) {
      // Nobody is listening: retire the flight and skip the compile.
      allExpired = true;
      auto it = inflight_.find(job.key.canonical);
      if (it != inflight_.end() && it->second == job.flight) inflight_.erase(it);
    }
  }
  for (Flight::Waiter& w : expired) {
    CompileResponse r;
    r.id = std::move(w.id);
    r.deduped = w.deduped;
    r.millis = millisSince(w.submitted);
    r.error = "request timed out in queue";
    r.errorKind = ErrorKind::Timeout;
    errors_.fetch_add(1, std::memory_order_relaxed);
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    w.promise.set_value(std::move(r));
  }
  if (allExpired) return;

  if (config_.onCompileStart) config_.onCompileStart(job.request);

  // Bound the compile by the most patient surviving waiter, unless one of
  // them has no deadline (then the compile must be allowed to finish).
  // Combines with any budget the request itself carries (tighter wins).
  CompileOptions options = job.request.options;
  if (!anyUnbounded && maxHeadroom > 0) {
    if (options.limits.wallBudgetMillis <= 0 ||
        options.limits.wallBudgetMillis > maxHeadroom) {
      options.limits.wallBudgetMillis = maxHeadroom;
    }
  }

  Clock::time_point t0 = Clock::now();
  std::shared_ptr<const CachedResult> result;
  std::string error;
  ErrorKind errorKind = ErrorKind::None;
  std::uint64_t compilesThisJob = 1;
  try {
    if (job.request.tune) {
      // Autotune path: search the pass-parameter space and cache the winner
      // with its configuration memoized alongside the artifact. The combined
      // waiter/request wall budget bounds the whole SEARCH (best-so-far wins
      // on expiry), not just one compile.
      tune::TuneInput input;
      input.source = job.request.source;
      input.entry = job.request.entry;
      input.argSpecs = job.request.args;
      input.base = options;
      tune::TuneOptions topt;
      if (job.request.tuneBudget > 0) topt.budget = job.request.tuneBudget;
      topt.wallBudgetMillis = options.limits.wallBudgetMillis;
      tune::TuneResult tuned = tune::autotune(input, topt);
      tunes_.fetch_add(1, std::memory_order_relaxed);
      // The search ran candidatesTried real compiles; the counter stays an
      // honest count of compileSource calls.
      compilesThisJob = static_cast<std::uint64_t>(
          std::max(1, tuned.report.candidatesTried));
      std::string cCode = tuned.unit.cCode();
      result = std::make_shared<const CachedResult>(
          std::move(tuned.unit), std::move(cCode), tuned.report.best.passSignature(),
          tuned.report.candidatesTried, tuned.report.tunedCycles,
          tuned.report.defaultCycles);
    } else {
      Compiler compiler;  // worker-local: a Compiler instance is single-threaded
      CompiledUnit unit = compiler.compileSource(job.request.source, job.request.entry,
                                                 job.request.args, options);
      std::string cCode = unit.cCode();
      result = std::make_shared<const CachedResult>(std::move(unit), std::move(cCode));
    }
  } catch (const StructuredError& e) {
    error = e.what();
    errorKind = e.kind();
  } catch (const std::bad_alloc&) {
    error = "out of memory";
    errorKind = ErrorKind::ResourceExhausted;
  } catch (const std::exception& e) {
    error = e.what();
    errorKind = ErrorKind::Panic;  // escaped the compiler's own classification
    panics_.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    // Panic containment: a non-standard exception must not kill the worker
    // (the pool has no respawn) or leak the flight's waiters.
    error = "panic: non-standard exception escaped the compiler";
    errorKind = ErrorKind::Panic;
    panics_.fetch_add(1, std::memory_order_relaxed);
  }
  compiles_.fetch_add(compilesThisJob, std::memory_order_relaxed);
  compileMicros_.fetch_add(static_cast<std::uint64_t>(millisSince(t0) * 1000.0),
                           std::memory_order_relaxed);
  if (result) {
    cache_.insert(job.key, result);
    if (!result->unit.optimizationReport().degraded.empty())
      degraded_.fetch_add(1, std::memory_order_relaxed);
  }

  // Retire the flight first (under the lock), so later identical submits
  // either hit the cache or start a fresh flight — then fulfill everyone.
  // A slow-but-successful compile is still delivered as success even to
  // waiters whose deadline lapsed mid-compile: the work is done and the
  // result is strictly more useful than a Timeout.
  std::vector<Flight::Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(job.key.canonical);
    if (it != inflight_.end() && it->second == job.flight) inflight_.erase(it);
    waiters = std::move(job.flight->waiters);
  }
  for (Flight::Waiter& w : waiters) {
    CompileResponse r;
    r.id = std::move(w.id);
    r.deduped = w.deduped;
    r.millis = millisSince(w.submitted);
    if (result) {
      r.ok = true;
      r.result = result;
    } else {
      r.error = error;
      r.errorKind = errorKind;
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (errorKind == ErrorKind::Timeout) timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    w.promise.set_value(std::move(r));
  }
}

ServiceStats CompileService::stats() const {
  ServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.compiles = compiles_.load(std::memory_order_relaxed);
  s.tunes = tunes_.load(std::memory_order_relaxed);
  s.cacheHits = cacheHits_.load(std::memory_order_relaxed);
  s.dedupJoins = dedupJoins_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.panics = panics_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.compileMillis = static_cast<double>(compileMicros_.load(std::memory_order_relaxed)) / 1000.0;
  s.threads = workers_.size();
  s.cache = cache_.stats();
  return s;
}

}  // namespace mat2c::service
