#include "lower/lowering.hpp"

#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "sema/builtins.hpp"

namespace mat2c::lower {

using namespace ast;
using sema::Dim;
using sema::Elem;
using sema::Shape;
using sema::Type;
using lir::BinOp;
using lir::ExprPtr;
using lir::Scalar;
using lir::StmtPtr;
using lir::UnOp;
using lir::VType;

namespace {

Scalar lirElem(Elem e) { return e == Elem::Complex ? Scalar::C64 : Scalar::F64; }

/// True when the AST node is an elementwise-fusable operation over its
/// operands (the paper's vectorizer fuses exactly these per statement).
bool isElementwiseCall(const std::string& name) {
  auto info = sema::findCompilableBuiltin(name);
  if (!info) return false;
  switch (info->kind) {
    case sema::BuiltinKind::ElemUnary:
    case sema::BuiltinKind::ElemBinary:
    case sema::BuiltinKind::ComplexPart:
      return true;
    case sema::BuiltinKind::MinMax:
      return true;  // only the 2-argument form; checked at use
    default:
      return false;
  }
}

class Lowerer {
 public:
  Lowerer(const Program& program, const LowerOptions& options, DiagnosticEngine& diags)
      : program_(program), opts_(options), diags_(diags), types_(program, diags) {}

  lir::Function lower(const std::string& entry, const std::vector<sema::ArgSpec>& args);

 private:
  [[noreturn]] void fail(SourceLoc loc, std::string msg) { diags_.fatal(loc, std::move(msg)); }

  /// Bounds checks on every array access (MATLAB-Coder-style runtime).
  bool emitChecks() const { return opts_.checks(); }
  /// Per-op temporaries instead of fused loops.
  bool materializePerOp() const { return !opts_.fuse(); }

  // -- naming / emission ------------------------------------------------------
  std::string fresh(const std::string& hint) {
    return "t" + std::to_string(nameCounter_++) + "_" + hint;
  }
  void emit(StmtPtr s) { cur_->push_back(std::move(s)); }

  // -- scopes ------------------------------------------------------------------
  struct Binding {
    Type type;            // final (fixpoint) type driving storage
    std::string storage;  // LIR scalar or array name
    bool induction = false;
    std::string inductionVar;  // i64 counter (valid when induction)
    /// When the variable provably holds an integer affine function of
    /// induction variables (base = (j-1)*8), this is that value as an i64
    /// expression — index analysis sees through the temp.
    lir::ExprPtr intAlias;
  };
  struct Scope {
    sema::Env env;
    std::map<std::string, Binding> vars;
  };
  Scope& scope() { return scopes_.back(); }
  sema::Env& env() { return scope().env; }

  Binding* findBinding(const std::string& name) {
    auto it = scope().vars.find(name);
    return it == scope().vars.end() ? nullptr : &it->second;
  }

  VType bindingVType(const Binding& b) const {
    return {lirElem(b.type.elem), 1};
  }

  /// Declares storage for every variable of the frame up front (final
  /// fixpoint types), so assignments inside control flow target stable
  /// storage. Params/outs are bound by the caller beforehand.
  void declareFrameVars(const std::vector<ast::StmtPtr>& body, SourceLoc loc);

  // -- type / const queries -----------------------------------------------------
  Type typeOf(const Expr& e) { return types_.inferExpr(e, env()); }
  std::optional<double> constOf(const Expr& e) { return types_.constValue(e, env()); }

  std::int64_t knownNumel(const Shape& s, SourceLoc loc, const char* what) {
    if (!s.isKnown())
      fail(loc, std::string(what) +
                    " has a dynamic shape — the specializing compiler needs static shapes"
                    " (check the entry argument specs)");
    return s.numel();
  }

  // -- expression lowering -------------------------------------------------------
  ExprPtr scalarExpr(const Expr& e);
  ExprPtr lowerCond(const Expr& e);
  ExprPtr coerceTo(ExprPtr v, Scalar want, SourceLoc loc);
  std::pair<ExprPtr, ExprPtr> promotePair(ExprPtr a, ExprPtr b, Scalar& outElem,
                                          SourceLoc loc);
  ExprPtr scalarBinary(const Binary& e);
  ExprPtr scalarBuiltinCall(const std::string& name, const CallIndex& call);
  ExprPtr scalarIndexRead(const Binding& b, const CallIndex& call);

  /// 1-based MATLAB index value as an i64 expression, preserving affine
  /// structure (induction vars stay i64) so the vectorizer can see strides.
  ExprPtr indexValueI64(const Expr& e, std::optional<std::int64_t> endExtent);
  /// Pure (no emission) attempt to express a scalar AST expression as an
  /// affine i64 expression over induction variables; powers integer-alias
  /// tracking for index temporaries like base = (j-1)*8.
  ExprPtr tryIntAffine(const Expr& e);
  /// Drops every integer alias in the current scope (conservative barrier
  /// around data-dependent control flow).
  void clearIntAliases() {
    for (auto& [name, b] : scope().vars) b.intAlias.reset();
  }
  /// 0-based linear index for element access into an array of shape `shape`.
  ExprPtr linearIndex(const std::vector<ast::ExprPtr>& args, const Shape& shape,
                      SourceLoc loc);

  void emitBoundsCheck(const std::string& array, const ExprPtr& index) {
    if (emitChecks()) emit(lir::boundsCheck(array, index->clone()));
  }

  // -- tensor lowering -------------------------------------------------------------
  struct TensorRef {
    std::string storage;
    Type type;
  };

  /// Materializes any tensor-valued expression into storage, returning the
  /// array name (existing variable storage when the expression is a plain
  /// variable reference of matching shape).
  TensorRef materializeTensor(const Expr& e);
  /// Writes `rhs` (tensor-typed) into `dst` (array storage of `dstType`).
  void emitTensorAssign(const std::string& dst, const Type& dstType, const Expr& rhs);

  /// One fused (Proposed) or per-op (CoderLike) loop writing `rhs` into dst.
  void emitElementwiseLoop(const std::string& dst, const Type& dstType, const Expr& rhs);
  /// Element generator for the loop body: expression for element `idxVar`.
  /// Proposed style recurses through the whole elementwise tree (fusion);
  /// CoderLike materializes every non-leaf operand first (per-op temps).
  ExprPtr scalarize(const Expr& e, const std::string& idxVar, const Shape& loopShape);
  ExprPtr scalarizeChild(const Expr& e, const std::string& idxVar, const Shape& loopShape);
  /// Hoists a loop-invariant scalar into a temp before the loop.
  ExprPtr hoistScalar(const Expr& e);
  /// CoderLike: one BoundsCheck per Load in `e`, appended to `out`.
  void appendLoadChecks(const lir::Expr& e, std::vector<StmtPtr>& out);

  void emitFill(const std::string& dst, std::int64_t numel, ExprPtr value);
  void emitCopyLoop(const std::string& dst, const std::string& src, std::int64_t numel,
                    Scalar dstElem, Scalar srcElem, bool conj = false);
  void emitEye(const std::string& dst, std::int64_t rows, std::int64_t cols);
  void emitTranspose(const std::string& dst, const Type& dstType, const Transpose& e);
  void emitMatMul(const std::string& dst, const Type& dstType, const Binary& e);
  void emitRangeFill(const std::string& dst, const Range& e, std::int64_t count);
  void emitMatrixLit(const std::string& dst, const Type& dstType, const MatrixLit& e);
  void emitSliceRead(const std::string& dst, const Type& dstType, const CallIndex& e,
                     const Binding& base);
  void emitColumnReduction(const std::string& dst, const std::string& name,
                           const CallIndex& call, const Type& argType);
  /// fft/ifft of a vector (or column-wise of a matrix) into dst: radix-2
  /// DIT loop nest for power-of-two lengths, O(n^2) DFT otherwise.
  void emitFft(const std::string& dst, const Type& dstType, const CallIndex& call,
               bool inverse);

  /// Reductions (sum/prod/mean/dot/norm/min/max over a vector) to a scalar
  /// LIR variable; returns a VarRef to it.
  ExprPtr emitReductionToScalar(const std::string& name, const CallIndex& call);

  // -- slices --------------------------------------------------------------------
  struct SliceSel {
    ExprPtr start;       // 0-based i64 start
    std::int64_t count;  // static element count
    std::int64_t step;   // element step (may be negative)
  };
  SliceSel resolveSlice(const Expr& arg, Dim extent, SourceLoc loc);

  // -- calls ----------------------------------------------------------------------
  std::vector<TensorRef> inlineCall(const Function& callee,
                                    const std::vector<ast::ExprPtr>& args, std::size_t nOut,
                                    SourceLoc loc);

  // -- statements -------------------------------------------------------------------
  void lowerStmts(const std::vector<ast::StmtPtr>& body);
  void lowerStmt(const Stmt& s);
  void lowerAssign(const Assign& s);
  void lowerScalarAssignTo(Binding& b, const Expr& rhs);
  void lowerIndexedAssign(const LValue& target, const Expr& rhs);
  void lowerFor(const For& s);
  void lowerIf(const If& s);
  void lowerWhile(const While& s);
  void lowerSwitch(const Switch& s);

  std::string declareArray(const std::string& hint, Scalar elem, std::int64_t rows,
                           std::int64_t cols) {
    std::string name = fresh(hint);
    fn_.arrays.push_back({name, elem, rows, cols});
    if (materializePerOp()) emit(lir::allocMark(name));
    return name;
  }

  const Program& program_;
  LowerOptions opts_;
  DiagnosticEngine& diags_;
  sema::TypeInference types_;
  lir::Function fn_;
  std::vector<StmtPtr>* cur_ = nullptr;
  std::vector<Scope> scopes_;
  std::vector<std::optional<std::int64_t>> endExtentStack_;
  int nameCounter_ = 0;
  int inlineDepth_ = 0;
};

// ---------------------------------------------------------------------------
// Frame setup
// ---------------------------------------------------------------------------

/// Does `body` ever assign to `name` (used to decide pass-by-alias inlining)?
bool assignsTo(const std::vector<ast::StmtPtr>& body, const std::string& name);

bool stmtAssignsTo(const Stmt& s, const std::string& name) {
  switch (s.kind) {
    case NodeKind::Assign: {
      const auto& a = static_cast<const Assign&>(s);
      for (const auto& t : a.targets) {
        if (t.name == name) return true;
      }
      return false;
    }
    case NodeKind::If: {
      const auto& i = static_cast<const If&>(s);
      for (const auto& b : i.branches) {
        if (assignsTo(b.body, name)) return true;
      }
      return assignsTo(i.elseBody, name);
    }
    case NodeKind::For: {
      const auto& f = static_cast<const For&>(s);
      return f.var == name || assignsTo(f.body, name);
    }
    case NodeKind::While:
      return assignsTo(static_cast<const While&>(s).body, name);
    case NodeKind::Switch: {
      const auto& sw = static_cast<const Switch&>(s);
      for (const auto& c : sw.cases) {
        if (assignsTo(c.body, name)) return true;
      }
      return assignsTo(sw.otherwise, name);
    }
    default:
      return false;
  }
}

bool assignsTo(const std::vector<ast::StmtPtr>& body, const std::string& name) {
  for (const auto& s : body) {
    if (stmtAssignsTo(*s, name)) return true;
  }
  return false;
}

void Lowerer::declareFrameVars(const std::vector<ast::StmtPtr>& body, SourceLoc loc) {
  sema::Env final = env();
  types_.processBlock(body, final);
  for (const auto& [name, type] : final.vars) {
    if (findBinding(name)) continue;  // params/outs already bound
    if (type.isScalar()) {
      std::string storage = fresh(name);
      emit(lir::declScalar(storage, {lirElem(type.elem), 1}));
      scope().vars[name] = Binding{type, storage, false, {}, {}};
    } else {
      std::int64_t n = knownNumel(type.shape, loc, ("variable '" + name + "'").c_str());
      (void)n;
      std::string storage = fresh(name);
      fn_.arrays.push_back({storage, lirElem(type.elem), type.shape.rows.extent(),
                            type.shape.cols.extent()});
      scope().vars[name] = Binding{type, storage, false, {}, {}};
    }
  }
}

lir::Function Lowerer::lower(const std::string& entry, const std::vector<sema::ArgSpec>& args) {
  const Function* fnAst = program_.findFunction(entry);
  if (!fnAst) fail({}, "entry function '" + entry + "' not found");
  if (args.size() != fnAst->params.size())
    fail(fnAst->loc, "entry '" + entry + "' expects " + std::to_string(fnAst->params.size()) +
                         " arguments, got " + std::to_string(args.size()));

  fn_.name = entry;
  scopes_.emplace_back();
  cur_ = &fn_.body;

  // Parameters.
  for (std::size_t i = 0; i < args.size(); ++i) {
    const Type& t = args[i].type;
    const std::string& name = fnAst->params[i];
    lir::Param p;
    p.name = name;
    p.elem = lirElem(t.elem);
    if (t.isScalar()) {
      p.isArray = false;
    } else {
      std::int64_t n = knownNumel(t.shape, fnAst->loc, "entry argument");
      (void)n;
      p.isArray = true;
      p.rows = t.shape.rows.extent();
      p.cols = t.shape.cols.extent();
    }
    fn_.params.push_back(p);
    env().vars[name] = t;
    scope().vars[name] = Binding{t, name, false, {}, {}};
  }

  // Outputs: fixpoint types decide shape/element.
  sema::Env final = env();
  types_.processBlock(fnAst->body, final);
  for (const auto& outName : fnAst->outs) {
    auto it = final.vars.find(outName);
    if (it == final.vars.end())
      fail(fnAst->loc, "output '" + outName + "' is never assigned");
    const Type& t = it->second;
    bool shadowsParam = findBinding(outName) != nullptr;
    std::string storage = shadowsParam ? outName + "_out" : outName;
    lir::Param p;
    p.name = storage;
    p.elem = lirElem(t.elem);
    if (!t.isScalar()) {
      knownNumel(t.shape, fnAst->loc, ("output '" + outName + "'").c_str());
      p.isArray = true;
      p.rows = t.shape.rows.extent();
      p.cols = t.shape.cols.extent();
    }
    fn_.outs.push_back(p);
    if (shadowsParam) {
      // In-place style `function x = f(x, ...)`: copy the input, rebind.
      Binding& in = *findBinding(outName);
      if (p.isArray) {
        emitCopyLoop(storage, in.storage, t.shape.numel(), p.elem,
                     lirElem(in.type.elem));
      } else {
        emit(lir::assign(storage, coerceTo(lir::varRef(in.storage, bindingVType(in)),
                                           p.elem, fnAst->loc)));
      }
    }
    scope().vars[outName] = Binding{t, storage, false, {}, {}};
  }

  declareFrameVars(fnAst->body, fnAst->loc);
  lowerStmts(fnAst->body);

  scopes_.pop_back();
  auto problems = lir::verify(fn_);
  if (!problems.empty()) {
    std::string msg = "internal lowering error: " + problems.front();
    fail(fnAst->loc, msg);
  }
  return std::move(fn_);
}

// ---------------------------------------------------------------------------
// Scalar expressions
// ---------------------------------------------------------------------------

ExprPtr Lowerer::coerceTo(ExprPtr v, Scalar want, SourceLoc loc) {
  if (v->type.scalar == want) return v;
  if (want == Scalar::C64) return lir::unary(UnOp::ToC64, std::move(v), VType::c64());
  if (want == Scalar::F64) {
    if (v->type.scalar == Scalar::B1 || v->type.scalar == Scalar::I64)
      return lir::unary(UnOp::ToF64, std::move(v), VType::f64());
    fail(loc, "cannot convert a complex value to real implicitly");
  }
  if (want == Scalar::I64) return lir::unary(UnOp::ToI64, std::move(v), VType::i64());
  fail(loc, "unsupported conversion");
}

std::pair<ExprPtr, ExprPtr> Lowerer::promotePair(ExprPtr a, ExprPtr b, Scalar& outElem,
                                                 SourceLoc loc) {
  bool cplx = a->type.scalar == Scalar::C64 || b->type.scalar == Scalar::C64;
  outElem = cplx ? Scalar::C64 : Scalar::F64;
  return {coerceTo(std::move(a), outElem, loc), coerceTo(std::move(b), outElem, loc)};
}

ExprPtr Lowerer::lowerCond(const Expr& e) {
  if (e.kind == NodeKind::Binary) {
    const auto& b = static_cast<const Binary&>(e);
    auto cmp = [&](BinOp op) {
      ExprPtr lhs = scalarExpr(*b.lhs);
      ExprPtr rhs = scalarExpr(*b.rhs);
      Scalar elem;
      auto [l, r] = promotePair(std::move(lhs), std::move(rhs), elem, e.loc);
      return lir::binary(op, std::move(l), std::move(r), VType::b1());
    };
    switch (b.op) {
      case BinaryOp::Eq: return cmp(BinOp::Eq);
      case BinaryOp::Ne: return cmp(BinOp::Ne);
      case BinaryOp::Lt: return cmp(BinOp::Lt);
      case BinaryOp::Le: return cmp(BinOp::Le);
      case BinaryOp::Gt: return cmp(BinOp::Gt);
      case BinaryOp::Ge: return cmp(BinOp::Ge);
      case BinaryOp::And:
      case BinaryOp::AndAnd:
        return lir::binary(BinOp::And, lowerCond(*b.lhs), lowerCond(*b.rhs), VType::b1());
      case BinaryOp::Or:
      case BinaryOp::OrOr:
        return lir::binary(BinOp::Or, lowerCond(*b.lhs), lowerCond(*b.rhs), VType::b1());
      default:
        break;
    }
  }
  if (e.kind == NodeKind::Unary) {
    const auto& u = static_cast<const Unary&>(e);
    if (u.op == UnaryOp::Not)
      return lir::unary(UnOp::Not, lowerCond(*u.operand), VType::b1());
  }
  Type t = typeOf(e);
  if (!t.isScalar()) fail(e.loc, "condition must be scalar in compiled code");
  ExprPtr v = scalarExpr(e);
  return lir::binary(BinOp::Ne, std::move(v), lir::constF(0.0), VType::b1());
}

ExprPtr Lowerer::indexValueI64(const Expr& e, std::optional<std::int64_t> endExtent) {
  switch (e.kind) {
    case NodeKind::NumberLit: {
      const auto& n = static_cast<const NumberLit&>(e);
      if (!n.imaginary && n.value == std::floor(n.value))
        return lir::constI(static_cast<std::int64_t>(n.value));
      break;
    }
    case NodeKind::End:
      if (!endExtent) fail(e.loc, "'end' used where the extent is unknown");
      return lir::constI(*endExtent);
    case NodeKind::Ident: {
      const auto& id = static_cast<const Ident&>(e);
      if (Binding* b = findBinding(id.name)) {
        if (b->induction) return lir::varRef(b->inductionVar, VType::i64());
        if (b->intAlias) return b->intAlias->clone();
        auto cv = constOf(e);
        if (cv && *cv == std::floor(*cv)) return lir::constI(static_cast<std::int64_t>(*cv));
        // Dynamic scalar used as an index.
        return lir::unary(UnOp::ToI64, scalarExpr(e), VType::i64());
      }
      break;
    }
    case NodeKind::Unary: {
      const auto& u = static_cast<const Unary&>(e);
      if (u.op == UnaryOp::Neg) {
        ExprPtr v = indexValueI64(*u.operand, endExtent);
        return lir::binary(BinOp::Sub, lir::constI(0), std::move(v), VType::i64());
      }
      break;
    }
    case NodeKind::Binary: {
      const auto& b = static_cast<const Binary&>(e);
      BinOp op;
      switch (b.op) {
        case BinaryOp::Add: op = BinOp::Add; break;
        case BinaryOp::Sub: op = BinOp::Sub; break;
        case BinaryOp::MatMul:
        case BinaryOp::ElemMul: op = BinOp::Mul; break;
        default: op = BinOp::Add; goto fallback;
      }
      return lir::binary(op, indexValueI64(*b.lhs, endExtent),
                         indexValueI64(*b.rhs, endExtent), VType::i64());
    }
    fallback:
    default:
      break;
  }
  // General path: lower as f64 and truncate. `end` inside the expression
  // resolves against the pushed extent.
  endExtentStack_.push_back(endExtent);
  ExprPtr v = scalarExpr(e);
  endExtentStack_.pop_back();
  return lir::unary(UnOp::ToI64, std::move(v), VType::i64());
}

ExprPtr Lowerer::tryIntAffine(const Expr& e) {
  switch (e.kind) {
    case NodeKind::NumberLit: {
      const auto& n = static_cast<const NumberLit&>(e);
      if (!n.imaginary && n.value == std::floor(n.value))
        return lir::constI(static_cast<std::int64_t>(n.value));
      return nullptr;
    }
    case NodeKind::Ident: {
      const auto& id = static_cast<const Ident&>(e);
      Binding* b = findBinding(id.name);
      if (!b) return nullptr;
      if (b->induction) return lir::varRef(b->inductionVar, VType::i64());
      if (b->intAlias) return b->intAlias->clone();
      auto cv = constOf(e);
      if (cv && *cv == std::floor(*cv)) return lir::constI(static_cast<std::int64_t>(*cv));
      return nullptr;
    }
    case NodeKind::Unary: {
      const auto& u = static_cast<const Unary&>(e);
      if (u.op == UnaryOp::Plus) return tryIntAffine(*u.operand);
      if (u.op == UnaryOp::Neg) {
        ExprPtr v = tryIntAffine(*u.operand);
        if (!v) return nullptr;
        return lir::binary(BinOp::Sub, lir::constI(0), std::move(v), VType::i64());
      }
      return nullptr;
    }
    case NodeKind::Binary: {
      const auto& b = static_cast<const Binary&>(e);
      BinOp op;
      switch (b.op) {
        case BinaryOp::Add: op = BinOp::Add; break;
        case BinaryOp::Sub: op = BinOp::Sub; break;
        case BinaryOp::ElemMul:
        case BinaryOp::MatMul: op = BinOp::Mul; break;
        default: return nullptr;
      }
      ExprPtr lhs = tryIntAffine(*b.lhs);
      ExprPtr rhs = tryIntAffine(*b.rhs);
      if (!lhs || !rhs) return nullptr;
      ExprPtr r = lir::binary(op, std::move(lhs), std::move(rhs), VType::i64());
      return lir::affineOf(*r).ok ? std::move(r) : nullptr;
    }
    default:
      return nullptr;
  }
}

ExprPtr Lowerer::linearIndex(const std::vector<ast::ExprPtr>& args, const Shape& shape,
                             SourceLoc loc) {
  if (args.size() == 1) {
    std::optional<std::int64_t> extent;
    if (shape.isKnown()) extent = shape.numel();
    ExprPtr idx = indexValueI64(*args[0], extent);
    return lir::binary(BinOp::Sub, std::move(idx), lir::constI(1), VType::i64());
  }
  if (args.size() != 2) fail(loc, "only 1-D and 2-D indexing are supported");
  std::optional<std::int64_t> rowsExt;
  std::optional<std::int64_t> colsExt;
  if (shape.rows.isKnown()) rowsExt = shape.rows.extent();
  if (shape.cols.isKnown()) colsExt = shape.cols.extent();
  if (!shape.rows.isKnown()) fail(loc, "2-D indexing requires a static row count");
  ExprPtr r = lir::binary(BinOp::Sub, indexValueI64(*args[0], rowsExt), lir::constI(1),
                          VType::i64());
  ExprPtr c = lir::binary(BinOp::Sub, indexValueI64(*args[1], colsExt), lir::constI(1),
                          VType::i64());
  ExprPtr scaled =
      lir::binary(BinOp::Mul, std::move(c), lir::constI(shape.rows.extent()), VType::i64());
  return lir::binary(BinOp::Add, std::move(r), std::move(scaled), VType::i64());
}

ExprPtr Lowerer::scalarIndexRead(const Binding& b, const CallIndex& call) {
  ExprPtr lin = linearIndex(call.args, b.type.shape, call.loc);
  emitBoundsCheck(b.storage, lin);
  return lir::load(b.storage, std::move(lin), {lirElem(b.type.elem), 1});
}

ExprPtr Lowerer::scalarBinary(const Binary& e) {
  switch (e.op) {
    case BinaryOp::Eq: case BinaryOp::Ne: case BinaryOp::Lt: case BinaryOp::Le:
    case BinaryOp::Gt: case BinaryOp::Ge: case BinaryOp::And: case BinaryOp::Or:
    case BinaryOp::AndAnd: case BinaryOp::OrOr:
      return lir::unary(UnOp::ToF64, lowerCond(e), VType::f64());
    default:
      break;
  }
  ExprPtr lhs = scalarExpr(*e.lhs);
  ExprPtr rhs = scalarExpr(*e.rhs);
  Scalar elem;
  auto [a, b] = promotePair(std::move(lhs), std::move(rhs), elem, e.loc);
  VType vt{elem, 1};
  switch (e.op) {
    case BinaryOp::Add: return lir::binary(BinOp::Add, std::move(a), std::move(b), vt);
    case BinaryOp::Sub: return lir::binary(BinOp::Sub, std::move(a), std::move(b), vt);
    case BinaryOp::ElemMul:
    case BinaryOp::MatMul: return lir::binary(BinOp::Mul, std::move(a), std::move(b), vt);
    case BinaryOp::ElemDiv:
    case BinaryOp::MatDiv: return lir::binary(BinOp::Div, std::move(a), std::move(b), vt);
    case BinaryOp::ElemLeftDiv:
    case BinaryOp::MatLeftDiv:
      return lir::binary(BinOp::Div, std::move(b), std::move(a), vt);
    case BinaryOp::ElemPow:
    case BinaryOp::MatPow: return lir::binary(BinOp::Pow, std::move(a), std::move(b), vt);
    default:
      fail(e.loc, "unsupported scalar binary operator");
  }
}

ExprPtr Lowerer::scalarBuiltinCall(const std::string& name, const CallIndex& call) {
  auto info = sema::findCompilableBuiltin(name);
  if (!info) fail(call.loc, "'" + name + "' is not compilable");

  auto arg = [&](std::size_t i) -> const Expr& { return *call.args.at(i); };
  auto nArgs = call.args.size();

  switch (info->kind) {
    case sema::BuiltinKind::Constant:
      return lir::constF(info->constantValue);

    case sema::BuiltinKind::ElemUnary: {
      ExprPtr v = scalarExpr(arg(0));
      bool cplx = v->type.scalar == Scalar::C64;
      auto un = [&](UnOp op, Scalar out) {
        return lir::unary(op, std::move(v), VType{out, 1});
      };
      if (name == "abs") return un(UnOp::Abs, Scalar::F64);
      if (name == "sqrt") return un(UnOp::Sqrt, cplx ? Scalar::C64 : Scalar::F64);
      if (name == "exp") return un(UnOp::Exp, cplx ? Scalar::C64 : Scalar::F64);
      if (name == "log") return un(UnOp::Log, cplx ? Scalar::C64 : Scalar::F64);
      if (name == "log2") return un(UnOp::Log2, Scalar::F64);
      if (name == "log10") return un(UnOp::Log10, Scalar::F64);
      if (name == "sin") return un(UnOp::Sin, Scalar::F64);
      if (name == "cos") return un(UnOp::Cos, Scalar::F64);
      if (name == "tan") return un(UnOp::Tan, Scalar::F64);
      if (name == "asin") return un(UnOp::Asin, Scalar::F64);
      if (name == "acos") return un(UnOp::Acos, Scalar::F64);
      if (name == "atan") return un(UnOp::Atan, Scalar::F64);
      if (name == "floor") return un(UnOp::Floor, Scalar::F64);
      if (name == "ceil") return un(UnOp::Ceil, Scalar::F64);
      if (name == "round") return un(UnOp::Round, Scalar::F64);
      if (name == "fix") return un(UnOp::Trunc, Scalar::F64);
      if (name == "sign") return un(UnOp::Sign, Scalar::F64);
      fail(call.loc, "unhandled elementwise builtin '" + name + "'");
    }

    case sema::BuiltinKind::ElemBinary: {
      ExprPtr a = coerceTo(scalarExpr(arg(0)), Scalar::F64, call.loc);
      ExprPtr b = coerceTo(scalarExpr(arg(1)), Scalar::F64, call.loc);
      BinOp op = name == "atan2" ? BinOp::Atan2 : (name == "mod" ? BinOp::Mod : BinOp::Rem);
      return lir::binary(op, std::move(a), std::move(b), VType::f64());
    }

    case sema::BuiltinKind::MinMax: {
      if (nArgs == 2) {
        ExprPtr a = coerceTo(scalarExpr(arg(0)), Scalar::F64, call.loc);
        ExprPtr b = coerceTo(scalarExpr(arg(1)), Scalar::F64, call.loc);
        return lir::binary(name == "min" ? BinOp::Min : BinOp::Max, std::move(a),
                           std::move(b), VType::f64());
      }
      return emitReductionToScalar(name, call);
    }

    case sema::BuiltinKind::Reduction:
      return emitReductionToScalar(name, call);

    case sema::BuiltinKind::Query: {
      Type t = typeOf(arg(0));
      knownNumel(t.shape, call.loc, "query argument");
      if (name == "length")
        return lir::constF(static_cast<double>(
            std::max(t.shape.rows.extent(), t.shape.cols.extent())));
      if (name == "numel") return lir::constF(static_cast<double>(t.shape.numel()));
      if (name == "isreal") return lir::constF(t.elem == Elem::Complex ? 0.0 : 1.0);
      if (name == "isempty") return lir::constF(t.shape.numel() == 0 ? 1.0 : 0.0);
      if (name == "size") {
        auto d = constOf(arg(1));
        if (nArgs != 2 || !d) fail(call.loc, "size: scalar use requires a dimension arg");
        double v = *d == 1.0 ? static_cast<double>(t.shape.rows.extent())
                   : *d == 2.0 ? static_cast<double>(t.shape.cols.extent())
                               : 1.0;
        return lir::constF(v);
      }
      fail(call.loc, "unhandled query builtin");
    }

    case sema::BuiltinKind::ComplexPart: {
      if (name == "complex") {
        ExprPtr re = coerceTo(scalarExpr(arg(0)), Scalar::F64, call.loc);
        ExprPtr im = coerceTo(scalarExpr(arg(1)), Scalar::F64, call.loc);
        return lir::binary(BinOp::MakeComplex, std::move(re), std::move(im), VType::c64());
      }
      ExprPtr v = scalarExpr(arg(0));
      bool cplx = v->type.scalar == Scalar::C64;
      if (name == "conj")
        return cplx ? lir::unary(UnOp::Conj, std::move(v), VType::c64()) : std::move(v);
      if (name == "real")
        return cplx ? lir::unary(UnOp::RealPart, std::move(v), VType::f64()) : std::move(v);
      if (name == "imag")
        return cplx ? lir::unary(UnOp::ImagPart, std::move(v), VType::f64())
                    : lir::constF(0.0);
      if (name == "angle") {
        if (!cplx) v = lir::unary(UnOp::ToC64, std::move(v), VType::c64());
        return lir::unary(UnOp::Arg, std::move(v), VType::f64());
      }
      fail(call.loc, "unhandled complex-part builtin");
    }

    case sema::BuiltinKind::Transform: {
      // Scalar context means a length-1 transform, which is the identity
      // (and the ifft 1/m scale is 1): just the first element as c64.
      Type argT = typeOf(arg(0));
      if (argT.isScalar()) return coerceTo(scalarExpr(arg(0)), Scalar::C64, call.loc);
      TensorRef ref = materializeTensor(arg(0));
      emitBoundsCheck(ref.storage, lir::constI(0));
      return coerceTo(lir::load(ref.storage, lir::constI(0),
                                VType{lirElem(ref.type.elem), 1}),
                      Scalar::C64, call.loc);
    }

    case sema::BuiltinKind::Constructor:
      fail(call.loc, "'" + name + "' does not produce a scalar");
  }
  fail(call.loc, "unhandled builtin '" + name + "'");
}

ExprPtr Lowerer::scalarExpr(const Expr& e) {
  switch (e.kind) {
    case NodeKind::NumberLit: {
      const auto& n = static_cast<const NumberLit&>(e);
      if (n.imaginary) return lir::constC(0.0, n.value);
      return lir::constF(n.value);
    }
    case NodeKind::Ident: {
      const auto& id = static_cast<const Ident&>(e);
      if (Binding* b = findBinding(id.name)) {
        if (!b->type.isScalar())
          fail(e.loc, "variable '" + id.name + "' is not scalar here");
        if (b->induction)
          return lir::unary(UnOp::ToF64, lir::varRef(b->inductionVar, VType::i64()),
                            VType::f64());
        return lir::varRef(b->storage, bindingVType(*b));
      }
      if (const Function* fnAst = program_.findFunction(id.name)) {
        auto outs = inlineCall(*fnAst, {}, 1, e.loc);
        if (!outs[0].type.isScalar()) fail(e.loc, "expected a scalar result");
        return lir::varRef(outs[0].storage, {lirElem(outs[0].type.elem), 1});
      }
      if (auto info = sema::findCompilableBuiltin(id.name);
          info && info->kind == sema::BuiltinKind::Constant) {
        return lir::constF(info->constantValue);
      }
      fail(e.loc, "undefined variable or function '" + id.name + "'");
    }
    case NodeKind::Unary: {
      const auto& u = static_cast<const Unary&>(e);
      if (u.op == UnaryOp::Not)
        return lir::unary(UnOp::ToF64, lowerCond(e), VType::f64());
      ExprPtr v = scalarExpr(*u.operand);
      if (u.op == UnaryOp::Plus) return v;
      VType t = v->type;
      if (t.scalar == Scalar::B1) {
        v = coerceTo(std::move(v), Scalar::F64, e.loc);
        t = VType::f64();
      }
      return lir::unary(UnOp::Neg, std::move(v), t);
    }
    case NodeKind::Binary:
      return scalarBinary(static_cast<const Binary&>(e));
    case NodeKind::Transpose: {
      const auto& t = static_cast<const Transpose&>(e);
      ExprPtr v = scalarExpr(*t.operand);
      if (t.conjugate && v->type.scalar == Scalar::C64)
        return lir::unary(UnOp::Conj, std::move(v), VType::c64());
      return v;
    }
    case NodeKind::CallIndex: {
      const auto& call = static_cast<const CallIndex&>(e);
      if (call.base->kind != NodeKind::Ident)
        fail(e.loc, "indexing a computed expression is not supported in compiled code");
      const std::string& name = static_cast<const Ident&>(*call.base).name;
      if (Binding* b = findBinding(name)) return scalarIndexRead(*b, call);
      if (const Function* fnAst = program_.findFunction(name)) {
        auto outs = inlineCall(*fnAst, call.args, 1, e.loc);
        if (!outs[0].type.isScalar()) fail(e.loc, "expected a scalar result");
        return lir::varRef(outs[0].storage, {lirElem(outs[0].type.elem), 1});
      }
      return scalarBuiltinCall(name, call);
    }
    case NodeKind::End:
      if (!endExtentStack_.empty() && endExtentStack_.back()) {
        return lir::constF(static_cast<double>(*endExtentStack_.back()));
      }
      fail(e.loc, "'end' outside of an index expression");
    default:
      fail(e.loc, "expression is not scalar-compilable");
  }
}

// ---------------------------------------------------------------------------
// Tensor lowering
// ---------------------------------------------------------------------------

ExprPtr Lowerer::hoistScalar(const Expr& e) {
  ExprPtr v = scalarExpr(e);
  if (v->kind == lir::ExprKind::ConstF || v->kind == lir::ExprKind::ConstI ||
      v->kind == lir::ExprKind::VarRef) {
    return v;
  }
  std::string tmp = fresh("s");
  VType t = v->type;
  emit(lir::declScalar(tmp, t, std::move(v)));
  return lir::varRef(tmp, t);
}

Lowerer::TensorRef Lowerer::materializeTensor(const Expr& e) {
  Type t = typeOf(e);
  if (t.isScalar()) fail(e.loc, "internal: materializeTensor on a scalar");
  if (e.kind == NodeKind::Ident) {
    const auto& id = static_cast<const Ident&>(e);
    if (Binding* b = findBinding(id.name)) return {b->storage, b->type};
  }
  knownNumel(t.shape, e.loc, "expression");
  std::string tmp = declareArray("tmp", lirElem(t.elem), t.shape.rows.extent(),
                                 t.shape.cols.extent());
  emitTensorAssign(tmp, t, e);
  return {tmp, t};
}

ExprPtr Lowerer::scalarizeChild(const Expr& e, const std::string& idxVar,
                                const Shape& loopShape) {
  Type t = typeOf(e);
  if (t.isScalar()) return hoistScalar(e);
  if (e.kind == NodeKind::Ident) return scalarize(e, idxVar, loopShape);
  if (materializePerOp()) {
    // MATLAB-Coder-style: every intermediate vector op materializes.
    TensorRef ref = materializeTensor(e);
    ExprPtr idx = lir::varRef(idxVar, VType::i64());
    return lir::load(ref.storage, std::move(idx), {lirElem(ref.type.elem), 1});
  }
  return scalarize(e, idxVar, loopShape);
}

ExprPtr Lowerer::scalarize(const Expr& e, const std::string& idxVar, const Shape& loopShape) {
  Type t = typeOf(e);
  if (t.isScalar()) return hoistScalar(e);

  switch (e.kind) {
    case NodeKind::Ident: {
      const auto& id = static_cast<const Ident&>(e);
      Binding* b = findBinding(id.name);
      if (!b) fail(e.loc, "undefined variable '" + id.name + "'");
      if (!(b->type.shape == loopShape))
        fail(e.loc, "shape mismatch in elementwise expression");
      ExprPtr idx = lir::varRef(idxVar, VType::i64());
      return lir::load(b->storage, std::move(idx), {lirElem(b->type.elem), 1});
    }
    case NodeKind::Unary: {
      const auto& u = static_cast<const Unary&>(e);
      ExprPtr v = scalarizeChild(*u.operand, idxVar, loopShape);
      switch (u.op) {
        case UnaryOp::Plus: return v;
        case UnaryOp::Neg: {
          VType vt = v->type;
          if (vt.scalar == Scalar::B1) {
            v = coerceTo(std::move(v), Scalar::F64, e.loc);
            vt = VType::f64();
          }
          return lir::unary(UnOp::Neg, std::move(v), vt);
        }
        case UnaryOp::Not:
          return lir::unary(UnOp::Not, std::move(v), VType::f64());
      }
      fail(e.loc, "bad unary");
    }
    case NodeKind::Binary: {
      const auto& b = static_cast<const Binary&>(e);
      BinOp op;
      bool cmp = false;
      switch (b.op) {
        case BinaryOp::Add: op = BinOp::Add; break;
        case BinaryOp::Sub: op = BinOp::Sub; break;
        case BinaryOp::ElemMul: op = BinOp::Mul; break;
        case BinaryOp::ElemDiv: op = BinOp::Div; break;
        case BinaryOp::ElemLeftDiv: op = BinOp::Div; break;
        case BinaryOp::ElemPow: op = BinOp::Pow; break;
        case BinaryOp::MatMul: op = BinOp::Mul; break;  // scalar side guaranteed
        case BinaryOp::MatDiv: op = BinOp::Div; break;
        case BinaryOp::Eq: op = BinOp::Eq; cmp = true; break;
        case BinaryOp::Ne: op = BinOp::Ne; cmp = true; break;
        case BinaryOp::Lt: op = BinOp::Lt; cmp = true; break;
        case BinaryOp::Le: op = BinOp::Le; cmp = true; break;
        case BinaryOp::Gt: op = BinOp::Gt; cmp = true; break;
        case BinaryOp::Ge: op = BinOp::Ge; cmp = true; break;
        case BinaryOp::And: op = BinOp::And; cmp = true; break;
        case BinaryOp::Or: op = BinOp::Or; cmp = true; break;
        default:
          fail(e.loc, "operator is not elementwise-compilable here");
      }
      ExprPtr lhs = scalarizeChild(*b.lhs, idxVar, loopShape);
      ExprPtr rhs = scalarizeChild(*b.rhs, idxVar, loopShape);
      if (b.op == BinaryOp::ElemLeftDiv) std::swap(lhs, rhs);
      if (cmp) {
        Scalar elem;
        auto [l, r] = promotePair(std::move(lhs), std::move(rhs), elem, e.loc);
        return lir::unary(UnOp::ToF64,
                          lir::binary(op, std::move(l), std::move(r), VType::b1()),
                          VType::f64());
      }
      Scalar elem;
      auto [l, r] = promotePair(std::move(lhs), std::move(rhs), elem, e.loc);
      return lir::binary(op, std::move(l), std::move(r), VType{elem, 1});
    }
    case NodeKind::CallIndex: {
      const auto& call = static_cast<const CallIndex&>(e);
      if (call.base->kind != NodeKind::Ident) break;
      const std::string& name = static_cast<const Ident&>(*call.base).name;
      if (findBinding(name)) break;  // slice read — materialize below
      auto info = sema::findCompilableBuiltin(name);
      if (!info || !isElementwiseCall(name)) break;
      if (info->kind == sema::BuiltinKind::MinMax && call.args.size() != 2) break;

      auto child = [&](std::size_t i) {
        return scalarizeChild(*call.args.at(i), idxVar, loopShape);
      };
      if (info->kind == sema::BuiltinKind::ElemUnary) {
        ExprPtr v = child(0);
        bool cplx = v->type.scalar == Scalar::C64;
        auto un = [&](UnOp op, Scalar out) {
          return lir::unary(op, std::move(v), VType{out, 1});
        };
        if (name == "abs") return un(UnOp::Abs, Scalar::F64);
        if (name == "sqrt") return un(UnOp::Sqrt, cplx ? Scalar::C64 : Scalar::F64);
        if (name == "exp") return un(UnOp::Exp, cplx ? Scalar::C64 : Scalar::F64);
        if (name == "log") return un(UnOp::Log, cplx ? Scalar::C64 : Scalar::F64);
        if (name == "log2") return un(UnOp::Log2, Scalar::F64);
        if (name == "log10") return un(UnOp::Log10, Scalar::F64);
        if (name == "sin") return un(UnOp::Sin, Scalar::F64);
        if (name == "cos") return un(UnOp::Cos, Scalar::F64);
        if (name == "tan") return un(UnOp::Tan, Scalar::F64);
        if (name == "asin") return un(UnOp::Asin, Scalar::F64);
        if (name == "acos") return un(UnOp::Acos, Scalar::F64);
        if (name == "atan") return un(UnOp::Atan, Scalar::F64);
        if (name == "floor") return un(UnOp::Floor, Scalar::F64);
        if (name == "ceil") return un(UnOp::Ceil, Scalar::F64);
        if (name == "round") return un(UnOp::Round, Scalar::F64);
        if (name == "fix") return un(UnOp::Trunc, Scalar::F64);
        if (name == "sign") return un(UnOp::Sign, Scalar::F64);
      }
      if (info->kind == sema::BuiltinKind::ElemBinary) {
        ExprPtr a = coerceTo(child(0), Scalar::F64, e.loc);
        ExprPtr b2 = coerceTo(child(1), Scalar::F64, e.loc);
        BinOp op = name == "atan2" ? BinOp::Atan2 : (name == "mod" ? BinOp::Mod : BinOp::Rem);
        return lir::binary(op, std::move(a), std::move(b2), VType::f64());
      }
      if (info->kind == sema::BuiltinKind::MinMax) {
        ExprPtr a = coerceTo(child(0), Scalar::F64, e.loc);
        ExprPtr b2 = coerceTo(child(1), Scalar::F64, e.loc);
        return lir::binary(name == "min" ? BinOp::Min : BinOp::Max, std::move(a),
                           std::move(b2), VType::f64());
      }
      if (info->kind == sema::BuiltinKind::ComplexPart) {
        if (name == "complex") {
          ExprPtr re = coerceTo(child(0), Scalar::F64, e.loc);
          ExprPtr im = coerceTo(child(1), Scalar::F64, e.loc);
          return lir::binary(BinOp::MakeComplex, std::move(re), std::move(im), VType::c64());
        }
        ExprPtr v = child(0);
        bool cplx = v->type.scalar == Scalar::C64;
        if (name == "conj")
          return cplx ? lir::unary(UnOp::Conj, std::move(v), VType::c64()) : std::move(v);
        if (name == "real")
          return cplx ? lir::unary(UnOp::RealPart, std::move(v), VType::f64()) : std::move(v);
        if (name == "imag")
          return cplx ? lir::unary(UnOp::ImagPart, std::move(v), VType::f64())
                      : lir::constF(0.0);
        if (name == "angle") {
          if (!cplx) v = lir::unary(UnOp::ToC64, std::move(v), VType::c64());
          return lir::unary(UnOp::Arg, std::move(v), VType::f64());
        }
      }
      break;
    }
    default:
      break;
  }

  // Not elementwise at this node: materialize and load.
  TensorRef ref = materializeTensor(e);
  if (!(ref.type.shape == loopShape)) fail(e.loc, "shape mismatch in elementwise expression");
  ExprPtr idx = lir::varRef(idxVar, VType::i64());
  return lir::load(ref.storage, std::move(idx), {lirElem(ref.type.elem), 1});
}

void Lowerer::appendLoadChecks(const lir::Expr& e, std::vector<StmtPtr>& out) {
  if (!emitChecks()) return;
  if (e.kind == lir::ExprKind::Load) out.push_back(lir::boundsCheck(e.name, e.index->clone()));
  if (e.index) appendLoadChecks(*e.index, out);
  if (e.a) appendLoadChecks(*e.a, out);
  if (e.b) appendLoadChecks(*e.b, out);
  if (e.c) appendLoadChecks(*e.c, out);
}

void Lowerer::emitElementwiseLoop(const std::string& dst, const Type& dstType,
                                  const Expr& rhs) {
  std::int64_t n = knownNumel(dstType.shape, rhs.loc, "assignment target");
  std::string idx = fresh("i");
  // Hoists and operand materialization emit into the current block; the loop
  // body itself is just checks + one store.
  std::vector<StmtPtr> body;
  std::vector<StmtPtr>* saved = cur_;
  // Scalarize with cur_ still at the pre-loop block so hoists land there.
  ExprPtr value = scalarize(rhs, idx, dstType.shape);
  value = coerceTo(std::move(value), lirElem(dstType.elem), rhs.loc);
  cur_ = &body;
  appendLoadChecks(*value, body);
  ExprPtr storeIdx = lir::varRef(idx, VType::i64());
  emitBoundsCheck(dst, storeIdx);
  emit(lir::store(dst, std::move(storeIdx), std::move(value)));
  cur_ = saved;
  emit(lir::forLoop(idx, lir::constI(0), lir::constI(n), 1, std::move(body)));
}

void Lowerer::emitFill(const std::string& dst, std::int64_t numel, ExprPtr value) {
  std::string idx = fresh("i");
  std::vector<StmtPtr> body;
  std::vector<StmtPtr>* saved = cur_;
  cur_ = &body;
  ExprPtr storeIdx = lir::varRef(idx, VType::i64());
  emitBoundsCheck(dst, storeIdx);
  emit(lir::store(dst, std::move(storeIdx), std::move(value)));
  cur_ = saved;
  emit(lir::forLoop(idx, lir::constI(0), lir::constI(numel), 1, std::move(body)));
}

void Lowerer::emitCopyLoop(const std::string& dst, const std::string& src, std::int64_t numel,
                           Scalar dstElem, Scalar srcElem, bool conj) {
  if (dst == src) return;
  std::string idx = fresh("i");
  std::vector<StmtPtr> body;
  std::vector<StmtPtr>* saved = cur_;
  cur_ = &body;
  ExprPtr loadIdx = lir::varRef(idx, VType::i64());
  emitBoundsCheck(src, loadIdx);
  ExprPtr v = lir::load(src, std::move(loadIdx), {srcElem, 1});
  if (conj && srcElem == Scalar::C64) v = lir::unary(UnOp::Conj, std::move(v), VType::c64());
  v = coerceTo(std::move(v), dstElem, {});
  ExprPtr storeIdx = lir::varRef(idx, VType::i64());
  emitBoundsCheck(dst, storeIdx);
  emit(lir::store(dst, std::move(storeIdx), std::move(v)));
  cur_ = saved;
  emit(lir::forLoop(idx, lir::constI(0), lir::constI(numel), 1, std::move(body)));
}

void Lowerer::emitEye(const std::string& dst, std::int64_t rows, std::int64_t cols) {
  Scalar dstElem{};
  std::int64_t dn = 0;
  fn_.arrayInfo(dst, dstElem, dn);
  emitFill(dst, rows * cols, coerceTo(lir::constF(0.0), dstElem, {}));
  std::string idx = fresh("i");
  std::vector<StmtPtr> body;
  ExprPtr pos = lir::binary(BinOp::Add, lir::varRef(idx, VType::i64()),
                            lir::binary(BinOp::Mul, lir::varRef(idx, VType::i64()),
                                        lir::constI(rows), VType::i64()),
                            VType::i64());
  body.push_back(lir::store(dst, std::move(pos), coerceTo(lir::constF(1.0), dstElem, {})));
  emit(lir::forLoop(idx, lir::constI(0), lir::constI(std::min(rows, cols)), 1,
                    std::move(body)));
}

void Lowerer::emitTranspose(const std::string& dst, const Type& dstType, const Transpose& e) {
  TensorRef src = materializeTensor(*e.operand);
  std::int64_t srcRows = src.type.shape.rows.extent();
  std::int64_t dstRows = dstType.shape.rows.extent();
  std::int64_t dstCols = dstType.shape.cols.extent();
  bool conj = e.conjugate && src.type.elem == Elem::Complex;

  std::string r = fresh("r");
  std::string c = fresh("c");
  std::vector<StmtPtr> inner;
  std::vector<StmtPtr>* saved = cur_;
  cur_ = &inner;
  // dst(r, c) = src(c, r)
  ExprPtr srcIdx = lir::binary(
      BinOp::Add, lir::varRef(c, VType::i64()),
      lir::binary(BinOp::Mul, lir::varRef(r, VType::i64()), lir::constI(srcRows),
                  VType::i64()),
      VType::i64());
  emitBoundsCheck(src.storage, srcIdx);
  ExprPtr v = lir::load(src.storage, std::move(srcIdx), {lirElem(src.type.elem), 1});
  if (conj) v = lir::unary(UnOp::Conj, std::move(v), VType::c64());
  v = coerceTo(std::move(v), lirElem(dstType.elem), e.loc);
  ExprPtr dstIdx = lir::binary(
      BinOp::Add, lir::varRef(r, VType::i64()),
      lir::binary(BinOp::Mul, lir::varRef(c, VType::i64()), lir::constI(dstRows),
                  VType::i64()),
      VType::i64());
  emitBoundsCheck(dst, dstIdx);
  emit(lir::store(dst, std::move(dstIdx), std::move(v)));
  cur_ = saved;

  std::vector<StmtPtr> outer;
  outer.push_back(lir::forLoop(r, lir::constI(0), lir::constI(dstRows), 1, std::move(inner)));
  emit(lir::forLoop(c, lir::constI(0), lir::constI(dstCols), 1, std::move(outer)));
}

void Lowerer::emitMatMul(const std::string& dst, const Type& dstType, const Binary& e) {
  TensorRef a = materializeTensor(*e.lhs);
  TensorRef b = materializeTensor(*e.rhs);
  std::int64_t m = a.type.shape.rows.extent();
  std::int64_t k = a.type.shape.cols.extent();
  std::int64_t n = b.type.shape.cols.extent();
  Scalar accElem = lirElem(dstType.elem);

  std::string jv = fresh("j");
  std::string iv = fresh("i");
  std::string kv = fresh("k");
  std::string acc = fresh("acc");

  // Innermost: acc += A(i,k) * B(k,j)
  std::vector<StmtPtr> kBody;
  std::vector<StmtPtr>* saved = cur_;
  cur_ = &kBody;
  ExprPtr aIdx = lir::binary(
      BinOp::Add, lir::varRef(iv, VType::i64()),
      lir::binary(BinOp::Mul, lir::varRef(kv, VType::i64()), lir::constI(m), VType::i64()),
      VType::i64());
  emitBoundsCheck(a.storage, aIdx);
  ExprPtr av = lir::load(a.storage, std::move(aIdx), {lirElem(a.type.elem), 1});
  ExprPtr bIdx = lir::binary(
      BinOp::Add, lir::varRef(kv, VType::i64()),
      lir::binary(BinOp::Mul, lir::varRef(jv, VType::i64()), lir::constI(k), VType::i64()),
      VType::i64());
  emitBoundsCheck(b.storage, bIdx);
  ExprPtr bv = lir::load(b.storage, std::move(bIdx), {lirElem(b.type.elem), 1});
  av = coerceTo(std::move(av), accElem, e.loc);
  bv = coerceTo(std::move(bv), accElem, e.loc);
  ExprPtr prod = lir::binary(BinOp::Mul, std::move(av), std::move(bv), VType{accElem, 1});
  emit(lir::assign(acc, lir::binary(BinOp::Add, lir::varRef(acc, VType{accElem, 1}),
                                    std::move(prod), VType{accElem, 1})));
  cur_ = saved;

  std::vector<StmtPtr> iBody;
  cur_ = &iBody;
  emit(lir::declScalar(acc, VType{accElem, 1},
                       accElem == Scalar::C64 ? lir::constC(0.0, 0.0) : lir::constF(0.0)));
  emit(lir::forLoop(kv, lir::constI(0), lir::constI(k), 1, std::move(kBody)));
  ExprPtr dstIdx = lir::binary(
      BinOp::Add, lir::varRef(iv, VType::i64()),
      lir::binary(BinOp::Mul, lir::varRef(jv, VType::i64()), lir::constI(m), VType::i64()),
      VType::i64());
  emitBoundsCheck(dst, dstIdx);
  emit(lir::store(dst, std::move(dstIdx), lir::varRef(acc, VType{accElem, 1})));
  cur_ = saved;

  std::vector<StmtPtr> jBody;
  jBody.push_back(lir::forLoop(iv, lir::constI(0), lir::constI(m), 1, std::move(iBody)));
  emit(lir::forLoop(jv, lir::constI(0), lir::constI(n), 1, std::move(jBody)));
}

void Lowerer::emitRangeFill(const std::string& dst, const Range& e, std::int64_t count) {
  ExprPtr start = coerceTo(hoistScalar(*e.start), Scalar::F64, e.loc);
  ExprPtr step = e.step ? coerceTo(hoistScalar(*e.step), Scalar::F64, e.loc)
                        : lir::constF(1.0);
  // Hoist the step into a named temp if it is an expression.
  std::string idx = fresh("i");
  std::vector<StmtPtr> body;
  ExprPtr iF = lir::unary(UnOp::ToF64, lir::varRef(idx, VType::i64()), VType::f64());
  ExprPtr value = lir::binary(
      BinOp::Add, std::move(start),
      lir::binary(BinOp::Mul, std::move(iF), std::move(step), VType::f64()), VType::f64());
  std::vector<StmtPtr>* saved = cur_;
  cur_ = &body;
  ExprPtr storeIdx = lir::varRef(idx, VType::i64());
  emitBoundsCheck(dst, storeIdx);
  Scalar dstElem{};
  std::int64_t dn = 0;
  fn_.arrayInfo(dst, dstElem, dn);
  emit(lir::store(dst, std::move(storeIdx), coerceTo(std::move(value), dstElem, e.loc)));
  cur_ = saved;
  emit(lir::forLoop(idx, lir::constI(0), lir::constI(count), 1, std::move(body)));
}

void Lowerer::emitMatrixLit(const std::string& dst, const Type& dstType, const MatrixLit& e) {
  std::int64_t rows = dstType.shape.rows.extent();
  std::int64_t r = 0;
  for (const auto& row : e.rows) {
    std::int64_t c = 0;
    for (const auto& el : row) {
      Type t = typeOf(*el);
      if (!t.isScalar())
        fail(el->loc, "matrix literals of non-scalar elements are not compilable"
                      " (concatenate with explicit loops)");
      ExprPtr v = coerceTo(scalarExpr(*el), lirElem(dstType.elem), el->loc);
      emit(lir::store(dst, lir::constI(r + c * rows), std::move(v)));
      ++c;
    }
    ++r;
  }
}

Lowerer::SliceSel Lowerer::resolveSlice(const Expr& arg, Dim extent, SourceLoc loc) {
  if (arg.kind == NodeKind::Colon) {
    if (!extent.isKnown()) fail(loc, "':' over a dynamic extent");
    return {lir::constI(0), extent.extent(), 1};
  }
  std::optional<std::int64_t> endV;
  if (extent.isKnown()) endV = extent.extent();
  if (arg.kind == NodeKind::Range) {
    const auto& rng = static_cast<const Range&>(arg);
    std::int64_t step = 1;
    if (rng.step) {
      auto sv = types_.constValue(*rng.step, env(),
                                  endV ? std::optional<double>(*endV) : std::nullopt);
      if (!sv || *sv == 0.0 || *sv != std::floor(*sv))
        fail(loc, "slice step must be a nonzero integer constant");
      step = static_cast<std::int64_t>(*sv);
    }
    ExprPtr startI = indexValueI64(*rng.start, endV);
    ExprPtr stopI = indexValueI64(*rng.stop, endV);
    lir::Affine a = lir::affineOf(*startI);
    lir::Affine b = lir::affineOf(*stopI);
    lir::Affine diff = lir::affineSub(b, a);
    bool pureConst = diff.ok;
    if (pureConst) {
      for (const auto& [name, coef] : diff.coeffs) {
        (void)name;
        if (coef != 0) pureConst = false;
      }
    }
    if (!pureConst)
      fail(loc, "slice bounds must have a static span (start/stop may be expressions,"
                " but their difference must be constant)");
    std::int64_t span = diff.constant;
    std::int64_t count = span / step + 1;
    if (count < 0) count = 0;
    ExprPtr start0 = lir::binary(BinOp::Sub, std::move(startI), lir::constI(1), VType::i64());
    return {std::move(start0), count, step};
  }
  // Scalar index: a 1-element slice.
  ExprPtr idx = indexValueI64(arg, endV);
  ExprPtr start0 = lir::binary(BinOp::Sub, std::move(idx), lir::constI(1), VType::i64());
  return {std::move(start0), 1, 1};
}

void Lowerer::emitSliceRead(const std::string& dst, const Type& dstType, const CallIndex& e,
                            const Binding& base) {
  Scalar srcElem = lirElem(base.type.elem);
  Scalar dstElem = lirElem(dstType.elem);
  if (e.args.size() == 1) {
    Dim ext = base.type.shape.isKnown() ? Dim::of(base.type.shape.numel()) : Dim::dynamic();
    SliceSel s = resolveSlice(*e.args[0], ext, e.loc);
    // Hoist the start index.
    std::string startVar = fresh("st");
    emit(lir::declScalar(startVar, VType::i64(), std::move(s.start)));
    std::string idx = fresh("i");
    std::vector<StmtPtr> body;
    std::vector<StmtPtr>* saved = cur_;
    cur_ = &body;
    ExprPtr pos = lir::binary(
        BinOp::Add, lir::varRef(startVar, VType::i64()),
        lir::binary(BinOp::Mul, lir::varRef(idx, VType::i64()), lir::constI(s.step),
                    VType::i64()),
        VType::i64());
    emitBoundsCheck(base.storage, pos);
    ExprPtr v = lir::load(base.storage, std::move(pos), {srcElem, 1});
    v = coerceTo(std::move(v), dstElem, e.loc);
    ExprPtr storeIdx = lir::varRef(idx, VType::i64());
    emitBoundsCheck(dst, storeIdx);
    emit(lir::store(dst, std::move(storeIdx), std::move(v)));
    cur_ = saved;
    emit(lir::forLoop(idx, lir::constI(0), lir::constI(s.count), 1, std::move(body)));
    return;
  }
  if (e.args.size() != 2) fail(e.loc, "only 1-D and 2-D slicing is supported");
  SliceSel rs = resolveSlice(*e.args[0], base.type.shape.rows, e.loc);
  SliceSel cs = resolveSlice(*e.args[1], base.type.shape.cols, e.loc);
  std::int64_t srcRows = base.type.shape.rows.extent();
  std::int64_t dstRows = dstType.shape.rows.extent();
  std::string rStart = fresh("rs");
  std::string cStart = fresh("cs");
  emit(lir::declScalar(rStart, VType::i64(), std::move(rs.start)));
  emit(lir::declScalar(cStart, VType::i64(), std::move(cs.start)));

  std::string ri = fresh("r");
  std::string ci = fresh("c");
  std::vector<StmtPtr> inner;
  std::vector<StmtPtr>* saved = cur_;
  cur_ = &inner;
  ExprPtr srcR = lir::binary(
      BinOp::Add, lir::varRef(rStart, VType::i64()),
      lir::binary(BinOp::Mul, lir::varRef(ri, VType::i64()), lir::constI(rs.step),
                  VType::i64()),
      VType::i64());
  ExprPtr srcC = lir::binary(
      BinOp::Add, lir::varRef(cStart, VType::i64()),
      lir::binary(BinOp::Mul, lir::varRef(ci, VType::i64()), lir::constI(cs.step),
                  VType::i64()),
      VType::i64());
  ExprPtr srcIdx = lir::binary(
      BinOp::Add, std::move(srcR),
      lir::binary(BinOp::Mul, std::move(srcC), lir::constI(srcRows), VType::i64()),
      VType::i64());
  emitBoundsCheck(base.storage, srcIdx);
  ExprPtr v = lir::load(base.storage, std::move(srcIdx), {srcElem, 1});
  v = coerceTo(std::move(v), dstElem, e.loc);
  ExprPtr dstIdx = lir::binary(
      BinOp::Add, lir::varRef(ri, VType::i64()),
      lir::binary(BinOp::Mul, lir::varRef(ci, VType::i64()), lir::constI(dstRows),
                  VType::i64()),
      VType::i64());
  emitBoundsCheck(dst, dstIdx);
  emit(lir::store(dst, std::move(dstIdx), std::move(v)));
  cur_ = saved;

  std::vector<StmtPtr> outer;
  outer.push_back(lir::forLoop(ri, lir::constI(0), lir::constI(rs.count), 1,
                               std::move(inner)));
  emit(lir::forLoop(ci, lir::constI(0), lir::constI(cs.count), 1, std::move(outer)));
}

ExprPtr Lowerer::emitReductionToScalar(const std::string& name, const CallIndex& call) {
  // dot/norm/sum/prod/mean/min/max over a vector.
  const Expr& arg0 = *call.args.at(0);
  Type argType = typeOf(arg0);
  if (argType.isScalar()) {
    // Degenerate: reduction of a scalar is the scalar (norm/abs aside).
    ExprPtr v = scalarExpr(arg0);
    if (name == "norm") return lir::unary(UnOp::Abs, std::move(v), VType::f64());
    if (name == "dot") {
      ExprPtr w = scalarExpr(*call.args.at(1));
      Scalar elem;
      if (v->type.scalar == Scalar::C64)
        v = lir::unary(UnOp::Conj, std::move(v), VType::c64());
      auto [a, b] = promotePair(std::move(v), std::move(w), elem, call.loc);
      return lir::binary(BinOp::Mul, std::move(a), std::move(b), VType{elem, 1});
    }
    return v;
  }
  std::int64_t n = knownNumel(argType.shape, call.loc, "reduction argument");
  if (!argType.shape.isVector())
    fail(call.loc, "matrix reductions are only supported in whole-array assignments");

  bool cplxAcc = argType.elem == Elem::Complex &&
                 (name == "sum" || name == "prod" || name == "mean" || name == "dot");
  if ((name == "min" || name == "max") && argType.elem == Elem::Complex)
    fail(call.loc, "complex min/max is not compilable");
  Scalar accElem = cplxAcc ? Scalar::C64 : Scalar::F64;
  VType accT{accElem, 1};

  std::string idx = fresh("i");
  std::string acc = fresh("acc");

  // Build the element generator(s) up front so operand materialization and
  // invariant hoists land before the loop; clone for each use site.
  ExprPtr genA = scalarize(arg0, idx, argType.shape);
  ExprPtr genB;  // dot's second operand
  if (name == "dot") genB = scalarize(*call.args.at(1), idx, argType.shape);

  if (name == "min" || name == "max") {
    // Initialize from element 0, then fold the rest.
    genA = coerceTo(std::move(genA), Scalar::F64, call.loc);
    emit(lir::declScalar(idx, VType::i64(), lir::constI(0)));
    std::vector<StmtPtr> initChecks;
    appendLoadChecks(*genA, initChecks);
    for (auto& c : initChecks) emit(std::move(c));
    emit(lir::declScalar(acc, VType::f64(), genA->clone()));
    std::vector<StmtPtr> body;
    appendLoadChecks(*genA, body);
    body.push_back(lir::assign(acc, lir::binary(name == "min" ? BinOp::Min : BinOp::Max,
                                                lir::varRef(acc, VType::f64()),
                                                genA->clone(), VType::f64())));
    emit(lir::forLoop(idx, lir::constI(1), lir::constI(n), 1, std::move(body)));
    return lir::varRef(acc, VType::f64());
  }

  ExprPtr init = name == "prod"
                     ? (cplxAcc ? lir::constC(1.0, 0.0) : lir::constF(1.0))
                     : (cplxAcc ? lir::constC(0.0, 0.0) : lir::constF(0.0));
  emit(lir::declScalar(acc, accT, std::move(init)));

  std::vector<StmtPtr> body;
  appendLoadChecks(*genA, body);
  if (genB) appendLoadChecks(*genB, body);
  if (name == "norm") {
    ExprPtr mag = lir::unary(UnOp::Abs, std::move(genA), VType::f64());
    std::string t = fresh("t");
    body.push_back(lir::declScalar(t, VType::f64(), std::move(mag)));
    ExprPtr sq = lir::binary(BinOp::Mul, lir::varRef(t, VType::f64()),
                             lir::varRef(t, VType::f64()), VType::f64());
    body.push_back(lir::assign(
        acc, lir::binary(BinOp::Add, lir::varRef(acc, accT), std::move(sq), accT)));
  } else if (name == "dot") {
    if (genA->type.scalar == Scalar::C64)
      genA = lir::unary(UnOp::Conj, std::move(genA), VType::c64());
    genA = coerceTo(std::move(genA), accElem, call.loc);
    genB = coerceTo(std::move(genB), accElem, call.loc);
    ExprPtr prod = lir::binary(BinOp::Mul, std::move(genA), std::move(genB), accT);
    body.push_back(lir::assign(
        acc, lir::binary(BinOp::Add, lir::varRef(acc, accT), std::move(prod), accT)));
  } else {
    ExprPtr v = coerceTo(std::move(genA), accElem, call.loc);
    BinOp fold = name == "prod" ? BinOp::Mul : BinOp::Add;
    body.push_back(lir::assign(
        acc, lir::binary(fold, lir::varRef(acc, accT), std::move(v), accT)));
  }
  emit(lir::forLoop(idx, lir::constI(0), lir::constI(n), 1, std::move(body)));

  if (name == "mean") {
    emit(lir::assign(acc, lir::binary(BinOp::Div, lir::varRef(acc, accT),
                                      coerceTo(lir::constF(static_cast<double>(n)), accElem,
                                               call.loc),
                                      accT)));
  }
  if (name == "norm") {
    emit(lir::assign(acc, lir::unary(UnOp::Sqrt, lir::varRef(acc, accT), VType::f64())));
  }
  return lir::varRef(acc, accT);
}

void Lowerer::emitColumnReduction(const std::string& dst, const std::string& name,
                                  const CallIndex& call, const Type& argType) {
  TensorRef src = materializeTensor(*call.args.at(0));
  std::int64_t rows = argType.shape.rows.extent();
  std::int64_t cols = argType.shape.cols.extent();
  bool cplx = argType.elem == Elem::Complex;
  Scalar accElem = cplx ? Scalar::C64 : Scalar::F64;
  if ((name == "min" || name == "max") && cplx)
    fail(call.loc, "complex min/max is not compilable");
  if (name == "min" || name == "max") accElem = Scalar::F64;
  VType accT{accElem, 1};

  std::string ci = fresh("c");
  std::string ri = fresh("r");
  std::string acc = fresh("acc");

  std::vector<StmtPtr> inner;
  std::vector<StmtPtr>* saved = cur_;
  cur_ = &inner;
  ExprPtr idx = lir::binary(
      BinOp::Add, lir::varRef(ri, VType::i64()),
      lir::binary(BinOp::Mul, lir::varRef(ci, VType::i64()), lir::constI(rows), VType::i64()),
      VType::i64());
  emitBoundsCheck(src.storage, idx);
  ExprPtr v = lir::load(src.storage, std::move(idx), {lirElem(src.type.elem), 1});
  v = coerceTo(std::move(v), accElem, call.loc);
  BinOp fold = name == "prod" ? BinOp::Mul
               : name == "min" ? BinOp::Min
               : name == "max" ? BinOp::Max
                               : BinOp::Add;
  emit(lir::assign(acc, lir::binary(fold, lir::varRef(acc, accT), std::move(v), accT)));
  cur_ = saved;

  std::vector<StmtPtr> colBody;
  cur_ = &colBody;
  ExprPtr init;
  if (name == "prod") {
    init = cplx ? lir::constC(1.0, 0.0) : lir::constF(1.0);
  } else if (name == "min") {
    init = lir::constF(std::numeric_limits<double>::infinity());
  } else if (name == "max") {
    init = lir::constF(-std::numeric_limits<double>::infinity());
  } else {
    init = cplx ? lir::constC(0.0, 0.0) : lir::constF(0.0);
  }
  emit(lir::declScalar(acc, accT, std::move(init)));
  emit(lir::forLoop(ri, lir::constI(0), lir::constI(rows), 1, std::move(inner)));
  ExprPtr result = lir::varRef(acc, accT);
  if (name == "mean")
    result = lir::binary(BinOp::Div, std::move(result),
                         coerceTo(lir::constF(static_cast<double>(rows)), accElem, call.loc),
                         accT);
  ExprPtr dstIdx = lir::varRef(ci, VType::i64());
  emitBoundsCheck(dst, dstIdx);
  emit(lir::store(dst, std::move(dstIdx), std::move(result)));
  cur_ = saved;
  emit(lir::forLoop(ci, lir::constI(0), lir::constI(cols), 1, std::move(colBody)));
}

void Lowerer::emitFft(const std::string& dst, const Type& dstType, const CallIndex& call,
                      bool inverse) {
  const ast::Expr& argExpr = *call.args.at(0);
  Type argT = typeOf(argExpr);
  knownNumel(argT.shape, call.loc, "fft argument");

  // Geometry. Vectors transform along their length; matrices column-wise.
  // The transform length m comes from the (sema-inferred) destination shape,
  // so the two-arg zero-pad/truncate form needs no special casing here.
  bool matrixInput = !argT.shape.isVector();
  std::int64_t cols = matrixInput ? argT.shape.cols.extent() : 1;
  std::int64_t inLen = matrixInput ? argT.shape.rows.extent() : argT.shape.numel();
  std::int64_t m = matrixInput ? dstType.shape.rows.extent() : dstType.shape.numel();
  bool pow2 = m != 0 && (m & (m - 1)) == 0;
  double sign = inverse ? 1.0 : -1.0;

  auto I = [](std::int64_t v) { return lir::constI(v); };
  auto iv = [](const std::string& n) { return lir::varRef(n, VType::i64()); };
  auto iAdd = [](ExprPtr a, ExprPtr b) {
    return lir::binary(BinOp::Add, std::move(a), std::move(b), VType::i64());
  };
  auto iMul = [](ExprPtr a, ExprPtr b) {
    return lir::binary(BinOp::Mul, std::move(a), std::move(b), VType::i64());
  };
  auto cLoad = [&](const std::string& arr, ExprPtr idx) {
    emitBoundsCheck(arr, idx);
    return lir::load(arr, std::move(idx), VType::c64());
  };
  auto cStore = [&](const std::string& arr, ExprPtr idx, ExprPtr v) {
    emitBoundsCheck(arr, idx);
    emit(lir::store(arr, std::move(idx), std::move(v)));
  };

  // Input storage: scalars go through a 1x1 buffer so every path below is an
  // array-to-array transform.
  std::string src;
  Scalar srcElem;
  if (argT.isScalar()) {
    src = declareArray("fftin", Scalar::C64, 1, 1);
    srcElem = Scalar::C64;
    emit(lir::store(src, I(0), coerceTo(scalarExpr(argExpr), Scalar::C64, call.loc)));
  } else {
    TensorRef ref = materializeTensor(argExpr);
    src = ref.storage;
    srcElem = lirElem(ref.type.elem);
  }

  // The radix-2 path runs in place on dst; the DFT fallback reads a padded
  // scratch copy (dst may alias src for same-shape `y = fft(y)`).
  std::string buf = dst;
  if (!pow2) buf = declareArray("fftin", Scalar::C64, m, cols);

  // Stage 1 — copy (and zero-pad or truncate) each column into `buf`.
  std::int64_t copyN = std::min(inLen, m);
  {
    std::string c = fresh("c");
    std::vector<StmtPtr> colBody;
    std::vector<StmtPtr>* saved = cur_;
    cur_ = &colBody;
    if (buf != src) {
      std::string i = fresh("i");
      std::vector<StmtPtr> body;
      std::vector<StmtPtr>* savedCol = cur_;
      cur_ = &body;
      ExprPtr v = lir::load(src, iAdd(iMul(iv(c), I(inLen)), iv(i)), VType{srcElem, 1});
      emitBoundsCheck(src, v->index);
      cStore(buf, iAdd(iMul(iv(c), I(m)), iv(i)),
             coerceTo(std::move(v), Scalar::C64, call.loc));
      cur_ = savedCol;
      emit(lir::forLoop(i, I(0), I(copyN), 1, std::move(body)));
    }
    if (m > copyN) {
      std::string i = fresh("i");
      std::vector<StmtPtr> body;
      std::vector<StmtPtr>* savedCol = cur_;
      cur_ = &body;
      cStore(buf, iAdd(iMul(iv(c), I(m)), iv(i)), lir::constC(0.0, 0.0));
      cur_ = savedCol;
      emit(lir::forLoop(i, I(copyN), I(m), 1, std::move(body)));
    }
    cur_ = saved;
    emit(lir::forLoop(c, I(0), I(cols), 1, std::move(colBody)));
  }

  if (pow2 && m >= 2) {
    // Stage 2 — twiddle table tw[k] = exp(sign*2i*pi*k/m), k = 0..m/2-1.
    std::string tw = declareArray("ffttw", Scalar::C64, 1, m / 2);
    {
      std::string k = fresh("k");
      std::vector<StmtPtr> body;
      std::vector<StmtPtr>* saved = cur_;
      cur_ = &body;
      std::string ang = fresh("ang");
      emit(lir::declScalar(
          ang, VType::f64(),
          lir::binary(BinOp::Mul, lir::constF(sign * 2.0 * 3.14159265358979323846 /
                                              static_cast<double>(m)),
                      lir::unary(UnOp::ToF64, iv(k), VType::f64()), VType::f64())));
      cStore(tw, iv(k),
             lir::binary(BinOp::MakeComplex,
                         lir::unary(UnOp::Cos, lir::varRef(ang, VType::f64()), VType::f64()),
                         lir::unary(UnOp::Sin, lir::varRef(ang, VType::f64()), VType::f64()),
                         VType::c64()));
      cur_ = saved;
      emit(lir::forLoop(k, I(0), I(m / 2), 1, std::move(body)));
    }

    std::string c = fresh("c");
    std::vector<StmtPtr> colBody;
    std::vector<StmtPtr>* savedTop = cur_;
    cur_ = &colBody;
    auto base = [&]() { return iMul(iv(c), I(m)); };

    // Stage 3 — bit-reversal permutation. LIR has no bitwise ops, so the
    // classic add-with-carry counter uses compare/subtract/divide; with the
    // invariant j <= 2*bit - 2 on entry the while always exits before
    // bit reaches zero.
    {
      std::string j = fresh("j");
      emit(lir::declScalar(j, VType::i64(), I(0)));
      std::string i = fresh("i");
      std::vector<StmtPtr> body;
      std::vector<StmtPtr>* saved = cur_;
      cur_ = &body;
      std::string bit = fresh("bit");
      emit(lir::declScalar(bit, VType::i64(), I(m / 2)));
      {
        std::vector<StmtPtr> wBody;
        wBody.push_back(lir::assign(
            j, lir::binary(BinOp::Sub, iv(j), iv(bit), VType::i64())));
        wBody.push_back(lir::assign(
            bit, lir::binary(BinOp::Div, iv(bit), I(2), VType::i64())));
        emit(lir::whileStmt(lir::binary(BinOp::Ge, iv(j), iv(bit), VType::b1()),
                            std::move(wBody)));
      }
      emit(lir::assign(j, iAdd(iv(j), iv(bit))));
      {
        std::vector<StmtPtr> thenBody;
        std::vector<StmtPtr>* savedIf = cur_;
        cur_ = &thenBody;
        std::string t = fresh("swap");
        emit(lir::declScalar(t, VType::c64(), cLoad(buf, iAdd(base(), iv(i)))));
        cStore(buf, iAdd(base(), iv(i)), cLoad(buf, iAdd(base(), iv(j))));
        cStore(buf, iAdd(base(), iv(j)), lir::varRef(t, VType::c64()));
        cur_ = savedIf;
        emit(lir::ifStmt(lir::binary(BinOp::Lt, iv(i), iv(j), VType::b1()),
                         std::move(thenBody)));
      }
      cur_ = saved;
      emit(lir::forLoop(i, I(1), I(m), 1, std::move(body)));
    }

    // Stage 4 — butterflies; the log2(m) stages unroll at compile time so
    // every loop has static bounds and a static step.
    for (std::int64_t len = 2; len <= m; len <<= 1) {
      std::int64_t half = len / 2;
      std::int64_t step = m / len;
      std::string s = fresh("s");
      std::vector<StmtPtr> sBody;
      std::vector<StmtPtr>* saved = cur_;
      cur_ = &sBody;
      std::string q = fresh("q");
      std::vector<StmtPtr> qBody;
      std::vector<StmtPtr>* savedS = cur_;
      cur_ = &qBody;
      auto p = [&]() { return iAdd(iAdd(base(), iv(s)), iv(q)); };
      std::string u = fresh("u");
      std::string v = fresh("v");
      emit(lir::declScalar(u, VType::c64(), cLoad(buf, p())));
      emit(lir::declScalar(
          v, VType::c64(),
          lir::binary(BinOp::Mul, cLoad(buf, iAdd(p(), I(half))),
                      cLoad(tw, iMul(iv(q), I(step))), VType::c64())));
      cStore(buf, p(),
             lir::binary(BinOp::Add, lir::varRef(u, VType::c64()),
                         lir::varRef(v, VType::c64()), VType::c64()));
      cStore(buf, iAdd(p(), I(half)),
             lir::binary(BinOp::Sub, lir::varRef(u, VType::c64()),
                         lir::varRef(v, VType::c64()), VType::c64()));
      cur_ = savedS;
      emit(lir::forLoop(q, I(0), I(half), 1, std::move(qBody)));
      cur_ = saved;
      emit(lir::forLoop(s, I(0), I(m), len, std::move(sBody)));
    }
    cur_ = savedTop;
    emit(lir::forLoop(c, I(0), I(cols), 1, std::move(colBody)));

    // Stage 5 — ifft scales by 1/m.
    if (inverse && m > 1) {
      std::string i = fresh("i");
      std::vector<StmtPtr> body;
      std::vector<StmtPtr>* saved = cur_;
      cur_ = &body;
      cStore(buf, iv(i),
             lir::binary(BinOp::Mul, cLoad(buf, iv(i)),
                         lir::constC(1.0 / static_cast<double>(m), 0.0), VType::c64()));
      cur_ = saved;
      emit(lir::forLoop(i, I(0), I(m * cols), 1, std::move(body)));
    }
    return;
  }

  // Non-power-of-two fallback: direct O(m^2) DFT per column from the padded
  // scratch copy (never in place).
  if (m == 0) return;
  {
    std::string c = fresh("c");
    std::vector<StmtPtr> colBody;
    std::vector<StmtPtr>* savedTop = cur_;
    cur_ = &colBody;
    std::string k = fresh("k");
    std::vector<StmtPtr> kBody;
    std::vector<StmtPtr>* savedCol = cur_;
    cur_ = &kBody;
    std::string acc = fresh("acc");
    emit(lir::declScalar(acc, VType::c64(), lir::constC(0.0, 0.0)));
    {
      std::string t = fresh("t");
      std::vector<StmtPtr> tBody;
      std::vector<StmtPtr>* savedK = cur_;
      cur_ = &tBody;
      std::string ang = fresh("ang");
      emit(lir::declScalar(
          ang, VType::f64(),
          lir::binary(BinOp::Mul, lir::constF(sign * 2.0 * 3.14159265358979323846 /
                                              static_cast<double>(m)),
                      lir::unary(UnOp::ToF64, iMul(iv(k), iv(t)), VType::f64()),
                      VType::f64())));
      ExprPtr w = lir::binary(
          BinOp::MakeComplex,
          lir::unary(UnOp::Cos, lir::varRef(ang, VType::f64()), VType::f64()),
          lir::unary(UnOp::Sin, lir::varRef(ang, VType::f64()), VType::f64()),
          VType::c64());
      emit(lir::assign(
          acc, lir::binary(BinOp::Add, lir::varRef(acc, VType::c64()),
                           lir::binary(BinOp::Mul,
                                       cLoad(buf, iAdd(iMul(iv(c), I(m)), iv(t))),
                                       std::move(w), VType::c64()),
                           VType::c64())));
      cur_ = savedK;
      emit(lir::forLoop(t, I(0), I(m), 1, std::move(tBody)));
    }
    ExprPtr result = lir::varRef(acc, VType::c64());
    if (inverse) {
      result = lir::binary(BinOp::Mul, std::move(result),
                           lir::constC(1.0 / static_cast<double>(m), 0.0), VType::c64());
    }
    cStore(dst, iAdd(iMul(iv(c), I(m)), iv(k)), std::move(result));
    cur_ = savedCol;
    emit(lir::forLoop(k, I(0), I(m), 1, std::move(kBody)));
    cur_ = savedTop;
    emit(lir::forLoop(c, I(0), I(cols), 1, std::move(colBody)));
  }
}

void Lowerer::emitTensorAssign(const std::string& dst, const Type& dstType, const Expr& rhs) {
  knownNumel(dstType.shape, rhs.loc, "assignment target");
  switch (rhs.kind) {
    case NodeKind::Ident: {
      const auto& id = static_cast<const Ident&>(rhs);
      Binding* b = findBinding(id.name);
      if (b) {
        emitCopyLoop(dst, b->storage, dstType.shape.numel(), lirElem(dstType.elem),
                     lirElem(b->type.elem));
        return;
      }
      if (const Function* fnAst = program_.findFunction(id.name)) {
        auto outs = inlineCall(*fnAst, {}, 1, rhs.loc);
        emitCopyLoop(dst, outs[0].storage, dstType.shape.numel(), lirElem(dstType.elem),
                     lirElem(outs[0].type.elem));
        return;
      }
      fail(rhs.loc, "undefined variable '" + id.name + "'");
    }
    case NodeKind::MatrixLit:
      emitMatrixLit(dst, dstType, static_cast<const MatrixLit&>(rhs));
      return;
    case NodeKind::Range:
      emitRangeFill(dst, static_cast<const Range&>(rhs), dstType.shape.numel());
      return;
    case NodeKind::Transpose: {
      const auto& t = static_cast<const Transpose&>(rhs);
      Type opT = typeOf(*t.operand);
      if (opT.isScalar()) break;  // scalar transpose is elementwise-ish
      emitTranspose(dst, dstType, t);
      return;
    }
    case NodeKind::Binary: {
      const auto& b = static_cast<const Binary&>(rhs);
      if (b.op == BinaryOp::MatMul) {
        Type lt = typeOf(*b.lhs);
        Type rt = typeOf(*b.rhs);
        if (!lt.isScalar() && !rt.isScalar()) {
          emitMatMul(dst, dstType, b);
          return;
        }
      }
      break;  // elementwise
    }
    case NodeKind::CallIndex: {
      const auto& call = static_cast<const CallIndex&>(rhs);
      if (call.base->kind != NodeKind::Ident)
        fail(rhs.loc, "indexing a computed expression is not supported");
      const std::string& name = static_cast<const Ident&>(*call.base).name;
      if (Binding* b = findBinding(name)) {
        emitSliceRead(dst, dstType, call, *b);
        return;
      }
      if (const Function* fnAst = program_.findFunction(name)) {
        auto outs = inlineCall(*fnAst, call.args, 1, rhs.loc);
        emitCopyLoop(dst, outs[0].storage, dstType.shape.numel(), lirElem(dstType.elem),
                     lirElem(outs[0].type.elem));
        return;
      }
      auto info = sema::findCompilableBuiltin(name);
      if (!info) fail(rhs.loc, "'" + name + "' is not compilable");
      switch (info->kind) {
        case sema::BuiltinKind::Constructor: {
          std::int64_t n = dstType.shape.numel();
          Scalar dstElem = lirElem(dstType.elem);
          if (name == "zeros") {
            emitFill(dst, n, coerceTo(lir::constF(0.0), dstElem, rhs.loc));
            return;
          }
          if (name == "ones") {
            emitFill(dst, n, coerceTo(lir::constF(1.0), dstElem, rhs.loc));
            return;
          }
          if (name == "eye") {
            emitEye(dst, dstType.shape.rows.extent(), dstType.shape.cols.extent());
            return;
          }
          if (name == "linspace") {
            ExprPtr a = coerceTo(hoistScalar(*call.args.at(0)), Scalar::F64, rhs.loc);
            ExprPtr bb = coerceTo(hoistScalar(*call.args.at(1)), Scalar::F64, rhs.loc);
            double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
            std::string stepVar = fresh("d");
            emit(lir::declScalar(
                stepVar, VType::f64(),
                lir::binary(BinOp::Div,
                            lir::binary(BinOp::Sub, std::move(bb), a->clone(), VType::f64()),
                            lir::constF(denom), VType::f64())));
            std::string idx = fresh("i");
            std::vector<StmtPtr> body;
            ExprPtr iF =
                lir::unary(UnOp::ToF64, lir::varRef(idx, VType::i64()), VType::f64());
            ExprPtr value = lir::binary(
                BinOp::Add, std::move(a),
                lir::binary(BinOp::Mul, std::move(iF), lir::varRef(stepVar, VType::f64()),
                            VType::f64()),
                VType::f64());
            body.push_back(lir::store(dst, lir::varRef(idx, VType::i64()),
                                      coerceTo(std::move(value), dstElem, rhs.loc)));
            emit(lir::forLoop(idx, lir::constI(0), lir::constI(n), 1, std::move(body)));
            return;
          }
          fail(rhs.loc, "unhandled constructor '" + name + "'");
        }
        case sema::BuiltinKind::Transform:
          emitFft(dst, dstType, call, name == "ifft");
          return;

        case sema::BuiltinKind::Reduction:
        case sema::BuiltinKind::MinMax: {
          // Tensor-valued reduction = column reduction of a matrix.
          Type argT = typeOf(*call.args.at(0));
          if (info->kind == sema::BuiltinKind::MinMax && call.args.size() == 2)
            break;  // elementwise two-arg form
          if (argT.shape.isVector())
            fail(rhs.loc, "internal: vector reduction should be scalar-typed");
          emitColumnReduction(dst, name, call, argT);
          return;
        }
        default:
          break;  // elementwise builtins fall through
      }
      break;
    }
    default:
      break;
  }
  emitElementwiseLoop(dst, dstType, rhs);
}

// ---------------------------------------------------------------------------
// Calls
// ---------------------------------------------------------------------------

std::vector<Lowerer::TensorRef> Lowerer::inlineCall(const Function& callee,
                                                    const std::vector<ast::ExprPtr>& args,
                                                    std::size_t nOut, SourceLoc loc) {
  if (++inlineDepth_ > 32) {
    fail(loc, "function call nesting too deep while inlining '" + callee.name +
                  "' (recursion is not supported)");
  }
  if (args.size() != callee.params.size())
    fail(loc, "'" + callee.name + "' expects " + std::to_string(callee.params.size()) +
                  " arguments, got " + std::to_string(args.size()));
  if (nOut > callee.outs.size())
    fail(loc, "'" + callee.name + "' returns " + std::to_string(callee.outs.size()) +
                  " outputs, " + std::to_string(nOut) + " requested");

  // Evaluate arguments in the caller's scope.
  struct ArgBinding {
    Type type;
    std::string storage;
  };
  std::vector<ArgBinding> argBindings;
  for (std::size_t i = 0; i < args.size(); ++i) {
    Type at = typeOf(*args[i]);
    if (at.isScalar()) {
      ExprPtr v = scalarExpr(*args[i]);
      std::string tmp = fresh("arg");
      VType t = v->type;
      if (t.scalar == Scalar::B1) {
        v = coerceTo(std::move(v), Scalar::F64, loc);
        t = VType::f64();
      }
      emit(lir::declScalar(tmp, t, std::move(v)));
      Type st = at;
      st.elem = t.scalar == Scalar::C64 ? Elem::Complex : Elem::Real;
      argBindings.push_back({st, tmp});
    } else {
      TensorRef ref = materializeTensor(*args[i]);
      // MATLAB value semantics: copy when the callee writes the parameter.
      if (assignsTo(callee.body, callee.params[i])) {
        std::string copy = declareArray(callee.params[i] + "_copy", lirElem(ref.type.elem),
                                        ref.type.shape.rows.extent(),
                                        ref.type.shape.cols.extent());
        emitCopyLoop(copy, ref.storage, ref.type.shape.numel(), lirElem(ref.type.elem),
                     lirElem(ref.type.elem));
        ref.storage = copy;
      }
      argBindings.push_back({ref.type, ref.storage});
    }
  }

  // New scope for the callee frame.
  scopes_.emplace_back();
  for (std::size_t i = 0; i < args.size(); ++i) {
    env().vars[callee.params[i]] = argBindings[i].type;
    scope().vars[callee.params[i]] =
        Binding{argBindings[i].type, argBindings[i].storage, false, {}, {}};
  }
  declareFrameVars(callee.body, loc);
  lowerStmts(callee.body);

  std::vector<TensorRef> outs;
  for (std::size_t i = 0; i < std::max<std::size_t>(nOut, 1) && i < callee.outs.size(); ++i) {
    Binding* b = findBinding(callee.outs[i]);
    if (!b) fail(loc, "output '" + callee.outs[i] + "' of '" + callee.name +
                          "' is never assigned");
    outs.push_back({b->storage, b->type});
  }
  scopes_.pop_back();
  --inlineDepth_;
  return outs;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void Lowerer::lowerStmts(const std::vector<ast::StmtPtr>& body) {
  for (const auto& s : body) lowerStmt(*s);
}

void Lowerer::lowerStmt(const Stmt& s) {
  sema::Env pre = env();
  switch (s.kind) {
    case NodeKind::Assign:
      lowerAssign(static_cast<const Assign&>(s));
      break;
    case NodeKind::ExprStmt:
      // Expression statements have no observable effect in the compiled
      // subset (no globals, no I/O); type-check and drop.
      break;
    case NodeKind::If:
      lowerIf(static_cast<const If&>(s));
      break;
    case NodeKind::For:
      lowerFor(static_cast<const For&>(s));
      break;
    case NodeKind::While:
      lowerWhile(static_cast<const While&>(s));
      break;
    case NodeKind::Switch:
      lowerSwitch(static_cast<const Switch&>(s));
      break;
    case NodeKind::Break:
      emit(lir::breakStmt());
      break;
    case NodeKind::Continue:
      emit(lir::continueStmt());
      break;
    case NodeKind::Return:
      fail(s.loc, "'return' is not supported in compiled functions");
    default:
      fail(s.loc, "unsupported statement in compiled code");
  }
  // Re-run inference over the statement so the environment matches sema
  // exactly (joins, const lattice) regardless of what lowering did.
  env() = std::move(pre);
  types_.processStmt(s, env());
}

void Lowerer::lowerScalarAssignTo(Binding& b, const Expr& rhs) {
  ExprPtr v = scalarExpr(rhs);
  v = coerceTo(std::move(v), lirElem(b.type.elem), rhs.loc);
  emit(lir::assign(b.storage, std::move(v)));
}

void Lowerer::lowerIndexedAssign(const LValue& target, const Expr& rhs) {
  Binding* b = findBinding(target.name);
  if (!b) fail(target.loc, "indexed assignment to undeclared variable '" + target.name + "'");
  if (b->type.isScalar())
    fail(target.loc, "cannot index a scalar variable '" + target.name + "'");
  Type rhsType = typeOf(rhs);

  // All-scalar indices: a single element store.
  bool allScalar = true;
  for (const auto& a : target.indices) {
    if (a->kind == NodeKind::Colon || a->kind == NodeKind::Range) {
      allScalar = false;
      break;
    }
    sema::Dim extent = target.indices.size() == 1
                           ? (b->type.shape.isKnown() ? Dim::of(b->type.shape.numel())
                                                      : Dim::dynamic())
                           : (&a == &target.indices[0] ? b->type.shape.rows
                                                       : b->type.shape.cols);
    if (!(types_.indexCount(*a, env(), extent) == Dim::of(1))) {
      allScalar = false;
      break;
    }
  }
  if (allScalar) {
    if (!rhsType.isScalar()) fail(target.loc, "assigning a vector to a single element");
    ExprPtr lin = linearIndex(target.indices, b->type.shape, target.loc);
    emitBoundsCheck(b->storage, lin);
    ExprPtr v = coerceTo(scalarExpr(rhs), lirElem(b->type.elem), rhs.loc);
    emit(lir::store(b->storage, std::move(lin), std::move(v)));
    return;
  }

  // Slice write.
  if (target.indices.size() != 1)
    fail(target.loc, "2-D slice assignment is not supported (use loops)");
  Dim ext = b->type.shape.isKnown() ? Dim::of(b->type.shape.numel()) : Dim::dynamic();
  SliceSel s = resolveSlice(*target.indices[0], ext, target.loc);
  std::string startVar = fresh("st");
  emit(lir::declScalar(startVar, VType::i64(), std::move(s.start)));

  if (rhsType.isScalar()) {
    ExprPtr v = coerceTo(hoistScalar(rhs), lirElem(b->type.elem), rhs.loc);
    std::string idx = fresh("i");
    std::vector<StmtPtr> body;
    std::vector<StmtPtr>* saved = cur_;
    cur_ = &body;
    ExprPtr pos = lir::binary(
        BinOp::Add, lir::varRef(startVar, VType::i64()),
        lir::binary(BinOp::Mul, lir::varRef(idx, VType::i64()), lir::constI(s.step),
                    VType::i64()),
        VType::i64());
    emitBoundsCheck(b->storage, pos);
    emit(lir::store(b->storage, std::move(pos), std::move(v)));
    cur_ = saved;
    emit(lir::forLoop(idx, lir::constI(0), lir::constI(s.count), 1, std::move(body)));
    return;
  }

  if (!rhsType.shape.isKnown() || rhsType.shape.numel() != s.count)
    fail(target.loc, "slice assignment size mismatch");
  TensorRef src = materializeTensor(rhs);
  std::string idx = fresh("i");
  std::vector<StmtPtr> body;
  std::vector<StmtPtr>* saved = cur_;
  cur_ = &body;
  ExprPtr loadIdx = lir::varRef(idx, VType::i64());
  emitBoundsCheck(src.storage, loadIdx);
  ExprPtr v = lir::load(src.storage, std::move(loadIdx), {lirElem(src.type.elem), 1});
  v = coerceTo(std::move(v), lirElem(b->type.elem), rhs.loc);
  ExprPtr pos = lir::binary(
      BinOp::Add, lir::varRef(startVar, VType::i64()),
      lir::binary(BinOp::Mul, lir::varRef(idx, VType::i64()), lir::constI(s.step),
                  VType::i64()),
      VType::i64());
  emitBoundsCheck(b->storage, pos);
  emit(lir::store(b->storage, std::move(pos), std::move(v)));
  cur_ = saved;
  emit(lir::forLoop(idx, lir::constI(0), lir::constI(s.count), 1, std::move(body)));
}

void Lowerer::lowerAssign(const Assign& s) {
  if (s.targets.size() == 1) {
    const LValue& t = s.targets[0];
    if (!t.indices.empty()) {
      lowerIndexedAssign(t, *s.rhs);
      return;
    }
    Binding* b = findBinding(t.name);
    if (!b) fail(t.loc, "internal: no storage for variable '" + t.name + "'");
    Type rhsType = typeOf(*s.rhs);
    if (rhsType.isScalar()) {
      if (!b->type.isScalar())
        fail(t.loc, "variable '" + t.name + "' changes shape (scalar vs array)");
      lowerScalarAssignTo(*b, *s.rhs);
      b->intAlias = tryIntAffine(*s.rhs);
      return;
    }
    if (b->type.isScalar())
      fail(t.loc, "variable '" + t.name + "' changes shape (array vs scalar)");
    if (!(rhsType.shape == b->type.shape))
      fail(t.loc, "variable '" + t.name + "' changes shape between assignments");
    Type dstType = b->type;
    emitTensorAssign(b->storage, dstType, *s.rhs);
    return;
  }

  // Multi-assignment.
  if (s.rhs->kind != NodeKind::CallIndex)
    fail(s.loc, "multi-assignment requires a function call");
  const auto& call = static_cast<const CallIndex&>(*s.rhs);
  if (call.base->kind != NodeKind::Ident) fail(s.loc, "unsupported multi-assignment");
  const std::string& name = static_cast<const Ident&>(*call.base).name;

  auto assignScalarOut = [&](const LValue& t, ExprPtr v) {
    Binding* b = findBinding(t.name);
    if (!b) fail(t.loc, "internal: no storage for '" + t.name + "'");
    emit(lir::assign(b->storage, coerceTo(std::move(v), lirElem(b->type.elem), t.loc)));
  };

  if (const Function* fnAst = program_.findFunction(name)) {
    auto outs = inlineCall(*fnAst, call.args, s.targets.size(), s.loc);
    for (std::size_t i = 0; i < s.targets.size(); ++i) {
      const LValue& t = s.targets[i];
      if (!t.indices.empty())
        fail(t.loc, "indexed targets in multi-assignment are not supported");
      Binding* b = findBinding(t.name);
      if (!b) fail(t.loc, "internal: no storage for '" + t.name + "'");
      if (outs[i].type.isScalar()) {
        emit(lir::assign(b->storage,
                         coerceTo(lir::varRef(outs[i].storage,
                                              {lirElem(outs[i].type.elem), 1}),
                                  lirElem(b->type.elem), t.loc)));
      } else {
        emitCopyLoop(b->storage, outs[i].storage, outs[i].type.shape.numel(),
                     lirElem(b->type.elem), lirElem(outs[i].type.elem));
      }
    }
    return;
  }

  if (name == "size" && call.args.size() == 1 && s.targets.size() == 2) {
    Type t = typeOf(*call.args[0]);
    knownNumel(t.shape, s.loc, "size argument");
    assignScalarOut(s.targets[0],
                    lir::constF(static_cast<double>(t.shape.rows.extent())));
    assignScalarOut(s.targets[1],
                    lir::constF(static_cast<double>(t.shape.cols.extent())));
    return;
  }

  if ((name == "min" || name == "max") && call.args.size() == 1 && s.targets.size() == 2) {
    // [value, index] = min/max(vector): fold with index tracking.
    const Expr& arg = *call.args[0];
    Type argT = typeOf(arg);
    if (!argT.shape.isVector() || !argT.shape.isKnown() || argT.elem == Elem::Complex)
      fail(s.loc, "[v,i] = min/max needs a static real vector");
    std::int64_t n = argT.shape.numel();
    std::string idx = fresh("i");
    std::string best = fresh("best");
    std::string bestIdx = fresh("bi");
    ExprPtr gen = coerceTo(scalarize(arg, idx, argT.shape), Scalar::F64, s.loc);
    emit(lir::declScalar(idx, VType::i64(), lir::constI(0)));
    {
      std::vector<StmtPtr> initChecks;
      appendLoadChecks(*gen, initChecks);
      for (auto& c : initChecks) emit(std::move(c));
    }
    emit(lir::declScalar(best, VType::f64(), gen->clone()));
    emit(lir::declScalar(bestIdx, VType::f64(), lir::constF(1.0)));
    std::vector<StmtPtr> body;
    std::vector<StmtPtr>* saved = cur_;
    cur_ = &body;
    appendLoadChecks(*gen, body);
    std::string t = fresh("v");
    emit(lir::declScalar(t, VType::f64(), gen->clone()));
    ExprPtr better =
        lir::binary(name == "min" ? BinOp::Lt : BinOp::Gt, lir::varRef(t, VType::f64()),
                    lir::varRef(best, VType::f64()), VType::b1());
    std::vector<StmtPtr> thenBody;
    thenBody.push_back(lir::assign(best, lir::varRef(t, VType::f64())));
    thenBody.push_back(lir::assign(
        bestIdx, lir::binary(BinOp::Add,
                             lir::unary(UnOp::ToF64, lir::varRef(idx, VType::i64()),
                                        VType::f64()),
                             lir::constF(1.0), VType::f64())));
    emit(lir::ifStmt(std::move(better), std::move(thenBody)));
    cur_ = saved;
    emit(lir::forLoop(idx, lir::constI(1), lir::constI(n), 1, std::move(body)));
    assignScalarOut(s.targets[0], lir::varRef(best, VType::f64()));
    assignScalarOut(s.targets[1], lir::varRef(bestIdx, VType::f64()));
    return;
  }

  fail(s.loc, "unsupported multi-assignment call '" + name + "'");
}

void Lowerer::lowerFor(const For& s) {
  if (s.range->kind != NodeKind::Range)
    fail(s.loc, "for-loops must iterate over a range (a:b or a:s:b) in compiled code");
  const auto& rng = static_cast<const Range&>(*s.range);

  auto startC = constOf(*rng.start);
  auto stepC = rng.step ? constOf(*rng.step) : std::optional<double>(1.0);
  auto stopC = constOf(*rng.stop);
  auto isInt = [](std::optional<double> v) { return v && *v == std::floor(*v); };

  // Fixpoint environment for the body (accumulator promotions etc.).
  sema::Env fix = env();
  types_.processStmt(s, fix);
  env() = fix;
  env().vars[s.var] = sema::Type::realScalar();
  env().consts.erase(s.var);

  Binding* vb = findBinding(s.var);
  if (!vb) {
    // Loop variable never mentioned after the loop — still needs storage.
    std::string storage = fresh(s.var);
    emit(lir::declScalar(storage, VType::f64()));
    scope().vars[s.var] = Binding{sema::Type::realScalar(), storage, false, {}, {}};
    vb = findBinding(s.var);
  }

  // Integer lo/step with a *dynamic* stop still gets an i64 induction
  // variable (affine indexing, vectorization); the exclusive bound is
  // computed at run time and MATLAB's final-iterate semantics are preserved
  // with a guarded post-loop assignment.
  if (isInt(startC) && isInt(stepC) && *stepC != 0.0 && !stopC) {
    auto lo = static_cast<std::int64_t>(*startC);
    auto st = static_cast<std::int64_t>(*stepC);
    ExprPtr stopF = coerceTo(hoistScalar(*rng.stop), Scalar::F64, s.loc);
    ExprPtr hiExcl;
    if (st > 0) {
      hiExcl = lir::binary(BinOp::Add,
                           lir::unary(UnOp::ToI64,
                                      lir::unary(UnOp::Floor, std::move(stopF), VType::f64()),
                                      VType::i64()),
                           lir::constI(1), VType::i64());
    } else {
      hiExcl = lir::binary(BinOp::Sub,
                           lir::unary(UnOp::ToI64,
                                      lir::unary(UnOp::Ceil, std::move(stopF), VType::f64()),
                                      VType::i64()),
                           lir::constI(1), VType::i64());
    }
    std::string hiVar = fresh(s.var + "_hi");
    emit(lir::declScalar(hiVar, VType::i64(), std::move(hiExcl)));

    std::string iv = fresh(s.var + "_i");
    Binding save;
    save.type = vb->type;
    save.storage = vb->storage;
    vb->induction = true;
    vb->inductionVar = iv;
    vb->intAlias.reset();

    std::vector<StmtPtr> body;
    std::vector<StmtPtr>* saved = cur_;
    cur_ = &body;
    lowerStmts(s.body);
    cur_ = saved;
    emit(lir::forLoop(iv, lir::constI(lo), lir::varRef(hiVar, VType::i64()), st,
                      std::move(body)));

    {
      Binding& vb2 = *findBinding(s.var);
      vb2.type = save.type;
      vb2.storage = save.storage;
      vb2.induction = false;
      vb2.inductionVar.clear();
      vb2.intAlias.reset();
    }
    for (auto& [name, bind] : scope().vars) {
      if (bind.intAlias) {
        lir::Affine a = lir::affineOf(*bind.intAlias);
        if (!a.ok || a.coeff(iv) != 0) bind.intAlias.reset();
      }
    }
    // Final-iterate value: lo + ((hi - sgn(st) - lo) / st) * st, assigned
    // only when the loop executed at least once.
    ExprPtr ranCond = lir::binary(st > 0 ? BinOp::Gt : BinOp::Lt,
                                  lir::varRef(hiVar, VType::i64()), lir::constI(lo),
                                  VType::b1());
    ExprPtr numer = lir::binary(
        BinOp::Sub,
        lir::binary(BinOp::Sub, lir::varRef(hiVar, VType::i64()),
                    lir::constI(st > 0 ? 1 : -1), VType::i64()),
        lir::constI(lo), VType::i64());
    ExprPtr q = lir::binary(BinOp::Div, std::move(numer), lir::constI(st), VType::i64());
    ExprPtr last = lir::binary(
        BinOp::Add, lir::constI(lo),
        lir::binary(BinOp::Mul, std::move(q), lir::constI(st), VType::i64()), VType::i64());
    std::vector<StmtPtr> thenBody;
    thenBody.push_back(
        lir::assign(save.storage, lir::unary(UnOp::ToF64, std::move(last), VType::f64())));
    emit(lir::ifStmt(std::move(ranCond), std::move(thenBody)));
    return;
  }

  if (isInt(startC) && isInt(stepC) && isInt(stopC) && *stepC != 0.0) {
    auto lo = static_cast<std::int64_t>(*startC);
    auto st = static_cast<std::int64_t>(*stepC);
    auto hiIncl = static_cast<std::int64_t>(*stopC);
    std::int64_t hiExcl = st > 0 ? hiIncl + 1 : hiIncl - 1;

    std::string iv = fresh(s.var + "_i");
    Binding save;
    save.type = vb->type;
    save.storage = vb->storage;
    vb->induction = true;
    vb->inductionVar = iv;
    vb->intAlias.reset();

    std::vector<StmtPtr> body;
    std::vector<StmtPtr>* saved = cur_;
    cur_ = &body;
    lowerStmts(s.body);
    cur_ = saved;
    emit(lir::forLoop(iv, lir::constI(lo), lir::constI(hiExcl), st, std::move(body)));

    {
      Binding& vb2 = *findBinding(s.var);
      vb2.type = save.type;
      vb2.storage = save.storage;
      vb2.induction = false;
      vb2.inductionVar.clear();
      vb2.intAlias.reset();
    }  // drop the induction binding after the loop
    // Aliases built inside the body may reference the now-dead counter.
    for (auto& [name, bind] : scope().vars) {
      if (bind.intAlias) {
        lir::Affine a = lir::affineOf(*bind.intAlias);
        if (!a.ok || a.coeff(iv) != 0) bind.intAlias.reset();
      }
    }
    // MATLAB leaves the loop variable at its final iterate (when the loop
    // ran); the bounds are constants here, so materialize it directly.
    std::int64_t trips = (hiIncl - lo) / st + 1;
    if (trips > 0) {
      std::int64_t last = lo + (trips - 1) * st;
      emit(lir::assign(save.storage, lir::constF(static_cast<double>(last))));
    }
    return;
  }

  // General (non-integer / dynamic) range: iterate a computed trip count.
  ExprPtr startV = coerceTo(hoistScalar(*rng.start), Scalar::F64, s.loc);
  ExprPtr stepV = rng.step ? coerceTo(hoistScalar(*rng.step), Scalar::F64, s.loc)
                           : lir::constF(1.0);
  ExprPtr stopV = coerceTo(hoistScalar(*rng.stop), Scalar::F64, s.loc);
  std::string stepVar = fresh("step");
  emit(lir::declScalar(stepVar, VType::f64(), std::move(stepV)));
  std::string startVar = fresh("start");
  emit(lir::declScalar(startVar, VType::f64(), std::move(startV)));
  // trip = max(floor((stop - start) / step + 1), 0)
  ExprPtr span = lir::binary(BinOp::Sub, std::move(stopV),
                             lir::varRef(startVar, VType::f64()), VType::f64());
  ExprPtr ratio = lir::binary(BinOp::Div, std::move(span),
                              lir::varRef(stepVar, VType::f64()), VType::f64());
  ExprPtr trip = lir::unary(
      UnOp::Floor,
      lir::binary(BinOp::Add, std::move(ratio), lir::constF(1.0 + 1e-10), VType::f64()),
      VType::f64());
  trip = lir::binary(BinOp::Max, std::move(trip), lir::constF(0.0), VType::f64());
  std::string tripVar = fresh("trip");
  emit(lir::declScalar(tripVar, VType::i64(),
                       lir::unary(UnOp::ToI64, std::move(trip), VType::i64())));

  std::string iv = fresh("it");
  std::vector<StmtPtr> body;
  std::vector<StmtPtr>* saved = cur_;
  cur_ = &body;
  ExprPtr kVal = lir::binary(
      BinOp::Add, lir::varRef(startVar, VType::f64()),
      lir::binary(BinOp::Mul,
                  lir::unary(UnOp::ToF64, lir::varRef(iv, VType::i64()), VType::f64()),
                  lir::varRef(stepVar, VType::f64()), VType::f64()),
      VType::f64());
  emit(lir::assign(vb->storage, std::move(kVal)));
  lowerStmts(s.body);
  cur_ = saved;
  emit(lir::forLoop(iv, lir::constI(0), lir::varRef(tripVar, VType::i64()), 1,
                    std::move(body)));
}

void Lowerer::lowerIf(const If& s) {
  clearIntAliases();  // values assigned under a condition are not affine facts
  // Recursive chain: if / elseif... / else.
  std::function<StmtPtr(std::size_t)> build = [&](std::size_t i) -> StmtPtr {
    sema::Env entry = env();
    ExprPtr cond = lowerCond(*s.branches[i].cond);

    std::vector<StmtPtr> thenBody;
    std::vector<StmtPtr>* saved = cur_;
    cur_ = &thenBody;
    env() = entry;
    lowerStmts(s.branches[i].body);
    cur_ = saved;

    std::vector<StmtPtr> elseBody;
    if (i + 1 < s.branches.size()) {
      cur_ = &elseBody;
      env() = entry;
      StmtPtr chained = build(i + 1);
      cur_ = saved;
      elseBody.push_back(std::move(chained));
    } else if (!s.elseBody.empty()) {
      cur_ = &elseBody;
      env() = entry;
      lowerStmts(s.elseBody);
      cur_ = saved;
    }
    env() = entry;
    clearIntAliases();
    return lir::ifStmt(std::move(cond), std::move(thenBody), std::move(elseBody));
  };
  emit(build(0));
}

void Lowerer::lowerWhile(const While& s) {
  // Fixpoint env first so accumulators keep stable storage types.
  sema::Env fix = env();
  types_.processStmt(s, fix);
  env() = fix;

  clearIntAliases();
  ExprPtr cond = lowerCond(*s.cond);
  std::vector<StmtPtr> body;
  std::vector<StmtPtr>* saved = cur_;
  cur_ = &body;
  lowerStmts(s.body);
  cur_ = saved;
  clearIntAliases();
  emit(lir::whileStmt(std::move(cond), std::move(body)));
}

void Lowerer::lowerSwitch(const Switch& s) {
  clearIntAliases();
  ExprPtr subj = hoistScalar(*s.subject);
  Scalar subjElem = subj->type.scalar;
  VType subjT{subjElem, 1};
  // Name the subject so every case compares the same temp.
  std::string subjVar = fresh("sw");
  emit(lir::declScalar(subjVar, subjT, std::move(subj)));

  std::function<StmtPtr(std::size_t)> build = [&](std::size_t i) -> StmtPtr {
    sema::Env entry = env();
    const auto& c = s.cases[i];

    auto caseCond = [&](const Expr& value) -> ExprPtr {
      ExprPtr v = scalarExpr(value);
      Scalar elem;
      auto [a, b] = promotePair(lir::varRef(subjVar, subjT), std::move(v), elem, s.loc);
      return lir::binary(BinOp::Eq, std::move(a), std::move(b), VType::b1());
    };

    ExprPtr cond;
    if (c.value->kind == NodeKind::MatrixLit) {
      const auto& lit = static_cast<const MatrixLit&>(*c.value);
      for (const auto& row : lit.rows) {
        for (const auto& el : row) {
          ExprPtr one = caseCond(*el);
          cond = cond ? lir::binary(BinOp::Or, std::move(cond), std::move(one), VType::b1())
                      : std::move(one);
        }
      }
      if (!cond) cond = lir::binary(BinOp::Ne, lir::constF(0.0), lir::constF(0.0),
                                    VType::b1());
    } else {
      cond = caseCond(*c.value);
    }

    std::vector<StmtPtr> thenBody;
    std::vector<StmtPtr>* saved = cur_;
    cur_ = &thenBody;
    env() = entry;
    lowerStmts(c.body);
    cur_ = saved;

    std::vector<StmtPtr> elseBody;
    if (i + 1 < s.cases.size()) {
      cur_ = &elseBody;
      env() = entry;
      StmtPtr chained = build(i + 1);
      cur_ = saved;
      elseBody.push_back(std::move(chained));
    } else if (!s.otherwise.empty()) {
      cur_ = &elseBody;
      env() = entry;
      lowerStmts(s.otherwise);
      cur_ = saved;
    }
    env() = entry;
    return lir::ifStmt(std::move(cond), std::move(thenBody), std::move(elseBody));
  };
  if (s.cases.empty()) {
    lowerStmts(s.otherwise);
    return;
  }
  emit(build(0));
}

}  // namespace

lir::Function lowerProgram(const Program& program, const std::string& entry,
                           const std::vector<sema::ArgSpec>& args, const LowerOptions& options,
                           DiagnosticEngine& diags) {
  Lowerer lowerer(program, options, diags);
  return lowerer.lower(entry, args);
}

}  // namespace mat2c::lower
