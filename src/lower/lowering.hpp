// AST -> LIR lowering.
//
// Lowering is a *specializing* translation: the entry function's argument
// types pin every array shape, user-function calls are inlined (the paper's
// compiler whole-programs small DSP kernels the same way), and each MATLAB
// statement becomes straight-line scalar code plus loop nests.
//
// Two code styles, matching the paper's comparison:
//  * Proposed  — elementwise expression trees fuse into a single loop per
//    statement; no runtime checks. This is the form the vectorizer and the
//    intrinsic mapper consume.
//  * CoderLike — models the MathWorks MATLAB-Coder output the paper compares
//    against for dynamically-shaped code: one loop and one materialized
//    temporary per vector operation (AllocMark), plus per-access bounds
//    checks (BoundsCheck).
#pragma once

#include <optional>

#include "ast/ast.hpp"
#include "lir/lir.hpp"
#include "sema/sema.hpp"
#include "support/diagnostics.hpp"

namespace mat2c::lower {

enum class CodeStyle { Proposed, CoderLike };

struct LowerOptions {
  CodeStyle style = CodeStyle::Proposed;
  /// Fine-grained overrides (for ablation studies). By default they follow
  /// `style`: Proposed = fused + unchecked; CoderLike = per-op temporaries +
  /// bounds checks.
  std::optional<bool> fuseElementwise;
  std::optional<bool> boundsChecks;

  bool fuse() const {
    return fuseElementwise.value_or(style == CodeStyle::Proposed);
  }
  bool checks() const {
    return boundsChecks.value_or(style == CodeStyle::CoderLike);
  }
};

/// Lowers `entry` (specialized to `args`) into a LIR function. Throws
/// CompileError (after reporting into `diags`) on anything outside the
/// compiled subset.
lir::Function lowerProgram(const ast::Program& program, const std::string& entry,
                           const std::vector<sema::ArgSpec>& args, const LowerOptions& options,
                           DiagnosticEngine& diags);

}  // namespace mat2c::lower
