#include "lexer/token.hpp"

namespace mat2c {

const char* toString(TokenKind kind) {
  switch (kind) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::Number: return "number";
    case TokenKind::String: return "string";
    case TokenKind::KwFunction: return "'function'";
    case TokenKind::KwEnd: return "'end'";
    case TokenKind::KwIf: return "'if'";
    case TokenKind::KwElseif: return "'elseif'";
    case TokenKind::KwElse: return "'else'";
    case TokenKind::KwFor: return "'for'";
    case TokenKind::KwWhile: return "'while'";
    case TokenKind::KwBreak: return "'break'";
    case TokenKind::KwContinue: return "'continue'";
    case TokenKind::KwReturn: return "'return'";
    case TokenKind::KwSwitch: return "'switch'";
    case TokenKind::KwCase: return "'case'";
    case TokenKind::KwOtherwise: return "'otherwise'";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Backslash: return "'\\'";
    case TokenKind::Caret: return "'^'";
    case TokenKind::DotStar: return "'.*'";
    case TokenKind::DotSlash: return "'./'";
    case TokenKind::DotBackslash: return "'.\\'";
    case TokenKind::DotCaret: return "'.^'";
    case TokenKind::Transpose: return "'''";
    case TokenKind::DotTranspose: return "'.''";
    case TokenKind::Assign: return "'='";
    case TokenKind::Eq: return "'=='";
    case TokenKind::Ne: return "'~='";
    case TokenKind::Lt: return "'<'";
    case TokenKind::Le: return "'<='";
    case TokenKind::Gt: return "'>'";
    case TokenKind::Ge: return "'>='";
    case TokenKind::And: return "'&'";
    case TokenKind::Or: return "'|'";
    case TokenKind::AndAnd: return "'&&'";
    case TokenKind::OrOr: return "'||'";
    case TokenKind::Not: return "'~'";
    case TokenKind::Colon: return "':'";
    case TokenKind::Comma: return "','";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::Dot: return "'.'";
    case TokenKind::At: return "'@'";
    case TokenKind::Newline: return "newline";
    case TokenKind::Eof: return "end of input";
  }
  return "?";
}

}  // namespace mat2c
