#include "lexer/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace mat2c {
namespace {

const std::unordered_map<std::string, TokenKind>& keywordTable() {
  static const std::unordered_map<std::string, TokenKind> table = {
      {"function", TokenKind::KwFunction}, {"end", TokenKind::KwEnd},
      {"if", TokenKind::KwIf},             {"elseif", TokenKind::KwElseif},
      {"else", TokenKind::KwElse},         {"for", TokenKind::KwFor},
      {"while", TokenKind::KwWhile},       {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue}, {"return", TokenKind::KwReturn},
      {"switch", TokenKind::KwSwitch},     {"case", TokenKind::KwCase},
      {"otherwise", TokenKind::KwOtherwise},
  };
  return table;
}

bool isIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool isIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool isDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

Lexer::Lexer(std::string source, DiagnosticEngine& diags)
    : src_(std::move(source)), diags_(diags) {}

char Lexer::peek(int ahead) const {
  std::size_t p = pos_ + static_cast<std::size_t>(ahead);
  return p < src_.size() ? src_[p] : '\0';
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

Token Lexer::make(TokenKind kind, std::string text, SourceLoc loc) const {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.loc = loc;
  return t;
}

bool Lexer::quoteIsTranspose() const {
  switch (prevKind_) {
    case TokenKind::Identifier:
    case TokenKind::Number:
    case TokenKind::RParen:
    case TokenKind::RBracket:
    case TokenKind::RBrace:
    case TokenKind::Transpose:
    case TokenKind::DotTranspose:
    case TokenKind::KwEnd:  // `end` inside indexing is a value
      return true;
    default:
      return false;
  }
}

void Lexer::skipBlockComment() {
  // %{ ... %} — the markers must sit on their own lines in MATLAB; we are
  // lenient and only require the %} pair.
  int depth = 1;
  while (!atEnd() && depth > 0) {
    if (peek() == '%' && peek(1) == '{') {
      advance();
      advance();
      ++depth;
    } else if (peek() == '%' && peek(1) == '}') {
      advance();
      advance();
      --depth;
    } else {
      advance();
    }
  }
  if (depth > 0) diags_.error(here(), "unterminated block comment");
}

Token Lexer::lexNumber() {
  SourceLoc loc = here();
  std::string text;
  while (isDigit(peek())) text += advance();
  if (peek() == '.' && isDigit(peek(1))) {
    text += advance();
    while (isDigit(peek())) text += advance();
  } else if (peek() == '.' && text.empty()) {
    text += advance();
    while (isDigit(peek())) text += advance();
  } else if (peek() == '.' && !isIdentStart(peek(1)) && peek(1) != '\'' && peek(1) != '*' &&
             peek(1) != '/' && peek(1) != '\\' && peek(1) != '^') {
    // Trailing dot that is not the start of an elementwise operator: "3."
    text += advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    char sign = peek(1);
    if (isDigit(sign) || ((sign == '+' || sign == '-') && isDigit(peek(2)))) {
      text += advance();  // e
      if (peek() == '+' || peek() == '-') text += advance();
      while (isDigit(peek())) text += advance();
    }
  }
  Token t = make(TokenKind::Number, text, loc);
  t.numValue = std::strtod(text.c_str(), nullptr);
  if (peek() == 'i' || peek() == 'j') {
    // Imaginary suffix, but not the start of an identifier like `3if` (which
    // MATLAB would reject anyway — treat greedily as suffix unless followed
    // by an identifier character).
    if (!isIdentChar(peek(1))) {
      advance();
      t.imaginary = true;
    }
  }
  return t;
}

Token Lexer::lexIdentifier() {
  SourceLoc loc = here();
  std::string text;
  while (isIdentChar(peek())) text += advance();
  auto it = keywordTable().find(text);
  if (it != keywordTable().end()) return make(it->second, text, loc);
  return make(TokenKind::Identifier, text, loc);
}

Token Lexer::lexString() {
  SourceLoc loc = here();
  advance();  // opening '
  std::string contents;
  while (true) {
    if (atEnd() || peek() == '\n') {
      diags_.error(loc, "unterminated string literal");
      break;
    }
    char c = advance();
    if (c == '\'') {
      if (peek() == '\'') {
        contents += '\'';
        advance();  // '' escape
      } else {
        break;
      }
    } else {
      contents += c;
    }
  }
  return make(TokenKind::String, contents, loc);
}

Token Lexer::next() {
  spaceSeen_ = false;
  Token t = nextImpl();
  t.precededBySpace = spaceSeen_;
  return t;
}

Token Lexer::nextImpl() {
  while (!atEnd()) {
    char c = peek();
    // Continuation: `...` to end of line, no newline token emitted.
    if (c == '.' && peek(1) == '.' && peek(2) == '.') {
      while (!atEnd() && peek() != '\n') advance();
      if (!atEnd()) advance();  // consume the newline itself
      spaceSeen_ = true;
      continue;
    }
    if (c == '%') {
      if (peek(1) == '{') {
        advance();
        advance();
        skipBlockComment();
      } else {
        while (!atEnd() && peek() != '\n') advance();
      }
      spaceSeen_ = true;
      continue;
    }
    if (c == '\n') {
      SourceLoc loc = here();
      advance();
      return make(TokenKind::Newline, "\n", loc);
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      advance();
      spaceSeen_ = true;
      continue;
    }
    if (isDigit(c) || (c == '.' && isDigit(peek(1)))) return lexNumber();
    if (isIdentStart(c)) return lexIdentifier();

    SourceLoc loc = here();
    if (c == '\'') {
      if (quoteIsTranspose()) {
        advance();
        return make(TokenKind::Transpose, "'", loc);
      }
      return lexString();
    }

    advance();
    switch (c) {
      case '+': return make(TokenKind::Plus, "+", loc);
      case '-': return make(TokenKind::Minus, "-", loc);
      case '*': return make(TokenKind::Star, "*", loc);
      case '/': return make(TokenKind::Slash, "/", loc);
      case '\\': return make(TokenKind::Backslash, "\\", loc);
      case '^': return make(TokenKind::Caret, "^", loc);
      case '(': return make(TokenKind::LParen, "(", loc);
      case ')': return make(TokenKind::RParen, ")", loc);
      case '[': return make(TokenKind::LBracket, "[", loc);
      case ']': return make(TokenKind::RBracket, "]", loc);
      case '{': return make(TokenKind::LBrace, "{", loc);
      case '}': return make(TokenKind::RBrace, "}", loc);
      case ':': return make(TokenKind::Colon, ":", loc);
      case ',': return make(TokenKind::Comma, ",", loc);
      case ';': return make(TokenKind::Semicolon, ";", loc);
      case '@': return make(TokenKind::At, "@", loc);
      case '.':
        if (match('*')) return make(TokenKind::DotStar, ".*", loc);
        if (match('/')) return make(TokenKind::DotSlash, "./", loc);
        if (match('\\')) return make(TokenKind::DotBackslash, ".\\", loc);
        if (match('^')) return make(TokenKind::DotCaret, ".^", loc);
        if (match('\'')) return make(TokenKind::DotTranspose, ".'", loc);
        return make(TokenKind::Dot, ".", loc);
      case '=':
        if (match('=')) return make(TokenKind::Eq, "==", loc);
        return make(TokenKind::Assign, "=", loc);
      case '~':
        if (match('=')) return make(TokenKind::Ne, "~=", loc);
        return make(TokenKind::Not, "~", loc);
      case '<':
        if (match('=')) return make(TokenKind::Le, "<=", loc);
        return make(TokenKind::Lt, "<", loc);
      case '>':
        if (match('=')) return make(TokenKind::Ge, ">=", loc);
        return make(TokenKind::Gt, ">", loc);
      case '&':
        if (match('&')) return make(TokenKind::AndAnd, "&&", loc);
        return make(TokenKind::And, "&", loc);
      case '|':
        if (match('|')) return make(TokenKind::OrOr, "||", loc);
        return make(TokenKind::Or, "|", loc);
      default:
        diags_.error(loc, std::string("unexpected character '") + c + "'");
        continue;  // skip and keep lexing
    }
  }
  return make(TokenKind::Eof, "", here());
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> out;
  while (true) {
    Token t = next();
    if (t.kind == TokenKind::Newline && (out.empty() || out.back().kind == TokenKind::Newline)) {
      prevKind_ = t.kind;
      continue;  // collapse blank lines
    }
    prevKind_ = t.kind;
    bool done = t.kind == TokenKind::Eof;
    out.push_back(std::move(t));
    if (done) break;
  }
  return out;
}

}  // namespace mat2c
