// Token definitions for the MATLAB front end.
#pragma once

#include <string>

#include "support/source_location.hpp"

namespace mat2c {

enum class TokenKind {
  // Literals / identifiers
  Identifier,
  Number,      // numeric literal, possibly imaginary (3i, 2.5e-3j)
  String,      // 'text' with '' escapes

  // Keywords
  KwFunction, KwEnd, KwIf, KwElseif, KwElse, KwFor, KwWhile,
  KwBreak, KwContinue, KwReturn, KwSwitch, KwCase, KwOtherwise,

  // Punctuation / operators
  Plus, Minus, Star, Slash, Backslash, Caret,
  DotStar, DotSlash, DotBackslash, DotCaret,
  Transpose,      // ' (complex-conjugate transpose)
  DotTranspose,   // .'
  Assign,         // =
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or, AndAnd, OrOr, Not,
  Colon, Comma, Semicolon,
  LParen, RParen, LBracket, RBracket, LBrace, RBrace,
  Dot, At,
  Newline,        // statement-terminating line break
  Eof,
};

const char* toString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::Eof;
  std::string text;          // raw spelling (string contents for String)
  double numValue = 0.0;     // for Number
  bool imaginary = false;    // Number carried an i/j suffix
  bool precededBySpace = false;  // whitespace (or line start) before this token;
                                 // drives `[1 -2]` vs `[1 - 2]` disambiguation
  SourceLoc loc;

  bool is(TokenKind k) const { return kind == k; }
};

}  // namespace mat2c
