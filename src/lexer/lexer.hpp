// MATLAB tokenizer.
//
// Handles the context-sensitive parts of MATLAB's surface syntax:
//  * `'` is transpose after a value-ending token (identifier, number, `)`,
//    `]`, `}`, `'`), and a string quote otherwise;
//  * `...` swallows the rest of the line and continues the statement;
//  * `%` line comments and `%{ ... %}` block comments;
//  * numeric literals with an `i`/`j` imaginary suffix.
#pragma once

#include <string>
#include <vector>

#include "lexer/token.hpp"
#include "support/diagnostics.hpp"

namespace mat2c {

class Lexer {
 public:
  Lexer(std::string source, DiagnosticEngine& diags);

  /// Tokenizes the whole buffer. Consecutive newlines collapse into one
  /// Newline token; the stream always ends with Eof.
  std::vector<Token> tokenize();

 private:
  Token next();
  Token nextImpl();
  Token lexNumber();
  Token lexIdentifier();
  Token lexString();

  char peek(int ahead = 0) const;
  char advance();
  bool match(char expected);
  void skipBlockComment();
  bool atEnd() const { return pos_ >= src_.size(); }
  SourceLoc here() const { return {line_, col_}; }
  Token make(TokenKind kind, std::string text, SourceLoc loc) const;

  /// True when a `'` at the current position means transpose.
  bool quoteIsTranspose() const;

  std::string src_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
  TokenKind prevKind_ = TokenKind::Newline;
  bool spaceSeen_ = false;  // whitespace skipped before the token being lexed
};

}  // namespace mat2c
