// Idiom recognition: maps multiply-accumulate patterns onto the target's
// fused MAC instructions (fma.f64, cmac.c64). These are exactly the "custom
// instructions" the paper's ASIP exposes for DSP inner loops.
#include "opt/passes.hpp"

namespace mat2c::opt {

using namespace lir;

namespace {

bool fmaSupported(const isa::IsaDescription& isa, const VType& t) {
  if (t.scalar == Scalar::F64) return isa.hasFma();
  if (t.scalar == Scalar::C64) return isa.hasCmac();
  return false;
}

int rewriteExpr(ExprPtr& e, const isa::IsaDescription& isa, bool reassoc);

int rewriteChildren(Expr& e, const isa::IsaDescription& isa, bool reassoc) {
  int n = 0;
  if (e.index) n += rewriteExpr(e.index, isa, reassoc);
  if (e.a) n += rewriteExpr(e.a, isa, reassoc);
  if (e.b) n += rewriteExpr(e.b, isa, reassoc);
  if (e.c) n += rewriteExpr(e.c, isa, reassoc);
  return n;
}

int rewriteExpr(ExprPtr& e, const isa::IsaDescription& isa, bool reassoc) {
  int n = rewriteChildren(*e, isa, reassoc);
  if (e->kind != ExprKind::Binary || e->binOp != BinOp::Add) return n;
  if (!(e->type.scalar == Scalar::F64 || e->type.scalar == Scalar::C64)) return n;
  if (!fmaSupported(isa, e->type)) return n;

  // a*b + c  or  c + a*b   ->  fma(a, b, c)
  auto isMul = [](const ExprPtr& x) {
    return x->kind == ExprKind::Binary && x->binOp == BinOp::Mul;
  };
  ExprPtr mul;
  ExprPtr addend;
  if (isMul(e->a)) {
    mul = std::move(e->a);
    addend = std::move(e->b);
  } else if (isMul(e->b)) {
    mul = std::move(e->b);
    addend = std::move(e->a);
  } else if (reassoc) {
    // (a*b - y) + z  or  z + (a*b - y)  ->  fma(a, b, z) - y.
    // Changes the association of the outer add/sub chain, so only done
    // under the explicit reassoc option.
    auto isMulSub = [&](const ExprPtr& x) {
      return x->kind == ExprKind::Binary && x->binOp == BinOp::Sub && isMul(x->a);
    };
    ExprPtr sub;
    ExprPtr z;
    if (isMulSub(e->a)) {
      sub = std::move(e->a);
      z = std::move(e->b);
    } else if (isMulSub(e->b)) {
      sub = std::move(e->b);
      z = std::move(e->a);
    } else {
      return n;
    }
    VType type = e->type;
    ExprPtr mac = fma(std::move(sub->a->a), std::move(sub->a->b), std::move(z), type);
    e = binary(BinOp::Sub, std::move(mac), std::move(sub->b), type);
    return n + 1;
  } else {
    return n;
  }
  e = fma(std::move(mul->a), std::move(mul->b), std::move(addend), e->type);
  return n + 1;
}

int rewriteStmt(Stmt& s, const isa::IsaDescription& isa, bool reassoc) {
  int n = 0;
  if (s.value) n += rewriteExpr(s.value, isa, reassoc);
  if (s.index) n += rewriteExpr(s.index, isa, reassoc);
  if (s.cond) n += rewriteExpr(s.cond, isa, reassoc);
  if (s.lo) n += rewriteExpr(s.lo, isa, reassoc);
  if (s.hi) n += rewriteExpr(s.hi, isa, reassoc);
  for (auto& st : s.body) n += rewriteStmt(*st, isa, reassoc);
  for (auto& st : s.elseBody) n += rewriteStmt(*st, isa, reassoc);
  return n;
}

}  // namespace

int recognizeIdioms(lir::Function& fn, const isa::IsaDescription& isa, bool reassociate) {
  int n = 0;
  for (auto& s : fn.body) n += rewriteStmt(*s, isa, reassociate);
  return n;
}

}  // namespace mat2c::opt
