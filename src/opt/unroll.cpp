// Recurrence unrolling.
//
// Loops that carry a scalar value across iterations (v = f(v) where f is not
// a plain reduction) defeat both the vectorizer and, because their array
// indices depend on the induction variable, LICM. On a target with zero-cost
// hardware loops unrolling saves no loop overhead; its entire value is that
// substituting the induction variable with constants turns every in-loop
// index into a literal, which lets the later constant fold + LICM passes
// hoist coefficient loads and promote state arrays to registers (the iir
// z1/z2 recurrence is the motivating case).
//
// Only loops with a compile-time trip count in [2, maxTrip] that actually
// carry a non-reduction scalar recurrence are unrolled, and they are
// unrolled fully: partial unrolling with a remainder loop would reintroduce
// the variable indices that blocked LICM in the first place.
#include <string>
#include <vector>

#include "lir/analysis.hpp"
#include "opt/passes.hpp"

namespace mat2c::opt {

using namespace lir;

namespace {

/// Matches the vectorizer's reduction forms: acc = acc op x, acc = x op acc,
/// acc = fma(a, b, acc). Anything else that assigns an outer-scope scalar is
/// a genuine recurrence.
bool isReductionForm(const Stmt& s) {
  const Expr& rhs = *s.value;
  if (rhs.kind == ExprKind::Binary &&
      (rhs.binOp == BinOp::Add || rhs.binOp == BinOp::Min || rhs.binOp == BinOp::Max)) {
    bool lhsAcc = rhs.a->kind == ExprKind::VarRef && rhs.a->name == s.name;
    bool rhsAcc = rhs.b->kind == ExprKind::VarRef && rhs.b->name == s.name;
    return lhsAcc != rhsAcc;
  }
  if (rhs.kind == ExprKind::Fma) {
    return rhs.c->kind == ExprKind::VarRef && rhs.c->name == s.name;
  }
  return false;
}

/// True when the body (recursively) assigns a scalar it does not itself
/// declare, in a non-reduction form.
bool carriesRecurrence(const std::vector<StmtPtr>& body) {
  AccessInfo info;
  for (const auto& s : body) collectAccess(*s, info);
  for (const auto& name : info.scalarWrites) {
    if (info.scalarDecls.count(name)) continue;
    // Find an assignment to `name` and classify it.
    std::function<bool(const std::vector<StmtPtr>&)> scan =
        [&](const std::vector<StmtPtr>& block) -> bool {
      for (const auto& s : block) {
        if (s->kind == StmtKind::Assign && s->name == name && !isReductionForm(*s)) {
          return true;
        }
        if (scan(s->body) || scan(s->elseBody)) return true;
      }
      return false;
    };
    if (scan(body)) return true;
  }
  return false;
}

void collectDeclNames(const std::vector<StmtPtr>& body, std::vector<std::string>& out) {
  for (const auto& s : body) {
    if (s->kind == StmtKind::DeclScalar || s->kind == StmtKind::For) out.push_back(s->name);
    collectDeclNames(s->body, out);
    collectDeclNames(s->elseBody, out);
  }
}

std::size_t countStmts(const std::vector<StmtPtr>& body) {
  std::size_t n = 0;
  for (const auto& s : body) {
    n += 1 + countStmts(s->body) + countStmts(s->elseBody);
  }
  return n;
}

struct Unroller {
  int maxTrip;
  std::size_t maxStatements;  // 0 = unlimited
  std::size_t current = 0;    // running statement count of the function
  int unrolled = 0;
  int freshId = 0;

  void visitBlock(std::vector<StmtPtr>& block) {
    std::vector<StmtPtr> out;
    out.reserve(block.size());
    for (auto& sp : block) {
      visitBlock(sp->body);
      visitBlock(sp->elseBody);
      if (sp->kind == StmtKind::For && tryUnroll(*sp, out)) {
        ++unrolled;
        continue;  // the loop was expanded into `out`
      }
      out.push_back(std::move(sp));
    }
    block = std::move(out);
  }

  bool tryUnroll(const Stmt& loop, std::vector<StmtPtr>& out) {
    if (loop.lo->kind != ExprKind::ConstI || loop.hi->kind != ExprKind::ConstI) return false;
    std::int64_t lo = loop.lo->ival, hi = loop.hi->ival, step = loop.step;
    if (step <= 0 || hi <= lo) return false;
    std::int64_t trip = (hi - lo + step - 1) / step;
    if (trip < 2 || trip > maxTrip) return false;

    AccessInfo info;
    for (const auto& s : loop.body) collectAccess(*s, info);
    if (info.hasLoopControl || info.hasWhile) return false;
    if (!carriesRecurrence(loop.body)) return false;

    // Resource guard: skip (don't error) when the expansion would push the
    // function past the statement budget — the loop just stays rolled.
    if (maxStatements > 0) {
      std::size_t bodyStmts = countStmts(loop.body);
      std::size_t expanded = static_cast<std::size_t>(trip) * bodyStmts;
      std::size_t removed = bodyStmts + 1;  // the loop statement and its body
      if (current + expanded > maxStatements + removed) return false;
      current += expanded - removed;
    }

    std::vector<std::string> declNames;
    collectDeclNames(loop.body, declNames);

    for (std::int64_t t = 0; t < trip; ++t) {
      ExprPtr ivValue = constI(lo + t * step);
      for (const auto& s : loop.body) {
        StmtPtr copy = s->clone();
        // Rename body-local declarations so the expanded copies do not
        // redeclare the same C identifier in one block.
        if (t > 0) {
          for (const auto& d : declNames) {
            renameVar(*copy, d, d + "_u" + std::to_string(freshId) + "_" + std::to_string(t));
          }
        }
        substituteVar(*copy, loop.name, *ivValue);
        out.push_back(std::move(copy));
      }
    }
    ++freshId;
    return true;
  }
};

}  // namespace

int unrollRecurrences(lir::Function& fn, int maxTrip, std::size_t maxStatements) {
  Unroller u{maxTrip, maxStatements};
  if (maxStatements > 0) u.current = countStmts(fn.body);
  u.visitBlock(fn.body);
  return u.unrolled;
}

}  // namespace mat2c::opt
