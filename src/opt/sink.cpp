// Declaration sinking.
//
// The lowerer declares every MATLAB variable's storage at frame level so
// control flow always targets stable storage. For loop-body temporaries
// (di = x(i) * conj(x(i-1)); ...) that placement makes the loop assign to an
// *outer* variable, which the vectorizer must conservatively treat as a
// cross-iteration dependence. This pass sinks a declaration into a loop body
// when (a) every reference to the variable lives inside that single
// statement and (b) the first reference inside the loop is an unconditional
// whole-value write — i.e. the value provably does not carry across
// iterations.
#include <map>
#include <string>

#include "opt/passes.hpp"

namespace mat2c::opt {

using namespace lir;

namespace {

void countRefsExpr(const Expr& e, std::map<std::string, int>& counts) {
  if (e.kind == ExprKind::VarRef) counts[e.name]++;
  if (e.index) countRefsExpr(*e.index, counts);
  if (e.a) countRefsExpr(*e.a, counts);
  if (e.b) countRefsExpr(*e.b, counts);
  if (e.c) countRefsExpr(*e.c, counts);
}

void countRefsStmt(const Stmt& s, std::map<std::string, int>& counts) {
  if (s.kind == StmtKind::DeclScalar || s.kind == StmtKind::Assign) counts[s.name]++;
  if (s.kind == StmtKind::For) counts[s.name]++;  // induction var defines itself
  if (s.value) countRefsExpr(*s.value, counts);
  if (s.index) countRefsExpr(*s.index, counts);
  if (s.cond) countRefsExpr(*s.cond, counts);
  if (s.lo) countRefsExpr(*s.lo, counts);
  if (s.hi) countRefsExpr(*s.hi, counts);
  for (const auto& st : s.body) countRefsStmt(*st, counts);
  for (const auto& st : s.elseBody) countRefsStmt(*st, counts);
}

int refsIn(const Stmt& s, const std::string& name) {
  std::map<std::string, int> counts;
  countRefsStmt(s, counts);
  auto it = counts.find(name);
  return it == counts.end() ? 0 : it->second;
}

bool exprReferences(const Expr& e, const std::string& name) {
  std::map<std::string, int> counts;
  countRefsExpr(e, counts);
  return counts.count(name) != 0;
}

/// Finds where a declaration of `name` may sink inside `body`:
///   * if the first referencing statement is an unconditional top-level
///     full write (Assign whose value does not read `name`), that is the
///     spot;
///   * if ALL references live inside a single nested For, recurse into it;
///   * anything else (read-before-write, conditional write) fails.
struct SinkPoint {
  std::vector<StmtPtr>* block = nullptr;
  Stmt* write = nullptr;
};

SinkPoint findSinkPoint(std::vector<StmtPtr>& body, const std::string& name) {
  for (auto& sp : body) {
    Stmt& s = *sp;
    int refs = refsIn(s, name);
    if (refs == 0) continue;
    if (s.kind == StmtKind::Assign && s.name == name && !exprReferences(*s.value, name)) {
      return {&body, &s};
    }
    if (s.kind == StmtKind::For) {
      // Only valid if no later statement in this block references the name.
      bool escapes = false;
      bool seen = false;
      for (auto& other : body) {
        if (other.get() == &s) {
          seen = true;
          continue;
        }
        if (seen && refsIn(*other, name) > 0) escapes = true;
      }
      if (escapes) return {};
      return findSinkPoint(s.body, name);
    }
    return {};
  }
  return {};
}

bool sinkInBlock(std::vector<StmtPtr>& block) {
  bool anyChange = false;
  // Recurse first.
  for (auto& sp : block) {
    anyChange |= sinkInBlock(sp->body);
    anyChange |= sinkInBlock(sp->elseBody);
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < block.size(); ++i) {
      if (block[i]->kind != StmtKind::DeclScalar || block[i]->value) continue;
      const std::string& name = block[i]->name;
      // All other references must live inside exactly one For statement.
      Stmt* host = nullptr;
      bool eligible = true;
      for (std::size_t j = 0; j < block.size() && eligible; ++j) {
        if (j == i) continue;
        int refs = refsIn(*block[j], name);
        if (refs == 0) continue;
        if (host || block[j]->kind != StmtKind::For) {
          eligible = false;
        } else {
          host = block[j].get();
        }
      }
      if (!eligible || !host) continue;
      SinkPoint point = findSinkPoint(host->body, name);
      if (!point.write) continue;

      // Convert that first write into the declaration and drop the outer one.
      VType declType = block[i]->declType;
      for (auto& hs : *point.block) {
        if (hs.get() == point.write) {
          hs = declScalar(name, declType, std::move(hs->value));
          break;
        }
      }
      block.erase(block.begin() + static_cast<std::ptrdiff_t>(i));
      changed = true;
      anyChange = true;
      break;
    }
  }
  return anyChange;
}

}  // namespace

void sinkDecls(lir::Function& fn) {
  // Sinking into an outer loop can expose further sinking into inner loops;
  // iterate to a fixpoint (depth-bounded by loop nesting).
  for (int i = 0; i < 8 && sinkInBlock(fn.body); ++i) {
  }
}

}  // namespace mat2c::opt
