// Loop-invariant code motion + register promotion.
//
// Two related transforms, applied per `for` loop from the innermost out:
//
// 1. Register promotion: an array whose every in-loop access uses a
//    compile-time-constant, in-bounds index (the shape recurrence unrolling
//    produces for state arrays like the iir z1/z2 delay lines) is replaced
//    by one scalar per touched element — preloaded before the loop,
//    referenced/assigned inside it, and unconditionally stored back after
//    it. The writeback is value-preserving even for zero-trip loops: the
//    scalars still hold the preloaded values.
//
// 2. Invariant hoisting: the largest f64/c64 subexpressions whose variable
//    reads and array loads are untouched by the loop are computed once into
//    a scalar ahead of the loop. Loads may only be speculated ahead of the
//    loop when the index is provably in bounds or the loop provably runs at
//    least once with the load executed unconditionally (the VM faults on
//    out-of-bounds accesses, so a blind preload could trap where the
//    original program did not). i64 expressions are never touched: the
//    target's AGUs make index arithmetic free, and materializing it into
//    registers would only obscure the emitted C.
#include <map>
#include <string>
#include <vector>

#include "lir/analysis.hpp"
#include "opt/passes.hpp"

namespace mat2c::opt {

using namespace lir;

namespace {

struct Licm {
  const Function& fn;
  std::set<std::string> usedNames;
  int freshId = 0;
  int hoisted = 0;
  int promoted = 0;

  explicit Licm(Function& f) : fn(f) {
    AccessInfo all;
    for (const auto& s : f.body) collectAccess(*s, all);
    for (const auto& n : all.scalarReads) usedNames.insert(n);
    for (const auto& n : all.scalarWrites) usedNames.insert(n);
    for (const auto& p : f.params) usedNames.insert(p.name);
    for (const auto& o : f.outs) usedNames.insert(o.name);
    for (const auto& a : f.arrays) usedNames.insert(a.name);
  }

  std::string fresh(const std::string& hint) {
    std::string name;
    do {
      name = "h" + std::to_string(freshId++) + "_" + hint;
    } while (usedNames.count(name));
    usedNames.insert(name);
    return name;
  }

  void visitBlock(std::vector<StmtPtr>& block) {
    for (std::size_t i = 0; i < block.size(); ++i) {
      visitBlock(block[i]->body);
      visitBlock(block[i]->elseBody);
      if (block[i]->kind != StmtKind::For) continue;
      std::vector<StmtPtr> pre, post;
      processLoop(*block[i], pre, post);
      if (pre.empty() && post.empty()) continue;
      std::vector<StmtPtr> out;
      out.reserve(block.size() + pre.size() + post.size());
      for (std::size_t k = 0; k < i; ++k) out.push_back(std::move(block[k]));
      std::size_t skip = pre.size();
      for (auto& s : pre) out.push_back(std::move(s));
      out.push_back(std::move(block[i]));
      for (auto& s : post) out.push_back(std::move(s));
      for (std::size_t k = i + 1; k < block.size(); ++k) out.push_back(std::move(block[k]));
      block = std::move(out);
      i += skip + post.size();  // continue after the loop and its writebacks
    }
  }

  void processLoop(Stmt& loop, std::vector<StmtPtr>& pre, std::vector<StmtPtr>& post) {
    AccessInfo info;
    for (const auto& s : loop.body) collectAccess(*s, info);
    info.scalarWrites.insert(loop.name);
    if (info.hasLoopControl) return;  // break/continue: iterations differ

    promoteArrays(loop, info, pre, post);

    // Promotion rewrote stores into scalar assigns; recompute the write sets
    // so the new scalars are (correctly) treated as loop-varying.
    AccessInfo after;
    for (const auto& s : loop.body) collectAccess(*s, after);
    after.scalarWrites.insert(loop.name);
    hoistInvariants(loop, after, pre);
  }

  // ---- register promotion -------------------------------------------------

  bool promotable(const Stmt& loop, const std::string& array) {
    Scalar elem;
    std::int64_t numel = 0;
    if (!fn.arrayInfo(array, elem, numel)) return false;
    bool ok = true;
    std::function<void(const Expr&)> checkExpr = [&](const Expr& e) {
      if (e.kind == ExprKind::Load && e.name == array) {
        if (e.type.lanes != 1 || e.index->kind != ExprKind::ConstI ||
            e.index->ival < 0 || e.index->ival >= numel) {
          ok = false;
        }
      }
      if (e.index) checkExpr(*e.index);
      if (e.a) checkExpr(*e.a);
      if (e.b) checkExpr(*e.b);
      if (e.c) checkExpr(*e.c);
    };
    std::function<void(const Stmt&)> checkStmt = [&](const Stmt& s) {
      if ((s.kind == StmtKind::BoundsCheck || s.kind == StmtKind::AllocMark) &&
          s.name == array) {
        ok = false;
      }
      if (s.kind == StmtKind::Store && s.name == array) {
        if (!s.value || s.value->type.lanes != 1 || s.index->kind != ExprKind::ConstI ||
            s.index->ival < 0 || s.index->ival >= numel) {
          ok = false;
        }
      }
      if (s.value) checkExpr(*s.value);
      if (s.index && !(s.kind == StmtKind::Store && s.name == array)) checkExpr(*s.index);
      if (s.cond) checkExpr(*s.cond);
      if (s.lo) checkExpr(*s.lo);
      if (s.hi) checkExpr(*s.hi);
      for (const auto& st : s.body) checkStmt(*st);
      for (const auto& st : s.elseBody) checkStmt(*st);
    };
    for (const auto& s : loop.body) checkStmt(*s);
    return ok;
  }

  void promoteArrays(Stmt& loop, const AccessInfo& info, std::vector<StmtPtr>& pre,
                     std::vector<StmtPtr>& post) {
    for (const auto& array : info.arrayWrites) {
      if (!promotable(loop, array)) continue;
      Scalar elem;
      std::int64_t numel = 0;
      fn.arrayInfo(array, elem, numel);
      VType type{elem, 1};

      // Collect touched element indices in first-touch order.
      std::vector<std::int64_t> touched;
      std::map<std::int64_t, std::string> names;
      std::function<void(const Expr&)> scanExpr = [&](const Expr& e) {
        if (e.kind == ExprKind::Load && e.name == array && !names.count(e.index->ival)) {
          touched.push_back(e.index->ival);
          names[e.index->ival] = "";
        }
        if (e.index) scanExpr(*e.index);
        if (e.a) scanExpr(*e.a);
        if (e.b) scanExpr(*e.b);
        if (e.c) scanExpr(*e.c);
      };
      std::function<void(const Stmt&)> scanStmt = [&](const Stmt& s) {
        if (s.kind == StmtKind::Store && s.name == array && !names.count(s.index->ival)) {
          touched.push_back(s.index->ival);
          names[s.index->ival] = "";
        }
        if (s.value) scanExpr(*s.value);
        if (s.index && !(s.kind == StmtKind::Store && s.name == array)) scanExpr(*s.index);
        if (s.cond) scanExpr(*s.cond);
        if (s.lo) scanExpr(*s.lo);
        if (s.hi) scanExpr(*s.hi);
        for (const auto& st : s.body) scanStmt(*st);
        for (const auto& st : s.elseBody) scanStmt(*st);
      };
      for (const auto& s : loop.body) scanStmt(*s);
      if (touched.empty()) continue;

      for (std::int64_t k : touched) {
        names[k] = fresh(array + "_" + std::to_string(k));
        pre.push_back(declScalar(names[k], type, load(array, constI(k), type)));
        post.push_back(store(array, constI(k), varRef(names[k], type)));
        ++promoted;
        ++hoisted;
      }

      // Rewrite in-loop accesses to the scalars.
      std::function<void(ExprPtr&)> rewriteExpr = [&](ExprPtr& e) {
        if (e->kind == ExprKind::Load && e->name == array) {
          e = varRef(names[e->index->ival], type);
          return;
        }
        if (e->index) rewriteExpr(e->index);
        if (e->a) rewriteExpr(e->a);
        if (e->b) rewriteExpr(e->b);
        if (e->c) rewriteExpr(e->c);
      };
      std::function<void(Stmt&)> rewriteStmt = [&](Stmt& s) {
        if (s.value) rewriteExpr(s.value);
        if (s.cond) rewriteExpr(s.cond);
        if (s.lo) rewriteExpr(s.lo);
        if (s.hi) rewriteExpr(s.hi);
        if (s.kind == StmtKind::Store && s.name == array) {
          s.kind = StmtKind::Assign;
          s.name = names[s.index->ival];
          s.index.reset();
        } else if (s.index) {
          rewriteExpr(s.index);
        }
        for (auto& st : s.body) rewriteStmt(*st);
        for (auto& st : s.elseBody) rewriteStmt(*st);
      };
      for (auto& s : loop.body) rewriteStmt(*s);
    }
  }

  // ---- invariant hoisting -------------------------------------------------

  bool tripAtLeastOne(const Stmt& loop) const {
    return loop.lo->kind == ExprKind::ConstI && loop.hi->kind == ExprKind::ConstI &&
           (loop.step > 0 ? loop.lo->ival < loop.hi->ival
                          : loop.lo->ival > loop.hi->ival);
  }

  /// Every Load inside `e` is provably in bounds (constant index within the
  /// static extent).
  bool loadsProvablyInBounds(const Expr& e) const {
    if (e.kind == ExprKind::Load) {
      Scalar elem;
      std::int64_t numel = 0;
      if (!fn.arrayInfo(e.name, elem, numel)) return false;
      if (e.index->kind != ExprKind::ConstI) return false;
      std::int64_t last = e.index->ival + e.type.lanes - 1;
      if (e.index->ival < 0 || last >= numel) return false;
    }
    if (e.index && !loadsProvablyInBounds(*e.index)) return false;
    if (e.a && !loadsProvablyInBounds(*e.a)) return false;
    if (e.b && !loadsProvablyInBounds(*e.b)) return false;
    if (e.c && !loadsProvablyInBounds(*e.c)) return false;
    return true;
  }

  bool invariant(const Expr& e, const AccessInfo& loopInfo) const {
    AccessInfo ei;
    collectAccess(e, ei);
    for (const auto& r : ei.scalarReads) {
      if (loopInfo.scalarWrites.count(r)) return false;
    }
    for (const auto& a : ei.arrayReads) {
      if (loopInfo.arrayWrites.count(a)) return false;
    }
    return true;
  }

  bool hoistableKind(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::Load:
      case ExprKind::Unary:
      case ExprKind::Binary:
      case ExprKind::Fma:
      case ExprKind::Splat: return true;
      default: return false;
    }
  }

  void hoistInvariants(Stmt& loop, const AccessInfo& info, std::vector<StmtPtr>& pre) {
    bool safeSpeculation = tripAtLeastOne(loop);
    // (key expr, unconditional) candidates in first-occurrence order.
    std::vector<ExprPtr> candidates;
    std::vector<std::string> keys;

    std::function<void(const Expr&, bool)> scanExpr = [&](const Expr& e, bool uncond) {
      if (hoistableKind(e) &&
          (e.type.scalar == Scalar::F64 || e.type.scalar == Scalar::C64) &&
          invariant(e, info) &&
          (!containsLoad(e) ||
           loadsProvablyInBounds(e) || (uncond && safeSpeculation))) {
        std::string key = lir::print(e);
        for (const auto& k : keys) {
          if (k == key) return;  // already a candidate
        }
        keys.push_back(std::move(key));
        candidates.push_back(e.clone());
        return;  // take the largest subtree; children come along
      }
      if (e.index) scanExpr(*e.index, uncond);
      if (e.a) scanExpr(*e.a, uncond);
      if (e.b) scanExpr(*e.b, uncond);
      if (e.c) scanExpr(*e.c, uncond);
    };
    std::function<void(const Stmt&, bool)> scanStmt = [&](const Stmt& s, bool uncond) {
      if (s.value) scanExpr(*s.value, uncond);
      if (s.index) scanExpr(*s.index, uncond);
      if (s.cond) scanExpr(*s.cond, uncond);
      if (s.lo) scanExpr(*s.lo, uncond);
      if (s.hi) scanExpr(*s.hi, uncond);
      for (const auto& st : s.body) scanStmt(*st, false);
      for (const auto& st : s.elseBody) scanStmt(*st, false);
    };
    for (const auto& s : loop.body) scanStmt(*s, true);

    for (auto& e : candidates) {
      std::string name = fresh("inv");
      VType type = e->type;
      // Replace every structural occurrence in the loop body.
      std::function<void(ExprPtr&)> replaceExpr = [&](ExprPtr& x) {
        if (exprEquals(*x, *e)) {
          x = varRef(name, type);
          return;
        }
        if (x->index) replaceExpr(x->index);
        if (x->a) replaceExpr(x->a);
        if (x->b) replaceExpr(x->b);
        if (x->c) replaceExpr(x->c);
      };
      std::function<void(Stmt&)> replaceStmt = [&](Stmt& s) {
        if (s.value) replaceExpr(s.value);
        if (s.index) replaceExpr(s.index);
        if (s.cond) replaceExpr(s.cond);
        if (s.lo) replaceExpr(s.lo);
        if (s.hi) replaceExpr(s.hi);
        for (auto& st : s.body) replaceStmt(*st);
        for (auto& st : s.elseBody) replaceStmt(*st);
      };
      for (auto& s : loop.body) replaceStmt(*s);
      pre.push_back(declScalar(name, type, std::move(e)));
      ++hoisted;
    }
  }
};

}  // namespace

LicmStats hoistLoopInvariants(lir::Function& fn) {
  Licm licm(fn);
  licm.visitBlock(fn.body);
  return {licm.hoisted, licm.promoted};
}

}  // namespace mat2c::opt
