// Optimization passes over LIR.
//
// The pipeline mirrors the paper's compiler flow: constant folding
// normalizes index arithmetic, idiom recognition maps multiply-accumulate
// and complex-arithmetic patterns onto the ASIP's custom scalar
// instructions, and the vectorizer strip-mines innermost loops onto the SIMD
// lane width the active ISA description advertises (with a scalar remainder
// loop). Every transformation is gated on IsaDescription::supports, so
// retargeting is purely a matter of swapping the description.
#pragma once

#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "lir/lir.hpp"

namespace mat2c::opt {

/// Folds constant scalar arithmetic and canonicalizes affine i64 index
/// expressions ((k - 1) + 1 -> k).
void constFold(lir::Function& fn);

/// Sinks frame-level declarations of loop-local temporaries into the loop
/// body that owns them, exposing per-iteration privatization to the
/// vectorizer.
void sinkDecls(lir::Function& fn);

/// Rewrites a*b + c into fused multiply-accumulate expressions when the
/// target has the corresponding instruction (fma.f64 / cmac.c64).
/// Returns the number of rewrites.
int recognizeIdioms(lir::Function& fn, const isa::IsaDescription& isa);

struct VectorizeStats {
  int loopsConsidered = 0;
  int loopsVectorized = 0;
  int reductionsVectorized = 0;
  /// One human-readable note per rejected innermost loop — the compiler's
  /// "-Rpass-missed" channel, surfaced by the CLI.
  std::vector<std::string> missed;
};

/// SIMD-vectorizes innermost loops: stride-1 loads/stores, reduction
/// accumulators, splat of loop invariants; emits a scalar remainder loop.
VectorizeStats vectorize(lir::Function& fn, const isa::IsaDescription& isa);

/// Removes Assign/DeclScalar statements whose target is never read (pure
/// right-hand sides make this always safe). Returns sweep rounds.
int eliminateDeadScalars(lir::Function& fn);

/// Removes BoundsCheck statements whose affine index provably stays inside
/// the (static) array extent. Returns the number of checks removed.
int eliminateProvableChecks(lir::Function& fn);

struct PipelineOptions {
  bool constFold = true;
  bool idioms = true;
  bool vectorize = true;
  bool deadCode = true;
  /// Remove provably-safe bounds checks (meaningful for CoderLike code; the
  /// Proposed style emits none). Off by default so the baseline faithfully
  /// models a dynamic-shape runtime; ablations switch it on.
  bool checkElim = false;
};

struct PipelineReport {
  int idiomRewrites = 0;
  int checksRemoved = 0;
  VectorizeStats vec;
};

/// Runs the standard pass order: fold -> idioms -> vectorize -> fold.
PipelineReport runPipeline(lir::Function& fn, const isa::IsaDescription& isa,
                           const PipelineOptions& options);

}  // namespace mat2c::opt
