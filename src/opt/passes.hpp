// Optimization passes over LIR.
//
// The pipeline mirrors the paper's compiler flow: constant folding
// normalizes index arithmetic, idiom recognition maps multiply-accumulate
// and complex-arithmetic patterns onto the ASIP's custom scalar
// instructions, and the vectorizer strip-mines innermost loops onto the SIMD
// lane width the active ISA description advertises (with a scalar remainder
// loop). Every transformation is gated on IsaDescription::supports, so
// retargeting is purely a matter of swapping the description.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "lir/lir.hpp"

namespace mat2c::opt {

/// Folds constant scalar arithmetic, canonicalizes affine i64 index
/// expressions ((k - 1) + 1 -> k), and propagates single-assignment i64
/// constants (strip-mine bounds) into their uses so later passes see
/// literal loop bounds.
void constFold(lir::Function& fn);

/// Sinks frame-level declarations of loop-local temporaries into the loop
/// body that owns them, exposing per-iteration privatization to the
/// vectorizer.
void sinkDecls(lir::Function& fn);

/// Rewrites a*b + c into fused multiply-accumulate expressions when the
/// target has the corresponding instruction (fma.f64 / cmac.c64).
/// With `reassociate` set it additionally rewrites (a*b - y) + z into
/// fma(a, b, z) - y; that changes floating-point association (bounded
/// rounding noise, see EXPERIMENTS.md), so it is gated behind an explicit
/// option that defaults off. Returns the number of rewrites.
int recognizeIdioms(lir::Function& fn, const isa::IsaDescription& isa,
                    bool reassociate = false);

struct VectorizeStats {
  int loopsConsidered = 0;
  int loopsVectorized = 0;
  int reductionsVectorized = 0;
  /// One human-readable note per rejected innermost loop — the compiler's
  /// "-Rpass-missed" channel, surfaced by the CLI.
  std::vector<std::string> missed;
};

/// SIMD-vectorizes innermost loops: stride-1 loads/stores, reduction
/// accumulators, splat of loop invariants; emits a scalar remainder loop.
VectorizeStats vectorize(lir::Function& fn, const isa::IsaDescription& isa);

/// Removes Assign/DeclScalar statements whose target is never read (pure
/// right-hand sides make this always safe). Returns sweep rounds.
int eliminateDeadScalars(lir::Function& fn);

/// Dead-store/dead-loop cleanup: drops stores into local arrays that are
/// never loaded, removes For loops with empty bodies or provably zero trip
/// counts, empty If statements, and unreferenced local array declarations.
/// Returns the number of statements/arrays removed.
int eliminateDeadStores(lir::Function& fn);

/// Fuses adjacent For loops with affine-equal iteration spaces and no
/// fusion-preventing dependence, hoisting independent intervening
/// statements out of the way first. Returns the number of fusions.
int fuseLoops(lir::Function& fn);

/// Fully unrolls compile-time-constant-trip loops (trip in [2, maxTrip])
/// that carry a non-reduction scalar recurrence, turning their indices into
/// literals that LICM can then hoist or promote. Returns loops unrolled.
/// With maxStatements > 0 an unroll whose expansion would push the
/// function's statement count past the budget is skipped (not an error —
/// the loop simply stays rolled).
int unrollRecurrences(lir::Function& fn, int maxTrip, std::size_t maxStatements = 0);

struct LicmStats {
  int exprsHoisted = 0;     // invariant subexpressions + preloaded elements
  int scalarsPromoted = 0;  // array elements promoted to registers
};

/// Loop-invariant code motion: hoists invariant f64/c64 subexpressions out
/// of For loops and promotes arrays whose in-loop accesses all use constant
/// in-bounds indices to scalars (preload / writeback around the loop).
LicmStats hoistLoopInvariants(lir::Function& fn);

/// Region CSE with store-to-load forwarding (see src/opt/cse.cpp for the
/// precise availability rules). Returns the number of re-evaluations
/// replaced by register references.
int eliminateCommonSubexprs(lir::Function& fn);

/// Removes BoundsCheck statements whose affine index provably stays inside
/// the (static) array extent. Returns the number of checks removed.
int eliminateProvableChecks(lir::Function& fn);

/// Telemetry for one executed pass: wall-clock time, LIR size before/after,
/// and the pass-specific counters (zero for passes without one). Surfaced
/// through PipelineReport::passes, the CLI's --time-passes/--telemetry-json,
/// and the benches.
struct PassRecord {
  std::string name;
  double millis = 0.0;
  lir::FunctionStats before;
  lir::FunctionStats after;
  int checksRemoved = 0;
  int idiomRewrites = 0;
  int loopsVectorized = 0;
  int loopsFused = 0;
  int loopsUnrolled = 0;
  int exprsHoisted = 0;
  int scalarsPromoted = 0;
  int cseEliminated = 0;
  int storesRemoved = 0;

  /// Whether the pass changed the function's *size* statistics. A pass can
  /// rewrite in place without moving these (e.g. constant folding), so false
  /// does not prove the pass was a no-op.
  bool resized() const { return !(before == after); }
};

struct PipelineOptions {
  bool constFold = true;
  bool idioms = true;
  bool vectorize = true;
  bool deadCode = true;
  /// Sink frame-level decls of loop-local temporaries into their loop. A
  /// standalone cleanup (not part of vectorization); on for every style.
  bool sinkDecls = true;
  /// Remove provably-safe bounds checks (meaningful for CoderLike code; the
  /// Proposed style emits none). Off by default so the baseline faithfully
  /// models a dynamic-shape runtime; ablations switch it on.
  bool checkElim = false;
  /// Loop-optimization layer (fuse/unroll/licm/cse run in that order around
  /// the vectorizer; see standardPipeline for the rationale).
  bool fuseLoops = true;
  bool unrollRecurrences = true;
  int unrollMaxTrip = 8;
  bool licm = true;
  bool cse = true;
  /// Dead-store and dead-loop cleanup (folded into the dce passes). Gated
  /// separately so the CoderLike baseline keeps its literal statement
  /// stream.
  bool deadStores = true;
  /// Allow reassociating rewrites in idiom recognition ((a*b - y) + z ->
  /// fma(a,b,z) - y). Changes rounding; off by default.
  bool reassoc = false;
  /// Run lir::verify after every pass; a failure throws StructuredError
  /// (VerifyError) naming the offending pass and listing every verifier
  /// problem.
  bool verifyEach = false;
  /// Resource guard: when > 0, a pass that *grows* the function past this
  /// many LIR statements throws StructuredError(ResourceExhausted) naming
  /// the pass. Growth-gated so a program that is already large compiles
  /// unchanged under a tight budget; size-increasing passes (unroll) also
  /// receive the budget and skip expansions instead of tripping it.
  std::size_t maxLirOps = 0;
  /// Called after each pass with its record and the function as the pass
  /// left it — the CLI's --trace-passes hook (dumps via lir::print).
  std::function<void(const PassRecord&, const lir::Function&)> trace;
};

struct PipelineReport {
  int idiomRewrites = 0;
  int checksRemoved = 0;
  int loopsFused = 0;
  int loopsUnrolled = 0;
  int exprsHoisted = 0;
  int scalarsPromoted = 0;
  int cseEliminated = 0;
  int storesRemoved = 0;
  VectorizeStats vec;
  /// One record per executed pass, in execution order.
  std::vector<PassRecord> passes;
  double totalMillis = 0.0;
  /// Degradation-ladder markers recorded by the driver: names of passes the
  /// compile retried without, plus "coderLike" when it fell back entirely.
  /// Empty on a clean first-attempt compile.
  std::vector<std::string> degraded;
};

/// An ordered, named sequence of passes run through the instrumented
/// harness. The standard pipeline is built by standardPipeline(); tests and
/// tools may assemble custom sequences (e.g. to inject a deliberately broken
/// pass and check verifyEach attribution).
class PassPipeline {
 public:
  /// A pass body: mutates the function and reports pass-specific counters
  /// into its PassRecord and the aggregate PipelineReport.
  using PassFn = std::function<void(lir::Function&, const isa::IsaDescription&,
                                    PassRecord&, PipelineReport&)>;

  PassPipeline& addPass(std::string name, PassFn fn);

  /// Runs every pass in order, recording wall time and LIR stats around
  /// each. Honors options.verifyEach and options.trace.
  PipelineReport run(lir::Function& fn, const isa::IsaDescription& isa,
                     const PipelineOptions& options) const;

  std::size_t size() const { return passes_.size(); }
  std::vector<std::string> names() const;

 private:
  struct Pass {
    std::string name;
    PassFn fn;
  };
  std::vector<Pass> passes_;
};

/// Builds the standard pass order from the option toggles:
///   constfold -> dce -> checkelim -> sinkdecls -> unroll -> idioms
///   -> vectorize -> constfold.post -> dce.post -> fuse -> licm -> cse
///   -> dce.final
/// Unrolling runs before the vectorizer (it only touches loops the
/// vectorizer rejects, and the literal indices it exposes are what LICM
/// promotes). Fusion/LICM/CSE run after the vectorizer and after the .post
/// cleanup: fusing earlier could trade SIMD for locality, and the cleanup's
/// constant propagation is what turns strip-mine bounds into the literals
/// the fusion legality test needs.
PassPipeline standardPipeline(const PipelineOptions& options);

/// Builds the standard pipeline and runs it.
PipelineReport runPipeline(lir::Function& fn, const isa::IsaDescription& isa,
                           const PipelineOptions& options);

}  // namespace mat2c::opt
