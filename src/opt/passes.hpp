// Optimization passes over LIR.
//
// The pipeline mirrors the paper's compiler flow: constant folding
// normalizes index arithmetic, idiom recognition maps multiply-accumulate
// and complex-arithmetic patterns onto the ASIP's custom scalar
// instructions, and the vectorizer strip-mines innermost loops onto the SIMD
// lane width the active ISA description advertises (with a scalar remainder
// loop). Every transformation is gated on IsaDescription::supports, so
// retargeting is purely a matter of swapping the description.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "lir/lir.hpp"

namespace mat2c::opt {

/// Folds constant scalar arithmetic and canonicalizes affine i64 index
/// expressions ((k - 1) + 1 -> k).
void constFold(lir::Function& fn);

/// Sinks frame-level declarations of loop-local temporaries into the loop
/// body that owns them, exposing per-iteration privatization to the
/// vectorizer.
void sinkDecls(lir::Function& fn);

/// Rewrites a*b + c into fused multiply-accumulate expressions when the
/// target has the corresponding instruction (fma.f64 / cmac.c64).
/// Returns the number of rewrites.
int recognizeIdioms(lir::Function& fn, const isa::IsaDescription& isa);

struct VectorizeStats {
  int loopsConsidered = 0;
  int loopsVectorized = 0;
  int reductionsVectorized = 0;
  /// One human-readable note per rejected innermost loop — the compiler's
  /// "-Rpass-missed" channel, surfaced by the CLI.
  std::vector<std::string> missed;
};

/// SIMD-vectorizes innermost loops: stride-1 loads/stores, reduction
/// accumulators, splat of loop invariants; emits a scalar remainder loop.
VectorizeStats vectorize(lir::Function& fn, const isa::IsaDescription& isa);

/// Removes Assign/DeclScalar statements whose target is never read (pure
/// right-hand sides make this always safe). Returns sweep rounds.
int eliminateDeadScalars(lir::Function& fn);

/// Removes BoundsCheck statements whose affine index provably stays inside
/// the (static) array extent. Returns the number of checks removed.
int eliminateProvableChecks(lir::Function& fn);

/// Telemetry for one executed pass: wall-clock time, LIR size before/after,
/// and the pass-specific counters (zero for passes without one). Surfaced
/// through PipelineReport::passes, the CLI's --time-passes/--telemetry-json,
/// and the benches.
struct PassRecord {
  std::string name;
  double millis = 0.0;
  lir::FunctionStats before;
  lir::FunctionStats after;
  int checksRemoved = 0;
  int idiomRewrites = 0;
  int loopsVectorized = 0;

  /// Whether the pass changed the function's *size* statistics. A pass can
  /// rewrite in place without moving these (e.g. constant folding), so false
  /// does not prove the pass was a no-op.
  bool resized() const { return !(before == after); }
};

struct PipelineOptions {
  bool constFold = true;
  bool idioms = true;
  bool vectorize = true;
  bool deadCode = true;
  /// Sink frame-level decls of loop-local temporaries into their loop. A
  /// standalone cleanup (not part of vectorization); on for every style.
  bool sinkDecls = true;
  /// Remove provably-safe bounds checks (meaningful for CoderLike code; the
  /// Proposed style emits none). Off by default so the baseline faithfully
  /// models a dynamic-shape runtime; ablations switch it on.
  bool checkElim = false;
  /// Run lir::verify after every pass; a failure throws CompileError naming
  /// the offending pass and listing every verifier problem.
  bool verifyEach = false;
  /// Called after each pass with its record and the function as the pass
  /// left it — the CLI's --trace-passes hook (dumps via lir::print).
  std::function<void(const PassRecord&, const lir::Function&)> trace;
};

struct PipelineReport {
  int idiomRewrites = 0;
  int checksRemoved = 0;
  VectorizeStats vec;
  /// One record per executed pass, in execution order.
  std::vector<PassRecord> passes;
  double totalMillis = 0.0;
};

/// An ordered, named sequence of passes run through the instrumented
/// harness. The standard pipeline is built by standardPipeline(); tests and
/// tools may assemble custom sequences (e.g. to inject a deliberately broken
/// pass and check verifyEach attribution).
class PassPipeline {
 public:
  /// A pass body: mutates the function and reports pass-specific counters
  /// into its PassRecord and the aggregate PipelineReport.
  using PassFn = std::function<void(lir::Function&, const isa::IsaDescription&,
                                    PassRecord&, PipelineReport&)>;

  PassPipeline& addPass(std::string name, PassFn fn);

  /// Runs every pass in order, recording wall time and LIR stats around
  /// each. Honors options.verifyEach and options.trace.
  PipelineReport run(lir::Function& fn, const isa::IsaDescription& isa,
                     const PipelineOptions& options) const;

  std::size_t size() const { return passes_.size(); }
  std::vector<std::string> names() const;

 private:
  struct Pass {
    std::string name;
    PassFn fn;
  };
  std::vector<Pass> passes_;
};

/// Builds the standard pass order from the option toggles:
///   constfold -> dce -> checkelim -> sinkdecls -> idioms -> vectorize
///   -> constfold.post -> dce.post
/// (the .post reruns clean up the index arithmetic vectorization introduces).
PassPipeline standardPipeline(const PipelineOptions& options);

/// Builds the standard pipeline and runs it.
PipelineReport runPipeline(lir::Function& fn, const isa::IsaDescription& isa,
                           const PipelineOptions& options);

}  // namespace mat2c::opt
