// Dead scalar elimination.
//
// The lowerer materializes every MATLAB variable (loop-variable mirrors,
// shape-query temps) whether or not anything reads it. All LIR right-hand
// sides are pure (loads have no side effects), so any Assign/DeclScalar whose
// target is never read — and is not a function output — can be dropped.
// Iterates to a fixpoint since removing an assignment removes its operand
// reads.
#include <map>
#include <set>
#include <string>

#include "opt/passes.hpp"

namespace mat2c::opt {

using namespace lir;

namespace {

void countReadsExpr(const Expr& e, std::map<std::string, int>& reads) {
  if (e.kind == ExprKind::VarRef) reads[e.name]++;
  if (e.index) countReadsExpr(*e.index, reads);
  if (e.a) countReadsExpr(*e.a, reads);
  if (e.b) countReadsExpr(*e.b, reads);
  if (e.c) countReadsExpr(*e.c, reads);
}

void countReadsStmt(const Stmt& s, std::map<std::string, int>& reads) {
  if (s.value) countReadsExpr(*s.value, reads);
  if (s.index) countReadsExpr(*s.index, reads);
  if (s.cond) countReadsExpr(*s.cond, reads);
  if (s.lo) countReadsExpr(*s.lo, reads);
  if (s.hi) countReadsExpr(*s.hi, reads);
  for (const auto& st : s.body) countReadsStmt(*st, reads);
  for (const auto& st : s.elseBody) countReadsStmt(*st, reads);
}

bool sweepBlock(std::vector<StmtPtr>& block, const std::map<std::string, int>& reads,
                const std::set<std::string>& keep) {
  bool changed = false;
  std::vector<StmtPtr> out;
  out.reserve(block.size());
  for (auto& sp : block) {
    changed |= sweepBlock(sp->body, reads, keep);
    changed |= sweepBlock(sp->elseBody, reads, keep);
    bool dead = false;
    if (sp->kind == StmtKind::Assign || sp->kind == StmtKind::DeclScalar) {
      const std::string& name = sp->name;
      if (!keep.count(name)) {
        auto it = reads.find(name);
        dead = it == reads.end() || it->second == 0;
      }
    }
    if (dead) {
      changed = true;
    } else {
      out.push_back(std::move(sp));
    }
  }
  block = std::move(out);
  return changed;
}

}  // namespace

int eliminateDeadScalars(lir::Function& fn) {
  std::set<std::string> keep;
  for (const auto& o : fn.outs) {
    if (!o.isArray) keep.insert(o.name);
  }
  int rounds = 0;
  for (; rounds < 32; ++rounds) {
    std::map<std::string, int> reads;
    for (const auto& s : fn.body) countReadsStmt(*s, reads);
    if (!sweepBlock(fn.body, reads, keep)) break;
  }
  return rounds;
}

}  // namespace mat2c::opt
