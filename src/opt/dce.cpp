// Dead scalar elimination.
//
// The lowerer materializes every MATLAB variable (loop-variable mirrors,
// shape-query temps) whether or not anything reads it. All LIR right-hand
// sides are pure (loads have no side effects), so any Assign/DeclScalar whose
// target is never read — and is not a function output — can be dropped.
// Iterates to a fixpoint since removing an assignment removes its operand
// reads.
#include <map>
#include <set>
#include <string>

#include "opt/passes.hpp"

namespace mat2c::opt {

using namespace lir;

namespace {

void countReadsExpr(const Expr& e, std::map<std::string, int>& reads) {
  if (e.kind == ExprKind::VarRef) reads[e.name]++;
  if (e.index) countReadsExpr(*e.index, reads);
  if (e.a) countReadsExpr(*e.a, reads);
  if (e.b) countReadsExpr(*e.b, reads);
  if (e.c) countReadsExpr(*e.c, reads);
}

void countReadsStmt(const Stmt& s, std::map<std::string, int>& reads) {
  if (s.value) countReadsExpr(*s.value, reads);
  if (s.index) countReadsExpr(*s.index, reads);
  if (s.cond) countReadsExpr(*s.cond, reads);
  if (s.lo) countReadsExpr(*s.lo, reads);
  if (s.hi) countReadsExpr(*s.hi, reads);
  for (const auto& st : s.body) countReadsStmt(*st, reads);
  for (const auto& st : s.elseBody) countReadsStmt(*st, reads);
}

bool sweepBlock(std::vector<StmtPtr>& block, const std::map<std::string, int>& reads,
                const std::set<std::string>& keep) {
  bool changed = false;
  std::vector<StmtPtr> out;
  out.reserve(block.size());
  for (auto& sp : block) {
    changed |= sweepBlock(sp->body, reads, keep);
    changed |= sweepBlock(sp->elseBody, reads, keep);
    bool dead = false;
    if (sp->kind == StmtKind::Assign || sp->kind == StmtKind::DeclScalar) {
      const std::string& name = sp->name;
      if (!keep.count(name)) {
        auto it = reads.find(name);
        dead = it == reads.end() || it->second == 0;
      }
    }
    if (dead) {
      changed = true;
    } else {
      out.push_back(std::move(sp));
    }
  }
  block = std::move(out);
  return changed;
}

}  // namespace

int eliminateDeadScalars(lir::Function& fn) {
  std::set<std::string> keep;
  for (const auto& o : fn.outs) {
    if (!o.isArray) keep.insert(o.name);
  }
  int rounds = 0;
  for (; rounds < 32; ++rounds) {
    std::map<std::string, int> reads;
    for (const auto& s : fn.body) countReadsStmt(*s, reads);
    if (!sweepBlock(fn.body, reads, keep)) break;
  }
  return rounds;
}

namespace {

void countArrayRefs(const Expr& e, std::map<std::string, int>& loads) {
  if (e.kind == ExprKind::Load) loads[e.name]++;
  if (e.index) countArrayRefs(*e.index, loads);
  if (e.a) countArrayRefs(*e.a, loads);
  if (e.b) countArrayRefs(*e.b, loads);
  if (e.c) countArrayRefs(*e.c, loads);
}

void countArrayRefs(const std::vector<StmtPtr>& block, std::map<std::string, int>& loads,
                    std::map<std::string, int>& other) {
  for (const auto& s : block) {
    if (s->kind == StmtKind::BoundsCheck || s->kind == StmtKind::AllocMark) {
      other[s->name]++;
    }
    if (s->value) countArrayRefs(*s->value, loads);
    if (s->index) countArrayRefs(*s->index, loads);
    if (s->cond) countArrayRefs(*s->cond, loads);
    if (s->lo) countArrayRefs(*s->lo, loads);
    if (s->hi) countArrayRefs(*s->hi, loads);
    countArrayRefs(s->body, loads, other);
    countArrayRefs(s->elseBody, loads, other);
  }
}

int sweepDeadStores(std::vector<StmtPtr>& block, const std::set<std::string>& deadArrays) {
  int removed = 0;
  std::vector<StmtPtr> out;
  out.reserve(block.size());
  for (auto& sp : block) {
    removed += sweepDeadStores(sp->body, deadArrays);
    removed += sweepDeadStores(sp->elseBody, deadArrays);
    bool drop = false;
    if (sp->kind == StmtKind::Store && deadArrays.count(sp->name)) {
      drop = true;
    } else if (sp->kind == StmtKind::For && sp->body.empty()) {
      drop = true;  // bounds are pure; an empty loop only burns cycles
    } else if (sp->kind == StmtKind::For && sp->lo->kind == ExprKind::ConstI &&
               sp->hi->kind == ExprKind::ConstI &&
               (sp->step > 0 ? sp->lo->ival >= sp->hi->ival
                             : sp->lo->ival <= sp->hi->ival)) {
      drop = true;  // provably zero trips (e.g. an exact strip-mine remainder)
    } else if (sp->kind == StmtKind::If && sp->body.empty() && sp->elseBody.empty()) {
      drop = true;
    }
    if (drop) {
      ++removed;
    } else {
      out.push_back(std::move(sp));
    }
  }
  block = std::move(out);
  return removed;
}

}  // namespace

int eliminateDeadStores(lir::Function& fn) {
  int removed = 0;
  // Iterate: removing the stores of a never-loaded array can empty a loop,
  // and removing that loop can orphan another array's only loads.
  for (int round = 0; round < 16; ++round) {
    std::map<std::string, int> loads, other;
    countArrayRefs(fn.body, loads, other);
    // Only function-local arrays qualify: outputs escape to the caller and
    // writes through array parameters are visible there too.
    std::set<std::string> deadArrays;
    for (const auto& a : fn.arrays) {
      auto it = loads.find(a.name);
      bool neverLoaded = it == loads.end() || it->second == 0;
      // An AllocMark or BoundsCheck models a runtime effect on the array
      // (growth bookkeeping / a trap); keep such arrays untouched.
      if (neverLoaded && !other.count(a.name)) deadArrays.insert(a.name);
    }
    int n = sweepDeadStores(fn.body, deadArrays);
    if (n == 0) break;
    removed += n;
  }
  // Drop local array declarations nothing references anymore.
  {
    std::map<std::string, int> loads, other;
    countArrayRefs(fn.body, loads, other);
    std::map<std::string, int> stores;
    std::function<void(const std::vector<StmtPtr>&)> countStores =
        [&](const std::vector<StmtPtr>& block) {
          for (const auto& s : block) {
            if (s->kind == StmtKind::Store) stores[s->name]++;
            countStores(s->body);
            countStores(s->elseBody);
          }
        };
    countStores(fn.body);
    std::vector<ArrayDecl> kept;
    for (auto& a : fn.arrays) {
      if (loads.count(a.name) || other.count(a.name) || stores.count(a.name)) {
        kept.push_back(std::move(a));
      } else {
        ++removed;
      }
    }
    fn.arrays = std::move(kept);
  }
  return removed;
}

}  // namespace mat2c::opt
