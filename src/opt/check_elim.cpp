// Bounds-check elimination.
//
// CoderLike code carries a BoundsCheck before every array access. After
// specialization every array extent is a compile-time constant and most
// indices are affine in loop counters with constant bounds, so the range of
// the index is computable: checks that can never fire are removed. This is
// the static-shape payoff the paper's specializing front end enables — a
// MATLAB-Coder-style runtime cannot do this because its shapes are dynamic.
#include <map>
#include <string>

#include "opt/passes.hpp"

namespace mat2c::opt {

using namespace lir;

namespace {

struct Range {
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // inclusive
};

class Eliminator {
 public:
  explicit Eliminator(Function& fn) : fn_(fn) {}

  int run() {
    visit(fn_.body);
    return removed_;
  }

 private:
  /// Inclusive range of an affine i64 expression under the known loop-var
  /// ranges; false when any term is unknown.
  bool rangeOf(const Expr& e, Range& out) {
    Affine a = affineOf(e);
    if (!a.ok) return false;
    std::int64_t lo = a.constant;
    std::int64_t hi = a.constant;
    for (const auto& [name, coeff] : a.coeffs) {
      if (coeff == 0) continue;
      auto it = vars_.find(name);
      if (it == vars_.end()) return false;
      const Range& r = it->second;
      if (coeff > 0) {
        lo += coeff * r.lo;
        hi += coeff * r.hi;
      } else {
        lo += coeff * r.hi;
        hi += coeff * r.lo;
      }
    }
    out = {lo, hi};
    return true;
  }

  void visit(std::vector<StmtPtr>& block) {
    std::vector<StmtPtr> out;
    out.reserve(block.size());
    for (auto& sp : block) {
      Stmt& s = *sp;
      if (s.kind == StmtKind::For) {
        bool tracked = false;
        if (s.lo->kind == ExprKind::ConstI && s.hi->kind == ExprKind::ConstI) {
          // Range of the induction variable over all iterations (empty loops
          // keep a degenerate range; the check removal is still sound since
          // the body never runs).
          std::int64_t first = s.lo->ival;
          std::int64_t lastExcl = s.hi->ival;
          std::int64_t lo;
          std::int64_t hi;
          if (s.step > 0) {
            lo = first;
            hi = lastExcl - 1;
          } else {
            hi = first;
            lo = lastExcl + 1;
          }
          if (lo <= hi) {
            vars_[s.name] = {lo, hi};
            tracked = true;
          }
        }
        visit(s.body);
        if (tracked) vars_.erase(s.name);
        out.push_back(std::move(sp));
        continue;
      }
      if (s.kind == StmtKind::If || s.kind == StmtKind::While) {
        visit(s.body);
        visit(s.elseBody);
        out.push_back(std::move(sp));
        continue;
      }
      if (s.kind == StmtKind::BoundsCheck) {
        Scalar elem{};
        std::int64_t numel = 0;
        Range r;
        if (fn_.arrayInfo(s.name, elem, numel) && rangeOf(*s.index, r) && r.lo >= 0 &&
            r.hi < numel) {
          ++removed_;
          continue;  // provably safe — drop
        }
      }
      out.push_back(std::move(sp));
    }
    block = std::move(out);
  }

  Function& fn_;
  std::map<std::string, Range> vars_;
  int removed_ = 0;
};

}  // namespace

int eliminateProvableChecks(lir::Function& fn) { return Eliminator(fn).run(); }

}  // namespace mat2c::opt
