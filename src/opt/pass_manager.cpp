// Instrumented pass pipeline.
//
// Every pass — standard or injected — runs through the same harness: wall
// time and LIR size statistics are recorded around the pass body, optional
// inter-pass verification (PipelineOptions::verifyEach) attributes invalid
// LIR to the pass that produced it, and an optional trace hook observes the
// function between passes. The standard pass order lives in
// standardPipeline(); runPipeline() keeps the one-call interface the driver
// uses.
#include <chrono>

#include "opt/passes.hpp"
#include "support/diagnostics.hpp"
#include "support/string_utils.hpp"

namespace mat2c::opt {

PassPipeline& PassPipeline::addPass(std::string name, PassFn fn) {
  passes_.push_back({std::move(name), std::move(fn)});
  return *this;
}

std::vector<std::string> PassPipeline::names() const {
  std::vector<std::string> out;
  out.reserve(passes_.size());
  for (const auto& p : passes_) out.push_back(p.name);
  return out;
}

PipelineReport PassPipeline::run(lir::Function& fn, const isa::IsaDescription& isa,
                                 const PipelineOptions& options) const {
  using Clock = std::chrono::steady_clock;
  PipelineReport report;
  report.passes.reserve(passes_.size());
  for (const auto& pass : passes_) {
    PassRecord rec;
    rec.name = pass.name;
    rec.before = lir::collectStats(fn);
    auto start = Clock::now();
    pass.fn(fn, isa, rec, report);
    rec.millis = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    rec.after = lir::collectStats(fn);
    report.totalMillis += rec.millis;

    if (options.verifyEach) {
      auto problems = lir::verify(fn);
      if (!problems.empty()) {
        throw CompileError("pass '" + pass.name + "' produced invalid LIR (" +
                           std::to_string(problems.size()) + " problem(s)):\n  - " +
                           join(problems, "\n  - "));
      }
    }
    if (options.trace) options.trace(rec, fn);
    report.passes.push_back(std::move(rec));
  }
  return report;
}

PassPipeline standardPipeline(const PipelineOptions& options) {
  PassPipeline p;
  auto fold = [](lir::Function& fn, const isa::IsaDescription&, PassRecord&,
                 PipelineReport&) { constFold(fn); };
  auto dce = [](lir::Function& fn, const isa::IsaDescription&, PassRecord&,
                PipelineReport&) { eliminateDeadScalars(fn); };

  if (options.constFold) p.addPass("constfold", fold);
  if (options.deadCode) p.addPass("dce", dce);
  if (options.checkElim) {
    p.addPass("checkelim", [](lir::Function& fn, const isa::IsaDescription&,
                              PassRecord& rec, PipelineReport& report) {
      rec.checksRemoved = eliminateProvableChecks(fn);
      report.checksRemoved += rec.checksRemoved;
    });
  }
  if (options.sinkDecls) {
    p.addPass("sinkdecls", [](lir::Function& fn, const isa::IsaDescription&, PassRecord&,
                              PipelineReport&) { sinkDecls(fn); });
  }
  if (options.idioms) {
    p.addPass("idioms", [](lir::Function& fn, const isa::IsaDescription& isa,
                           PassRecord& rec, PipelineReport& report) {
      rec.idiomRewrites = recognizeIdioms(fn, isa);
      report.idiomRewrites += rec.idiomRewrites;
    });
  }
  if (options.vectorize) {
    p.addPass("vectorize", [](lir::Function& fn, const isa::IsaDescription& isa,
                              PassRecord& rec, PipelineReport& report) {
      VectorizeStats vs = vectorize(fn, isa);
      rec.loopsVectorized = vs.loopsVectorized;
      report.vec.loopsConsidered += vs.loopsConsidered;
      report.vec.loopsVectorized += vs.loopsVectorized;
      report.vec.reductionsVectorized += vs.reductionsVectorized;
      for (auto& note : vs.missed) report.vec.missed.push_back(std::move(note));
    });
  }
  // Vectorization introduces fresh index arithmetic; fold once more so the
  // emitted C and the VM trace stay clean.
  if (options.constFold) p.addPass("constfold.post", fold);
  if (options.deadCode) p.addPass("dce.post", dce);
  return p;
}

PipelineReport runPipeline(lir::Function& fn, const isa::IsaDescription& isa,
                           const PipelineOptions& options) {
  return standardPipeline(options).run(fn, isa, options);
}

}  // namespace mat2c::opt
