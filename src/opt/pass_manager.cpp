#include "opt/passes.hpp"

namespace mat2c::opt {

PipelineReport runPipeline(lir::Function& fn, const isa::IsaDescription& isa,
                           const PipelineOptions& options) {
  PipelineReport report;
  if (options.constFold) constFold(fn);
  if (options.deadCode) eliminateDeadScalars(fn);
  if (options.checkElim) report.checksRemoved = eliminateProvableChecks(fn);
  if (options.vectorize) sinkDecls(fn);
  if (options.idioms) report.idiomRewrites = recognizeIdioms(fn, isa);
  if (options.vectorize) report.vec = vectorize(fn, isa);
  // Vectorization introduces fresh index arithmetic; fold once more so the
  // emitted C and the VM trace stay clean.
  if (options.constFold) constFold(fn);
  if (options.deadCode) eliminateDeadScalars(fn);
  return report;
}

}  // namespace mat2c::opt
