// Instrumented pass pipeline.
//
// Every pass — standard or injected — runs through the same harness: wall
// time and LIR size statistics are recorded around the pass body, optional
// inter-pass verification (PipelineOptions::verifyEach) attributes invalid
// LIR to the pass that produced it, and an optional trace hook observes the
// function between passes. The standard pass order lives in
// standardPipeline(); runPipeline() keeps the one-call interface the driver
// uses.
#include <chrono>

#include "opt/passes.hpp"
#include "support/diagnostics.hpp"
#include "support/errors.hpp"
#include "support/fault_injection.hpp"
#include "support/limits.hpp"
#include "support/string_utils.hpp"

namespace mat2c::opt {

PassPipeline& PassPipeline::addPass(std::string name, PassFn fn) {
  passes_.push_back({std::move(name), std::move(fn)});
  return *this;
}

std::vector<std::string> PassPipeline::names() const {
  std::vector<std::string> out;
  out.reserve(passes_.size());
  for (const auto& p : passes_) out.push_back(p.name);
  return out;
}

PipelineReport PassPipeline::run(lir::Function& fn, const isa::IsaDescription& isa,
                                 const PipelineOptions& options) const {
  using Clock = std::chrono::steady_clock;
  PipelineReport report;
  report.passes.reserve(passes_.size());
  for (const auto& pass : passes_) {
    // Pass boundaries are the pipeline's cooperative guard points: compile
    // deadlines expire here, the fault injector targets them by pass name,
    // and the alloc budget counts them.
    DeadlineGuard::poll("pipeline");
    fault::onAllocPoint();

    PassRecord rec;
    rec.name = pass.name;
    rec.before = lir::collectStats(fn);
    auto start = Clock::now();
    try {
      fault::atPassBoundary(pass.name);
      pass.fn(fn, isa, rec, report);
    } catch (const StructuredError&) {
      throw;  // already classified (Timeout / ResourceExhausted / ...)
    } catch (const std::exception& e) {
      // Attribute the failure to the pass so the degradation ladder can
      // retry without it. Unknown non-std exceptions (panics) fall through
      // to the service's containment layer unclassified.
      throw StructuredError(ErrorKind::PassError,
                            "pass '" + pass.name + "' failed: " + e.what(), pass.name);
    }
    rec.millis = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    rec.after = lir::collectStats(fn);
    report.totalMillis += rec.millis;

    if (options.maxLirOps > 0 && rec.after.statements > rec.before.statements &&
        static_cast<std::size_t>(rec.after.statements) > options.maxLirOps) {
      throw StructuredError(ErrorKind::ResourceExhausted,
                            "pass '" + pass.name + "' grew the function to " +
                                std::to_string(rec.after.statements) +
                                " LIR statements (limit " +
                                std::to_string(options.maxLirOps) + ")",
                            pass.name);
    }

    if (options.verifyEach) {
      auto problems = lir::verify(fn);
      if (!problems.empty()) {
        throw StructuredError(ErrorKind::VerifyError,
                              "pass '" + pass.name + "' produced invalid LIR (" +
                                  std::to_string(problems.size()) + " problem(s)):\n  - " +
                                  join(problems, "\n  - "),
                              pass.name);
      }
    }
    if (options.trace) options.trace(rec, fn);
    report.passes.push_back(std::move(rec));
  }
  return report;
}

PassPipeline standardPipeline(const PipelineOptions& options) {
  PassPipeline p;
  auto fold = [](lir::Function& fn, const isa::IsaDescription&, PassRecord&,
                 PipelineReport&) { constFold(fn); };
  // Dead-code cleanup; with deadStores enabled it also drops dead array
  // stores and empty/zero-trip loops (then re-sweeps scalars the removal
  // orphaned).
  bool deadStores = options.deadStores;
  auto dce = [deadStores](lir::Function& fn, const isa::IsaDescription&, PassRecord& rec,
                          PipelineReport& report) {
    eliminateDeadScalars(fn);
    if (deadStores) {
      rec.storesRemoved = eliminateDeadStores(fn);
      report.storesRemoved += rec.storesRemoved;
      if (rec.storesRemoved > 0) eliminateDeadScalars(fn);
    }
  };

  if (options.constFold) p.addPass("constfold", fold);
  if (options.deadCode) p.addPass("dce", dce);
  if (options.checkElim) {
    p.addPass("checkelim", [](lir::Function& fn, const isa::IsaDescription&,
                              PassRecord& rec, PipelineReport& report) {
      rec.checksRemoved = eliminateProvableChecks(fn);
      report.checksRemoved += rec.checksRemoved;
    });
  }
  if (options.sinkDecls) {
    p.addPass("sinkdecls", [](lir::Function& fn, const isa::IsaDescription&, PassRecord&,
                              PipelineReport&) { sinkDecls(fn); });
  }
  if (options.unrollRecurrences) {
    int maxTrip = options.unrollMaxTrip;
    std::size_t budget = options.maxLirOps;
    p.addPass("unroll", [maxTrip, budget](lir::Function& fn, const isa::IsaDescription&,
                                          PassRecord& rec, PipelineReport& report) {
      rec.loopsUnrolled = unrollRecurrences(fn, maxTrip, budget);
      report.loopsUnrolled += rec.loopsUnrolled;
    });
  }
  if (options.idioms) {
    bool reassoc = options.reassoc;
    p.addPass("idioms", [reassoc](lir::Function& fn, const isa::IsaDescription& isa,
                                  PassRecord& rec, PipelineReport& report) {
      rec.idiomRewrites = recognizeIdioms(fn, isa, reassoc);
      report.idiomRewrites += rec.idiomRewrites;
    });
  }
  if (options.vectorize) {
    p.addPass("vectorize", [](lir::Function& fn, const isa::IsaDescription& isa,
                              PassRecord& rec, PipelineReport& report) {
      VectorizeStats vs = vectorize(fn, isa);
      rec.loopsVectorized = vs.loopsVectorized;
      report.vec.loopsConsidered += vs.loopsConsidered;
      report.vec.loopsVectorized += vs.loopsVectorized;
      report.vec.reductionsVectorized += vs.reductionsVectorized;
      for (auto& note : vs.missed) report.vec.missed.push_back(std::move(note));
    });
  }
  // Vectorization introduces fresh index arithmetic; fold once more so the
  // strip-mine bounds become the literals fusion and the loop cleanups need.
  if (options.constFold) p.addPass("constfold.post", fold);
  if (options.deadCode) p.addPass("dce.post", dce);
  if (options.fuseLoops) {
    p.addPass("fuse", [](lir::Function& fn, const isa::IsaDescription&, PassRecord& rec,
                         PipelineReport& report) {
      rec.loopsFused = opt::fuseLoops(fn);
      report.loopsFused += rec.loopsFused;
    });
  }
  if (options.licm) {
    p.addPass("licm", [](lir::Function& fn, const isa::IsaDescription&, PassRecord& rec,
                         PipelineReport& report) {
      LicmStats ls = hoistLoopInvariants(fn);
      rec.exprsHoisted = ls.exprsHoisted;
      rec.scalarsPromoted = ls.scalarsPromoted;
      report.exprsHoisted += ls.exprsHoisted;
      report.scalarsPromoted += ls.scalarsPromoted;
    });
  }
  if (options.cse) {
    p.addPass("cse", [](lir::Function& fn, const isa::IsaDescription&, PassRecord& rec,
                        PipelineReport& report) {
      rec.cseEliminated = eliminateCommonSubexprs(fn);
      report.cseEliminated += rec.cseEliminated;
    });
  }
  // The loop layer can leave dead preloads and emptied loops behind.
  if (options.deadCode &&
      (options.fuseLoops || options.licm || options.cse || options.unrollRecurrences)) {
    p.addPass("dce.final", dce);
  }
  return p;
}

PipelineReport runPipeline(lir::Function& fn, const isa::IsaDescription& isa,
                           const PipelineOptions& options) {
  return standardPipeline(options).run(fn, isa, options);
}

}  // namespace mat2c::opt
