// SIMD vectorizer.
//
// Strip-mines innermost unit-stride loops onto the active ISA's lane width:
//   * stride-1 loads/stores become wide vld/vst ops,
//   * loop invariants are splat once per iteration,
//   * reduction accumulators (acc = acc + e, acc = fma(a,b,acc), min/max)
//     become vector accumulators folded horizontally after the loop,
//   * a scalar remainder loop covers trip%W iterations.
// Every vector op is emitted only if IsaDescription::supports() says the
// instruction exists — retargeting the compiler is swapping the description.
#include <limits>
#include <map>
#include <set>

#include "opt/passes.hpp"

namespace mat2c::opt {

using namespace lir;
using isa::Op;

namespace {

struct Reduction {
  std::string var;      // scalar accumulator (declared outside the loop)
  std::string vecVar;   // vector accumulator
  VType scalarType;
  ReduceOp reduceOp;
};

class LoopVectorizer {
 public:
  LoopVectorizer(const Function& fn, const isa::IsaDescription& isa, Stmt& loop, int counter)
      : fn_(fn), isa_(isa), loop_(loop), counter_(counter) {}

  /// On success returns the replacement statement sequence.
  bool run(std::vector<StmtPtr>& replacement);

  /// Why the loop was rejected (valid after run() returned false).
  const std::string& reason() const { return reason_; }

 private:
  bool analyze();
  bool analyzeExpr(const Expr& e);
  bool isVarying(const Expr& e) const;
  bool opSupported(const Expr& e, bool varying);

  ExprPtr rewrite(const Expr& e);
  ExprPtr widen(ExprPtr e);

  std::string fresh(const std::string& hint) {
    return "v" + std::to_string(counter_) + "_" + std::to_string(sub_++) + "_" + hint;
  }

  bool reject(const std::string& why) {
    if (reason_.empty()) reason_ = why;
    return false;
  }

  const Function& fn_;
  const isa::IsaDescription& isa_;
  Stmt& loop_;
  int counter_;
  int sub_ = 0;
  std::string reason_;

  int width_ = 0;
  bool anyComplex_ = false;
  std::set<std::string> bodyDecls_;       // scalars declared in the body
  std::set<std::string> varyingVars_;     // body decls that vary with i
  std::map<std::string, Reduction> reductions_;
  std::map<std::string, std::vector<Affine>> storeIdx_;  // array -> store indices
  std::map<std::string, std::vector<Affine>> loadIdx_;   // array -> load indices
};

bool LoopVectorizer::isVarying(const Expr& e) const {
  switch (e.kind) {
    case ExprKind::ConstF:
    case ExprKind::ConstI:
      return false;
    case ExprKind::VarRef:
      return e.name == loop_.name || varyingVars_.count(e.name) != 0;
    case ExprKind::Load:
      return isVarying(*e.index);
    default: {
      bool v = false;
      if (e.a) v = v || isVarying(*e.a);
      if (e.b) v = v || isVarying(*e.b);
      if (e.c) v = v || isVarying(*e.c);
      if (e.index) v = v || isVarying(*e.index);
      return v;
    }
  }
}

bool LoopVectorizer::opSupported(const Expr& e, bool varying) {
  if (!varying) return true;  // stays scalar
  bool cplx = e.type.scalar == Scalar::C64;
  switch (e.kind) {
    case ExprKind::VarRef:
    case ExprKind::ConstF:
    case ExprKind::ConstI:
      return true;
    case ExprKind::Load: {
      // Varying loads must be stride-1 in the induction variable.
      Affine a = affineOf(*e.index);
      if (!a.ok) return false;
      std::int64_t stride = a.coeff(loop_.name);
      if (stride != 1 && stride != 0) return false;
      return isa_.supports(cplx ? Op::VLoadC : Op::VLoadF);
    }
    case ExprKind::Unary:
      switch (e.unOp) {
        case UnOp::Neg:
          return isa_.supports(cplx ? Op::VNegC : Op::VNegF);
        case UnOp::Abs:
          return !cplx && e.a->type.scalar == Scalar::F64 && isa_.supports(Op::VAbsF);
        case UnOp::Conj:
          return isa_.supports(Op::VConjC);
        case UnOp::ToC64:
          return e.a->type.scalar == Scalar::F64;  // lane-wise widen, free
        default:
          return false;  // transcendental / conversions stay scalar loops
      }
    case ExprKind::Binary:
      switch (e.binOp) {
        case BinOp::Add:
          return isa_.supports(cplx ? Op::VAddC : Op::VAddF);
        case BinOp::Sub:
          return isa_.supports(cplx ? Op::VSubC : Op::VSubF);
        case BinOp::Mul:
          return isa_.supports(cplx ? Op::VMulC : Op::VMulF);
        case BinOp::Div:
          return !cplx && isa_.supports(Op::VDivF);
        case BinOp::Min:
          return isa_.supports(Op::VMinF);
        case BinOp::Max:
          return isa_.supports(Op::VMaxF);
        case BinOp::MakeComplex:
          return isa_.lanesC64() > 1;
        default:
          return false;
      }
    case ExprKind::Fma:
      return isa_.supports(cplx ? Op::VFmaC : Op::VFmaF);
    default:
      return false;
  }
}

bool LoopVectorizer::analyzeExpr(const Expr& e) {
  if (e.type.scalar == Scalar::C64) anyComplex_ = true;
  bool varying = isVarying(e);
  if (varying && (e.type.scalar == Scalar::F64 || e.type.scalar == Scalar::C64)) {
    if (!opSupported(e, varying)) return false;
  }
  if (varying && e.type == VType::i64() && e.kind != ExprKind::VarRef &&
      e.kind != ExprKind::ConstI && e.kind != ExprKind::Binary) {
    return false;  // i64 computation beyond affine index math
  }
  if (e.kind == ExprKind::Load) {
    Affine a = affineOf(*e.index);
    if (!a.ok) return false;
    std::int64_t stride = a.coeff(loop_.name);
    if (stride != 0 && stride != 1) return false;
    // Index must not depend on body-declared varying vars.
    for (const auto& [name, c] : a.coeffs) {
      if (c != 0 && name != loop_.name && varyingVars_.count(name)) return false;
    }
    loadIdx_[e.name].push_back(a);
    return analyzeExpr(*e.index);
  }
  if (e.kind == ExprKind::Unary && varying) {
    // Value-use of the induction variable (tof64(i)) needs an iota op we do
    // not model; reject.
    if (e.unOp == UnOp::ToF64 || e.unOp == UnOp::ToI64) {
      if (isVarying(*e.a)) return false;
    }
  }
  if (e.a && !analyzeExpr(*e.a)) return false;
  if (e.b && !analyzeExpr(*e.b)) return false;
  if (e.c && !analyzeExpr(*e.c)) return false;
  return true;
}

bool LoopVectorizer::analyze() {
  if (loop_.step != 1) return reject("non-unit loop step");

  // First pass: statement shapes, declarations, reduction candidates.
  for (const auto& sp : loop_.body) {
    const Stmt& s = *sp;
    switch (s.kind) {
      case StmtKind::DeclScalar:
        bodyDecls_.insert(s.name);
        break;
      case StmtKind::Assign: {
        if (bodyDecls_.count(s.name)) break;
        // Assignment to an outer variable: must be a reduction.
        const Expr& v = *s.value;
        Reduction red;
        red.var = s.name;
        red.scalarType = v.type;
        if (v.kind == ExprKind::Binary &&
            (v.binOp == BinOp::Add || v.binOp == BinOp::Min || v.binOp == BinOp::Max)) {
          const bool lhsIsAcc = v.a->kind == ExprKind::VarRef && v.a->name == s.name;
          const bool rhsIsAcc = v.b->kind == ExprKind::VarRef && v.b->name == s.name;
          if (lhsIsAcc == rhsIsAcc) return false;  // both or neither
          red.reduceOp = v.binOp == BinOp::Add ? ReduceOp::Add
                         : v.binOp == BinOp::Min ? ReduceOp::Min
                                                 : ReduceOp::Max;
        } else if (v.kind == ExprKind::Fma && v.c->kind == ExprKind::VarRef &&
                   v.c->name == s.name) {
          red.reduceOp = ReduceOp::Add;
        } else {
          return reject("assignment to '" + s.name +
                        "' carries a value across iterations (not a reduction)");
        }
        if (red.reduceOp != ReduceOp::Add && red.scalarType.scalar != Scalar::F64)
          return reject("min/max reduction over non-f64 values");
        if (reductions_.count(s.name))
          return reject("accumulator '" + s.name + "' updated more than once");
        reductions_.emplace(s.name, std::move(red));
        break;
      }
      case StmtKind::Store: {
        Affine a = affineOf(*s.index);
        if (!a.ok || a.coeff(loop_.name) != 1)
          return reject("store to '" + s.name + "' is not unit-stride in the induction variable");
        for (const auto& [name, c] : a.coeffs) {
          if (c != 0 && name != loop_.name && bodyDecls_.count(name)) return false;
        }
        storeIdx_[s.name].push_back(a);
        break;
      }
      case StmtKind::Comment:
        break;
      default:
        return reject("loop body contains control flow or runtime checks");
    }
  }

  // Varying classification for body decls (iterate to a fixpoint).
  for (int iter = 0; iter < 4; ++iter) {
    bool changed = false;
    for (const auto& sp : loop_.body) {
      if (sp->kind != StmtKind::DeclScalar && sp->kind != StmtKind::Assign) continue;
      if (sp->kind == StmtKind::Assign && !bodyDecls_.count(sp->name)) continue;
      if (!sp->value) continue;
      if (isVarying(*sp->value) && !varyingVars_.count(sp->name)) {
        varyingVars_.insert(sp->name);
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Reduction accumulators must not be read outside their own update.
  // (The update itself references them once; a second read would need a
  // scan, not a reduction.)

  // Second pass: expression legality.
  anyComplex_ = false;
  for (const auto& sp : loop_.body) {
    const Stmt& s = *sp;
    if (s.value && !analyzeExpr(*s.value))
      return reject("an operation has no supported vector form on this target");
    if (s.index && !analyzeExpr(*s.index))
      return reject("index arithmetic is not affine in the induction variable");
  }

  // Alias check: a stored array may only be loaded at the identical index.
  for (const auto& [array, stores] : storeIdx_) {
    auto it = loadIdx_.find(array);
    if (it == loadIdx_.end()) continue;
    for (const auto& st : stores) {
      for (const auto& ld : it->second) {
        Affine diff = affineSub(st, ld);
        bool zero = diff.ok && diff.constant == 0;
        if (zero) {
          for (const auto& [name, c] : diff.coeffs) {
            (void)name;
            if (c != 0) zero = false;
          }
        }
        if (!zero)
          return reject("array '" + array + "' is loaded and stored at different offsets");
      }
    }
  }

  width_ = anyComplex_ ? isa_.lanesC64() : isa_.lanesF64();
  if (width_ <= 1)
    return reject(anyComplex_ ? "target has no complex SIMD lanes"
                              : "target has no SIMD lanes");
  if (anyComplex_ && isa_.lanesF64() < width_)
    return reject("mixed real/complex loop exceeds the f64 lane width");
  return true;
}

ExprPtr LoopVectorizer::widen(ExprPtr e) {
  if (e->type.isVector()) return e;
  return splat(std::move(e), width_);
}

ExprPtr LoopVectorizer::rewrite(const Expr& e) {
  if (!isVarying(e)) return e.clone();  // stays scalar; splat at use if needed
  switch (e.kind) {
    case ExprKind::VarRef: {
      // A varying body variable: now vector-typed.
      return varRef(e.name, {e.type.scalar, width_});
    }
    case ExprKind::Load: {
      Affine a = affineOf(*e.index);
      if (a.coeff(loop_.name) == 0) return e.clone();  // invariant load
      return load(e.name, e.index->clone(), {e.type.scalar, width_});
    }
    case ExprKind::Unary: {
      ExprPtr v = widen(rewrite(*e.a));
      return unary(e.unOp, std::move(v), {e.type.scalar, width_});
    }
    case ExprKind::Binary: {
      ExprPtr a = widen(rewrite(*e.a));
      ExprPtr b = widen(rewrite(*e.b));
      return binary(e.binOp, std::move(a), std::move(b), {e.type.scalar, width_});
    }
    case ExprKind::Fma: {
      ExprPtr a = widen(rewrite(*e.a));
      ExprPtr b = widen(rewrite(*e.b));
      ExprPtr c = widen(rewrite(*e.c));
      return fma(std::move(a), std::move(b), std::move(c), {e.type.scalar, width_});
    }
    default:
      return e.clone();
  }
}

bool LoopVectorizer::run(std::vector<StmtPtr>& replacement) {
  if (!analyze()) return false;

  const std::string& iv = loop_.name;
  // vecEnd = lo + ((hi - lo) / W) * W
  ExprPtr lo = loop_.lo->clone();
  ExprPtr hi = loop_.hi->clone();
  ExprPtr span = binary(BinOp::Sub, hi->clone(), lo->clone(), VType::i64());
  ExprPtr blocks = binary(BinOp::Div, std::move(span), constI(width_), VType::i64());
  ExprPtr mainLen = binary(BinOp::Mul, std::move(blocks), constI(width_), VType::i64());
  ExprPtr vecEnd = binary(BinOp::Add, lo->clone(), std::move(mainLen), VType::i64());
  std::string vecEndVar = fresh("vend");
  replacement.push_back(declScalar(vecEndVar, VType::i64(), std::move(vecEnd)));

  // Vector accumulators.
  for (auto& [name, red] : reductions_) {
    red.vecVar = fresh(name + "_v");
    ExprPtr identity;
    VType vt{red.scalarType.scalar, width_};
    switch (red.reduceOp) {
      case ReduceOp::Add:
        identity = red.scalarType.scalar == Scalar::C64
                       ? splat(constC(0.0, 0.0), width_)
                       : splat(constF(0.0), width_);
        break;
      case ReduceOp::Min:
        identity = splat(constF(std::numeric_limits<double>::infinity()), width_);
        break;
      case ReduceOp::Max:
        identity = splat(constF(-std::numeric_limits<double>::infinity()), width_);
        break;
    }
    replacement.push_back(declScalar(red.vecVar, vt, std::move(identity)));
  }

  // Vector body.
  std::vector<StmtPtr> vecBody;
  for (const auto& sp : loop_.body) {
    const Stmt& s = *sp;
    switch (s.kind) {
      case StmtKind::Comment:
        vecBody.push_back(s.clone());
        break;
      case StmtKind::DeclScalar: {
        if (!varyingVars_.count(s.name)) {
          vecBody.push_back(s.clone());
          break;
        }
        ExprPtr init = s.value ? widen(rewrite(*s.value)) : nullptr;
        vecBody.push_back(declScalar(s.name, {s.declType.scalar, width_}, std::move(init)));
        break;
      }
      case StmtKind::Assign: {
        auto rit = reductions_.find(s.name);
        if (rit == reductions_.end()) {
          if (!varyingVars_.count(s.name)) {
            vecBody.push_back(s.clone());
            break;
          }
          vecBody.push_back(assign(s.name, widen(rewrite(*s.value))));
          break;
        }
        // Rebuild the reduction update against the vector accumulator.
        Reduction& red = rit->second;
        VType vt{red.scalarType.scalar, width_};
        const Expr& v = *s.value;
        if (v.kind == ExprKind::Fma) {
          ExprPtr a = widen(rewrite(*v.a));
          ExprPtr b = widen(rewrite(*v.b));
          vecBody.push_back(
              assign(red.vecVar, fma(std::move(a), std::move(b), varRef(red.vecVar, vt), vt)));
        } else {
          const Expr& other =
              (v.a->kind == ExprKind::VarRef && v.a->name == s.name) ? *v.b : *v.a;
          ExprPtr contrib = widen(rewrite(other));
          vecBody.push_back(assign(
              red.vecVar, binary(v.binOp, varRef(red.vecVar, vt), std::move(contrib), vt)));
        }
        break;
      }
      case StmtKind::Store:
        vecBody.push_back(store(s.name, s.index->clone(), widen(rewrite(*s.value))));
        break;
      default:
        return false;  // unreachable after analyze()
    }
  }
  replacement.push_back(forLoop(iv, lo->clone(), varRef(vecEndVar, VType::i64()), width_,
                                std::move(vecBody)));

  // Horizontal folds.
  for (auto& [name, red] : reductions_) {
    VType st{red.scalarType.scalar, 1};
    VType vt{red.scalarType.scalar, width_};
    ExprPtr folded = reduce(red.reduceOp, varRef(red.vecVar, vt));
    BinOp combine = red.reduceOp == ReduceOp::Add ? BinOp::Add
                    : red.reduceOp == ReduceOp::Min ? BinOp::Min
                                                    : BinOp::Max;
    replacement.push_back(
        assign(name, binary(combine, varRef(name, st), std::move(folded), st)));
  }

  // Scalar remainder loop.
  std::vector<StmtPtr> remBody;
  remBody.reserve(loop_.body.size());
  for (const auto& sp : loop_.body) remBody.push_back(sp->clone());
  replacement.push_back(
      forLoop(iv, varRef(vecEndVar, VType::i64()), hi->clone(), 1, std::move(remBody)));
  return true;
}

// -- driver -------------------------------------------------------------------

bool containsLoop(const std::vector<StmtPtr>& body) {
  for (const auto& s : body) {
    if (s->kind == StmtKind::For || s->kind == StmtKind::While) return true;
    if (containsLoop(s->body) || containsLoop(s->elseBody)) return true;
  }
  return false;
}

void visitBlock(std::vector<StmtPtr>& block, const Function& fn,
                const isa::IsaDescription& isa, VectorizeStats& stats, int& counter) {
  std::vector<StmtPtr> out;
  out.reserve(block.size());
  for (auto& sp : block) {
    // Recurse first so inner loops are handled before outer ones.
    visitBlock(sp->body, fn, isa, stats, counter);
    visitBlock(sp->elseBody, fn, isa, stats, counter);
    if (sp->kind == StmtKind::For && !containsLoop(sp->body)) {
      ++stats.loopsConsidered;
      LoopVectorizer lv(fn, isa, *sp, counter++);
      std::vector<StmtPtr> replacement;
      if (lv.run(replacement)) {
        ++stats.loopsVectorized;
        for (auto& r : replacement) out.push_back(std::move(r));
        continue;
      }
      stats.missed.push_back("loop over '" + sp->name + "' not vectorized: " +
                             (lv.reason().empty() ? "unsupported shape" : lv.reason()));
    }
    out.push_back(std::move(sp));
  }
  block = std::move(out);
}

}  // namespace

VectorizeStats vectorize(lir::Function& fn, const isa::IsaDescription& isa) {
  VectorizeStats stats;
  if (isa.lanesF64() <= 1 && isa.lanesC64() <= 1) return stats;
  int counter = 0;
  visitBlock(fn.body, fn, isa, stats, counter);
  return stats;
}

}  // namespace mat2c::opt
