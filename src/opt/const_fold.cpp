#include <cmath>

#include <map>

#include "lir/analysis.hpp"
#include "opt/passes.hpp"

namespace mat2c::opt {

using namespace lir;

namespace {

bool isConstI(const Expr& e, std::int64_t v) {
  return e.kind == ExprKind::ConstI && e.ival == v;
}
bool isConstF(const Expr& e, double v) { return e.kind == ExprKind::ConstF && e.fval == v; }

/// Rebuilds a canonical expression from an affine form: c + sum(coeff*var).
ExprPtr rebuildAffine(const Affine& a) {
  ExprPtr acc;
  for (const auto& [name, coeff] : a.coeffs) {
    if (coeff == 0) continue;
    ExprPtr term = varRef(name, VType::i64());
    if (coeff != 1) term = binary(BinOp::Mul, std::move(term), constI(coeff), VType::i64());
    acc = acc ? binary(BinOp::Add, std::move(acc), std::move(term), VType::i64())
              : std::move(term);
  }
  if (!acc) return constI(a.constant);
  if (a.constant > 0)
    return binary(BinOp::Add, std::move(acc), constI(a.constant), VType::i64());
  if (a.constant < 0)
    return binary(BinOp::Sub, std::move(acc), constI(-a.constant), VType::i64());
  return acc;
}

std::size_t exprSize(const Expr& e) {
  std::size_t n = 1;
  if (e.index) n += exprSize(*e.index);
  if (e.a) n += exprSize(*e.a);
  if (e.b) n += exprSize(*e.b);
  if (e.c) n += exprSize(*e.c);
  return n;
}

void foldExpr(ExprPtr& e);

void foldChildren(Expr& e) {
  if (e.index) foldExpr(e.index);
  if (e.a) foldExpr(e.a);
  if (e.b) foldExpr(e.b);
  if (e.c) foldExpr(e.c);
}

void foldExpr(ExprPtr& e) {
  foldChildren(*e);

  // Canonicalize i64 affine expressions when it shrinks them.
  if (e->type == VType::i64() && e->kind == ExprKind::Binary) {
    Affine a = affineOf(*e);
    if (a.ok) {
      ExprPtr canon = rebuildAffine(a);
      if (exprSize(*canon) <= exprSize(*e)) {
        e = std::move(canon);
        return;
      }
    }
  }

  if (e->kind == ExprKind::Unary) {
    if (e->unOp == UnOp::ToF64 && e->a->kind == ExprKind::ConstI) {
      e = constF(static_cast<double>(e->a->ival));
      return;
    }
    if (e->unOp == UnOp::ToI64 && e->a->kind == ExprKind::ConstF &&
        e->a->fval == std::floor(e->a->fval)) {
      e = constI(static_cast<std::int64_t>(e->a->fval));
      return;
    }
    if (e->unOp == UnOp::Neg && e->a->kind == ExprKind::ConstF) {
      e = constF(-e->a->fval);
      return;
    }
    // tof64(toi64(x)) where x is already integral cannot be simplified safely;
    // leave conversions otherwise untouched.
    return;
  }

  if (e->kind != ExprKind::Binary) return;

  Expr& a = *e->a;
  Expr& b = *e->b;

  // f64 constant folding.
  if (e->type == VType::f64() && a.kind == ExprKind::ConstF && b.kind == ExprKind::ConstF) {
    double r = 0;
    switch (e->binOp) {
      case BinOp::Add: r = a.fval + b.fval; break;
      case BinOp::Sub: r = a.fval - b.fval; break;
      case BinOp::Mul: r = a.fval * b.fval; break;
      case BinOp::Div: r = a.fval / b.fval; break;
      case BinOp::Min: r = std::min(a.fval, b.fval); break;
      case BinOp::Max: r = std::max(a.fval, b.fval); break;
      case BinOp::Pow: r = std::pow(a.fval, b.fval); break;
      default: return;
    }
    e = constF(r);
    return;
  }

  // Identities (kept NaN-safe: no x*0 folding).
  if (e->type == VType::f64()) {
    switch (e->binOp) {
      case BinOp::Add:
        if (isConstF(a, 0.0)) { e = std::move(e->b); return; }
        if (isConstF(b, 0.0)) { e = std::move(e->a); return; }
        break;
      case BinOp::Sub:
        if (isConstF(b, 0.0)) { e = std::move(e->a); return; }
        break;
      case BinOp::Mul:
        if (isConstF(a, 1.0)) { e = std::move(e->b); return; }
        if (isConstF(b, 1.0)) { e = std::move(e->a); return; }
        break;
      case BinOp::Div:
        if (isConstF(b, 1.0)) { e = std::move(e->a); return; }
        break;
      default:
        break;
    }
  }
  if (e->type == VType::i64()) {
    switch (e->binOp) {
      case BinOp::Add:
        if (isConstI(a, 0)) { e = std::move(e->b); return; }
        if (isConstI(b, 0)) { e = std::move(e->a); return; }
        break;
      case BinOp::Sub:
        if (isConstI(b, 0)) { e = std::move(e->a); return; }
        break;
      case BinOp::Mul:
        if (isConstI(a, 1)) { e = std::move(e->b); return; }
        if (isConstI(b, 1)) { e = std::move(e->a); return; }
        break;
      default:
        break;
    }
    if (a.kind == ExprKind::ConstI && b.kind == ExprKind::ConstI) {
      switch (e->binOp) {
        case BinOp::Add: e = constI(a.ival + b.ival); return;
        case BinOp::Sub: e = constI(a.ival - b.ival); return;
        case BinOp::Mul: e = constI(a.ival * b.ival); return;
        case BinOp::Div:
          // Fold only exact divisions: (37/8)*8 must stay a strip-mine bound.
          if (b.ival != 0 && a.ival % b.ival == 0) {
            e = constI(a.ival / b.ival);
            return;
          }
          break;
        default: break;
      }
    }
  }
}

void foldStmt(Stmt& s) {
  if (s.value) foldExpr(s.value);
  if (s.index) foldExpr(s.index);
  if (s.lo) foldExpr(s.lo);
  if (s.hi) foldExpr(s.hi);
  if (s.cond) foldExpr(s.cond);
  for (auto& st : s.body) foldStmt(*st);
  for (auto& st : s.elseBody) foldStmt(*st);
}

}  // namespace

namespace {

// Single-assignment i64 constant propagation. The vectorizer's strip-mine
// bounds (`vend = (n / 4) * 4`) become ConstI initializers after folding,
// but downstream loop bounds still reference them by name; propagating the
// literal lets the fusion legality test compare bounds and lets dce remove
// zero-trip remainder loops. Only scalars declared exactly once (counting
// For induction variables as declarations) and never reassigned qualify.
struct I64Const {
  std::int64_t value = 0;
  int decls = 0;
  bool assigned = false;
  bool constInit = false;
};

void scanConsts(const std::vector<lir::StmtPtr>& block,
                std::map<std::string, I64Const>& consts) {
  for (const auto& s : block) {
    if (s->kind == lir::StmtKind::DeclScalar) {
      auto& c = consts[s->name];
      ++c.decls;
      if (s->declType.scalar == lir::Scalar::I64 && s->declType.lanes == 1 && s->value &&
          s->value->kind == lir::ExprKind::ConstI) {
        c.constInit = true;
        c.value = s->value->ival;
      }
    } else if (s->kind == lir::StmtKind::For) {
      ++consts[s->name].decls;
    } else if (s->kind == lir::StmtKind::Assign) {
      consts[s->name].assigned = true;
    }
    scanConsts(s->body, consts);
    scanConsts(s->elseBody, consts);
  }
}

}  // namespace

void constFold(lir::Function& fn) {
  for (auto& s : fn.body) foldStmt(*s);

  std::map<std::string, I64Const> consts;
  scanConsts(fn.body, consts);
  bool propagated = false;
  for (const auto& [name, c] : consts) {
    if (c.decls != 1 || c.assigned || !c.constInit) continue;
    lir::ExprPtr lit = lir::constI(c.value);
    for (auto& s : fn.body) substituteVar(*s, name, *lit);
    propagated = true;
  }
  // Propagation exposes fresh constant arithmetic (e.g. `vend - 0`).
  if (propagated) {
    for (auto& s : fn.body) foldStmt(*s);
  }
}

}  // namespace mat2c::opt
