// Common-subexpression elimination over straight-line regions, with
// store-to-load forwarding.
//
// Scope and rules:
//   * Only f64/c64-valued expressions (Load/Unary/Binary/Fma/Splat/Reduce)
//     participate. i64 index arithmetic is deliberately excluded — the
//     target's AGUs execute it for free, and materializing indices into
//     scalars would break the vectorizer's addressing analysis and clutter
//     the emitted C for zero cycles saved.
//   * A region is one block's statement list; availability never crosses a
//     For/If/While statement (their bodies are processed as fresh regions).
//   * Availability is killed precisely: assigning a scalar kills every
//     expression that reads it, storing to an array kills every expression
//     that loads from it.
//   * `x = E` makes E available as x (no temp needed); `A[i] = v` (v a
//     scalar variable) makes `A[i]` available as v — the store-to-load
//     forwarding that lets fused producer/consumer loops drop the reload.
//   * A repeated expression with no existing holder is materialized into a
//     fresh scalar at its first occurrence; every later occurrence becomes a
//     register reference.
//
// The pass runs in two phases over each region with identical availability
// simulation: phase 1 counts reuses per availability lifetime, phase 2
// replays the simulation and rewrites, materializing temporaries only for
// lifetimes phase 1 proved profitable. All right-hand sides are pure, so
// replacing a re-evaluation with a register read is always value-preserving.
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lir/analysis.hpp"
#include "opt/passes.hpp"

namespace mat2c::opt {

using namespace lir;

namespace {

bool eligible(const Expr& e) {
  switch (e.kind) {
    case ExprKind::Load:
    case ExprKind::Unary:
    case ExprKind::Binary:
    case ExprKind::Fma:
    case ExprKind::Splat:
    case ExprKind::Reduce: break;
    default: return false;
  }
  return e.type.scalar == Scalar::F64 || e.type.scalar == Scalar::C64;
}

struct Lifetime {
  int reuses = 0;
  bool bound = false;  // held by an existing variable; no temp needed
  std::string name;    // phase 2: the variable/temp that holds the value
};

struct Entry {
  std::size_t ordinal = 0;
  std::size_t originStmt = 0;
  std::optional<std::string> bound;
  std::set<std::string> scalarDeps;
  std::set<std::string> arrayDeps;
};

struct Cse {
  std::set<std::string> usedNames;
  int freshId = 0;
  int replaced = 0;

  explicit Cse(const Function& fn) {
    AccessInfo all;
    for (const auto& s : fn.body) collectAccess(*s, all);
    for (const auto& n : all.scalarReads) usedNames.insert(n);
    for (const auto& n : all.scalarWrites) usedNames.insert(n);
    for (const auto& p : fn.params) usedNames.insert(p.name);
    for (const auto& o : fn.outs) usedNames.insert(o.name);
    for (const auto& a : fn.arrays) usedNames.insert(a.name);
  }

  std::string fresh() {
    std::string name;
    do {
      name = "c" + std::to_string(freshId++) + "_cse";
    } while (usedNames.count(name));
    usedNames.insert(name);
    return name;
  }

  void processBlock(std::vector<StmtPtr>& block) {
    std::vector<Lifetime> lifetimes;
    simulate(block, lifetimes, /*rewrite=*/false);
    simulate(block, lifetimes, /*rewrite=*/true);
    for (auto& s : block) {
      processBlock(s->body);
      processBlock(s->elseBody);
    }
  }

  // One deterministic pass over the region. Phase 1 (rewrite=false) fills
  // `lifetimes` (indexed by creation ordinal); phase 2 (rewrite=true) makes
  // the same creation/invalidation decisions and applies the rewrites.
  void simulate(std::vector<StmtPtr>& block, std::vector<Lifetime>& lifetimes, bool rewrite) {
    std::map<std::string, Entry> entries;
    std::size_t ordinal = 0;
    // Temps to insert, paired with the statement index they precede;
    // indices are nondecreasing in creation order.
    std::vector<std::pair<std::size_t, StmtPtr>> inserts;

    auto invalidateScalar = [&](const std::string& x) {
      for (auto it = entries.begin(); it != entries.end();) {
        if (it->second.scalarDeps.count(x) || (it->second.bound && *it->second.bound == x)) {
          it = entries.erase(it);
        } else {
          ++it;
        }
      }
    };
    auto invalidateArray = [&](const std::string& a) {
      for (auto it = entries.begin(); it != entries.end();) {
        if (it->second.arrayDeps.count(a)) {
          it = entries.erase(it);
        } else {
          ++it;
        }
      }
    };

    std::function<void(ExprPtr&, std::size_t)> walk = [&](ExprPtr& e, std::size_t stmtIdx) {
      if (!eligible(*e)) {
        if (e->index) walk(e->index, stmtIdx);
        if (e->a) walk(e->a, stmtIdx);
        if (e->b) walk(e->b, stmtIdx);
        if (e->c) walk(e->c, stmtIdx);
        return;
      }
      std::string key = lir::print(*e);
      auto it = entries.find(key);
      if (it != entries.end()) {
        // Reuse. Do not descend: the children ride along with the register.
        if (!rewrite) {
          lifetimes[it->second.ordinal].reuses++;
        } else {
          const Lifetime& lt = lifetimes[it->second.ordinal];
          e = varRef(lt.name, e->type);
          ++replaced;
        }
        return;
      }
      // Creation: record deps from the untouched subtree, then visit
      // children (their rewrites feed a materialized temp's initializer).
      Entry entry;
      entry.ordinal = ordinal++;
      entry.originStmt = stmtIdx;
      AccessInfo ei;
      collectAccess(*e, ei);
      entry.scalarDeps = std::move(ei.scalarReads);
      entry.arrayDeps = std::move(ei.arrayReads);
      if (!rewrite) lifetimes.emplace_back();

      if (e->index) walk(e->index, stmtIdx);
      if (e->a) walk(e->a, stmtIdx);
      if (e->b) walk(e->b, stmtIdx);
      if (e->c) walk(e->c, stmtIdx);

      if (rewrite) {
        Lifetime& lt = lifetimes[entry.ordinal];
        if (lt.reuses > 0 && !lt.bound) {
          lt.name = fresh();
          VType type = e->type;
          StmtPtr decl = declScalar(lt.name, type, std::move(e));
          e = varRef(lt.name, type);
          inserts.emplace_back(stmtIdx, std::move(decl));
        }
      }
      entries.emplace(std::move(key), std::move(entry));
    };

    for (std::size_t idx = 0; idx < block.size(); ++idx) {
      Stmt& s = *block[idx];

      // Snapshot pre-walk facts both phases must agree on.
      std::string rhsKey =
          (s.value && eligible(*s.value)) ? lir::print(*s.value) : std::string();
      bool storeForwards = s.kind == StmtKind::Store && s.value &&
                           s.value->kind == ExprKind::VarRef;
      std::string fwdKey, fwdVar;
      std::set<std::string> fwdScalarDeps;
      if (storeForwards) {
        ExprPtr probe = load(s.name, s.index->clone(), s.value->type);
        fwdKey = lir::print(*probe);
        fwdVar = s.value->name;
        fwdScalarDeps = varReads(*probe);
        fwdScalarDeps.insert(fwdVar);
      }

      if (s.value) walk(s.value, idx);
      if (s.index) walk(s.index, idx);
      if (s.cond) walk(s.cond, idx);
      if (s.lo) walk(s.lo, idx);
      if (s.hi) walk(s.hi, idx);

      switch (s.kind) {
        case StmtKind::DeclScalar:
        case StmtKind::Assign: {
          invalidateScalar(s.name);
          if (!rhsKey.empty()) {
            auto it = entries.find(rhsKey);
            if (it != entries.end() && it->second.originStmt == idx && !it->second.bound) {
              it->second.bound = s.name;
              if (!rewrite) {
                lifetimes[it->second.ordinal].bound = true;
              } else {
                lifetimes[it->second.ordinal].name = s.name;
              }
            }
          }
          break;
        }
        case StmtKind::Store: {
          invalidateArray(s.name);
          if (storeForwards && !entries.count(fwdKey)) {
            Entry entry;
            entry.ordinal = ordinal++;
            entry.originStmt = idx;
            entry.bound = fwdVar;
            entry.scalarDeps = fwdScalarDeps;
            entry.arrayDeps = {s.name};
            if (!rewrite) {
              lifetimes.emplace_back();
              lifetimes.back().bound = true;
            } else {
              lifetimes[entry.ordinal].name = fwdVar;
            }
            entries.emplace(fwdKey, std::move(entry));
          }
          break;
        }
        case StmtKind::AllocMark: invalidateArray(s.name); break;
        case StmtKind::For:
        case StmtKind::If:
        case StmtKind::While:
        case StmtKind::Break:
        case StmtKind::Continue: entries.clear(); break;
        default: break;
      }
    }

    if (rewrite && !inserts.empty()) {
      std::vector<StmtPtr> out;
      out.reserve(block.size() + inserts.size());
      std::size_t next = 0;
      for (std::size_t idx = 0; idx < block.size(); ++idx) {
        while (next < inserts.size() && inserts[next].first == idx) {
          out.push_back(std::move(inserts[next].second));
          ++next;
        }
        out.push_back(std::move(block[idx]));
      }
      block = std::move(out);
    }
  }
};

}  // namespace

int eliminateCommonSubexprs(lir::Function& fn) {
  Cse cse(fn);
  cse.processBlock(fn.body);
  return cse.replaced;
}

}  // namespace mat2c::opt
