// Cross-statement loop fusion.
//
// Lowering fuses elementwise operations only within a single expression
// tree, so multi-statement kernels leave back-to-back loops over the same
// iteration space unfused. On a target with zero-overhead hardware loops
// fusion saves no loop bookkeeping — its value is that it puts producer and
// consumer statements into one body where the later LICM/CSE passes can
// forward stored values and share loads across what used to be a loop
// boundary.
//
// The pass runs *after* vectorization on purpose: fusing a vectorizable
// loop into a scalar-only neighbor (e.g. a transcendental loop) would trade
// SIMD for locality, which measurably loses on this target. Post-vectorize,
// loops that kept different shapes (vector step vs scalar step) simply fail
// the iteration-space test and are left alone.
//
// Legality, for candidate loops L1 ... L2 in one block:
//   * every statement between them must be independent of L1 (then it is
//     hoisted above L1 to make the loops adjacent),
//   * equal steps and affine-equal bounds,
//   * no outer-scope scalar written by one loop and touched by the other,
//   * for every shared array with at least one write: all indices affine in
//     the induction variable alone with one common stride c, and for every
//     (L1 access, L2 access) pair the element ranges must not overlap
//     across iterations (|k2 + lanes2 - 1 - k1| < |c| * step test, signed by
//     the stride direction). Same-iteration overlap is fine: the fused body
//     preserves statement order within an iteration.
#include <string>
#include <vector>

#include "lir/analysis.hpp"
#include "opt/passes.hpp"

namespace mat2c::opt {

using namespace lir;

namespace {

struct ArrAccess {
  std::string array;
  Affine idx;
  int lanes = 1;
  bool write = false;
};

void collectArrAccessesExpr(const Expr& e, std::vector<ArrAccess>& out) {
  if (e.kind == ExprKind::Load) {
    out.push_back({e.name, affineOf(*e.index), e.type.lanes, false});
  }
  if (e.index) collectArrAccessesExpr(*e.index, out);
  if (e.a) collectArrAccessesExpr(*e.a, out);
  if (e.b) collectArrAccessesExpr(*e.b, out);
  if (e.c) collectArrAccessesExpr(*e.c, out);
}

void collectArrAccesses(const std::vector<StmtPtr>& body, std::vector<ArrAccess>& out) {
  for (const auto& s : body) {
    if (s->kind == StmtKind::Store) {
      out.push_back({s->name, affineOf(*s->index),
                     s->value ? s->value->type.lanes : 1, true});
    }
    if (s->kind == StmtKind::BoundsCheck) {
      out.push_back({s->name, affineOf(*s->index), 1, false});
    }
    if (s->kind == StmtKind::AllocMark) {
      // Unknown extent touched; represent as a non-affine write so any
      // sharing with the other loop rejects fusion.
      out.push_back({s->name, Affine{}, 1, true});
    }
    if (s->value) collectArrAccessesExpr(*s->value, out);
    if (s->index) collectArrAccessesExpr(*s->index, out);
    if (s->cond) collectArrAccessesExpr(*s->cond, out);
    if (s->lo) collectArrAccessesExpr(*s->lo, out);
    if (s->hi) collectArrAccessesExpr(*s->hi, out);
    collectArrAccesses(s->body, out);
    collectArrAccesses(s->elseBody, out);
  }
}

bool affineEqual(const Expr& a, const Expr& b) {
  Affine d = affineSub(affineOf(a), affineOf(b));
  if (!d.ok || d.constant != 0) return false;
  for (const auto& [name, c] : d.coeffs) {
    if (c != 0) return false;
  }
  return true;
}

bool intersects(const std::set<std::string>& a, const std::set<std::string>& b) {
  for (const auto& x : a)
    if (b.count(x)) return true;
  return false;
}

struct Fuser {
  int fused = 0;
  int freshId = 0;

  void visitBlock(std::vector<StmtPtr>& block) {
    for (auto& sp : block) {
      visitBlock(sp->body);
      visitBlock(sp->elseBody);
    }
    for (std::size_t i = 0; i < block.size(); ++i) {
      if (block[i]->kind != StmtKind::For) continue;
      // Keep trying to pull the next fusible loop into block[i]; `i` tracks
      // the loop as intervening statements are hoisted above it.
      while (tryFuseForward(block, i)) ++fused;
    }
  }

  bool tryFuseForward(std::vector<StmtPtr>& block, std::size_t& i) {
    Stmt& l1 = *block[i];
    AccessInfo info1;
    for (const auto& s : l1.body) collectAccess(*s, info1);

    AccessInfo l1Whole;
    collectAccess(l1, l1Whole);

    std::size_t j = i + 1;
    for (; j < block.size(); ++j) {
      if (block[j]->kind == StmtKind::For) break;
      AccessInfo mid;
      collectAccess(*block[j], mid);
      if (!mid.independentOf(l1Whole)) return false;
    }
    if (j >= block.size()) return false;
    Stmt& l2 = *block[j];

    if (!canFuse(l1, info1, l2)) return false;

    // Hoist the independent intervening statements above L1, preserving
    // their order, then splice L2's (renamed) body into L1.
    std::vector<StmtPtr> moved;
    for (std::size_t k = i + 1; k < j; ++k) moved.push_back(std::move(block[k]));

    // Unify induction variables and break declaration collisions.
    std::vector<StmtPtr> body2 = std::move(l2.body);
    std::set<std::string> decls2;
    {
      AccessInfo info2;
      for (const auto& s : body2) collectAccess(*s, info2);
      decls2 = info2.scalarDecls;
    }
    for (const auto& d : info1.scalarDecls) {
      if (decls2.count(d)) {
        std::string fresh = d + "_f" + std::to_string(freshId++);
        for (auto& s : body2) renameVar(*s, d, fresh);
      }
    }
    if (l2.name != l1.name) {
      for (auto& s : body2) renameVar(*s, l2.name, l1.name);
    }
    for (auto& s : body2) l1.body.push_back(std::move(s));

    // Rebuild the block: [0, i) ++ moved ++ L1 ++ (j, end).
    std::vector<StmtPtr> out;
    out.reserve(block.size() - 1);
    for (std::size_t k = 0; k < i; ++k) out.push_back(std::move(block[k]));
    for (auto& s : moved) out.push_back(std::move(s));
    std::size_t newI = out.size();
    out.push_back(std::move(block[i]));
    for (std::size_t k = j + 1; k < block.size(); ++k) out.push_back(std::move(block[k]));
    block = std::move(out);
    i = newI;
    return true;
  }

  bool canFuse(const Stmt& l1, const AccessInfo& info1, const Stmt& l2) {
    if (l1.step != l2.step || l1.step <= 0) return false;
    if (!affineEqual(*l1.lo, *l2.lo) || !affineEqual(*l1.hi, *l2.hi)) return false;

    AccessInfo info2;
    for (const auto& s : l2.body) collectAccess(*s, info2);
    if (info1.hasLoopControl || info2.hasLoopControl) return false;
    if (info1.hasWhile || info2.hasWhile) return false;

    // L2's bounds are re-evaluated at the fused loop's entry; any scalar L1
    // writes that feeds them would change value.
    if (intersects(varReads(*l2.lo), info1.scalarWrites) ||
        intersects(varReads(*l2.hi), info1.scalarWrites)) {
      return false;
    }

    // Induction-variable capture: L2's body must not already reference L1's
    // induction variable before renaming.
    if (l2.name != l1.name &&
        (info2.scalarReads.count(l1.name) || info2.scalarWrites.count(l1.name))) {
      return false;
    }

    // Outer-scope scalar dependences.
    auto outerWrites = [](const AccessInfo& info, const std::string& iv) {
      std::set<std::string> out;
      for (const auto& w : info.scalarWrites) {
        if (!info.scalarDecls.count(w) && w != iv) out.insert(w);
      }
      return out;
    };
    std::set<std::string> w1 = outerWrites(info1, l1.name);
    std::set<std::string> w2 = outerWrites(info2, l2.name);
    if (intersects(w1, info2.scalarReads) || intersects(w1, info2.scalarWrites)) return false;
    if (intersects(w2, info1.scalarReads) || intersects(w2, info1.scalarWrites)) return false;

    // Array dependences on shared arrays.
    std::set<std::string> shared;
    for (const auto& a : info1.arrayWrites) {
      if (info2.arrayReads.count(a) || info2.arrayWrites.count(a)) shared.insert(a);
    }
    for (const auto& a : info2.arrayWrites) {
      if (info1.arrayReads.count(a) || info1.arrayWrites.count(a)) shared.insert(a);
    }
    if (shared.empty()) return true;

    std::vector<ArrAccess> acc1, acc2;
    collectArrAccesses(l1.body, acc1);
    collectArrAccesses(l2.body, acc2);
    for (const auto& arr : shared) {
      std::int64_t stride = 0;
      bool haveStride = false;
      auto checkShape = [&](const ArrAccess& a, const std::string& iv) {
        if (a.array != arr) return true;
        if (!a.idx.ok || !a.idx.onlyVar(iv)) return false;
        std::int64_t c = a.idx.coeff(iv);
        if (!haveStride) {
          stride = c;
          haveStride = true;
        }
        return c == stride;
      };
      for (const auto& a : acc1) {
        if (!checkShape(a, l1.name)) return false;
      }
      for (const auto& a : acc2) {
        if (!checkShape(a, l2.name)) return false;
      }
      for (const auto& a1 : acc1) {
        if (a1.array != arr) continue;
        for (const auto& a2 : acc2) {
          if (a2.array != arr) continue;
          if (!a1.write && !a2.write) continue;
          std::int64_t k1 = a1.idx.constant, k2 = a2.idx.constant;
          if (stride > 0) {
            if (k2 + a2.lanes - 1 - k1 >= stride * l1.step) return false;
          } else if (stride < 0) {
            if (k1 + a1.lanes - 1 - k2 >= -stride * l1.step) return false;
          } else {
            return false;  // same element every iteration, with a write
          }
        }
      }
    }
    return true;
  }
};

}  // namespace

int fuseLoops(lir::Function& fn) {
  Fuser f;
  f.visitBlock(fn.body);
  return f.fused;
}

}  // namespace mat2c::opt
