#include "support/diagnostics.hpp"

#include <sstream>

namespace mat2c {

std::string toString(SourceLoc loc) {
  if (!loc.valid()) return "<unknown>";
  return std::to_string(loc.line) + ":" + std::to_string(loc.col);
}

const char* toString(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string Diagnostic::render() const {
  std::ostringstream os;
  os << toString(severity) << " at " << toString(loc) << ": " << message;
  return os.str();
}

void DiagnosticEngine::report(Severity severity, SourceLoc loc, std::string message) {
  if (severity == Severity::Error) ++errorCount_;
  diags_.push_back(Diagnostic{severity, loc, std::move(message)});
}

void DiagnosticEngine::fatal(SourceLoc loc, std::string message) {
  std::string rendered =
      std::string(toString(Severity::Error)) + " at " + toString(loc) + ": " + message;
  report(Severity::Error, loc, std::move(message));
  throw CompileError(rendered);
}

std::string DiagnosticEngine::renderAll() const {
  std::string out;
  for (const auto& d : diags_) {
    out += d.render();
    out += '\n';
  }
  return out;
}

void DiagnosticEngine::clear() {
  diags_.clear();
  errorCount_ = 0;
}

}  // namespace mat2c
