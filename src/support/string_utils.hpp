// Small string helpers shared across the compiler.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mat2c {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool startsWith(std::string_view text, std::string_view prefix);

/// Formats a double the way the C emitter and dumps need it: round-trippable,
/// always containing '.', 'e', "inf" or "nan" so it reads as floating point.
std::string formatDouble(double v);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// True if `name` is a valid C/MATLAB identifier.
bool isIdentifier(std::string_view name);

/// 64-bit FNV-1a over `data`. Stable across platforms/runs, so it is safe to
/// use for content-addressed cache keys (service::CacheKey) and ISA
/// fingerprints that may eventually be persisted.
std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t seed = 14695981039346656037ULL);

/// Fixed-width lowercase hex rendering of a 64-bit hash.
std::string hex64(std::uint64_t v);

}  // namespace mat2c
