#include "support/limits.hpp"

#include "support/errors.hpp"

namespace mat2c {

namespace {
thread_local DeadlineGuard* tlsGuard = nullptr;
}  // namespace

std::string CompileLimits::outputSignature() const {
  return "maxLirOps=" + std::to_string(maxLirOps);
}

DeadlineGuard::DeadlineGuard(double budgetMillis) {
  if (budgetMillis > 0) {
    active_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(budgetMillis));
  }
}

bool DeadlineGuard::expired() const {
  if (!active_) return false;
  if (forced_.load(std::memory_order_relaxed)) return true;
  return std::chrono::steady_clock::now() >= deadline_;
}

double DeadlineGuard::remainingMillis() const {
  if (!active_) return 0.0;
  if (forced_.load(std::memory_order_relaxed)) return 0.0;
  return std::chrono::duration<double, std::milli>(deadline_ -
                                                   std::chrono::steady_clock::now())
      .count();
}

void DeadlineGuard::check(const char* where) const {
  if (expired()) {
    throw StructuredError(ErrorKind::Timeout,
                          std::string("compile deadline expired (in ") + where + ")");
  }
}

DeadlineGuard* DeadlineGuard::current() { return tlsGuard; }

DeadlineGuard::Scope::Scope(DeadlineGuard& guard) : prev_(tlsGuard) { tlsGuard = &guard; }

DeadlineGuard::Scope::~Scope() { tlsGuard = prev_; }

}  // namespace mat2c
