#include "support/fault_injection.hpp"

#ifdef MAT2C_FAULT_INJECTION

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/errors.hpp"
#include "support/limits.hpp"
#include "support/string_utils.hpp"

namespace mat2c::fault {

namespace {

enum class ClauseType {
  PassThrow,
  PassPanic,
  PassSleep,
  PassDeadline,
  AllocAfter,
  PointCrash,
  PointFail,
  PointTorn,
};

struct Clause {
  ClauseType type;
  std::string pass;  // pass-name / crash-point pattern ("*" matches every pass)
  long arg = 0;      // sleep millis / alloc budget / 1-based point hit index
  long hits = 0;     // point clauses: how often this point fired so far
};

struct State {
  std::mutex mu;
  std::string spec;
  std::vector<Clause> clauses;
  bool envLoaded = false;
};

State& state() {
  static State s;
  return s;
}

// Fast path: pass boundaries and alloc points are on the compile hot path,
// so when no spec is active they must cost one atomic load. -1 means
// MAT2C_FAULT has not been examined yet — the first guard point resolves it
// (the CLI never calls setSpec(), so the env load cannot be left to it).
std::atomic<int> g_active{-1};
std::atomic<long> g_allocCount{0};

// Counts (sleep millis, alloc budgets) must be exact: strtol without an
// errno check would silently saturate "9999999999999" to LONG_MAX and a
// trailing-junk check alone still accepts it, turning a typo'd spec into a
// fault that never (or always) fires. Cap well below any meaningful value.
constexpr long kMaxCount = 1000000000L;  // 1e9: ~11 days of sleep, any budget

bool parseLong(const std::string& text, long& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long v = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE || v < 0 || v > kMaxCount)
    return false;
  out = v;
  return true;
}

/// Parses the spec in place. Returns the first malformed clause ("" when the
/// whole spec parsed) so callers can reject bad specs loudly instead of
/// silently running with the fault disabled.
std::string parseSpecLocked(State& s) {
  s.clauses.clear();
  std::string badClause;
  for (const auto& part : split(s.spec, ',')) {
    std::string clause{trim(part)};
    if (clause.empty()) continue;
    std::vector<std::string> f = split(clause, ':');
    Clause c;
    if (f.size() >= 3 && f[0] == "pass") {
      c.pass = f[1];
      if (f.size() == 3 && f[2] == "throw") {
        c.type = ClauseType::PassThrow;
      } else if (f.size() == 3 && f[2] == "panic") {
        c.type = ClauseType::PassPanic;
      } else if (f[2] == "sleep" && f.size() == 4 && parseLong(f[3], c.arg)) {
        c.type = ClauseType::PassSleep;
      } else {
        if (badClause.empty()) badClause = clause;
        continue;
      }
      s.clauses.push_back(std::move(c));
    } else if (f.size() == 3 && f[0] == "deadline" && f[1] == "pass") {
      c.type = ClauseType::PassDeadline;
      c.pass = f[2];
      s.clauses.push_back(std::move(c));
    } else if (f.size() == 3 && f[0] == "alloc" && f[1] == "after" && parseLong(f[2], c.arg)) {
      c.type = ClauseType::AllocAfter;
      s.clauses.push_back(std::move(c));
    } else if (f.size() == 3 &&
               (f[0] == "crash" || f[0] == "fail" || f[0] == "torn") &&
               parseLong(f[2], c.arg) && c.arg >= 1) {
      c.type = f[0] == "crash" ? ClauseType::PointCrash
                               : (f[0] == "fail" ? ClauseType::PointFail : ClauseType::PointTorn);
      c.pass = f[1];
      s.clauses.push_back(std::move(c));
    } else {
      if (badClause.empty()) badClause = clause;
    }
  }
  g_allocCount.store(0, std::memory_order_relaxed);
  g_active.store(s.clauses.empty() ? 0 : 1, std::memory_order_release);
  return badClause;
}

void loadEnvOnceLocked(State& s) {
  if (s.envLoaded) return;
  s.envLoaded = true;
  if (const char* env = std::getenv("MAT2C_FAULT"); env && *env) {
    s.spec = env;
    // The env load runs lazily on the compile hot path where throwing would
    // surface as a spurious compile failure — warn loudly instead.
    std::string bad = parseSpecLocked(s);
    if (!bad.empty())
      std::fprintf(stderr, "mat2c: invalid MAT2C_FAULT clause '%s' (ignored)\n",
                   bad.c_str());
  } else {
    g_active.store(0, std::memory_order_release);
  }
}

/// The hot-path gate: one acquire load once the spec (or its absence) is
/// known; the -1 sentinel routes the very first guard point through the env
/// load.
bool isActive() {
  int v = g_active.load(std::memory_order_acquire);
  if (v >= 0) return v > 0;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  loadEnvOnceLocked(s);
  return g_active.load(std::memory_order_acquire) > 0;
}

bool passMatches(const Clause& c, const std::string& name) {
  return c.pass == "*" || c.pass == name;
}

}  // namespace

bool enabled() {
  return isActive();
}

void setSpec(const std::string& spec) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.envLoaded = true;  // programmatic spec overrides the environment
  s.spec = spec;
  std::string bad = parseSpecLocked(s);
  if (!bad.empty()) {
    // Don't leave the valid half of a rejected spec armed.
    s.spec.clear();
    s.clauses.clear();
    g_active.store(0, std::memory_order_release);
    throw std::invalid_argument("fault::setSpec: invalid clause '" + bad +
                                "' in spec '" + spec + "'");
  }
}

std::string activeSpec() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  loadEnvOnceLocked(s);
  return s.spec;
}

void atPassBoundary(const std::string& passName) {
  if (!isActive()) return;
  long sleepMillis = 0;
  bool doThrow = false, doPanic = false, doDeadline = false;
  {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const Clause& c : s.clauses) {
      if (!passMatches(c, passName)) continue;
      switch (c.type) {
        case ClauseType::PassSleep: sleepMillis += c.arg; break;
        case ClauseType::PassThrow: doThrow = true; break;
        case ClauseType::PassPanic: doPanic = true; break;
        case ClauseType::PassDeadline: doDeadline = true; break;
        default: break;  // alloc / crash-point clauses have their own hooks
      }
    }
  }
  if (sleepMillis > 0) std::this_thread::sleep_for(std::chrono::milliseconds(sleepMillis));
  if (doDeadline) {
    if (DeadlineGuard* g = DeadlineGuard::current()) g->forceExpire();
    throw StructuredError(ErrorKind::Timeout,
                          "compile deadline expired (injected at pass '" + passName + "')");
  }
  if (doPanic) throw InjectedPanic{};
  if (doThrow) throw CompileError("injected fault in pass '" + passName + "'");
}

void onAllocPoint() {
  if (!isActive()) return;
  long budget = -1;
  {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const Clause& c : s.clauses) {
      if (c.type == ClauseType::AllocAfter) budget = c.arg;
    }
  }
  if (budget < 0) return;
  if (g_allocCount.fetch_add(1, std::memory_order_relaxed) >= budget) throw std::bad_alloc();
}

PointAction atPoint(const std::string& point) {
  if (!isActive()) return PointAction::None;
  PointAction action = PointAction::None;
  bool crash = false;
  {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (Clause& c : s.clauses) {
      if (!passMatches(c, point)) continue;
      switch (c.type) {
        case ClauseType::PointCrash:
          if (++c.hits == c.arg) crash = true;
          break;
        case ClauseType::PointFail:
          if (++c.hits >= c.arg && action == PointAction::None) action = PointAction::Fail;
          break;
        case ClauseType::PointTorn:
          // Torn beats Fail when both fire: the torn artifact is the harder
          // case for the reader, so composed specs exercise it.
          if (++c.hits >= c.arg) action = PointAction::Torn;
          break;
        default:
          break;
      }
    }
  }
  // Abort outside the lock; the whole point is to model an unclean death,
  // but a held mutex would make the abort look like a deadlock under TSan.
  if (crash) std::abort();
  return action;
}

}  // namespace mat2c::fault

#endif  // MAT2C_FAULT_INJECTION
