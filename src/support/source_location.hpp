// Source positions and ranges used by every compiler stage.
#pragma once

#include <cstdint>
#include <string>

namespace mat2c {

/// A position in a source buffer. Lines and columns are 1-based; a
/// default-constructed location (line 0) means "unknown / synthesized".
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t col = 0;

  constexpr bool valid() const { return line != 0; }
  friend constexpr bool operator==(SourceLoc, SourceLoc) = default;
};

/// Half-open range [begin, end) over source positions.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  constexpr bool valid() const { return begin.valid(); }
  friend constexpr bool operator==(SourceRange, SourceRange) = default;
};

/// "line:col" (or "<unknown>") — used in diagnostics and IR dumps.
std::string toString(SourceLoc loc);

}  // namespace mat2c
