#include "support/errors.hpp"

namespace mat2c {

const char* toString(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::None: return "None";
    case ErrorKind::ParseError: return "ParseError";
    case ErrorKind::SemaError: return "SemaError";
    case ErrorKind::PassError: return "PassError";
    case ErrorKind::VerifyError: return "VerifyError";
    case ErrorKind::ResourceExhausted: return "ResourceExhausted";
    case ErrorKind::Timeout: return "Timeout";
    case ErrorKind::Panic: return "Panic";
  }
  return "None";
}

ErrorKind errorKindFromString(std::string_view name) {
  for (ErrorKind k : {ErrorKind::ParseError, ErrorKind::SemaError, ErrorKind::PassError,
                      ErrorKind::VerifyError, ErrorKind::ResourceExhausted, ErrorKind::Timeout,
                      ErrorKind::Panic}) {
    if (name == toString(k)) return k;
  }
  return ErrorKind::None;
}

bool isDegradable(ErrorKind kind) {
  return kind == ErrorKind::PassError || kind == ErrorKind::VerifyError;
}

}  // namespace mat2c
