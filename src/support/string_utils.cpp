#include "support/string_utils.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace mat2c {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string formatDouble(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string s = buf;
  // Ensure it cannot be mistaken for an integer literal.
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

bool isIdentifier(std::string_view name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) return false;
  for (char c : name.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  }
  return true;
}

std::uint64_t fnv1a64(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace mat2c
