// Resource guards for hostile or pathological compile requests.
//
// CompileLimits is the per-compilation resource contract: how big the input
// may be, how deep/large the AST may get, how far expansion passes may grow
// the LIR, and how long the whole compile may run. The bounds are enforced
// cooperatively — the parser, sema, every pass boundary in PassPipeline, and
// the VM step loop poll the active DeadlineGuard — so a stuck request turns
// into a structured Timeout instead of a hung worker. All checks are
// zero-cost when no bound is active: DeadlineGuard::poll is one thread-local
// load and null test.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>

namespace mat2c {

struct CompileLimits {
  /// Reject sources larger than this before parsing (0 = unlimited).
  std::size_t maxSourceBytes = 16u << 20;
  /// Reject programs whose AST exceeds this node count / nesting depth after
  /// parsing (0 = unlimited). The parser additionally hard-caps expression
  /// nesting so a depth bomb cannot blow the stack before this check runs.
  std::size_t maxAstNodes = 4'000'000;
  int maxAstDepth = 256;
  /// Bound on LIR growth: a pass that leaves more than this many statements
  /// behind (while growing the function) aborts the compile, and the unroll
  /// pass refuses expansions that would cross it (skip, not error; 0 = off).
  std::size_t maxLirOps = 1'000'000;
  /// Wall-clock budget for the whole compile in milliseconds (0 = none).
  /// The serving layer derives this from the per-request deadline.
  double wallBudgetMillis = 0.0;

  /// The subset of limits that can change the *output* of a successful
  /// compile (maxLirOps gates unroll decisions); part of passSignature().
  std::string outputSignature() const;
};

/// Cooperative wall-clock deadline, installed for the current thread with
/// DeadlineGuard::Scope and polled from the pipeline's hot boundaries.
/// Expiry throws StructuredError(ErrorKind::Timeout).
class DeadlineGuard {
 public:
  /// budgetMillis <= 0 constructs an inactive guard (polls are no-ops).
  explicit DeadlineGuard(double budgetMillis);

  bool active() const { return active_; }
  bool expired() const;
  double remainingMillis() const;
  /// Trips the guard regardless of the clock (fault injection).
  void forceExpire() { forced_.store(true, std::memory_order_relaxed); }
  /// Throws StructuredError(Timeout) naming `where` when expired.
  void check(const char* where) const;

  /// The guard installed for this thread, or nullptr.
  static DeadlineGuard* current();
  /// check() on the current guard, if one is installed and active.
  static void poll(const char* where) {
    DeadlineGuard* g = current();
    if (g && g->active_) g->check(where);
  }

  /// RAII installation as the thread's current guard (restores the previous
  /// one on destruction, so nested compiles keep the tighter outer bound
  /// only for their own scope).
  class Scope {
   public:
    explicit Scope(DeadlineGuard& guard);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    DeadlineGuard* prev_;
  };

 private:
  bool active_ = false;
  std::atomic<bool> forced_{false};
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace mat2c
