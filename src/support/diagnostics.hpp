// Diagnostics engine shared by all compiler stages.
//
// Stages report through a DiagnosticEngine; the driver decides whether to
// print, collect, or abort. Fatal front-end errors additionally throw
// CompileError so deep recursive code can unwind without threading error
// state through every return value.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/source_location.hpp"

namespace mat2c {

enum class Severity { Note, Warning, Error };

const char* toString(Severity s);

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  /// "error at 3:7: ..." rendering used by tests and the CLI driver.
  std::string render() const;
};

/// Thrown for unrecoverable compile errors after the diagnostic has been
/// recorded in the engine.
class CompileError : public std::runtime_error {
 public:
  explicit CompileError(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Collects diagnostics for one compilation. Not thread-safe by design:
/// one engine per compilation unit.
class DiagnosticEngine {
 public:
  void report(Severity severity, SourceLoc loc, std::string message);

  void note(SourceLoc loc, std::string message) { report(Severity::Note, loc, std::move(message)); }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }
  void error(SourceLoc loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }

  /// Records an error diagnostic and throws CompileError.
  [[noreturn]] void fatal(SourceLoc loc, std::string message);

  bool hasErrors() const { return errorCount_ > 0; }
  std::size_t errorCount() const { return errorCount_; }
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// All diagnostics rendered one per line (empty string when clean).
  std::string renderAll() const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  std::size_t errorCount_ = 0;
};

}  // namespace mat2c
