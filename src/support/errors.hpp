// Structured error taxonomy for the compile pipeline.
//
// Every failure the compiler or the serving layer can produce is classified
// into one ErrorKind, carried by StructuredError (a CompileError subclass,
// so existing catch sites keep working) and surfaced through
// CompileResponse::errorKind and the serve-mode JSON protocol. The taxonomy
// is what lets callers tell "your program is wrong" (ParseError/SemaError)
// from "the compiler is wrong" (PassError/VerifyError/Panic) from "the
// request hit an operational bound" (ResourceExhausted/Timeout) — only the
// middle group is eligible for the graceful-degradation ladder in
// Compiler::compileSource (see docs/robustness.md).
#pragma once

#include <string>
#include <string_view>

#include "support/diagnostics.hpp"

namespace mat2c {

enum class ErrorKind {
  None,               ///< no error (successful response)
  ParseError,         ///< lexer/parser rejected the input
  SemaError,          ///< type/shape inference or lowering rejected the input
  PassError,          ///< an optimization pass threw
  VerifyError,        ///< the LIR verifier rejected a pass's output
  ResourceExhausted,  ///< a CompileLimits bound (or allocation) was exceeded
  Timeout,            ///< a cooperative deadline expired
  Panic,              ///< a non-standard exception escaped a worker
};

const char* toString(ErrorKind kind);
/// Inverse of toString; ErrorKind::None for unknown spellings.
ErrorKind errorKindFromString(std::string_view name);

/// True for the kinds the degradation ladder may retry around: a failure of
/// the compiler's own making, attributable to a disableable pass. Input
/// errors and resource/deadline violations are never retried — the retry
/// would fail (or stall) identically.
bool isDegradable(ErrorKind kind);

class StructuredError : public CompileError {
 public:
  StructuredError(ErrorKind kind, std::string what, std::string pass = {})
      : CompileError(std::move(what)), kind_(kind), pass_(std::move(pass)) {}

  ErrorKind kind() const { return kind_; }
  /// Offending pass name when the failure is attributable to one ("" else).
  const std::string& pass() const { return pass_; }

 private:
  ErrorKind kind_;
  std::string pass_;
};

}  // namespace mat2c
