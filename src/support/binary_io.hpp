// Little-endian binary encode/decode helpers shared by the persistent
// artifact store (service/artifact_store.cpp) and the binary wire protocol
// (service/protocol.cpp).
//
// Encoding is explicit-byte-order, independent of the host: artifacts and
// frames may be written on one machine and read on another. The Reader is
// bounds-checked on every access — arbitrary/hostile bytes can make a getter
// return false, never read out of range — which is what lets fuzz_smoke feed
// both consumers raw garbage.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace mat2c::bin {

inline void appendU8(std::string& out, std::uint8_t v) { out += static_cast<char>(v); }

inline void appendU16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

inline void appendU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

inline void appendU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

inline void appendI32(std::string& out, std::int32_t v) {
  appendU32(out, static_cast<std::uint32_t>(v));
}

inline void appendF64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  appendU64(out, bits);
}

/// u32 byte length + raw bytes.
inline void appendStr(std::string& out, std::string_view s) {
  appendU32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

/// Bounds-checked little-endian reader. Every getter returns false once the
/// input is exhausted; a false return leaves the output argument unspecified
/// and the reader positioned at the failure point.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > data_.size()) return false;
    v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  bool u16(std::uint16_t& v) {
    if (pos_ + 2 > data_.size()) return false;
    v = 0;
    for (int i = 1; i >= 0; --i) {
      v = static_cast<std::uint16_t>((v << 8) |
                                     static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(i)]));
    }
    pos_ += 2;
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(i)]);
    }
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(i)]);
    }
    pos_ += 8;
    return true;
  }

  bool i32(std::int32_t& v) {
    std::uint32_t u = 0;
    if (!u32(u)) return false;
    v = static_cast<std::int32_t>(u);
    return true;
  }

  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
  }

  bool str(std::string& v) {
    std::uint32_t n = 0;
    if (!u32(n)) return false;
    if (pos_ + n > data_.size()) return false;
    v.assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace mat2c::bin
